// Life-sciences scenario (paper Sec. 5.2 / 6.3): large-scale tumor-treatment
// simulations are expensive; an ETSC model watches each running simulation
// and recommends terminating the ones predicted *non-interesting*, freeing
// compute. The paper reports that ETSC identified 65% of non-interesting
// simulations early; this example reproduces that analysis with ECEC on the
// synthetic biological dataset.
//
//   ./biological_early_stop [num_simulations]

#include <cstdio>
#include <cstdlib>

#include "algos/ecec.h"
#include "core/dataset.h"
#include "core/metrics.h"
#include "core/voting.h"
#include "data/biological_sim.h"

int main(int argc, char** argv) {
  etsc::BiologicalSimOptions sim_options;
  if (argc > 1) sim_options.num_simulations = std::strtoul(argv[1], nullptr, 10);
  const etsc::Dataset dataset = etsc::MakeBiologicalDataset(sim_options);
  std::printf("Simulated %zu tumor-treatment runs (%zu time-points, 3 cell "
              "counts each); %.0f%% are 'interesting'.\n",
              dataset.size(), dataset.MaxLength(),
              100.0 * static_cast<double>(dataset.ClassCounts().at(1)) /
                  static_cast<double>(dataset.size()));

  etsc::Rng rng(99);
  const etsc::SplitIndices split = etsc::StratifiedSplit(dataset, 0.7, &rng);
  etsc::Dataset train = dataset.Subset(split.train);
  etsc::Dataset test = dataset.Subset(split.test);

  // ECEC is univariate: the framework's voting wrapper trains one instance per
  // cell-count channel (Alive/Necrotic/Apoptotic).
  etsc::EcecOptions options;
  options.num_prefixes = 12;
  auto model = etsc::WrapForDataset(std::make_unique<etsc::EcecClassifier>(options),
                                    train);
  if (etsc::Status status = model->Fit(train); !status.ok()) {
    std::fprintf(stderr, "training failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // Replay the held-out simulations as if they were running live.
  size_t boring_total = 0;
  size_t boring_stopped_early = 0;
  size_t interesting_killed = 0;
  double timepoints_total = 0.0;
  double timepoints_spent = 0.0;
  std::vector<int> truth, predicted;
  std::vector<size_t> prefixes, lengths;
  for (size_t i = 0; i < test.size(); ++i) {
    const etsc::TimeSeries& run = test.instance(i);
    auto pred = model->PredictEarly(run);
    if (!pred.ok()) continue;
    truth.push_back(test.label(i));
    predicted.push_back(pred->label);
    prefixes.push_back(pred->prefix_length);
    lengths.push_back(run.length());
    timepoints_total += static_cast<double>(run.length());

    const bool is_boring = test.label(i) == 0;
    const bool predicted_boring = pred->label == 0;
    const bool early = pred->prefix_length < run.length();
    if (is_boring) {
      ++boring_total;
      if (predicted_boring && early) {
        ++boring_stopped_early;
        timepoints_spent += static_cast<double>(pred->prefix_length);
      } else {
        timepoints_spent += static_cast<double>(run.length());
      }
    } else {
      timepoints_spent += static_cast<double>(run.length());
      if (predicted_boring) ++interesting_killed;
    }
  }

  const etsc::EvalScores scores =
      etsc::ComputeScores(truth, predicted, prefixes, lengths);
  std::printf("ECEC+vote on held-out runs: %s\n", scores.ToString().c_str());
  std::printf(
      "Early termination policy: %zu/%zu (%.0f%%) of non-interesting "
      "simulations identified before completion (paper reports 65%%).\n",
      boring_stopped_early, boring_total,
      100.0 * static_cast<double>(boring_stopped_early) /
          static_cast<double>(boring_total));
  std::printf("Compute saved: %.1f%% of simulation time-points; %zu "
              "interesting runs would have been killed wrongly.\n",
              100.0 * (1.0 - timepoints_spent / timepoints_total),
              interesting_killed);
  return 0;
}
