// Command-line front end of the framework — the C++ analogue of the Python
// repository's cli.py (paper Sec. 5.5). Runs any registered algorithm on a
// benchmark dataset or a user file, with the paper's CV protocol, and prints
// every metric of Sec. 2.2.
//
// Usage:
//   etsc_cli --list
//   etsc_cli --algo teaser --dataset PowerCons [--folds 5] [--budget 60]
//   etsc_cli --algo ects --csv my.csv [--variables 3]
//   etsc_cli --algo ecec --arff my.arff
//
// Exit code 0 on success, 1 on usage/setup errors, 2 when the algorithm could
// not train within the budget.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "algos/registrations.h"
#include "core/arff.h"
#include "core/csv.h"
#include "core/evaluation.h"
#include "core/registry.h"
#include "data/repository.h"

namespace {

struct CliArgs {
  bool list = false;
  std::string algo;
  std::string dataset;
  std::string csv_path;
  std::string arff_path;
  size_t variables = 1;
  size_t folds = 5;
  double budget = 300.0;
  uint64_t seed = 42;
  double scale = 0.2;
};

void PrintUsage() {
  std::printf(
      "usage: etsc_cli --list\n"
      "       etsc_cli --algo NAME (--dataset BENCH | --csv FILE [--variables"
      " K] | --arff FILE)\n"
      "                [--folds N] [--budget SECONDS] [--seed S] [--scale F]\n");
}

bool ParseArgs(int argc, char** argv, CliArgs* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", what);
        return nullptr;
      }
      return argv[++i];
    };
    if (flag == "--list") {
      args->list = true;
    } else if (flag == "--algo") {
      const char* v = next("--algo");
      if (v == nullptr) return false;
      args->algo = v;
    } else if (flag == "--dataset") {
      const char* v = next("--dataset");
      if (v == nullptr) return false;
      args->dataset = v;
    } else if (flag == "--csv") {
      const char* v = next("--csv");
      if (v == nullptr) return false;
      args->csv_path = v;
    } else if (flag == "--arff") {
      const char* v = next("--arff");
      if (v == nullptr) return false;
      args->arff_path = v;
    } else if (flag == "--variables") {
      const char* v = next("--variables");
      if (v == nullptr) return false;
      args->variables = std::strtoul(v, nullptr, 10);
    } else if (flag == "--folds") {
      const char* v = next("--folds");
      if (v == nullptr) return false;
      args->folds = std::strtoul(v, nullptr, 10);
    } else if (flag == "--budget") {
      const char* v = next("--budget");
      if (v == nullptr) return false;
      args->budget = std::strtod(v, nullptr);
    } else if (flag == "--seed") {
      const char* v = next("--seed");
      if (v == nullptr) return false;
      args->seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--scale") {
      const char* v = next("--scale");
      if (v == nullptr) return false;
      args->scale = std::strtod(v, nullptr);
    } else if (flag == "--help" || flag == "-h") {
      PrintUsage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  etsc::RegisterBuiltinClassifiers();
  CliArgs args;
  if (!ParseArgs(argc, argv, &args)) {
    PrintUsage();
    return 1;
  }

  if (args.list) {
    std::printf("algorithms:");
    for (const auto& name : etsc::ClassifierRegistry::Global().Names()) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\ndatasets:");
    for (const auto& name : etsc::BenchmarkDatasetNames()) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\n");
    return 0;
  }

  if (args.algo.empty()) {
    PrintUsage();
    return 1;
  }
  auto model = etsc::ClassifierRegistry::Global().Create(args.algo);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }

  etsc::Dataset dataset;
  if (!args.csv_path.empty()) {
    auto loaded = etsc::LoadCsv(args.csv_path, args.variables);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    dataset = std::move(*loaded);
  } else if (!args.arff_path.empty()) {
    auto loaded = etsc::LoadArff(args.arff_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    dataset = std::move(*loaded);
  } else if (!args.dataset.empty()) {
    etsc::RepositoryOptions repo;
    repo.seed = args.seed;
    repo.height_scale = args.scale;
    auto benchmark = etsc::MakeBenchmarkDataset(args.dataset, repo);
    if (!benchmark.ok()) {
      std::fprintf(stderr, "%s\n", benchmark.status().ToString().c_str());
      return 1;
    }
    dataset = std::move(benchmark->data);
  } else {
    PrintUsage();
    return 1;
  }
  dataset.FillMissingValues();

  std::printf("dataset %s: %zu instances, %zu vars, length %zu, %zu classes\n",
              dataset.name().c_str(), dataset.size(), dataset.NumVariables(),
              dataset.MaxLength(), dataset.NumClasses());

  etsc::EvaluationOptions options;
  options.num_folds = args.folds;
  options.seed = args.seed;
  options.train_budget_seconds = args.budget;
  const etsc::EvaluationResult result =
      etsc::CrossValidate(dataset, **model, options);
  if (!result.trained()) {
    std::fprintf(stderr, "%s did not train within budget: %s\n",
                 args.algo.c_str(),
                 result.folds.empty() ? "?" : result.folds[0].failure.c_str());
    return 2;
  }
  const etsc::EvalScores scores = result.MeanScores();
  std::printf(
      "%s (%zu-fold CV): accuracy=%.4f f1=%.4f earliness=%.4f "
      "harmonic_mean=%.4f train=%.2f min test=%.4f s/instance\n",
      result.algorithm.c_str(), args.folds, scores.accuracy, scores.f1,
      scores.earliness, scores.harmonic_mean, result.MeanTrainSeconds() / 60.0,
      result.MeanTestSecondsPerInstance());
  return 0;
}
