// Command-line front end of the framework — the C++ analogue of the Python
// repository's cli.py (paper Sec. 5.5). Runs any registered algorithm on a
// benchmark dataset or a user file, with the paper's CV protocol, and prints
// every metric of Sec. 2.2.
//
// Usage:
//   etsc_cli --list
//   etsc_cli --algo teaser --dataset PowerCons [--folds 5] [--budget 60]
//   etsc_cli --algo ects --csv my.csv [--variables 3]
//   etsc_cli --algo ecec --arff my.arff
//   etsc_cli --campaign [--shard I/N] [--max-retries N] [--quarantine-after N]
//                                             (config via ETSC_BENCH_* env)
//   etsc_cli --campaign --classifiers weasel,minirocket --triggers prob,ects-mpl
//            [--cost-alpha A]               (cross-product of composed
//                                             '<base>+<trigger>' specs as the
//                                             campaign's algorithm axis)
//   etsc_cli --campaign --workers K [--cache J]  (K lease-fabric worker
//                                             processes + continuous merge)
//   etsc_cli --worker --cache JOURNAL         (join an existing fabric journal)
//   etsc_cli --merge-shards OUT IN1 IN2 ... [--follow]
//                                             (combine shard journals + report)
//   etsc_cli --report-diff A.json B.json [--ignore-algos A,B]
//            [--map-algo OLD=NEW]           (compare reports modulo timings;
//                                             --map-algo renames an algorithm
//                                             before comparing, e.g. a legacy
//                                             monolith vs its composed twin)
//   etsc_cli --serve --algo ects --dataset PowerCons [--sessions N]
//            [--dispatch-every K] [--serve-report OUT.json]
//                                             (multi-session serving engine
//                                              over a replayable ingest trace;
//                                              knobs via ETSC_SERVE_* env)
//   etsc_cli --serve ... --wal PATH           (journal every session event to
//                                              a write-ahead log)
//   etsc_cli --serve ... --wal PATH --recover (rebuild the session table from
//                                              the WAL, resume the trace, and
//                                              verify decisions bit-identical
//                                              to the uncrashed reference)
//
// Exit code 0 on success, 1 on usage/setup errors, 2 when the algorithm could
// not train within the budget, 3 when --report-diff finds a difference, 4 when
// --serve finds a batched/sequential divergence. ETSC_SERVE_FAULT
// ("die-at-ingest:K" / "die-at-dispatch:K") arms a scripted crash that exits
// with code 86 — the serving chaos drill in scripts/check.sh.

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "algos/registrations.h"
#include "bench/bench_common.h"
#include "core/arff.h"
#include "core/composed.h"
#include "core/counters.h"
#include "core/csv.h"
#include "core/evaluation.h"
#include "core/fault.h"
#include "core/json.h"
#include "core/model_cache.h"
#include "core/registry.h"
#include "core/serving.h"
#include "data/repository.h"

namespace {

struct CliArgs {
  bool list = false;
  bool serve = false;                    // multi-session serving engine
  size_t sessions = 1000;               // --serve: concurrent live series
  size_t dispatch_every = 64;           // --serve: events per DispatchBatch
  std::string serve_report;             // --serve: JSON report destination
  std::string wal;                      // --serve: session WAL path
  bool recover = false;                 // --serve: rebuild table from the WAL
  bool campaign = false;
  bool worker = false;                   // join the fabric journal as a worker
  size_t workers = 0;                    // coordinator: spawn K worker processes
  std::string cache;                     // fabric journal override (--cache)
  bool follow = false;                   // --merge-shards: loop until complete
  std::string shard;                     // "i/N", with --campaign
  std::string merge_out;                 // destination of --merge-shards
  std::vector<std::string> merge_inputs; // shard journals to merge
  std::vector<std::string> diff_reports; // the two --report-diff operands
  std::vector<std::string> ignore_algos; // --report-diff: drop these cells
  // --report-diff: rename algorithm OLD to NEW on both sides before the
  // comparison (legacy monolith vs composed '<base>+<trigger>' twin).
  std::vector<std::pair<std::string, std::string>> map_algos;
  int max_retries = -1;                  // --campaign override; -1 = env/default
  int quarantine_after = -1;             // --campaign override; -1 = env/default
  std::vector<std::string> classifiers;  // cross-product: base classifiers
  std::vector<std::string> triggers;     // cross-product: stopping rules
  double cost_alpha = -1.0;              // report cost ratio; <0 = env/default
  std::string algo;
  std::string dataset;
  std::string csv_path;
  std::string arff_path;
  size_t variables = 1;
  size_t folds = 5;
  double budget = 300.0;
  uint64_t seed = 42;
  double scale = 0.2;
};

void PrintUsage() {
  std::printf(
      "usage: etsc_cli --list\n"
      "       etsc_cli --algo NAME (--dataset BENCH | --csv FILE [--variables"
      " K] | --arff FILE)\n"
      "                [--folds N] [--budget SECONDS] [--seed S] [--scale F]\n"
      "       etsc_cli --campaign [--shard I/N] [--max-retries N]\n"
      "                [--quarantine-after N]    (ETSC_BENCH_* env config)\n"
      "       etsc_cli --campaign --classifiers A,B --triggers X,Y\n"
      "                [--cost-alpha F]   (campaign over the cross-product of\n"
      "                 composed '<base>+<trigger>' specs; names per --list)\n"
      "       etsc_cli --campaign --workers K [--cache JOURNAL]\n"
      "                (spawn K crash-tolerant worker processes; leases via\n"
      "                 ETSC_LEASE_TTL_MS / ETSC_HEARTBEAT_MS)\n"
      "       etsc_cli --worker --cache JOURNAL  (attach one worker; owner id\n"
      "                from ETSC_WORKER_ID or pid)\n"
      "       etsc_cli --merge-shards OUT IN1 IN2 ... [--follow]\n"
      "       etsc_cli --report-diff A.json B.json [--ignore-algos A,B]\n"
      "                [--map-algo OLD=NEW]  (rename an algorithm before the\n"
      "                 diff: legacy monolith vs its composed twin)\n"
      "       etsc_cli --serve --algo NAME --dataset BENCH [--sessions N]\n"
      "                [--dispatch-every K] [--serve-report OUT.json]\n"
      "                [--wal PATH [--recover]]\n"
      "                (ETSC_SERVE_MAX_SESSIONS / _BUDGET_MS / _IDLE_MS /\n"
      "                 _SOFT_WATERMARK / _SHED_IDLE_MS / _RETRY_MS /\n"
      "                 _WATCHDOG_GRACE / _WAL env; ETSC_SERVE_FAULT arms the\n"
      "                 crash drill)\n");
}

bool ParseArgs(int argc, char** argv, CliArgs* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", what);
        return nullptr;
      }
      return argv[++i];
    };
    if (flag == "--list") {
      args->list = true;
    } else if (flag == "--serve") {
      args->serve = true;
    } else if (flag == "--sessions") {
      const char* v = next("--sessions");
      if (v == nullptr) return false;
      args->sessions = std::strtoul(v, nullptr, 10);
      if (args->sessions == 0) {
        std::fprintf(stderr, "--sessions needs a positive count\n");
        return false;
      }
    } else if (flag == "--dispatch-every") {
      const char* v = next("--dispatch-every");
      if (v == nullptr) return false;
      args->dispatch_every = std::strtoul(v, nullptr, 10);
    } else if (flag == "--serve-report") {
      const char* v = next("--serve-report");
      if (v == nullptr) return false;
      args->serve_report = v;
    } else if (flag == "--wal") {
      const char* v = next("--wal");
      if (v == nullptr) return false;
      args->wal = v;
    } else if (flag == "--recover") {
      args->recover = true;
    } else if (flag == "--campaign") {
      args->campaign = true;
    } else if (flag == "--worker") {
      args->worker = true;
    } else if (flag == "--workers") {
      const char* v = next("--workers");
      if (v == nullptr) return false;
      args->workers = std::strtoul(v, nullptr, 10);
      if (args->workers == 0) {
        std::fprintf(stderr, "--workers needs a positive count\n");
        return false;
      }
    } else if (flag == "--cache") {
      const char* v = next("--cache");
      if (v == nullptr) return false;
      args->cache = v;
    } else if (flag == "--follow") {
      args->follow = true;
    } else if (flag == "--shard") {
      const char* v = next("--shard");
      if (v == nullptr) return false;
      args->shard = v;
    } else if (flag == "--merge-shards") {
      const char* v = next("--merge-shards");
      if (v == nullptr) return false;
      args->merge_out = v;
      while (i + 1 < argc && argv[i + 1][0] != '-') {
        args->merge_inputs.push_back(argv[++i]);
      }
      if (args->merge_inputs.empty()) {
        std::fprintf(stderr, "--merge-shards needs input journals\n");
        return false;
      }
    } else if (flag == "--report-diff") {
      for (int k = 0; k < 2; ++k) {
        const char* v = next("--report-diff");
        if (v == nullptr) return false;
        args->diff_reports.push_back(v);
      }
    } else if (flag == "--ignore-algos") {
      const char* v = next("--ignore-algos");
      if (v == nullptr) return false;
      std::stringstream ss(v);
      std::string item;
      while (std::getline(ss, item, ',')) {
        if (!item.empty()) args->ignore_algos.push_back(item);
      }
    } else if (flag == "--map-algo") {
      const char* v = next("--map-algo");
      if (v == nullptr) return false;
      const std::string mapping = v;
      const size_t eq = mapping.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == mapping.size()) {
        std::fprintf(stderr, "--map-algo needs OLD=NEW\n");
        return false;
      }
      args->map_algos.emplace_back(mapping.substr(0, eq),
                                   mapping.substr(eq + 1));
    } else if (flag == "--classifiers") {
      const char* v = next("--classifiers");
      if (v == nullptr) return false;
      std::stringstream ss(v);
      std::string item;
      while (std::getline(ss, item, ',')) {
        if (!item.empty()) args->classifiers.push_back(item);
      }
    } else if (flag == "--triggers") {
      const char* v = next("--triggers");
      if (v == nullptr) return false;
      std::stringstream ss(v);
      std::string item;
      while (std::getline(ss, item, ',')) {
        if (!item.empty()) args->triggers.push_back(item);
      }
    } else if (flag == "--cost-alpha") {
      const char* v = next("--cost-alpha");
      if (v == nullptr) return false;
      args->cost_alpha = std::strtod(v, nullptr);
      if (args->cost_alpha < 0.0 || args->cost_alpha > 1.0) {
        std::fprintf(stderr, "--cost-alpha needs a ratio in [0, 1]\n");
        return false;
      }
    } else if (flag == "--max-retries") {
      const char* v = next("--max-retries");
      if (v == nullptr) return false;
      args->max_retries = std::atoi(v);
    } else if (flag == "--quarantine-after") {
      const char* v = next("--quarantine-after");
      if (v == nullptr) return false;
      args->quarantine_after = std::atoi(v);
    } else if (flag == "--algo") {
      const char* v = next("--algo");
      if (v == nullptr) return false;
      args->algo = v;
    } else if (flag == "--dataset") {
      const char* v = next("--dataset");
      if (v == nullptr) return false;
      args->dataset = v;
    } else if (flag == "--csv") {
      const char* v = next("--csv");
      if (v == nullptr) return false;
      args->csv_path = v;
    } else if (flag == "--arff") {
      const char* v = next("--arff");
      if (v == nullptr) return false;
      args->arff_path = v;
    } else if (flag == "--variables") {
      const char* v = next("--variables");
      if (v == nullptr) return false;
      args->variables = std::strtoul(v, nullptr, 10);
    } else if (flag == "--folds") {
      const char* v = next("--folds");
      if (v == nullptr) return false;
      args->folds = std::strtoul(v, nullptr, 10);
    } else if (flag == "--budget") {
      const char* v = next("--budget");
      if (v == nullptr) return false;
      args->budget = std::strtod(v, nullptr);
    } else if (flag == "--seed") {
      const char* v = next("--seed");
      if (v == nullptr) return false;
      args->seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--scale") {
      const char* v = next("--scale");
      if (v == nullptr) return false;
      args->scale = std::strtod(v, nullptr);
    } else if (flag == "--help" || flag == "-h") {
      PrintUsage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
      return false;
    }
  }
  return true;
}

bool ParseShardSpec(const std::string& spec, size_t* index, size_t* count) {
  const size_t slash = spec.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= spec.size()) {
    return false;
  }
  char* end = nullptr;
  const unsigned long long i = std::strtoull(spec.c_str(), &end, 10);
  if (end != spec.c_str() + slash) return false;
  const unsigned long long n = std::strtoull(spec.c_str() + slash + 1, &end, 10);
  if (end != spec.c_str() + spec.size()) return false;
  if (n == 0 || i >= n) return false;
  *index = static_cast<size_t>(i);
  *count = static_cast<size_t>(n);
  return true;
}

/// Expands --classifiers x --triggers into composed '<base>+<trigger>' specs
/// and exports them (plus --cost-alpha) through the ETSC_BENCH_* environment
/// before any CampaignConfig::FromEnv() runs. Going through the environment —
/// not a config field — keeps every consumer consistent: forked --worker
/// children re-read the environment, and the journal fingerprint must agree
/// between coordinator and workers.
int ApplyCompositionFlags(const CliArgs& args) {
  if (args.classifiers.empty() != args.triggers.empty()) {
    std::fprintf(stderr,
                 "--classifiers and --triggers must be given together (the "
                 "campaign runs their cross-product)\n");
    return 1;
  }
  if (!args.classifiers.empty()) {
    std::string specs;
    for (const auto& base : args.classifiers) {
      for (const auto& trigger : args.triggers) {
        if (!specs.empty()) specs += ',';
        specs += base + "+" + trigger;
      }
    }
    ::setenv("ETSC_BENCH_ALGOS", specs.c_str(), 1);
    std::printf("composed grid: %zu classifier(s) x %zu trigger(s) = %zu "
                "configuration(s)\n",
                args.classifiers.size(), args.triggers.size(),
                args.classifiers.size() * args.triggers.size());
  }
  if (args.cost_alpha >= 0.0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6f", args.cost_alpha);
    ::setenv("ETSC_BENCH_ALPHA", buf, 1);
  }
  return 0;
}

int RunCampaign(const CliArgs& args) {
  auto config = etsc::bench::CampaignConfig::FromEnv();
  if (!args.shard.empty() &&
      !ParseShardSpec(args.shard, &config.shard_index, &config.shard_count)) {
    std::fprintf(stderr, "bad --shard spec '%s' (want I/N with 0 <= I < N)\n",
                 args.shard.c_str());
    return 1;
  }
  // Flags beat the ETSC_RETRY_*/ETSC_QUARANTINE_AFTER environment.
  if (args.max_retries >= 0) {
    config.supervisor.retry.max_retries = args.max_retries;
  }
  if (args.quarantine_after >= 0) {
    config.supervisor.quarantine_after = args.quarantine_after;
  }
  etsc::bench::Campaign campaign(std::move(config));
  const etsc::Status status = campaign.Run();
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("campaign journal: %s\nreport: %s\n",
              campaign.config().cache_path.c_str(),
              campaign.ReportPath().c_str());
  return 0;
}

int WriteMergedReport(etsc::bench::CampaignConfig config,
                      const std::string& journal_path);

void ApplySupervisorFlags(const CliArgs& args,
                          etsc::bench::CampaignConfig* config) {
  if (args.max_retries >= 0) {
    config->supervisor.retry.max_retries = args.max_retries;
  }
  if (args.quarantine_after >= 0) {
    config->supervisor.quarantine_after = args.quarantine_after;
  }
}

/// One fabric worker: leases cells from the shared journal until every cell
/// is terminal (or the lease loop hits a setup error). Workers never write
/// the report — that is the coordinator's (or --merge-shards') job.
int RunWorkerProcess(const CliArgs& args) {
  auto config = etsc::bench::CampaignConfig::FromEnv();
  ApplySupervisorFlags(args, &config);
  if (!args.cache.empty()) config.cache_path = args.cache;
  const char* worker_id = std::getenv("ETSC_WORKER_ID");
  const std::string owner = (worker_id != nullptr && *worker_id != '\0')
                                ? std::string(worker_id)
                                : "pid-" + std::to_string(::getpid());
  etsc::bench::Campaign campaign(std::move(config));
  const etsc::Status status = campaign.RunWorker(owner);
  if (!status.ok()) {
    std::fprintf(stderr, "worker %s: %s\n", owner.c_str(),
                 status.ToString().c_str());
    return 1;
  }
  std::printf("worker %s done: %s\n", owner.c_str(),
              campaign.config().cache_path.c_str());
  return 0;
}

/// Forks one `--worker` child (execs this same binary so a die-at fault or a
/// SIGKILL only takes down that child). Returns the child pid, or -1.
pid_t SpawnWorker(const std::string& exe, const std::string& cache,
                  size_t index) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  std::string worker_id = "w";  // two-step append: GCC 12 -Wrestrict FP
  worker_id += std::to_string(index);
  ::setenv("ETSC_WORKER_ID", worker_id.c_str(), 1);
  const char* trace = std::getenv("ETSC_TRACE");
  if (trace != nullptr && *trace != '\0') {
    // Per-worker trace files; the real pids give each worker its own lane
    // when the traces are concatenated into one timeline.
    ::setenv("ETSC_TRACE", (std::string(trace) + "." + worker_id).c_str(), 1);
  }
  const char* argv[] = {exe.c_str(), "--worker", "--cache", cache.c_str(),
                        nullptr};
  ::execv(exe.c_str(), const_cast<char**>(argv));
  std::fprintf(stderr, "execv %s failed\n", exe.c_str());
  ::_exit(127);
}

/// `--campaign --workers K`: spawns K lease-fabric workers over one shared
/// journal and runs the continuous merge loop, emitting the final report only
/// when every grid cell has a terminal row. Workers that die (crash, SIGKILL,
/// die-at fault) lose their leases to the survivors; if *all* workers die
/// before the grid completes, the fleet is respawned up to
/// ETSC_WORKER_RESTARTS times (default 3, campaign.worker_restarts counts).
int RunCoordinator(const CliArgs& args, const char* argv0) {
  auto config = etsc::bench::CampaignConfig::FromEnv();
  ApplySupervisorFlags(args, &config);
  // Children re-read the environment, so flag overrides must be exported or
  // the workers would derive a different journal fingerprint.
  if (args.max_retries >= 0) {
    ::setenv("ETSC_RETRY_MAX",
             std::to_string(config.supervisor.retry.max_retries).c_str(), 1);
  }
  if (args.quarantine_after >= 0) {
    ::setenv("ETSC_QUARANTINE_AFTER",
             std::to_string(config.supervisor.quarantine_after).c_str(), 1);
  }
  if (!args.cache.empty()) config.cache_path = args.cache;
  const std::string cache = config.cache_path;
  const std::string merged = cache + ".merged.csv";
  const auto header = etsc::bench::JournalHeaderForConfig(config);
  if (!header.ok()) {
    std::fprintf(stderr, "%s\n", header.status().ToString().c_str());
    return 1;
  }

  std::string exe = argv0;
  char self[4096];
  const ssize_t n = ::readlink("/proc/self/exe", self, sizeof(self) - 1);
  if (n > 0) {
    self[n] = '\0';
    exe = self;
  }

  int restarts_left = 3;
  if (const char* env = std::getenv("ETSC_WORKER_RESTARTS")) {
    restarts_left = std::max(0, std::atoi(env));
  }
  static etsc::Counter& worker_restarts =
      etsc::MetricRegistry::Global().counter("campaign.worker_restarts");

  std::vector<pid_t> children;
  auto spawn_fleet = [&]() -> bool {
    children.clear();
    for (size_t i = 0; i < args.workers; ++i) {
      const pid_t pid = SpawnWorker(exe, cache, i + 1);
      if (pid < 0) {
        std::fprintf(stderr, "fork failed for worker %zu\n", i + 1);
        return false;
      }
      children.push_back(pid);
    }
    return true;
  };
  if (!spawn_fleet()) return 1;
  std::printf("coordinator: %zu worker(s) on %s\n", args.workers,
              cache.c_str());

  bool complete = false;
  while (!complete) {
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    int wstatus = 0;
    pid_t done;
    while ((done = ::waitpid(-1, &wstatus, WNOHANG)) > 0) {
      for (auto& child : children) {
        if (child == done) child = -1;
      }
      if (WIFSIGNALED(wstatus) ||
          (WIFEXITED(wstatus) && WEXITSTATUS(wstatus) != 0)) {
        std::fprintf(stderr,
                     "coordinator: worker pid %d died (%s %d); its leases "
                     "will expire and be stolen\n",
                     static_cast<int>(done),
                     WIFSIGNALED(wstatus) ? "signal" : "exit",
                     WIFSIGNALED(wstatus) ? WTERMSIG(wstatus)
                                          : WEXITSTATUS(wstatus));
      }
    }

    // Continuous merge: a no-journal-yet error is just "too early".
    const auto merged_summary =
        etsc::bench::MergeShardJournals(merged, {cache}, config, *header);
    if (merged_summary.ok()) {
      complete = merged_summary->complete;
      if (complete) break;
    }

    const bool any_alive =
        std::any_of(children.begin(), children.end(),
                    [](pid_t pid) { return pid > 0; });
    if (!any_alive) {
      if (restarts_left <= 0) {
        std::fprintf(stderr,
                     "coordinator: all workers dead, grid incomplete, restart "
                     "budget exhausted\n");
        return 1;
      }
      --restarts_left;
      worker_restarts.Add(args.workers);
      std::fprintf(stderr, "coordinator: respawning %zu worker(s)\n",
                   args.workers);
      if (!spawn_fleet()) return 1;
    }
  }

  // The grid is complete; surviving workers observe all-terminal and exit on
  // their own, so a blocking reap cannot hang.
  for (const pid_t child : children) {
    if (child > 0) {
      int wstatus = 0;
      ::waitpid(child, &wstatus, 0);
    }
  }
  const auto final_merge =
      etsc::bench::MergeShardJournals(merged, {cache}, config, *header);
  if (!final_merge.ok()) {
    std::fprintf(stderr, "%s\n", final_merge.status().ToString().c_str());
    return 1;
  }
  std::printf("coordinator: all %zu grid cell(s) terminal; journal %s\n",
              final_merge->grid_cells, merged.c_str());
  return WriteMergedReport(std::move(config), merged);
}

/// Produces the merged JSON report by running a report-only campaign over the
/// merged journal. Run() re-reads the journal under the freshly recomputed
/// header and writes the report.
int WriteMergedReport(etsc::bench::CampaignConfig config,
                      const std::string& journal_path) {
  config.cache_path = journal_path;
  config.report_path = journal_path + ".report.json";
  config.report_only = true;
  config.shard_index = 0;
  config.shard_count = 1;
  etsc::bench::Campaign campaign(std::move(config));
  const etsc::Status status = campaign.Run();
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("merged report: %s\n", campaign.ReportPath().c_str());
  return 0;
}

/// Combines shard (or fabric) journals written under one campaign config into
/// a single canonical journal at `out_path`, then writes the merged report.
/// Every input is validated against the fingerprint this process derives from
/// ETSC_BENCH_* + the generated data, so journals from a different config or
/// different data are refused with a diagnostic naming both fingerprints.
/// With `follow`, keeps re-merging until every grid cell has a terminal row
/// (a live view over journals that crashed workers are still filling in).
int MergeShards(const std::string& out_path,
                const std::vector<std::string>& inputs, bool follow) {
  auto config = etsc::bench::CampaignConfig::FromEnv();
  const auto header = etsc::bench::JournalHeaderForConfig(config);
  if (!header.ok()) {
    std::fprintf(stderr, "%s\n", header.status().ToString().c_str());
    return 1;
  }
  for (;;) {
    const auto merged =
        etsc::bench::MergeShardJournals(out_path, inputs, config, *header);
    if (!merged.ok()) {
      std::fprintf(stderr, "%s\n", merged.status().ToString().c_str());
      return 1;
    }
    if (!follow || merged->complete) {
      std::printf(
          "merged %zu row(s) from %zu journal(s) into %s (%zu/%zu grid "
          "cell(s) terminal%s)\n",
          merged->rows, inputs.size(), out_path.c_str(),
          merged->terminal_cells, merged->grid_cells,
          merged->complete ? "" : " — incomplete");
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
  }
  return WriteMergedReport(std::move(config), out_path);
}

void WriteCanonical(const etsc::json::Value& value, etsc::json::Writer* w) {
  using Type = etsc::json::Value::Type;
  switch (value.type) {
    case Type::kNull:
      w->Null();
      break;
    case Type::kBool:
      w->Bool(value.bool_value);
      break;
    case Type::kNumber:
      w->Number(value.number);
      break;
    case Type::kString:
      w->String(value.string);
      break;
    case Type::kArray:
      w->BeginArray();
      for (const auto& element : value.array) WriteCanonical(element, w);
      w->EndArray();
      break;
    case Type::kObject:
      w->BeginObject();
      for (const auto& [key, element] : value.object) {
        w->Key(key);
        WriteCanonical(element, w);
      }
      w->EndObject();
      break;
  }
}

/// Drops every report field that legitimately varies between runs of the same
/// campaign — timings, thread counts, cache provenance, retry/backoff
/// telemetry, metric snapshots — so what remains is exactly the result
/// content that sharding must preserve. Cells of algorithms in
/// `ignore_algos` are removed wholesale (with the counts that cover them), so
/// a fault-injected campaign can be compared to a clean one on the
/// unaffected algorithms alone (the check.sh fault-matrix gate).
void StripVolatile(etsc::json::Value* report,
                   const std::vector<std::string>& ignore_algos) {
  if (!report->is_object()) return;
  for (const char* key : {"phases", "threads", "cpu_seconds", "cells_loaded",
                          "cells_computed", "metrics", "fit_retries",
                          "fault_spec"}) {
    report->object.erase(key);
  }
  const auto config = report->object.find("config");
  if (config != report->object.end() && config->second.is_object()) {
    config->second.object.erase("cache_path");
    config->second.object.erase("report_only");
    // Which kernel path computed the numbers is execution provenance, not
    // result content — ETSC_SIMD=0 and =1 runs must diff equal.
    config->second.object.erase("simd");
    // A harness knob, not result content: the whole point of --ignore-algos
    // is comparing a fault-injected campaign against a clean one.
    config->second.object.erase("fault_spec");
    // An ignored algorithm's presence in the config list is as irrelevant as
    // its cells: a clean ECTS-only run must compare equal to a faulted
    // ECTS+EDSC run under --ignore-algos EDSC.
    const auto algos = config->second.object.find("algorithms");
    if (algos != config->second.object.end() && algos->second.is_array()) {
      auto& list = algos->second.array;
      list.erase(std::remove_if(list.begin(), list.end(),
                                [&](const etsc::json::Value& name) {
                                  return std::find(ignore_algos.begin(),
                                                   ignore_algos.end(),
                                                   name.string) !=
                                         ignore_algos.end();
                                }),
                 list.end());
    }
  }
  const auto cells = report->object.find("cells");
  if (cells != report->object.end() && cells->second.is_array()) {
    auto& array = cells->second.array;
    array.erase(std::remove_if(array.begin(), array.end(),
                               [&](const etsc::json::Value& cell) {
                                 if (!cell.is_object()) return false;
                                 const auto algo = cell.object.find("algorithm");
                                 return algo != cell.object.end() &&
                                        std::find(ignore_algos.begin(),
                                                  ignore_algos.end(),
                                                  algo->second.string) !=
                                            ignore_algos.end();
                               }),
                array.end());
    for (auto& cell : array) {
      if (!cell.is_object()) continue;
      cell.object.erase("train_seconds");
      cell.object.erase("test_seconds_per_instance");
      cell.object.erase("retries");
    }
  }
  if (!ignore_algos.empty()) {
    // These aggregate over the dropped cells too; with algorithms ignored
    // they no longer describe the compared content.
    report->object.erase("cells_failed");
    report->object.erase("cells_quarantined");
  }
}

/// Renames algorithms (config list + cells) before the comparison. The use
/// case is the bit-identity contract between a legacy monolith and its
/// composed '<base>+<trigger>' twin: the campaigns agree on every score but
/// disagree on the algorithm's name, so --map-algo ECTS=1nn+ects-mpl maps the
/// legacy report onto the composed one's naming. Applied to both sides (a
/// no-op on the side already using NEW).
void MapAlgos(etsc::json::Value* report,
              const std::vector<std::pair<std::string, std::string>>& renames) {
  if (renames.empty() || !report->is_object()) return;
  auto rename = [&](etsc::json::Value* name) {
    if (name->type != etsc::json::Value::Type::kString) return;
    for (const auto& [from, to] : renames) {
      if (name->string == from) {
        name->string = to;
        return;
      }
    }
  };
  const auto config = report->object.find("config");
  if (config != report->object.end() && config->second.is_object()) {
    const auto algos = config->second.object.find("algorithms");
    if (algos != config->second.object.end() && algos->second.is_array()) {
      for (auto& name : algos->second.array) rename(&name);
    }
  }
  const auto cells = report->object.find("cells");
  if (cells != report->object.end() && cells->second.is_array()) {
    for (auto& cell : cells->second.array) {
      if (!cell.is_object()) continue;
      const auto algo = cell.object.find("algorithm");
      if (algo != cell.object.end()) rename(&algo->second);
    }
  }
}

etsc::Result<std::string> CanonicalReport(
    const std::string& path, const std::vector<std::string>& ignore_algos,
    const std::vector<std::pair<std::string, std::string>>& map_algos) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return etsc::Status::IOError("cannot read report " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto parsed = etsc::json::Parse(buffer.str());
  if (!parsed.ok()) return parsed.status();
  MapAlgos(&*parsed, map_algos);
  StripVolatile(&*parsed, ignore_algos);
  etsc::json::Writer w;
  WriteCanonical(*parsed, &w);
  return w.str();
}

int ReportDiff(const std::string& path_a, const std::string& path_b,
               const std::vector<std::string>& ignore_algos,
               const std::vector<std::pair<std::string, std::string>>&
                   map_algos) {
  const auto a = CanonicalReport(path_a, ignore_algos, map_algos);
  if (!a.ok()) {
    std::fprintf(stderr, "%s: %s\n", path_a.c_str(),
                 a.status().ToString().c_str());
    return 1;
  }
  const auto b = CanonicalReport(path_b, ignore_algos, map_algos);
  if (!b.ok()) {
    std::fprintf(stderr, "%s: %s\n", path_b.c_str(),
                 b.status().ToString().c_str());
    return 1;
  }
  if (*a == *b) {
    std::printf("reports match (modulo timings)\n");
    return 0;
  }
  size_t pos = 0;
  const size_t limit = std::min(a->size(), b->size());
  while (pos < limit && (*a)[pos] == (*b)[pos]) ++pos;
  const size_t from = pos < 40 ? 0 : pos - 40;
  std::fprintf(stderr,
               "reports differ at canonical byte %zu:\n  %s: ...%s\n  %s:"
               " ...%s\n",
               pos, path_a.c_str(), a->substr(from, 80).c_str(),
               path_b.c_str(), b->substr(from, 80).c_str());
  return 3;
}

/// Resolves --algo: a registered algorithm name, or a composed
/// '<base>+<trigger>' spec built from the base-classifier and trigger
/// registries.
etsc::Result<std::unique_ptr<etsc::EarlyClassifier>> CreateModel(
    const std::string& algo) {
  if (algo.find('+') != std::string::npos) {
    auto composed = etsc::MakeComposedFromSpec(algo);
    if (!composed.ok()) return composed.status();
    return std::unique_ptr<etsc::EarlyClassifier>(std::move(*composed));
  }
  return etsc::ClassifierRegistry::Global().Create(algo);
}

/// Loads the dataset selected by --csv/--arff/--dataset into `out`.
/// Returns 0, or the exit code to fail with.
int LoadDatasetFromArgs(const CliArgs& args, etsc::Dataset* out) {
  if (!args.csv_path.empty()) {
    auto loaded = etsc::LoadCsv(args.csv_path, args.variables);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    *out = std::move(*loaded);
  } else if (!args.arff_path.empty()) {
    auto loaded = etsc::LoadArff(args.arff_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    *out = std::move(*loaded);
  } else if (!args.dataset.empty()) {
    etsc::RepositoryOptions repo;
    repo.seed = args.seed;
    repo.height_scale = args.scale;
    auto benchmark = etsc::MakeBenchmarkDataset(args.dataset, repo);
    if (!benchmark.ok()) {
      std::fprintf(stderr, "%s\n", benchmark.status().ToString().c_str());
      return 1;
    }
    *out = std::move(benchmark->data);
  } else {
    PrintUsage();
    return 1;
  }
  out->FillMissingValues();
  return 0;
}

/// `--serve`: fits (or cache-loads) one model, replays a deterministic ingest
/// trace of --sessions concurrent partial series through the ServingEngine in
/// batches of --dispatch-every events, cross-checks every decision against
/// the sequential single-StreamingSession reference, and reports throughput +
/// decision-latency quantiles (the Figure-13 numbers under serving load).
int RunServe(const CliArgs& args) {
  if (args.algo.empty()) {
    PrintUsage();
    return 1;
  }
  etsc::Dataset dataset;
  if (const int rc = LoadDatasetFromArgs(args, &dataset); rc != 0) return rc;
  std::printf("dataset %s: %zu instances, %zu vars, length %zu\n",
              dataset.name().c_str(), dataset.size(), dataset.NumVariables(),
              dataset.MaxLength());

  auto created = CreateModel(args.algo);
  if (!created.ok()) {
    std::fprintf(stderr, "%s\n", created.status().ToString().c_str());
    return 1;
  }
  std::shared_ptr<etsc::EarlyClassifier> model = std::move(*created);
  if (dataset.NumVariables() > 1 && !model->SupportsMultivariate()) {
    std::fprintf(stderr, "%s does not support multivariate data\n",
                 args.algo.c_str());
    return 1;
  }

  // One fitted model shared by every session, reused across invocations via
  // the model cache (ETSC_MODEL_CACHE) under the full-dataset key.
  const auto cache = etsc::ModelCache::FromEnv();
  etsc::ModelCacheKey key;
  key.config_fingerprint = model->config_fingerprint();
  key.dataset_fingerprint = dataset.Fingerprint();
  key.fold = 0;
  key.num_folds = 1;
  key.seed = args.seed;
  etsc::Stopwatch fit_timer;
  bool cached = cache != nullptr && cache->TryLoad(key, model.get());
  if (!cached) {
    const etsc::Status fitted = model->Fit(dataset);
    if (!fitted.ok()) {
      std::fprintf(stderr, "fit failed: %s\n", fitted.ToString().c_str());
      return 2;
    }
    if (cache != nullptr) {
      const etsc::Status stored = cache->Store(key, *model);
      if (!stored.ok()) {
        std::fprintf(stderr, "model cache store: %s\n",
                     stored.ToString().c_str());
      }
    }
  }
  std::printf("model %s %s in %.2f s\n", args.algo.c_str(),
              cached ? "cache-loaded" : "fitted", fit_timer.Seconds());

  const auto trace =
      etsc::BuildReplayTrace(dataset, args.sessions, args.seed);
  if (trace.empty()) {
    std::fprintf(stderr, "empty ingest trace (empty dataset?)\n");
    return 1;
  }

  // Reference first: the sequential single-caller path.
  etsc::Stopwatch sequential_timer;
  const auto expected = etsc::ReplaySequential(
      *model, dataset.NumVariables(), args.sessions, trace);
  const double sequential_seconds = sequential_timer.Seconds();

  etsc::ServingOptions options = etsc::ServingOptions::FromEnv();
  options.expected_length = dataset.MaxLength();
  // --wal overrides ETSC_SERVE_WAL; --recover replays that file instead of
  // journaling onto it blind (Recover arms the appends itself).
  std::string wal_path = !args.wal.empty() ? args.wal : options.wal_path;
  if (args.recover && wal_path.empty()) {
    std::fprintf(stderr, "--recover needs --wal PATH (or ETSC_SERVE_WAL)\n");
    return 1;
  }
  options.wal_path = args.recover ? std::string() : wal_path;
  etsc::ServingEngine engine(options);
  std::shared_ptr<const etsc::EarlyClassifier> shared = model;
  const etsc::Status registered =
      engine.RegisterModel(args.algo, shared, dataset.NumVariables());
  if (!registered.ok()) {
    std::fprintf(stderr, "%s\n", registered.ToString().c_str());
    return 1;
  }

  etsc::WalRecovery recovery;
  if (args.recover) {
    auto recovered = engine.Recover(wal_path);
    if (!recovered.ok()) {
      std::fprintf(stderr, "recover failed: %s\n",
                   recovered.status().ToString().c_str());
      return 1;
    }
    recovery = *recovered;
    std::printf(
        "recover: %zu sessions (%zu observations, %zu finishes, %zu removed, "
        "%zu decided) from %s in %.1f ms; %zu torn row(s) skipped\n",
        recovery.sessions_recovered, recovery.observations_replayed,
        recovery.finishes_replayed, recovery.sessions_removed,
        recovery.decisions_recovered, wal_path.c_str(),
        recovery.replay_seconds * 1e3, recovery.torn_rows);
  }

  // Scripted crash injection for the chaos drill (no-op when unset).
  etsc::ArmServeFaultFromEnv();

  etsc::Stopwatch serve_timer;
  const auto actual =
      args.recover
          ? etsc::ResumeReplayThroughEngine(engine, args.algo, args.sessions,
                                            trace, args.dispatch_every)
          : etsc::ReplayThroughEngine(engine, args.algo, args.sessions, trace,
                                      args.dispatch_every);
  const double serve_seconds = serve_timer.Seconds();
  if (!actual.ok()) {
    std::fprintf(stderr, "%s\n", actual.status().ToString().c_str());
    return 1;
  }

  size_t divergent = 0;
  for (size_t s = 0; s < args.sessions; ++s) {
    if (!((*actual)[s] == expected[s])) ++divergent;
  }
  // Trigger decision metadata aggregated over the replayed sessions: where
  // the stopping rule halted, how early, and with what confidence. via_finish
  // sessions never tripped the trigger — the end of stream forced them.
  size_t trigger_halts = 0;
  size_t forced_finishes = 0;
  size_t failed_sessions = 0;
  double sum_halt_step = 0.0;
  double sum_earliness = 0.0;
  double sum_confidence = 0.0;
  for (const auto& outcome : *actual) {
    if (outcome.failed) {
      ++failed_sessions;
      continue;
    }
    if (outcome.via_finish) {
      ++forced_finishes;
    } else {
      ++trigger_halts;
    }
    sum_halt_step += static_cast<double>(outcome.halt_step);
    sum_earliness += outcome.earliness;
    sum_confidence += outcome.confidence;
  }
  const double decided =
      static_cast<double>(trigger_halts + forced_finishes);
  const double mean_halt_step = decided > 0.0 ? sum_halt_step / decided : 0.0;
  const double mean_earliness = decided > 0.0 ? sum_earliness / decided : 1.0;
  const double mean_confidence =
      decided > 0.0 ? sum_confidence / decided : 0.0;
  if (divergent > 0) {
    std::fprintf(stderr,
                 "FAIL: %zu/%zu sessions diverged from the sequential "
                 "reference\n",
                 divergent, args.sessions);
    return 4;
  }

  const etsc::ServingStats stats = engine.stats();
  const etsc::Histogram& latency =
      etsc::MetricRegistry::Global().histogram("serving.decision_seconds");
  const double sessions_per_second =
      serve_seconds > 0.0 ? static_cast<double>(args.sessions) / serve_seconds
                          : 0.0;
  const double ingest_per_second =
      serve_seconds > 0.0 ? static_cast<double>(trace.size()) / serve_seconds
                          : 0.0;
  std::printf(
      "serve: %zu sessions, %zu events, %zu batches, %zu decisions "
      "(%zu deadline-forced) in %.3f s (sequential reference %.3f s)\n",
      args.sessions, trace.size(), stats.batches, stats.decisions,
      stats.deadline_forced, serve_seconds, sequential_seconds);
  std::printf(
      "serve: %.0f sessions/s, %.0f obs/s ingest, decision latency "
      "p50=%.3g s p99=%.3g s — batched == sequential (bit-identical)\n",
      sessions_per_second, ingest_per_second, latency.Quantile(0.5),
      latency.Quantile(0.99));
  std::printf(
      "serve: %zu trigger halt(s), %zu forced finish(es), %zu failed; mean "
      "halt step %.1f, mean earliness %.3f, mean confidence %.3f\n",
      trigger_halts, forced_finishes, failed_sessions, mean_halt_step,
      mean_earliness, mean_confidence);
  if (!wal_path.empty()) {
    std::printf(
        "serve: WAL %s — %zu append(s); shed %zu decided + %zu idle, "
        "%zu refusal(s), %zu malformed ingest(s) rejected\n",
        wal_path.c_str(), stats.wal_appends, stats.shed_decided,
        stats.shed_idle, stats.shed_refusals, stats.ingest_rejected);
  }

  if (!args.serve_report.empty()) {
    etsc::json::Writer w;
    w.BeginObject();
    w.Key("dataset").String(dataset.name());
    w.Key("algorithm").String(args.algo);
    w.Key("sessions").Number(args.sessions);
    w.Key("events").Number(trace.size());
    w.Key("dispatch_every").Number(args.dispatch_every);
    w.Key("batches").Number(stats.batches);
    w.Key("decisions").Number(stats.decisions);
    w.Key("deadline_forced").Number(stats.deadline_forced);
    w.Key("serve_seconds").Number(serve_seconds);
    w.Key("sequential_seconds").Number(sequential_seconds);
    w.Key("sessions_per_second").Number(sessions_per_second);
    w.Key("ingest_per_second").Number(ingest_per_second);
    w.Key("decision_p50_seconds").Number(latency.Quantile(0.5));
    w.Key("decision_p99_seconds").Number(latency.Quantile(0.99));
    w.Key("trigger_halts").Number(trigger_halts);
    w.Key("forced_finishes").Number(forced_finishes);
    w.Key("failed_sessions").Number(failed_sessions);
    w.Key("mean_halt_step").Number(mean_halt_step);
    w.Key("mean_halt_earliness").Number(mean_earliness);
    w.Key("mean_halt_confidence").Number(mean_confidence);
    w.Key("wal").String(wal_path);
    w.Key("wal_appends").Number(stats.wal_appends);
    w.Key("recovered").Bool(args.recover);
    w.Key("sessions_recovered").Number(recovery.sessions_recovered);
    w.Key("observations_replayed").Number(recovery.observations_replayed);
    w.Key("wal_replay_ms").Number(recovery.replay_seconds * 1e3);
    w.Key("wal_torn_rows").Number(recovery.torn_rows);
    w.Key("shed_decided").Number(stats.shed_decided);
    w.Key("shed_idle").Number(stats.shed_idle);
    w.Key("shed_refusals").Number(stats.shed_refusals);
    w.Key("ingest_rejected").Number(stats.ingest_rejected);
    w.Key("bit_identical").Bool(true);
    w.EndObject();
    std::ofstream out(args.serve_report, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", args.serve_report.c_str());
      return 1;
    }
    out << w.str() << "\n";
    std::printf("serve report: %s\n", args.serve_report.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  etsc::RegisterBuiltinClassifiers();
  CliArgs args;
  if (!ParseArgs(argc, argv, &args)) {
    PrintUsage();
    return 1;
  }

  if (const int rc = ApplyCompositionFlags(args); rc != 0) return rc;

  if (!args.diff_reports.empty()) {
    return ReportDiff(args.diff_reports[0], args.diff_reports[1],
                      args.ignore_algos, args.map_algos);
  }
  if (!args.merge_out.empty()) {
    return MergeShards(args.merge_out, args.merge_inputs, args.follow);
  }
  if (args.serve) {
    return RunServe(args);
  }
  if (args.worker) {
    return RunWorkerProcess(args);
  }
  if (args.workers > 0) {
    return RunCoordinator(args, argv[0]);
  }
  if (args.campaign) {
    return RunCampaign(args);
  }

  if (args.list) {
    std::printf("algorithms:");
    for (const auto& name : etsc::ClassifierRegistry::Global().Names()) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\ntriggers:");
    for (const auto& name : etsc::TriggerRegistry::Global().Names()) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\nbase classifiers:");
    for (const auto& name : etsc::BaseClassifierRegistry::Global().Names()) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\ndatasets:");
    for (const auto& name : etsc::BenchmarkDatasetNames()) {
      std::printf(" %s", name.c_str());
    }
    std::printf(
        "\ncomposed: any '<base classifier>+<trigger>' spec (e.g. "
        "minirocket-logistic+prob) works wherever an algorithm name does: "
        "--algo, ETSC_BENCH_ALGOS, or the --classifiers/--triggers "
        "cross-product\n");
    return 0;
  }

  if (args.algo.empty()) {
    PrintUsage();
    return 1;
  }
  auto model = CreateModel(args.algo);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }

  etsc::Dataset dataset;
  if (const int rc = LoadDatasetFromArgs(args, &dataset); rc != 0) return rc;

  std::printf("dataset %s: %zu instances, %zu vars, length %zu, %zu classes\n",
              dataset.name().c_str(), dataset.size(), dataset.NumVariables(),
              dataset.MaxLength(), dataset.NumClasses());

  etsc::EvaluationOptions options;
  options.num_folds = args.folds;
  options.seed = args.seed;
  options.train_budget_seconds = args.budget;
  // ETSC_MODEL_CACHE reuses fitted models across invocations of the same
  // (algorithm config, dataset, fold, seed); unset means no caching.
  options.model_cache = etsc::ModelCache::FromEnv();
  const etsc::EvaluationResult result =
      etsc::CrossValidate(dataset, **model, options);
  if (!result.trained()) {
    std::fprintf(stderr, "%s did not train within budget: %s\n",
                 args.algo.c_str(),
                 result.folds.empty() ? "?" : result.folds[0].failure.c_str());
    return 2;
  }
  const etsc::EvalScores scores = result.MeanScores();
  std::printf(
      "%s (%zu-fold CV): accuracy=%.4f f1=%.4f earliness=%.4f "
      "harmonic_mean=%.4f train=%.2f min test=%.4f s/instance\n",
      result.algorithm.c_str(), args.folds, scores.accuracy, scores.f1,
      scores.earliness, scores.harmonic_mean, result.MeanTrainSeconds() / 60.0,
      result.MeanTestSecondsPerInstance());
  return 0;
}
