// Command-line front end of the framework — the C++ analogue of the Python
// repository's cli.py (paper Sec. 5.5). Runs any registered algorithm on a
// benchmark dataset or a user file, with the paper's CV protocol, and prints
// every metric of Sec. 2.2.
//
// Usage:
//   etsc_cli --list
//   etsc_cli --algo teaser --dataset PowerCons [--folds 5] [--budget 60]
//   etsc_cli --algo ects --csv my.csv [--variables 3]
//   etsc_cli --algo ecec --arff my.arff
//   etsc_cli --campaign [--shard I/N] [--max-retries N] [--quarantine-after N]
//                                             (config via ETSC_BENCH_* env)
//   etsc_cli --merge-shards OUT IN1 IN2 ...   (combine shard journals + report)
//   etsc_cli --report-diff A.json B.json [--ignore-algos A,B]
//                                             (compare reports modulo timings)
//
// Exit code 0 on success, 1 on usage/setup errors, 2 when the algorithm could
// not train within the budget, 3 when --report-diff finds a difference.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "algos/registrations.h"
#include "bench/bench_common.h"
#include "core/arff.h"
#include "core/csv.h"
#include "core/evaluation.h"
#include "core/json.h"
#include "core/model_cache.h"
#include "core/registry.h"
#include "data/repository.h"

namespace {

struct CliArgs {
  bool list = false;
  bool campaign = false;
  std::string shard;                     // "i/N", with --campaign
  std::string merge_out;                 // destination of --merge-shards
  std::vector<std::string> merge_inputs; // shard journals to merge
  std::vector<std::string> diff_reports; // the two --report-diff operands
  std::vector<std::string> ignore_algos; // --report-diff: drop these cells
  int max_retries = -1;                  // --campaign override; -1 = env/default
  int quarantine_after = -1;             // --campaign override; -1 = env/default
  std::string algo;
  std::string dataset;
  std::string csv_path;
  std::string arff_path;
  size_t variables = 1;
  size_t folds = 5;
  double budget = 300.0;
  uint64_t seed = 42;
  double scale = 0.2;
};

void PrintUsage() {
  std::printf(
      "usage: etsc_cli --list\n"
      "       etsc_cli --algo NAME (--dataset BENCH | --csv FILE [--variables"
      " K] | --arff FILE)\n"
      "                [--folds N] [--budget SECONDS] [--seed S] [--scale F]\n"
      "       etsc_cli --campaign [--shard I/N] [--max-retries N]\n"
      "                [--quarantine-after N]    (ETSC_BENCH_* env config)\n"
      "       etsc_cli --merge-shards OUT IN1 IN2 ...\n"
      "       etsc_cli --report-diff A.json B.json [--ignore-algos A,B]\n");
}

bool ParseArgs(int argc, char** argv, CliArgs* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", what);
        return nullptr;
      }
      return argv[++i];
    };
    if (flag == "--list") {
      args->list = true;
    } else if (flag == "--campaign") {
      args->campaign = true;
    } else if (flag == "--shard") {
      const char* v = next("--shard");
      if (v == nullptr) return false;
      args->shard = v;
    } else if (flag == "--merge-shards") {
      const char* v = next("--merge-shards");
      if (v == nullptr) return false;
      args->merge_out = v;
      while (i + 1 < argc && argv[i + 1][0] != '-') {
        args->merge_inputs.push_back(argv[++i]);
      }
      if (args->merge_inputs.empty()) {
        std::fprintf(stderr, "--merge-shards needs input journals\n");
        return false;
      }
    } else if (flag == "--report-diff") {
      for (int k = 0; k < 2; ++k) {
        const char* v = next("--report-diff");
        if (v == nullptr) return false;
        args->diff_reports.push_back(v);
      }
    } else if (flag == "--ignore-algos") {
      const char* v = next("--ignore-algos");
      if (v == nullptr) return false;
      std::stringstream ss(v);
      std::string item;
      while (std::getline(ss, item, ',')) {
        if (!item.empty()) args->ignore_algos.push_back(item);
      }
    } else if (flag == "--max-retries") {
      const char* v = next("--max-retries");
      if (v == nullptr) return false;
      args->max_retries = std::atoi(v);
    } else if (flag == "--quarantine-after") {
      const char* v = next("--quarantine-after");
      if (v == nullptr) return false;
      args->quarantine_after = std::atoi(v);
    } else if (flag == "--algo") {
      const char* v = next("--algo");
      if (v == nullptr) return false;
      args->algo = v;
    } else if (flag == "--dataset") {
      const char* v = next("--dataset");
      if (v == nullptr) return false;
      args->dataset = v;
    } else if (flag == "--csv") {
      const char* v = next("--csv");
      if (v == nullptr) return false;
      args->csv_path = v;
    } else if (flag == "--arff") {
      const char* v = next("--arff");
      if (v == nullptr) return false;
      args->arff_path = v;
    } else if (flag == "--variables") {
      const char* v = next("--variables");
      if (v == nullptr) return false;
      args->variables = std::strtoul(v, nullptr, 10);
    } else if (flag == "--folds") {
      const char* v = next("--folds");
      if (v == nullptr) return false;
      args->folds = std::strtoul(v, nullptr, 10);
    } else if (flag == "--budget") {
      const char* v = next("--budget");
      if (v == nullptr) return false;
      args->budget = std::strtod(v, nullptr);
    } else if (flag == "--seed") {
      const char* v = next("--seed");
      if (v == nullptr) return false;
      args->seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--scale") {
      const char* v = next("--scale");
      if (v == nullptr) return false;
      args->scale = std::strtod(v, nullptr);
    } else if (flag == "--help" || flag == "-h") {
      PrintUsage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
      return false;
    }
  }
  return true;
}

bool ParseShardSpec(const std::string& spec, size_t* index, size_t* count) {
  const size_t slash = spec.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= spec.size()) {
    return false;
  }
  char* end = nullptr;
  const unsigned long long i = std::strtoull(spec.c_str(), &end, 10);
  if (end != spec.c_str() + slash) return false;
  const unsigned long long n = std::strtoull(spec.c_str() + slash + 1, &end, 10);
  if (end != spec.c_str() + spec.size()) return false;
  if (n == 0 || i >= n) return false;
  *index = static_cast<size_t>(i);
  *count = static_cast<size_t>(n);
  return true;
}

int RunCampaign(const CliArgs& args) {
  auto config = etsc::bench::CampaignConfig::FromEnv();
  if (!args.shard.empty() &&
      !ParseShardSpec(args.shard, &config.shard_index, &config.shard_count)) {
    std::fprintf(stderr, "bad --shard spec '%s' (want I/N with 0 <= I < N)\n",
                 args.shard.c_str());
    return 1;
  }
  // Flags beat the ETSC_RETRY_*/ETSC_QUARANTINE_AFTER environment.
  if (args.max_retries >= 0) {
    config.supervisor.retry.max_retries = args.max_retries;
  }
  if (args.quarantine_after >= 0) {
    config.supervisor.quarantine_after = args.quarantine_after;
  }
  etsc::bench::Campaign campaign(std::move(config));
  campaign.Run();
  std::printf("campaign journal: %s\nreport: %s\n",
              campaign.config().cache_path.c_str(),
              campaign.ReportPath().c_str());
  return 0;
}

/// Combines shard journals written under one campaign config into a single
/// journal at `out_path`, then produces the merged JSON report by running a
/// report-only campaign over it. Rows are deduplicated keep-last per
/// (algorithm, dataset) — matching Campaign::LoadCache — and reordered into
/// the canonical dataset-major grid of the current ETSC_BENCH_* config, so
/// the merged journal is byte-identical to what one unsharded process would
/// have written serially. Pairs outside the grid survive in first-seen order.
int MergeShards(const std::string& out_path,
                const std::vector<std::string>& inputs) {
  constexpr char kSentinel[] = ",#end";
  constexpr size_t kSentinelLen = sizeof(kSentinel) - 1;
  std::string header;
  std::map<std::pair<std::string, std::string>, std::string> rows;
  std::vector<std::pair<std::string, std::string>> order;
  for (const auto& path : inputs) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot read shard journal %s\n", path.c_str());
      return 1;
    }
    std::string line;
    if (!std::getline(in, line) || line.rfind("# ", 0) != 0) {
      std::fprintf(stderr, "%s: missing journal header line\n", path.c_str());
      return 1;
    }
    if (header.empty()) {
      header = line;
    } else if (line != header) {
      // Refuse rather than guess: shards from different configs (or from
      // different generated data) must never be blended into one report.
      std::fprintf(stderr,
                   "%s: header disagrees with %s — shards come from different"
                   " campaign configs or datasets\n",
                   path.c_str(), inputs.front().c_str());
      return 1;
    }
    while (std::getline(in, line)) {
      if (line.size() < kSentinelLen ||
          line.compare(line.size() - kSentinelLen, kSentinelLen, kSentinel) !=
              0) {
        continue;  // truncated by a mid-write crash; drop like LoadCache does
      }
      const size_t c1 = line.find(',');
      if (c1 == std::string::npos) continue;
      const size_t c2 = line.find(',', c1 + 1);
      if (c2 == std::string::npos) continue;
      auto key = std::make_pair(line.substr(0, c1),
                                line.substr(c1 + 1, c2 - c1 - 1));
      const auto [it, inserted] = rows.emplace(key, line);
      if (inserted) {
        order.push_back(key);
      } else {
        it->second = line;  // resumed shard: the freshest row wins
      }
    }
  }

  auto config = etsc::bench::CampaignConfig::FromEnv();
  std::ofstream out(out_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write merged journal %s\n", out_path.c_str());
    return 1;
  }
  out << header << "\n";
  std::map<std::pair<std::string, std::string>, bool> written;
  for (const auto& dataset : config.datasets) {
    for (const auto& algorithm : config.algorithms) {
      const auto it = rows.find({algorithm, dataset});
      if (it == rows.end()) continue;
      out << it->second << "\n";
      written[it->first] = true;
    }
  }
  for (const auto& key : order) {
    if (!written.count(key)) out << rows[key] << "\n";
  }
  out.flush();
  if (!out) {
    std::fprintf(stderr, "write to %s failed\n", out_path.c_str());
    return 1;
  }
  std::printf("merged %zu row(s) from %zu shard journal(s) into %s\n",
              rows.size(), inputs.size(), out_path.c_str());

  // The merged report: a report-only campaign over the combined journal.
  // Run() regenerates the datasets, recomputes the expected header (proving
  // the merged rows describe this config's data), and writes the JSON report.
  config.cache_path = out_path;
  config.report_path = out_path + ".report.json";
  config.report_only = true;
  config.shard_index = 0;
  config.shard_count = 1;
  etsc::bench::Campaign campaign(std::move(config));
  campaign.Run();
  std::printf("merged report: %s\n", campaign.ReportPath().c_str());
  return 0;
}

void WriteCanonical(const etsc::json::Value& value, etsc::json::Writer* w) {
  using Type = etsc::json::Value::Type;
  switch (value.type) {
    case Type::kNull:
      w->Null();
      break;
    case Type::kBool:
      w->Bool(value.bool_value);
      break;
    case Type::kNumber:
      w->Number(value.number);
      break;
    case Type::kString:
      w->String(value.string);
      break;
    case Type::kArray:
      w->BeginArray();
      for (const auto& element : value.array) WriteCanonical(element, w);
      w->EndArray();
      break;
    case Type::kObject:
      w->BeginObject();
      for (const auto& [key, element] : value.object) {
        w->Key(key);
        WriteCanonical(element, w);
      }
      w->EndObject();
      break;
  }
}

/// Drops every report field that legitimately varies between runs of the same
/// campaign — timings, thread counts, cache provenance, retry/backoff
/// telemetry, metric snapshots — so what remains is exactly the result
/// content that sharding must preserve. Cells of algorithms in
/// `ignore_algos` are removed wholesale (with the counts that cover them), so
/// a fault-injected campaign can be compared to a clean one on the
/// unaffected algorithms alone (the check.sh fault-matrix gate).
void StripVolatile(etsc::json::Value* report,
                   const std::vector<std::string>& ignore_algos) {
  if (!report->is_object()) return;
  for (const char* key : {"phases", "threads", "cpu_seconds", "cells_loaded",
                          "cells_computed", "metrics", "fit_retries",
                          "fault_spec"}) {
    report->object.erase(key);
  }
  const auto config = report->object.find("config");
  if (config != report->object.end() && config->second.is_object()) {
    config->second.object.erase("cache_path");
    config->second.object.erase("report_only");
    // A harness knob, not result content: the whole point of --ignore-algos
    // is comparing a fault-injected campaign against a clean one.
    config->second.object.erase("fault_spec");
    // An ignored algorithm's presence in the config list is as irrelevant as
    // its cells: a clean ECTS-only run must compare equal to a faulted
    // ECTS+EDSC run under --ignore-algos EDSC.
    const auto algos = config->second.object.find("algorithms");
    if (algos != config->second.object.end() && algos->second.is_array()) {
      auto& list = algos->second.array;
      list.erase(std::remove_if(list.begin(), list.end(),
                                [&](const etsc::json::Value& name) {
                                  return std::find(ignore_algos.begin(),
                                                   ignore_algos.end(),
                                                   name.string) !=
                                         ignore_algos.end();
                                }),
                 list.end());
    }
  }
  const auto cells = report->object.find("cells");
  if (cells != report->object.end() && cells->second.is_array()) {
    auto& array = cells->second.array;
    array.erase(std::remove_if(array.begin(), array.end(),
                               [&](const etsc::json::Value& cell) {
                                 if (!cell.is_object()) return false;
                                 const auto algo = cell.object.find("algorithm");
                                 return algo != cell.object.end() &&
                                        std::find(ignore_algos.begin(),
                                                  ignore_algos.end(),
                                                  algo->second.string) !=
                                            ignore_algos.end();
                               }),
                array.end());
    for (auto& cell : array) {
      if (!cell.is_object()) continue;
      cell.object.erase("train_seconds");
      cell.object.erase("test_seconds_per_instance");
      cell.object.erase("retries");
    }
  }
  if (!ignore_algos.empty()) {
    // These aggregate over the dropped cells too; with algorithms ignored
    // they no longer describe the compared content.
    report->object.erase("cells_failed");
    report->object.erase("cells_quarantined");
  }
}

etsc::Result<std::string> CanonicalReport(
    const std::string& path, const std::vector<std::string>& ignore_algos) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return etsc::Status::IOError("cannot read report " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto parsed = etsc::json::Parse(buffer.str());
  if (!parsed.ok()) return parsed.status();
  StripVolatile(&*parsed, ignore_algos);
  etsc::json::Writer w;
  WriteCanonical(*parsed, &w);
  return w.str();
}

int ReportDiff(const std::string& path_a, const std::string& path_b,
               const std::vector<std::string>& ignore_algos) {
  const auto a = CanonicalReport(path_a, ignore_algos);
  if (!a.ok()) {
    std::fprintf(stderr, "%s: %s\n", path_a.c_str(),
                 a.status().ToString().c_str());
    return 1;
  }
  const auto b = CanonicalReport(path_b, ignore_algos);
  if (!b.ok()) {
    std::fprintf(stderr, "%s: %s\n", path_b.c_str(),
                 b.status().ToString().c_str());
    return 1;
  }
  if (*a == *b) {
    std::printf("reports match (modulo timings)\n");
    return 0;
  }
  size_t pos = 0;
  const size_t limit = std::min(a->size(), b->size());
  while (pos < limit && (*a)[pos] == (*b)[pos]) ++pos;
  const size_t from = pos < 40 ? 0 : pos - 40;
  std::fprintf(stderr,
               "reports differ at canonical byte %zu:\n  %s: ...%s\n  %s:"
               " ...%s\n",
               pos, path_a.c_str(), a->substr(from, 80).c_str(),
               path_b.c_str(), b->substr(from, 80).c_str());
  return 3;
}

}  // namespace

int main(int argc, char** argv) {
  etsc::RegisterBuiltinClassifiers();
  CliArgs args;
  if (!ParseArgs(argc, argv, &args)) {
    PrintUsage();
    return 1;
  }

  if (!args.diff_reports.empty()) {
    return ReportDiff(args.diff_reports[0], args.diff_reports[1],
                      args.ignore_algos);
  }
  if (!args.merge_out.empty()) {
    return MergeShards(args.merge_out, args.merge_inputs);
  }
  if (args.campaign) {
    return RunCampaign(args);
  }

  if (args.list) {
    std::printf("algorithms:");
    for (const auto& name : etsc::ClassifierRegistry::Global().Names()) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\ndatasets:");
    for (const auto& name : etsc::BenchmarkDatasetNames()) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\n");
    return 0;
  }

  if (args.algo.empty()) {
    PrintUsage();
    return 1;
  }
  auto model = etsc::ClassifierRegistry::Global().Create(args.algo);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }

  etsc::Dataset dataset;
  if (!args.csv_path.empty()) {
    auto loaded = etsc::LoadCsv(args.csv_path, args.variables);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    dataset = std::move(*loaded);
  } else if (!args.arff_path.empty()) {
    auto loaded = etsc::LoadArff(args.arff_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    dataset = std::move(*loaded);
  } else if (!args.dataset.empty()) {
    etsc::RepositoryOptions repo;
    repo.seed = args.seed;
    repo.height_scale = args.scale;
    auto benchmark = etsc::MakeBenchmarkDataset(args.dataset, repo);
    if (!benchmark.ok()) {
      std::fprintf(stderr, "%s\n", benchmark.status().ToString().c_str());
      return 1;
    }
    dataset = std::move(benchmark->data);
  } else {
    PrintUsage();
    return 1;
  }
  dataset.FillMissingValues();

  std::printf("dataset %s: %zu instances, %zu vars, length %zu, %zu classes\n",
              dataset.name().c_str(), dataset.size(), dataset.NumVariables(),
              dataset.MaxLength(), dataset.NumClasses());

  etsc::EvaluationOptions options;
  options.num_folds = args.folds;
  options.seed = args.seed;
  options.train_budget_seconds = args.budget;
  // ETSC_MODEL_CACHE reuses fitted models across invocations of the same
  // (algorithm config, dataset, fold, seed); unset means no caching.
  options.model_cache = etsc::ModelCache::FromEnv();
  const etsc::EvaluationResult result =
      etsc::CrossValidate(dataset, **model, options);
  if (!result.trained()) {
    std::fprintf(stderr, "%s did not train within budget: %s\n",
                 args.algo.c_str(),
                 result.folds.empty() ? "?" : result.folds[0].failure.c_str());
    return 2;
  }
  const etsc::EvalScores scores = result.MeanScores();
  std::printf(
      "%s (%zu-fold CV): accuracy=%.4f f1=%.4f earliness=%.4f "
      "harmonic_mean=%.4f train=%.2f min test=%.4f s/instance\n",
      result.algorithm.c_str(), args.folds, scores.accuracy, scores.f1,
      scores.earliness, scores.harmonic_mean, result.MeanTrainSeconds() / 60.0,
      result.MeanTestSecondsPerInstance());
  return 0;
}
