// Extensibility walkthrough (paper Sec. 5.5): add a new ETSC algorithm and a
// new CSV dataset to the framework, then run the standard cross-validated
// comparison against the built-ins.
//
// The custom algorithm is a deliberately simple "fixed-horizon 1-NN": observe
// a fixed fraction of the series, then answer with the nearest neighbor's
// label — roughly the baseline every ETSC paper starts from.

#include <cstdio>
#include <limits>
#include <memory>

#include "algos/registrations.h"
#include "core/csv.h"
#include "core/evaluation.h"
#include "core/registry.h"
#include "tests/test_util.h"

namespace {

/// A minimal EarlyClassifier: the same abstract interface every built-in
/// implements (the C++ analogue of the Python framework's EarlyClassifier).
class FixedHorizonOneNn : public etsc::EarlyClassifier {
 public:
  explicit FixedHorizonOneNn(double fraction = 0.5) : fraction_(fraction) {}

  etsc::Status Fit(const etsc::Dataset& train) override {
    if (train.empty()) {
      return etsc::Status::InvalidArgument("1-NN: empty training set");
    }
    if (train.NumVariables() != 1) {
      return etsc::Status::InvalidArgument("1-NN: univariate input required");
    }
    train_ = train;
    horizon_ = std::max<size_t>(
        1, static_cast<size_t>(fraction_ *
                               static_cast<double>(train.MinLength())));
    return etsc::Status::OK();
  }

  etsc::Result<etsc::EarlyPrediction> PredictEarly(
      const etsc::TimeSeries& series) const override {
    if (train_.empty()) {
      return etsc::Status::FailedPrecondition("1-NN: not fitted");
    }
    const size_t consumed = std::min(horizon_, series.length());
    double best = std::numeric_limits<double>::infinity();
    int label = train_.label(0);
    for (size_t i = 0; i < train_.size(); ++i) {
      const double d = EuclideanDistance(series, train_.instance(i), consumed);
      if (d < best) {
        best = d;
        label = train_.label(i);
      }
    }
    return etsc::EarlyPrediction{label, consumed};
  }

  std::string name() const override { return "1NN-fixed"; }
  bool SupportsMultivariate() const override { return false; }
  std::unique_ptr<etsc::EarlyClassifier> CloneUntrained() const override {
    return std::make_unique<FixedHorizonOneNn>(fraction_);
  }

 private:
  double fraction_;
  size_t horizon_ = 1;
  etsc::Dataset train_;
};

}  // namespace

int main() {
  etsc::RegisterBuiltinClassifiers();

  // Step 1: register the new algorithm; every harness can now create it by
  // name exactly like the built-ins.
  auto& registry = etsc::ClassifierRegistry::Global();
  etsc::Status status = registry.Register(
      "1nn-fixed", [] { return std::make_unique<FixedHorizonOneNn>(0.5); });
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("Registered algorithms:");
  for (const auto& name : registry.Names()) std::printf(" %s", name.c_str());
  std::printf("\n");

  // Step 2: add a dataset through the framework's CSV exchange format (each
  // row: label, v1, v2, ...). Here we serialise a synthetic set and reload it
  // the way a user would load their own file.
  const etsc::Dataset original = etsc::testing::MakeToyDataset(30, 40);
  const std::string csv = etsc::ToCsv(original);
  auto loaded = etsc::ParseCsv(csv, /*num_variables=*/1, "my-dataset");
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("Loaded '%s' from CSV: %zu instances of length %zu\n",
              loaded->name().c_str(), loaded->size(), loaded->MaxLength());

  // Step 3: the standard protocol compares the newcomer against built-ins.
  etsc::EvaluationOptions options;
  options.num_folds = 5;
  for (const char* algorithm : {"1nn-fixed", "ects", "teaser"}) {
    auto model = registry.Create(algorithm);
    if (!model.ok()) continue;
    const etsc::EvaluationResult result =
        etsc::CrossValidate(*loaded, **model, options);
    const etsc::EvalScores scores = result.MeanScores();
    std::printf("%-10s acc=%.3f f1=%.3f earliness=%.3f hm=%.3f\n",
                result.algorithm.c_str(), scores.accuracy, scores.f1,
                scores.earliness, scores.harmonic_mean);
  }
  return 0;
}
