// Exports the benchmark corpus to CSV files in the framework's exchange
// format — the analogue of the datasets shipped in the paper's repository.
//
//   ./export_datasets [output_dir] [height_scale]
//
// Each dataset becomes <dir>/<Name>.csv (rows: label,v1,...; multivariate
// examples on consecutive rows) plus a manifest.txt with the Table-3 profile.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "core/categorize.h"
#include "core/csv.h"
#include "data/repository.h"

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "datasets";
  etsc::RepositoryOptions repo;
  repo.height_scale = argc > 2 ? std::strtod(argv[2], nullptr) : 0.1;
  repo.maritime_windows = 2000;

  const std::string mkdir = "mkdir -p '" + dir + "'";
  if (std::system(mkdir.c_str()) != 0) {
    std::fprintf(stderr, "cannot create %s\n", dir.c_str());
    return 1;
  }

  std::ofstream manifest(dir + "/manifest.txt");
  manifest << "# name height length variables classes CoV CIR categories\n";
  for (const auto& name : etsc::BenchmarkDatasetNames()) {
    auto benchmark = etsc::MakeBenchmarkDataset(name, repo);
    if (!benchmark.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   benchmark.status().ToString().c_str());
      return 1;
    }
    const std::string path = dir + "/" + name + ".csv";
    if (etsc::Status s = etsc::SaveCsv(benchmark->data, path); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    const etsc::DatasetProfile& p = benchmark->canonical_profile;
    manifest << p.name << ' ' << benchmark->data.size() << ' ' << p.length
             << ' ' << p.num_variables << ' ' << p.num_classes << ' ' << p.cov
             << ' ' << p.cir;
    for (auto category : p.categories) {
      manifest << ' ' << etsc::DatasetCategoryName(category);
    }
    manifest << '\n';
    std::printf("wrote %s (%zu instances)\n", path.c_str(),
                benchmark->data.size());
  }
  std::printf("manifest: %s/manifest.txt\n", dir.c_str());
  return 0;
}
