// Quickstart: generate a benchmark dataset, evaluate two ETSC algorithms with
// the paper's cross-validated protocol, and classify one streaming instance.
//
//   ./quickstart [dataset-name]
//
// Dataset names: BasicMotions, Biological, DodgerLoopDay, DodgerLoopGame,
// DodgerLoopWeekend, HouseTwenty, LSST, Maritime, PickupGestureWiimoteZ,
// PLAID, PowerCons, SharePriceIncrease (default: PowerCons).

#include <cstdio>
#include <optional>
#include <string>

#include "algos/registrations.h"
#include "core/evaluation.h"
#include "core/registry.h"
#include "core/streaming.h"
#include "core/voting.h"
#include "data/repository.h"

namespace {

void PrintResult(const etsc::EvaluationResult& result) {
  const etsc::EvalScores scores = result.MeanScores();
  std::printf("%-10s acc=%.3f f1=%.3f earliness=%.3f hm=%.3f train=%.2fs\n",
              result.algorithm.c_str(), scores.accuracy, scores.f1,
              scores.earliness, scores.harmonic_mean, result.MeanTrainSeconds());
}

}  // namespace

int main(int argc, char** argv) {
  etsc::RegisterBuiltinClassifiers();

  const std::string name = argc > 1 ? argv[1] : "PowerCons";
  etsc::RepositoryOptions repo_options;
  repo_options.height_scale = 0.5;  // keep the quickstart quick
  repo_options.maritime_windows = 1500;
  auto dataset = etsc::MakeBenchmarkDataset(name, repo_options);
  if (!dataset.ok()) {
    std::fprintf(stderr, "cannot build dataset '%s': %s\n", name.c_str(),
                 dataset.status().ToString().c_str());
    return 1;
  }
  const etsc::DatasetProfile& profile = dataset->canonical_profile;
  std::printf("Dataset %s: %zu instances x %zu points x %zu vars, %zu classes\n",
              profile.name.c_str(), dataset->data.size(), profile.length,
              profile.num_variables, profile.num_classes);

  // Cross-validated comparison of two algorithms through the registry.
  etsc::EvaluationOptions eval_options;
  eval_options.num_folds = 3;
  eval_options.train_budget_seconds = 120.0;
  for (const char* algorithm : {"teaser", "s-mini"}) {
    auto model = etsc::ClassifierRegistry::Global().Create(algorithm);
    if (!model.ok()) {
      std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
      return 1;
    }
    PrintResult(etsc::CrossValidate(dataset->data, **model, eval_options));
  }

  // Streaming classification of one held-out instance.
  auto model = etsc::ClassifierRegistry::Global().Create("teaser");
  etsc::Rng rng(1);
  const etsc::SplitIndices split = etsc::StratifiedSplit(dataset->data, 0.8, &rng);
  etsc::Dataset train = dataset->data.Subset(split.train);
  etsc::Dataset test = dataset->data.Subset(split.test);
  auto wrapped = etsc::WrapForDataset(std::move(*model), train);
  if (etsc::Status status = wrapped->Fit(train); !status.ok()) {
    std::fprintf(stderr, "fit failed: %s\n", status.ToString().c_str());
    return 1;
  }
  // Feed one held-out instance point-by-point, the way measurements would
  // arrive online; the session reports the moment the algorithm commits.
  const etsc::TimeSeries& instance = test.instance(0);
  etsc::StreamingSession session(*wrapped, instance.num_variables());
  std::optional<etsc::EarlyPrediction> decision;
  for (size_t t = 0; t < instance.length() && !decision.has_value(); ++t) {
    std::vector<double> observation(instance.num_variables());
    for (size_t v = 0; v < instance.num_variables(); ++v) {
      observation[v] = instance.at(v, t);
    }
    auto out = session.Push(observation);
    if (!out.ok()) {
      std::fprintf(stderr, "streaming failed: %s\n",
                   out.status().ToString().c_str());
      return 1;
    }
    decision = *out;
  }
  if (!decision.has_value()) {
    auto finished = session.Finish();
    if (!finished.ok()) return 1;
    decision = *finished;
  }
  std::printf(
      "Streaming instance: true label %d, predicted %d after %zu of %zu "
      "time-points (earliness %.2f)\n",
      test.label(0), decision->label, decision->prefix_length,
      instance.length(),
      static_cast<double>(decision->prefix_length) /
          static_cast<double>(instance.length()));
  return 0;
}
