// Maritime scenario (paper Sec. 5.3 / 6.3): port authorities want to know as
// early as possible whether a vessel will reach the port within the next 30
// minutes. This example trains S-MINI (STRUT over MiniROCKET, multivariate)
// on simulated AIS windows around the Brest port polygon and reports, per
// alert, how many minutes of warning the early classification buys.
//
//   ./maritime_monitoring [num_windows]

#include <cstdio>
#include <cstdlib>

#include "algos/strut.h"
#include "core/metrics.h"
#include "data/maritime_sim.h"

int main(int argc, char** argv) {
  etsc::MaritimeSimOptions sim_options;
  sim_options.num_windows = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1500;
  const etsc::Dataset dataset = etsc::MakeMaritimeDataset(sim_options);
  std::printf("Simulated %zu 30-minute AIS windows around Brest (7 attributes "
              "per minute); %zu end inside the port polygon.\n",
              dataset.size(), dataset.ClassCounts().at(1));

  etsc::Rng rng(7);
  const etsc::SplitIndices split = etsc::StratifiedSplit(dataset, 0.7, &rng);
  etsc::Dataset train = dataset.Subset(split.train);
  etsc::Dataset test = dataset.Subset(split.test);

  auto model = etsc::MakeStrutMiniRocket();
  if (etsc::Status status = model->Fit(train); !status.ok()) {
    std::fprintf(stderr, "training failed: %s\n", status.ToString().c_str());
    return 1;
  }

  std::vector<int> truth, predicted;
  std::vector<size_t> prefixes, lengths;
  double warning_minutes = 0.0;
  size_t true_alerts = 0, false_alerts = 0, missed = 0;
  for (size_t i = 0; i < test.size(); ++i) {
    const etsc::TimeSeries& window = test.instance(i);
    auto pred = model->PredictEarly(window);
    if (!pred.ok()) continue;
    truth.push_back(test.label(i));
    predicted.push_back(pred->label);
    prefixes.push_back(pred->prefix_length);
    lengths.push_back(window.length());

    if (pred->label == 1 && test.label(i) == 1) {
      ++true_alerts;
      warning_minutes +=
          static_cast<double>(window.length() - pred->prefix_length);
    } else if (pred->label == 1) {
      ++false_alerts;
    } else if (test.label(i) == 1) {
      ++missed;
    }
  }

  const etsc::EvalScores scores =
      etsc::ComputeScores(truth, predicted, prefixes, lengths);
  std::printf("S-MINI on held-out windows: %s\n", scores.ToString().c_str());
  std::printf("Port-arrival alerts: %zu correct (avg %.1f minutes of advance "
              "warning), %zu false alerts, %zu arrivals missed.\n",
              true_alerts,
              true_alerts > 0 ? warning_minutes / static_cast<double>(true_alerts)
                              : 0.0,
              false_alerts, missed);
  return 0;
}
