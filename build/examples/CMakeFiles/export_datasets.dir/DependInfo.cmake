
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/export_datasets.cc" "examples/CMakeFiles/export_datasets.dir/export_datasets.cc.o" "gcc" "examples/CMakeFiles/export_datasets.dir/export_datasets.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/algos/CMakeFiles/etsc_algos.dir/DependInfo.cmake"
  "/root/repo/build/src/tsc/CMakeFiles/etsc_tsc.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/etsc_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/etsc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/etsc_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
