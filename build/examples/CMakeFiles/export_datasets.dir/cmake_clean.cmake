file(REMOVE_RECURSE
  "CMakeFiles/export_datasets.dir/export_datasets.cc.o"
  "CMakeFiles/export_datasets.dir/export_datasets.cc.o.d"
  "export_datasets"
  "export_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
