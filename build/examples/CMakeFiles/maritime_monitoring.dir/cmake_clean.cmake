file(REMOVE_RECURSE
  "CMakeFiles/maritime_monitoring.dir/maritime_monitoring.cc.o"
  "CMakeFiles/maritime_monitoring.dir/maritime_monitoring.cc.o.d"
  "maritime_monitoring"
  "maritime_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maritime_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
