# Empty dependencies file for etsc_cli.
# This may be replaced when dependencies are built.
