file(REMOVE_RECURSE
  "CMakeFiles/etsc_cli.dir/etsc_cli.cc.o"
  "CMakeFiles/etsc_cli.dir/etsc_cli.cc.o.d"
  "etsc_cli"
  "etsc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etsc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
