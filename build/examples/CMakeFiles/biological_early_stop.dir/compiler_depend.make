# Empty compiler generated dependencies file for biological_early_stop.
# This may be replaced when dependencies are built.
