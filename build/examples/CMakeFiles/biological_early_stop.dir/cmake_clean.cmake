file(REMOVE_RECURSE
  "CMakeFiles/biological_early_stop.dir/biological_early_stop.cc.o"
  "CMakeFiles/biological_early_stop.dir/biological_early_stop.cc.o.d"
  "biological_early_stop"
  "biological_early_stop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biological_early_stop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
