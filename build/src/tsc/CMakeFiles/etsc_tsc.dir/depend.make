# Empty dependencies file for etsc_tsc.
# This may be replaced when dependencies are built.
