file(REMOVE_RECURSE
  "CMakeFiles/etsc_tsc.dir/minirocket.cc.o"
  "CMakeFiles/etsc_tsc.dir/minirocket.cc.o.d"
  "CMakeFiles/etsc_tsc.dir/mlstm.cc.o"
  "CMakeFiles/etsc_tsc.dir/mlstm.cc.o.d"
  "CMakeFiles/etsc_tsc.dir/muse.cc.o"
  "CMakeFiles/etsc_tsc.dir/muse.cc.o.d"
  "CMakeFiles/etsc_tsc.dir/weasel.cc.o"
  "CMakeFiles/etsc_tsc.dir/weasel.cc.o.d"
  "libetsc_tsc.a"
  "libetsc_tsc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etsc_tsc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
