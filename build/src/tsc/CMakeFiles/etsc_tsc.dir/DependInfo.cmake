
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tsc/minirocket.cc" "src/tsc/CMakeFiles/etsc_tsc.dir/minirocket.cc.o" "gcc" "src/tsc/CMakeFiles/etsc_tsc.dir/minirocket.cc.o.d"
  "/root/repo/src/tsc/mlstm.cc" "src/tsc/CMakeFiles/etsc_tsc.dir/mlstm.cc.o" "gcc" "src/tsc/CMakeFiles/etsc_tsc.dir/mlstm.cc.o.d"
  "/root/repo/src/tsc/muse.cc" "src/tsc/CMakeFiles/etsc_tsc.dir/muse.cc.o" "gcc" "src/tsc/CMakeFiles/etsc_tsc.dir/muse.cc.o.d"
  "/root/repo/src/tsc/weasel.cc" "src/tsc/CMakeFiles/etsc_tsc.dir/weasel.cc.o" "gcc" "src/tsc/CMakeFiles/etsc_tsc.dir/weasel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/etsc_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/etsc_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
