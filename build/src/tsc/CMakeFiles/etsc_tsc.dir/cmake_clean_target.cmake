file(REMOVE_RECURSE
  "libetsc_tsc.a"
)
