
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algos/ecec.cc" "src/algos/CMakeFiles/etsc_algos.dir/ecec.cc.o" "gcc" "src/algos/CMakeFiles/etsc_algos.dir/ecec.cc.o.d"
  "/root/repo/src/algos/economy_k.cc" "src/algos/CMakeFiles/etsc_algos.dir/economy_k.cc.o" "gcc" "src/algos/CMakeFiles/etsc_algos.dir/economy_k.cc.o.d"
  "/root/repo/src/algos/ects.cc" "src/algos/CMakeFiles/etsc_algos.dir/ects.cc.o" "gcc" "src/algos/CMakeFiles/etsc_algos.dir/ects.cc.o.d"
  "/root/repo/src/algos/edsc.cc" "src/algos/CMakeFiles/etsc_algos.dir/edsc.cc.o" "gcc" "src/algos/CMakeFiles/etsc_algos.dir/edsc.cc.o.d"
  "/root/repo/src/algos/prob_threshold.cc" "src/algos/CMakeFiles/etsc_algos.dir/prob_threshold.cc.o" "gcc" "src/algos/CMakeFiles/etsc_algos.dir/prob_threshold.cc.o.d"
  "/root/repo/src/algos/registrations.cc" "src/algos/CMakeFiles/etsc_algos.dir/registrations.cc.o" "gcc" "src/algos/CMakeFiles/etsc_algos.dir/registrations.cc.o.d"
  "/root/repo/src/algos/strut.cc" "src/algos/CMakeFiles/etsc_algos.dir/strut.cc.o" "gcc" "src/algos/CMakeFiles/etsc_algos.dir/strut.cc.o.d"
  "/root/repo/src/algos/teaser.cc" "src/algos/CMakeFiles/etsc_algos.dir/teaser.cc.o" "gcc" "src/algos/CMakeFiles/etsc_algos.dir/teaser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tsc/CMakeFiles/etsc_tsc.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/etsc_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/etsc_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
