file(REMOVE_RECURSE
  "CMakeFiles/etsc_algos.dir/ecec.cc.o"
  "CMakeFiles/etsc_algos.dir/ecec.cc.o.d"
  "CMakeFiles/etsc_algos.dir/economy_k.cc.o"
  "CMakeFiles/etsc_algos.dir/economy_k.cc.o.d"
  "CMakeFiles/etsc_algos.dir/ects.cc.o"
  "CMakeFiles/etsc_algos.dir/ects.cc.o.d"
  "CMakeFiles/etsc_algos.dir/edsc.cc.o"
  "CMakeFiles/etsc_algos.dir/edsc.cc.o.d"
  "CMakeFiles/etsc_algos.dir/prob_threshold.cc.o"
  "CMakeFiles/etsc_algos.dir/prob_threshold.cc.o.d"
  "CMakeFiles/etsc_algos.dir/registrations.cc.o"
  "CMakeFiles/etsc_algos.dir/registrations.cc.o.d"
  "CMakeFiles/etsc_algos.dir/strut.cc.o"
  "CMakeFiles/etsc_algos.dir/strut.cc.o.d"
  "CMakeFiles/etsc_algos.dir/teaser.cc.o"
  "CMakeFiles/etsc_algos.dir/teaser.cc.o.d"
  "libetsc_algos.a"
  "libetsc_algos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etsc_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
