file(REMOVE_RECURSE
  "libetsc_algos.a"
)
