# Empty dependencies file for etsc_algos.
# This may be replaced when dependencies are built.
