file(REMOVE_RECURSE
  "libetsc_ml.a"
)
