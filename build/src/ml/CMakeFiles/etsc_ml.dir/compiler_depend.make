# Empty compiler generated dependencies file for etsc_ml.
# This may be replaced when dependencies are built.
