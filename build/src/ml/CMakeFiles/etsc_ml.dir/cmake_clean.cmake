file(REMOVE_RECURSE
  "CMakeFiles/etsc_ml.dir/chi2.cc.o"
  "CMakeFiles/etsc_ml.dir/chi2.cc.o.d"
  "CMakeFiles/etsc_ml.dir/decision_tree.cc.o"
  "CMakeFiles/etsc_ml.dir/decision_tree.cc.o.d"
  "CMakeFiles/etsc_ml.dir/distance.cc.o"
  "CMakeFiles/etsc_ml.dir/distance.cc.o.d"
  "CMakeFiles/etsc_ml.dir/fourier.cc.o"
  "CMakeFiles/etsc_ml.dir/fourier.cc.o.d"
  "CMakeFiles/etsc_ml.dir/gbdt.cc.o"
  "CMakeFiles/etsc_ml.dir/gbdt.cc.o.d"
  "CMakeFiles/etsc_ml.dir/hierarchical.cc.o"
  "CMakeFiles/etsc_ml.dir/hierarchical.cc.o.d"
  "CMakeFiles/etsc_ml.dir/kmeans.cc.o"
  "CMakeFiles/etsc_ml.dir/kmeans.cc.o.d"
  "CMakeFiles/etsc_ml.dir/linear.cc.o"
  "CMakeFiles/etsc_ml.dir/linear.cc.o.d"
  "CMakeFiles/etsc_ml.dir/nn/layers.cc.o"
  "CMakeFiles/etsc_ml.dir/nn/layers.cc.o.d"
  "CMakeFiles/etsc_ml.dir/nn/lstm.cc.o"
  "CMakeFiles/etsc_ml.dir/nn/lstm.cc.o.d"
  "CMakeFiles/etsc_ml.dir/nn/tensor.cc.o"
  "CMakeFiles/etsc_ml.dir/nn/tensor.cc.o.d"
  "CMakeFiles/etsc_ml.dir/nn_search.cc.o"
  "CMakeFiles/etsc_ml.dir/nn_search.cc.o.d"
  "CMakeFiles/etsc_ml.dir/one_class_svm.cc.o"
  "CMakeFiles/etsc_ml.dir/one_class_svm.cc.o.d"
  "CMakeFiles/etsc_ml.dir/sfa.cc.o"
  "CMakeFiles/etsc_ml.dir/sfa.cc.o.d"
  "libetsc_ml.a"
  "libetsc_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etsc_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
