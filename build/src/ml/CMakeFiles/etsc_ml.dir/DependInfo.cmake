
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/chi2.cc" "src/ml/CMakeFiles/etsc_ml.dir/chi2.cc.o" "gcc" "src/ml/CMakeFiles/etsc_ml.dir/chi2.cc.o.d"
  "/root/repo/src/ml/decision_tree.cc" "src/ml/CMakeFiles/etsc_ml.dir/decision_tree.cc.o" "gcc" "src/ml/CMakeFiles/etsc_ml.dir/decision_tree.cc.o.d"
  "/root/repo/src/ml/distance.cc" "src/ml/CMakeFiles/etsc_ml.dir/distance.cc.o" "gcc" "src/ml/CMakeFiles/etsc_ml.dir/distance.cc.o.d"
  "/root/repo/src/ml/fourier.cc" "src/ml/CMakeFiles/etsc_ml.dir/fourier.cc.o" "gcc" "src/ml/CMakeFiles/etsc_ml.dir/fourier.cc.o.d"
  "/root/repo/src/ml/gbdt.cc" "src/ml/CMakeFiles/etsc_ml.dir/gbdt.cc.o" "gcc" "src/ml/CMakeFiles/etsc_ml.dir/gbdt.cc.o.d"
  "/root/repo/src/ml/hierarchical.cc" "src/ml/CMakeFiles/etsc_ml.dir/hierarchical.cc.o" "gcc" "src/ml/CMakeFiles/etsc_ml.dir/hierarchical.cc.o.d"
  "/root/repo/src/ml/kmeans.cc" "src/ml/CMakeFiles/etsc_ml.dir/kmeans.cc.o" "gcc" "src/ml/CMakeFiles/etsc_ml.dir/kmeans.cc.o.d"
  "/root/repo/src/ml/linear.cc" "src/ml/CMakeFiles/etsc_ml.dir/linear.cc.o" "gcc" "src/ml/CMakeFiles/etsc_ml.dir/linear.cc.o.d"
  "/root/repo/src/ml/nn/layers.cc" "src/ml/CMakeFiles/etsc_ml.dir/nn/layers.cc.o" "gcc" "src/ml/CMakeFiles/etsc_ml.dir/nn/layers.cc.o.d"
  "/root/repo/src/ml/nn/lstm.cc" "src/ml/CMakeFiles/etsc_ml.dir/nn/lstm.cc.o" "gcc" "src/ml/CMakeFiles/etsc_ml.dir/nn/lstm.cc.o.d"
  "/root/repo/src/ml/nn/tensor.cc" "src/ml/CMakeFiles/etsc_ml.dir/nn/tensor.cc.o" "gcc" "src/ml/CMakeFiles/etsc_ml.dir/nn/tensor.cc.o.d"
  "/root/repo/src/ml/nn_search.cc" "src/ml/CMakeFiles/etsc_ml.dir/nn_search.cc.o" "gcc" "src/ml/CMakeFiles/etsc_ml.dir/nn_search.cc.o.d"
  "/root/repo/src/ml/one_class_svm.cc" "src/ml/CMakeFiles/etsc_ml.dir/one_class_svm.cc.o" "gcc" "src/ml/CMakeFiles/etsc_ml.dir/one_class_svm.cc.o.d"
  "/root/repo/src/ml/sfa.cc" "src/ml/CMakeFiles/etsc_ml.dir/sfa.cc.o" "gcc" "src/ml/CMakeFiles/etsc_ml.dir/sfa.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/etsc_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
