file(REMOVE_RECURSE
  "libetsc_core.a"
)
