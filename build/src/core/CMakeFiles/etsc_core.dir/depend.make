# Empty dependencies file for etsc_core.
# This may be replaced when dependencies are built.
