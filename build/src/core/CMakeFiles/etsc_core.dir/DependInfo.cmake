
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/arff.cc" "src/core/CMakeFiles/etsc_core.dir/arff.cc.o" "gcc" "src/core/CMakeFiles/etsc_core.dir/arff.cc.o.d"
  "/root/repo/src/core/categorize.cc" "src/core/CMakeFiles/etsc_core.dir/categorize.cc.o" "gcc" "src/core/CMakeFiles/etsc_core.dir/categorize.cc.o.d"
  "/root/repo/src/core/classifier.cc" "src/core/CMakeFiles/etsc_core.dir/classifier.cc.o" "gcc" "src/core/CMakeFiles/etsc_core.dir/classifier.cc.o.d"
  "/root/repo/src/core/csv.cc" "src/core/CMakeFiles/etsc_core.dir/csv.cc.o" "gcc" "src/core/CMakeFiles/etsc_core.dir/csv.cc.o.d"
  "/root/repo/src/core/dataset.cc" "src/core/CMakeFiles/etsc_core.dir/dataset.cc.o" "gcc" "src/core/CMakeFiles/etsc_core.dir/dataset.cc.o.d"
  "/root/repo/src/core/evaluation.cc" "src/core/CMakeFiles/etsc_core.dir/evaluation.cc.o" "gcc" "src/core/CMakeFiles/etsc_core.dir/evaluation.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/core/CMakeFiles/etsc_core.dir/metrics.cc.o" "gcc" "src/core/CMakeFiles/etsc_core.dir/metrics.cc.o.d"
  "/root/repo/src/core/registry.cc" "src/core/CMakeFiles/etsc_core.dir/registry.cc.o" "gcc" "src/core/CMakeFiles/etsc_core.dir/registry.cc.o.d"
  "/root/repo/src/core/status.cc" "src/core/CMakeFiles/etsc_core.dir/status.cc.o" "gcc" "src/core/CMakeFiles/etsc_core.dir/status.cc.o.d"
  "/root/repo/src/core/streaming.cc" "src/core/CMakeFiles/etsc_core.dir/streaming.cc.o" "gcc" "src/core/CMakeFiles/etsc_core.dir/streaming.cc.o.d"
  "/root/repo/src/core/time_series.cc" "src/core/CMakeFiles/etsc_core.dir/time_series.cc.o" "gcc" "src/core/CMakeFiles/etsc_core.dir/time_series.cc.o.d"
  "/root/repo/src/core/tuner.cc" "src/core/CMakeFiles/etsc_core.dir/tuner.cc.o" "gcc" "src/core/CMakeFiles/etsc_core.dir/tuner.cc.o.d"
  "/root/repo/src/core/voting.cc" "src/core/CMakeFiles/etsc_core.dir/voting.cc.o" "gcc" "src/core/CMakeFiles/etsc_core.dir/voting.cc.o.d"
  "/root/repo/src/core/voting_schemes.cc" "src/core/CMakeFiles/etsc_core.dir/voting_schemes.cc.o" "gcc" "src/core/CMakeFiles/etsc_core.dir/voting_schemes.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
