file(REMOVE_RECURSE
  "CMakeFiles/etsc_core.dir/arff.cc.o"
  "CMakeFiles/etsc_core.dir/arff.cc.o.d"
  "CMakeFiles/etsc_core.dir/categorize.cc.o"
  "CMakeFiles/etsc_core.dir/categorize.cc.o.d"
  "CMakeFiles/etsc_core.dir/classifier.cc.o"
  "CMakeFiles/etsc_core.dir/classifier.cc.o.d"
  "CMakeFiles/etsc_core.dir/csv.cc.o"
  "CMakeFiles/etsc_core.dir/csv.cc.o.d"
  "CMakeFiles/etsc_core.dir/dataset.cc.o"
  "CMakeFiles/etsc_core.dir/dataset.cc.o.d"
  "CMakeFiles/etsc_core.dir/evaluation.cc.o"
  "CMakeFiles/etsc_core.dir/evaluation.cc.o.d"
  "CMakeFiles/etsc_core.dir/metrics.cc.o"
  "CMakeFiles/etsc_core.dir/metrics.cc.o.d"
  "CMakeFiles/etsc_core.dir/registry.cc.o"
  "CMakeFiles/etsc_core.dir/registry.cc.o.d"
  "CMakeFiles/etsc_core.dir/status.cc.o"
  "CMakeFiles/etsc_core.dir/status.cc.o.d"
  "CMakeFiles/etsc_core.dir/streaming.cc.o"
  "CMakeFiles/etsc_core.dir/streaming.cc.o.d"
  "CMakeFiles/etsc_core.dir/time_series.cc.o"
  "CMakeFiles/etsc_core.dir/time_series.cc.o.d"
  "CMakeFiles/etsc_core.dir/tuner.cc.o"
  "CMakeFiles/etsc_core.dir/tuner.cc.o.d"
  "CMakeFiles/etsc_core.dir/voting.cc.o"
  "CMakeFiles/etsc_core.dir/voting.cc.o.d"
  "CMakeFiles/etsc_core.dir/voting_schemes.cc.o"
  "CMakeFiles/etsc_core.dir/voting_schemes.cc.o.d"
  "libetsc_core.a"
  "libetsc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etsc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
