
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/biological_sim.cc" "src/data/CMakeFiles/etsc_data.dir/biological_sim.cc.o" "gcc" "src/data/CMakeFiles/etsc_data.dir/biological_sim.cc.o.d"
  "/root/repo/src/data/maritime_sim.cc" "src/data/CMakeFiles/etsc_data.dir/maritime_sim.cc.o" "gcc" "src/data/CMakeFiles/etsc_data.dir/maritime_sim.cc.o.d"
  "/root/repo/src/data/repository.cc" "src/data/CMakeFiles/etsc_data.dir/repository.cc.o" "gcc" "src/data/CMakeFiles/etsc_data.dir/repository.cc.o.d"
  "/root/repo/src/data/ucr_like.cc" "src/data/CMakeFiles/etsc_data.dir/ucr_like.cc.o" "gcc" "src/data/CMakeFiles/etsc_data.dir/ucr_like.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/etsc_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
