# Empty dependencies file for etsc_data.
# This may be replaced when dependencies are built.
