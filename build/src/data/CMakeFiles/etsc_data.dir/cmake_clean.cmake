file(REMOVE_RECURSE
  "CMakeFiles/etsc_data.dir/biological_sim.cc.o"
  "CMakeFiles/etsc_data.dir/biological_sim.cc.o.d"
  "CMakeFiles/etsc_data.dir/maritime_sim.cc.o"
  "CMakeFiles/etsc_data.dir/maritime_sim.cc.o.d"
  "CMakeFiles/etsc_data.dir/repository.cc.o"
  "CMakeFiles/etsc_data.dir/repository.cc.o.d"
  "CMakeFiles/etsc_data.dir/ucr_like.cc.o"
  "CMakeFiles/etsc_data.dir/ucr_like.cc.o.d"
  "libetsc_data.a"
  "libetsc_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etsc_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
