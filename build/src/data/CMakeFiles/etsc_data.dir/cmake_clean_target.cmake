file(REMOVE_RECURSE
  "libetsc_data.a"
)
