# Empty compiler generated dependencies file for registry_voting_test.
# This may be replaced when dependencies are built.
