file(REMOVE_RECURSE
  "CMakeFiles/registry_voting_test.dir/registry_voting_test.cc.o"
  "CMakeFiles/registry_voting_test.dir/registry_voting_test.cc.o.d"
  "registry_voting_test"
  "registry_voting_test.pdb"
  "registry_voting_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/registry_voting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
