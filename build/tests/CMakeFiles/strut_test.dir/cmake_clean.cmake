file(REMOVE_RECURSE
  "CMakeFiles/strut_test.dir/strut_test.cc.o"
  "CMakeFiles/strut_test.dir/strut_test.cc.o.d"
  "strut_test"
  "strut_test.pdb"
  "strut_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strut_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
