# Empty compiler generated dependencies file for strut_test.
# This may be replaced when dependencies are built.
