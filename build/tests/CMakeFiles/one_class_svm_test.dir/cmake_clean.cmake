file(REMOVE_RECURSE
  "CMakeFiles/one_class_svm_test.dir/one_class_svm_test.cc.o"
  "CMakeFiles/one_class_svm_test.dir/one_class_svm_test.cc.o.d"
  "one_class_svm_test"
  "one_class_svm_test.pdb"
  "one_class_svm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/one_class_svm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
