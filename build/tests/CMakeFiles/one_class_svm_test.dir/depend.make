# Empty dependencies file for one_class_svm_test.
# This may be replaced when dependencies are built.
