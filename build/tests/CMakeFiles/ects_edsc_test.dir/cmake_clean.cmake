file(REMOVE_RECURSE
  "CMakeFiles/ects_edsc_test.dir/ects_edsc_test.cc.o"
  "CMakeFiles/ects_edsc_test.dir/ects_edsc_test.cc.o.d"
  "ects_edsc_test"
  "ects_edsc_test.pdb"
  "ects_edsc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ects_edsc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
