# Empty compiler generated dependencies file for ects_edsc_test.
# This may be replaced when dependencies are built.
