file(REMOVE_RECURSE
  "CMakeFiles/distance_kmeans_test.dir/distance_kmeans_test.cc.o"
  "CMakeFiles/distance_kmeans_test.dir/distance_kmeans_test.cc.o.d"
  "distance_kmeans_test"
  "distance_kmeans_test.pdb"
  "distance_kmeans_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distance_kmeans_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
