# Empty compiler generated dependencies file for weasel_muse_test.
# This may be replaced when dependencies are built.
