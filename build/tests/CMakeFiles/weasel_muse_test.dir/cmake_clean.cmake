file(REMOVE_RECURSE
  "CMakeFiles/weasel_muse_test.dir/weasel_muse_test.cc.o"
  "CMakeFiles/weasel_muse_test.dir/weasel_muse_test.cc.o.d"
  "weasel_muse_test"
  "weasel_muse_test.pdb"
  "weasel_muse_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weasel_muse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
