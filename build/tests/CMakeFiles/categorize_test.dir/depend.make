# Empty dependencies file for categorize_test.
# This may be replaced when dependencies are built.
