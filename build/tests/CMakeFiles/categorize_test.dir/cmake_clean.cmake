file(REMOVE_RECURSE
  "CMakeFiles/categorize_test.dir/categorize_test.cc.o"
  "CMakeFiles/categorize_test.dir/categorize_test.cc.o.d"
  "categorize_test"
  "categorize_test.pdb"
  "categorize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/categorize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
