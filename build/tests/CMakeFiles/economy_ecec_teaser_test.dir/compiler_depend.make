# Empty compiler generated dependencies file for economy_ecec_teaser_test.
# This may be replaced when dependencies are built.
