file(REMOVE_RECURSE
  "CMakeFiles/economy_ecec_teaser_test.dir/economy_ecec_teaser_test.cc.o"
  "CMakeFiles/economy_ecec_teaser_test.dir/economy_ecec_teaser_test.cc.o.d"
  "economy_ecec_teaser_test"
  "economy_ecec_teaser_test.pdb"
  "economy_ecec_teaser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/economy_ecec_teaser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
