file(REMOVE_RECURSE
  "CMakeFiles/minirocket_mlstm_test.dir/minirocket_mlstm_test.cc.o"
  "CMakeFiles/minirocket_mlstm_test.dir/minirocket_mlstm_test.cc.o.d"
  "minirocket_mlstm_test"
  "minirocket_mlstm_test.pdb"
  "minirocket_mlstm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minirocket_mlstm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
