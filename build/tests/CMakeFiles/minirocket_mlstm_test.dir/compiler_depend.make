# Empty compiler generated dependencies file for minirocket_mlstm_test.
# This may be replaced when dependencies are built.
