file(REMOVE_RECURSE
  "CMakeFiles/fourier_sfa_chi2_test.dir/fourier_sfa_chi2_test.cc.o"
  "CMakeFiles/fourier_sfa_chi2_test.dir/fourier_sfa_chi2_test.cc.o.d"
  "fourier_sfa_chi2_test"
  "fourier_sfa_chi2_test.pdb"
  "fourier_sfa_chi2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fourier_sfa_chi2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
