# Empty dependencies file for fourier_sfa_chi2_test.
# This may be replaced when dependencies are built.
