# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fourier_sfa_chi2_test.
