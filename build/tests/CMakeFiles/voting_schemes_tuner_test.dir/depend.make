# Empty dependencies file for voting_schemes_tuner_test.
# This may be replaced when dependencies are built.
