file(REMOVE_RECURSE
  "CMakeFiles/voting_schemes_tuner_test.dir/voting_schemes_tuner_test.cc.o"
  "CMakeFiles/voting_schemes_tuner_test.dir/voting_schemes_tuner_test.cc.o.d"
  "voting_schemes_tuner_test"
  "voting_schemes_tuner_test.pdb"
  "voting_schemes_tuner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voting_schemes_tuner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
