file(REMOVE_RECURSE
  "CMakeFiles/clustering_nn_test.dir/clustering_nn_test.cc.o"
  "CMakeFiles/clustering_nn_test.dir/clustering_nn_test.cc.o.d"
  "clustering_nn_test"
  "clustering_nn_test.pdb"
  "clustering_nn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clustering_nn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
