# Empty compiler generated dependencies file for clustering_nn_test.
# This may be replaced when dependencies are built.
