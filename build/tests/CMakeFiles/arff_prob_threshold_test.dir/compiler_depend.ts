# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for arff_prob_threshold_test.
