# Empty compiler generated dependencies file for arff_prob_threshold_test.
# This may be replaced when dependencies are built.
