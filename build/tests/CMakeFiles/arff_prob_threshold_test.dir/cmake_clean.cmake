file(REMOVE_RECURSE
  "CMakeFiles/arff_prob_threshold_test.dir/arff_prob_threshold_test.cc.o"
  "CMakeFiles/arff_prob_threshold_test.dir/arff_prob_threshold_test.cc.o.d"
  "arff_prob_threshold_test"
  "arff_prob_threshold_test.pdb"
  "arff_prob_threshold_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arff_prob_threshold_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
