# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/smoke_test[1]_include.cmake")
include("/root/repo/build/tests/status_test[1]_include.cmake")
include("/root/repo/build/tests/time_series_test[1]_include.cmake")
include("/root/repo/build/tests/dataset_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/categorize_test[1]_include.cmake")
include("/root/repo/build/tests/csv_test[1]_include.cmake")
include("/root/repo/build/tests/registry_voting_test[1]_include.cmake")
include("/root/repo/build/tests/evaluation_test[1]_include.cmake")
include("/root/repo/build/tests/distance_kmeans_test[1]_include.cmake")
include("/root/repo/build/tests/clustering_nn_test[1]_include.cmake")
include("/root/repo/build/tests/trees_test[1]_include.cmake")
include("/root/repo/build/tests/linear_test[1]_include.cmake")
include("/root/repo/build/tests/fourier_sfa_chi2_test[1]_include.cmake")
include("/root/repo/build/tests/one_class_svm_test[1]_include.cmake")
include("/root/repo/build/tests/weasel_muse_test[1]_include.cmake")
include("/root/repo/build/tests/minirocket_mlstm_test[1]_include.cmake")
include("/root/repo/build/tests/ects_edsc_test[1]_include.cmake")
include("/root/repo/build/tests/economy_ecec_teaser_test[1]_include.cmake")
include("/root/repo/build/tests/strut_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/voting_schemes_tuner_test[1]_include.cmake")
include("/root/repo/build/tests/arff_prob_threshold_test[1]_include.cmake")
include("/root/repo/build/tests/rng_test[1]_include.cmake")
include("/root/repo/build/tests/streaming_test[1]_include.cmake")
