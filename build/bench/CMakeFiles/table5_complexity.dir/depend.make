# Empty dependencies file for table5_complexity.
# This may be replaced when dependencies are built.
