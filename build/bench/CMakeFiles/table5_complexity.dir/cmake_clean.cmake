file(REMOVE_RECURSE
  "CMakeFiles/table5_complexity.dir/table5_complexity.cc.o"
  "CMakeFiles/table5_complexity.dir/table5_complexity.cc.o.d"
  "table5_complexity"
  "table5_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
