# Empty dependencies file for fig12_training_times.
# This may be replaced when dependencies are built.
