file(REMOVE_RECURSE
  "CMakeFiles/supplementary_tables.dir/supplementary_tables.cc.o"
  "CMakeFiles/supplementary_tables.dir/supplementary_tables.cc.o.d"
  "supplementary_tables"
  "supplementary_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supplementary_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
