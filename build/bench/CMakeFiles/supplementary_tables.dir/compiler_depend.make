# Empty compiler generated dependencies file for supplementary_tables.
# This may be replaced when dependencies are built.
