# Empty compiler generated dependencies file for table4_parameters.
# This may be replaced when dependencies are built.
