file(REMOVE_RECURSE
  "CMakeFiles/table4_parameters.dir/table4_parameters.cc.o"
  "CMakeFiles/table4_parameters.dir/table4_parameters.cc.o.d"
  "table4_parameters"
  "table4_parameters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_parameters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
