
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig9_accuracy_f1.cc" "bench/CMakeFiles/fig9_accuracy_f1.dir/fig9_accuracy_f1.cc.o" "gcc" "bench/CMakeFiles/fig9_accuracy_f1.dir/fig9_accuracy_f1.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/etsc_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/algos/CMakeFiles/etsc_algos.dir/DependInfo.cmake"
  "/root/repo/build/src/tsc/CMakeFiles/etsc_tsc.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/etsc_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/etsc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/etsc_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
