# Empty compiler generated dependencies file for fig9_accuracy_f1.
# This may be replaced when dependencies are built.
