file(REMOVE_RECURSE
  "CMakeFiles/fig9_accuracy_f1.dir/fig9_accuracy_f1.cc.o"
  "CMakeFiles/fig9_accuracy_f1.dir/fig9_accuracy_f1.cc.o.d"
  "fig9_accuracy_f1"
  "fig9_accuracy_f1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_accuracy_f1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
