file(REMOVE_RECURSE
  "CMakeFiles/etsc_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/etsc_bench_common.dir/bench_common.cc.o.d"
  "libetsc_bench_common.a"
  "libetsc_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etsc_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
