# Empty dependencies file for etsc_bench_common.
# This may be replaced when dependencies are built.
