file(REMOVE_RECURSE
  "libetsc_bench_common.a"
)
