# Empty dependencies file for fig11_harmonic_mean.
# This may be replaced when dependencies are built.
