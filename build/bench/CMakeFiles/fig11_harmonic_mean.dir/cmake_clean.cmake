file(REMOVE_RECURSE
  "CMakeFiles/fig11_harmonic_mean.dir/fig11_harmonic_mean.cc.o"
  "CMakeFiles/fig11_harmonic_mean.dir/fig11_harmonic_mean.cc.o.d"
  "fig11_harmonic_mean"
  "fig11_harmonic_mean.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_harmonic_mean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
