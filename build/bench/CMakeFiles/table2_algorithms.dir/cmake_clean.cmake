file(REMOVE_RECURSE
  "CMakeFiles/table2_algorithms.dir/table2_algorithms.cc.o"
  "CMakeFiles/table2_algorithms.dir/table2_algorithms.cc.o.d"
  "table2_algorithms"
  "table2_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
