# Empty dependencies file for table2_algorithms.
# This may be replaced when dependencies are built.
