file(REMOVE_RECURSE
  "CMakeFiles/fig13_online_heatmap.dir/fig13_online_heatmap.cc.o"
  "CMakeFiles/fig13_online_heatmap.dir/fig13_online_heatmap.cc.o.d"
  "fig13_online_heatmap"
  "fig13_online_heatmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_online_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
