# Empty dependencies file for fig13_online_heatmap.
# This may be replaced when dependencies are built.
