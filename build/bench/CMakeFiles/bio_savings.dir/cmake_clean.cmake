file(REMOVE_RECURSE
  "CMakeFiles/bio_savings.dir/bio_savings.cc.o"
  "CMakeFiles/bio_savings.dir/bio_savings.cc.o.d"
  "bio_savings"
  "bio_savings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bio_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
