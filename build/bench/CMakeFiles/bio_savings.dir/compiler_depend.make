# Empty compiler generated dependencies file for bio_savings.
# This may be replaced when dependencies are built.
