# Empty dependencies file for fig10_earliness.
# This may be replaced when dependencies are built.
