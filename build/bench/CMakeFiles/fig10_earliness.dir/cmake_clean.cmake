file(REMOVE_RECURSE
  "CMakeFiles/fig10_earliness.dir/fig10_earliness.cc.o"
  "CMakeFiles/fig10_earliness.dir/fig10_earliness.cc.o.d"
  "fig10_earliness"
  "fig10_earliness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_earliness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
