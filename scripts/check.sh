#!/usr/bin/env bash
# Repo verification: the tier-1 build-and-test pass, a shard-merge
# equivalence check, a SIMD-vs-scalar kernel equivalence gate (ETSC_SIMD=0
# and =1 campaigns must be bit-identical), a supervisor fault-matrix gate (injected flaky fits,
# hung predicts and corrupted model-cache entries must leave unaffected
# cells bit-identical to a fault-free run), a worker-fabric crash drill (a
# worker dying abruptly mid-cell must cost zero cells: the survivor steals the
# orphaned lease and the merged report stays bit-identical), a serving-engine
# smoke gate (batched multi-session dispatch must be bit-identical to the
# sequential StreamingSession reference and emit its report), a serving
# chaos drill (a serving process dying abruptly mid-dispatch must recover
# from its session WAL with a bit-identical decision set, and a torn WAL
# tail must be skipped via Status accounting, never a crash), a composition
# gate (a 3x3 classifier-x-trigger cross-product campaign sharded and merged
# with alpha-weighted cost scores in the report, plus legacy-vs-composed twin
# bit-identity over --report-diff, serial and ETSC_THREADS=8), then sanitizer
# passes — ASan and
# UBSan over the suites that parse attacker-shaped bytes (model streams,
# journals, reports, dataset files), and an oversubscribed ThreadSanitizer
# pass over the concurrency-sensitive suites (thread pool, tracing/metrics,
# campaign journal, model cache, supervisor/watchdog, streaming sessions and
# the serving engine). Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

# Tier 1: full build + full test suite (ROADMAP.md).
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j"$(nproc)"

# Shard-merge smoke test: a tiny 2-shard campaign, merged, must produce a
# report identical (modulo timings) to the same campaign run in one process.
SHARD_DIR="$(mktemp -d)"
trap 'rm -rf "$SHARD_DIR"' EXIT
(
  export ETSC_BENCH_ALGOS=ECTS ETSC_BENCH_DATASETS=DodgerLoopGame,PowerCons \
         ETSC_BENCH_FOLDS=2 ETSC_LOG=warn
  ETSC_BENCH_CACHE="$SHARD_DIR/single.csv" ./build/examples/etsc_cli --campaign
  ETSC_BENCH_CACHE="$SHARD_DIR/j.csv" ./build/examples/etsc_cli --campaign --shard 0/2
  ETSC_BENCH_CACHE="$SHARD_DIR/j.csv" ./build/examples/etsc_cli --campaign --shard 1/2
  ETSC_BENCH_CACHE="$SHARD_DIR/j.csv" ./build/examples/etsc_cli --merge-shards \
    "$SHARD_DIR/merged.csv" "$SHARD_DIR/j.csv.shard-0-of-2" "$SHARD_DIR/j.csv.shard-1-of-2"
  ./build/examples/etsc_cli --report-diff \
    "$SHARD_DIR/single.csv.report.json" "$SHARD_DIR/merged.csv.report.json"
)
echo "check.sh: shard merge matches the single-process run"

# SIMD-vs-scalar equivalence: the same mini-campaign under ETSC_SIMD=0 (scalar
# reference kernels) and ETSC_SIMD=1 (explicit vector kernels) must produce
# bit-identical reports — the kernel path is a pure execution knob, never a
# result knob (DESIGN.md sec 13).
SIMD_DIR="$(mktemp -d)"
trap 'rm -rf "$SHARD_DIR" "$SIMD_DIR"' EXIT
(
  export ETSC_BENCH_ALGOS=ECTS ETSC_BENCH_DATASETS=DodgerLoopGame,PowerCons \
         ETSC_BENCH_FOLDS=2 ETSC_LOG=warn
  ETSC_SIMD=0 ETSC_BENCH_CACHE="$SIMD_DIR/scalar.csv" \
    ./build/examples/etsc_cli --campaign
  ETSC_SIMD=1 ETSC_BENCH_CACHE="$SIMD_DIR/simd.csv" \
    ./build/examples/etsc_cli --campaign
  grep -q '"isa_active":"scalar"' "$SIMD_DIR/scalar.csv.report.json"
  ./build/examples/etsc_cli --report-diff \
    "$SIMD_DIR/scalar.csv.report.json" "$SIMD_DIR/simd.csv.report.json"
)
echo "check.sh: scalar and SIMD kernel paths are bit-identical"

# Supervisor fault matrix: a mini-campaign with a flaky ECTS (recovers after
# one retry), a deterministically crashing EDSC (quarantined by the circuit
# breaker after the first failure), and a corrupted model-cache entry must
# (a) run to completion, (b) quarantine exactly the poisoned algorithm, and
# (c) leave the unaffected ECTS cells bit-identical to a fault-free run.
FAULT_DIR="$(mktemp -d)"
trap 'rm -rf "$SHARD_DIR" "$SIMD_DIR" "$FAULT_DIR"' EXIT
(
  # The supervisor knobs are part of the config fingerprint, so both runs
  # must share them; only the fault spec (a harness knob) differs.
  export ETSC_BENCH_DATASETS=DodgerLoopGame,DodgerLoopWeekend \
         ETSC_BENCH_FOLDS=2 ETSC_RETRY_MAX=1 ETSC_RETRY_BASE_MS=0.1 \
         ETSC_QUARANTINE_AFTER=1 ETSC_LOG=warn \
         ETSC_MODEL_CACHE="$FAULT_DIR/models"
  ETSC_BENCH_ALGOS=ECTS \
    ETSC_BENCH_CACHE="$FAULT_DIR/clean.csv" ./build/examples/etsc_cli --campaign
  ETSC_BENCH_ALGOS=ECTS,EDSC ETSC_BENCH_FAULT="ECTS:flaky:1,EDSC:crash" \
    ETSC_BENCH_CACHE="$FAULT_DIR/faulted.csv" ./build/examples/etsc_cli --campaign
  grep -q '"quarantined":true' "$FAULT_DIR/faulted.csv.report.json"
  test "$(grep -c '"algorithm":"ECTS"[^}]*"quarantined":true' \
    "$FAULT_DIR/faulted.csv.report.json")" = 0
  ./build/examples/etsc_cli --report-diff \
    "$FAULT_DIR/clean.csv.report.json" "$FAULT_DIR/faulted.csv.report.json" \
    --ignore-algos EDSC

  # Hung predictions: the watchdog (grace * predict budget) must cancel every
  # spin and the campaign must still terminate with full-length misses.
  ETSC_BENCH_ALGOS=ECTS ETSC_BENCH_FAULT="ECTS:hang-predict" \
    ETSC_BENCH_DATASETS=DodgerLoopGame ETSC_BENCH_PREDICT_BUDGET=0.01 \
    ETSC_WATCHDOG_GRACE=2 ETSC_MODEL_CACHE= \
    ETSC_BENCH_CACHE="$FAULT_DIR/hang.csv" ./build/examples/etsc_cli --campaign
  grep -q 'cancelled by watchdog' "$FAULT_DIR/hang.csv.report.json"

  # Corrupted model cache: truncate every stored model, then prove a re-run
  # evicts the bad entries (logged misses, counted) and still reproduces the
  # clean report bit-for-bit after refitting.
  for entry in "$FAULT_DIR/models"/*.etsc; do
    head -c 32 "$entry" > "$entry.cut" && mv "$entry.cut" "$entry"
  done
  rm -f "$FAULT_DIR/clean.csv" "$FAULT_DIR/clean.csv.report.json"
  ETSC_BENCH_ALGOS=ECTS \
    ETSC_BENCH_CACHE="$FAULT_DIR/clean.csv" ./build/examples/etsc_cli --campaign
  grep -q '"model_cache.corrupt_evictions":[1-9]' \
    "$FAULT_DIR/clean.csv.report.json"
  ./build/examples/etsc_cli --report-diff \
    "$FAULT_DIR/clean.csv.report.json" "$FAULT_DIR/faulted.csv.report.json" \
    --ignore-algos EDSC
)
echo "check.sh: fault matrix contained — quarantine precise, clean cells bit-identical"

# Worker-fabric crash drill: two lease-fabric workers over one shared journal,
# one killed mid-cell by the die-at fault (abrupt _Exit(86): the journal is
# left exactly as a SIGKILL would leave it, orphaned lease included). The
# survivor must wait out the lease TTL, steal the cell, and finish the grid —
# zero lost cells, merged report bit-identical to the single-process run.
FABRIC_DIR="$(mktemp -d)"
trap 'rm -rf "$SHARD_DIR" "$SIMD_DIR" "$FAULT_DIR" "$FABRIC_DIR"' EXIT
(
  export ETSC_BENCH_ALGOS=ECTS ETSC_BENCH_DATASETS=DodgerLoopGame,PowerCons \
         ETSC_BENCH_FOLDS=2 ETSC_LOG=warn \
         ETSC_LEASE_TTL_MS=400 ETSC_HEARTBEAT_MS=100
  ETSC_BENCH_CACHE="$FABRIC_DIR/single.csv" ./build/examples/etsc_cli --campaign

  # w1 dies abruptly on its second cell, lease still in the journal.
  set +e
  ETSC_WORKER_ID=w1 ETSC_BENCH_FAULT="ECTS:die-at:2" \
    ./build/examples/etsc_cli --worker --cache "$FABRIC_DIR/fabric.csv"
  rc=$?
  set -e
  test "$rc" -eq 86

  # w2 joins the same journal and must log the steal of the orphaned lease.
  ETSC_WORKER_ID=w2 ./build/examples/etsc_cli --worker \
    --cache "$FABRIC_DIR/fabric.csv" 2> "$FABRIC_DIR/w2.err"
  cat "$FABRIC_DIR/w2.err" >&2
  grep -q "stealing expired lease" "$FABRIC_DIR/w2.err"

  # Merge validates the fingerprint, strips lease/quarantine control rows,
  # and must find every grid cell terminal: zero lost cells.
  ./build/examples/etsc_cli --merge-shards \
    "$FABRIC_DIR/fabric-merged.csv" "$FABRIC_DIR/fabric.csv"
  test "$(grep -vc '^#' "$FABRIC_DIR/fabric-merged.csv")" = 2
  ! grep -q '^@' "$FABRIC_DIR/fabric-merged.csv"
  ./build/examples/etsc_cli --report-diff \
    "$FABRIC_DIR/single.csv.report.json" \
    "$FABRIC_DIR/fabric-merged.csv.report.json"

  # Coordinator path: --workers forks the fleet, runs the continuous merge
  # loop, and emits the final report only when every cell is terminal.
  ETSC_BENCH_CACHE="$FABRIC_DIR/coord.csv" ./build/examples/etsc_cli \
    --campaign --workers 2
  ./build/examples/etsc_cli --report-diff \
    "$FABRIC_DIR/single.csv.report.json" \
    "$FABRIC_DIR/coord.csv.merged.csv.report.json"
)
echo "check.sh: crash drill survived — lease stolen, zero lost cells, merged report bit-identical"

# Serving smoke: a short multi-session ingest trace through the serving
# engine must decide every session bit-identically to the sequential
# single-StreamingSession reference (exit 4 on any divergence) and emit the
# throughput/latency report.
SERVE_DIR="$(mktemp -d)"
trap 'rm -rf "$SHARD_DIR" "$SIMD_DIR" "$FAULT_DIR" "$FABRIC_DIR" "$SERVE_DIR"' EXIT
(
  export ETSC_LOG=warn
  ./build/examples/etsc_cli --serve --algo ects --dataset PowerCons \
    --sessions 100 --dispatch-every 64 --serve-report "$SERVE_DIR/serve.json"
  grep -q '"bit_identical":true' "$SERVE_DIR/serve.json"
  grep -q '"sessions_per_second":' "$SERVE_DIR/serve.json"
  grep -q '"decision_p99_seconds":' "$SERVE_DIR/serve.json"
)
echo "check.sh: serving engine batched == sequential, report emitted"

# Serving chaos drill: the serving process is killed abruptly mid-dispatch
# (die-at fault, _Exit(86): the session WAL is left exactly as a SIGKILL
# would leave it). A fresh process recovers from the WAL, resumes the same
# ingest trace at the durable offsets, and every decision — label, prefix
# length, DecisionMeta — must be bit-identical to the never-crashed
# sequential replay. Then the torn-WAL gate: chop the journal mid-row and
# prove recovery skips the torn tail via Status accounting, never a crash.
(
  export ETSC_LOG=warn
  DRILL=(--serve --algo ects --dataset PowerCons --sessions 100 --dispatch-every 64)

  # Reference: an uncrashed run with the journal on stays bit-identical and
  # reports its durability counters.
  ./build/examples/etsc_cli "${DRILL[@]}" --wal "$SERVE_DIR/ref.wal" \
    --serve-report "$SERVE_DIR/ref.json"
  grep -q '"bit_identical":true' "$SERVE_DIR/ref.json"
  grep -q '"wal_appends":[1-9]' "$SERVE_DIR/ref.json"

  # Crash mid-dispatch: observations already acknowledged are durable.
  set +e
  ETSC_SERVE_FAULT="die-at-dispatch:5" \
    ./build/examples/etsc_cli "${DRILL[@]}" --wal "$SERVE_DIR/crash.wal"
  rc=$?
  set -e
  test "$rc" -eq 86
  test -s "$SERVE_DIR/crash.wal"

  # Recover + resume: exit 4 (divergence) is the failure mode being gated.
  ./build/examples/etsc_cli "${DRILL[@]}" --wal "$SERVE_DIR/crash.wal" \
    --recover --serve-report "$SERVE_DIR/recovered.json"
  grep -q '"bit_identical":true' "$SERVE_DIR/recovered.json"
  grep -q '"recovered":true' "$SERVE_DIR/recovered.json"
  grep -q '"sessions_recovered":[1-9]' "$SERVE_DIR/recovered.json"

  # Torn tail: cut into the last row (newline, sentinel and one data byte
  # gone — a crash between write and flush). Recovery must skip exactly that
  # row, count it, and still converge on the bit-identical decision set.
  cp "$SERVE_DIR/crash.wal" "$SERVE_DIR/torn.wal"
  truncate -s $(( $(stat -c%s "$SERVE_DIR/torn.wal") - 7 )) "$SERVE_DIR/torn.wal"
  ./build/examples/etsc_cli "${DRILL[@]}" --wal "$SERVE_DIR/torn.wal" \
    --recover --serve-report "$SERVE_DIR/torn.json"
  grep -q '"bit_identical":true' "$SERVE_DIR/torn.json"
  grep -q '"wal_torn_rows":1' "$SERVE_DIR/torn.json"
)
echo "check.sh: serving chaos drill — crash recovered from WAL, torn tail skipped, decisions bit-identical"

# Composition gate: the classifier/trigger cross-product (DESIGN.md sec 15).
# A 3x3 grid (9 composed '<base>+<trigger>' configs) runs as a sharded
# campaign and merges to one report carrying the alpha-weighted cost score
# per cell; then the legacy-monolith-vs-composed-twin bit-identity contract
# is enforced over --report-diff (--map-algo renames the legacy name onto the
# composed spec), with the composed campaign run both serial and at
# ETSC_THREADS=8.
COMPOSE_DIR="$(mktemp -d)"
trap 'rm -rf "$SHARD_DIR" "$SIMD_DIR" "$FAULT_DIR" "$FABRIC_DIR" "$SERVE_DIR" "$COMPOSE_DIR"' EXIT
(
  export ETSC_BENCH_DATASETS=PowerCons ETSC_BENCH_FOLDS=2 ETSC_LOG=warn
  GRID=(--classifiers minirocket-logistic,weasel,gbdt
        --triggers prob,ects-mpl,strut-search --cost-alpha 0.5)
  ETSC_BENCH_CACHE="$COMPOSE_DIR/grid.csv" \
    ./build/examples/etsc_cli --campaign --shard 0/2 "${GRID[@]}"
  ETSC_BENCH_CACHE="$COMPOSE_DIR/grid.csv" \
    ./build/examples/etsc_cli --campaign --shard 1/2 "${GRID[@]}"
  # The merge derives the expected grid from the same composition flags.
  ./build/examples/etsc_cli --merge-shards "$COMPOSE_DIR/merged.csv" \
    "$COMPOSE_DIR/grid.csv.shard-0-of-2" "$COMPOSE_DIR/grid.csv.shard-1-of-2" \
    "${GRID[@]}"
  grep -q '"cost_alpha":0.5' "$COMPOSE_DIR/merged.csv.report.json"
  test "$(grep -o '"cost":' "$COMPOSE_DIR/merged.csv.report.json" | wc -l)" -ge 9
  test "$(grep -o '"algorithm":"[a-z0-9-]*+[a-z0-9-]*"' \
    "$COMPOSE_DIR/merged.csv.report.json" | sort -u | wc -l)" -ge 9

  # Legacy ECTS vs its composed twin 1nn+ects-mpl: every score bit-identical,
  # whether the composed run is serial or oversubscribed.
  export ETSC_BENCH_DATASETS=DodgerLoopGame,PowerCons
  ETSC_BENCH_ALGOS=ECTS ETSC_BENCH_CACHE="$COMPOSE_DIR/legacy.csv" \
    ./build/examples/etsc_cli --campaign
  ETSC_THREADS=1 ETSC_BENCH_ALGOS=1nn+ects-mpl \
    ETSC_BENCH_CACHE="$COMPOSE_DIR/twin1.csv" ./build/examples/etsc_cli --campaign
  ETSC_THREADS=8 ETSC_BENCH_ALGOS=1nn+ects-mpl \
    ETSC_BENCH_CACHE="$COMPOSE_DIR/twin8.csv" ./build/examples/etsc_cli --campaign
  ./build/examples/etsc_cli --report-diff \
    "$COMPOSE_DIR/legacy.csv.report.json" "$COMPOSE_DIR/twin1.csv.report.json" \
    --map-algo ECTS=1nn+ects-mpl
  ./build/examples/etsc_cli --report-diff \
    "$COMPOSE_DIR/legacy.csv.report.json" "$COMPOSE_DIR/twin8.csv.report.json" \
    --map-algo ECTS=1nn+ects-mpl
)
echo "check.sh: composition gate — 3x3 grid merged with cost scores, legacy == composed twin"

# ASan: the persistence layer and the loaders parse attacker-shaped bytes
# (truncated, corrupted, garbage model streams / journals / reports /
# datasets) — exactly where memory bugs would hide — plus the SIMD kernels,
# whose padded-stride pointer arithmetic is exactly where an out-of-bounds
# vector tail read would hide, plus the trigger suite (composed model
# streams, stale-format cache demotion — more attacker-shaped bytes), plus
# the serving WAL suite (torn tails, bit-flip corruption corpus — the newest
# attacker-shaped parser in the tree).
cmake -B build-asan -S . -DETSC_SANITIZE=address
cmake --build build-asan -j --target serialization_test corruption_test \
  simd_test trigger_test serving_wal_test
ctest --test-dir build-asan --output-on-failure -j"$(nproc)" \
  -R 'Serialization|DatasetFingerprint|Corruption|Diagnostics|Simd|Soa|Trigger|StaleFormat|GoldenEquivalence|ServingWal|ServingIngestGuard'

# UBSan over the same hostile-input suites: bit flips love to manufacture
# out-of-range enums, shifts and size arithmetic that ASan alone won't flag.
cmake -B build-ubsan -S . -DETSC_SANITIZE=undefined
cmake --build build-ubsan -j --target serialization_test corruption_test \
  simd_test trigger_test serving_wal_test
ctest --test-dir build-ubsan --output-on-failure -j"$(nproc)" \
  -R 'Serialization|DatasetFingerprint|Corruption|Diagnostics|Simd|Soa|Trigger|StaleFormat|GoldenEquivalence|ServingWal|ServingIngestGuard'

# TSan, oversubscribed: only the targets whose tests exercise the pool, the
# span/metric recording, the shared campaign journal, the model cache and the
# supervisor (watchdog thread, breaker-driven lanes) are built — plus the
# trigger suite, whose golden-equivalence test drives composed classifiers
# through the pool at width 8; the -R filter keeps ctest away from the
# *_NOT_BUILT placeholders of the rest.
cmake -B build-tsan -S . -DETSC_SANITIZE=thread
cmake --build build-tsan -j --target parallel_test trace_test \
  journal_config_test serialization_test supervisor_test fabric_test \
  streaming_test serving_test serving_wal_test trigger_test
# The 'Serving' filter also picks up the WAL/shed/race suites of
# serving_wal_test; the fork-based die-at death tests are excluded — TSan
# does not support spawning threads after a multi-threaded fork, and the
# child's DispatchBatch does exactly that.
ETSC_THREADS=8 ctest --test-dir build-tsan --output-on-failure -j"$(nproc)" \
  -R 'Parallel|Trace|Counters|Journal|Campaign|Log|Json|Serialization|DatasetFingerprint|Supervisor|Watchdog|Backoff|CircuitBreaker|CancelToken|Retry|FailureTaxonomy|Fabric|Streaming|Serving|Trigger|StaleFormat|GoldenEquivalence' \
  -E 'ServingFaultDeathTest'

echo "check.sh: all green"
