#!/usr/bin/env bash
# Repo verification: the tier-1 build-and-test pass, then an oversubscribed
# ThreadSanitizer pass over the concurrency-sensitive suites (thread pool,
# tracing/metrics, campaign journal). Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

# Tier 1: full build + full test suite (ROADMAP.md).
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j"$(nproc)"

# TSan, oversubscribed: only the targets whose tests exercise the pool, the
# span/metric recording and the shared campaign journal are built; the -R
# filter keeps ctest away from the *_NOT_BUILT placeholders of the rest.
cmake -B build-tsan -S . -DETSC_SANITIZE=thread
cmake --build build-tsan -j --target parallel_test trace_test journal_config_test
ETSC_THREADS=8 ctest --test-dir build-tsan --output-on-failure -j"$(nproc)" \
  -R 'Parallel|Trace|Counters|Journal|Campaign|Log|Json'

echo "check.sh: all green"
