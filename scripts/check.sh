#!/usr/bin/env bash
# Repo verification: the tier-1 build-and-test pass, a shard-merge
# equivalence check, then sanitizer passes — ASan over the serialization /
# persistence suite (hostile byte streams), and an oversubscribed
# ThreadSanitizer pass over the concurrency-sensitive suites (thread pool,
# tracing/metrics, campaign journal, model cache). Run from anywhere inside
# the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

# Tier 1: full build + full test suite (ROADMAP.md).
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j"$(nproc)"

# Shard-merge smoke test: a tiny 2-shard campaign, merged, must produce a
# report identical (modulo timings) to the same campaign run in one process.
SHARD_DIR="$(mktemp -d)"
trap 'rm -rf "$SHARD_DIR"' EXIT
(
  export ETSC_BENCH_ALGOS=ECTS ETSC_BENCH_DATASETS=DodgerLoopGame,PowerCons \
         ETSC_BENCH_FOLDS=2 ETSC_LOG=warn
  ETSC_BENCH_CACHE="$SHARD_DIR/single.csv" ./build/examples/etsc_cli --campaign
  ETSC_BENCH_CACHE="$SHARD_DIR/j.csv" ./build/examples/etsc_cli --campaign --shard 0/2
  ETSC_BENCH_CACHE="$SHARD_DIR/j.csv" ./build/examples/etsc_cli --campaign --shard 1/2
  ETSC_BENCH_CACHE="$SHARD_DIR/j.csv" ./build/examples/etsc_cli --merge-shards \
    "$SHARD_DIR/merged.csv" "$SHARD_DIR/j.csv.shard-0-of-2" "$SHARD_DIR/j.csv.shard-1-of-2"
  ./build/examples/etsc_cli --report-diff \
    "$SHARD_DIR/single.csv.report.json" "$SHARD_DIR/merged.csv.report.json"
)
echo "check.sh: shard merge matches the single-process run"

# ASan: the persistence layer parses attacker-shaped bytes (truncated,
# corrupted, garbage model streams) — exactly where memory bugs would hide.
cmake -B build-asan -S . -DETSC_SANITIZE=address
cmake --build build-asan -j --target serialization_test
ctest --test-dir build-asan --output-on-failure -j"$(nproc)" \
  -R 'Serialization|DatasetFingerprint'

# TSan, oversubscribed: only the targets whose tests exercise the pool, the
# span/metric recording, the shared campaign journal and the model cache are
# built; the -R filter keeps ctest away from the *_NOT_BUILT placeholders of
# the rest.
cmake -B build-tsan -S . -DETSC_SANITIZE=thread
cmake --build build-tsan -j --target parallel_test trace_test \
  journal_config_test serialization_test
ETSC_THREADS=8 ctest --test-dir build-tsan --output-on-failure -j"$(nproc)" \
  -R 'Parallel|Trace|Counters|Journal|Campaign|Log|Json|Serialization|DatasetFingerprint'

echo "check.sh: all green"
