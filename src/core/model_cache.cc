#include "core/model_cache.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <utility>

#include <cstring>

#include "core/counters.h"
#include "core/log.h"
#include "core/serialize.h"

namespace etsc {

namespace {

Counter& CacheHits() {
  static Counter& c = MetricRegistry::Global().counter("model_cache.hits");
  return c;
}
Counter& CacheMisses() {
  static Counter& c = MetricRegistry::Global().counter("model_cache.misses");
  return c;
}
Counter& CacheStores() {
  static Counter& c = MetricRegistry::Global().counter("model_cache.stores");
  return c;
}
Counter& CorruptEvictions() {
  static Counter& c =
      MetricRegistry::Global().counter("model_cache.corrupt_evictions");
  return c;
}
Counter& StaleFormatDemotions() {
  static Counter& c =
      MetricRegistry::Global().counter("model_cache.stale_format_demotions");
  return c;
}

/// Reads the 8-byte magic and u32 format version without consuming the rest
/// of the stream. False when the stream is too short or not an ETSC model at
/// all (those fall through to LoadFitted, whose errors drive eviction).
bool PeekFormatVersion(std::istream& in, uint32_t* version) {
  char prefix[sizeof(kSerializeMagic) + 4];
  in.read(prefix, sizeof(prefix));
  const bool ok =
      static_cast<size_t>(in.gcount()) == sizeof(prefix) &&
      std::memcmp(prefix, kSerializeMagic, sizeof(kSerializeMagic)) == 0;
  if (ok) {
    const auto* p =
        reinterpret_cast<const unsigned char*>(prefix + sizeof(kSerializeMagic));
    *version = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
               (static_cast<uint32_t>(p[2]) << 16) |
               (static_cast<uint32_t>(p[3]) << 24);
  }
  in.clear();
  in.seekg(0);
  return ok;
}

/// FNV-1a over the key's components with length/field separators, so e.g.
/// ("ab", fold 1) and ("a", fold 11) can never collide structurally.
uint64_t HashKey(const ModelCacheKey& key) {
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix_bytes = [&h](const void* data, size_t bytes) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < bytes; ++i) {
      h ^= p[i];
      h *= 0x100000001b3ULL;
    }
  };
  auto mix_u64 = [&](uint64_t v) { mix_bytes(&v, sizeof(v)); };
  mix_u64(key.config_fingerprint.size());
  mix_bytes(key.config_fingerprint.data(), key.config_fingerprint.size());
  mix_u64(key.dataset_fingerprint);
  mix_u64(key.fold);
  mix_u64(key.num_folds);
  mix_u64(key.seed);
  return h;
}

/// Keeps file names portable: anything outside [A-Za-z0-9._-] becomes '_'.
std::string SanitizeName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '-' || c == '_';
    out += ok ? c : '_';
  }
  return out.empty() ? "model" : out;
}

std::string Hex16(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

ModelCache::ModelCache(std::string directory)
    : directory_(std::move(directory)) {}

std::shared_ptr<ModelCache> ModelCache::FromEnv() {
  const char* dir = std::getenv("ETSC_MODEL_CACHE");
  if (dir == nullptr || *dir == '\0') return nullptr;
  return std::make_shared<ModelCache>(dir);
}

std::string ModelCache::EntryPath(const ModelCacheKey& key,
                                  const std::string& name) const {
  return directory_ + "/" + SanitizeName(name) + "-" + Hex16(HashKey(key)) +
         ".etsc";
}

bool ModelCache::TryLoad(const ModelCacheKey& key,
                         EarlyClassifier* classifier) const {
  const std::string path = EntryPath(key, classifier->name());
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (MetricsEnabled()) CacheMisses().Add(1);
    return false;
  }
  uint32_t version = 0;
  if (PeekFormatVersion(in, &version) && version < kSerializeFormatVersion) {
    // Pre-bump artifact: its fitted payload predates the current section
    // layout, so no current loader can consume it. Demote to a miss and evict
    // so the refit's store replaces it with a current-format entry.
    Logf(LogLevel::kWarn, "model_cache",
         "demoting stale format v%u entry %s (current v%u)", version,
         path.c_str(), kSerializeFormatVersion);
    in.close();
    std::remove(path.c_str());
    if (MetricsEnabled()) {
      StaleFormatDemotions().Add(1);
      CacheMisses().Add(1);
    }
    return false;
  }
  const Status status = classifier->LoadFitted(in);
  if (!status.ok()) {
    // Corrupt, truncated, or saved under another build's configuration: a
    // miss, never an error — the caller refits and overwrites the entry.
    // A provably bad stream (checksum/structure violation) is also evicted
    // now: the refit's Store would overwrite it anyway, but eviction keeps a
    // read-only campaign (report_only, exhausted budgets) from tripping over
    // the same corrupt bytes every run.
    const bool corrupt = status.code() == StatusCode::kDataLoss ||
                         status.code() == StatusCode::kInvalidArgument;
    Logf(LogLevel::kWarn, "model_cache", "%s unloadable entry %s: %s",
         corrupt ? "evicting corrupt" : "ignoring", path.c_str(),
         status.ToString().c_str());
    if (corrupt) {
      in.close();
      if (std::remove(path.c_str()) == 0 && MetricsEnabled()) {
        CorruptEvictions().Add(1);
      }
    }
    if (MetricsEnabled()) CacheMisses().Add(1);
    return false;
  }
  if (MetricsEnabled()) CacheHits().Add(1);
  return true;
}

Status ModelCache::Store(const ModelCacheKey& key,
                         const EarlyClassifier& classifier) const {
  // EEXIST is the common case after the first store; anything else surfaces
  // when the temp file fails to open below.
  ::mkdir(directory_.c_str(), 0777);
  const std::string path = EntryPath(key, classifier.name());
  const std::string temp = path + ".tmp";
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IOError("model cache: cannot write " + temp);
    }
    const Status status = classifier.Save(out);
    if (!status.ok()) {
      out.close();
      std::remove(temp.c_str());
      return status;
    }
  }
  // Atomic publish: concurrent readers see the old entry or the new one,
  // never a torn file.
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    std::remove(temp.c_str());
    return Status::IOError("model cache: cannot rename " + temp + " to " + path);
  }
  if (MetricsEnabled()) CacheStores().Add(1);
  return Status::OK();
}

}  // namespace etsc
