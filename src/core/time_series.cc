#include "core/time_series.h"

#include <algorithm>
#include <cmath>

namespace etsc {

TimeSeries TimeSeries::Univariate(std::vector<double> values) {
  TimeSeries ts;
  ts.values_.push_back(std::move(values));
  return ts;
}

Result<TimeSeries> TimeSeries::FromChannels(
    std::vector<std::vector<double>> channels) {
  if (channels.empty()) {
    return Status::InvalidArgument("FromChannels: no channels given");
  }
  const size_t len = channels[0].size();
  for (const auto& c : channels) {
    if (c.size() != len) {
      return Status::InvalidArgument("FromChannels: channels differ in length");
    }
  }
  TimeSeries ts;
  ts.values_ = std::move(channels);
  return ts;
}

TimeSeries TimeSeries::Prefix(size_t len) const {
  len = std::min(len, length());
  TimeSeries out;
  out.values_.reserve(values_.size());
  for (const auto& channel : values_) {
    out.values_.emplace_back(channel.begin(), channel.begin() + len);
  }
  return out;
}

TimeSeries TimeSeries::SingleVariable(size_t variable) const {
  ETSC_DCHECK(variable < num_variables());
  TimeSeries out;
  out.values_.push_back(values_[variable]);
  return out;
}

bool TimeSeries::HasMissingValues() const {
  for (const auto& channel : values_) {
    for (double v : channel) {
      if (std::isnan(v)) return true;
    }
  }
  return false;
}

void TimeSeries::FillMissingValues() {
  for (auto& channel : values_) {
    const size_t n = channel.size();
    size_t t = 0;
    while (t < n) {
      if (!std::isnan(channel[t])) {
        ++t;
        continue;
      }
      // Locate the NaN run [t, end).
      size_t end = t;
      while (end < n && std::isnan(channel[end])) ++end;
      const bool has_before = t > 0;
      const bool has_after = end < n;
      double fill = 0.0;
      if (has_before && has_after) {
        fill = 0.5 * (channel[t - 1] + channel[end]);
      } else if (has_before) {
        fill = channel[t - 1];
      } else if (has_after) {
        fill = channel[end];
      }
      std::fill(channel.begin() + t, channel.begin() + end, fill);
      t = end;
    }
  }
}

void TimeSeries::ZNormalize(double min_stddev) {
  for (size_t v = 0; v < num_variables(); ++v) {
    const double mean = Mean(v);
    const double sd = StdDev(v);
    auto& channel = values_[v];
    if (sd < min_stddev) {
      for (double& x : channel) x -= mean;
    } else {
      for (double& x : channel) x = (x - mean) / sd;
    }
  }
}

double TimeSeries::Mean(size_t variable) const {
  const auto& channel = values_[variable];
  if (channel.empty()) return 0.0;
  double sum = 0.0;
  for (double v : channel) sum += v;
  return sum / static_cast<double>(channel.size());
}

double TimeSeries::StdDev(size_t variable) const {
  const auto& channel = values_[variable];
  if (channel.empty()) return 0.0;
  const double mean = Mean(variable);
  double ss = 0.0;
  for (double v : channel) ss += (v - mean) * (v - mean);
  return std::sqrt(ss / static_cast<double>(channel.size()));
}

double SquaredEuclidean(const std::vector<double>& a,
                        const std::vector<double>& b) {
  ETSC_DCHECK(a.size() == b.size());
  // 4-way unrolled accumulators (k-means assignment and the SVM RBF kernel
  // spend most of their time here); fixed (s0+s1)+(s2+s3) reduction order so
  // serial and pooled callers round identically.
  const size_t n = a.size();
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double d0 = a[i] - b[i];
    const double d1 = a[i + 1] - b[i + 1];
    const double d2 = a[i + 2] - b[i + 2];
    const double d3 = a[i + 3] - b[i + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  double sum = (s0 + s1) + (s2 + s3);
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

double EuclideanDistance(const TimeSeries& a, const TimeSeries& b, size_t len) {
  ETSC_DCHECK(a.num_variables() == b.num_variables());
  size_t n = len == 0 ? std::min(a.length(), b.length())
                      : std::min({len, a.length(), b.length()});
  double sum = 0.0;
  for (size_t v = 0; v < a.num_variables(); ++v) {
    for (size_t t = 0; t < n; ++t) {
      const double d = a.at(v, t) - b.at(v, t);
      sum += d * d;
    }
  }
  return std::sqrt(sum);
}

}  // namespace etsc
