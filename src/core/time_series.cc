#include "core/time_series.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/counters.h"
#include "core/simd.h"

namespace etsc {

namespace {

Counter& AppendGrows() {
  static Counter& c =
      MetricRegistry::Global().counter("timeseries.append_grows");
  return c;
}

}  // namespace

void TimeSeries::AllocateOwned(size_t num_variables, size_t length) {
  num_variables_ = num_variables;
  length_ = length;
  stride_ = PaddedLength(length);
  own_.assign(num_variables_ * stride_, 0.0);
  data_ = own_.data();
}

TimeSeries::TimeSeries(size_t num_variables, size_t length) {
  AllocateOwned(num_variables, length);
}

TimeSeries::TimeSeries(const TimeSeries& other)
    : num_variables_(other.num_variables_),
      length_(other.length_),
      stride_(other.stride_),
      own_(other.data_, other.data_ + other.num_variables_ * other.stride_) {
  data_ = own_.data();
}

TimeSeries& TimeSeries::operator=(const TimeSeries& other) {
  if (this != &other) *this = TimeSeries(other);
  return *this;
}

TimeSeries::TimeSeries(TimeSeries&& other) noexcept
    : data_(other.data_),
      num_variables_(other.num_variables_),
      length_(other.length_),
      stride_(other.stride_),
      own_(std::move(other.own_)) {
  // Moving an owning series steals the buffer (same address, so data_ stays
  // right); moving a view copies the borrowed pointer.
  other.data_ = nullptr;
  other.num_variables_ = 0;
  other.length_ = 0;
  other.stride_ = 0;
  other.own_.clear();
}

TimeSeries& TimeSeries::operator=(TimeSeries&& other) noexcept {
  if (this != &other) {
    data_ = other.data_;
    num_variables_ = other.num_variables_;
    length_ = other.length_;
    stride_ = other.stride_;
    own_ = std::move(other.own_);
    other.data_ = nullptr;
    other.num_variables_ = 0;
    other.length_ = 0;
    other.stride_ = 0;
    other.own_.clear();
  }
  return *this;
}

TimeSeries TimeSeries::Univariate(std::vector<double> values) {
  TimeSeries ts;
  ts.AllocateOwned(1, values.size());
  std::copy(values.begin(), values.end(), ts.own_.begin());
  return ts;
}

Result<TimeSeries> TimeSeries::FromChannels(
    std::vector<std::vector<double>> channels) {
  if (channels.empty()) {
    return Status::InvalidArgument("FromChannels: no channels given");
  }
  const size_t len = channels[0].size();
  for (const auto& c : channels) {
    if (c.size() != len) {
      return Status::InvalidArgument("FromChannels: channels differ in length");
    }
  }
  TimeSeries ts;
  ts.AllocateOwned(channels.size(), len);
  for (size_t v = 0; v < channels.size(); ++v) {
    std::copy(channels[v].begin(), channels[v].end(),
              ts.own_.begin() + static_cast<ptrdiff_t>(v * ts.stride_));
  }
  return ts;
}

TimeSeries TimeSeries::Prefix(size_t len) const {
  len = std::min(len, length());
  TimeSeries out;
  out.AllocateOwned(num_variables_, len);
  for (size_t v = 0; v < num_variables_; ++v) {
    const double* src = data_ + v * stride_;
    std::copy(src, src + len,
              out.own_.begin() + static_cast<ptrdiff_t>(v * out.stride_));
  }
  return out;
}

TimeSeries TimeSeries::SingleVariable(size_t variable) const {
  ETSC_DCHECK(variable < num_variables());
  TimeSeries out;
  out.AllocateOwned(1, length_);
  const double* src = data_ + variable * stride_;
  std::copy(src, src + length_, out.own_.begin());
  return out;
}

void TimeSeries::Repack(size_t new_stride) {
  AlignedVector grown(num_variables_ * new_stride, 0.0);
  for (size_t v = 0; v < num_variables_; ++v) {
    const double* src = data_ + v * stride_;
    std::copy(src, src + length_,
              grown.begin() + static_cast<ptrdiff_t>(v * new_stride));
  }
  own_ = std::move(grown);
  data_ = own_.data();
  stride_ = new_stride;
  if (MetricsEnabled()) AppendGrows().Add(1);
}

void TimeSeries::AppendObservation(const std::vector<double>& values) {
  ETSC_DCHECK(owns_storage());
  ETSC_DCHECK(values.size() == num_variables_ ||
              (num_variables_ == 0 && !values.empty()));
  if (num_variables_ == 0) num_variables_ = values.size();
  if (length_ == stride_) {
    // Grow: double the padded stride and repack channels at the new spacing.
    Repack(std::max(kSimdWidthDoubles, stride_ * 2));
  }
  for (size_t v = 0; v < num_variables_; ++v) {
    data_[v * stride_ + length_] = values[v];
  }
  ++length_;
}

void TimeSeries::ReserveLength(size_t expected_length) {
  ETSC_DCHECK(owns_storage());
  const size_t wanted = PaddedLength(expected_length);
  if (wanted > stride_) Repack(wanted);
}

void TimeSeries::ClearValues() {
  ETSC_DCHECK(owns_storage());
  std::fill(own_.begin(), own_.end(), 0.0);
  length_ = 0;
}

void TimeSeries::ReleaseCapacity() {
  ETSC_DCHECK(owns_storage());
  own_ = AlignedVector();
  data_ = own_.data();
  length_ = 0;
  stride_ = 0;
}

bool TimeSeries::HasMissingValues() const {
  for (size_t v = 0; v < num_variables_; ++v) {
    for (double x : channel(v)) {
      if (std::isnan(x)) return true;
    }
  }
  return false;
}

void TimeSeries::FillMissingValues() {
  for (size_t v = 0; v < num_variables_; ++v) {
    std::span<double> chan = channel(v);
    const size_t n = chan.size();
    size_t t = 0;
    while (t < n) {
      if (!std::isnan(chan[t])) {
        ++t;
        continue;
      }
      // Locate the NaN run [t, end).
      size_t end = t;
      while (end < n && std::isnan(chan[end])) ++end;
      const bool has_before = t > 0;
      const bool has_after = end < n;
      double fill = 0.0;
      if (has_before && has_after) {
        fill = 0.5 * (chan[t - 1] + chan[end]);
      } else if (has_before) {
        fill = chan[t - 1];
      } else if (has_after) {
        fill = chan[end];
      }
      std::fill(chan.begin() + static_cast<ptrdiff_t>(t),
                chan.begin() + static_cast<ptrdiff_t>(end), fill);
      t = end;
    }
  }
}

void TimeSeries::ZNormalize(double min_stddev) {
  for (size_t v = 0; v < num_variables(); ++v) {
    const double mean = Mean(v);
    const double sd = StdDev(v);
    std::span<double> chan = channel(v);
    if (sd < min_stddev) {
      for (double& x : chan) x -= mean;
    } else {
      for (double& x : chan) x = (x - mean) / sd;
    }
  }
}

double TimeSeries::Mean(size_t variable) const {
  std::span<const double> chan = channel(variable);
  if (chan.empty()) return 0.0;
  double sum = 0.0;
  for (double v : chan) sum += v;
  return sum / static_cast<double>(chan.size());
}

double TimeSeries::StdDev(size_t variable) const {
  std::span<const double> chan = channel(variable);
  if (chan.empty()) return 0.0;
  const double mean = Mean(variable);
  double ss = 0.0;
  for (double v : chan) ss += (v - mean) * (v - mean);
  return std::sqrt(ss / static_cast<double>(chan.size()));
}

double SquaredEuclidean(std::span<const double> a, std::span<const double> b) {
  ETSC_DCHECK(a.size() == b.size());
  return simd::SumSqDiff(a.data(), b.data(), std::min(a.size(), b.size()));
}

double EuclideanDistance(const TimeSeries& a, const TimeSeries& b, size_t len) {
  ETSC_DCHECK(a.num_variables() == b.num_variables());
  const size_t n = len == 0 ? std::min(a.length(), b.length())
                            : std::min({len, a.length(), b.length()});
  double sum = 0.0;
  for (size_t v = 0; v < a.num_variables(); ++v) {
    sum += simd::SumSqDiff(a.channel_data(v), b.channel_data(v), n);
  }
  return std::sqrt(sum);
}

}  // namespace etsc
