#ifndef ETSC_CORE_VOTING_SCHEMES_H_
#define ETSC_CORE_VOTING_SCHEMES_H_

#include <memory>
#include <string>
#include <vector>

#include "core/classifier.h"

namespace etsc {

/// Alternative voting schemes for applying univariate ETSC algorithms to
/// multivariate data — the analysis the paper lists as future work (Sec. 7).
/// The default scheme (VotingEarlyClassifier in voting.h) is the paper's:
/// majority label, worst earliness.
enum class VotingScheme {
  /// Majority label; reported earliness is the worst voter's (paper default).
  kMajorityWorstEarliness,
  /// Majority label; earliness is the mean over voters (a vote can be tallied
  /// as each voter commits, so the expected consumption is the mean).
  kMajorityMeanEarliness,
  /// The single voter that committed earliest decides alone.
  kEarliestVoter,
  /// Weighted majority: each voter's vote counts 1/earliness, so voters that
  /// decided on less input (and were confident enough to do so) weigh more.
  kEarlinessWeighted,
};

std::string VotingSchemeName(VotingScheme scheme);

/// Voting wrapper parameterised by scheme. Trains one clone of `prototype`
/// per variable, like the paper's wrapper.
class ConfigurableVotingClassifier : public EarlyClassifier {
 public:
  ConfigurableVotingClassifier(std::unique_ptr<EarlyClassifier> prototype,
                               VotingScheme scheme);

  Status Fit(const Dataset& train) override;
  Result<EarlyPrediction> PredictEarly(const TimeSeries& series) const override;
  std::string name() const override;
  bool SupportsMultivariate() const override { return true; }
  std::unique_ptr<EarlyClassifier> CloneUntrained() const override;

  VotingScheme scheme() const { return scheme_; }

 private:
  std::unique_ptr<EarlyClassifier> prototype_;
  VotingScheme scheme_;
  std::vector<std::unique_ptr<EarlyClassifier>> voters_;
};

}  // namespace etsc

#endif  // ETSC_CORE_VOTING_SCHEMES_H_
