#ifndef ETSC_CORE_REGISTRY_H_
#define ETSC_CORE_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/classifier.h"
#include "core/status.h"

namespace etsc {

/// Name -> factory registry: the framework's extension point (paper Sec. 5.5).
/// New algorithms register themselves once (typically through
/// ETSC_REGISTER_EARLY_CLASSIFIER) and every harness and bench can then create
/// them by name.
class ClassifierRegistry {
 public:
  using Factory = std::function<std::unique_ptr<EarlyClassifier>()>;

  /// Process-wide registry instance.
  static ClassifierRegistry& Global();

  /// Registers a factory; fails on duplicate names.
  Status Register(const std::string& name, Factory factory);

  /// Instantiates a registered algorithm.
  Result<std::unique_ptr<EarlyClassifier>> Create(const std::string& name) const;

  bool Contains(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, Factory> factories_;
};

namespace internal {
/// Helper whose constructor performs the registration; aborts on duplicates so
/// misconfigured builds fail fast at startup.
struct Registrar {
  Registrar(const std::string& name, ClassifierRegistry::Factory factory);
};
}  // namespace internal

/// Registers a factory expression under `name` at static-initialisation time.
/// Usage (in a .cc file):
///   ETSC_REGISTER_EARLY_CLASSIFIER("ects", [] { return std::make_unique<Ects>(); });
#define ETSC_REGISTER_EARLY_CLASSIFIER(name, factory)                 \
  static const ::etsc::internal::Registrar ETSC_CONCAT_(etsc_registrar_, \
                                                        __COUNTER__)(name, factory)

}  // namespace etsc

#endif  // ETSC_CORE_REGISTRY_H_
