#include "core/voting_schemes.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace etsc {

std::string VotingSchemeName(VotingScheme scheme) {
  switch (scheme) {
    case VotingScheme::kMajorityWorstEarliness:
      return "majority-worst";
    case VotingScheme::kMajorityMeanEarliness:
      return "majority-mean";
    case VotingScheme::kEarliestVoter:
      return "earliest-voter";
    case VotingScheme::kEarlinessWeighted:
      return "earliness-weighted";
  }
  return "unknown";
}

ConfigurableVotingClassifier::ConfigurableVotingClassifier(
    std::unique_ptr<EarlyClassifier> prototype, VotingScheme scheme)
    : prototype_(std::move(prototype)), scheme_(scheme) {
  ETSC_CHECK(prototype_ != nullptr);
}

Status ConfigurableVotingClassifier::Fit(const Dataset& train) {
  if (train.empty()) {
    return Status::InvalidArgument("voting: empty training set");
  }
  voters_.clear();
  for (size_t v = 0; v < train.NumVariables(); ++v) {
    auto voter = prototype_->CloneUntrained();
    voter->set_train_budget_seconds(train_budget_seconds_);
    voter->set_predict_budget_seconds(predict_budget_seconds_);
    ETSC_RETURN_NOT_OK(voter->Fit(train.SingleVariable(v)));
    voters_.push_back(std::move(voter));
  }
  return Status::OK();
}

Result<EarlyPrediction> ConfigurableVotingClassifier::PredictEarly(
    const TimeSeries& series) const {
  if (voters_.empty()) {
    return Status::FailedPrecondition("voting: not fitted");
  }
  if (series.num_variables() != voters_.size()) {
    return Status::InvalidArgument("voting: variable count mismatch");
  }
  std::vector<EarlyPrediction> votes;
  votes.reserve(voters_.size());
  for (size_t v = 0; v < voters_.size(); ++v) {
    ETSC_ASSIGN_OR_RETURN(EarlyPrediction pred,
                          voters_[v]->PredictEarly(series.SingleVariable(v)));
    votes.push_back(pred);
  }

  switch (scheme_) {
    case VotingScheme::kMajorityWorstEarliness:
    case VotingScheme::kMajorityMeanEarliness: {
      std::map<int, size_t> tally;
      size_t worst = 0;
      double mean = 0.0;
      for (const auto& vote : votes) {
        ++tally[vote.label];
        worst = std::max(worst, vote.prefix_length);
        mean += static_cast<double>(vote.prefix_length);
      }
      mean /= static_cast<double>(votes.size());
      int best_label = tally.begin()->first;
      size_t best_count = 0;
      for (const auto& [label, count] : tally) {
        if (count > best_count) {
          best_count = count;
          best_label = label;
        }
      }
      const size_t prefix = scheme_ == VotingScheme::kMajorityWorstEarliness
                                ? worst
                                : static_cast<size_t>(std::llround(mean));
      return EarlyPrediction{best_label, std::max<size_t>(prefix, 1)};
    }
    case VotingScheme::kEarliestVoter: {
      const auto earliest = std::min_element(
          votes.begin(), votes.end(),
          [](const EarlyPrediction& a, const EarlyPrediction& b) {
            return a.prefix_length < b.prefix_length;
          });
      return *earliest;
    }
    case VotingScheme::kEarlinessWeighted: {
      std::map<int, double> tally;
      size_t worst = 0;
      for (const auto& vote : votes) {
        tally[vote.label] +=
            1.0 / std::max<double>(1.0, static_cast<double>(vote.prefix_length));
        worst = std::max(worst, vote.prefix_length);
      }
      int best_label = tally.begin()->first;
      double best_weight = -1.0;
      for (const auto& [label, weight] : tally) {
        if (weight > best_weight) {
          best_weight = weight;
          best_label = label;
        }
      }
      return EarlyPrediction{best_label, worst};
    }
  }
  return Status::Internal("voting: unknown scheme");
}

std::string ConfigurableVotingClassifier::name() const {
  return prototype_->name() + "+" + VotingSchemeName(scheme_);
}

std::unique_ptr<EarlyClassifier> ConfigurableVotingClassifier::CloneUntrained()
    const {
  return std::make_unique<ConfigurableVotingClassifier>(
      prototype_->CloneUntrained(), scheme_);
}

}  // namespace etsc
