#include "core/tuner.h"

namespace etsc {

namespace {

double Objective(const EvalScores& scores, TunerObjective objective) {
  switch (objective) {
    case TunerObjective::kAccuracy:
      return scores.accuracy;
    case TunerObjective::kF1:
      return scores.f1;
    case TunerObjective::kHarmonicMean:
      return scores.harmonic_mean;
  }
  return 0.0;
}

}  // namespace

Result<TunerVerdict> TuneEarlyClassifier(const Dataset& train,
                                         const std::vector<TunerCandidate>& grid,
                                         const TunerOptions& options) {
  if (grid.empty()) {
    return Status::InvalidArgument("TuneEarlyClassifier: empty grid");
  }
  TunerVerdict verdict;
  const TunerCandidate* winner = nullptr;

  EvaluationOptions eval;
  eval.num_folds = options.folds;
  eval.seed = options.seed;
  eval.train_budget_seconds = options.train_budget_seconds;
  eval.predict_budget_seconds = options.predict_budget_seconds;

  for (const auto& candidate : grid) {
    std::unique_ptr<EarlyClassifier> prototype = candidate.factory();
    if (prototype == nullptr) {
      verdict.leaderboard.emplace_back(candidate.name, -1.0);
      continue;
    }
    const EvaluationResult result = CrossValidate(train, *prototype, eval);
    if (!result.trained()) {
      verdict.leaderboard.emplace_back(candidate.name, -1.0);
      continue;
    }
    const double score = Objective(result.MeanScores(), options.objective);
    verdict.leaderboard.emplace_back(candidate.name, score);
    if (score > verdict.best_score) {
      verdict.best_score = score;
      verdict.best_name = candidate.name;
      winner = &candidate;
    }
  }
  if (winner == nullptr) {
    return Status::FailedPrecondition(
        "TuneEarlyClassifier: no candidate trained successfully");
  }
  verdict.best_model = winner->factory();
  verdict.best_model->set_train_budget_seconds(options.train_budget_seconds);
  verdict.best_model->set_predict_budget_seconds(options.predict_budget_seconds);
  ETSC_RETURN_NOT_OK(verdict.best_model->Fit(train));
  return verdict;
}

}  // namespace etsc
