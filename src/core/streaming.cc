#include "core/streaming.h"

#include <algorithm>
#include <utility>

#include "core/counters.h"
#include "core/evaluation.h"

namespace etsc {

namespace {

Counter& Pushes() {
  static Counter& c = MetricRegistry::Global().counter("streaming.pushes");
  return c;
}
Counter& Decisions() {
  static Counter& c = MetricRegistry::Global().counter("streaming.decisions");
  return c;
}
Counter& SessionsReset() {
  static Counter& c =
      MetricRegistry::Global().counter("streaming.sessions_reset");
  return c;
}
Counter& BufferShrinks() {
  static Counter& c =
      MetricRegistry::Global().counter("streaming.buffer_shrinks");
  return c;
}
Histogram& PushSeconds() {
  static Histogram& h =
      MetricRegistry::Global().histogram("streaming.push_seconds");
  return h;
}

}  // namespace

StreamingSession::StreamingSession(const EarlyClassifier& classifier,
                                   size_t num_variables,
                                   size_t expected_length)
    : classifier_(classifier),
      buffer_(num_variables, 0),
      expected_length_(expected_length) {
  ETSC_CHECK(num_variables >= 1);
  if (expected_length_ > 0) buffer_.ReserveLength(expected_length_);
}

Result<std::optional<EarlyPrediction>> StreamingSession::Push(
    const std::vector<double>& values) {
  // Arity is validated before anything else — including the sticky-decision
  // shortcut — so a malformed observation is always reported and can never
  // leave the buffer with ragged channels.
  if (values.size() != buffer_.num_variables()) {
    return Status::InvalidArgument(
        "StreamingSession: observation has " + std::to_string(values.size()) +
        " values, expected " + std::to_string(buffer_.num_variables()));
  }
  if (decision_.has_value()) return decision_;
  Stopwatch push_timer;
  buffer_.AppendObservation(values);
  ++observed_;
  if (MetricsEnabled()) Pushes().Add(1);

  auto pred_result = classifier_.PredictEarly(buffer_);
  // The latency histogram is the Figure-13 quantity: what one arriving point
  // costs, decision or not, success or failure.
  if (MetricsEnabled()) PushSeconds().Record(push_timer.Seconds());
  ETSC_ASSIGN_OR_RETURN(EarlyPrediction pred, std::move(pred_result));
  // The classifier committed only if it needed no more than what we have; a
  // consumption equal to the buffer length means "this is my answer *so far*"
  // — it may still change with more data, so only an early commitment
  // (strictly inside the buffer) is final before Finish().
  if (pred.prefix_length < observed_) {
    decision_ = pred;
    meta_ = DecisionMeta{observed_,
                         static_cast<double>(pred.prefix_length) /
                             static_cast<double>(observed_),
                         pred.confidence, /*forced=*/false};
    if (MetricsEnabled()) Decisions().Add(1);
    return decision_;
  }
  return std::optional<EarlyPrediction>();
}

Result<EarlyPrediction> StreamingSession::Finish() {
  // Sticky exactly like Push: a decided session keeps answering without
  // re-running the classifier, whether the decision came from a Push or from
  // a previous Finish.
  if (decision_.has_value()) return *decision_;
  if (observed_ == 0) {
    return Status::InvalidArgument(
        "StreamingSession: Finish() with no observations");
  }
  ETSC_ASSIGN_OR_RETURN(EarlyPrediction pred,
                        classifier_.PredictEarly(buffer_));
  decision_ = pred;
  meta_ = DecisionMeta{observed_,
                       std::min(1.0, static_cast<double>(pred.prefix_length) /
                                         static_cast<double>(observed_)),
                       pred.confidence, /*forced=*/true};
  if (MetricsEnabled()) Decisions().Add(1);
  return pred;
}

void StreamingSession::Reset() {
  // Shrink rule: one unusually long stream must not pin its capacity for the
  // session's whole lifetime. Anything up to the expected length (plus the
  // geometric-growth headroom of one doubling) is kept for reuse; beyond
  // that, release and re-reserve the hint.
  const size_t keep =
      2 * PaddedLength(std::max(expected_length_, size_t{256}));
  if (buffer_.capacity() > keep) {
    buffer_.ReleaseCapacity();
    if (expected_length_ > 0) buffer_.ReserveLength(expected_length_);
    if (MetricsEnabled()) BufferShrinks().Add(1);
  } else {
    buffer_.ClearValues();
  }
  observed_ = 0;
  decision_.reset();
  meta_.reset();
  if (MetricsEnabled()) SessionsReset().Add(1);
}

}  // namespace etsc
