#include "core/streaming.h"

namespace etsc {

StreamingSession::StreamingSession(const EarlyClassifier* classifier,
                                   size_t num_variables)
    : classifier_(classifier), buffer_(num_variables, 0) {
  ETSC_CHECK(classifier_ != nullptr);
  ETSC_CHECK(num_variables >= 1);
}

Result<std::optional<EarlyPrediction>> StreamingSession::Push(
    const std::vector<double>& values) {
  // Arity is validated before anything else — including the sticky-decision
  // shortcut — so a malformed observation is always reported and can never
  // leave the buffer with ragged channels.
  if (values.size() != buffer_.num_variables()) {
    return Status::InvalidArgument(
        "StreamingSession: observation has " + std::to_string(values.size()) +
        " values, expected " + std::to_string(buffer_.num_variables()));
  }
  if (decision_.has_value()) return decision_;
  for (size_t v = 0; v < values.size(); ++v) {
    buffer_.channel(v).push_back(values[v]);
  }
  ++observed_;

  ETSC_ASSIGN_OR_RETURN(EarlyPrediction pred,
                        classifier_->PredictEarly(buffer_));
  // The classifier committed only if it needed no more than what we have; a
  // consumption equal to the buffer length means "this is my answer *so far*"
  // — it may still change with more data, so only an early commitment
  // (strictly inside the buffer) is final before Finish().
  if (pred.prefix_length < observed_) {
    decision_ = pred;
    return decision_;
  }
  return std::optional<EarlyPrediction>();
}

Result<EarlyPrediction> StreamingSession::Finish() {
  if (decision_.has_value()) return *decision_;
  if (observed_ == 0) {
    return Status::FailedPrecondition("StreamingSession: no observations");
  }
  ETSC_ASSIGN_OR_RETURN(EarlyPrediction pred,
                        classifier_->PredictEarly(buffer_));
  decision_ = pred;
  return pred;
}

void StreamingSession::Reset() {
  for (size_t v = 0; v < buffer_.num_variables(); ++v) {
    buffer_.channel(v).clear();
  }
  observed_ = 0;
  decision_.reset();
}

}  // namespace etsc
