#include "core/voting.h"

#include <algorithm>
#include <map>

namespace etsc {

VotingEarlyClassifier::VotingEarlyClassifier(
    std::unique_ptr<EarlyClassifier> prototype)
    : prototype_(std::move(prototype)) {
  ETSC_CHECK(prototype_ != nullptr);
}

Status VotingEarlyClassifier::Fit(const Dataset& train) {
  if (train.empty()) {
    return Status::InvalidArgument("VotingEarlyClassifier: empty training set");
  }
  const size_t num_vars = train.NumVariables();
  voters_.clear();
  voters_.reserve(num_vars);
  for (size_t v = 0; v < num_vars; ++v) {
    auto voter = prototype_->CloneUntrained();
    voter->set_train_budget_seconds(train_budget_seconds_);
    voter->set_predict_budget_seconds(predict_budget_seconds_);
    ETSC_RETURN_NOT_OK(voter->Fit(train.SingleVariable(v)));
    voters_.push_back(std::move(voter));
  }
  return Status::OK();
}

Result<EarlyPrediction> VotingEarlyClassifier::PredictEarly(
    const TimeSeries& series) const {
  if (voters_.empty()) {
    return Status::FailedPrecondition("VotingEarlyClassifier: not fitted");
  }
  if (series.num_variables() != voters_.size()) {
    return Status::InvalidArgument(
        "VotingEarlyClassifier: variable count differs from training data");
  }
  std::map<int, size_t> votes;
  size_t worst_prefix = 0;
  for (size_t v = 0; v < voters_.size(); ++v) {
    ETSC_ASSIGN_OR_RETURN(EarlyPrediction pred,
                          voters_[v]->PredictEarly(series.SingleVariable(v)));
    ++votes[pred.label];
    worst_prefix = std::max(worst_prefix, pred.prefix_length);
  }
  // Most popular label; std::map iteration order makes ties deterministic
  // (lowest label value wins, the paper's "first class label").
  int best_label = votes.begin()->first;
  size_t best_count = 0;
  for (const auto& [label, count] : votes) {
    if (count > best_count) {
      best_count = count;
      best_label = label;
    }
  }
  return EarlyPrediction{best_label, worst_prefix};
}

std::string VotingEarlyClassifier::name() const {
  return prototype_->name() + "+vote";
}

std::unique_ptr<EarlyClassifier> VotingEarlyClassifier::CloneUntrained() const {
  return std::make_unique<VotingEarlyClassifier>(prototype_->CloneUntrained());
}

std::unique_ptr<EarlyClassifier> WrapForDataset(
    std::unique_ptr<EarlyClassifier> classifier, const Dataset& dataset) {
  if (dataset.NumVariables() > 1 && !classifier->SupportsMultivariate()) {
    return std::make_unique<VotingEarlyClassifier>(std::move(classifier));
  }
  return classifier;
}

std::string VotingEarlyClassifier::config_fingerprint() const {
  return "vote(" + prototype_->config_fingerprint() + ")";
}

Status VotingEarlyClassifier::SaveState(Serializer& out) const {
  if (voters_.empty()) {
    return Status::FailedPrecondition(name() + ": not fitted");
  }
  out.Begin("vote");
  out.SizeT(voters_.size());
  for (const auto& voter : voters_) {
    ETSC_RETURN_NOT_OK(voter->SaveState(out));
  }
  out.End();
  return Status::OK();
}

Status VotingEarlyClassifier::LoadState(Deserializer& in) {
  ETSC_RETURN_NOT_OK(in.Enter("vote"));
  ETSC_ASSIGN_OR_RETURN(size_t num_voters, in.SizeT());
  if (num_voters == 0) return Status::DataLoss(name() + ": no voters");
  voters_.clear();
  for (size_t v = 0; v < num_voters; ++v) {
    voters_.push_back(prototype_->CloneUntrained());
    ETSC_RETURN_NOT_OK(voters_.back()->LoadState(in));
  }
  return in.Leave();
}

}  // namespace etsc
