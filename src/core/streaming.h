#ifndef ETSC_CORE_STREAMING_H_
#define ETSC_CORE_STREAMING_H_

#include <optional>
#include <vector>

#include "core/classifier.h"

namespace etsc {

/// Online wrapper around a trained EarlyClassifier for the paper's streaming
/// setting (Sec. 6.2.5): measurements arrive one time-point at a time and the
/// session reports the moment the algorithm commits.
///
/// Each Push re-evaluates the algorithm on the observed prefix; a decision is
/// "ready" once the algorithm's reported consumption fits inside what has
/// actually been observed. This keeps the wrapper algorithm-agnostic at the
/// cost of one PredictEarly per arriving point — the same quantity Figure 13
/// divides by the observation period.
///
/// Metrics: streaming.pushes / streaming.decisions / streaming.sessions_reset
/// counters, and a streaming.push_seconds histogram of per-Push latency (the
/// quantity the online-feasibility analysis compares to the observation
/// period).
class StreamingSession {
 public:
  /// `classifier` must outlive the session and already be fitted; taking a
  /// reference makes the non-null requirement part of the signature.
  /// `num_variables` is the expected channel count per observation.
  StreamingSession(const EarlyClassifier& classifier, size_t num_variables);

  /// Appends one observation (one value per variable). Returns the decision
  /// if the classifier committed with this point, std::nullopt otherwise.
  /// Once a decision is made, further pushes keep returning it without
  /// re-running the classifier. An observation whose arity differs from
  /// `num_variables` is rejected with InvalidArgument before touching the
  /// buffer (even after a decision), so the buffer can never go ragged.
  Result<std::optional<EarlyPrediction>> Push(const std::vector<double>& values);

  /// Forces a decision on whatever has been observed (end of stream).
  Result<EarlyPrediction> Finish();

  /// Number of observations pushed so far.
  size_t observed() const { return observed_; }

  /// The decision, if one has been made.
  const std::optional<EarlyPrediction>& decision() const { return decision_; }

  /// Clears the buffer and the decision for the next stream (counted as
  /// streaming.sessions_reset).
  void Reset();

 private:
  const EarlyClassifier& classifier_;
  TimeSeries buffer_;
  size_t observed_ = 0;
  std::optional<EarlyPrediction> decision_;
};

}  // namespace etsc

#endif  // ETSC_CORE_STREAMING_H_
