#ifndef ETSC_CORE_STREAMING_H_
#define ETSC_CORE_STREAMING_H_

#include <optional>
#include <vector>

#include "core/classifier.h"

namespace etsc {

/// Trigger decision metadata captured at the instant a session commits: at
/// which step the trigger halted, how early that was relative to what had
/// been observed, and how confident the trigger claimed to be. Derived purely
/// from the decision-time state, so the batched serving path reproduces it
/// bit-identically to the sequential one.
struct DecisionMeta {
  size_t halt_step = 0;     // observations ingested when the decision landed
  double earliness = 1.0;   // prefix_length / halt_step; 1 = needed it all
  double confidence = 1.0;  // EarlyPrediction::confidence at the halt
  bool forced = false;      // decision came from Finish(), not a trigger halt

  bool operator==(const DecisionMeta&) const = default;
};

/// Online wrapper around a trained EarlyClassifier for the paper's streaming
/// setting (Sec. 6.2.5): measurements arrive one time-point at a time and the
/// session reports the moment the algorithm commits.
///
/// Each Push re-evaluates the algorithm on the observed prefix; a decision is
/// "ready" once the algorithm's reported consumption fits inside what has
/// actually been observed. This keeps the wrapper algorithm-agnostic at the
/// cost of one PredictEarly per arriving point — the same quantity Figure 13
/// divides by the observation period.
///
/// Metrics: streaming.pushes / streaming.decisions / streaming.sessions_reset
/// counters, and a streaming.push_seconds histogram of per-Push latency (the
/// quantity the online-feasibility analysis compares to the observation
/// period).
class StreamingSession {
 public:
  /// `classifier` must outlive the session and already be fitted; taking a
  /// reference makes the non-null requirement part of the signature.
  /// `num_variables` is the expected channel count per observation.
  /// `expected_length` (optional) pre-reserves buffer capacity for streams of
  /// that length, so the steady-state push path never reallocates; it also
  /// bounds the capacity a reused session keeps across Reset().
  StreamingSession(const EarlyClassifier& classifier, size_t num_variables,
                   size_t expected_length = 0);

  /// Appends one observation (one value per variable). Returns the decision
  /// if the classifier committed with this point, std::nullopt otherwise.
  /// Once a decision is made, further pushes keep returning it without
  /// re-running the classifier. An observation whose arity differs from
  /// `num_variables` is rejected with InvalidArgument before touching the
  /// buffer (even after a decision), so the buffer can never go ragged.
  Result<std::optional<EarlyPrediction>> Push(const std::vector<double>& values);

  /// Forces a decision on whatever has been observed (end of stream).
  /// A session with zero observations has nothing to decide on and reports
  /// InvalidArgument. The forced decision is as sticky as a Push one: further
  /// Finish() and Push() calls keep returning it without re-running the
  /// classifier.
  Result<EarlyPrediction> Finish();

  /// Number of observations pushed so far.
  size_t observed() const { return observed_; }

  /// The decision, if one has been made.
  const std::optional<EarlyPrediction>& decision() const { return decision_; }

  /// Metadata of the decision (halt step, earliness ratio, confidence,
  /// whether it was forced by Finish); engaged exactly when decision() is.
  const std::optional<DecisionMeta>& decision_meta() const { return meta_; }

  /// Per-channel buffer capacity in time-points (what Reset()'s shrink rule
  /// operates on; exposed so capacity regressions are testable).
  size_t buffer_capacity() const { return buffer_.capacity(); }

  /// Clears the buffer and the decision for the next stream (counted as
  /// streaming.sessions_reset). Capacity inflated far beyond the expected
  /// length by one unusually long stream is released (counted as
  /// streaming.buffer_shrinks), so a long-lived reused session cannot pin the
  /// peak stream's RSS forever.
  void Reset();

 private:
  const EarlyClassifier& classifier_;
  TimeSeries buffer_;
  size_t observed_ = 0;
  size_t expected_length_;
  std::optional<EarlyPrediction> decision_;
  std::optional<DecisionMeta> meta_;
};

}  // namespace etsc

#endif  // ETSC_CORE_STREAMING_H_
