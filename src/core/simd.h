#ifndef ETSC_CORE_SIMD_H_
#define ETSC_CORE_SIMD_H_

#include <cstddef>
#include <cstdint>

#include "core/aligned.h"

namespace etsc {
namespace simd {

// Portable explicit-vector layer for the framework's inner loops
// (DESIGN.md sec 13). Three compile-time ISA tiers — AVX2(+FMA), SSE2, and a
// plain auto-vectorizable fallback — behind one fixed-semantics API, plus an
// always-built scalar reference path (namespace simd::scalar) selectable at
// run time with ETSC_SIMD=0.
//
// The contract that makes ETSC_SIMD a pure execution knob: for every kernel
// here, the vector path and the scalar reference produce bit-identical
// results. This file's implementations are compiled with -ffp-contract=off
// and use explicit std::fma exactly where the vector path uses fused
// multiply-add, so the compiler cannot introduce (or drop) contractions on
// one side only. Reductions fix the lane order (s0+s1)+(s2+s3) — the same
// order the pre-SoA scalar kernels used — so serial, pooled and SIMD runs of
// a campaign all round identically.

/// Compile-time selected instruction set: "avx2+fma", "avx2", "sse2" or
/// "scalar". Recorded in BENCH_simd.json and the campaign report so bench
/// trajectories across machines stay comparable.
const char* CompiledIsa();

/// True when explicit-vector kernels are active. Parsed once from ETSC_SIMD
/// ("0"/"1"; unset/empty = 1; anything else warns and uses the default, the
/// same validation contract as ETSC_THREADS). Always false when the build has
/// no vector ISA.
bool Enabled();

/// The path actually taken: CompiledIsa() when Enabled(), "scalar" otherwise.
const char* ActiveIsa();

/// Test/bench hook: force the dispatch (true/false) or re-read the
/// environment (pass -1). Not thread-safe against concurrent kernel calls;
/// flip it only between runs.
void SetEnabledForTest(int enabled);

// ---------------------------------------------------------------------------
// Kernels. Every function dispatches on Enabled(); the simd::scalar twins
// below are the reference implementations (also used directly by tests).
// Pointers need no particular alignment — the vector paths use unaligned
// loads, so spans into padded SoA buffers and plain std::vectors both work.
// ---------------------------------------------------------------------------

/// Sum of squared differences over [0, n): the Euclidean-distance core.
double SumSqDiff(const double* a, const double* b, size_t n);

/// Minimum squared Euclidean distance between `pattern` (length m) and every
/// length-m window of `series` (length n), early-abandoning windows whose
/// partial sum reaches `best_sq`. Returns min(best_sq, true minimum); +inf
/// when m == 0 or n < m. `windows`/`abandoned` (may be null) receive the
/// number of windows examined / abandoned — identical on both paths because
/// partial sums of squares are monotone, so a window is abandoned iff its
/// full sum would have reached best_sq regardless of checkpoint granularity.
double MinSubseriesSq(const double* pattern, size_t m, const double* series,
                      size_t n, double best_sq, uint64_t* windows,
                      uint64_t* abandoned);

/// out[i] += w * x[i] for i in [0, n): the MiniROCKET shifted-tap pass.
/// Fused (std::fma / vfmadd) on FMA builds, mul+add otherwise — consistently
/// on both paths.
void Axpy(double w, const double* x, double* out, size_t n);

/// Number of entries strictly greater than `threshold` (MiniROCKET's PPV
/// pooling). NaN compares false, matching the scalar `>`.
size_t CountGreater(const double* x, size_t n, double threshold);

/// Sliding-DFT momentary update over `k` coefficients:
///   re_new = re[i] + delta;  im_new = im[i];
///   re[i]  = re_new * cos_t[i] - im_new * sin_t[i];
///   im[i]  = re_new * sin_t[i] + im_new * cos_t[i];
/// Never fused (explicit mul/sub on both paths): a one-sided contraction of
/// a*b - c*d is exactly the kind of drift this layer exists to rule out.
void RotatePhasors(const double* cos_t, const double* sin_t, double delta,
                   double* re, double* im, size_t k);

/// Best split position over a pre-sorted feature column (the GBDT split
/// scan). Inputs are gathered per feature by the caller: xv[pos] is the
/// pos-th smallest feature value, pg/ph the inclusive prefix sums of
/// gradients/hessians in that order. A position `pos` (split between pos and
/// pos+1) is valid when xv[pos] != xv[pos+1], both sides hold at least
/// `min_leaf` samples, and both hessian sums are > 0; its gain is
///   lg*lg/lh + rg*rg/rh - parent_score.
/// Returns the strictly-greatest gain > 0 with the lowest position winning
/// ties — the same first-wins semantics as the sequential scan.
struct SplitScanBest {
  double gain = 0.0;
  size_t pos = ~size_t{0};  // ~0 = no valid split
};
SplitScanBest SplitScan(const double* xv, const double* pg, const double* ph,
                        size_t n, double total_g, double total_h,
                        double parent_score, size_t min_leaf);

// Scalar reference path. Always compiled (it IS the ETSC_SIMD=0
// implementation); exposed for the bit-exactness tests and micro-benches.
namespace scalar {
double SumSqDiff(const double* a, const double* b, size_t n);
double MinSubseriesSq(const double* pattern, size_t m, const double* series,
                      size_t n, double best_sq, uint64_t* windows,
                      uint64_t* abandoned);
void Axpy(double w, const double* x, double* out, size_t n);
size_t CountGreater(const double* x, size_t n, double threshold);
void RotatePhasors(const double* cos_t, const double* sin_t, double delta,
                   double* re, double* im, size_t k);
SplitScanBest SplitScan(const double* xv, const double* pg, const double* ph,
                        size_t n, double total_g, double total_h,
                        double parent_score, size_t min_leaf);
}  // namespace scalar

}  // namespace simd
}  // namespace etsc

#endif  // ETSC_CORE_SIMD_H_
