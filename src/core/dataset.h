#ifndef ETSC_CORE_DATASET_H_
#define ETSC_CORE_DATASET_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/aligned.h"
#include "core/rng.h"
#include "core/status.h"
#include "core/time_series.h"

namespace etsc {

/// A labelled collection of time-series instances plus the metadata the
/// framework's categorisation and online-feasibility analyses need.
///
/// Storage is one structure-of-arrays pool (DESIGN.md sec 13): every
/// instance's channels live back to back in a single 32-byte aligned buffer,
/// channel strides padded to the SIMD width, padding zeroed. instance(i) is a
/// lightweight TimeSeries *view* into the pool; views are re-targeted
/// whenever the pool reallocates, and copying a view out of the dataset deep
/// copies, so the pool is invisible to callers. The fingerprint hashes
/// logical values only (never padding), so it is layout-independent and
/// matches the pre-SoA values bit for bit.
class Dataset {
 public:
  Dataset() = default;
  Dataset(std::string name, std::vector<TimeSeries> instances,
          std::vector<int> labels);

  Dataset(const Dataset& other);
  Dataset& operator=(const Dataset& other);
  Dataset(Dataset&& other) noexcept = default;
  Dataset& operator=(Dataset&& other) noexcept = default;
  ~Dataset() = default;

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  size_t size() const { return instances_.size(); }
  bool empty() const { return instances_.empty(); }

  const TimeSeries& instance(size_t i) const { return instances_[i]; }
  TimeSeries& instance(size_t i) { return instances_[i]; }
  int label(size_t i) const { return labels_[i]; }

  const std::vector<TimeSeries>& instances() const { return instances_; }
  const std::vector<int>& labels() const { return labels_; }

  void Add(TimeSeries series, int label);

  /// Pre-sizes the pool for `total_values` doubles (sum over instances of
  /// num_variables * padded stride) so a bulk load does one allocation.
  void ReservePool(size_t instances, size_t total_values);

  /// Seconds between consecutive observations (used by the Fig-13 online
  /// feasibility analysis). Zero when unknown.
  double observation_period_seconds() const { return observation_period_seconds_; }
  void set_observation_period_seconds(double s) { observation_period_seconds_ = s; }

  /// Number of distinct class labels.
  size_t NumClasses() const;

  /// Sorted list of distinct labels.
  std::vector<int> ClassLabels() const;

  /// label -> number of instances.
  std::map<int, size_t> ClassCounts() const;

  /// Maximum series length over all instances (the dataset "length"/width).
  size_t MaxLength() const;

  /// Minimum series length over all instances.
  size_t MinLength() const;

  /// Number of variables (channels); requires a non-empty dataset.
  size_t NumVariables() const;

  /// True when every instance has exactly one channel.
  bool IsUnivariate() const { return NumVariables() == 1; }

  /// Returns a copy with every instance truncated to its first `len` points.
  Dataset Truncated(size_t len) const;

  /// Returns a copy holding only `variable` of every instance.
  Dataset SingleVariable(size_t variable) const;

  /// Returns the instances at `indices` (in that order).
  Dataset Subset(const std::vector<size_t>& indices) const;

  /// Repairs NaNs in every instance (paper Sec. 5.1 rule).
  void FillMissingValues();

  /// Stable 64-bit content hash (FNV-1a over name, labels and every value's
  /// bit pattern). Identical datasets hash identically across runs and
  /// platforms; used to key the fitted-model cache and to stamp campaign
  /// journals so stale caches are detected.
  uint64_t Fingerprint() const;

  /// Class imbalance ratio: count of most populated class over least
  /// populated one (paper Sec. 5.4). Returns 1 for empty datasets.
  double ClassImbalanceRatio() const;

  /// Coefficient of variation: stddev over all time-points and instances
  /// divided by the absolute mean (paper Sec. 5.4).
  double CoefficientOfVariation() const;

 private:
  /// Pool slot descriptor for one instance.
  struct SeriesMeta {
    size_t offset = 0;         // first double of the slot in pool_
    size_t num_variables = 0;
    size_t length = 0;
    size_t stride = 0;         // PaddedLength(length)
  };

  /// Copies one series' channels into a fresh pool slot and appends the view.
  void AppendToPool(const TimeSeries& series, int label);

  /// Re-targets every view after the pool moved (reallocation, copy).
  /// Instances that were detached into owning mode (whole-object assignment
  /// through instance(i)) are left alone.
  void RebuildViews();

  std::string name_;
  AlignedVector pool_;
  std::vector<SeriesMeta> meta_;
  std::vector<TimeSeries> instances_;  // views into pool_
  std::vector<int> labels_;
  double observation_period_seconds_ = 0.0;
};

/// Index-level train/test split.
struct SplitIndices {
  std::vector<size_t> train;
  std::vector<size_t> test;
};

/// Produces `k` stratified folds: fold i's `test` contains roughly 1/k of each
/// class, `train` the rest. Shuffling is driven by `rng` so runs are
/// reproducible (paper Sec. 6.1: stratified random-sampling 5-fold CV).
std::vector<SplitIndices> StratifiedKFold(const Dataset& dataset, size_t k, Rng* rng);

/// Single stratified split with `train_fraction` of each class in `train`.
SplitIndices StratifiedSplit(const Dataset& dataset, double train_fraction, Rng* rng);

}  // namespace etsc

#endif  // ETSC_CORE_DATASET_H_
