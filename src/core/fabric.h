#ifndef ETSC_CORE_FABRIC_H_
#define ETSC_CORE_FABRIC_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/status.h"

namespace etsc::fabric {

/// Multi-worker campaign fabric: the crash-safe campaign journal doubles as a
/// durable lease-based work queue shared by N worker processes.
///
/// Protocol. The journal stays an append-only text file whose first line is
/// the campaign header and whose cell rows end with the `,#end` sentinel
/// (bench/bench_common.h). Workers additionally append CONTROL rows — lines
/// starting with '@', also sentinel-terminated, which result readers skip:
///
///   @lease,<algorithm>,<dataset>,<owner>,<expiry_ms>,#end
///   @quarantine,<algorithm>,<owner>,#end
///
/// A worker claims a cell by appending a lease row under an exclusive file
/// lock (flock on `<journal>.lock`), renews it by appending a fresh lease row
/// before the previous expiry (the LAST lease row per cell wins, matching the
/// journal's keep-last dedup discipline), and marks it done by appending the
/// ordinary cell row. Expiry times come from CLOCK_MONOTONIC (machine-wide on
/// Linux), so leases from killed workers expire on every surviving worker's
/// clock and are stolen deterministically: among stealable cells the LOWEST
/// grid index wins.
///
/// Determinism. Each cell carries a `prerequisite` — the previous cell of the
/// same algorithm in dataset-major order — and only becomes acquirable once
/// its prerequisite is terminal. That serialises every algorithm's lane
/// across workers exactly like the single-process campaign's lanes, so the
/// circuit-breaker replay over journalled outcomes (bench RunWorker) reaches
/// the same quarantine decisions bit-for-bit. A `@quarantine` row published
/// by the worker that trips the breaker stops the other workers immediately.
///
/// Crash safety. All appends inherit the sentinel discipline: a torn control
/// row is ignored by every reader; a worker killed mid-cell leaves only a
/// lease row whose expiry passes, after which the cell is stolen and re-run —
/// no cell is ever lost and no cell row is ever overwritten.

/// "No cell" marker for grid indices.
inline constexpr size_t kNoCell = static_cast<size_t>(-1);

/// Milliseconds on the machine-wide monotonic clock; comparable across
/// processes on the same host, immune to wall-clock steps.
uint64_t MonotonicMs();

/// Lease timing knobs. FromEnv reads ETSC_LEASE_TTL_MS and ETSC_HEARTBEAT_MS
/// (invalid or non-positive values warn and keep the default; a heartbeat
/// that is not strictly shorter than the TTL is clamped to ttl_ms / 4).
struct LeaseOptions {
  /// A lease not renewed for this long is stealable.
  double ttl_ms = 5000.0;
  /// Renewal cadence of the LeaseKeeper background thread.
  double heartbeat_ms = 1000.0;

  static LeaseOptions FromEnv();
};

/// One campaign grid cell in dataset-major order, plus the lane link.
struct GridCell {
  std::string algorithm;
  std::string dataset;
  /// Index of the previous cell of the same algorithm (dataset-major), or
  /// kNoCell for the first. A cell is only acquirable once its prerequisite
  /// is terminal — the cross-process equivalent of the per-algorithm lanes.
  size_t prerequisite = kNoCell;
};

/// Parsed `@lease` control row.
struct LeaseRow {
  std::string algorithm;
  std::string dataset;
  std::string owner;
  uint64_t expiry_ms = 0;
};

/// Parsed `@quarantine` control row.
struct QuarantineRow {
  std::string algorithm;
  std::string owner;
};

/// Serialises a lease row (sentinel-terminated, no trailing newline).
std::string FormatLeaseRow(const LeaseRow& row);

/// Serialises a quarantine row (sentinel-terminated, no trailing newline).
std::string FormatQuarantineRow(const QuarantineRow& row);

/// Control-row classification; kNone covers non-control lines, torn rows and
/// malformed control rows (all of which scanners must skip, not half-parse).
enum class ControlRowKind { kNone, kLease, kQuarantine };

struct ControlRow {
  ControlRowKind kind = ControlRowKind::kNone;
  LeaseRow lease;
  QuarantineRow quarantine;
};

/// Parses one journal line as a control row; kind == kNone when it is not a
/// well-formed, sentinel-terminated control row.
ControlRow ParseControlRow(const std::string& line);

/// Extracts N from a journal header line of the form "# vN ..."; 0 when the
/// line carries no parsable format version. Used to tell "journal from a
/// newer build" (actionable error) apart from "journal from another config"
/// (rotate aside).
int HeaderVersion(const std::string& header_line);

/// RAII exclusive advisory lock (flock) on `path`, creating the file if
/// needed. Serialises journal read-scan-claim-append cycles across worker
/// processes and across threads (each FileLock opens its own descriptor).
class FileLock {
 public:
  explicit FileLock(const std::string& path);
  ~FileLock();

  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

  /// False when the lock file could not be opened or locked.
  bool ok() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

/// Per-cell view assembled by replaying journal lines in file order.
struct CellStatus {
  /// A result row for the cell exists — computed, failed, or quarantined.
  bool terminal = false;
  /// The terminal row's trained flag (breaker replay evidence).
  bool trained = false;
  /// The terminal row is a breaker skip (not evidence for the replay).
  bool quarantined_row = false;
  /// Latest lease, when any: empty owner = never leased.
  std::string lease_owner;
  uint64_t lease_expiry_ms = 0;
};

/// Pure replay of journal lines into per-cell statuses + the set of
/// algorithms with a published `@quarantine` row. No I/O, no clock: callers
/// feed lines and ask questions against an explicit `now`, which is what
/// makes steal determinism directly testable.
class LeaseTable {
 public:
  explicit LeaseTable(const std::vector<GridCell>& grid);

  /// Applies one journal line (cell row, control row, or junk — junk and
  /// torn rows are ignored). Later lines win, matching keep-last dedup.
  void ApplyLine(const std::string& line);

  /// Lowest-index cell that is not terminal, whose prerequisite (if any) is
  /// terminal, and that is unleased or holds a lease expired at `now_ms`.
  /// Sets *stolen when the returned cell's lease was expired (a steal).
  /// Returns kNoCell when nothing is currently acquirable.
  size_t NextAvailable(uint64_t now_ms, bool* stolen) const;

  /// Milliseconds until the soonest live-lease expiry after `now_ms`; 0 when
  /// no live lease exists (then NextAvailable can only be blocked by
  /// terminal-row publication, which another worker performs imminently).
  uint64_t MsUntilNextExpiry(uint64_t now_ms) const;

  bool AllTerminal() const;

  const std::vector<CellStatus>& statuses() const { return statuses_; }
  const std::set<std::string>& quarantined_algorithms() const {
    return quarantined_algorithms_;
  }

 private:
  const std::vector<GridCell>& grid_;
  std::vector<CellStatus> statuses_;
  std::set<std::string> quarantined_algorithms_;
};

/// The durable work queue over one campaign journal, as seen by one worker.
/// Every operation is one atomic read-scan-append cycle under the file lock;
/// the object itself holds no journal state between calls, so any number of
/// workers (in any mix of threads and processes) can share the file.
class WorkerJournal {
 public:
  /// `expected_header` is the full campaign header line ("# <fingerprint>
  /// data=<hex>"); `grid` is the dataset-major cell grid with lane
  /// prerequisites; `owner` names this worker in lease rows.
  WorkerJournal(std::string path, std::string expected_header,
                std::vector<GridCell> grid, std::string owner,
                LeaseOptions options);

  /// Creates the journal with the expected header if missing; accepts a
  /// matching header; rejects a NEWER-versioned header with an actionable
  /// error; rotates any other mismatched journal to `<path>.stale` exactly
  /// like the single-process campaign.
  Status EnsureHeader();

  /// Outcome of one Acquire scan.
  struct Acquired {
    /// Leased cell, or kNoCell when nothing was acquirable.
    size_t index = kNoCell;
    /// The lease replaced an expired one from another owner.
    bool stolen = false;
    /// Every grid cell has a terminal row: the campaign is complete.
    bool all_terminal = false;
    /// Suggested wait before the next Acquire when index == kNoCell.
    double retry_after_ms = 0.0;
    /// Snapshot of the journal at claim time (breaker replay input).
    std::vector<CellStatus> statuses;
    std::set<std::string> quarantined_algorithms;
  };

  /// Scans the journal and claims the lowest acquirable cell by appending a
  /// lease row, all under the file lock.
  Result<Acquired> Acquire();

  /// Extends this owner's lease on `index`. kFailedPrecondition when the
  /// lease now belongs to another owner (the cell was stolen — the caller's
  /// result must be discarded) or the cell is already terminal.
  Status Renew(size_t index);

  /// Publishes a `@quarantine` row for `algorithm` (once; repeat calls while
  /// a row already exists are no-ops).
  Status PublishQuarantine(const std::string& algorithm);

  /// Appends the terminal cell row (pre-formatted, sentinel included) for
  /// `index`. The row is flushed before the lock is released.
  Status Complete(size_t index, const std::string& cell_row);

  const std::vector<GridCell>& grid() const { return grid_; }
  const LeaseOptions& options() const { return options_; }
  const std::string& owner() const { return owner_; }
  const std::string& path() const { return path_; }

 private:
  /// Reads the journal into a LeaseTable; caller holds the file lock.
  Result<LeaseTable> ScanLocked() const;
  /// Appends `line` + '\n', starting on a fresh line if a torn write left
  /// the file without a trailing newline; flushes. Caller holds the lock.
  Status AppendLocked(const std::string& line) const;

  const std::string path_;
  const std::string lock_path_;
  const std::string expected_header_;
  const std::string owner_;
  const std::vector<GridCell> grid_;
  const LeaseOptions options_;
};

/// Background heartbeat: renews the lease on one cell every heartbeat_ms
/// while the owning worker computes it (the fabric's analogue of the
/// supervisor's watchdog thread — same lazily-joined cadence loop, opposite
/// purpose: it proves liveness instead of policing it). Stops renewing and
/// raises lease_lost() if the cell was stolen; the worker must then discard
/// its result — the thief's re-run is the row of record.
class LeaseKeeper {
 public:
  LeaseKeeper(WorkerJournal* journal, size_t cell_index);
  ~LeaseKeeper();

  LeaseKeeper(const LeaseKeeper&) = delete;
  LeaseKeeper& operator=(const LeaseKeeper&) = delete;

  bool lease_lost() const { return lost_.load(std::memory_order_relaxed); }

 private:
  void Loop();

  WorkerJournal* const journal_;
  const size_t cell_index_;
  std::atomic<bool> lost_{false};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace etsc::fabric

#endif  // ETSC_CORE_FABRIC_H_
