#include "core/serving.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "core/counters.h"
#include "core/env.h"
#include "core/fault.h"
#include "core/log.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "core/supervisor.h"

namespace etsc {

namespace {

// WAL grammar (DESIGN.md sec 16). One sentinel-terminated row per event, the
// fabric journal's torn-row discipline: a row without the sentinel was cut by
// a crash and is skipped, never half-parsed.
//   O,<id>,<model>,#end        session opened against <model>
//   I,<id>,<v0>,<v1>,...,#end  one observation accepted (%.17g round-trips)
//   F,<id>,#end                explicit Finish claimed the session
//   D,<id>,<n>,#end            deadline force-finish at <n> observed values
//   C,<id>,#end                session removed (Close / eviction / shed)
constexpr int kWalVersion = 1;
constexpr const char kWalHeaderPrefix[] = "# etscwal v";
constexpr const char kWalSentinel[] = ",#end";

Counter& Opened() {
  static Counter& c =
      MetricRegistry::Global().counter("serving.sessions_opened");
  return c;
}
Counter& Rejected() {
  static Counter& c =
      MetricRegistry::Global().counter("serving.sessions_rejected");
  return c;
}
Counter& Closed() {
  static Counter& c =
      MetricRegistry::Global().counter("serving.sessions_closed");
  return c;
}
Counter& Evicted() {
  static Counter& c =
      MetricRegistry::Global().counter("serving.sessions_evicted");
  return c;
}
Counter& Ingested() {
  static Counter& c =
      MetricRegistry::Global().counter("serving.observations_ingested");
  return c;
}
Counter& IngestRejected() {
  static Counter& c =
      MetricRegistry::Global().counter("serving.ingest_rejected");
  return c;
}
Counter& Batches() {
  static Counter& c = MetricRegistry::Global().counter("serving.batches");
  return c;
}
Counter& BatchDecisions() {
  static Counter& c = MetricRegistry::Global().counter("serving.decisions");
  return c;
}
Counter& DeadlineForced() {
  static Counter& c =
      MetricRegistry::Global().counter("serving.deadline_forced");
  return c;
}
Counter& ShedDecidedCount() {
  static Counter& c = MetricRegistry::Global().counter("serving.shed_decided");
  return c;
}
Counter& ShedIdleCount() {
  static Counter& c = MetricRegistry::Global().counter("serving.shed_idle");
  return c;
}
Counter& ShedRefusals() {
  static Counter& c = MetricRegistry::Global().counter("serving.shed_refusals");
  return c;
}
Counter& WalAppends() {
  static Counter& c = MetricRegistry::Global().counter("serving.wal_appends");
  return c;
}
Counter& WalRecoveredSessions() {
  static Counter& c =
      MetricRegistry::Global().counter("serving.wal_recovered_sessions");
  return c;
}
Counter& WalReplayedObservations() {
  static Counter& c =
      MetricRegistry::Global().counter("serving.wal_replayed_observations");
  return c;
}
Counter& WalTornRows() {
  static Counter& c = MetricRegistry::Global().counter("serving.wal_torn_rows");
  return c;
}
Gauge& LiveSessions() {
  static Gauge& g = MetricRegistry::Global().gauge("serving.live_sessions");
  return g;
}
Histogram& DecisionSeconds() {
  static Histogram& h =
      MetricRegistry::Global().histogram("serving.decision_seconds");
  return h;
}
Histogram& BatchSeconds() {
  static Histogram& h =
      MetricRegistry::Global().histogram("serving.batch_seconds");
  return h;
}
Histogram& ShedSeconds() {
  static Histogram& h =
      MetricRegistry::Global().histogram("serving.shed_seconds");
  return h;
}
Histogram& WalReplaySeconds() {
  static Histogram& h =
      MetricRegistry::Global().histogram("serving.wal_replay_seconds");
  return h;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

bool EndsWith(const std::string& text, const char* suffix) {
  const size_t n = std::strlen(suffix);
  return text.size() >= n && text.compare(text.size() - n, n, suffix) == 0;
}

std::vector<std::string> SplitRow(const std::string& body) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    const size_t comma = body.find(',', start);
    if (comma == std::string::npos) {
      fields.push_back(body.substr(start));
      return fields;
    }
    fields.push_back(body.substr(start, comma - start));
    start = comma + 1;
  }
}

bool ParseU64(const std::string& field, uint64_t* out) {
  if (field.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(field.c_str(), &end, 10);
  if (end != field.c_str() + field.size() || errno == ERANGE) return false;
  *out = static_cast<uint64_t>(parsed);
  return true;
}

bool ParseFiniteDouble(const std::string& field, double* out) {
  if (field.empty()) return false;
  char* end = nullptr;
  const double parsed = std::strtod(field.c_str(), &end);
  if (end != field.c_str() + field.size() || !std::isfinite(parsed)) {
    return false;
  }
  *out = parsed;
  return true;
}

/// Header line → WAL version; error when the line is not a WAL header at all
/// (Recover must not mistake an arbitrary file for a journal).
Result<int> ParseWalHeader(const std::string& line) {
  const size_t n = std::strlen(kWalHeaderPrefix);
  if (line.compare(0, n, kWalHeaderPrefix) != 0) {
    return Status::FailedPrecondition(
        "Recover: not a serving WAL (header '" + line + "')");
  }
  uint64_t version = 0;
  if (!ParseU64(line.substr(n), &version) || version == 0) {
    return Status::FailedPrecondition(
        "Recover: unparseable WAL header '" + line + "'");
  }
  return static_cast<int>(version);
}

std::string WalHeaderLine() {
  return std::string(kWalHeaderPrefix) + std::to_string(kWalVersion);
}

}  // namespace

std::optional<double> RetryAfterMs(const Status& status) {
  static constexpr char kToken[] = "retry_after_ms=";
  const std::string& message = status.message();
  const size_t pos = message.find(kToken);
  if (pos == std::string::npos) return std::nullopt;
  const char* start = message.c_str() + pos + std::strlen(kToken);
  char* end = nullptr;
  const double parsed = std::strtod(start, &end);
  if (end == start || !std::isfinite(parsed) || parsed < 0.0) {
    return std::nullopt;
  }
  return parsed;
}

ServingOptions ServingOptions::FromEnv() {
  ServingOptions options;
  options.max_sessions = static_cast<size_t>(
      env::NumberOr("serving", "ETSC_SERVE_MAX_SESSIONS",
                    static_cast<double>(options.max_sessions), 1.0, 1e9));
  const double budget_ms =
      env::NumberOr("serving", "ETSC_SERVE_BUDGET_MS", 0.0, 0.0, 1e12);
  if (budget_ms > 0.0) options.session_budget_seconds = budget_ms / 1e3;
  const double idle_ms =
      env::NumberOr("serving", "ETSC_SERVE_IDLE_MS", 0.0, 0.0, 1e12);
  if (idle_ms > 0.0) options.idle_timeout_seconds = idle_ms / 1e3;
  options.soft_watermark = env::NumberOr(
      "serving", "ETSC_SERVE_SOFT_WATERMARK", options.soft_watermark, 0.01,
      1.0);
  const double shed_idle_ms =
      env::NumberOr("serving", "ETSC_SERVE_SHED_IDLE_MS", 0.0, 0.0, 1e12);
  if (shed_idle_ms > 0.0) options.shed_min_idle_seconds = shed_idle_ms / 1e3;
  options.retry_after_ms = env::NumberOr(
      "serving", "ETSC_SERVE_RETRY_MS", options.retry_after_ms, 1.0, 1e9);
  options.watchdog_grace =
      env::NumberOr("serving", "ETSC_SERVE_WATCHDOG_GRACE",
                    options.watchdog_grace, 0.0, 1e6);
  options.wal_path = env::StringOr("ETSC_SERVE_WAL", "");
  return options;
}

ServingEngine::ServingEngine(ServingOptions options)
    : options_(std::move(options)), wal_path_(options_.wal_path) {}

Status ServingEngine::RegisterModel(
    const std::string& name, std::shared_ptr<const EarlyClassifier> model,
    size_t num_variables) {
  if (model == nullptr) {
    return Status::InvalidArgument("RegisterModel: null model for " + name);
  }
  if (num_variables == 0) {
    return Status::InvalidArgument(
        "RegisterModel: zero-variable model " + name);
  }
  if (name.empty()) {
    return Status::InvalidArgument("RegisterModel: empty model name");
  }
  for (const char c : name) {
    // Model names are WAL row fields; commas and control characters would
    // corrupt the journal grammar.
    if (c == ',' || static_cast<unsigned char>(c) < 0x20) {
      return Status::InvalidArgument(
          "RegisterModel: model name must be WAL-safe "
          "(no commas or control characters): " +
          name);
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (model_index_.count(name) != 0) {
    return Status::InvalidArgument("RegisterModel: duplicate model " + name);
  }
  model_index_[name] = models_.size();
  models_.push_back(ModelEntry{name, std::move(model), num_variables});
  return Status::OK();
}

Status ServingEngine::WalArmLocked(bool keep_existing) {
  if (wal_armed_) return Status::OK();
  bool fresh = true;
  bool needs_newline = false;
  {
    std::ifstream probe(wal_path_, std::ios::binary);
    if (probe) {
      probe.seekg(0, std::ios::end);
      if (probe.tellg() > 0) {
        fresh = false;
        probe.seekg(-1, std::ios::end);
        char last = '\n';
        probe.get(last);
        needs_newline = last != '\n';
      }
    }
  }
  if (!fresh && !keep_existing) {
    // An existing file this engine never Recover()ed is some other run's
    // history: rotate it aside (the journal's .stale discipline) rather than
    // interleave two histories in one file.
    const std::string stale = wal_path_ + ".stale";
    Logf(LogLevel::kWarn, "serving",
         "rotating un-recovered WAL %s to %s before journaling",
         wal_path_.c_str(), stale.c_str());
    std::remove(stale.c_str());
    if (std::rename(wal_path_.c_str(), stale.c_str()) != 0) {
      return Status::IOError("cannot rotate stale serving WAL " + wal_path_);
    }
    fresh = true;
    needs_newline = false;
  }
  wal_out_.open(wal_path_, std::ios::binary | std::ios::app);
  if (!wal_out_) {
    return Status::IOError("cannot open serving WAL " + wal_path_);
  }
  // Fresh-line discipline: terminate any torn tail fragment so the next row
  // starts on its own line (the fragment stays sentinel-less and is skipped
  // by every future Recover).
  if (needs_newline) wal_out_ << '\n';
  if (fresh) wal_out_ << WalHeaderLine() << '\n';
  wal_out_.flush();
  if (!wal_out_) {
    return Status::IOError("cannot write serving WAL header " + wal_path_);
  }
  wal_armed_ = true;
  return Status::OK();
}

Status ServingEngine::WalAppend(const std::string& row) {
  if (wal_path_.empty()) return Status::OK();
  std::lock_guard<std::mutex> lock(wal_mu_);
  ETSC_RETURN_NOT_OK(WalArmLocked(/*keep_existing=*/false));
  wal_out_ << row << kWalSentinel << '\n';
  wal_out_.flush();
  if (!wal_out_) {
    return Status::IOError("serving WAL append failed: " + wal_path_);
  }
  ++wal_appends_;
  if (MetricsEnabled()) WalAppends().Add(1);
  return Status::OK();
}

Result<WalRecovery> ServingEngine::Recover(const std::string& path) {
  const auto started = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(mu_);
  if (!sessions_.empty()) {
    return Status::FailedPrecondition(
        "Recover: engine already holds sessions; recover into a fresh engine");
  }
  {
    std::lock_guard<std::mutex> wal_lock(wal_mu_);
    if (wal_armed_) {
      return Status::FailedPrecondition(
          "Recover: WAL already armed; recover before any journaled activity");
    }
    wal_path_ = path;
  }

  WalRecovery rec;
  std::vector<std::string> lines;
  {
    std::ifstream in(path, std::ios::binary);
    std::string line;
    while (in && std::getline(in, line)) lines.push_back(line);
  }
  if (!lines.empty()) {
    ETSC_ASSIGN_OR_RETURN(const int version, ParseWalHeader(lines[0]));
    if (version > kWalVersion) {
      return Status::FailedPrecondition(
          "Recover: WAL " + path + " is format v" + std::to_string(version) +
          " but this build reads up to v" + std::to_string(kWalVersion) +
          "; upgrade the binary before recovering");
    }
  }
  // Arm the appender on the same file BEFORE replaying: recovery continues
  // the history, it never rotates it, and any row the replay itself produces
  // (a deadline force) lands after everything it replayed.
  {
    std::lock_guard<std::mutex> wal_lock(wal_mu_);
    ETSC_RETURN_NOT_OK(WalArmLocked(/*keep_existing=*/true));
  }

  // A malformed sentineled row poisons the rebuild; the engine is cleared so
  // a caller that ignores the error cannot serve from half a history.
  const auto fail = [&](Status error) -> Status {
    sessions_.clear();
    next_id_ = 1;
    return error;
  };

  SessionId max_id = 0;
  for (size_t i = 1; i < lines.size(); ++i) {
    const std::string& raw = lines[i];
    if (raw.empty()) continue;
    if (!EndsWith(raw, kWalSentinel)) {
      // Torn by a crash mid-append: by the append discipline only the final
      // row can be torn, and its event was never acknowledged — skip it.
      ++rec.torn_rows;
      continue;
    }
    const std::string line_ref = path + ":" + std::to_string(i + 1);
    const std::vector<std::string> f =
        SplitRow(raw.substr(0, raw.size() - std::strlen(kWalSentinel)));
    uint64_t id = 0;
    if (f.size() < 2 || f[0].size() != 1 || !ParseU64(f[1], &id) || id == 0) {
      return fail(Status::DataLoss("Recover: malformed WAL row at " + line_ref));
    }
    switch (f[0][0]) {
      case 'O': {
        if (f.size() != 3) {
          return fail(
              Status::DataLoss("Recover: malformed open row at " + line_ref));
        }
        const auto model_it = model_index_.find(f[2]);
        if (model_it == model_index_.end()) {
          return fail(Status::FailedPrecondition(
              "Recover: WAL row at " + line_ref + " needs model '" + f[2] +
              "', which is not registered"));
        }
        if (sessions_.count(id) != 0) {
          return fail(
              Status::DataLoss("Recover: duplicate session open at " + line_ref));
        }
        const ModelEntry& entry = models_[model_it->second];
        sessions_.emplace(
            id, std::make_unique<Session>(
                    id, model_it->second, *entry.model, entry.num_variables,
                    options_.expected_length,
                    Deadline::After(options_.session_budget_seconds)));
        max_id = std::max(max_id, id);
        break;
      }
      case 'I': {
        const auto it = sessions_.find(id);
        if (it == sessions_.end()) {
          return fail(Status::DataLoss(
              "Recover: observation for unknown session at " + line_ref));
        }
        Session& session = *it->second;
        const size_t arity = models_[session.model_index].num_variables;
        if (f.size() != 2 + arity) {
          return fail(Status::DataLoss(
              "Recover: observation arity mismatch at " + line_ref));
        }
        std::vector<double> values(arity);
        for (size_t v = 0; v < arity; ++v) {
          if (!ParseFiniteDouble(f[2 + v], &values[v])) {
            return fail(Status::DataLoss(
                "Recover: unparseable observation value at " + line_ref));
          }
        }
        session.pending.push_back(std::move(values));
        ++session.ingested;
        ++rec.observations_replayed;
        break;
      }
      case 'F':
      case 'D': {
        const auto it = sessions_.find(id);
        if (it == sessions_.end()) {
          return fail(Status::DataLoss(
              "Recover: finish for unknown session at " + line_ref));
        }
        Session& session = *it->second;
        // How much of the queue the original finish consumed: an explicit
        // Finish claimed everything journaled before its row; a deadline
        // force ran with exactly <n> values observed — observations that
        // raced past the force stay queued, exactly as they did live.
        size_t stop_at = std::numeric_limits<size_t>::max();
        if (f[0][0] == 'D') {
          uint64_t n = 0;
          if (f.size() != 3 || !ParseU64(f[2], &n)) {
            return fail(Status::DataLoss(
                "Recover: malformed force-finish row at " + line_ref));
          }
          stop_at = static_cast<size_t>(n);
        } else if (f.size() != 2) {
          return fail(
              Status::DataLoss("Recover: malformed finish row at " + line_ref));
        }
        size_t used = 0;
        while (used < session.pending.size() &&
               session.stream.observed() < stop_at) {
          auto out = session.stream.Push(session.pending[used]);
          ++used;
          if (!out.ok()) {
            if (session.error.ok()) session.error = out.status();
            break;
          }
        }
        if (f[0][0] == 'F') {
          // Live Finish flushed the whole claim, sticky discards included.
          used = session.pending.size();
        }
        session.pending.erase(session.pending.begin(),
                              session.pending.begin() + used);
        const bool had_decision = session.stream.decision().has_value();
        if (session.error.ok() && session.stream.observed() > 0) {
          auto finished = session.stream.Finish();
          if (finished.ok() && !had_decision && f[0][0] == 'D') {
            session.deadline_forced = true;
          }
        }
        ++rec.finishes_replayed;
        break;
      }
      case 'C': {
        const auto it = sessions_.find(id);
        if (it == sessions_.end()) {
          return fail(Status::DataLoss(
              "Recover: close for unknown session at " + line_ref));
        }
        sessions_.erase(it);
        ++rec.sessions_removed;
        break;
      }
      default:
        return fail(
            Status::DataLoss("Recover: unknown WAL row kind at " + line_ref));
    }
  }
  next_id_ = std::max(next_id_, max_id + 1);
  rec.sessions_recovered = sessions_.size();
  stats_.live_sessions = sessions_.size();
  stats_.peak_sessions = std::max(stats_.peak_sessions, sessions_.size());

  // The queued observations now run through the ordinary dispatch path — the
  // same claim/fan-out/replay machinery as an uncrashed run, which is what
  // makes post-recovery decisions bit-identical to one.
  lock.unlock();
  ETSC_ASSIGN_OR_RETURN(const size_t batch_decisions, DispatchBatch());
  (void)batch_decisions;
  {
    std::lock_guard<std::mutex> relock(mu_);
    for (const auto& [id, session] : sessions_) {
      if (session->stream.decision().has_value()) ++rec.decisions_recovered;
    }
  }
  rec.replay_seconds = SecondsSince(started);
  if (MetricsEnabled()) {
    WalRecoveredSessions().Add(rec.sessions_recovered);
    WalReplayedObservations().Add(rec.observations_replayed);
    WalTornRows().Add(rec.torn_rows);
    WalReplaySeconds().Record(rec.replay_seconds);
    LiveSessions().Set(static_cast<int64_t>(rec.sessions_recovered));
  }
  Logf(LogLevel::kInfo, "serving",
       "recovered %zu sessions (%zu observations, %zu finishes, %zu removed, "
       "%zu torn rows skipped) from %s in %.3fs",
       rec.sessions_recovered, rec.observations_replayed,
       rec.finishes_replayed, rec.sessions_removed, rec.torn_rows,
       path.c_str(), rec.replay_seconds);
  return rec;
}

Result<SessionId> ServingEngine::Open(const std::string& model_name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = model_index_.find(model_name);
  if (it == model_index_.end()) {
    return Status::NotFound("Open: unregistered model " + model_name);
  }
  if (sessions_.size() >= options_.max_sessions) {
    // Hard watermark: shed whatever is reclaimable; refuse only if the table
    // is still full — with a machine-readable back-off so clients degrade to
    // delay instead of a retry storm.
    ShedLocked();
    if (sessions_.size() >= options_.max_sessions) {
      ++stats_.rejected;
      ++stats_.shed_refusals;
      if (MetricsEnabled()) {
        Rejected().Add(1);
        ShedRefusals().Add(1);
      }
      char hint[48];
      std::snprintf(hint, sizeof(hint), "; retry_after_ms=%g",
                    options_.retry_after_ms);
      return Status::Unavailable(
          "Open: session table full (" +
          std::to_string(options_.max_sessions) +
          " sessions); evict or raise ETSC_SERVE_MAX_SESSIONS" + hint);
    }
  } else {
    // Soft watermark: shed opportunistically so the hard refusal stays rare.
    const double frac =
        std::min(std::max(options_.soft_watermark, 0.0), 1.0);
    const auto soft_limit = static_cast<size_t>(
        std::ceil(frac * static_cast<double>(options_.max_sessions)));
    if (sessions_.size() >= soft_limit) ShedLocked();
  }
  const ModelEntry& entry = models_[it->second];
  const SessionId id = next_id_;
  // Write-ahead: if the journal refuses the row, the open never happened
  // (and the id was not consumed).
  ETSC_RETURN_NOT_OK(
      WalAppend("O," + std::to_string(id) + "," + entry.name));
  ++next_id_;
  sessions_.emplace(
      id, std::make_unique<Session>(
              id, it->second, *entry.model, entry.num_variables,
              options_.expected_length,
              Deadline::After(options_.session_budget_seconds)));
  ++stats_.opened;
  stats_.live_sessions = sessions_.size();
  stats_.peak_sessions = std::max(stats_.peak_sessions, sessions_.size());
  if (MetricsEnabled()) {
    Opened().Add(1);
    LiveSessions().Set(static_cast<int64_t>(sessions_.size()));
  }
  return id;
}

Status ServingEngine::Ingest(SessionId id, const std::vector<double>& values) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound("Ingest: no session " + std::to_string(id));
  }
  Session& session = *it->second;
  const size_t arity = models_[session.model_index].num_variables;
  // Mirrors StreamingSession's arity-before-everything rule: a malformed
  // observation is reported here and can never reach a buffer.
  if (values.size() != arity) {
    ++stats_.ingest_rejected;
    if (MetricsEnabled()) IngestRejected().Add(1);
    return Status::InvalidArgument(
        "Ingest: observation has " + std::to_string(values.size()) +
        " values, expected " + std::to_string(arity));
  }
  for (const double v : values) {
    if (!std::isfinite(v)) {
      ++stats_.ingest_rejected;
      if (MetricsEnabled()) IngestRejected().Add(1);
      return Status::InvalidArgument(
          "Ingest: non-finite value in observation for session " +
          std::to_string(id) +
          " (repair the feed upstream, e.g. Dataset::FillMissingValues)");
    }
  }
  if (!wal_path_.empty()) {
    std::string row = "I," + std::to_string(id);
    char buf[40];
    for (const double v : values) {
      // 17 significant digits round-trip every finite double exactly.
      std::snprintf(buf, sizeof(buf), ",%.17g", v);
      row += buf;
    }
    ETSC_RETURN_NOT_OK(WalAppend(row));
  }
  session.pending.push_back(values);
  session.last_activity = std::chrono::steady_clock::now();
  ++session.ingested;
  ++stats_.ingested;
  if (MetricsEnabled()) Ingested().Add(1);
  // Chaos drill: the die-at-ingest injector fires after the observation is
  // journaled and applied, so the crash it models loses nothing durable.
  ServeFaultTick(ServeFaultPoint::kIngest);
  return Status::OK();
}

void ServingEngine::RunSession(Session* session) {
  // With the watchdog enabled, the whole per-session replay runs under a
  // supervision watch: a model that ignores its budget is cooperatively
  // cancelled (CancelToken → kDeadlineExceeded) instead of wedging the pool.
  std::optional<Watchdog::Watch> watch;
  if (options_.watchdog_grace > 0.0) {
    watch.emplace("serving session " + std::to_string(session->id),
                  options_.session_budget_seconds, options_.watchdog_grace);
  }
  // Replays the claimed observations in arrival order through the session's
  // own StreamingSession — the single-caller semantics, verbatim, which is
  // what makes batched decisions bit-identical to the streaming path.
  const bool had_decision = session->stream.decision().has_value();
  for (const std::vector<double>& values : session->taking) {
    const auto push_started = std::chrono::steady_clock::now();
    auto out = session->stream.Push(values);
    if (!out.ok()) {
      if (session->error.ok()) session->error = out.status();
      break;
    }
    if (out->has_value() && !had_decision && !session->decided_in_batch) {
      session->decided_in_batch = true;
      if (MetricsEnabled()) DecisionSeconds().Record(SecondsSince(push_started));
    }
  }
  session->taking.clear();
  // Deadline enforcement: an undecided session past its budget answers NOW
  // with whatever it has seen — a forced Finish on the observed prefix.
  if (!session->stream.decision().has_value() && session->error.ok() &&
      session->stream.observed() > 0 && session->deadline.Expired()) {
    // Write-ahead, with the observed count: observations racing into the
    // fresh queue while we force may journal before this row, and the count
    // is what keeps the replayed force at the same prefix. If the journal
    // refuses, the force is skipped and retried at the next dispatch.
    const Status wal =
        WalAppend("D," + std::to_string(session->id) + "," +
                  std::to_string(session->stream.observed()));
    if (!wal.ok()) {
      Logf(LogLevel::kWarn, "serving",
           "deferring deadline force of session %llu: %s",
           static_cast<unsigned long long>(session->id),
           wal.message().c_str());
      return;
    }
    const auto finish_started = std::chrono::steady_clock::now();
    auto forced = session->stream.Finish();
    if (!forced.ok()) {
      if (session->error.ok()) session->error = forced.status();
    } else if (!had_decision) {
      session->deadline_forced = true;
      session->decided_in_batch = true;
      if (MetricsEnabled()) {
        DecisionSeconds().Record(SecondsSince(finish_started));
        DeadlineForced().Add(1);
      }
    }
  }
}

Result<size_t> ServingEngine::DispatchBatch() {
  const auto batch_started = std::chrono::steady_clock::now();
  // Claim phase: move each session's queue into its `taking` slot and mark it
  // in flight, so concurrent Ingest keeps appending to a fresh queue and
  // concurrent accessors see "busy" instead of racing the pool tasks.
  std::vector<Session*> work;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, session] : sessions_) {
      if (session->in_flight) continue;  // claimed by an overlapping batch
      const bool due = !session->pending.empty() ||
                       (!session->stream.decision().has_value() &&
                        session->error.ok() && session->stream.observed() > 0 &&
                        session->deadline.Expired());
      if (!due) continue;
      session->taking = std::exchange(session->pending, {});
      session->decided_in_batch = false;
      session->in_flight = true;
      work.push_back(session.get());
    }
    // Model-major order: sessions sharing a model land in the same grain-run
    // of pool tasks, so one task stays on one model's working set.
    std::stable_sort(work.begin(), work.end(),
                     [](const Session* a, const Session* b) {
                       return a->model_index < b->model_index;
                     });
  }

  // Chaos drill: "killed mid-dispatch" — queues claimed, nothing applied.
  ServeFaultTick(ServeFaultPoint::kDispatch);

  ParallelFor(
      work.size(), [&](size_t i) { RunSession(work[i]); },
      std::max<size_t>(1, options_.batch_grain));

  size_t decisions = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Session* session : work) {
      session->in_flight = false;
      if (session->decided_in_batch) ++decisions;
    }
    stats_.decisions += decisions;
    stats_.deadline_forced += static_cast<size_t>(std::count_if(
        work.begin(), work.end(), [](const Session* s) {
          return s->decided_in_batch && s->deadline_forced;
        }));
    ++stats_.batches;
  }
  if (MetricsEnabled()) {
    Batches().Add(1);
    BatchDecisions().Add(decisions);
    BatchSeconds().Record(SecondsSince(batch_started));
  }
  return decisions;
}

Result<EarlyPrediction> ServingEngine::Finish(SessionId id) {
  // Claim the session exactly like a batch would, then run it inline.
  Session* session = nullptr;
  bool had_decision = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      return Status::NotFound("Finish: no session " + std::to_string(id));
    }
    session = it->second.get();
    if (session->in_flight) {
      return Status::Unavailable("Finish: session " + std::to_string(id) +
                                 " is being dispatched");
    }
    // Journaled at claim time, under the table lock: every observation row
    // before this F row is exactly the claim the finish flushes.
    ETSC_RETURN_NOT_OK(WalAppend("F," + std::to_string(id)));
    had_decision = session->stream.decision().has_value();
    session->taking = std::exchange(session->pending, {});
    session->decided_in_batch = false;
    session->in_flight = true;
  }
  RunSession(session);
  Result<EarlyPrediction> result = [&]() -> Result<EarlyPrediction> {
    if (!session->error.ok()) return session->error;
    return session->stream.Finish();
  }();
  {
    std::lock_guard<std::mutex> lock(mu_);
    session->in_flight = false;
    if (result.ok() && !had_decision) {
      // A fresh decision, whether the queue flush or the Finish made it.
      ++stats_.decisions;
      if (MetricsEnabled()) BatchDecisions().Add(1);
    }
  }
  return result;
}

Result<SessionInfo> ServingEngine::Info(SessionId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound("Info: no session " + std::to_string(id));
  }
  const Session& session = *it->second;
  if (session.in_flight) {
    return Status::Unavailable("Info: session " + std::to_string(id) +
                               " is being dispatched");
  }
  if (!session.error.ok()) return session.error;
  SessionInfo info;
  info.id = session.id;
  info.model = models_[session.model_index].name;
  info.observed = session.stream.observed();
  info.pending = session.pending.size();
  info.ingested = session.ingested;
  info.decision = session.stream.decision();
  info.meta = session.stream.decision_meta();
  info.deadline_forced = session.deadline_forced;
  return info;
}

Status ServingEngine::Close(SessionId id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound("Close: no session " + std::to_string(id));
  }
  if (it->second->in_flight) {
    return Status::Unavailable("Close: session " + std::to_string(id) +
                               " is being dispatched");
  }
  ETSC_RETURN_NOT_OK(WalAppend("C," + std::to_string(id)));
  sessions_.erase(it);
  ++stats_.closed;
  stats_.live_sessions = sessions_.size();
  if (MetricsEnabled()) {
    Closed().Add(1);
    LiveSessions().Set(static_cast<int64_t>(sessions_.size()));
  }
  return Status::OK();
}

bool ServingEngine::RemoveSessionLocked(
    std::map<SessionId, std::unique_ptr<Session>>::iterator it) {
  // Write-ahead: a removal the journal refused did not happen — the session
  // stays (and stays reclaimable by a later pass).
  const Status wal = WalAppend("C," + std::to_string(it->first));
  if (!wal.ok()) {
    Logf(LogLevel::kWarn, "serving",
         "keeping session %llu: WAL close row failed (%s)",
         static_cast<unsigned long long>(it->first), wal.message().c_str());
    return false;
  }
  sessions_.erase(it);
  return true;
}

size_t ServingEngine::EvictDecidedLocked(bool shed) {
  size_t evicted = 0;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    Session& session = *it->second;
    const bool reclaimable =
        !session.in_flight && session.pending.empty() &&
        (session.stream.decision().has_value() || !session.error.ok());
    if (!reclaimable) {
      ++it;
      continue;
    }
    const auto cur = it++;
    if (RemoveSessionLocked(cur)) ++evicted;
  }
  stats_.evicted += evicted;
  if (shed) stats_.shed_decided += evicted;
  stats_.live_sessions = sessions_.size();
  if (MetricsEnabled() && evicted > 0) {
    Evicted().Add(evicted);
    if (shed) ShedDecidedCount().Add(evicted);
    LiveSessions().Set(static_cast<int64_t>(sessions_.size()));
  }
  return evicted;
}

size_t ServingEngine::ShedLocked() {
  const auto started = std::chrono::steady_clock::now();
  // Tier 1: decided sessions have delivered their answer — reclaim them all.
  size_t shed = EvictDecidedLocked(/*shed=*/true);
  // Tier 2: if that freed nothing and the policy allows it, shed the single
  // oldest-idle undecided session past the threshold — one admission's worth
  // of room, taken from the series least likely to come back.
  if (shed == 0 && std::isfinite(options_.shed_min_idle_seconds)) {
    auto oldest = sessions_.end();
    double oldest_idle = options_.shed_min_idle_seconds;
    for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
      Session& session = *it->second;
      if (session.in_flight || !session.pending.empty() ||
          session.stream.decision().has_value() || !session.error.ok()) {
        continue;
      }
      const double idle = SecondsSince(session.last_activity);
      if (idle >= oldest_idle) {
        oldest_idle = idle;
        oldest = it;
      }
    }
    if (oldest != sessions_.end() && RemoveSessionLocked(oldest)) {
      shed = 1;
      ++stats_.shed_idle;
      ++stats_.evicted;
      stats_.live_sessions = sessions_.size();
      if (MetricsEnabled()) {
        ShedIdleCount().Add(1);
        Evicted().Add(1);
        LiveSessions().Set(static_cast<int64_t>(sessions_.size()));
      }
    }
  }
  if (MetricsEnabled()) ShedSeconds().Record(SecondsSince(started));
  return shed;
}

size_t ServingEngine::EvictDecided() {
  std::lock_guard<std::mutex> lock(mu_);
  return EvictDecidedLocked(/*shed=*/false);
}

size_t ServingEngine::EvictIdle(double idle_seconds) {
  if (idle_seconds < 0.0) idle_seconds = options_.idle_timeout_seconds;
  std::lock_guard<std::mutex> lock(mu_);
  size_t evicted = 0;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    Session& session = *it->second;
    const bool idle = !session.in_flight && session.pending.empty() &&
                      !session.stream.decision().has_value() &&
                      SecondsSince(session.last_activity) > idle_seconds;
    if (!idle) {
      ++it;
      continue;
    }
    const auto cur = it++;
    if (RemoveSessionLocked(cur)) ++evicted;
  }
  stats_.evicted += evicted;
  stats_.live_sessions = sessions_.size();
  if (MetricsEnabled() && evicted > 0) {
    Evicted().Add(evicted);
    LiveSessions().Set(static_cast<int64_t>(sessions_.size()));
  }
  return evicted;
}

ServingStats ServingEngine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServingStats out = stats_;
  {
    std::lock_guard<std::mutex> wal_lock(wal_mu_);
    out.wal_appends = wal_appends_;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Replayable ingest traces
// ---------------------------------------------------------------------------

std::vector<IngestEvent> BuildReplayTrace(const Dataset& data,
                                          size_t num_sessions, uint64_t seed) {
  std::vector<IngestEvent> trace;
  if (data.empty() || num_sessions == 0) return trace;
  const size_t num_variables = data.NumVariables();
  size_t max_length = 0;
  std::vector<const TimeSeries*> streams(num_sessions);
  for (size_t s = 0; s < num_sessions; ++s) {
    streams[s] = &data.instance(s % data.size());
    max_length = std::max(max_length, streams[s]->length());
  }
  Rng rng(seed);
  std::vector<size_t> order(num_sessions);
  for (size_t s = 0; s < num_sessions; ++s) order[s] = s;
  for (size_t t = 0; t < max_length; ++t) {
    // Fresh shuffle per round: arrival order within an observation period is
    // traffic noise, and the engine's decisions must not depend on it.
    rng.Shuffle(&order);
    for (const size_t s : order) {
      const TimeSeries& series = *streams[s];
      if (t >= series.length()) continue;
      IngestEvent event;
      event.session = s;
      event.values.resize(num_variables);
      for (size_t v = 0; v < num_variables; ++v) {
        event.values[v] = series.at(v, t);
      }
      trace.push_back(std::move(event));
    }
  }
  return trace;
}

std::vector<ReplayOutcome> ReplaySequential(
    const EarlyClassifier& model, size_t num_variables, size_t num_sessions,
    const std::vector<IngestEvent>& trace) {
  std::vector<std::unique_ptr<StreamingSession>> sessions;
  sessions.reserve(num_sessions);
  for (size_t s = 0; s < num_sessions; ++s) {
    sessions.push_back(
        std::make_unique<StreamingSession>(model, num_variables));
  }
  std::vector<ReplayOutcome> outcomes(num_sessions);
  std::vector<bool> decided(num_sessions, false);
  for (const IngestEvent& event : trace) {
    StreamingSession& session = *sessions[event.session];
    auto out = session.Push(event.values);
    if (!out.ok()) {
      if (!decided[event.session]) {
        outcomes[event.session].failed = true;
        decided[event.session] = true;
      }
      continue;
    }
    if (out->has_value() && !decided[event.session]) {
      const DecisionMeta& meta = *session.decision_meta();
      outcomes[event.session] = {(*out)->label,  (*out)->prefix_length,
                                 false,          false,
                                 meta.halt_step, meta.earliness,
                                 meta.confidence};
      decided[event.session] = true;
    }
  }
  for (size_t s = 0; s < num_sessions; ++s) {
    if (decided[s]) continue;
    auto finished = sessions[s]->Finish();
    if (finished.ok()) {
      const DecisionMeta& meta = *sessions[s]->decision_meta();
      outcomes[s] = {finished->label, finished->prefix_length,
                     true,            false,
                     meta.halt_step,  meta.earliness,
                     meta.confidence};
    } else {
      outcomes[s].failed = true;
    }
  }
  return outcomes;
}

namespace {

/// Shared tail of the engine replays: read every slot's outcome, Finishing
/// the still-undecided ones (end of stream).
std::vector<ReplayOutcome> CollectOutcomes(ServingEngine& engine,
                                           const std::vector<SessionId>& ids) {
  std::vector<ReplayOutcome> outcomes(ids.size());
  for (size_t s = 0; s < ids.size(); ++s) {
    auto info = engine.Info(ids[s]);
    if (info.ok() && info->decision.has_value()) {
      const DecisionMeta& meta = *info->meta;
      outcomes[s] = {info->decision->label, info->decision->prefix_length,
                     info->deadline_forced, false,
                     meta.halt_step,        meta.earliness,
                     meta.confidence};
      continue;
    }
    if (!info.ok() && info.status().code() != StatusCode::kNotFound) {
      // Sticky classifier error on the session.
      outcomes[s].failed = true;
      continue;
    }
    auto finished = engine.Finish(ids[s]);
    if (finished.ok()) {
      // Re-query for the metadata the forced Finish just produced.
      auto after = engine.Info(ids[s]);
      const DecisionMeta meta =
          after.ok() && after->meta.has_value() ? *after->meta : DecisionMeta{};
      outcomes[s] = {finished->label, finished->prefix_length,
                     true,            false,
                     meta.halt_step,  meta.earliness,
                     meta.confidence};
    } else {
      outcomes[s].failed = true;
    }
  }
  return outcomes;
}

}  // namespace

Result<std::vector<ReplayOutcome>> ReplayThroughEngine(
    ServingEngine& engine, const std::string& model_name, size_t num_sessions,
    const std::vector<IngestEvent>& trace, size_t dispatch_every) {
  std::vector<SessionId> ids(num_sessions);
  for (size_t s = 0; s < num_sessions; ++s) {
    ETSC_ASSIGN_OR_RETURN(ids[s], engine.Open(model_name));
  }
  size_t since_dispatch = 0;
  for (const IngestEvent& event : trace) {
    ETSC_RETURN_NOT_OK(engine.Ingest(ids[event.session], event.values));
    if (dispatch_every > 0 && ++since_dispatch >= dispatch_every) {
      since_dispatch = 0;
      ETSC_ASSIGN_OR_RETURN(size_t decisions, engine.DispatchBatch());
      (void)decisions;
    }
  }
  ETSC_ASSIGN_OR_RETURN(size_t tail, engine.DispatchBatch());
  (void)tail;
  return CollectOutcomes(engine, ids);
}

Result<std::vector<ReplayOutcome>> ResumeReplayThroughEngine(
    ServingEngine& engine, const std::string& model_name, size_t num_sessions,
    const std::vector<IngestEvent>& trace, size_t dispatch_every) {
  // Slot s was session id s + 1 in the crashed run (fresh-engine id order);
  // its SessionInfo::ingested says how far into the trace the WAL already
  // carried it. A slot the WAL never saw (crash before its Open) is opened
  // fresh here and replays from the top.
  std::vector<SessionId> ids(num_sessions);
  std::vector<size_t> skip(num_sessions, 0);
  for (size_t s = 0; s < num_sessions; ++s) {
    const SessionId expected = static_cast<SessionId>(s + 1);
    auto info = engine.Info(expected);
    if (info.ok()) {
      ids[s] = expected;
      skip[s] = info->ingested;
      continue;
    }
    if (info.status().code() == StatusCode::kNotFound) {
      ETSC_ASSIGN_OR_RETURN(ids[s], engine.Open(model_name));
      continue;
    }
    // Sticky error: the session exists and will report `failed` — nothing
    // more to feed it.
    ids[s] = expected;
    skip[s] = std::numeric_limits<size_t>::max();
  }
  std::vector<size_t> seen(num_sessions, 0);
  size_t since_dispatch = 0;
  for (const IngestEvent& event : trace) {
    if (seen[event.session]++ < skip[event.session]) continue;
    ETSC_RETURN_NOT_OK(engine.Ingest(ids[event.session], event.values));
    if (dispatch_every > 0 && ++since_dispatch >= dispatch_every) {
      since_dispatch = 0;
      ETSC_ASSIGN_OR_RETURN(size_t decisions, engine.DispatchBatch());
      (void)decisions;
    }
  }
  ETSC_ASSIGN_OR_RETURN(size_t tail, engine.DispatchBatch());
  (void)tail;
  return CollectOutcomes(engine, ids);
}

}  // namespace etsc
