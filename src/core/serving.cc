#include "core/serving.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "core/counters.h"
#include "core/log.h"
#include "core/parallel.h"
#include "core/rng.h"

namespace etsc {

namespace {

Counter& Opened() {
  static Counter& c =
      MetricRegistry::Global().counter("serving.sessions_opened");
  return c;
}
Counter& Rejected() {
  static Counter& c =
      MetricRegistry::Global().counter("serving.sessions_rejected");
  return c;
}
Counter& Closed() {
  static Counter& c =
      MetricRegistry::Global().counter("serving.sessions_closed");
  return c;
}
Counter& Evicted() {
  static Counter& c =
      MetricRegistry::Global().counter("serving.sessions_evicted");
  return c;
}
Counter& Ingested() {
  static Counter& c =
      MetricRegistry::Global().counter("serving.observations_ingested");
  return c;
}
Counter& Batches() {
  static Counter& c = MetricRegistry::Global().counter("serving.batches");
  return c;
}
Counter& BatchDecisions() {
  static Counter& c = MetricRegistry::Global().counter("serving.decisions");
  return c;
}
Counter& DeadlineForced() {
  static Counter& c =
      MetricRegistry::Global().counter("serving.deadline_forced");
  return c;
}
Gauge& LiveSessions() {
  static Gauge& g = MetricRegistry::Global().gauge("serving.live_sessions");
  return g;
}
Histogram& DecisionSeconds() {
  static Histogram& h =
      MetricRegistry::Global().histogram("serving.decision_seconds");
  return h;
}
Histogram& BatchSeconds() {
  static Histogram& h =
      MetricRegistry::Global().histogram("serving.batch_seconds");
  return h;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Validated numeric env knob, same contract as ETSC_THREADS: unset/empty
/// keeps the default, garbage or out-of-range warns and keeps the default.
double EnvNumber(const char* name, double fallback, double lo, double hi) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(raw, &end);
  if (end == raw || *end != '\0' || !(parsed >= lo) || !(parsed <= hi)) {
    Logf(LogLevel::kWarn, "serving",
         "ignoring invalid %s='%s' (want a number in [%g, %g])", name, raw,
         lo, hi);
    return fallback;
  }
  return parsed;
}

}  // namespace

ServingOptions ServingOptions::FromEnv() {
  ServingOptions options;
  options.max_sessions = static_cast<size_t>(
      EnvNumber("ETSC_SERVE_MAX_SESSIONS",
                static_cast<double>(options.max_sessions), 1.0, 1e9));
  const double budget_ms = EnvNumber("ETSC_SERVE_BUDGET_MS", 0.0, 0.0, 1e12);
  if (budget_ms > 0.0) options.session_budget_seconds = budget_ms / 1e3;
  const double idle_ms = EnvNumber("ETSC_SERVE_IDLE_MS", 0.0, 0.0, 1e12);
  if (idle_ms > 0.0) options.idle_timeout_seconds = idle_ms / 1e3;
  return options;
}

ServingEngine::ServingEngine(ServingOptions options)
    : options_(std::move(options)) {}

Status ServingEngine::RegisterModel(
    const std::string& name, std::shared_ptr<const EarlyClassifier> model,
    size_t num_variables) {
  if (model == nullptr) {
    return Status::InvalidArgument("RegisterModel: null model for " + name);
  }
  if (num_variables == 0) {
    return Status::InvalidArgument(
        "RegisterModel: zero-variable model " + name);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (model_index_.count(name) != 0) {
    return Status::InvalidArgument("RegisterModel: duplicate model " + name);
  }
  model_index_[name] = models_.size();
  models_.push_back(ModelEntry{name, std::move(model), num_variables});
  return Status::OK();
}

Result<SessionId> ServingEngine::Open(const std::string& model_name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = model_index_.find(model_name);
  if (it == model_index_.end()) {
    return Status::NotFound("Open: unregistered model " + model_name);
  }
  if (sessions_.size() >= options_.max_sessions) {
    ++stats_.rejected;
    if (MetricsEnabled()) Rejected().Add(1);
    return Status::Unavailable(
        "Open: session table full (" +
        std::to_string(options_.max_sessions) +
        " sessions); evict or raise ETSC_SERVE_MAX_SESSIONS");
  }
  const ModelEntry& entry = models_[it->second];
  const SessionId id = next_id_++;
  sessions_.emplace(
      id, std::make_unique<Session>(
              id, it->second, *entry.model, entry.num_variables,
              options_.expected_length,
              Deadline::After(options_.session_budget_seconds)));
  ++stats_.opened;
  stats_.live_sessions = sessions_.size();
  stats_.peak_sessions = std::max(stats_.peak_sessions, sessions_.size());
  if (MetricsEnabled()) {
    Opened().Add(1);
    LiveSessions().Set(static_cast<int64_t>(sessions_.size()));
  }
  return id;
}

Status ServingEngine::Ingest(SessionId id, const std::vector<double>& values) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound("Ingest: no session " + std::to_string(id));
  }
  Session& session = *it->second;
  const size_t arity = models_[session.model_index].num_variables;
  // Mirrors StreamingSession's arity-before-everything rule: a malformed
  // observation is reported here and can never reach a buffer.
  if (values.size() != arity) {
    return Status::InvalidArgument(
        "Ingest: observation has " + std::to_string(values.size()) +
        " values, expected " + std::to_string(arity));
  }
  session.pending.push_back(values);
  session.last_activity = std::chrono::steady_clock::now();
  ++stats_.ingested;
  if (MetricsEnabled()) Ingested().Add(1);
  return Status::OK();
}

void ServingEngine::RunSession(Session* session) const {
  // Replays the claimed observations in arrival order through the session's
  // own StreamingSession — the single-caller semantics, verbatim, which is
  // what makes batched decisions bit-identical to the streaming path.
  const bool had_decision = session->stream.decision().has_value();
  for (const std::vector<double>& values : session->taking) {
    const auto push_started = std::chrono::steady_clock::now();
    auto out = session->stream.Push(values);
    if (!out.ok()) {
      if (session->error.ok()) session->error = out.status();
      break;
    }
    if (out->has_value() && !had_decision && !session->decided_in_batch) {
      session->decided_in_batch = true;
      if (MetricsEnabled()) DecisionSeconds().Record(SecondsSince(push_started));
    }
  }
  session->taking.clear();
  // Deadline enforcement: an undecided session past its budget answers NOW
  // with whatever it has seen — a forced Finish on the observed prefix.
  if (!session->stream.decision().has_value() && session->error.ok() &&
      session->stream.observed() > 0 && session->deadline.Expired()) {
    const auto finish_started = std::chrono::steady_clock::now();
    auto forced = session->stream.Finish();
    if (!forced.ok()) {
      if (session->error.ok()) session->error = forced.status();
    } else if (!had_decision) {
      session->deadline_forced = true;
      session->decided_in_batch = true;
      if (MetricsEnabled()) {
        DecisionSeconds().Record(SecondsSince(finish_started));
        DeadlineForced().Add(1);
      }
    }
  }
}

Result<size_t> ServingEngine::DispatchBatch() {
  const auto batch_started = std::chrono::steady_clock::now();
  // Claim phase: move each session's queue into its `taking` slot and mark it
  // in flight, so concurrent Ingest keeps appending to a fresh queue and
  // concurrent accessors see "busy" instead of racing the pool tasks.
  std::vector<Session*> work;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, session] : sessions_) {
      if (session->in_flight) continue;  // claimed by an overlapping batch
      const bool due = !session->pending.empty() ||
                       (!session->stream.decision().has_value() &&
                        session->error.ok() && session->stream.observed() > 0 &&
                        session->deadline.Expired());
      if (!due) continue;
      session->taking = std::exchange(session->pending, {});
      session->decided_in_batch = false;
      session->in_flight = true;
      work.push_back(session.get());
    }
    // Model-major order: sessions sharing a model land in the same grain-run
    // of pool tasks, so one task stays on one model's working set.
    std::stable_sort(work.begin(), work.end(),
                     [](const Session* a, const Session* b) {
                       return a->model_index < b->model_index;
                     });
  }

  ParallelFor(
      work.size(), [&](size_t i) { RunSession(work[i]); },
      std::max<size_t>(1, options_.batch_grain));

  size_t decisions = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Session* session : work) {
      session->in_flight = false;
      if (session->decided_in_batch) ++decisions;
    }
    stats_.decisions += decisions;
    stats_.deadline_forced += static_cast<size_t>(std::count_if(
        work.begin(), work.end(), [](const Session* s) {
          return s->decided_in_batch && s->deadline_forced;
        }));
    ++stats_.batches;
  }
  if (MetricsEnabled()) {
    Batches().Add(1);
    BatchDecisions().Add(decisions);
    BatchSeconds().Record(SecondsSince(batch_started));
  }
  return decisions;
}

Result<EarlyPrediction> ServingEngine::Finish(SessionId id) {
  // Claim the session exactly like a batch would, then run it inline.
  Session* session = nullptr;
  bool had_decision = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      return Status::NotFound("Finish: no session " + std::to_string(id));
    }
    session = it->second.get();
    if (session->in_flight) {
      return Status::Unavailable("Finish: session " + std::to_string(id) +
                                 " is being dispatched");
    }
    had_decision = session->stream.decision().has_value();
    session->taking = std::exchange(session->pending, {});
    session->decided_in_batch = false;
    session->in_flight = true;
  }
  RunSession(session);
  Result<EarlyPrediction> result = [&]() -> Result<EarlyPrediction> {
    if (!session->error.ok()) return session->error;
    return session->stream.Finish();
  }();
  {
    std::lock_guard<std::mutex> lock(mu_);
    session->in_flight = false;
    if (result.ok() && !had_decision) {
      // A fresh decision, whether the queue flush or the Finish made it.
      ++stats_.decisions;
      if (MetricsEnabled()) BatchDecisions().Add(1);
    }
  }
  return result;
}

Result<SessionInfo> ServingEngine::Info(SessionId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound("Info: no session " + std::to_string(id));
  }
  const Session& session = *it->second;
  if (session.in_flight) {
    return Status::Unavailable("Info: session " + std::to_string(id) +
                               " is being dispatched");
  }
  if (!session.error.ok()) return session.error;
  SessionInfo info;
  info.id = session.id;
  info.model = models_[session.model_index].name;
  info.observed = session.stream.observed();
  info.pending = session.pending.size();
  info.decision = session.stream.decision();
  info.meta = session.stream.decision_meta();
  info.deadline_forced = session.deadline_forced;
  return info;
}

Status ServingEngine::Close(SessionId id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound("Close: no session " + std::to_string(id));
  }
  if (it->second->in_flight) {
    return Status::Unavailable("Close: session " + std::to_string(id) +
                               " is being dispatched");
  }
  sessions_.erase(it);
  ++stats_.closed;
  stats_.live_sessions = sessions_.size();
  if (MetricsEnabled()) {
    Closed().Add(1);
    LiveSessions().Set(static_cast<int64_t>(sessions_.size()));
  }
  return Status::OK();
}

size_t ServingEngine::EvictDecided() {
  std::lock_guard<std::mutex> lock(mu_);
  size_t evicted = 0;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    Session& session = *it->second;
    if (!session.in_flight && session.pending.empty() &&
        (session.stream.decision().has_value() || !session.error.ok())) {
      it = sessions_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  stats_.evicted += evicted;
  stats_.live_sessions = sessions_.size();
  if (MetricsEnabled() && evicted > 0) {
    Evicted().Add(evicted);
    LiveSessions().Set(static_cast<int64_t>(sessions_.size()));
  }
  return evicted;
}

size_t ServingEngine::EvictIdle(double idle_seconds) {
  if (idle_seconds < 0.0) idle_seconds = options_.idle_timeout_seconds;
  std::lock_guard<std::mutex> lock(mu_);
  size_t evicted = 0;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    Session& session = *it->second;
    if (!session.in_flight && session.pending.empty() &&
        !session.stream.decision().has_value() &&
        SecondsSince(session.last_activity) > idle_seconds) {
      it = sessions_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  stats_.evicted += evicted;
  stats_.live_sessions = sessions_.size();
  if (MetricsEnabled() && evicted > 0) {
    Evicted().Add(evicted);
    LiveSessions().Set(static_cast<int64_t>(sessions_.size()));
  }
  return evicted;
}

ServingStats ServingEngine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

// ---------------------------------------------------------------------------
// Replayable ingest traces
// ---------------------------------------------------------------------------

std::vector<IngestEvent> BuildReplayTrace(const Dataset& data,
                                          size_t num_sessions, uint64_t seed) {
  std::vector<IngestEvent> trace;
  if (data.empty() || num_sessions == 0) return trace;
  const size_t num_variables = data.NumVariables();
  size_t max_length = 0;
  std::vector<const TimeSeries*> streams(num_sessions);
  for (size_t s = 0; s < num_sessions; ++s) {
    streams[s] = &data.instance(s % data.size());
    max_length = std::max(max_length, streams[s]->length());
  }
  Rng rng(seed);
  std::vector<size_t> order(num_sessions);
  for (size_t s = 0; s < num_sessions; ++s) order[s] = s;
  for (size_t t = 0; t < max_length; ++t) {
    // Fresh shuffle per round: arrival order within an observation period is
    // traffic noise, and the engine's decisions must not depend on it.
    rng.Shuffle(&order);
    for (const size_t s : order) {
      const TimeSeries& series = *streams[s];
      if (t >= series.length()) continue;
      IngestEvent event;
      event.session = s;
      event.values.resize(num_variables);
      for (size_t v = 0; v < num_variables; ++v) {
        event.values[v] = series.at(v, t);
      }
      trace.push_back(std::move(event));
    }
  }
  return trace;
}

std::vector<ReplayOutcome> ReplaySequential(
    const EarlyClassifier& model, size_t num_variables, size_t num_sessions,
    const std::vector<IngestEvent>& trace) {
  std::vector<std::unique_ptr<StreamingSession>> sessions;
  sessions.reserve(num_sessions);
  for (size_t s = 0; s < num_sessions; ++s) {
    sessions.push_back(
        std::make_unique<StreamingSession>(model, num_variables));
  }
  std::vector<ReplayOutcome> outcomes(num_sessions);
  std::vector<bool> decided(num_sessions, false);
  for (const IngestEvent& event : trace) {
    StreamingSession& session = *sessions[event.session];
    auto out = session.Push(event.values);
    if (!out.ok()) {
      if (!decided[event.session]) {
        outcomes[event.session].failed = true;
        decided[event.session] = true;
      }
      continue;
    }
    if (out->has_value() && !decided[event.session]) {
      const DecisionMeta& meta = *session.decision_meta();
      outcomes[event.session] = {(*out)->label,  (*out)->prefix_length,
                                 false,          false,
                                 meta.halt_step, meta.earliness,
                                 meta.confidence};
      decided[event.session] = true;
    }
  }
  for (size_t s = 0; s < num_sessions; ++s) {
    if (decided[s]) continue;
    auto finished = sessions[s]->Finish();
    if (finished.ok()) {
      const DecisionMeta& meta = *sessions[s]->decision_meta();
      outcomes[s] = {finished->label, finished->prefix_length,
                     true,            false,
                     meta.halt_step,  meta.earliness,
                     meta.confidence};
    } else {
      outcomes[s].failed = true;
    }
  }
  return outcomes;
}

Result<std::vector<ReplayOutcome>> ReplayThroughEngine(
    ServingEngine& engine, const std::string& model_name, size_t num_sessions,
    const std::vector<IngestEvent>& trace, size_t dispatch_every) {
  std::vector<SessionId> ids(num_sessions);
  for (size_t s = 0; s < num_sessions; ++s) {
    ETSC_ASSIGN_OR_RETURN(ids[s], engine.Open(model_name));
  }
  size_t since_dispatch = 0;
  for (const IngestEvent& event : trace) {
    ETSC_RETURN_NOT_OK(engine.Ingest(ids[event.session], event.values));
    if (dispatch_every > 0 && ++since_dispatch >= dispatch_every) {
      since_dispatch = 0;
      ETSC_ASSIGN_OR_RETURN(size_t decisions, engine.DispatchBatch());
      (void)decisions;
    }
  }
  ETSC_ASSIGN_OR_RETURN(size_t tail, engine.DispatchBatch());
  (void)tail;
  std::vector<ReplayOutcome> outcomes(num_sessions);
  for (size_t s = 0; s < num_sessions; ++s) {
    auto info = engine.Info(ids[s]);
    if (info.ok() && info->decision.has_value()) {
      const DecisionMeta& meta = *info->meta;
      outcomes[s] = {info->decision->label, info->decision->prefix_length,
                     info->deadline_forced, false,
                     meta.halt_step,        meta.earliness,
                     meta.confidence};
      continue;
    }
    if (!info.ok() && info.status().code() != StatusCode::kNotFound) {
      // Sticky classifier error on the session.
      outcomes[s].failed = true;
      continue;
    }
    auto finished = engine.Finish(ids[s]);
    if (finished.ok()) {
      // Re-query for the metadata the forced Finish just produced.
      auto after = engine.Info(ids[s]);
      const DecisionMeta meta =
          after.ok() && after->meta.has_value() ? *after->meta : DecisionMeta{};
      outcomes[s] = {finished->label, finished->prefix_length,
                     true,            false,
                     meta.halt_step,  meta.earliness,
                     meta.confidence};
    } else {
      outcomes[s].failed = true;
    }
  }
  return outcomes;
}

}  // namespace etsc
