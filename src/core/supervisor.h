#ifndef ETSC_CORE_SUPERVISOR_H_
#define ETSC_CORE_SUPERVISOR_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/deadline.h"
#include "core/status.h"

namespace etsc {

/// Cell-level execution supervision for the campaign grid: bounded retries
/// under deterministic backoff for transient failures, a per-algorithm
/// circuit breaker that quarantines repeat offenders, and a watchdog that
/// cooperatively cancels hung tasks through their CancelToken.
///
/// Determinism contract: retry counts and backoff delays are pure functions
/// of (policy, seed, attempt); the circuit breaker is driven from
/// per-algorithm lanes that complete cells in dataset order. Serial and
/// parallel campaign runs therefore agree bit-for-bit on which cells retried,
/// which were quarantined, and on every surviving score.

/// Bounded-retry policy with exponential backoff and seeded jitter.
struct RetryPolicy {
  /// Additional attempts after the first failure; 0 disables retries.
  int max_retries = 0;
  /// Delay before retry #1; retry #k waits base * multiplier^(k-1), jittered.
  double base_backoff_ms = 10.0;
  double backoff_multiplier = 2.0;
  /// Cap applied before jitter so a long retry chain cannot stall a lane.
  double max_backoff_ms = 1000.0;
};

/// Knobs for the whole supervision layer; FromEnv reads ETSC_RETRY_MAX,
/// ETSC_RETRY_BASE_MS, ETSC_QUARANTINE_AFTER and ETSC_WATCHDOG_GRACE
/// (invalid values warn and keep the default, matching CampaignConfig).
struct SupervisorOptions {
  RetryPolicy retry;
  /// Quarantine an algorithm after this many consecutive failures on
  /// distinct datasets; 0 disables the breaker.
  int quarantine_after = 3;
  /// Cancel a task once its elapsed time exceeds grace * budget; <= 0
  /// disables the watchdog.
  double watchdog_grace = 0.0;

  static SupervisorOptions FromEnv();
};

/// True for failure classes worth retrying: budget expiry and transient
/// unavailability. Deterministic failures (bad input, logic errors, corrupt
/// data) fail fast — retrying them reproduces the same failure.
bool IsTransientFailure(StatusCode code);

/// Backoff before retry attempt `attempt` (1-based), in milliseconds:
/// min(max, base * multiplier^(attempt-1)) scaled by a jitter factor in
/// [0.5, 1.0) derived from SplitSeed(seed, attempt). Pure, so every thread
/// computes the same schedule for the same cell — timing varies, results
/// never do.
double BackoffDelayMs(const RetryPolicy& policy, uint64_t seed, int attempt);

/// Per-algorithm failure accounting. An algorithm accumulates consecutive
/// failures across *distinct* datasets (a retry burst on one dataset counts
/// once); any success resets the streak; reaching `quarantine_after` trips
/// the breaker and every later cell of that algorithm is skipped with an
/// explicit kSkippedQuarantine row. Thread-safe.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(int quarantine_after)
      : quarantine_after_(quarantine_after) {}

  /// Returns true when this failure trips the breaker (transition into
  /// quarantine happens exactly once per algorithm).
  bool RecordFailure(const std::string& algo, const std::string& dataset);
  void RecordSuccess(const std::string& algo);
  bool IsQuarantined(const std::string& algo) const;

 private:
  struct Entry {
    int consecutive_failures = 0;
    std::string last_failed_dataset;
    bool quarantined = false;
  };

  const int quarantine_after_;
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

/// Watchdog: a lazily-started background thread that observes supervised
/// tasks and requests cooperative cancellation once one has run past
/// grace * budget. Cancellation flows through the task's CancelToken, which
/// every Deadline poll observes — the cell then fails with kDeadlineExceeded
/// and degrades to a full-length miss exactly like a budget overrun.
class Watchdog {
 public:
  static Watchdog& Instance();

  /// RAII registration of the calling thread's current task. Installs a
  /// fresh CancelToken on the thread for the scope and registers it with the
  /// watchdog when `budget_seconds` is finite and `grace` > 0 (otherwise the
  /// guard still installs the token, keeping cancellation semantics uniform,
  /// but the watchdog never fires).
  class Watch {
   public:
    Watch(std::string label, double budget_seconds, double grace);
    ~Watch();

    Watch(const Watch&) = delete;
    Watch& operator=(const Watch&) = delete;

    /// True when the watchdog cancelled this task.
    bool cancelled() const { return token_->cancelled(); }

   private:
    std::shared_ptr<CancelToken> token_;
    ScopedCancelToken install_;
    uint64_t id_ = 0;  // 0 = not registered with the watchdog thread.
  };

 private:
  Watchdog() = default;
  ~Watchdog();

  uint64_t Register(std::shared_ptr<CancelToken> token, std::string label,
                    double budget_seconds, double grace);
  void Unregister(uint64_t id);
  void RunLoop();

  struct Task {
    std::shared_ptr<CancelToken> token;
    std::string label;
    Deadline::Clock::time_point started;
    double cancel_after_seconds = 0.0;
    bool cancelled = false;
  };

  std::mutex mu_;
  std::condition_variable cv_;
  std::map<uint64_t, Task> tasks_;
  uint64_t next_id_ = 1;
  bool started_ = false;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace etsc

#endif  // ETSC_CORE_SUPERVISOR_H_
