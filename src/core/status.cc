#include "core/status.h"

namespace etsc {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kSkippedQuarantine:
      return "SkippedQuarantine";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {

void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "ETSC_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace internal
}  // namespace etsc
