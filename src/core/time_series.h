#ifndef ETSC_CORE_TIME_SERIES_H_
#define ETSC_CORE_TIME_SERIES_H_

#include <cmath>
#include <cstddef>
#include <vector>

#include "core/status.h"

namespace etsc {

/// A (possibly multivariate) time-series: `num_variables` aligned channels of
/// equal length. Values are stored row-major per variable; a missing
/// measurement is represented by NaN and can be repaired with
/// FillMissingValues() using the paper's gap-filling rule (Sec. 5.1).
class TimeSeries {
 public:
  TimeSeries() = default;

  /// Creates an all-zero series with `num_variables` channels of `length`.
  TimeSeries(size_t num_variables, size_t length)
      : values_(num_variables, std::vector<double>(length, 0.0)) {}

  /// Wraps a univariate series.
  static TimeSeries Univariate(std::vector<double> values);

  /// Wraps pre-built channels; all channels must have equal length.
  static Result<TimeSeries> FromChannels(std::vector<std::vector<double>> channels);

  size_t num_variables() const { return values_.size(); }
  size_t length() const { return values_.empty() ? 0 : values_[0].size(); }
  bool empty() const { return length() == 0; }

  double at(size_t variable, size_t t) const { return values_[variable][t]; }
  double& at(size_t variable, size_t t) { return values_[variable][t]; }

  const std::vector<double>& channel(size_t variable) const {
    return values_[variable];
  }
  std::vector<double>& channel(size_t variable) { return values_[variable]; }

  /// Returns the first `len` time-points of every channel (len is clamped to
  /// the series length).
  TimeSeries Prefix(size_t len) const;

  /// Returns a univariate series holding only `variable`.
  TimeSeries SingleVariable(size_t variable) const;

  /// Returns true if any value is NaN.
  bool HasMissingValues() const;

  /// Fills NaN runs with the mean of the last value before the gap and the
  /// first value after it (the paper's repair rule). Leading/trailing gaps
  /// take the nearest observed value; an all-NaN channel becomes zeros.
  void FillMissingValues();

  /// Z-normalises each channel in place (mean 0, stddev 1). Channels with
  /// stddev below `min_stddev` are only mean-centred to avoid noise blow-up.
  void ZNormalize(double min_stddev = 1e-8);

  /// Mean of one channel.
  double Mean(size_t variable) const;

  /// Population standard deviation of one channel.
  double StdDev(size_t variable) const;

 private:
  std::vector<std::vector<double>> values_;
};

/// Squared Euclidean distance between equal-length univariate vectors.
double SquaredEuclidean(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean distance across all channels of two equal-shape series prefixes,
/// using the first `len` points (len = 0 means full length).
double EuclideanDistance(const TimeSeries& a, const TimeSeries& b, size_t len = 0);

}  // namespace etsc

#endif  // ETSC_CORE_TIME_SERIES_H_
