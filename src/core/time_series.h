#ifndef ETSC_CORE_TIME_SERIES_H_
#define ETSC_CORE_TIME_SERIES_H_

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "core/aligned.h"
#include "core/status.h"

namespace etsc {

/// A (possibly multivariate) time-series: `num_variables` channels of equal
/// length. A missing measurement is represented by NaN and can be repaired
/// with FillMissingValues() using the paper's gap-filling rule (Sec. 5.1).
///
/// Storage is structure-of-arrays (DESIGN.md sec 13): one contiguous 32-byte
/// aligned buffer holding all channels back to back, each channel padded to a
/// stride that is a multiple of kSimdWidthDoubles, padding zero-filled.
/// channel(v) starts at data() + v*stride(). A TimeSeries either owns its
/// buffer or is a *view* into a Dataset's shared pool; copying always deep
/// copies into an owning series, so the distinction is invisible to callers.
class TimeSeries {
 public:
  TimeSeries() = default;

  /// Creates an all-zero series with `num_variables` channels of `length`.
  TimeSeries(size_t num_variables, size_t length);

  TimeSeries(const TimeSeries& other);
  TimeSeries& operator=(const TimeSeries& other);
  TimeSeries(TimeSeries&& other) noexcept;
  TimeSeries& operator=(TimeSeries&& other) noexcept;
  ~TimeSeries() = default;

  /// Wraps a univariate series.
  static TimeSeries Univariate(std::vector<double> values);

  /// Wraps pre-built channels; all channels must have equal length.
  static Result<TimeSeries> FromChannels(std::vector<std::vector<double>> channels);

  size_t num_variables() const { return num_variables_; }
  size_t length() const { return length_; }
  bool empty() const { return length_ == 0; }

  /// Channel stride in doubles (length padded to the SIMD width multiple).
  size_t stride() const { return stride_; }

  /// True when this series owns its buffer (false: view into a Dataset pool).
  bool owns_storage() const { return data_ == nullptr || !own_.empty(); }

  double at(size_t variable, size_t t) const {
    return data_[variable * stride_ + t];
  }
  double& at(size_t variable, size_t t) {
    return data_[variable * stride_ + t];
  }

  /// One channel's logical values (padding excluded). The span stays valid
  /// until the series (or the owning Dataset) is mutated structurally.
  std::span<const double> channel(size_t variable) const {
    return {data_ + variable * stride_, length_};
  }
  std::span<double> channel(size_t variable) {
    return {data_ + variable * stride_, length_};
  }

  /// Raw aligned pointer to one channel (the kernel-facing accessor).
  const double* channel_data(size_t variable) const {
    return data_ + variable * stride_;
  }

  /// Returns the first `len` time-points of every channel (len is clamped to
  /// the series length).
  TimeSeries Prefix(size_t len) const;

  /// Returns a univariate series holding only `variable`.
  TimeSeries SingleVariable(size_t variable) const;

  /// Appends one observation (exactly one value per channel). Owning series
  /// only; grows the buffer geometrically (each growth is counted in the
  /// timeseries.append_grows metric), so a streaming session's push is
  /// amortised O(num_variables) with O(log length) reallocations per stream.
  void AppendObservation(const std::vector<double>& values);

  /// Pre-sizes the per-channel capacity for `expected_length` time-points
  /// (one repack at most), so a streaming fill of a known-length series does
  /// a single allocation. Owning series only; never shrinks.
  void ReserveLength(size_t expected_length);

  /// Per-channel capacity in time-points: appends up to this length reuse the
  /// current buffer without reallocating.
  size_t capacity() const { return stride_; }

  /// Drops all values (length back to 0, channel count kept, capacity kept,
  /// buffer re-zeroed so the padding invariant holds for the next fill).
  void ClearValues();

  /// Drops values AND capacity (length and stride back to 0, channel count
  /// kept): the RSS-release path for long-lived reused buffers whose peak
  /// stream was much longer than the typical one.
  void ReleaseCapacity();

  /// Returns true if any value is NaN.
  bool HasMissingValues() const;

  /// Fills NaN runs with the mean of the last value before the gap and the
  /// first value after it (the paper's repair rule). Leading/trailing gaps
  /// take the nearest observed value; an all-NaN channel becomes zeros.
  void FillMissingValues();

  /// Z-normalises each channel in place (mean 0, stddev 1). Channels with
  /// stddev below `min_stddev` are only mean-centred to avoid noise blow-up.
  void ZNormalize(double min_stddev = 1e-8);

  /// Mean of one channel.
  double Mean(size_t variable) const;

  /// Population standard deviation of one channel.
  double StdDev(size_t variable) const;

 private:
  friend class Dataset;

  /// View constructor: borrows `data` (a Dataset pool slot), owns nothing.
  TimeSeries(double* data, size_t num_variables, size_t length, size_t stride)
      : data_(data),
        num_variables_(num_variables),
        length_(length),
        stride_(stride) {}

  /// Allocates an owning zeroed buffer for the given logical shape.
  void AllocateOwned(size_t num_variables, size_t length);

  /// Reallocates the owning buffer at `new_stride` doubles per channel and
  /// repacks the current values (growth path of AppendObservation /
  /// ReserveLength; counted in timeseries.append_grows).
  void Repack(size_t new_stride);

  double* data_ = nullptr;
  size_t num_variables_ = 0;
  size_t length_ = 0;
  size_t stride_ = 0;
  AlignedVector own_;  // empty for views; otherwise data_ == own_.data()
};

/// Squared Euclidean distance between equal-length univariate vectors.
double SquaredEuclidean(std::span<const double> a, std::span<const double> b);
inline double SquaredEuclidean(const std::vector<double>& a,
                               const std::vector<double>& b) {
  return SquaredEuclidean(std::span<const double>(a), std::span<const double>(b));
}

/// Euclidean distance across all channels of two equal-shape series prefixes,
/// using the first `len` points (len = 0 means full length).
double EuclideanDistance(const TimeSeries& a, const TimeSeries& b, size_t len = 0);

}  // namespace etsc

#endif  // ETSC_CORE_TIME_SERIES_H_
