#ifndef ETSC_CORE_EVALUATION_H_
#define ETSC_CORE_EVALUATION_H_

#include <chrono>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <memory>

#include "core/classifier.h"
#include "core/dataset.h"
#include "core/metrics.h"
#include "core/model_cache.h"
#include "core/supervisor.h"

namespace etsc {

/// Simple wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }
  void Restart() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Outcome of one CV fold.
struct FoldOutcome {
  bool trained = false;          // false when Fit failed (e.g. budget exceeded)
  /// First failure observed in the fold: the Fit error when !trained, else
  /// the first prediction error (predict deadline overrun, internal fault).
  /// Failed cells are first-class results, never crashes.
  std::string failure;
  /// StatusCode of `failure` (kOk when the fold was clean) — the supervisor's
  /// failure taxonomy: transient codes were retried, deterministic ones
  /// failed fast, and the circuit breaker only counts real failures.
  StatusCode failure_code = StatusCode::kOk;
  /// Fit attempts consumed (1 = no retries). Deterministic: a function of
  /// the classifier's failure pattern and the retry policy, never of timing.
  int fit_attempts = 1;
  /// Predictions that returned an error and were degraded to a full-length
  /// miss; trained stays true so the fold still reports scores.
  size_t num_failed_predictions = 0;
  EvalScores scores;
  /// This fold's RNG seed, split from EvaluationOptions::seed by fold index
  /// *before* dispatch (SplitSeed), so it is identical whether the folds ran
  /// serially or on the thread pool. Stochastic per-fold machinery (fault
  /// injection, future reseeding classifiers) must draw from this, never
  /// from a generator shared across folds.
  uint64_t fold_seed = 0;
  /// Per-fold wall time, measured inside the fold's task — under parallel
  /// execution these sum to more than the harness wall-clock.
  double train_seconds = 0.0;
  double test_seconds = 0.0;     // total over the fold's test set
  size_t num_test = 0;
};

/// Aggregated result of evaluating one algorithm on one dataset.
struct EvaluationResult {
  std::string algorithm;
  std::string dataset;
  std::vector<FoldOutcome> folds;

  /// Wall-clock of the whole CrossValidate call (all folds); with the thread
  /// pool active this is less than the sum of per-fold times. The campaign
  /// reports CpuSeconds()/wall_seconds as its fold-level speedup.
  double wall_seconds = 0.0;

  /// Sum of per-fold train+test wall time — the serial-equivalent cost.
  double CpuSeconds() const;

  /// True when every fold trained within budget.
  bool trained() const;

  /// Mean scores over the folds that trained.
  EvalScores MeanScores() const;

  /// Mean per-fold training wall-clock (seconds) over trained folds.
  double MeanTrainSeconds() const;

  /// Mean per-instance prediction wall-clock (seconds) over trained folds.
  double MeanTestSecondsPerInstance() const;
};

/// Options of the paper's experimental protocol (Sec. 6.1).
struct EvaluationOptions {
  size_t num_folds = 5;                      // stratified random-sampling CV
  uint64_t seed = 42;
  double train_budget_seconds = std::numeric_limits<double>::infinity();
  /// Wall-clock budget for ONE PredictEarly call; an overrun degrades that
  /// instance to a full-length miss instead of hanging the evaluation.
  double predict_budget_seconds = std::numeric_limits<double>::infinity();
  bool wrap_univariate_with_voting = true;   // Sec. 6.1 voting scheme
  /// Stop evaluating remaining folds once one fold fails to train (budget
  /// exhaustion would only repeat); the paper's 48-hour rule likewise kills
  /// the whole run.
  bool skip_folds_after_failure = true;
  /// Fitted-model cache. When set, each fold first tries to restore its
  /// (possibly voting-wrapped) classifier from the cache — a hit skips Fit
  /// entirely (counted as eval.fits_skipped) and reports train_seconds = 0 —
  /// and every freshly trained fold is stored back. Null disables caching.
  std::shared_ptr<const ModelCache> model_cache;
  /// Supervised-retry policy for Fit: transient failures (kDeadlineExceeded,
  /// kResourceExhausted, kUnavailable) are re-attempted on the SAME
  /// classifier instance up to retry.max_retries times, under deterministic
  /// backoff jittered by the fold seed. Deterministic failures fail fast.
  RetryPolicy retry;
  /// Watchdog grace multiple: a Fit or PredictEarly running longer than
  /// grace * its budget is cooperatively cancelled (degrading exactly like a
  /// budget overrun). <= 0 (the default) disables the watchdog entirely —
  /// no token installs, no background thread.
  double watchdog_grace = 0.0;
};

/// Runs stratified k-fold cross-validation of `prototype` (cloned per fold)
/// on `dataset`, reproducing the paper's protocol: voting wrapper for
/// univariate algorithms on multivariate data, per-fold wall-clock timing and
/// a train budget standing in for the 48-hour cut-off.
EvaluationResult CrossValidate(const Dataset& dataset,
                               const EarlyClassifier& prototype,
                               const EvaluationOptions& options = {});

/// Evaluates an already-configured classifier on an explicit train/test split;
/// used by tests and examples. `watchdog_grace` > 0 supervises the Fit and
/// every prediction (see EvaluationOptions::watchdog_grace).
FoldOutcome EvaluateSplit(const Dataset& train, const Dataset& test,
                          EarlyClassifier* classifier,
                          double watchdog_grace = 0.0);

/// Evaluates an already-FITTED classifier on a test set (no Fit call): the
/// cache-hit path of CrossValidate, also useful for scoring a model restored
/// via EarlyClassifier::LoadFitted. train_seconds is reported as 0.
FoldOutcome EvaluateFitted(const Dataset& test, const EarlyClassifier& classifier,
                           double watchdog_grace = 0.0);

}  // namespace etsc

#endif  // ETSC_CORE_EVALUATION_H_
