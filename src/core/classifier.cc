#include "core/classifier.h"

#include <cstdio>

namespace etsc {

std::string FingerprintDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}
namespace {

/// Shared Save/LoadFitted plumbing for both classifier interfaces: the header
/// carries kind/name/config_fingerprint, the body is one "state" section
/// owned by the implementation's SaveState/LoadState.
template <typename ClassifierT>
Status SaveImpl(const ClassifierT& model, const char* kind,
                std::ostream& out) {
  Serializer s;
  s.Begin("state");
  ETSC_RETURN_NOT_OK(model.SaveState(s));
  s.End();
  return s.Finish(out, kind, model.name(), model.config_fingerprint());
}

template <typename ClassifierT>
Status LoadImpl(ClassifierT& model, const char* kind, std::istream& in) {
  ETSC_ASSIGN_OR_RETURN(Deserializer d, Deserializer::FromStream(in));
  if (d.header().kind != kind) {
    return Status::InvalidArgument("LoadFitted: stream holds a '" +
                                   d.header().kind + "' model, expected '" +
                                   kind + "'");
  }
  if (d.header().name != model.name()) {
    return Status::InvalidArgument("LoadFitted: stream holds '" +
                                   d.header().name + "', this instance is '" +
                                   model.name() + "'");
  }
  if (d.header().fingerprint != model.config_fingerprint()) {
    return Status::InvalidArgument(
        "LoadFitted: configuration mismatch for '" + model.name() +
        "' (saved under \"" + d.header().fingerprint + "\", loading into \"" +
        model.config_fingerprint() + "\")");
  }
  ETSC_RETURN_NOT_OK(d.Enter("state"));
  ETSC_RETURN_NOT_OK(model.LoadState(d));
  return d.Leave();
}

}  // namespace

Result<std::vector<double>> FullClassifier::PredictProba(
    const TimeSeries& series) const {
  ETSC_ASSIGN_OR_RETURN(int label, Predict(series));
  const auto& labels = class_labels();
  std::vector<double> proba(labels.size(), 0.0);
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == label) {
      proba[i] = 1.0;
      break;
    }
  }
  return proba;
}

Status FullClassifier::Save(std::ostream& out) const {
  return SaveImpl(*this, "full", out);
}

Status FullClassifier::LoadFitted(std::istream& in) {
  return LoadImpl(*this, "full", in);
}

Status EarlyClassifier::Save(std::ostream& out) const {
  return SaveImpl(*this, "early", out);
}

Status EarlyClassifier::LoadFitted(std::istream& in) {
  return LoadImpl(*this, "early", in);
}

}  // namespace etsc
