#include "core/classifier.h"

namespace etsc {

Result<std::vector<double>> FullClassifier::PredictProba(
    const TimeSeries& series) const {
  ETSC_ASSIGN_OR_RETURN(int label, Predict(series));
  const auto& labels = class_labels();
  std::vector<double> proba(labels.size(), 0.0);
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == label) {
      proba[i] = 1.0;
      break;
    }
  }
  return proba;
}

}  // namespace etsc
