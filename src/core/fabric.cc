#include "core/fabric.h"

#include <fcntl.h>
#include <sys/file.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "core/counters.h"
#include "core/log.h"

namespace etsc::fabric {

namespace {

constexpr char kRowSentinel[] = ",#end";
constexpr size_t kSentinelLen = sizeof(kRowSentinel) - 1;
constexpr char kLeaseTag[] = "@lease";
constexpr char kQuarantineTag[] = "@quarantine";

// Fabric metrics (DESIGN.md sec 12): lease traffic and contention.
Counter& LeasesAcquired() {
  static Counter& c = MetricRegistry::Global().counter("fabric.leases_acquired");
  return c;
}
Counter& LeasesStolen() {
  static Counter& c = MetricRegistry::Global().counter("fabric.leases_stolen");
  return c;
}
Counter& Heartbeats() {
  static Counter& c = MetricRegistry::Global().counter("fabric.heartbeats");
  return c;
}
Counter& HeartbeatsMissed() {
  static Counter& c =
      MetricRegistry::Global().counter("fabric.heartbeats_missed");
  return c;
}
Counter& LeaseWaits() {
  static Counter& c = MetricRegistry::Global().counter("fabric.lease_waits");
  return c;
}
Counter& QuarantinesPublished() {
  static Counter& c =
      MetricRegistry::Global().counter("fabric.quarantines_published");
  return c;
}

/// True when `rest` holds only trailing whitespace after a strtod parse.
bool OnlyTrailingSpace(const char* rest) {
  if (rest == nullptr) return false;
  while (*rest != '\0') {
    if (!std::isspace(static_cast<unsigned char>(*rest))) return false;
    ++rest;
  }
  return true;
}

/// Validated positive-double override, matching the campaign env idiom:
/// garbage or non-positive values warn and keep the default.
double GetEnvPositiveOr(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(value, &end);
  if (end == value || !OnlyTrailingSpace(end) || errno == ERANGE ||
      !(parsed > 0.0)) {
    Logf(LogLevel::kWarn, "fabric",
         "%s=\"%s\" is not a positive number; using the default (%g)", name,
         value, fallback);
    return fallback;
  }
  return parsed;
}

/// Splits a sentinel-stripped line on raw commas. Safe for journal rows:
/// every comma inside a free-form field is escaped (bench EscapeJournalField),
/// so raw commas are always field separators.
std::vector<std::string> SplitFields(const std::string& line) {
  std::vector<std::string> fields;
  std::stringstream ss(line);
  std::string field;
  while (std::getline(ss, field, ',')) fields.push_back(field);
  if (!line.empty() && line.back() == ',') fields.emplace_back();
  return fields;
}

bool ParseExpiry(const std::string& field, uint64_t* out) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(field.c_str(), &end, 10);
  if (end == field.c_str() || !OnlyTrailingSpace(end) || errno == ERANGE) {
    return false;
  }
  *out = static_cast<uint64_t>(parsed);
  return true;
}

}  // namespace

uint64_t MonotonicMs() {
  // CLOCK_MONOTONIC directly (not steady_clock, whose epoch is unspecified by
  // the standard): on Linux it is machine-wide, so expiry instants written by
  // one worker process are meaningful to every other worker on the host.
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000u +
         static_cast<uint64_t>(ts.tv_nsec) / 1000000u;
}

LeaseOptions LeaseOptions::FromEnv() {
  LeaseOptions options;
  options.ttl_ms = GetEnvPositiveOr("ETSC_LEASE_TTL_MS", options.ttl_ms);
  options.heartbeat_ms =
      GetEnvPositiveOr("ETSC_HEARTBEAT_MS", options.heartbeat_ms);
  if (options.heartbeat_ms >= options.ttl_ms) {
    const double clamped = options.ttl_ms / 4.0;
    Logf(LogLevel::kWarn, "fabric",
         "heartbeat (%g ms) must be shorter than the lease TTL (%g ms); "
         "clamping the heartbeat to %g ms",
         options.heartbeat_ms, options.ttl_ms, clamped);
    options.heartbeat_ms = clamped;
  }
  return options;
}

std::string FormatLeaseRow(const LeaseRow& row) {
  std::ostringstream out;
  out << kLeaseTag << ',' << row.algorithm << ',' << row.dataset << ','
      << row.owner << ',' << row.expiry_ms << kRowSentinel;
  return out.str();
}

std::string FormatQuarantineRow(const QuarantineRow& row) {
  std::ostringstream out;
  out << kQuarantineTag << ',' << row.algorithm << ',' << row.owner
      << kRowSentinel;
  return out.str();
}

ControlRow ParseControlRow(const std::string& line) {
  ControlRow out;
  if (line.empty() || line[0] != '@') return out;
  if (line.size() < kSentinelLen ||
      line.compare(line.size() - kSentinelLen, kSentinelLen, kRowSentinel) !=
          0) {
    return out;  // torn by a mid-write crash: skip, never half-parse
  }
  const std::vector<std::string> fields =
      SplitFields(line.substr(0, line.size() - kSentinelLen));
  if (fields.size() == 5 && fields[0] == kLeaseTag) {
    LeaseRow lease;
    lease.algorithm = fields[1];
    lease.dataset = fields[2];
    lease.owner = fields[3];
    if (!ParseExpiry(fields[4], &lease.expiry_ms)) return out;
    out.kind = ControlRowKind::kLease;
    out.lease = std::move(lease);
    return out;
  }
  if (fields.size() == 3 && fields[0] == kQuarantineTag) {
    out.kind = ControlRowKind::kQuarantine;
    out.quarantine.algorithm = fields[1];
    out.quarantine.owner = fields[2];
    return out;
  }
  return out;
}

int HeaderVersion(const std::string& header_line) {
  // "# v<digits>" prefix; anything else reads as version 0 (unversioned).
  if (header_line.rfind("# v", 0) != 0) return 0;
  const char* digits = header_line.c_str() + 3;
  char* end = nullptr;
  const long parsed = std::strtol(digits, &end, 10);
  if (end == digits || parsed <= 0 || parsed > 1000000) return 0;
  return static_cast<int>(parsed);
}

FileLock::FileLock(const std::string& path) {
  fd_ = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (fd_ < 0) return;
  // Blocking exclusive lock: claim cycles are short (scan + one append), so
  // waiting is cheaper and simpler than a try-loop.
  if (::flock(fd_, LOCK_EX) != 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

FileLock::~FileLock() {
  if (fd_ >= 0) {
    ::flock(fd_, LOCK_UN);
    ::close(fd_);
  }
}

LeaseTable::LeaseTable(const std::vector<GridCell>& grid)
    : grid_(grid), statuses_(grid.size()) {}

void LeaseTable::ApplyLine(const std::string& line) {
  if (line.empty()) return;
  if (line[0] == '@') {
    const ControlRow control = ParseControlRow(line);
    if (control.kind == ControlRowKind::kQuarantine) {
      quarantined_algorithms_.insert(control.quarantine.algorithm);
      return;
    }
    if (control.kind != ControlRowKind::kLease) return;
    for (size_t i = 0; i < grid_.size(); ++i) {
      if (grid_[i].algorithm == control.lease.algorithm &&
          grid_[i].dataset == control.lease.dataset) {
        statuses_[i].lease_owner = control.lease.owner;
        statuses_[i].lease_expiry_ms = control.lease.expiry_ms;
        return;
      }
    }
    return;
  }
  if (line[0] == '#') return;  // header
  if (line.size() < kSentinelLen ||
      line.compare(line.size() - kSentinelLen, kSentinelLen, kRowSentinel) !=
          0) {
    return;  // torn cell row
  }
  const std::vector<std::string> fields =
      SplitFields(line.substr(0, line.size() - kSentinelLen));
  // algorithm,dataset,trained,acc,f1,earl,hm,train_s,test_s,retries,
  // quarantined,failure — the bench journal row layout.
  if (fields.size() < 11) return;
  for (size_t i = 0; i < grid_.size(); ++i) {
    if (grid_[i].algorithm == fields[0] && grid_[i].dataset == fields[1]) {
      statuses_[i].terminal = true;
      statuses_[i].trained = fields[2] == "1";
      statuses_[i].quarantined_row = fields[10] == "1";
      return;
    }
  }
}

size_t LeaseTable::NextAvailable(uint64_t now_ms, bool* stolen) const {
  *stolen = false;
  for (size_t i = 0; i < grid_.size(); ++i) {
    const CellStatus& status = statuses_[i];
    if (status.terminal) continue;
    const size_t prerequisite = grid_[i].prerequisite;
    if (prerequisite != kNoCell && !statuses_[prerequisite].terminal) continue;
    if (status.lease_owner.empty()) {
      *stolen = false;
      return i;
    }
    if (status.lease_expiry_ms <= now_ms) {
      // Expired lease: the owner died or stalled past its TTL. Lowest index
      // wins — every worker scanning this journal picks the same victim.
      *stolen = true;
      return i;
    }
  }
  *stolen = false;
  return kNoCell;
}

uint64_t LeaseTable::MsUntilNextExpiry(uint64_t now_ms) const {
  uint64_t soonest = 0;
  for (size_t i = 0; i < grid_.size(); ++i) {
    const CellStatus& status = statuses_[i];
    if (status.terminal || status.lease_owner.empty()) continue;
    if (status.lease_expiry_ms <= now_ms) continue;
    const uint64_t wait = status.lease_expiry_ms - now_ms;
    if (soonest == 0 || wait < soonest) soonest = wait;
  }
  return soonest;
}

bool LeaseTable::AllTerminal() const {
  for (const CellStatus& status : statuses_) {
    if (!status.terminal) return false;
  }
  return !statuses_.empty();
}

WorkerJournal::WorkerJournal(std::string path, std::string expected_header,
                             std::vector<GridCell> grid, std::string owner,
                             LeaseOptions options)
    : path_(std::move(path)),
      lock_path_(path_ + ".lock"),
      expected_header_(std::move(expected_header)),
      owner_(std::move(owner)),
      grid_(std::move(grid)),
      options_(options) {}

Status WorkerJournal::AppendLocked(const std::string& line) const {
  // A crashed writer can leave the file without a trailing newline; starting
  // on a fresh line keeps the torn fragment its own sentinel-less line,
  // which every scanner discards (same discipline as Campaign::AppendCache).
  bool needs_newline = false;
  {
    std::ifstream existing(path_, std::ios::binary);
    if (existing && existing.seekg(-1, std::ios::end)) {
      char last = '\n';
      needs_newline = existing.get(last) && last != '\n';
    }
  }
  std::ofstream out(path_, std::ios::app);
  if (!out) return Status::IOError("fabric: cannot append to " + path_);
  if (needs_newline) out << "\n";
  out << line << "\n";
  out.flush();
  if (!out) return Status::IOError("fabric: short write to " + path_);
  return Status::OK();
}

Status WorkerJournal::EnsureHeader() {
  FileLock lock(lock_path_);
  if (!lock.ok()) {
    return Status::IOError("fabric: cannot lock " + lock_path_);
  }
  std::string first_line;
  bool have_file = false;
  {
    std::ifstream in(path_);
    have_file = static_cast<bool>(in) && std::getline(in, first_line);
  }
  if (!have_file || first_line.empty()) {
    return AppendLocked(expected_header_);
  }
  if (first_line == expected_header_) return Status::OK();
  const int theirs = HeaderVersion(first_line);
  const int mine = HeaderVersion(expected_header_);
  if (mine > 0 && theirs > mine) {
    return Status::FailedPrecondition(
        "journal " + path_ + " was written by a newer build (format v" +
        std::to_string(theirs) + ", this binary writes v" +
        std::to_string(mine) +
        "): upgrade the binary or point the worker at a fresh journal");
  }
  // Same discipline as the single-process campaign: a journal from another
  // config is rotated aside, never appended to.
  const std::string stale_path = path_ + ".stale";
  std::remove(stale_path.c_str());
  if (std::rename(path_.c_str(), stale_path.c_str()) != 0) {
    std::ofstream(path_, std::ios::trunc);
  }
  Logf(LogLevel::kWarn, "fabric",
       "journal %s has a different fingerprint; rotated to %s", path_.c_str(),
       stale_path.c_str());
  return AppendLocked(expected_header_);
}

Result<LeaseTable> WorkerJournal::ScanLocked() const {
  std::ifstream in(path_);
  if (!in) {
    return Status::IOError("fabric: cannot read journal " + path_ +
                           " (EnsureHeader not run?)");
  }
  std::string line;
  if (!std::getline(in, line) || line != expected_header_) {
    return Status::FailedPrecondition(
        "fabric: journal " + path_ + " header changed underneath this worker:"
        "\n  journal:  " + line + "\n  expected: " + expected_header_);
  }
  LeaseTable table(grid_);
  while (std::getline(in, line)) table.ApplyLine(line);
  return table;
}

Result<WorkerJournal::Acquired> WorkerJournal::Acquire() {
  FileLock lock(lock_path_);
  if (!lock.ok()) {
    return Status::IOError("fabric: cannot lock " + lock_path_);
  }
  ETSC_ASSIGN_OR_RETURN(const LeaseTable table, ScanLocked());
  Acquired acquired;
  acquired.statuses = table.statuses();
  acquired.quarantined_algorithms = table.quarantined_algorithms();
  if (table.AllTerminal()) {
    acquired.all_terminal = true;
    return acquired;
  }
  const uint64_t now_ms = MonotonicMs();
  bool stolen = false;
  const size_t index = table.NextAvailable(now_ms, &stolen);
  if (index == kNoCell) {
    const uint64_t until_expiry = table.MsUntilNextExpiry(now_ms);
    acquired.retry_after_ms =
        until_expiry > 0
            ? std::min<double>(static_cast<double>(until_expiry) + 1.0,
                               options_.ttl_ms)
            : options_.heartbeat_ms;
    if (MetricsEnabled()) LeaseWaits().Add(1);
    return acquired;
  }
  const GridCell& cell = grid_[index];
  if (stolen) {
    if (MetricsEnabled()) LeasesStolen().Add(1);
    Logf(LogLevel::kWarn, "fabric",
         "%s: stealing expired lease on %s/%s (cell %zu) from %s",
         owner_.c_str(), cell.algorithm.c_str(), cell.dataset.c_str(), index,
         acquired.statuses[index].lease_owner.c_str());
  } else {
    Logf(LogLevel::kInfo, "fabric", "%s: leased %s/%s (cell %zu)",
         owner_.c_str(), cell.algorithm.c_str(), cell.dataset.c_str(), index);
  }
  LeaseRow row;
  row.algorithm = cell.algorithm;
  row.dataset = cell.dataset;
  row.owner = owner_;
  row.expiry_ms = now_ms + static_cast<uint64_t>(options_.ttl_ms);
  ETSC_RETURN_NOT_OK(AppendLocked(FormatLeaseRow(row)));
  if (MetricsEnabled()) LeasesAcquired().Add(1);
  acquired.index = index;
  acquired.stolen = stolen;
  acquired.statuses[index].lease_owner = owner_;
  acquired.statuses[index].lease_expiry_ms = row.expiry_ms;
  return acquired;
}

Status WorkerJournal::Renew(size_t index) {
  ETSC_CHECK(index < grid_.size());
  FileLock lock(lock_path_);
  if (!lock.ok()) {
    return Status::IOError("fabric: cannot lock " + lock_path_);
  }
  ETSC_ASSIGN_OR_RETURN(const LeaseTable table, ScanLocked());
  const CellStatus& status = table.statuses()[index];
  const GridCell& cell = grid_[index];
  if (status.terminal) {
    return Status::FailedPrecondition(
        "fabric: " + cell.algorithm + "/" + cell.dataset +
        " is already terminal; nothing to renew");
  }
  if (status.lease_owner != owner_) {
    return Status::FailedPrecondition(
        "fabric: lease on " + cell.algorithm + "/" + cell.dataset +
        " now belongs to " + status.lease_owner + "; " + owner_ +
        " must discard its result");
  }
  const uint64_t now_ms = MonotonicMs();
  if (status.lease_expiry_ms <= now_ms) {
    // Late heartbeat: the lease had already expired but nobody stole it yet.
    // Renewing is still correct (we remain the owner of record); count it so
    // operators can tell the TTL is too tight for this machine.
    if (MetricsEnabled()) HeartbeatsMissed().Add(1);
    Logf(LogLevel::kWarn, "fabric",
         "%s: heartbeat on %s/%s arrived %llu ms after lease expiry "
         "(raise ETSC_LEASE_TTL_MS or lower ETSC_HEARTBEAT_MS)",
         owner_.c_str(), cell.algorithm.c_str(), cell.dataset.c_str(),
         static_cast<unsigned long long>(now_ms - status.lease_expiry_ms));
  }
  LeaseRow row;
  row.algorithm = cell.algorithm;
  row.dataset = cell.dataset;
  row.owner = owner_;
  row.expiry_ms = now_ms + static_cast<uint64_t>(options_.ttl_ms);
  ETSC_RETURN_NOT_OK(AppendLocked(FormatLeaseRow(row)));
  if (MetricsEnabled()) Heartbeats().Add(1);
  return Status::OK();
}

Status WorkerJournal::PublishQuarantine(const std::string& algorithm) {
  FileLock lock(lock_path_);
  if (!lock.ok()) {
    return Status::IOError("fabric: cannot lock " + lock_path_);
  }
  ETSC_ASSIGN_OR_RETURN(const LeaseTable table, ScanLocked());
  if (table.quarantined_algorithms().count(algorithm) > 0) {
    return Status::OK();  // another worker already published it
  }
  QuarantineRow row;
  row.algorithm = algorithm;
  row.owner = owner_;
  ETSC_RETURN_NOT_OK(AppendLocked(FormatQuarantineRow(row)));
  if (MetricsEnabled()) QuarantinesPublished().Add(1);
  Logf(LogLevel::kWarn, "fabric",
       "%s: published quarantine for %s — other workers will skip its "
       "remaining cells",
       owner_.c_str(), algorithm.c_str());
  return Status::OK();
}

Status WorkerJournal::Complete(size_t index, const std::string& cell_row) {
  ETSC_CHECK(index < grid_.size());
  FileLock lock(lock_path_);
  if (!lock.ok()) {
    return Status::IOError("fabric: cannot lock " + lock_path_);
  }
  return AppendLocked(cell_row);
}

LeaseKeeper::LeaseKeeper(WorkerJournal* journal, size_t cell_index)
    : journal_(journal), cell_index_(cell_index) {
  thread_ = std::thread([this] { Loop(); });
}

LeaseKeeper::~LeaseKeeper() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void LeaseKeeper::Loop() {
  const auto cadence = std::chrono::duration<double, std::milli>(
      journal_->options().heartbeat_ms);
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (cv_.wait_for(lock, cadence, [this] { return stop_; })) break;
    lock.unlock();
    const Status status = journal_->Renew(cell_index_);
    if (status.code() == StatusCode::kFailedPrecondition) {
      // Stolen (or already terminal via a thief): stop renewing and tell the
      // worker its in-flight result is no longer the row of record.
      lost_.store(true, std::memory_order_relaxed);
      Logf(LogLevel::kWarn, "fabric", "heartbeat stopped: %s",
           status.message().c_str());
      return;
    }
    if (!status.ok()) {
      // Transient I/O trouble: keep trying — the lease survives until TTL.
      Logf(LogLevel::kWarn, "fabric", "heartbeat failed: %s",
           status.ToString().c_str());
    }
    lock.lock();
  }
}

}  // namespace etsc::fabric
