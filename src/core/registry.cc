#include "core/registry.h"

namespace etsc {

ClassifierRegistry& ClassifierRegistry::Global() {
  static ClassifierRegistry* registry = new ClassifierRegistry();
  return *registry;
}

Status ClassifierRegistry::Register(const std::string& name, Factory factory) {
  if (factories_.count(name) > 0) {
    return Status::InvalidArgument("classifier '" + name + "' already registered");
  }
  factories_[name] = std::move(factory);
  return Status::OK();
}

Result<std::unique_ptr<EarlyClassifier>> ClassifierRegistry::Create(
    const std::string& name) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    std::string known;
    for (const auto& [registered, factory] : factories_) {
      if (!known.empty()) known += ", ";
      known += registered;
    }
    return Status::NotFound("classifier '" + name +
                            "' is not registered (registered: " + known + ")");
  }
  return it->second();
}

bool ClassifierRegistry::Contains(const std::string& name) const {
  return factories_.count(name) > 0;
}

std::vector<std::string> ClassifierRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;
}

namespace internal {

Registrar::Registrar(const std::string& name,
                     ClassifierRegistry::Factory factory) {
  Status status = ClassifierRegistry::Global().Register(name, std::move(factory));
  ETSC_CHECK(status.ok());
}

}  // namespace internal
}  // namespace etsc
