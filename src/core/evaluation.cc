#include "core/evaluation.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

#include "core/counters.h"
#include "core/log.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "core/trace.h"
#include "core/voting.h"

namespace etsc {

namespace {

// Evaluation metrics (DESIGN.md sec 9): how many folds ran, how many Fits
// failed, how many predictions were degraded to full-length misses.
Counter& FoldsRun() {
  static Counter& c = MetricRegistry::Global().counter("eval.folds_run");
  return c;
}
Counter& FitFailures() {
  static Counter& c = MetricRegistry::Global().counter("eval.fit_failures");
  return c;
}
Counter& PredictionsMade() {
  static Counter& c = MetricRegistry::Global().counter("eval.predictions");
  return c;
}
Counter& DegradedPredictions() {
  static Counter& c =
      MetricRegistry::Global().counter("eval.degraded_predictions");
  return c;
}
Counter& FitsSkipped() {
  static Counter& c = MetricRegistry::Global().counter("eval.fits_skipped");
  return c;
}
Counter& FitRetries() {
  static Counter& c = MetricRegistry::Global().counter("supervisor.retries");
  return c;
}
Histogram& BackoffMs() {
  static Histogram& h =
      MetricRegistry::Global().histogram("supervisor.backoff_ms");
  return h;
}

/// Shared prediction loop of EvaluateSplit and EvaluateFitted: scores
/// `classifier` (already fitted) on `test`, degrading failed predictions to
/// full-length misses. With `watchdog_grace` > 0 every prediction runs under
/// a watchdog Watch, so a hung PredictEarly is cancelled past
/// grace * predict_budget and degrades like any other overrun.
void RunTestSet(const Dataset& test, const EarlyClassifier& classifier,
                FoldOutcome* outcome, double watchdog_grace = 0.0) {
  std::vector<int> truth;
  std::vector<int> predicted;
  std::vector<size_t> prefixes;
  std::vector<size_t> lengths;
  Stopwatch test_timer;
  const auto predict_supervised =
      [&](const TimeSeries& ts) -> Result<EarlyPrediction> {
    if (watchdog_grace <= 0.0) return classifier.PredictEarly(ts);
    Watchdog::Watch watch("predict:" + classifier.name(),
                          classifier.predict_budget_seconds(), watchdog_grace);
    return classifier.PredictEarly(ts);
  };
  for (size_t i = 0; i < test.size(); ++i) {
    const TimeSeries& ts = test.instance(i);
    TraceSpan predict_span("eval", "PredictEarly");
    auto pred = predict_supervised(ts);
    if (!pred.ok()) {
      // A prediction failure (predict deadline overrun, watchdog
      // cancellation, internal fault) counts as consuming the full series
      // and predicting an impossible label (always wrong); it must not crash
      // an entire evaluation campaign. The first failure message is surfaced
      // on the outcome.
      ++outcome->num_failed_predictions;
      if (outcome->failure.empty()) {
        outcome->failure = pred.status().ToString();
        outcome->failure_code = pred.status().code();
      }
      truth.push_back(test.label(i));
      predicted.push_back(std::numeric_limits<int>::min());
      prefixes.push_back(ts.length());
      lengths.push_back(ts.length());
      continue;
    }
    truth.push_back(test.label(i));
    predicted.push_back(pred->label);
    // Clamp: a buggy/faulty classifier may report consuming more than it was
    // given; the metrics contract requires prefix <= length.
    prefixes.push_back(std::min(pred->prefix_length, ts.length()));
    lengths.push_back(ts.length());
  }
  outcome->test_seconds = test_timer.Seconds();
  outcome->num_test = test.size();
  outcome->scores = ComputeScores(truth, predicted, prefixes, lengths);
  if (MetricsEnabled()) {
    PredictionsMade().Add(test.size());
    if (outcome->num_failed_predictions > 0) {
      DegradedPredictions().Add(outcome->num_failed_predictions);
    }
  }
}

}  // namespace

double EvaluationResult::CpuSeconds() const {
  double sum = 0.0;
  for (const auto& fold : folds) sum += fold.train_seconds + fold.test_seconds;
  return sum;
}

bool EvaluationResult::trained() const {
  if (folds.empty()) return false;
  return std::all_of(folds.begin(), folds.end(),
                     [](const FoldOutcome& f) { return f.trained; });
}

EvalScores EvaluationResult::MeanScores() const {
  EvalScores mean;
  size_t n = 0;
  double acc = 0, f1 = 0, early = 0, hm = 0;
  for (const auto& fold : folds) {
    if (!fold.trained) continue;
    // An empty test fold carries explicit NaN scores (core/metrics.cc); it
    // must not drag the mean to NaN — skip it like an untrained fold.
    if (std::isnan(fold.scores.accuracy)) continue;
    acc += fold.scores.accuracy;
    f1 += fold.scores.f1;
    early += fold.scores.earliness;
    hm += fold.scores.harmonic_mean;
    ++n;
  }
  if (n == 0) return mean;
  mean.accuracy = acc / static_cast<double>(n);
  mean.f1 = f1 / static_cast<double>(n);
  mean.earliness = early / static_cast<double>(n);
  mean.harmonic_mean = hm / static_cast<double>(n);
  return mean;
}

double EvaluationResult::MeanTrainSeconds() const {
  double sum = 0;
  size_t n = 0;
  for (const auto& fold : folds) {
    if (!fold.trained) continue;
    sum += fold.train_seconds;
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double EvaluationResult::MeanTestSecondsPerInstance() const {
  double sum = 0;
  size_t n = 0;
  for (const auto& fold : folds) {
    if (!fold.trained || fold.num_test == 0) continue;
    sum += fold.test_seconds / static_cast<double>(fold.num_test);
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

namespace {

/// The supervised Fit+score path behind EvaluateSplit and RunFold: Fit is
/// re-attempted on the SAME instance for transient failures (bounded by the
/// policy, backed off deterministically from `backoff_seed`) and optionally
/// watched for hangs. Deterministic failures break out on the first attempt.
FoldOutcome SupervisedSplit(const Dataset& train, const Dataset& test,
                            EarlyClassifier* classifier,
                            const RetryPolicy& retry, double watchdog_grace,
                            uint64_t backoff_seed) {
  FoldOutcome outcome;
  Stopwatch train_timer;
  Status fit_status;
  int attempts = 0;
  for (;;) {
    {
      TraceSpan fit_span("eval", [&] { return "Fit:" + classifier->name(); });
      if (watchdog_grace > 0.0) {
        Watchdog::Watch watch("fit:" + classifier->name(),
                              classifier->train_budget_seconds(),
                              watchdog_grace);
        fit_status = classifier->Fit(train);
      } else {
        fit_status = classifier->Fit(train);
      }
    }
    ++attempts;
    if (fit_status.ok()) break;
    if (attempts > retry.max_retries ||
        !IsTransientFailure(fit_status.code())) {
      break;
    }
    // The delay schedule is a pure function of (policy, seed, attempt):
    // reproducible logs and telemetry, and — because results never depend on
    // *when* a retry ran — bit-identical scores at any pool width.
    const double delay_ms = BackoffDelayMs(retry, backoff_seed, attempts);
    if (MetricsEnabled()) {
      FitRetries().Add(1);
      BackoffMs().Record(delay_ms);
    }
    Logf(LogLevel::kInfo, "supervisor",
         "retrying %s fit (attempt %d failed: %s) after %.1fms backoff",
         classifier->name().c_str(), attempts, fit_status.ToString().c_str(),
         delay_ms);
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delay_ms));
  }
  outcome.train_seconds = train_timer.Seconds();
  outcome.fit_attempts = attempts;
  if (!fit_status.ok()) {
    if (MetricsEnabled()) FitFailures().Add(1);
    outcome.trained = false;
    outcome.failure = fit_status.ToString();
    outcome.failure_code = fit_status.code();
    return outcome;
  }
  outcome.trained = true;
  RunTestSet(test, *classifier, &outcome, watchdog_grace);
  return outcome;
}

}  // namespace

FoldOutcome EvaluateSplit(const Dataset& train, const Dataset& test,
                          EarlyClassifier* classifier, double watchdog_grace) {
  return SupervisedSplit(train, test, classifier, RetryPolicy{}, watchdog_grace,
                         /*backoff_seed=*/0);
}

FoldOutcome EvaluateFitted(const Dataset& test,
                           const EarlyClassifier& classifier,
                           double watchdog_grace) {
  FoldOutcome outcome;
  outcome.trained = true;
  RunTestSet(test, classifier, &outcome, watchdog_grace);
  return outcome;
}

namespace {

/// Immutable inputs of one fold, materialised before dispatch: the Subset
/// copies happen exactly once (not per iteration inside the parallel region)
/// and the fold's RNG seed is split from options.seed by index, so parallel
/// and serial runs see bit-identical data and seeds.
struct FoldInput {
  Dataset train;
  Dataset test;
  uint64_t seed = 0;
  size_t fold_index = 0;
  /// Fingerprint of the WHOLE cross-validated dataset (not the subset): with
  /// fold_index, num_folds, and the evaluation seed it pins down this fold's
  /// exact train split for the model-cache key. 0 when caching is off.
  uint64_t dataset_fingerprint = 0;
};

FoldOutcome RunFold(const FoldInput& input, const EarlyClassifier& prototype,
                    const EvaluationOptions& options) {
  TraceSpan fold_span("eval", [&] { return "fold:" + prototype.name(); });
  if (MetricsEnabled()) FoldsRun().Add(1);
  std::unique_ptr<EarlyClassifier> classifier = prototype.CloneUntrained();
  if (options.wrap_univariate_with_voting) {
    classifier = WrapForDataset(std::move(classifier), input.train);
  }
  // Budgets are set once, on the final (possibly voting-wrapped) classifier;
  // VotingEarlyClassifier::Fit propagates them to every voter it clones.
  classifier->set_train_budget_seconds(options.train_budget_seconds);
  classifier->set_predict_budget_seconds(options.predict_budget_seconds);
  FoldOutcome outcome;
  ModelCacheKey key;
  bool restored = false;
  if (options.model_cache != nullptr) {
    // The key uses the fingerprint of the FINAL classifier (after voting
    // wrapping), so univariate-on-multivariate entries never alias plain ones.
    key.config_fingerprint = classifier->config_fingerprint();
    key.dataset_fingerprint = input.dataset_fingerprint;
    key.fold = input.fold_index;
    key.num_folds = options.num_folds;
    key.seed = options.seed;
    restored = options.model_cache->TryLoad(key, classifier.get());
  }
  if (restored) {
    if (MetricsEnabled()) FitsSkipped().Add(1);
    outcome = EvaluateFitted(input.test, *classifier, options.watchdog_grace);
  } else {
    outcome = SupervisedSplit(input.train, input.test, classifier.get(),
                              options.retry, options.watchdog_grace,
                              /*backoff_seed=*/input.seed);
    if (options.model_cache != nullptr && outcome.trained) {
      const Status stored = options.model_cache->Store(key, *classifier);
      if (!stored.ok()) {
        // A failed store only costs the next run a refit; the evaluation
        // result is unaffected.
        Logf(LogLevel::kWarn, "eval", "model cache store failed: %s",
             stored.ToString().c_str());
      }
    }
  }
  outcome.fold_seed = input.seed;
  return outcome;
}

}  // namespace

EvaluationResult CrossValidate(const Dataset& dataset,
                               const EarlyClassifier& prototype,
                               const EvaluationOptions& options) {
  EvaluationResult result;
  result.algorithm = prototype.name();
  result.dataset = dataset.name();
  Stopwatch wall;

  Rng rng(options.seed);
  const auto folds = StratifiedKFold(dataset, options.num_folds, &rng);
  // Hashing every observation is cheap next to training, but pointless when
  // caching is off.
  const uint64_t dataset_fingerprint =
      options.model_cache != nullptr ? dataset.Fingerprint() : 0;
  std::vector<FoldInput> inputs;
  inputs.reserve(folds.size());
  for (size_t f = 0; f < folds.size(); ++f) {
    inputs.push_back({dataset.Subset(folds[f].train),
                      dataset.Subset(folds[f].test),
                      SplitSeed(options.seed, f), f, dataset_fingerprint});
  }

  if (MaxParallelism() == 1) {
    // Exact serial path: folds after the first training failure are never
    // attempted (the paper's 48-hour rule would kill the whole run anyway).
    for (const FoldInput& input : inputs) {
      result.folds.push_back(RunFold(input, prototype, options));
      if (options.skip_folds_after_failure && !result.folds.back().trained) {
        break;
      }
    }
  } else {
    // Parallel path: every fold is an independent task over const inputs.
    // To keep results identical to the serial path, the outcome vector is
    // truncated after the first untrained fold (those folds were computed,
    // but a serial run would not have reported them).
    std::vector<FoldOutcome> outcomes(inputs.size());
    ParallelFor(inputs.size(), [&](size_t f) {
      outcomes[f] = RunFold(inputs[f], prototype, options);
    });
    for (FoldOutcome& outcome : outcomes) {
      const bool failed = !outcome.trained;
      result.folds.push_back(std::move(outcome));
      if (options.skip_folds_after_failure && failed) break;
    }
  }
  result.wall_seconds = wall.Seconds();
  return result;
}

}  // namespace etsc
