#include "core/evaluation.h"

#include <algorithm>

#include "core/rng.h"
#include "core/voting.h"

namespace etsc {

bool EvaluationResult::trained() const {
  if (folds.empty()) return false;
  return std::all_of(folds.begin(), folds.end(),
                     [](const FoldOutcome& f) { return f.trained; });
}

EvalScores EvaluationResult::MeanScores() const {
  EvalScores mean;
  size_t n = 0;
  double acc = 0, f1 = 0, early = 0, hm = 0;
  for (const auto& fold : folds) {
    if (!fold.trained) continue;
    acc += fold.scores.accuracy;
    f1 += fold.scores.f1;
    early += fold.scores.earliness;
    hm += fold.scores.harmonic_mean;
    ++n;
  }
  if (n == 0) return mean;
  mean.accuracy = acc / static_cast<double>(n);
  mean.f1 = f1 / static_cast<double>(n);
  mean.earliness = early / static_cast<double>(n);
  mean.harmonic_mean = hm / static_cast<double>(n);
  return mean;
}

double EvaluationResult::MeanTrainSeconds() const {
  double sum = 0;
  size_t n = 0;
  for (const auto& fold : folds) {
    if (!fold.trained) continue;
    sum += fold.train_seconds;
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double EvaluationResult::MeanTestSecondsPerInstance() const {
  double sum = 0;
  size_t n = 0;
  for (const auto& fold : folds) {
    if (!fold.trained || fold.num_test == 0) continue;
    sum += fold.test_seconds / static_cast<double>(fold.num_test);
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

FoldOutcome EvaluateSplit(const Dataset& train, const Dataset& test,
                          EarlyClassifier* classifier) {
  FoldOutcome outcome;
  Stopwatch train_timer;
  Status fit_status = classifier->Fit(train);
  outcome.train_seconds = train_timer.Seconds();
  if (!fit_status.ok()) {
    outcome.trained = false;
    outcome.failure = fit_status.ToString();
    return outcome;
  }
  outcome.trained = true;

  std::vector<int> truth;
  std::vector<int> predicted;
  std::vector<size_t> prefixes;
  std::vector<size_t> lengths;
  Stopwatch test_timer;
  for (size_t i = 0; i < test.size(); ++i) {
    const TimeSeries& ts = test.instance(i);
    auto pred = classifier->PredictEarly(ts);
    if (!pred.ok()) {
      // A prediction failure (predict deadline overrun, internal fault)
      // counts as consuming the full series and predicting an impossible
      // label (always wrong); it must not crash an entire evaluation
      // campaign. The first failure message is surfaced on the outcome.
      ++outcome.num_failed_predictions;
      if (outcome.failure.empty()) outcome.failure = pred.status().ToString();
      truth.push_back(test.label(i));
      predicted.push_back(std::numeric_limits<int>::min());
      prefixes.push_back(ts.length());
      lengths.push_back(ts.length());
      continue;
    }
    truth.push_back(test.label(i));
    predicted.push_back(pred->label);
    // Clamp: a buggy/faulty classifier may report consuming more than it was
    // given; the metrics contract requires prefix <= length.
    prefixes.push_back(std::min(pred->prefix_length, ts.length()));
    lengths.push_back(ts.length());
  }
  outcome.test_seconds = test_timer.Seconds();
  outcome.num_test = test.size();
  outcome.scores = ComputeScores(truth, predicted, prefixes, lengths);
  return outcome;
}

EvaluationResult CrossValidate(const Dataset& dataset,
                               const EarlyClassifier& prototype,
                               const EvaluationOptions& options) {
  EvaluationResult result;
  result.algorithm = prototype.name();
  result.dataset = dataset.name();

  Rng rng(options.seed);
  const auto folds = StratifiedKFold(dataset, options.num_folds, &rng);
  for (const auto& split : folds) {
    Dataset train = dataset.Subset(split.train);
    Dataset test = dataset.Subset(split.test);

    std::unique_ptr<EarlyClassifier> classifier = prototype.CloneUntrained();
    classifier->set_train_budget_seconds(options.train_budget_seconds);
    classifier->set_predict_budget_seconds(options.predict_budget_seconds);
    if (options.wrap_univariate_with_voting) {
      classifier = WrapForDataset(std::move(classifier), train);
      classifier->set_train_budget_seconds(options.train_budget_seconds);
      classifier->set_predict_budget_seconds(options.predict_budget_seconds);
    }
    result.folds.push_back(EvaluateSplit(train, test, classifier.get()));
    if (options.skip_folds_after_failure && !result.folds.back().trained) {
      break;
    }
  }
  return result;
}

}  // namespace etsc
