#ifndef ETSC_CORE_JSON_H_
#define ETSC_CORE_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/status.h"

namespace etsc::json {

/// Escapes `raw` for embedding inside a JSON string literal (quotes not
/// included): backslash, quote, and control characters become escape
/// sequences, everything else passes through byte-for-byte.
std::string Escape(const std::string& raw);

/// Minimal streaming writer producing compact, always-valid JSON. Structural
/// calls (BeginObject/EndObject/BeginArray/EndArray) must nest correctly —
/// misuse is a programming error (ETSC_DCHECK), not a runtime Status.
///
/// Doubles are written at max_digits10 so values round-trip bit-exactly;
/// NaN and infinities, which JSON cannot represent, are written as null.
class Writer {
 public:
  Writer& BeginObject();
  Writer& EndObject();
  Writer& BeginArray();
  Writer& EndArray();

  /// Object member key; must be followed by exactly one value (or Begin*).
  Writer& Key(const std::string& key);

  Writer& String(const std::string& value);
  Writer& Number(double value);
  Writer& Number(uint64_t value);
  Writer& Number(int64_t value);
  Writer& Number(int value) { return Number(static_cast<int64_t>(value)); }
  Writer& Bool(bool value);
  Writer& Null();

  /// Emits `serialized` verbatim as the next value. The caller guarantees it
  /// is one complete, valid JSON value (e.g. another Writer's str()) — used
  /// to splice the metric-registry snapshot into the campaign report.
  Writer& RawValue(const std::string& serialized);

  /// Shorthand for Key(key) followed by the value.
  template <typename T>
  Writer& Field(const std::string& key, const T& value) {
    Key(key);
    if constexpr (std::is_same_v<T, bool>) {
      return Bool(value);
    } else if constexpr (std::is_convertible_v<T, std::string>) {
      return String(value);
    } else {
      return Number(value);
    }
  }

  const std::string& str() const { return out_; }

 private:
  void BeforeValue();

  std::string out_;
  /// One entry per open container: true once the container holds a value
  /// (so the next one is comma-separated).
  std::vector<bool> has_value_;
  bool pending_key_ = false;
};

/// A parsed JSON value. Object keys are unique (later duplicates win) and
/// iterate in sorted order; `null` parses to kNull and reads back as NaN via
/// AsNumber(), matching how Writer encodes non-finite doubles.
struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  bool is_null() const { return type == Type::kNull; }
  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }

  /// Number of a kNumber, NaN for kNull (the Writer's non-finite encoding),
  /// aborts otherwise.
  double AsNumber() const;
  const std::string& AsString() const;
  bool AsBool() const;

  /// Member lookup on an object; null when missing or not an object.
  const Value* Find(const std::string& key) const;
};

/// Parses one complete JSON document (trailing whitespace allowed). Returns
/// InvalidArgument with position info on malformed input — used by tests to
/// round-trip the trace file and the campaign report.
Result<Value> Parse(const std::string& text);

}  // namespace etsc::json

#endif  // ETSC_CORE_JSON_H_
