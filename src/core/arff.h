#ifndef ETSC_CORE_ARFF_H_
#define ETSC_CORE_ARFF_H_

#include <string>

#include "core/dataset.h"
#include "core/status.h"

namespace etsc {

/// ARFF support (paper Sec. 5.5: "files of type .arff are also supported").
///
/// The accepted dialect is the one the UEA & UCR archive uses for univariate
/// series: a header of `@attribute att_t numeric` declarations followed by a
/// final class attribute (`@attribute target {a,b,...}` or `... numeric` /
/// `... string`), then `@data` rows of comma-separated values whose last
/// field is the class. Nominal class values are mapped to 0-based integer
/// labels in declaration order (or first-appearance order when the class
/// attribute is not nominal). '?' loads as NaN. Sparse ARFF rows and
/// relational (multivariate) attributes are not supported; multivariate
/// datasets use the CSV format (core/csv.h) instead.
Result<Dataset> ParseArff(const std::string& content,
                          const std::string& name = "arff");

/// Loads an ARFF file from disk.
Result<Dataset> LoadArff(const std::string& path);

}  // namespace etsc

#endif  // ETSC_CORE_ARFF_H_
