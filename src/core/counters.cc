#include "core/counters.h"

#include <cmath>

#include "core/json.h"

namespace etsc {

namespace metrics_internal {
std::atomic<bool> g_enabled{true};
}  // namespace metrics_internal

void SetMetricsEnabled(bool enabled) {
  metrics_internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

void Gauge::Set(int64_t value) {
  value_.store(value, std::memory_order_relaxed);
  RaiseMax(value);
}

void Gauge::Add(int64_t delta) {
  const int64_t now = value_.fetch_add(delta, std::memory_order_relaxed) + delta;
  RaiseMax(now);
}

void Gauge::RaiseMax(int64_t candidate) {
  int64_t seen = max_.load(std::memory_order_relaxed);
  while (candidate > seen &&
         !max_.compare_exchange_weak(seen, candidate,
                                     std::memory_order_relaxed)) {
  }
}

void Gauge::Reset() {
  value_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

namespace {

size_t BucketIndex(double value) {
  if (!(value >= 1e-9)) return Histogram::kUnderflow;  // negatives, NaN too
  double bound = 1e-8;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    if (value < bound) return i;
    bound *= 10.0;
  }
  return Histogram::kOverflow;
}

}  // namespace

void Histogram::Record(double value) {
  std::lock_guard<std::mutex> lock(mu_);
  ++count_;
  sum_ += value;
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
  ++buckets_[BucketIndex(value)];
}

uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_;
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

double Histogram::mean() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ == 0 ? std::nan("") : sum_ / static_cast<double>(count_);
}

uint64_t Histogram::bucket(size_t index) const {
  std::lock_guard<std::mutex> lock(mu_);
  return index < kNumBuckets + 2 ? buckets_[index] : 0;
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  count_ = 0;
  sum_ = 0.0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
  for (auto& b : buckets_) b = 0;
}

// ---------------------------------------------------------------------------
// MetricRegistry
// ---------------------------------------------------------------------------

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry* const registry = new MetricRegistry();
  return *registry;
}

Counter& MetricRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string MetricRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  json::Writer writer;
  writer.BeginObject();
  writer.Key("counters").BeginObject();
  for (const auto& [name, counter] : counters_) {
    writer.Key(name).Number(counter->value());
  }
  writer.EndObject();
  writer.Key("gauges").BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    writer.Key(name).BeginObject();
    writer.Key("value").Number(gauge->value());
    writer.Key("max").Number(gauge->max_value());
    writer.EndObject();
  }
  writer.EndObject();
  writer.Key("histograms").BeginObject();
  for (const auto& [name, histogram] : histograms_) {
    writer.Key(name).BeginObject();
    writer.Key("count").Number(histogram->count());
    writer.Key("sum").Number(histogram->sum());
    writer.Key("min").Number(histogram->min());
    writer.Key("max").Number(histogram->max());
    writer.Key("mean").Number(histogram->mean());
    writer.EndObject();
  }
  writer.EndObject();
  writer.EndObject();
  return writer.str();
}

void MetricRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace etsc
