#include "core/counters.h"

#include <cmath>

#include "core/json.h"

namespace etsc {

namespace metrics_internal {
std::atomic<bool> g_enabled{true};
}  // namespace metrics_internal

void SetMetricsEnabled(bool enabled) {
  metrics_internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

void Gauge::Set(int64_t value) {
  value_.store(value, std::memory_order_relaxed);
  RaiseMax(value);
}

void Gauge::Add(int64_t delta) {
  const int64_t now = value_.fetch_add(delta, std::memory_order_relaxed) + delta;
  RaiseMax(now);
}

void Gauge::RaiseMax(int64_t candidate) {
  int64_t seen = max_.load(std::memory_order_relaxed);
  while (candidate > seen &&
         !max_.compare_exchange_weak(seen, candidate,
                                     std::memory_order_relaxed)) {
  }
}

void Gauge::Reset() {
  value_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

namespace {

size_t BucketIndex(double value) {
  if (!(value >= 0.0)) return Histogram::kUnderflow;  // negatives, NaN
  // Zero and sub-nanosecond values are legitimate coarse-clock measurements
  // ("faster than one tick"): they belong in the fastest decade bucket, not
  // in underflow next to clock bugs.
  double bound = 1e-8;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    if (value < bound) return i;
    bound *= 10.0;
  }
  return Histogram::kOverflow;
}

/// Lower/upper bound of decade bucket i ([0, 1e-8) for i = 0).
double BucketLowerBound(size_t i) {
  return i == 0 ? 0.0 : 1e-9 * std::pow(10.0, static_cast<double>(i));
}

double BucketUpperBound(size_t i) {
  return 1e-8 * std::pow(10.0, static_cast<double>(i));
}

}  // namespace

void Histogram::Record(double value) {
  std::lock_guard<std::mutex> lock(mu_);
  ++count_;
  sum_ += value;
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
  ++buckets_[BucketIndex(value)];
}

uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_;
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

double Histogram::mean() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ == 0 ? std::nan("") : sum_ / static_cast<double>(count_);
}

uint64_t Histogram::bucket(size_t index) const {
  std::lock_guard<std::mutex> lock(mu_);
  return index < kNumBuckets + 2 ? buckets_[index] : 0;
}

double Histogram::Quantile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) return std::nan("");
  q = std::min(1.0, std::max(0.0, q));
  // The endpoints are known exactly; only interior quantiles estimate.
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  // Rank of the q-th value (1-based) and the bucket that contains it, in
  // recording order underflow -> decades -> overflow.
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(
                                std::ceil(q * static_cast<double>(count_))));
  uint64_t seen = buckets_[kUnderflow];
  if (rank <= seen) return min_;  // inside underflow: only min_ is meaningful
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    if (rank <= seen + buckets_[i]) {
      // Interpolate inside the bucket: geometric across a decade (linear for
      // the zero-based first bucket), clamped to the observed extremes.
      const double f = (static_cast<double>(rank - seen) - 0.5) /
                       static_cast<double>(buckets_[i]);
      const double lo = BucketLowerBound(i);
      const double hi = BucketUpperBound(i);
      const double v = (lo > 0.0) ? lo * std::pow(hi / lo, f)
                                  : lo + f * (hi - lo);
      return std::min(std::max(v, min_), max_);
    }
    seen += buckets_[i];
  }
  return max_;  // inside overflow (or rounding): the observed maximum
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  count_ = 0;
  sum_ = 0.0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
  for (auto& b : buckets_) b = 0;
}

// ---------------------------------------------------------------------------
// MetricRegistry
// ---------------------------------------------------------------------------

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry* const registry = new MetricRegistry();
  return *registry;
}

Counter& MetricRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string MetricRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  json::Writer writer;
  writer.BeginObject();
  writer.Key("counters").BeginObject();
  for (const auto& [name, counter] : counters_) {
    writer.Key(name).Number(counter->value());
  }
  writer.EndObject();
  writer.Key("gauges").BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    writer.Key(name).BeginObject();
    writer.Key("value").Number(gauge->value());
    writer.Key("max").Number(gauge->max_value());
    writer.EndObject();
  }
  writer.EndObject();
  writer.Key("histograms").BeginObject();
  for (const auto& [name, histogram] : histograms_) {
    writer.Key(name).BeginObject();
    writer.Key("count").Number(histogram->count());
    writer.Key("sum").Number(histogram->sum());
    writer.Key("min").Number(histogram->min());
    writer.Key("max").Number(histogram->max());
    writer.Key("mean").Number(histogram->mean());
    writer.Key("p50").Number(histogram->Quantile(0.5));
    writer.Key("p99").Number(histogram->Quantile(0.99));
    writer.EndObject();
  }
  writer.EndObject();
  writer.EndObject();
  return writer.str();
}

void MetricRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace etsc
