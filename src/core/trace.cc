#include "core/trace.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

#include "core/json.h"

namespace etsc::trace {

namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

namespace {

uint64_t ProcessId();
std::mutex& ProcessLabelMutex();
std::string& ProcessLabelStorage();

struct TraceEvent {
  std::string name;
  const char* category;
  uint64_t ts_us;
  uint64_t dur_us;
  uint32_t tid;
};

/// One thread's span buffer. Owned jointly by the thread (via thread_local
/// shared_ptr) and the collector, so spans survive thread exit — pool workers
/// are joined before the atexit writer runs, but their events must not die
/// with them.
struct ThreadBuffer {
  explicit ThreadBuffer(uint32_t tid) : tid(tid) {}
  const uint32_t tid;
  std::mutex mu;  // uncontended except against the exporter
  std::vector<TraceEvent> events;
};

/// Leaked singleton: reachable from atexit hooks and from worker threads
/// regardless of static destruction order.
class Collector {
 public:
  static Collector& Global() {
    static Collector* const collector = new Collector();
    return *collector;
  }

  ThreadBuffer& Local() {
    thread_local std::shared_ptr<ThreadBuffer> buffer = Register();
    return *buffer;
  }

  size_t EventCount() {
    std::lock_guard<std::mutex> lock(mu_);
    size_t n = 0;
    for (const auto& buffer : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      n += buffer->events.size();
    }
    return n;
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& buffer : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      buffer->events.clear();
    }
  }

  std::string ToChromeJson() {
    json::Writer writer;
    writer.BeginObject();
    writer.Key("traceEvents").BeginArray();
    {
      std::lock_guard<std::mutex> label_lock(ProcessLabelMutex());
      const std::string& label = ProcessLabelStorage();
      if (!label.empty()) {
        // Chrome trace metadata: names this pid's lane in the viewer.
        writer.BeginObject();
        writer.Key("name").String("process_name");
        writer.Key("ph").String("M");
        writer.Key("pid").Number(ProcessId());
        writer.Key("tid").Number(uint64_t{0});
        writer.Key("args").BeginObject();
        writer.Key("name").String(label);
        writer.EndObject();
        writer.EndObject();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& buffer : buffers_) {
        std::lock_guard<std::mutex> buffer_lock(buffer->mu);
        for (const TraceEvent& event : buffer->events) {
          writer.BeginObject();
          writer.Key("name").String(event.name);
          writer.Key("cat").String(event.category);
          writer.Key("ph").String("X");
          writer.Key("ts").Number(event.ts_us);
          writer.Key("dur").Number(event.dur_us);
          writer.Key("pid").Number(ProcessId());
          writer.Key("tid").Number(uint64_t{event.tid});
          writer.EndObject();
        }
      }
    }
    writer.EndArray();
    writer.Key("displayTimeUnit").String("ms");
    writer.EndObject();
    return writer.str();
  }

 private:
  std::shared_ptr<ThreadBuffer> Register() {
    std::lock_guard<std::mutex> lock(mu_);
    auto buffer = std::make_shared<ThreadBuffer>(next_tid_++);
    buffers_.push_back(buffer);
    return buffer;
  }

  std::mutex mu_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  uint32_t next_tid_ = 1;
};

/// The real pid: worker processes tracing into per-worker files get distinct
/// lanes when their traces are merged into one timeline.
uint64_t ProcessId() {
  static const uint64_t pid = static_cast<uint64_t>(::getpid());
  return pid;
}

std::mutex& ProcessLabelMutex() {
  static std::mutex* const mu = new std::mutex();
  return *mu;
}

std::string& ProcessLabelStorage() {
  static std::string* const label = new std::string();
  return *label;
}

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

std::string& EnvPathStorage() {
  static std::string* const path = new std::string();
  return *path;
}

void WriteEnvTraceAtExit() {
  const Status status = WriteChromeTrace(EnvPathStorage());
  if (!status.ok()) {
    std::fprintf(stderr, "[trace] failed to write ETSC_TRACE file: %s\n",
                 status.ToString().c_str());
  }
}

/// Reads ETSC_TRACE once at static-initialisation time. trace.cc is always
/// linked (evaluation and the campaign call into it), so the initializer runs
/// in every binary.
struct EnvTraceInit {
  EnvTraceInit() {
    TraceEpoch();  // pin the epoch before any span
    const char* path = std::getenv("ETSC_TRACE");
    if (path != nullptr && *path != '\0') {
      EnvPathStorage() = path;
      SetEnabled(true);
      std::atexit(WriteEnvTraceAtExit);
    }
  }
};
const EnvTraceInit g_env_trace_init;

}  // namespace

void SetEnabled(bool enabled) {
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

uint64_t NowMicros() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   std::chrono::steady_clock::now() - TraceEpoch())
                                   .count());
}

void SetProcessLabel(std::string label) {
  std::lock_guard<std::mutex> lock(ProcessLabelMutex());
  ProcessLabelStorage() = std::move(label);
}

size_t EventCount() { return Collector::Global().EventCount(); }

void Clear() { Collector::Global().Clear(); }

std::string ToChromeJson() { return Collector::Global().ToChromeJson(); }

Status WriteChromeTrace(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IOError("trace: cannot open " + path);
  out << ToChromeJson() << "\n";
  out.flush();
  if (!out) return Status::IOError("trace: short write to " + path);
  return Status::OK();
}

const std::string& EnvTracePath() { return EnvPathStorage(); }

void RecordSpan(const char* category, std::string name, uint64_t start_us,
                uint64_t end_us) {
  ThreadBuffer& buffer = Collector::Global().Local();
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.events.push_back(TraceEvent{std::move(name), category, start_us,
                                     end_us - start_us, buffer.tid});
}

}  // namespace etsc::trace
