#include "core/categorize.h"

#include <algorithm>

namespace etsc {

const std::vector<DatasetCategory>& AllDatasetCategories() {
  static const std::vector<DatasetCategory>* kAll = new std::vector<DatasetCategory>{
      DatasetCategory::kWide,       DatasetCategory::kLarge,
      DatasetCategory::kUnstable,   DatasetCategory::kImbalanced,
      DatasetCategory::kMulticlass, DatasetCategory::kCommon,
      DatasetCategory::kUnivariate, DatasetCategory::kMultivariate};
  return *kAll;
}

std::string DatasetCategoryName(DatasetCategory category) {
  switch (category) {
    case DatasetCategory::kWide:
      return "Wide";
    case DatasetCategory::kLarge:
      return "Large";
    case DatasetCategory::kUnstable:
      return "Unstable";
    case DatasetCategory::kImbalanced:
      return "Imbalanced";
    case DatasetCategory::kMulticlass:
      return "Multiclass";
    case DatasetCategory::kCommon:
      return "Common";
    case DatasetCategory::kUnivariate:
      return "Univariate";
    case DatasetCategory::kMultivariate:
      return "Multivariate";
  }
  return "Unknown";
}

bool DatasetProfile::IsIn(DatasetCategory category) const {
  return std::find(categories.begin(), categories.end(), category) !=
         categories.end();
}

DatasetProfile Categorize(const Dataset& dataset,
                          const CategorizationThresholds& thresholds) {
  DatasetProfile profile;
  profile.name = dataset.name();
  profile.length = dataset.MaxLength();
  profile.height = dataset.size();
  profile.num_variables = dataset.NumVariables();
  profile.num_classes = dataset.NumClasses();
  profile.cov = dataset.CoefficientOfVariation();
  profile.cir = dataset.ClassImbalanceRatio();

  AssignCategories(&profile, thresholds);
  return profile;
}

void AssignCategories(DatasetProfile* profile,
                      const CategorizationThresholds& thresholds) {
  auto& cats = profile->categories;
  cats.clear();
  if (profile->length > thresholds.wide_length) {
    cats.push_back(DatasetCategory::kWide);
  }
  if (profile->height > thresholds.large_height) {
    cats.push_back(DatasetCategory::kLarge);
  }
  if (profile->cov > thresholds.unstable_cov) {
    cats.push_back(DatasetCategory::kUnstable);
  }
  if (profile->cir > thresholds.imbalanced_cir) {
    cats.push_back(DatasetCategory::kImbalanced);
  }
  if (profile->num_classes > 2) cats.push_back(DatasetCategory::kMulticlass);
  if (cats.empty()) cats.push_back(DatasetCategory::kCommon);
  cats.push_back(profile->num_variables > 1 ? DatasetCategory::kMultivariate
                                            : DatasetCategory::kUnivariate);
}

}  // namespace etsc
