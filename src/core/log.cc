#include "core/log.h"

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

namespace etsc {

namespace {

char LevelLetter(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return 'D';
    case LogLevel::kInfo:
      return 'I';
    case LogLevel::kWarn:
      return 'W';
    case LogLevel::kError:
      return 'E';
    case LogLevel::kOff:
      return '-';
  }
  return '?';
}

double ElapsedSeconds() {
  static const auto start = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

namespace log_internal {

std::atomic<int>& MinLevelVar() {
  static std::atomic<int>* const level = [] {
    LogLevel initial = LogLevel::kInfo;
    const char* env = std::getenv("ETSC_LOG");
    if (env != nullptr && *env != '\0') {
      initial = ParseLogLevel(env, initial);
    }
    return new std::atomic<int>(static_cast<int>(initial));
  }();
  return *level;
}

}  // namespace log_internal

void SetMinLogLevel(LogLevel level) {
  log_internal::MinLevelVar().store(static_cast<int>(level),
                                    std::memory_order_relaxed);
}

LogLevel ParseLogLevel(const std::string& name, LogLevel fallback) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn" || name == "warning") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off" || name == "none") return LogLevel::kOff;
  return fallback;
}

void Logf(LogLevel level, const char* tag, const char* format, ...) {
  if (!LogEnabled(level) || level == LogLevel::kOff) return;

  char message[1024];
  va_list args;
  va_start(args, format);
  std::vsnprintf(message, sizeof(message), format, args);
  va_end(args);

  char line[1200];
  const int n =
      std::snprintf(line, sizeof(line), "[%9.3fs %c %s] %s\n", ElapsedSeconds(),
                    LevelLetter(level), tag == nullptr ? "-" : tag, message);
  if (n > 0) {
    // One fwrite per line: concurrent threads interleave whole lines only.
    std::fwrite(line, 1, static_cast<size_t>(
                             n < static_cast<int>(sizeof(line)) ? n
                                                                : sizeof(line) - 1),
                stderr);
  }
}

}  // namespace etsc
