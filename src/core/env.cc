#include "core/env.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "core/log.h"

namespace etsc::env {

namespace {

/// True when `rest` holds only trailing whitespace after a strtod parse.
bool OnlyTrailingSpace(const char* rest) {
  if (rest == nullptr) return false;
  while (*rest != '\0') {
    if (!std::isspace(static_cast<unsigned char>(*rest))) return false;
    ++rest;
  }
  return true;
}

}  // namespace

double NumberOr(const char* subsystem, const char* name, double fallback,
                double lo, double hi) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(raw, &end);
  if (end == raw || !OnlyTrailingSpace(end) || errno == ERANGE ||
      !std::isfinite(parsed) || !(parsed >= lo) || !(parsed <= hi)) {
    Logf(LogLevel::kWarn, subsystem,
         "ignoring invalid %s='%s' (want a number in [%g, %g])", name, raw,
         lo, hi);
    return fallback;
  }
  return parsed;
}

std::string StringOr(const char* name, const char* fallback) {
  const char* raw = std::getenv(name);
  return (raw == nullptr || *raw == '\0') ? fallback : raw;
}

}  // namespace etsc::env
