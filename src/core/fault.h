#ifndef ETSC_CORE_FAULT_H_
#define ETSC_CORE_FAULT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "core/classifier.h"
#include "core/dataset.h"
#include "core/rng.h"

namespace etsc {

/// Configuration of the deterministic fault-injection decorator. All rates
/// are probabilities in [0, 1]; the draws come from one seeded Rng so a given
/// (seed, call sequence) always injects the same faults.
struct FaultOptions {
  uint64_t seed = 7;
  /// Fit returns Status::Internal("injected fit failure") with this rate.
  double fit_failure_rate = 0.0;
  /// PredictEarly returns Status::Internal with this rate.
  double predict_failure_rate = 0.0;
  /// PredictEarly returns a corrupt EarlyPrediction with this rate: an
  /// impossible label and a prefix_length beyond the series length. Callers
  /// must survive both (EvaluateSplit clamps the prefix and scores the label
  /// as a miss).
  double garbage_prediction_rate = 0.0;
  /// Busy-wait this long at the top of Fit / each PredictEarly before
  /// checking the decorator's own deadline — simulates an overrunning
  /// implementation so budget expiry paths can be exercised with millisecond
  /// budgets instead of the paper's 48 hours.
  double fit_delay_seconds = 0.0;
  double predict_delay_seconds = 0.0;
};

/// Decorator that wraps any EarlyClassifier and injects seeded failures,
/// deadline overruns, and garbage predictions. Used by tests to prove that
/// CrossValidate, StreamingSession, and the benchmark Campaign degrade
/// gracefully (failed cells recorded with `failure` strings, never aborts).
///
/// Budgets set on the decorator are forwarded to the inner classifier at Fit
/// time, matching the voting wrappers' propagation contract.
class FaultyClassifier : public EarlyClassifier {
 public:
  FaultyClassifier(std::unique_ptr<EarlyClassifier> inner, FaultOptions options);

  Status Fit(const Dataset& train) override;
  Result<EarlyPrediction> PredictEarly(const TimeSeries& series) const override;
  std::string name() const override;
  bool SupportsMultivariate() const override;
  std::unique_ptr<EarlyClassifier> CloneUntrained() const override;

 private:
  std::unique_ptr<EarlyClassifier> inner_;
  FaultOptions options_;
  // PredictEarly is const in the interface; the fault stream is decorator
  // state, deterministic given the call order.
  mutable Rng rng_;
};

/// Decorator whose Fit fails the first `failures_before_success` attempts
/// with Status::Unavailable (a transient class the supervisor retries), then
/// delegates. The attempt counter is per-instance and CloneUntrained resets
/// it — the retry loop must therefore re-Fit the same instance, which is
/// exactly what RunFold's retry loop does; the counting stays deterministic
/// because each fold owns its clone.
class FlakyClassifier : public EarlyClassifier {
 public:
  FlakyClassifier(std::unique_ptr<EarlyClassifier> inner,
                  int failures_before_success);

  Status Fit(const Dataset& train) override;
  Result<EarlyPrediction> PredictEarly(const TimeSeries& series) const override;
  std::string name() const override;
  bool SupportsMultivariate() const override;
  std::unique_ptr<EarlyClassifier> CloneUntrained() const override;

 private:
  std::unique_ptr<EarlyClassifier> inner_;
  int failures_before_success_;
  int failed_attempts_ = 0;
};

/// Knobs for HangingClassifier: which operations hang, and a safety valve.
struct HangOptions {
  bool hang_fit = false;
  bool hang_predict = false;
  /// Upper bound on the spin: a broken watchdog must wedge a test run for at
  /// most this long, after which the hang gives up with kInternal (a
  /// non-transient class, so the supervisor will not retry the hang).
  double max_seconds = 30.0;
};

/// Decorator modelling a hung implementation: the selected operations spin
/// forever, ignoring their real budget, but still run the framework's
/// Deadline polls (on an infinite deadline) — the realistic "broken budget
/// logic" bug. The only way out is the watchdog requesting cancellation
/// through the thread's CancelToken, which the polls observe; the hang then
/// returns kDeadlineExceeded exactly like a budget overrun.
class HangingClassifier : public EarlyClassifier {
 public:
  HangingClassifier(std::unique_ptr<EarlyClassifier> inner, HangOptions options);

  Status Fit(const Dataset& train) override;
  Result<EarlyPrediction> PredictEarly(const TimeSeries& series) const override;
  std::string name() const override;
  bool SupportsMultivariate() const override;
  std::unique_ptr<EarlyClassifier> CloneUntrained() const override;

 private:
  /// Spins until cancelled (DeadlineExceeded) or max_seconds (Internal).
  Status Hang(const char* op) const;

  std::unique_ptr<EarlyClassifier> inner_;
  HangOptions options_;
};

/// Exit code used by DieAtClassifier so drills can tell a scripted death
/// (std::_Exit mid-Fit) from an ordinary failure.
inline constexpr int kDieAtExitCode = 86;

/// Decorator modelling an abruptly killed worker process: the `die_at_cell`-th
/// campaign cell that starts fitting this algorithm terminates the process
/// with std::_Exit(kDieAtExitCode) — no destructors, no atexit hooks, no
/// stream flushes, the observable file-system state of a SIGKILL. Cells are
/// counted per algorithm across the whole process; every clone of one wrap
/// shares the wrap's ordinal, so however CrossValidate clones the prototype,
/// one cell's folds count as one cell. Used by ETSC_BENCH_FAULT
/// "ALGO:die-at:k" to make crash drills scriptable (check.sh).
class DieAtClassifier : public EarlyClassifier {
 public:
  DieAtClassifier(std::unique_ptr<EarlyClassifier> inner, int die_at_cell);

  Status Fit(const Dataset& train) override;
  Result<EarlyPrediction> PredictEarly(const TimeSeries& series) const override;
  std::string name() const override;
  bool SupportsMultivariate() const override;
  std::unique_ptr<EarlyClassifier> CloneUntrained() const override;

 private:
  DieAtClassifier(std::unique_ptr<EarlyClassifier> inner, int die_at_cell,
                  std::shared_ptr<std::atomic<int>> cell_ordinal);

  std::unique_ptr<EarlyClassifier> inner_;
  int die_at_cell_;
  /// This wrap's campaign-cell ordinal; 0 until the first Fit assigns it
  /// from the process-wide per-algorithm counter. Shared across clones.
  std::shared_ptr<std::atomic<int>> cell_ordinal_;
};

/// Serving-layer fault points (chaos-drill injectors for ServingEngine).
/// `kIngest` fires inside Ingest AFTER the observation was journaled and
/// applied — the crash loses nothing durable; `kDispatch` fires inside
/// DispatchBatch between the claim phase and the pool fan-out — the textbook
/// "killed mid-dispatch" instant, with queues moved but no decision applied.
enum class ServeFaultPoint { kIngest, kDispatch };

/// Arms a process-wide serving death from ETSC_SERVE_FAULT:
///   "die-at-ingest:K"   — die at the K-th accepted ingest (1-based)
///   "die-at-dispatch:K" — die at the K-th dispatched batch (1-based)
/// Unset or empty disarms; anything else warns and disarms (the validated-env
/// contract). The death is std::_Exit(kDieAtExitCode) — no destructors, no
/// flushes, the file-system state of a SIGKILL. Used by the check.sh serving
/// crash drill.
void ArmServeFaultFromEnv();

/// Programmatic arming (tests); `ordinal` <= 0 disarms.
void ArmServeFault(ServeFaultPoint point, int ordinal);

/// Hit counter for `point`: increments on every call and dies when the armed
/// ordinal is reached. No-op (and no counter bump) while disarmed.
void ServeFaultTick(ServeFaultPoint point);

/// Truncates the last `drop_bytes` bytes off `path` — the torn-tail state a
/// crash mid-append leaves behind, made scriptable for recovery drills.
/// Dropping more bytes than the file holds empties it.
Status TruncateTail(const std::string& path, size_t drop_bytes);

/// Returns a copy of `source` in which every observation is independently
/// replaced by NaN with probability `rate` (seeded) — a faulty data source
/// modelling sensor dropouts. Labels and metadata are preserved; callers can
/// exercise both the repair path (Dataset::FillMissingValues) and raw-NaN
/// robustness of downstream components.
Dataset InjectMissingValues(const Dataset& source, double rate, uint64_t seed);

/// Busy-waits (monotonic clock) for `seconds`; models a compute-bound
/// overrun, unlike sleeping, so deadline tests behave under load.
void BurnWallClock(double seconds);

}  // namespace etsc

#endif  // ETSC_CORE_FAULT_H_
