#include "core/supervisor.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>

#include "core/counters.h"
#include "core/log.h"
#include "core/rng.h"

namespace etsc {

namespace {

Counter& QuarantineEvents() {
  static Counter& c =
      MetricRegistry::Global().counter("supervisor.quarantine_events");
  return c;
}

Counter& WatchdogCancellations() {
  static Counter& c =
      MetricRegistry::Global().counter("supervisor.watchdog_cancellations");
  return c;
}

/// Validated env parsing, same contract as CampaignConfig::FromEnv: unset
/// keeps the default, garbage warns and keeps the default. Local copies —
/// core must not depend on bench.
double GetEnvDoubleOr(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(raw, &end);
  if (end == raw || *end != '\0' || std::isnan(parsed)) {
    Logf(LogLevel::kWarn, "supervisor",
         "ignoring unparseable %s=\"%s\" (keeping %g)", name, raw, fallback);
    return fallback;
  }
  return parsed;
}

int GetEnvIntOr(const char* name, int fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0' || parsed < 0 || parsed > 1000000) {
    Logf(LogLevel::kWarn, "supervisor",
         "ignoring unparseable %s=\"%s\" (keeping %d)", name, raw, fallback);
    return fallback;
  }
  return static_cast<int>(parsed);
}

}  // namespace

SupervisorOptions SupervisorOptions::FromEnv() {
  SupervisorOptions opts;
  opts.retry.max_retries = GetEnvIntOr("ETSC_RETRY_MAX", opts.retry.max_retries);
  opts.retry.base_backoff_ms =
      GetEnvDoubleOr("ETSC_RETRY_BASE_MS", opts.retry.base_backoff_ms);
  if (opts.retry.base_backoff_ms < 0.0) opts.retry.base_backoff_ms = 0.0;
  opts.quarantine_after =
      GetEnvIntOr("ETSC_QUARANTINE_AFTER", opts.quarantine_after);
  opts.watchdog_grace =
      GetEnvDoubleOr("ETSC_WATCHDOG_GRACE", opts.watchdog_grace);
  return opts;
}

bool IsTransientFailure(StatusCode code) {
  switch (code) {
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kResourceExhausted:
    case StatusCode::kUnavailable:
      return true;
    default:
      return false;
  }
}

double BackoffDelayMs(const RetryPolicy& policy, uint64_t seed, int attempt) {
  if (attempt < 1) attempt = 1;
  double delay = policy.base_backoff_ms;
  for (int i = 1; i < attempt; ++i) {
    delay *= policy.backoff_multiplier;
    if (delay >= policy.max_backoff_ms) break;
  }
  delay = std::min(delay, policy.max_backoff_ms);
  // Jitter in [0.5, 1.0): the top 53 bits of the split give a uniform double
  // — a pure function of (seed, attempt), so the schedule is reproducible.
  const double unit =
      static_cast<double>(SplitSeed(seed, static_cast<uint64_t>(attempt)) >>
                          11) *
      0x1p-53;
  return delay * (0.5 + 0.5 * unit);
}

bool CircuitBreaker::RecordFailure(const std::string& algo,
                                   const std::string& dataset) {
  if (quarantine_after_ <= 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[algo];
  if (e.quarantined) return false;
  if (e.consecutive_failures > 0 && e.last_failed_dataset == dataset) {
    return false;  // A retry burst on one dataset is one strike, not many.
  }
  e.last_failed_dataset = dataset;
  if (++e.consecutive_failures < quarantine_after_) return false;
  e.quarantined = true;
  if (MetricsEnabled()) QuarantineEvents().Add();
  Logf(LogLevel::kWarn, "supervisor",
       "quarantining algorithm %s after %d consecutive failed datasets "
       "(last: %s)",
       algo.c_str(), e.consecutive_failures, dataset.c_str());
  return true;
}

void CircuitBreaker::RecordSuccess(const std::string& algo) {
  if (quarantine_after_ <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[algo];
  if (e.quarantined) return;
  e.consecutive_failures = 0;
  e.last_failed_dataset.clear();
}

bool CircuitBreaker::IsQuarantined(const std::string& algo) const {
  if (quarantine_after_ <= 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(algo);
  return it != entries_.end() && it->second.quarantined;
}

Watchdog& Watchdog::Instance() {
  static Watchdog dog;
  return dog;
}

Watchdog::~Watchdog() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

uint64_t Watchdog::Register(std::shared_ptr<CancelToken> token,
                            std::string label, double budget_seconds,
                            double grace) {
  Task task;
  task.token = std::move(token);
  task.label = std::move(label);
  task.started = Deadline::Clock::now();
  task.cancel_after_seconds = grace * budget_seconds;
  uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_id_++;
    tasks_.emplace(id, std::move(task));
    if (!started_) {
      started_ = true;
      thread_ = std::thread([this] { RunLoop(); });
    }
  }
  cv_.notify_all();
  return id;
}

void Watchdog::Unregister(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  tasks_.erase(id);
}

void Watchdog::RunLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    // Earliest pending expiry decides how long to sleep; new registrations
    // and shutdown interrupt the wait through the condition variable.
    const auto now = Deadline::Clock::now();
    auto next_due = Deadline::Clock::time_point::max();
    for (auto& [id, task] : tasks_) {
      if (task.cancelled) continue;
      const auto due =
          task.started + std::chrono::duration_cast<Deadline::Clock::duration>(
                             std::chrono::duration<double>(
                                 task.cancel_after_seconds));
      if (due <= now) {
        task.cancelled = true;
        task.token->RequestCancel();
        if (MetricsEnabled()) WatchdogCancellations().Add();
        Logf(LogLevel::kWarn, "watchdog",
             "cancelling hung task %s: ran %.3fs past %.3fs allowance "
             "(last heartbeat %.3fs ago)",
             task.label.c_str(),
             std::chrono::duration<double>(now - task.started).count(),
             task.cancel_after_seconds,
             task.token->SecondsSinceHeartbeat());
      } else {
        next_due = std::min(next_due, due);
      }
    }
    if (next_due == Deadline::Clock::time_point::max()) {
      cv_.wait(lock);
    } else {
      cv_.wait_until(lock, next_due);
    }
  }
}

Watchdog::Watch::Watch(std::string label, double budget_seconds, double grace)
    : token_(std::make_shared<CancelToken>()), install_(token_) {
  if (grace > 0.0 && budget_seconds > 0.0 && std::isfinite(budget_seconds)) {
    id_ = Instance().Register(token_, std::move(label), budget_seconds, grace);
  }
}

Watchdog::Watch::~Watch() {
  if (id_ != 0) Instance().Unregister(id_);
}

}  // namespace etsc
