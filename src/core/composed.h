#ifndef ETSC_CORE_COMPOSED_H_
#define ETSC_CORE_COMPOSED_H_

#include <memory>
#include <string>
#include <vector>

#include "core/classifier.h"
#include "core/dataset.h"
#include "core/status.h"
#include "core/trigger.h"

namespace etsc {

/// Builds one of the shared checkpoint grids over training length `length`:
/// the exact rounding/minimum rules of the legacy monolithic algorithms (see
/// CheckpointGrid), deduped ascending, ending at `length`.
std::vector<size_t> BuildCheckpointGrid(CheckpointGrid grid, size_t length,
                                        size_t num_checkpoints);

/// Construction bundle for ComposedEarlyClassifier; lets thin legacy wrappers
/// derive the display name from the base before handing the base over.
struct ComposedParts {
  std::string name;
  std::unique_ptr<FullClassifier> base;  // null for self-contained triggers
  std::unique_ptr<Trigger> trigger;
  ComposedOptions options;
};

/// Pairs any base (full) classifier with any trigger (DESIGN.md sec 15).
///
/// Fit: build the checkpoint grid, let the trigger plan/validate, fit one
/// clone of the base per checkpoint (the "bank"; skipped for self-contained
/// triggers), then fit the trigger against the bank. PredictEarly: walk the
/// checkpoints, show the trigger the bank's posterior (or plain prediction)
/// at each, emit at the first halt; series shorter than every checkpoint fall
/// back to the trigger's Finalize or the first bank model on the full series.
///
/// The legacy monolithic algorithms are thin subclasses of this pipeline
/// (same name/config_fingerprint strings, accessors delegating to their
/// trigger), so legacy == composed equality is structural, not asserted-only.
class ComposedEarlyClassifier : public EarlyClassifier {
 public:
  ComposedEarlyClassifier(std::string name,
                          std::unique_ptr<FullClassifier> base,
                          std::unique_ptr<Trigger> trigger,
                          ComposedOptions options = {});
  explicit ComposedEarlyClassifier(ComposedParts parts);

  Status Fit(const Dataset& train) override;
  Result<EarlyPrediction> PredictEarly(const TimeSeries& series) const override;
  std::string name() const override { return name_; }
  bool SupportsMultivariate() const override;
  std::unique_ptr<EarlyClassifier> CloneUntrained() const override;
  std::string config_fingerprint() const override;
  Status SaveState(Serializer& out) const override;
  Status LoadState(Deserializer& in) override;

  bool fitted() const { return fitted_; }
  /// Prefix lengths walked at predict time (fitted instances only).
  const std::vector<size_t>& checkpoints() const { return checkpoints_; }
  const Trigger& trigger() const { return *trigger_; }
  /// The unfitted base prototype; null when the trigger is self-contained
  /// and no base was supplied.
  const FullClassifier* base_classifier() const { return base_.get(); }
  /// Per-checkpoint fitted models (empty for self-contained triggers).
  const std::vector<std::unique_ptr<FullClassifier>>& bank() const {
    return bank_;
  }
  const ComposedOptions& composed_options() const { return options_; }

 private:
  std::string name_;
  std::unique_ptr<FullClassifier> base_;
  std::unique_ptr<Trigger> trigger_;
  ComposedOptions options_;
  size_t length_ = 0;
  std::vector<size_t> checkpoints_;
  std::vector<std::unique_ptr<FullClassifier>> bank_;
  bool fitted_ = false;
};

/// True when `name` looks like a "classifier+trigger" composition spec.
inline bool IsComposedSpec(const std::string& name) {
  return name.find('+') != std::string::npos;
}

/// Instantiates a "classifier+trigger" spec from the two registries (e.g.
/// "weasel+prob"). Unknown halves yield the registry's structured NotFound
/// listing the names of the right namespace; a malformed spec yields
/// InvalidArgument describing the syntax.
Result<std::unique_ptr<EarlyClassifier>> MakeComposedFromSpec(
    const std::string& spec);

}  // namespace etsc

#endif  // ETSC_CORE_COMPOSED_H_
