#include "core/deadline.h"

#include <cmath>
#include <limits>

#include "core/counters.h"

namespace etsc {

namespace {

/// Slack (seconds remaining, negative once expired) observed at every
/// decision-point Check() of a finite deadline — the distribution shows how
/// close budgeted fits/predictions run to the paper's cut-off. CheckEvery is
/// deliberately NOT instrumented: it sits in per-element hot loops.
Histogram& SlackAtCheck() {
  static Histogram& h =
      MetricRegistry::Global().histogram("deadline.slack_seconds_at_check");
  return h;
}

/// The installed token of this thread, empty outside supervised tasks. A
/// shared_ptr so the watchdog can hold a reference past the task's lifetime.
thread_local std::shared_ptr<CancelToken> tls_cancel_token;

int64_t SteadyMicrosNow() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             Deadline::Clock::now().time_since_epoch())
      .count();
}

}  // namespace

CancelToken::CancelToken() : last_heartbeat_us_(SteadyMicrosNow()) {}

void CancelToken::Heartbeat() {
  last_heartbeat_us_.store(SteadyMicrosNow(), std::memory_order_relaxed);
}

double CancelToken::SecondsSinceHeartbeat() const {
  const int64_t last = last_heartbeat_us_.load(std::memory_order_relaxed);
  return static_cast<double>(SteadyMicrosNow() - last) * 1e-6;
}

std::shared_ptr<CancelToken> CurrentCancelToken() { return tls_cancel_token; }

bool CancellationRequested() {
  const CancelToken* token = tls_cancel_token.get();
  return token != nullptr && token->cancelled();
}

ScopedCancelToken::ScopedCancelToken(std::shared_ptr<CancelToken> token)
    : prev_(std::move(tls_cancel_token)) {
  tls_cancel_token = std::move(token);
}

ScopedCancelToken::~ScopedCancelToken() { tls_cancel_token = std::move(prev_); }

Deadline Deadline::After(double seconds) {
  if (std::isnan(seconds)) return Infinite();
  if (seconds <= 0.0) {
    // Already expired: min() keeps Remaining() well below zero without
    // overflowing duration arithmetic.
    return Deadline(Clock::time_point::min());
  }
  // Budgets beyond what the clock can represent (including +inf) never expire.
  const double max_representable =
      std::chrono::duration<double>(Clock::duration::max()).count() / 2.0;
  if (seconds >= max_representable) return Infinite();
  return Deadline(Clock::now() +
                  std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(seconds)));
}

bool Deadline::Expired() const {
  if (CancelToken* token = tls_cancel_token.get()) {
    token->Heartbeat();
    if (token->cancelled()) return true;
  }
  if (infinite()) return false;
  return Clock::now() >= expiry_;
}

double Deadline::Remaining() const {
  if (infinite()) return std::numeric_limits<double>::infinity();
  if (expiry_ == Clock::time_point::min()) {
    return -std::numeric_limits<double>::infinity();
  }
  return std::chrono::duration<double>(expiry_ - Clock::now()).count();
}

bool Deadline::CheckEvery(uint32_t stride) const {
  if (expired_) return true;
  // No early-out for infinite deadlines: the periodic Expired() poll is what
  // stamps heartbeats and notices watchdog cancellations in unbudgeted loops.
  if (stride == 0) stride = 1;
  if (calls_++ % stride == 0) expired_ = Expired();
  return expired_;
}

Status Deadline::Check(const std::string& what) const {
  if (!infinite() && MetricsEnabled()) SlackAtCheck().Record(Remaining());
  if (CancellationRequested()) {
    return Status::DeadlineExceeded(what + " (cancelled by watchdog)");
  }
  if (Expired()) return Status::DeadlineExceeded(what);
  return Status::OK();
}

}  // namespace etsc
