#include "core/deadline.h"

#include <cmath>
#include <limits>

#include "core/counters.h"

namespace etsc {

namespace {

/// Slack (seconds remaining, negative once expired) observed at every
/// decision-point Check() of a finite deadline — the distribution shows how
/// close budgeted fits/predictions run to the paper's cut-off. CheckEvery is
/// deliberately NOT instrumented: it sits in per-element hot loops.
Histogram& SlackAtCheck() {
  static Histogram& h =
      MetricRegistry::Global().histogram("deadline.slack_seconds_at_check");
  return h;
}

}  // namespace

Deadline Deadline::After(double seconds) {
  if (std::isnan(seconds)) return Infinite();
  if (seconds <= 0.0) {
    // Already expired: min() keeps Remaining() well below zero without
    // overflowing duration arithmetic.
    return Deadline(Clock::time_point::min());
  }
  // Budgets beyond what the clock can represent (including +inf) never expire.
  const double max_representable =
      std::chrono::duration<double>(Clock::duration::max()).count() / 2.0;
  if (seconds >= max_representable) return Infinite();
  return Deadline(Clock::now() +
                  std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(seconds)));
}

bool Deadline::Expired() const {
  if (infinite()) return false;
  return Clock::now() >= expiry_;
}

double Deadline::Remaining() const {
  if (infinite()) return std::numeric_limits<double>::infinity();
  if (expiry_ == Clock::time_point::min()) {
    return -std::numeric_limits<double>::infinity();
  }
  return std::chrono::duration<double>(expiry_ - Clock::now()).count();
}

bool Deadline::CheckEvery(uint32_t stride) const {
  if (expired_) return true;
  if (infinite()) return false;
  if (stride == 0) stride = 1;
  if (calls_++ % stride == 0) expired_ = Expired();
  return expired_;
}

Status Deadline::Check(const std::string& what) const {
  if (!infinite() && MetricsEnabled()) SlackAtCheck().Record(Remaining());
  if (Expired()) return Status::ResourceExhausted(what);
  return Status::OK();
}

}  // namespace etsc
