#include "core/serialize.h"

#include <cstring>
#include <limits>

namespace etsc {
namespace {

/// Little-endian encode into `out` at `offset` (which must already exist).
void PutU32At(std::string* out, size_t offset, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    (*out)[offset + i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

void PutU64At(std::string* out, size_t offset, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    (*out)[offset + i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t F64Bits(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsF64(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  static const auto table = [] {
    std::vector<uint32_t> t(256);
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xffffffffu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

// ---------------------------------------------------------------------------
// Serializer
// ---------------------------------------------------------------------------

void Serializer::U8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }

void Serializer::U32(uint32_t v) {
  const size_t at = buffer_.size();
  buffer_.resize(at + 4);
  PutU32At(&buffer_, at, v);
}

void Serializer::U64(uint64_t v) {
  const size_t at = buffer_.size();
  buffer_.resize(at + 8);
  PutU64At(&buffer_, at, v);
}

void Serializer::F64(double v) { U64(F64Bits(v)); }

void Serializer::Str(const std::string& s) {
  U64(s.size());
  buffer_.append(s);
}

void Serializer::F64Vec(const std::vector<double>& v) {
  U64(v.size());
  for (double x : v) F64(x);
}

void Serializer::IntVec(const std::vector<int>& v) {
  U64(v.size());
  for (int x : v) I64(x);
}

void Serializer::SizeVec(const std::vector<size_t>& v) {
  U64(v.size());
  for (size_t x : v) U64(x);
}

void Serializer::BoolVec(const std::vector<bool>& v) {
  U64(v.size());
  for (bool x : v) U8(x ? 1 : 0);
}

void Serializer::F64Mat(const std::vector<std::vector<double>>& m) {
  U64(m.size());
  for (const auto& row : m) F64Vec(row);
}

void Serializer::Begin(const std::string& tag) {
  Str(tag);
  open_sections_.push_back(buffer_.size());
  buffer_.resize(buffer_.size() + 12);  // u64 size + u32 crc, backpatched
}

void Serializer::End() {
  ETSC_CHECK(!open_sections_.empty());
  const size_t slot = open_sections_.back();
  open_sections_.pop_back();
  const size_t payload_start = slot + 12;
  const size_t payload_size = buffer_.size() - payload_start;
  PutU64At(&buffer_, slot, payload_size);
  PutU32At(&buffer_, slot + 8,
           Crc32(buffer_.data() + payload_start, payload_size));
}

Status Serializer::Finish(std::ostream& out, const std::string& kind,
                          const std::string& name,
                          const std::string& fingerprint) const {
  ETSC_CHECK(open_sections_.empty());
  Serializer header;
  header.buffer_.append(kSerializeMagic, sizeof(kSerializeMagic));
  header.U32(kSerializeFormatVersion);
  header.Str(kind);
  header.Str(name);
  header.Str(fingerprint);
  header.U64(buffer_.size());
  header.U32(Crc32(buffer_.data(), buffer_.size()));
  out.write(header.buffer_.data(),
            static_cast<std::streamsize>(header.buffer_.size()));
  out.write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
  out.flush();
  if (!out.good()) return Status::IOError("serialize: stream write failed");
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Deserializer
// ---------------------------------------------------------------------------

namespace {

/// Reads exactly `n` bytes into `out`; DataLoss on a short read.
Status ReadExact(std::istream& in, size_t n, std::string* out,
                 const char* what) {
  out->resize(n);
  in.read(out->data(), static_cast<std::streamsize>(n));
  if (static_cast<size_t>(in.gcount()) != n) {
    return Status::DataLoss(std::string("serialize: truncated stream in ") +
                            what);
  }
  return Status::OK();
}

/// Reads one length-prefixed string straight off the stream (header fields,
/// before the body is in memory). `cap` bounds the length so a corrupt
/// header cannot trigger a huge allocation.
Result<std::string> ReadHeaderStr(std::istream& in, size_t cap,
                                  const char* what) {
  std::string raw;
  ETSC_RETURN_NOT_OK(ReadExact(in, 8, &raw, what));
  const uint64_t len = GetU64(raw.data());
  if (len > cap) {
    return Status::DataLoss(std::string("serialize: implausible length in ") +
                            what);
  }
  std::string value;
  ETSC_RETURN_NOT_OK(ReadExact(in, static_cast<size_t>(len), &value, what));
  return value;
}

}  // namespace

Result<Deserializer> Deserializer::FromStream(std::istream& in) {
  std::string magic;
  magic.resize(sizeof(kSerializeMagic));
  in.read(magic.data(), sizeof(kSerializeMagic));
  if (static_cast<size_t>(in.gcount()) != sizeof(kSerializeMagic) ||
      std::memcmp(magic.data(), kSerializeMagic, sizeof(kSerializeMagic)) !=
          0) {
    return Status::InvalidArgument(
        "serialize: not an ETSC model stream (bad magic)");
  }
  std::string raw;
  ETSC_RETURN_NOT_OK(ReadExact(in, 4, &raw, "format version"));
  Deserializer d;
  d.header_.format_version = GetU32(raw.data());
  if (d.header_.format_version > kSerializeFormatVersion) {
    return Status::InvalidArgument(
        "serialize: unsupported format version " +
        std::to_string(d.header_.format_version) + " (reader supports up to " +
        std::to_string(kSerializeFormatVersion) + ")");
  }
  constexpr size_t kHeaderStrCap = 1 << 16;
  ETSC_ASSIGN_OR_RETURN(d.header_.kind,
                        ReadHeaderStr(in, kHeaderStrCap, "kind"));
  ETSC_ASSIGN_OR_RETURN(d.header_.name,
                        ReadHeaderStr(in, kHeaderStrCap, "name"));
  ETSC_ASSIGN_OR_RETURN(d.header_.fingerprint,
                        ReadHeaderStr(in, kHeaderStrCap, "fingerprint"));
  ETSC_RETURN_NOT_OK(ReadExact(in, 12, &raw, "body header"));
  const uint64_t body_size = GetU64(raw.data());
  const uint32_t body_crc = GetU32(raw.data() + 8);
  // Cap the declared size at 1 GiB: larger means corruption, not a model.
  if (body_size > (uint64_t{1} << 30)) {
    return Status::DataLoss("serialize: implausible body size");
  }
  ETSC_RETURN_NOT_OK(
      ReadExact(in, static_cast<size_t>(body_size), &d.body_, "body"));
  if (Crc32(d.body_.data(), d.body_.size()) != body_crc) {
    return Status::DataLoss("serialize: body checksum mismatch");
  }
  return d;
}

Status Deserializer::Need(size_t bytes) const {
  const size_t limit =
      section_ends_.empty() ? body_.size() : section_ends_.back();
  if (bytes > limit - pos_) {
    return Status::DataLoss("serialize: field extends past " +
                            std::string(section_ends_.empty()
                                            ? "end of body"
                                            : "end of section"));
  }
  return Status::OK();
}

Result<size_t> Deserializer::Len(size_t elem_size) {
  ETSC_ASSIGN_OR_RETURN(uint64_t n, U64());
  const size_t limit =
      section_ends_.empty() ? body_.size() : section_ends_.back();
  const size_t remaining = limit - pos_;
  if (n > remaining / elem_size) {
    return Status::DataLoss("serialize: implausible element count");
  }
  return static_cast<size_t>(n);
}

Result<uint8_t> Deserializer::U8() {
  ETSC_RETURN_NOT_OK(Need(1));
  return static_cast<uint8_t>(body_[pos_++]);
}

Result<uint32_t> Deserializer::U32() {
  ETSC_RETURN_NOT_OK(Need(4));
  const uint32_t v = GetU32(body_.data() + pos_);
  pos_ += 4;
  return v;
}

Result<uint64_t> Deserializer::U64() {
  ETSC_RETURN_NOT_OK(Need(8));
  const uint64_t v = GetU64(body_.data() + pos_);
  pos_ += 8;
  return v;
}

Result<int64_t> Deserializer::I64() {
  ETSC_ASSIGN_OR_RETURN(uint64_t v, U64());
  return static_cast<int64_t>(v);
}

Result<double> Deserializer::F64() {
  ETSC_ASSIGN_OR_RETURN(uint64_t bits, U64());
  return BitsF64(bits);
}

Result<bool> Deserializer::Bool() {
  ETSC_ASSIGN_OR_RETURN(uint8_t v, U8());
  return v != 0;
}

Result<std::string> Deserializer::Str() {
  ETSC_ASSIGN_OR_RETURN(size_t len, Len(1));
  std::string s(body_.data() + pos_, len);
  pos_ += len;
  return s;
}

Result<size_t> Deserializer::SizeT() {
  ETSC_ASSIGN_OR_RETURN(uint64_t v, U64());
  return static_cast<size_t>(v);
}

Result<std::vector<double>> Deserializer::F64Vec() {
  ETSC_ASSIGN_OR_RETURN(size_t n, Len(8));
  std::vector<double> v(n);
  for (auto& x : v) {
    ETSC_ASSIGN_OR_RETURN(x, F64());
  }
  return v;
}

Result<std::vector<int>> Deserializer::IntVec() {
  ETSC_ASSIGN_OR_RETURN(size_t n, Len(8));
  std::vector<int> v(n);
  for (auto& x : v) {
    ETSC_ASSIGN_OR_RETURN(int64_t raw, I64());
    x = static_cast<int>(raw);
  }
  return v;
}

Result<std::vector<size_t>> Deserializer::SizeVec() {
  ETSC_ASSIGN_OR_RETURN(size_t n, Len(8));
  std::vector<size_t> v(n);
  for (auto& x : v) {
    ETSC_ASSIGN_OR_RETURN(x, SizeT());
  }
  return v;
}

Result<std::vector<bool>> Deserializer::BoolVec() {
  ETSC_ASSIGN_OR_RETURN(size_t n, Len(1));
  std::vector<bool> v(n);
  for (size_t i = 0; i < v.size(); ++i) {
    ETSC_ASSIGN_OR_RETURN(uint8_t b, U8());
    v[i] = b != 0;
  }
  return v;
}

Result<std::vector<std::vector<double>>> Deserializer::F64Mat() {
  ETSC_ASSIGN_OR_RETURN(size_t n, Len(8));  // one u64 length per row minimum
  std::vector<std::vector<double>> m(n);
  for (auto& row : m) {
    ETSC_ASSIGN_OR_RETURN(row, F64Vec());
  }
  return m;
}

Status Deserializer::Enter(const std::string& tag) {
  ETSC_ASSIGN_OR_RETURN(std::string got, Str());
  if (got != tag) {
    return Status::DataLoss("serialize: expected section '" + tag +
                            "', found '" + got + "'");
  }
  ETSC_ASSIGN_OR_RETURN(uint64_t size, U64());
  ETSC_ASSIGN_OR_RETURN(uint32_t crc, U32());
  ETSC_RETURN_NOT_OK(Need(static_cast<size_t>(size)));
  if (Crc32(body_.data() + pos_, static_cast<size_t>(size)) != crc) {
    return Status::DataLoss("serialize: checksum mismatch in section '" + tag +
                            "'");
  }
  section_ends_.push_back(pos_ + static_cast<size_t>(size));
  return Status::OK();
}

Status Deserializer::Leave() {
  ETSC_CHECK(!section_ends_.empty());
  pos_ = section_ends_.back();
  section_ends_.pop_back();
  return Status::OK();
}

}  // namespace etsc
