#ifndef ETSC_CORE_MODEL_CACHE_H_
#define ETSC_CORE_MODEL_CACHE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/classifier.h"
#include "core/status.h"

namespace etsc {

/// Identity of one fitted model in the cache. Two evaluations that agree on
/// every component train bit-identical models (classifiers derive all
/// randomness from the evaluation seed), so the fitted state can be reused.
struct ModelCacheKey {
  std::string config_fingerprint;    // EarlyClassifier::config_fingerprint()
  uint64_t dataset_fingerprint = 0;  // Dataset::Fingerprint() of the CV input
  size_t fold = 0;                   // fold index within the CV split
  size_t num_folds = 0;              // fold count (defines the split geometry)
  uint64_t seed = 0;                 // EvaluationOptions::seed
};

/// On-disk cache of fitted models in the ETSCMODL format (core/serialize.h).
/// One file per (config, dataset, fold, folds, seed) key under `directory`;
/// stores are atomic (temp file + rename) so a crash mid-write can never
/// leave a half-written entry, and any unreadable/corrupt/mismatched entry is
/// treated as a miss — LoadFitted's header checks make stale entries
/// harmless. Thread-safe: entries are immutable once renamed into place.
///
/// Metrics: model_cache.hits / model_cache.misses / model_cache.stores /
/// model_cache.corrupt_evictions / model_cache.stale_format_demotions (an
/// entry written under an older ETSCMODL format version is demoted to a miss
/// and evicted, never loaded).
class ModelCache {
 public:
  explicit ModelCache(std::string directory);

  /// Reads ETSC_MODEL_CACHE; returns null (caching disabled) when the
  /// variable is unset or empty.
  static std::shared_ptr<ModelCache> FromEnv();

  const std::string& directory() const { return directory_; }

  /// Where the entry for `key` lives: `<dir>/<sanitized name>-<16-hex>.etsc`.
  std::string EntryPath(const ModelCacheKey& key,
                        const std::string& name) const;

  /// Restores `classifier` from the cache. False (a miss) when the entry is
  /// absent, unreadable, corrupt, or was saved under a different
  /// name/configuration; a miss never modifies a fitted classifier's
  /// observable predictions because LoadFitted validates before committing.
  bool TryLoad(const ModelCacheKey& key, EarlyClassifier* classifier) const;

  /// Persists a fitted classifier under `key`. Creates the cache directory on
  /// first use; the entry becomes visible atomically or not at all.
  Status Store(const ModelCacheKey& key, const EarlyClassifier& classifier) const;

 private:
  std::string directory_;
};

}  // namespace etsc

#endif  // ETSC_CORE_MODEL_CACHE_H_
