#include "core/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace etsc::json {

std::string Escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (unsigned char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void Writer::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!has_value_.empty()) {
    if (has_value_.back()) out_ += ',';
    has_value_.back() = true;
  }
}

Writer& Writer::BeginObject() {
  BeforeValue();
  out_ += '{';
  has_value_.push_back(false);
  return *this;
}

Writer& Writer::EndObject() {
  ETSC_DCHECK(!has_value_.empty() && !pending_key_);
  has_value_.pop_back();
  out_ += '}';
  return *this;
}

Writer& Writer::BeginArray() {
  BeforeValue();
  out_ += '[';
  has_value_.push_back(false);
  return *this;
}

Writer& Writer::EndArray() {
  ETSC_DCHECK(!has_value_.empty() && !pending_key_);
  has_value_.pop_back();
  out_ += ']';
  return *this;
}

Writer& Writer::Key(const std::string& key) {
  ETSC_DCHECK(!pending_key_);
  if (!has_value_.empty()) {
    if (has_value_.back()) out_ += ',';
    has_value_.back() = true;
  }
  out_ += '"';
  out_ += Escape(key);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

Writer& Writer::String(const std::string& value) {
  BeforeValue();
  out_ += '"';
  out_ += Escape(value);
  out_ += '"';
  return *this;
}

Writer& Writer::Number(double value) {
  if (!std::isfinite(value)) return Null();
  BeforeValue();
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.*g",
                std::numeric_limits<double>::max_digits10, value);
  out_ += buf;
  return *this;
}

Writer& Writer::Number(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

Writer& Writer::Number(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

Writer& Writer::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

Writer& Writer::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

Writer& Writer::RawValue(const std::string& serialized) {
  BeforeValue();
  out_ += serialized;
  return *this;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

double Value::AsNumber() const {
  if (type == Type::kNull) return std::nan("");
  ETSC_CHECK(type == Type::kNumber);
  return number;
}

const std::string& Value::AsString() const {
  ETSC_CHECK(type == Type::kString);
  return string;
}

bool Value::AsBool() const {
  ETSC_CHECK(type == Type::kBool);
  return bool_value;
}

const Value* Value::Find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Value> Run() {
    Value value;
    ETSC_RETURN_NOT_OK(ParseValue(&value));
    SkipWhitespace();
    if (pos_ != text_.size()) return Error("trailing characters");
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Error(std::string("expected '") + c + "'");
    }
    return Status::OK();
  }

  Status ParseValue(Value* out) {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->type = Value::Type::kString;
        return ParseString(&out->string);
      case 't':
        ETSC_RETURN_NOT_OK(ExpectLiteral("true"));
        out->type = Value::Type::kBool;
        out->bool_value = true;
        return Status::OK();
      case 'f':
        ETSC_RETURN_NOT_OK(ExpectLiteral("false"));
        out->type = Value::Type::kBool;
        out->bool_value = false;
        return Status::OK();
      case 'n':
        ETSC_RETURN_NOT_OK(ExpectLiteral("null"));
        out->type = Value::Type::kNull;
        return Status::OK();
      default:
        return ParseNumber(out);
    }
  }

  Status ExpectLiteral(const char* literal) {
    for (const char* p = literal; *p != '\0'; ++p) {
      if (!Consume(*p)) return Error(std::string("expected '") + literal + "'");
    }
    return Status::OK();
  }

  Status ParseObject(Value* out) {
    ETSC_RETURN_NOT_OK(Expect('{'));
    out->type = Value::Type::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    for (;;) {
      SkipWhitespace();
      std::string key;
      ETSC_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      ETSC_RETURN_NOT_OK(Expect(':'));
      Value value;
      ETSC_RETURN_NOT_OK(ParseValue(&value));
      out->object[std::move(key)] = std::move(value);
      SkipWhitespace();
      if (Consume(',')) continue;
      return Expect('}');
    }
  }

  Status ParseArray(Value* out) {
    ETSC_RETURN_NOT_OK(Expect('['));
    out->type = Value::Type::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    for (;;) {
      Value value;
      ETSC_RETURN_NOT_OK(ParseValue(&value));
      out->array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      return Expect(']');
    }
  }

  Status ParseString(std::string* out) {
    ETSC_RETURN_NOT_OK(Expect('"'));
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) return Error("dangling escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          *out += '"';
          break;
        case '\\':
          *out += '\\';
          break;
        case '/':
          *out += '/';
          break;
        case 'n':
          *out += '\n';
          break;
        case 'r':
          *out += '\r';
          break;
        case 't':
          *out += '\t';
          break;
        case 'b':
          *out += '\b';
          break;
        case 'f':
          *out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape");
            }
          }
          // UTF-8 encode the code point (surrogate pairs are out of scope for
          // the escapes Writer emits, which are all < 0x20).
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(Value* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool digits = false;
    auto eat_digits = [&] {
      while (pos_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        digits = true;
      }
    };
    eat_digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (!digits) return Error("expected a value");
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
        ++pos_;
      }
      bool exp_digits = false;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        exp_digits = true;
      }
      if (!exp_digits) return Error("bad exponent");
    }
    out->type = Value::Type::kNumber;
    out->number = std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Value> Parse(const std::string& text) { return Parser(text).Run(); }

}  // namespace etsc::json
