#ifndef ETSC_CORE_PARALLEL_H_
#define ETSC_CORE_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <memory>

#include "core/deadline.h"
#include "core/status.h"

namespace etsc {

/// Shared concurrency substrate: one lazily-started global thread pool that
/// every parallel loop in the framework (campaign cells, CV folds, MiniROCKET
/// kernel application, EDSC candidate scoring, k-means assignment) draws from,
/// so the process never oversubscribes the machine no matter how the loops
/// nest.
///
/// Width. The pool's parallelism (worker threads + the calling thread) comes
/// from the ETSC_THREADS environment variable at first use, defaulting to
/// std::thread::hardware_concurrency(). Width 1 is an exact serial fallback:
/// no pool is started, every loop below runs inline in the caller, and the
/// results are bit-identical to the parallel runs by construction (see the
/// determinism contract in DESIGN.md section 8).
///
/// Nesting. All loops are caller-participating: the calling thread consumes
/// iterations itself and pool workers only help, so a ParallelFor issued from
/// inside a pool task can never deadlock — in the worst case the caller simply
/// runs every iteration. Helper tasks that were queued but never started are
/// cancelled when the loop drains, so an inner loop never waits behind
/// unrelated long-running outer tasks.
///
/// Determinism. Iteration i writes only to slot i of its output; random draws
/// are made (or per-task seeds split off) *before* dispatch. Error selection
/// is deterministic too: the failure of the lowest-numbered iteration wins,
/// regardless of completion order.

/// Current loop parallelism (worker threads + caller), >= 1. Reads
/// ETSC_THREADS on first call.
size_t MaxParallelism();

/// Overrides the parallelism, resizing the global pool (0 restores the
/// ETSC_THREADS / hardware default). Must not be called while parallel loops
/// are in flight; intended for tests and benchmarks that compare serial vs.
/// parallel execution in one process.
void SetMaxParallelism(size_t width);

/// Runs body(0..n-1) on the pool, blocking until every iteration finished.
/// The first exception (lowest iteration index) is rethrown in the caller.
/// `grain` batches consecutive iterations into one task to amortise dispatch
/// for cheap bodies.
void ParallelFor(size_t n, const std::function<void(size_t)>& body,
                 size_t grain = 1);

/// ParallelFor over Status-returning bodies: returns the first (lowest-index)
/// non-OK Status, skipping iterations that have not started once a failure is
/// observed. When `deadline` is non-null and expires, remaining iterations
/// are skipped and ResourceExhausted(what) is returned — the cooperative
/// cancellation path for budgeted fits that parallelise internally. Each task
/// polls a private copy of the deadline, so the amortised check state is
/// never shared across threads.
Status ParallelForStatus(size_t n, const std::function<Status(size_t)>& body,
                         size_t grain = 1, const Deadline* deadline = nullptr,
                         const std::string& what = "parallel loop cancelled");

/// A group of heterogeneous tasks sharing the pool. Run() dispatches (inline
/// at width 1), Wait() blocks for all of them and returns the first non-OK
/// Status in submission order; exceptions are rethrown from Wait(). The
/// destructor waits for (and discards the status of) any tasks still in
/// flight, so a group can never outlive its captures.
class TaskGroup {
 public:
  TaskGroup();
  ~TaskGroup();
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Dispatches fn; when `deadline` (optional) is already expired at dispatch
  /// or at task start, the task is skipped and its slot reports
  /// ResourceExhausted instead of running.
  void Run(std::function<Status()> fn, const Deadline* deadline = nullptr);

  Status Wait();

 private:
  struct State;
  std::shared_ptr<State> state_;
};

}  // namespace etsc

#endif  // ETSC_CORE_PARALLEL_H_
