#ifndef ETSC_CORE_TRIGGER_H_
#define ETSC_CORE_TRIGGER_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/classifier.h"
#include "core/dataset.h"
#include "core/deadline.h"
#include "core/serialize.h"
#include "core/status.h"
#include "core/time_series.h"

namespace etsc {

/// The classifier/trigger seam (DESIGN.md sec 15).
///
/// Every ETSC algorithm in the paper fuses two concerns: a *base classifier*
/// that labels a prefix, and a *trigger* (stopping rule) that decides whether
/// the label is safe to emit now or whether the series should be observed
/// further. The Trigger interface isolates the second concern so any
/// registered stopping rule composes with any registered base classifier
/// through ComposedEarlyClassifier, turning the fixed set of published
/// pairings into a campaign cross-product axis.

/// How a ComposedEarlyClassifier spaces its checkpoint (prefix-length) grid
/// over the training length L. The variants reproduce the grids of the legacy
/// monolithic algorithms exactly — same rounding, same minimum prefix — so a
/// legacy algorithm and its composed twin halt at identical time-points.
enum class CheckpointGrid {
  kFloorMinTwo,   // max(2, i*L/n), deduped, L appended (ProbThreshold, TEASER)
  kCeilMinTwo,    // max(2, ceil(i*L/n)), deduped, L appended (ECEC)
  kFloorMinOne,   // max(1, i*L/n), deduped, L appended (ECONOMY-K)
  kEveryPoint,    // 1, 2, ..., L (ECTS)
  kTriggerPlanned,  // the trigger's PlanCheckpoints chooses (STRUT)
};

/// Configuration of one classifier/trigger composition.
struct ComposedOptions {
  /// Grid size hint n (ignored by kEveryPoint / kTriggerPlanned).
  size_t num_checkpoints = 20;
  CheckpointGrid grid = CheckpointGrid::kFloorMinTwo;
  /// Z-normalise every series (train and predict) before the bank sees it
  /// (TEASER's optional preprocessing).
  bool z_normalize = false;
};

/// One halt-or-wait verdict.
struct TriggerDecision {
  bool halt = false;
  /// Label override: self-contained triggers (ECTS, ECONOMY-K) carry their
  /// own labelling machinery and decide the label together with the halt.
  /// Empty = use the bank classifier's prediction at this checkpoint.
  std::optional<int> label;
  /// Confidence in the emitted label at the halt point (best posterior,
  /// fused confidence, ...); 1.0 when the trigger has no probabilistic
  /// notion. Propagated into EarlyPrediction::confidence for serving.
  double confidence = 1.0;
};

/// What the composed pipeline shows the trigger at one checkpoint.
struct TriggerEvidence {
  size_t checkpoint = 0;      // index into the checkpoint grid
  size_t prefix_length = 0;   // time-points observed at this checkpoint
  bool is_last = false;       // no later checkpoint fits this series
  size_t train_length = 0;    // training length L the grid was built over
  /// Bank prediction at this checkpoint: argmax of `posteriors` when the
  /// trigger needs_posteriors(), otherwise the bank's Predict(). Zero when
  /// the trigger is self_contained() (no bank).
  int predicted = 0;
  /// Class posteriors aligned with `class_labels`; null when the trigger
  /// does not need them or is self-contained.
  const std::vector<double>* posteriors = nullptr;
  const std::vector<int>* class_labels = nullptr;
  /// The (preprocessed) series being classified.
  const TimeSeries* series = nullptr;
  /// Prediction deadline of the enclosing PredictEarly call; triggers with
  /// expensive per-checkpoint work must poll it.
  const Deadline* deadline = nullptr;
};

/// Per-series mutable trigger scratch (consecutive-hit streaks, incremental
/// 1NN distances, ...). One state lives for one PredictEarly call.
class TriggerState {
 public:
  virtual ~TriggerState() = default;
};

/// Everything a trigger may consult while fitting.
struct TriggerFitContext {
  /// Preprocessed training set (z-normalised already if the composition asks
  /// for it).
  const Dataset* train = nullptr;
  /// The checkpoint grid the composed classifier will walk at predict time.
  const std::vector<size_t>* checkpoints = nullptr;
  /// Fitted per-checkpoint bank, aligned with `checkpoints`; null for
  /// self-contained triggers (no bank is fitted for them).
  const std::vector<std::unique_ptr<FullClassifier>>* bank = nullptr;
  /// Unfitted base prototype; triggers that calibrate via cross-validation
  /// clone and fit it on folds (ECEC, TEASER).
  const FullClassifier* base = nullptr;
  /// Training deadline of the enclosing Fit call.
  const Deadline* deadline = nullptr;
};

/// A stopping rule, decoupled from the classifier it stops.
///
/// Contract:
///  * Fit() must be deterministic given (options, training data): all
///    randomness derives from seeds in the trigger's own options.
///  * Decide() must be const and thread-safe across concurrent series — all
///    per-series scratch lives in the TriggerState.
///  * Save/LoadState round-trip under the bumped ETSCMODL format: a loaded
///    trigger's Decide() is bit-identical to the instance saved.
class Trigger {
 public:
  virtual ~Trigger() = default;

  virtual std::string name() const = 0;

  /// Stable configuration string; see FullClassifier::config_fingerprint.
  virtual std::string config_fingerprint() const { return name(); }

  /// False = the composed pipeline calls the bank's Predict() instead of
  /// PredictProba() (cheaper; STRUT, ECTS).
  virtual bool needs_posteriors() const { return true; }

  /// True = the trigger owns its labelling machinery (ECTS's 1NN, ECONOMY-K's
  /// per-checkpoint GBDTs): the composition fits no bank and the trigger's
  /// decisions carry label overrides.
  virtual bool self_contained() const { return false; }

  /// Whether the trigger itself can observe multivariate series. The
  /// composition is multivariate iff base and trigger both are.
  virtual bool SupportsMultivariate() const { return true; }

  /// Grid the trigger was published with; used when a composition is built
  /// from a registry spec without explicit options.
  virtual ComposedOptions DefaultComposedOptions() const { return {}; }

  /// Validates `train` and optionally replaces the checkpoint grid (STRUT's
  /// truncation-point search runs here, before any bank model is fitted).
  /// Called first in ComposedEarlyClassifier::Fit.
  virtual Status PlanCheckpoints(const Dataset& train, const FullClassifier* base,
                                 const Deadline& deadline,
                                 std::vector<size_t>* checkpoints) {
    (void)train;
    (void)base;
    (void)deadline;
    (void)checkpoints;
    return Status::OK();
  }

  /// Fits the stopping rule (reliability tables, one-class gates, master
  /// prefix lengths, ...). The bank in `ctx` is already fitted.
  virtual Status Fit(const TriggerFitContext& ctx) = 0;

  /// Fresh per-series scratch; null for stateless triggers.
  virtual std::unique_ptr<TriggerState> NewState() const { return nullptr; }

  /// The halt-or-wait verdict at one checkpoint.
  virtual Result<TriggerDecision> Decide(const TriggerEvidence& evidence,
                                         TriggerState* state) const = 0;

  /// Fallback when the checkpoint walk ended without a halt (series shorter
  /// than every checkpoint). Empty = the composition's default fallback (bank
  /// model 0 on the full series). Self-contained triggers override this.
  virtual Result<std::optional<EarlyPrediction>> Finalize(
      const TimeSeries& series, TriggerState* state) const {
    (void)series;
    (void)state;
    return std::optional<EarlyPrediction>();
  }

  /// Fresh, unfitted instance with identical configuration.
  virtual std::unique_ptr<Trigger> CloneUnfitted() const = 0;

  /// Persistence hooks; see FullClassifier::SaveState/LoadState.
  virtual Status SaveState(Serializer& out) const {
    (void)out;
    return Status::NotImplemented(name() + ": trigger persistence not supported");
  }
  virtual Status LoadState(Deserializer& in) {
    (void)in;
    return Status::NotImplemented(name() + ": trigger persistence not supported");
  }
};

/// Name -> factory registry for triggers: the second registry namespace next
/// to ClassifierRegistry. Unknown names yield a structured NotFound listing
/// the registered trigger names (and only those — the namespaces never mix).
class TriggerRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Trigger>()>;

  static TriggerRegistry& Global();

  Status Register(const std::string& name, Factory factory);
  Result<std::unique_ptr<Trigger>> Create(const std::string& name) const;
  bool Contains(const std::string& name) const;
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, Factory> factories_;
};

/// Name -> factory registry for base (full) classifiers usable as the
/// classifier half of a composition.
class BaseClassifierRegistry {
 public:
  using Factory = std::function<std::unique_ptr<FullClassifier>()>;

  static BaseClassifierRegistry& Global();

  Status Register(const std::string& name, Factory factory);
  Result<std::unique_ptr<FullClassifier>> Create(const std::string& name) const;
  bool Contains(const std::string& name) const;
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, Factory> factories_;
};

namespace internal {
struct TriggerRegistrar {
  TriggerRegistrar(const std::string& name, TriggerRegistry::Factory factory);
};
struct BaseClassifierRegistrar {
  BaseClassifierRegistrar(const std::string& name,
                          BaseClassifierRegistry::Factory factory);
};
}  // namespace internal

/// Registers a trigger factory at static-initialisation time:
///   ETSC_REGISTER_TRIGGER("prob", [] { return std::make_unique<ProbTrigger>(); });
#define ETSC_REGISTER_TRIGGER(name, factory)                            \
  static const ::etsc::internal::TriggerRegistrar ETSC_CONCAT_(         \
      etsc_trigger_registrar_, __COUNTER__)(name, factory)

/// Registers a base-classifier factory at static-initialisation time.
#define ETSC_REGISTER_BASE_CLASSIFIER(name, factory)                    \
  static const ::etsc::internal::BaseClassifierRegistrar ETSC_CONCAT_(  \
      etsc_base_registrar_, __COUNTER__)(name, factory)

}  // namespace etsc

#endif  // ETSC_CORE_TRIGGER_H_
