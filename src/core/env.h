#ifndef ETSC_CORE_ENV_H_
#define ETSC_CORE_ENV_H_

#include <string>

namespace etsc::env {

/// Validated numeric environment knob, one contract for every ETSC_* number
/// (the ETSC_THREADS pattern from the threading layer): unset or empty keeps
/// the fallback silently; anything that does not parse as a finite number in
/// [lo, hi] (trailing junk included) logs a warning under `subsystem` and
/// keeps the fallback. Never throws, never aborts — a hostile environment can
/// only ever cost a warning line.
double NumberOr(const char* subsystem, const char* name, double fallback,
                double lo, double hi);

/// String knob: unset or empty yields the fallback, anything else verbatim.
std::string StringOr(const char* name, const char* fallback);

}  // namespace etsc::env

#endif  // ETSC_CORE_ENV_H_
