#include "core/fault.h"

#include <chrono>
#include <limits>
#include <utility>

#include "core/deadline.h"

namespace etsc {

void BurnWallClock(double seconds) {
  if (seconds <= 0.0) return;
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                         std::chrono::duration<double>(seconds));
  volatile uint64_t sink = 0;
  while (std::chrono::steady_clock::now() < until) {
    for (int i = 0; i < 1000; ++i) sink = sink + static_cast<uint64_t>(i);
  }
}

FaultyClassifier::FaultyClassifier(std::unique_ptr<EarlyClassifier> inner,
                                   FaultOptions options)
    : inner_(std::move(inner)), options_(options), rng_(options.seed) {
  ETSC_CHECK(inner_ != nullptr);
}

Status FaultyClassifier::Fit(const Dataset& train) {
  inner_->set_train_budget_seconds(train_budget_seconds());
  inner_->set_predict_budget_seconds(predict_budget_seconds());
  const Deadline deadline = TrainDeadline();
  BurnWallClock(options_.fit_delay_seconds);
  ETSC_RETURN_NOT_OK(deadline.Check(name() + ": train budget exceeded"));
  if (options_.fit_failure_rate > 0.0 &&
      rng_.Bernoulli(options_.fit_failure_rate)) {
    return Status::Internal(name() + ": injected fit failure");
  }
  return inner_->Fit(train);
}

Result<EarlyPrediction> FaultyClassifier::PredictEarly(
    const TimeSeries& series) const {
  const Deadline deadline = PredictDeadline();
  BurnWallClock(options_.predict_delay_seconds);
  ETSC_RETURN_NOT_OK(deadline.Check(name() + ": predict budget exceeded"));
  // One draw decides the injected outcome so the fault stream stays aligned
  // with the call sequence regardless of which rates are enabled.
  const double u = rng_.Uniform();
  if (u < options_.predict_failure_rate) {
    return Status::Internal(name() + ": injected predict failure");
  }
  if (u < options_.predict_failure_rate + options_.garbage_prediction_rate) {
    return EarlyPrediction{std::numeric_limits<int>::max(),
                           series.length() * 2 + 1};
  }
  return inner_->PredictEarly(series);
}

std::string FaultyClassifier::name() const { return "faulty-" + inner_->name(); }

bool FaultyClassifier::SupportsMultivariate() const {
  return inner_->SupportsMultivariate();
}

std::unique_ptr<EarlyClassifier> FaultyClassifier::CloneUntrained() const {
  return std::make_unique<FaultyClassifier>(inner_->CloneUntrained(), options_);
}

Dataset InjectMissingValues(const Dataset& source, double rate, uint64_t seed) {
  Rng rng(seed);
  Dataset corrupted = source;
  if (rate <= 0.0) return corrupted;
  for (size_t i = 0; i < corrupted.size(); ++i) {
    TimeSeries& series = corrupted.instance(i);
    for (size_t v = 0; v < series.num_variables(); ++v) {
      for (size_t t = 0; t < series.length(); ++t) {
        if (rng.Bernoulli(rate)) {
          series.at(v, t) = std::numeric_limits<double>::quiet_NaN();
        }
      }
    }
  }
  return corrupted;
}

}  // namespace etsc
