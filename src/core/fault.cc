#include "core/fault.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "core/deadline.h"

namespace etsc {

namespace {

/// Process-wide campaign-cell ordinal per algorithm name: the k-th wrap of
/// one algorithm to reach its first Fit gets ordinal k. Leaked so it is
/// usable from pool threads regardless of static destruction order.
int NextCellOrdinal(const std::string& algorithm) {
  static std::mutex* const mu = new std::mutex();
  static std::map<std::string, int>* const counts =
      new std::map<std::string, int>();
  std::lock_guard<std::mutex> lock(*mu);
  return ++(*counts)[algorithm];
}

/// Armed serving fault: which point dies, at which 1-based hit. A plain
/// atomic pair — the tick path must stay cheap enough to sit inside Ingest.
std::atomic<int> g_serve_fault_point{-1};  // -1 disarmed, else ServeFaultPoint
std::atomic<int> g_serve_fault_ordinal{0};
std::atomic<int> g_serve_fault_hits[2] = {{0}, {0}};

}  // namespace

void ArmServeFault(ServeFaultPoint point, int ordinal) {
  g_serve_fault_hits[0].store(0, std::memory_order_relaxed);
  g_serve_fault_hits[1].store(0, std::memory_order_relaxed);
  if (ordinal <= 0) {
    g_serve_fault_point.store(-1, std::memory_order_release);
    return;
  }
  g_serve_fault_ordinal.store(ordinal, std::memory_order_relaxed);
  g_serve_fault_point.store(static_cast<int>(point), std::memory_order_release);
}

void ArmServeFaultFromEnv() {
  const char* raw = std::getenv("ETSC_SERVE_FAULT");
  if (raw == nullptr || *raw == '\0') {
    ArmServeFault(ServeFaultPoint::kIngest, 0);  // disarm
    return;
  }
  const std::string spec(raw);
  const auto colon = spec.rfind(':');
  const std::string kind = colon == std::string::npos ? spec : spec.substr(0, colon);
  int ordinal = 0;
  if (colon != std::string::npos) {
    char* end = nullptr;
    const long parsed = std::strtol(spec.c_str() + colon + 1, &end, 10);
    if (end != spec.c_str() + colon + 1 && *end == '\0' && parsed > 0 &&
        parsed < 1000000000L) {
      ordinal = static_cast<int>(parsed);
    }
  }
  if (ordinal > 0 && kind == "die-at-ingest") {
    ArmServeFault(ServeFaultPoint::kIngest, ordinal);
  } else if (ordinal > 0 && kind == "die-at-dispatch") {
    ArmServeFault(ServeFaultPoint::kDispatch, ordinal);
  } else {
    std::fprintf(stderr,
                 "[fault] ignoring invalid ETSC_SERVE_FAULT='%s' (want "
                 "die-at-ingest:K or die-at-dispatch:K)\n",
                 raw);
    ArmServeFault(ServeFaultPoint::kIngest, 0);  // disarm
  }
}

void ServeFaultTick(ServeFaultPoint point) {
  if (g_serve_fault_point.load(std::memory_order_acquire) !=
      static_cast<int>(point)) {
    return;
  }
  const int hit = 1 + g_serve_fault_hits[static_cast<int>(point)].fetch_add(
                          1, std::memory_order_acq_rel);
  if (hit == g_serve_fault_ordinal.load(std::memory_order_relaxed)) {
    std::fprintf(stderr,
                 "[fault] serving: die-at fault on %s #%d — exiting abruptly "
                 "(code %d), WAL left as a crash would\n",
                 point == ServeFaultPoint::kIngest ? "ingest" : "dispatch",
                 hit, kDieAtExitCode);
    std::_Exit(kDieAtExitCode);
  }
}

Status TruncateTail(const std::string& path, size_t drop_bytes) {
  std::FILE* probe = std::fopen(path.c_str(), "rb");
  if (probe == nullptr) {
    return Status::IOError("TruncateTail: cannot open " + path);
  }
  std::fseek(probe, 0, SEEK_END);
  const long size = std::ftell(probe);
  std::fclose(probe);
  if (size < 0) return Status::IOError("TruncateTail: cannot size " + path);
  const long keep =
      drop_bytes >= static_cast<size_t>(size)
          ? 0
          : size - static_cast<long>(drop_bytes);
  if (truncate(path.c_str(), keep) != 0) {
    return Status::IOError("TruncateTail: truncate failed on " + path);
  }
  return Status::OK();
}

void BurnWallClock(double seconds) {
  if (seconds <= 0.0) return;
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                         std::chrono::duration<double>(seconds));
  volatile uint64_t sink = 0;
  while (std::chrono::steady_clock::now() < until) {
    for (int i = 0; i < 1000; ++i) sink = sink + static_cast<uint64_t>(i);
  }
}

FaultyClassifier::FaultyClassifier(std::unique_ptr<EarlyClassifier> inner,
                                   FaultOptions options)
    : inner_(std::move(inner)), options_(options), rng_(options.seed) {
  ETSC_CHECK(inner_ != nullptr);
}

Status FaultyClassifier::Fit(const Dataset& train) {
  inner_->set_train_budget_seconds(train_budget_seconds());
  inner_->set_predict_budget_seconds(predict_budget_seconds());
  const Deadline deadline = TrainDeadline();
  BurnWallClock(options_.fit_delay_seconds);
  ETSC_RETURN_NOT_OK(deadline.Check(name() + ": train budget exceeded"));
  if (options_.fit_failure_rate > 0.0 &&
      rng_.Bernoulli(options_.fit_failure_rate)) {
    return Status::Internal(name() + ": injected fit failure");
  }
  return inner_->Fit(train);
}

Result<EarlyPrediction> FaultyClassifier::PredictEarly(
    const TimeSeries& series) const {
  const Deadline deadline = PredictDeadline();
  BurnWallClock(options_.predict_delay_seconds);
  ETSC_RETURN_NOT_OK(deadline.Check(name() + ": predict budget exceeded"));
  // One draw decides the injected outcome so the fault stream stays aligned
  // with the call sequence regardless of which rates are enabled.
  const double u = rng_.Uniform();
  if (u < options_.predict_failure_rate) {
    return Status::Internal(name() + ": injected predict failure");
  }
  if (u < options_.predict_failure_rate + options_.garbage_prediction_rate) {
    return EarlyPrediction{std::numeric_limits<int>::max(),
                           series.length() * 2 + 1};
  }
  return inner_->PredictEarly(series);
}

std::string FaultyClassifier::name() const { return "faulty-" + inner_->name(); }

bool FaultyClassifier::SupportsMultivariate() const {
  return inner_->SupportsMultivariate();
}

std::unique_ptr<EarlyClassifier> FaultyClassifier::CloneUntrained() const {
  return std::make_unique<FaultyClassifier>(inner_->CloneUntrained(), options_);
}

FlakyClassifier::FlakyClassifier(std::unique_ptr<EarlyClassifier> inner,
                                 int failures_before_success)
    : inner_(std::move(inner)),
      failures_before_success_(failures_before_success) {
  ETSC_CHECK(inner_ != nullptr);
}

Status FlakyClassifier::Fit(const Dataset& train) {
  inner_->set_train_budget_seconds(train_budget_seconds());
  inner_->set_predict_budget_seconds(predict_budget_seconds());
  if (failed_attempts_ < failures_before_success_) {
    ++failed_attempts_;
    return Status::Unavailable(name() + ": injected flaky fit failure (attempt " +
                               std::to_string(failed_attempts_) + " of " +
                               std::to_string(failures_before_success_) +
                               " doomed)");
  }
  return inner_->Fit(train);
}

Result<EarlyPrediction> FlakyClassifier::PredictEarly(
    const TimeSeries& series) const {
  return inner_->PredictEarly(series);
}

std::string FlakyClassifier::name() const { return "flaky-" + inner_->name(); }

bool FlakyClassifier::SupportsMultivariate() const {
  return inner_->SupportsMultivariate();
}

std::unique_ptr<EarlyClassifier> FlakyClassifier::CloneUntrained() const {
  // Fresh clone, fresh attempt counter: each fold's retry history is its own.
  return std::make_unique<FlakyClassifier>(inner_->CloneUntrained(),
                                           failures_before_success_);
}

HangingClassifier::HangingClassifier(std::unique_ptr<EarlyClassifier> inner,
                                     HangOptions options)
    : inner_(std::move(inner)), options_(options) {
  ETSC_CHECK(inner_ != nullptr);
}

Status HangingClassifier::Hang(const char* op) const {
  // The bug being modelled: the implementation ignores its real budget (it
  // polls an infinite deadline) yet still runs the framework's cooperative
  // checks, so only a CancelToken cancellation can reach it.
  const Deadline unbudgeted = Deadline::Infinite();
  const Deadline safety = Deadline::After(options_.max_seconds);
  volatile uint64_t sink = 0;
  while (!unbudgeted.CheckEvery(1)) {
    for (int i = 0; i < 1000; ++i) sink = sink + static_cast<uint64_t>(i);
    if (safety.Expired() && !CancellationRequested()) {
      return Status::Internal(name() + std::string(": ") + op +
                              " hang hit the " +
                              std::to_string(options_.max_seconds) +
                              "s safety valve without a watchdog cancellation");
    }
  }
  return Status::DeadlineExceeded(name() + std::string(": ") + op +
                                  " hang cancelled by watchdog");
}

Status HangingClassifier::Fit(const Dataset& train) {
  inner_->set_train_budget_seconds(train_budget_seconds());
  inner_->set_predict_budget_seconds(predict_budget_seconds());
  if (options_.hang_fit) return Hang("fit");
  return inner_->Fit(train);
}

Result<EarlyPrediction> HangingClassifier::PredictEarly(
    const TimeSeries& series) const {
  if (options_.hang_predict) return Hang("predict");
  return inner_->PredictEarly(series);
}

std::string HangingClassifier::name() const {
  return "hanging-" + inner_->name();
}

bool HangingClassifier::SupportsMultivariate() const {
  return inner_->SupportsMultivariate();
}

std::unique_ptr<EarlyClassifier> HangingClassifier::CloneUntrained() const {
  return std::make_unique<HangingClassifier>(inner_->CloneUntrained(), options_);
}

DieAtClassifier::DieAtClassifier(std::unique_ptr<EarlyClassifier> inner,
                                 int die_at_cell)
    : DieAtClassifier(std::move(inner), die_at_cell,
                      std::make_shared<std::atomic<int>>(0)) {}

DieAtClassifier::DieAtClassifier(std::unique_ptr<EarlyClassifier> inner,
                                 int die_at_cell,
                                 std::shared_ptr<std::atomic<int>> cell_ordinal)
    : inner_(std::move(inner)),
      die_at_cell_(die_at_cell),
      cell_ordinal_(std::move(cell_ordinal)) {
  ETSC_CHECK(inner_ != nullptr);
}

Status DieAtClassifier::Fit(const Dataset& train) {
  inner_->set_train_budget_seconds(train_budget_seconds());
  inner_->set_predict_budget_seconds(predict_budget_seconds());
  int ordinal = cell_ordinal_->load(std::memory_order_acquire);
  if (ordinal == 0) {
    // First Fit of this wrap: claim the cell ordinal. Folds racing on the
    // pool agree on one ordinal via the CAS; the loser reuses the winner's.
    const int fresh = NextCellOrdinal(inner_->name());
    int expected = 0;
    if (cell_ordinal_->compare_exchange_strong(expected, fresh,
                                               std::memory_order_acq_rel)) {
      ordinal = fresh;
    } else {
      ordinal = expected;
    }
  }
  if (ordinal == die_at_cell_) {
    std::fprintf(stderr,
                 "[fault] %s: die-at fault on cell #%d — exiting abruptly "
                 "(code %d), journal left as a crash would\n",
                 name().c_str(), ordinal, kDieAtExitCode);
    std::_Exit(kDieAtExitCode);
  }
  return inner_->Fit(train);
}

Result<EarlyPrediction> DieAtClassifier::PredictEarly(
    const TimeSeries& series) const {
  return inner_->PredictEarly(series);
}

std::string DieAtClassifier::name() const {
  return "die-at-" + inner_->name();
}

bool DieAtClassifier::SupportsMultivariate() const {
  return inner_->SupportsMultivariate();
}

std::unique_ptr<EarlyClassifier> DieAtClassifier::CloneUntrained() const {
  // Clones share the ordinal cell counter: a CV fold's clone belongs to the
  // same campaign cell as its prototype.
  return std::unique_ptr<EarlyClassifier>(new DieAtClassifier(
      inner_->CloneUntrained(), die_at_cell_, cell_ordinal_));
}

Dataset InjectMissingValues(const Dataset& source, double rate, uint64_t seed) {
  Rng rng(seed);
  Dataset corrupted = source;
  if (rate <= 0.0) return corrupted;
  for (size_t i = 0; i < corrupted.size(); ++i) {
    TimeSeries& series = corrupted.instance(i);
    for (size_t v = 0; v < series.num_variables(); ++v) {
      for (size_t t = 0; t < series.length(); ++t) {
        if (rng.Bernoulli(rate)) {
          series.at(v, t) = std::numeric_limits<double>::quiet_NaN();
        }
      }
    }
  }
  return corrupted;
}

}  // namespace etsc
