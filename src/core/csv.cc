#include "core/csv.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace etsc {

namespace {

// Splits one CSV line into label + values. Empty fields and "NaN" (any case)
// parse as NaN. Returns false on malformed numeric fields, reporting the
// 1-based character column where the offending field starts — corrupt
// dataset files are diagnosed to the byte, not to "somewhere in this row".
bool ParseLine(const std::string& line, int* label, std::vector<double>* values,
               std::string* error, size_t* error_column) {
  values->clear();
  size_t pos = 0;
  bool first = true;
  for (;;) {
    const size_t comma = line.find(',', pos);
    const size_t field_end = comma == std::string::npos ? line.size() : comma;
    std::string field = line.substr(pos, field_end - pos);
    const size_t field_column = pos + 1;  // 1-based
    // Trim whitespace.
    const auto begin = field.find_first_not_of(" \t\r");
    const auto end = field.find_last_not_of(" \t\r");
    field = begin == std::string::npos ? "" : field.substr(begin, end - begin + 1);
    if (first) {
      try {
        size_t consumed = 0;
        *label = std::stoi(field, &consumed);
        if (consumed != field.size()) throw std::invalid_argument(field);
      } catch (...) {
        *error = "bad label field '" + field + "'";
        *error_column = field_column;
        return false;
      }
      first = false;
    } else if (field.empty() || field == "NaN" || field == "nan" ||
               field == "NAN" || field == "?") {
      values->push_back(std::numeric_limits<double>::quiet_NaN());
    } else {
      try {
        size_t consumed = 0;
        const double parsed = std::stod(field, &consumed);
        if (consumed != field.size()) throw std::invalid_argument(field);
        values->push_back(parsed);
      } catch (...) {
        *error = "bad numeric field '" + field + "'";
        *error_column = field_column;
        return false;
      }
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return true;
}

}  // namespace

Result<Dataset> ParseCsv(const std::string& content, size_t num_variables,
                         const std::string& name) {
  if (num_variables == 0) {
    return Status::InvalidArgument("ParseCsv: num_variables must be >= 1");
  }
  Dataset dataset;
  dataset.set_name(name);
  std::stringstream ss(content);
  std::string line;
  std::vector<std::vector<double>> channels;
  int pending_label = 0;
  size_t line_no = 0;
  while (std::getline(ss, line)) {
    ++line_no;
    if (line.empty() || line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;
    }
    int label = 0;
    std::vector<double> values;
    std::string error;
    size_t error_column = 1;
    if (!ParseLine(line, &label, &values, &error, &error_column)) {
      return Status::IOError(name + ":" + std::to_string(line_no) + ":" +
                             std::to_string(error_column) + ": " + error);
    }
    if (channels.empty()) {
      pending_label = label;
    } else if (label != pending_label) {
      return Status::IOError(name + ":" + std::to_string(line_no) +
                             ":1: label " + std::to_string(label) +
                             " differs within a multivariate example "
                             "(expected " + std::to_string(pending_label) + ")");
    } else if (values.size() != channels.front().size()) {
      // A ragged variable would be rejected by FromChannels below, but only
      // once the example completes — catch it on the offending row instead.
      return Status::IOError(
          name + ":" + std::to_string(line_no) + ":1: ragged row: " +
          std::to_string(values.size()) + " values where the example's first "
          "variable has " + std::to_string(channels.front().size()));
    }
    channels.push_back(std::move(values));
    if (channels.size() == num_variables) {
      ETSC_ASSIGN_OR_RETURN(TimeSeries ts, TimeSeries::FromChannels(std::move(channels)));
      dataset.Add(std::move(ts), pending_label);
      channels.clear();
    }
  }
  if (!channels.empty()) {
    return Status::IOError(
        name + ":" + std::to_string(line_no) +
        ": truncated file: trailing rows do not form a complete "
        "example (got " + std::to_string(channels.size()) + " of " +
        std::to_string(num_variables) + " variables)");
  }
  return dataset;
}

Result<Dataset> LoadCsv(const std::string& path, size_t num_variables) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto slash = path.find_last_of('/');
  std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
  return ParseCsv(buffer.str(), num_variables, base);
}

std::string ToCsv(const Dataset& dataset) {
  std::string out;
  char buf[64];
  for (size_t i = 0; i < dataset.size(); ++i) {
    const TimeSeries& ts = dataset.instance(i);
    for (size_t v = 0; v < ts.num_variables(); ++v) {
      out += std::to_string(dataset.label(i));
      for (double x : ts.channel(v)) {
        if (std::isnan(x)) {
          out += ",NaN";
        } else {
          std::snprintf(buf, sizeof(buf), ",%.10g", x);
          out += buf;
        }
      }
      out += '\n';
    }
  }
  return out;
}

Status SaveCsv(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out << ToCsv(dataset);
  if (!out) return Status::IOError("write failed for '" + path + "'");
  return Status::OK();
}

}  // namespace etsc
