#include "core/csv.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

namespace etsc {

namespace {

// Splits one CSV line into label + values. Empty fields and "NaN" (any case)
// parse as NaN. Returns false on malformed numeric fields.
bool ParseLine(const std::string& line, int* label, std::vector<double>* values,
               std::string* error) {
  values->clear();
  std::stringstream ss(line);
  std::string field;
  bool first = true;
  while (std::getline(ss, field, ',')) {
    // Trim whitespace.
    const auto begin = field.find_first_not_of(" \t\r");
    const auto end = field.find_last_not_of(" \t\r");
    field = begin == std::string::npos ? "" : field.substr(begin, end - begin + 1);
    if (first) {
      try {
        *label = std::stoi(field);
      } catch (...) {
        *error = "bad label field '" + field + "'";
        return false;
      }
      first = false;
      continue;
    }
    if (field.empty() || field == "NaN" || field == "nan" || field == "NAN" ||
        field == "?") {
      values->push_back(std::numeric_limits<double>::quiet_NaN());
      continue;
    }
    try {
      values->push_back(std::stod(field));
    } catch (...) {
      *error = "bad numeric field '" + field + "'";
      return false;
    }
  }
  if (first) {
    *error = "empty line";
    return false;
  }
  return true;
}

}  // namespace

Result<Dataset> ParseCsv(const std::string& content, size_t num_variables,
                         const std::string& name) {
  if (num_variables == 0) {
    return Status::InvalidArgument("ParseCsv: num_variables must be >= 1");
  }
  Dataset dataset;
  dataset.set_name(name);
  std::stringstream ss(content);
  std::string line;
  std::vector<std::vector<double>> channels;
  int pending_label = 0;
  size_t line_no = 0;
  while (std::getline(ss, line)) {
    ++line_no;
    if (line.empty() || line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;
    }
    int label = 0;
    std::vector<double> values;
    std::string error;
    if (!ParseLine(line, &label, &values, &error)) {
      return Status::IOError("line " + std::to_string(line_no) + ": " + error);
    }
    if (channels.empty()) {
      pending_label = label;
    } else if (label != pending_label) {
      return Status::IOError("line " + std::to_string(line_no) +
                             ": label differs within a multivariate example");
    }
    channels.push_back(std::move(values));
    if (channels.size() == num_variables) {
      ETSC_ASSIGN_OR_RETURN(TimeSeries ts, TimeSeries::FromChannels(std::move(channels)));
      dataset.Add(std::move(ts), pending_label);
      channels.clear();
    }
  }
  if (!channels.empty()) {
    return Status::IOError("trailing rows do not form a complete example");
  }
  return dataset;
}

Result<Dataset> LoadCsv(const std::string& path, size_t num_variables) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto slash = path.find_last_of('/');
  std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
  return ParseCsv(buffer.str(), num_variables, base);
}

std::string ToCsv(const Dataset& dataset) {
  std::string out;
  char buf[64];
  for (size_t i = 0; i < dataset.size(); ++i) {
    const TimeSeries& ts = dataset.instance(i);
    for (size_t v = 0; v < ts.num_variables(); ++v) {
      out += std::to_string(dataset.label(i));
      for (double x : ts.channel(v)) {
        if (std::isnan(x)) {
          out += ",NaN";
        } else {
          std::snprintf(buf, sizeof(buf), ",%.10g", x);
          out += buf;
        }
      }
      out += '\n';
    }
  }
  return out;
}

Status SaveCsv(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out << ToCsv(dataset);
  if (!out) return Status::IOError("write failed for '" + path + "'");
  return Status::OK();
}

}  // namespace etsc
