#ifndef ETSC_CORE_LOG_H_
#define ETSC_CORE_LOG_H_

#include <atomic>
#include <string>

namespace etsc {

/// Severity levels of the framework logger, ordered. ETSC_LOG selects the
/// minimum emitted level by name (debug|info|warn|error|off, default info);
/// SetMinLogLevel overrides it programmatically.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

namespace log_internal {
/// The resolved minimum level; lazily initialised from ETSC_LOG.
std::atomic<int>& MinLevelVar();
}  // namespace log_internal

/// Current minimum emitted level.
inline LogLevel MinLogLevel() {
  return static_cast<LogLevel>(
      log_internal::MinLevelVar().load(std::memory_order_relaxed));
}

/// True when a message at `level` would be emitted — guard expensive
/// formatting with this.
inline bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(MinLogLevel());
}

/// Overrides the minimum level (tests, CLI flags).
void SetMinLogLevel(LogLevel level);

/// Parses a level name ("debug", "info", "warn"/"warning", "error", "off");
/// returns fallback on anything else.
LogLevel ParseLogLevel(const std::string& name, LogLevel fallback);

/// Emits one line to stderr: `[<elapsed>s <L> <tag>] message`. Thread-safe
/// (the line is composed first and written with a single fwrite, so
/// concurrent campaign cells never interleave fragments). printf-style.
void Logf(LogLevel level, const char* tag, const char* format, ...)
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((format(printf, 3, 4)))
#endif
    ;

}  // namespace etsc

#endif  // ETSC_CORE_LOG_H_
