#ifndef ETSC_CORE_COUNTERS_H_
#define ETSC_CORE_COUNTERS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace etsc {

/// Process-wide metric registry fed from the framework's hot paths: distance
/// kernel invocations and early-abandon hit rate, pool queue depth and task
/// latency, deadline slack at decision time, degraded predictions, journal
/// appends, and the worker fabric's lease traffic (fabric.leases_acquired /
/// leases_stolen / heartbeats / heartbeats_missed / lease_waits, plus the
/// coordinator's campaign.worker_restarts). Metrics never influence computed
/// results — they only observe.
///
/// Overhead contract (DESIGN.md section 9): every instrumentation site is
/// guarded by the compile-time-inlined MetricsEnabled() test — one relaxed
/// atomic load and a predictable branch when disabled. When enabled, a
/// Counter::Add is a single relaxed fetch_add; hot loops accumulate locally
/// and publish once per call, never per element.

namespace metrics_internal {
extern std::atomic<bool> g_enabled;
}  // namespace metrics_internal

/// True (the default) while metric recording is on. Inline so disabled
/// instrumentation compiles to a load + branch.
inline bool MetricsEnabled() {
  return metrics_internal::g_enabled.load(std::memory_order_relaxed);
}

/// Flips metric recording; used by tests and by benchmarks that want the
/// instrumented binaries to behave like uninstrumented ones.
void SetMetricsEnabled(bool enabled);

/// Monotonic counter. Thread-safe; relaxed ordering (metrics are not a
/// synchronisation mechanism).
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous level with a high-water mark (e.g. pool queue depth).
class Gauge {
 public:
  void Set(int64_t value);
  void Add(int64_t delta);
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  int64_t max_value() const { return max_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  void RaiseMax(int64_t candidate);

  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> max_{0};
};

/// Distribution summary: count/sum/min/max plus decade buckets spanning
/// [0, 1e6) with underflow (negatives and NaN only — a measurement that can
/// only come from a broken clock) and overflow buckets. Mutex-protected —
/// histograms sit on per-task/per-fold paths, not per-element ones.
class Histogram {
 public:
  /// Index i >= 1 covers [1e-9 * 10^i, 1e-9 * 10^(i+1)). Index 0 covers
  /// [0, 1e-8): the first decade PLUS exact zeros and sub-nanosecond values,
  /// because coarse monotonic clocks legitimately report 0 for fast
  /// operations — those are real "faster than one tick" measurements and must
  /// land in the fastest decade, not be mixed into the underflow bucket with
  /// negative-duration clock bugs (that mixing skewed the Figure-13 latency
  /// quantiles). kUnderflow/kOverflow catch the rest.
  static constexpr size_t kNumBuckets = 15;
  static constexpr size_t kUnderflow = kNumBuckets;
  static constexpr size_t kOverflow = kNumBuckets + 1;

  void Record(double value);

  uint64_t count() const;
  double sum() const;
  double min() const;   // +inf when empty
  double max() const;   // -inf when empty
  double mean() const;  // NaN when empty
  uint64_t bucket(size_t index) const;

  /// Estimated value at quantile q in [0, 1] (NaN when empty): locates the
  /// bucket holding the q-th recorded value and interpolates geometrically
  /// inside it (linearly for the zero-based first bucket), clamped to the
  /// exact observed [min, max]; q = 0 / q = 1 return the exact min / max.
  /// Decade resolution — good for p50/p99 latency reporting, not for tight
  /// tolerance tests.
  double Quantile(double q) const;
  void Reset();

 private:
  mutable std::mutex mu_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  uint64_t buckets_[kNumBuckets + 2] = {};
};

/// Name -> metric map shared by the whole process. Lookup interns the metric
/// on first use and returns a stable reference, so call sites cache it in a
/// function-local static and pay the map lookup exactly once.
class MetricRegistry {
 public:
  /// The process-wide registry (leaked singleton: usable from atexit hooks
  /// and from pool threads that outlive static destruction order).
  static MetricRegistry& Global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Compact JSON snapshot: {"counters":{...},"gauges":{...},
  /// "histograms":{...}} with names in sorted order; histograms summarise as
  /// count/sum/min/max/mean. Safe to call while other threads record.
  std::string ToJson() const;

  /// Zeroes every registered metric (tests; the registry itself is global).
  void ResetAll();

 private:
  MetricRegistry() = default;

  mutable std::mutex mu_;
  // std::map keeps ToJson deterministic; unique_ptr keeps references stable
  // across rehash-free growth.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace etsc

#endif  // ETSC_CORE_COUNTERS_H_
