#ifndef ETSC_CORE_TUNER_H_
#define ETSC_CORE_TUNER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/classifier.h"
#include "core/evaluation.h"

namespace etsc {

/// Hyper-parameter grid search over EarlyClassifier configurations — the
/// MultiETSC-style tuning the paper lists as future work (Sec. 7). Each
/// candidate is a named factory; the tuner cross-validates every candidate on
/// the training data and returns the one with the best objective.
struct TunerCandidate {
  std::string name;
  std::function<std::unique_ptr<EarlyClassifier>()> factory;
};

/// What the tuner maximises.
enum class TunerObjective {
  kAccuracy,
  kF1,
  kHarmonicMean,
};

struct TunerOptions {
  TunerObjective objective = TunerObjective::kHarmonicMean;
  size_t folds = 3;
  uint64_t seed = 31;
  double train_budget_seconds = std::numeric_limits<double>::infinity();
  double predict_budget_seconds = std::numeric_limits<double>::infinity();
};

struct TunerVerdict {
  std::string best_name;
  double best_score = -1.0;
  /// Per-candidate (name, score) in evaluation order; failed candidates get
  /// score -1.
  std::vector<std::pair<std::string, double>> leaderboard;
  /// A fresh classifier of the winning configuration, already trained on the
  /// full tuning dataset.
  std::unique_ptr<EarlyClassifier> best_model;
};

/// Evaluates every candidate by stratified CV on `train` and retrains the
/// winner on all of `train`. Fails when no candidate trains.
Result<TunerVerdict> TuneEarlyClassifier(const Dataset& train,
                                         const std::vector<TunerCandidate>& grid,
                                         const TunerOptions& options = {});

}  // namespace etsc

#endif  // ETSC_CORE_TUNER_H_
