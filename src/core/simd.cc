#include "core/simd.h"

// This translation unit is compiled with -ffp-contract=off (see
// src/core/CMakeLists.txt): the scalar reference spells out std::fma exactly
// where the vector path uses fused multiply-add, and spells mul/add where the
// vector path does not fuse — the compiler must not be able to contract one
// side only, or ETSC_SIMD would stop being a pure execution knob.
//
// Canonical accumulation structure (shared by every path of SumSqDiff and
// MinSubseriesSq): 16 independent lanes filled stride-16 (element i feeds
// lane i%16), lane-combined elementwise as (v0+v1)+(v2+v3) into 4 lanes, a
// stride-4 continuation on those lanes, the fixed (s0+s1)+(s2+s3) horizontal
// reduction of PR 2, then a sequential scalar tail. The AVX2 path maps lanes
// 4k..4k+3 onto vector accumulator k; the scalar reference keeps them in an
// acc[16] array, which GCC auto-vectorizes value-preservingly (stride-N
// independent partial sums need no reassociation) — so the ETSC_SIMD=0 path
// is the determinism reference, not a performance handicap.

#include <atomic>
#include <bit>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "core/log.h"

#if defined(__AVX2__)
#include <immintrin.h>
#define ETSC_SIMD_LEVEL 2
#elif defined(__SSE2__) || defined(_M_X64)
#include <emmintrin.h>
#define ETSC_SIMD_LEVEL 1
#else
#define ETSC_SIMD_LEVEL 0
#endif

#if ETSC_SIMD_LEVEL == 2 && defined(__FMA__)
#define ETSC_SIMD_FMA 1
#else
#define ETSC_SIMD_FMA 0
#endif

namespace etsc {
namespace simd {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr size_t kNoPos = ~size_t{0};

/// The one multiply-add the whole layer agrees on: fused exactly when the
/// vector path fuses (FMA builds), plain mul+add otherwise.
inline double MulAdd(double x, double y, double acc) {
#if ETSC_SIMD_FMA
  return std::fma(x, y, acc);
#else
  return acc + x * y;
#endif
}

/// (a.gain, a.pos) vs a candidate, first-strictly-greater-wins: ties keep the
/// lower position, matching a sequential ascending scan.
inline void ConsiderSplit(SplitScanBest* best, double gain, size_t pos) {
  if (gain > best->gain || (gain == best->gain && pos < best->pos)) {
    best->gain = gain;
    best->pos = pos;
  }
}

std::atomic<int> g_enabled{-1};

int ParseEnabledEnv() {
  const char* value = std::getenv("ETSC_SIMD");
  constexpr int kFallback = 1;
  if (value == nullptr || *value == '\0') return kFallback;
  // Same validation contract as ETSC_THREADS: "yes", "01x" or an overflowing
  // value silently flipping the kernel path would hide a mistyped config.
  char* end = nullptr;
  errno = 0;
  const unsigned long parsed = std::strtoul(value, &end, 10);
  const char* rest = end;
  while (rest != nullptr && *rest != '\0' &&
         std::isspace(static_cast<unsigned char>(*rest))) {
    ++rest;
  }
  if (end == value || (rest != nullptr && *rest != '\0') || errno == ERANGE ||
      parsed > 1) {
    Logf(LogLevel::kWarn, "simd",
         "ETSC_SIMD=\"%s\" is not 0 or 1; keeping the default (%d)", value,
         kFallback);
    return kFallback;
  }
  return static_cast<int>(parsed);
}

}  // namespace

const char* CompiledIsa() {
#if ETSC_SIMD_LEVEL == 2 && ETSC_SIMD_FMA
  return "avx2+fma";
#elif ETSC_SIMD_LEVEL == 2
  return "avx2";
#elif ETSC_SIMD_LEVEL == 1
  return "sse2";
#else
  return "scalar";
#endif
}

bool Enabled() {
  int v = g_enabled.load(std::memory_order_relaxed);
  if (v < 0) {
    v = ParseEnabledEnv();
    g_enabled.store(v, std::memory_order_relaxed);
  }
  return v != 0 && ETSC_SIMD_LEVEL > 0;
}

const char* ActiveIsa() { return Enabled() ? CompiledIsa() : "scalar"; }

void SetEnabledForTest(int enabled) {
  g_enabled.store(enabled < 0 ? -1 : (enabled != 0 ? 1 : 0),
                  std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Scalar reference path.
// ---------------------------------------------------------------------------

namespace scalar {

double SumSqDiff(const double* a, const double* b, size_t n) {
  double acc[16] = {0.0};
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    for (size_t j = 0; j < 16; ++j) {
      const double d = a[i + j] - b[i + j];
      acc[j] = MulAdd(d, d, acc[j]);
    }
  }
  double s0 = (acc[0] + acc[4]) + (acc[8] + acc[12]);
  double s1 = (acc[1] + acc[5]) + (acc[9] + acc[13]);
  double s2 = (acc[2] + acc[6]) + (acc[10] + acc[14]);
  double s3 = (acc[3] + acc[7]) + (acc[11] + acc[15]);
  for (; i + 4 <= n; i += 4) {
    const double d0 = a[i] - b[i];
    const double d1 = a[i + 1] - b[i + 1];
    const double d2 = a[i + 2] - b[i + 2];
    const double d3 = a[i + 3] - b[i + 3];
    s0 = MulAdd(d0, d0, s0);
    s1 = MulAdd(d1, d1, s1);
    s2 = MulAdd(d2, d2, s2);
    s3 = MulAdd(d3, d3, s3);
  }
  double sum = (s0 + s1) + (s2 + s3);
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    sum = MulAdd(d, d, sum);
  }
  return sum;
}

double MinSubseriesSq(const double* pattern, size_t m, const double* series,
                      size_t n, double best_sq, uint64_t* windows,
                      uint64_t* abandoned) {
  uint64_t num_windows = 0;
  uint64_t num_abandoned = 0;
  if (m == 0 || n < m) {
    if (windows != nullptr) *windows = 0;
    if (abandoned != nullptr) *abandoned = 0;
    return kInf;
  }
  for (size_t start = 0; start + m <= n; ++start) {
    ++num_windows;
    const double* s = series + start;
    bool drop = false;
    size_t i = 0;
    // Phase 1: 16 lanes, abandon check once per block. Partial sums of
    // squares only grow, so checkpoint granularity cannot change which
    // windows are abandoned — the final sum is always checked below.
    double acc[16] = {0.0};
    for (; i + 16 <= m; i += 16) {
      for (size_t j = 0; j < 16; ++j) {
        const double d = pattern[i + j] - s[i + j];
        acc[j] = MulAdd(d, d, acc[j]);
      }
      const double partial =
          (((acc[0] + acc[4]) + (acc[8] + acc[12])) +
           ((acc[1] + acc[5]) + (acc[9] + acc[13]))) +
          (((acc[2] + acc[6]) + (acc[10] + acc[14])) +
           ((acc[3] + acc[7]) + (acc[11] + acc[15])));
      if (partial >= best_sq) {
        drop = true;
        break;
      }
    }
    if (drop) {
      ++num_abandoned;
      continue;
    }
    // Phase 2: the 4 combined lanes of PR 2's kernel, check per 4-block.
    double s0 = (acc[0] + acc[4]) + (acc[8] + acc[12]);
    double s1 = (acc[1] + acc[5]) + (acc[9] + acc[13]);
    double s2 = (acc[2] + acc[6]) + (acc[10] + acc[14]);
    double s3 = (acc[3] + acc[7]) + (acc[11] + acc[15]);
    for (; i + 4 <= m; i += 4) {
      const double d0 = pattern[i] - s[i];
      const double d1 = pattern[i + 1] - s[i + 1];
      const double d2 = pattern[i + 2] - s[i + 2];
      const double d3 = pattern[i + 3] - s[i + 3];
      s0 = MulAdd(d0, d0, s0);
      s1 = MulAdd(d1, d1, s1);
      s2 = MulAdd(d2, d2, s2);
      s3 = MulAdd(d3, d3, s3);
      if ((s0 + s1) + (s2 + s3) >= best_sq) {
        drop = true;
        break;
      }
    }
    if (drop) {
      ++num_abandoned;
      continue;
    }
    // Phase 3: sequential tail, check per element.
    double sum = (s0 + s1) + (s2 + s3);
    for (; i < m; ++i) {
      const double d = pattern[i] - s[i];
      sum = MulAdd(d, d, sum);
      if (sum >= best_sq) {
        drop = true;
        break;
      }
    }
    if (drop) {
      ++num_abandoned;
      continue;
    }
    best_sq = sum;
    if (best_sq == 0.0) break;
  }
  if (windows != nullptr) *windows = num_windows;
  if (abandoned != nullptr) *abandoned = num_abandoned;
  return best_sq;
}

void Axpy(double w, const double* x, double* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = MulAdd(w, x[i], out[i]);
}

size_t CountGreater(const double* x, size_t n, double threshold) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) count += x[i] > threshold ? 1 : 0;
  return count;
}

void RotatePhasors(const double* cos_t, const double* sin_t, double delta,
                   double* re, double* im, size_t k) {
  // Deliberately unfused (this TU builds with -ffp-contract=off): a one-sided
  // contraction of re_new*c - im_new*s is exactly the drift this layer bans.
  for (size_t i = 0; i < k; ++i) {
    const double re_new = re[i] + delta;
    const double im_new = im[i];
    re[i] = re_new * cos_t[i] - im_new * sin_t[i];
    im[i] = re_new * sin_t[i] + im_new * cos_t[i];
  }
}

SplitScanBest SplitScan(const double* xv, const double* pg, const double* ph,
                        size_t n, double total_g, double total_h,
                        double parent_score, size_t min_leaf) {
  SplitScanBest best;
  if (n < 2) return best;
  const size_t leaf = min_leaf > 0 ? min_leaf : 1;
  if (n < 2 * leaf) return best;
  const size_t lo = leaf - 1;
  const size_t hi = n - leaf;  // exclusive
  for (size_t pos = lo; pos < hi; ++pos) {
    if (xv[pos] == xv[pos + 1]) continue;  // cannot split between equal values
    const double lg = pg[pos];
    const double lh = ph[pos];
    const double rg = total_g - lg;
    const double rh = total_h - lh;
    if (lh <= 0 || rh <= 0) continue;
    const double score = lg * lg / lh + rg * rg / rh;
    const double gain = score - parent_score;
    if (gain > best.gain) {
      best.gain = gain;
      best.pos = pos;
    }
  }
  return best;
}

}  // namespace scalar

// ---------------------------------------------------------------------------
// AVX2 path: 4 vector accumulators mirror the canonical 16 lanes.
// ---------------------------------------------------------------------------

#if ETSC_SIMD_LEVEL == 2

namespace vec {
namespace {

inline __m256d MulAddV(__m256d x, __m256d y, __m256d acc) {
#if ETSC_SIMD_FMA
  return _mm256_fmadd_pd(x, y, acc);
#else
  return _mm256_add_pd(acc, _mm256_mul_pd(x, y));
#endif
}

/// Fixed-order horizontal reduction (s0+s1)+(s2+s3) over the 4 lanes.
inline double HSum(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const double s0 = _mm_cvtsd_f64(lo);
  const double s1 = _mm_cvtsd_f64(_mm_unpackhi_pd(lo, lo));
  const double s2 = _mm_cvtsd_f64(hi);
  const double s3 = _mm_cvtsd_f64(_mm_unpackhi_pd(hi, hi));
  return (s0 + s1) + (s2 + s3);
}

/// Elementwise (v0+v1)+(v2+v3): the canonical 16->4 lane combine.
inline __m256d Combine4(__m256d v0, __m256d v1, __m256d v2, __m256d v3) {
  return _mm256_add_pd(_mm256_add_pd(v0, v1), _mm256_add_pd(v2, v3));
}

}  // namespace

double SumSqDiff(const double* a, const double* b, size_t n) {
  __m256d a0 = _mm256_setzero_pd();
  __m256d a1 = _mm256_setzero_pd();
  __m256d a2 = _mm256_setzero_pd();
  __m256d a3 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256d d0 =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    const __m256d d1 =
        _mm256_sub_pd(_mm256_loadu_pd(a + i + 4), _mm256_loadu_pd(b + i + 4));
    const __m256d d2 =
        _mm256_sub_pd(_mm256_loadu_pd(a + i + 8), _mm256_loadu_pd(b + i + 8));
    const __m256d d3 =
        _mm256_sub_pd(_mm256_loadu_pd(a + i + 12), _mm256_loadu_pd(b + i + 12));
    a0 = MulAddV(d0, d0, a0);
    a1 = MulAddV(d1, d1, a1);
    a2 = MulAddV(d2, d2, a2);
    a3 = MulAddV(d3, d3, a3);
  }
  __m256d acc = Combine4(a0, a1, a2, a3);
  for (; i + 4 <= n; i += 4) {
    const __m256d d =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    acc = MulAddV(d, d, acc);
  }
  double sum = HSum(acc);
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    sum = MulAdd(d, d, sum);
  }
  return sum;
}

double MinSubseriesSq(const double* pattern, size_t m, const double* series,
                      size_t n, double best_sq, uint64_t* windows,
                      uint64_t* abandoned) {
  uint64_t num_windows = 0;
  uint64_t num_abandoned = 0;
  if (m == 0 || n < m) {
    if (windows != nullptr) *windows = 0;
    if (abandoned != nullptr) *abandoned = 0;
    return kInf;
  }
  for (size_t start = 0; start + m <= n; ++start) {
    ++num_windows;
    const double* s = series + start;
    bool drop = false;
    size_t i = 0;
    __m256d a0 = _mm256_setzero_pd();
    __m256d a1 = _mm256_setzero_pd();
    __m256d a2 = _mm256_setzero_pd();
    __m256d a3 = _mm256_setzero_pd();
    for (; i + 16 <= m; i += 16) {
      const __m256d d0 = _mm256_sub_pd(_mm256_loadu_pd(pattern + i),
                                       _mm256_loadu_pd(s + i));
      const __m256d d1 = _mm256_sub_pd(_mm256_loadu_pd(pattern + i + 4),
                                       _mm256_loadu_pd(s + i + 4));
      const __m256d d2 = _mm256_sub_pd(_mm256_loadu_pd(pattern + i + 8),
                                       _mm256_loadu_pd(s + i + 8));
      const __m256d d3 = _mm256_sub_pd(_mm256_loadu_pd(pattern + i + 12),
                                       _mm256_loadu_pd(s + i + 12));
      a0 = MulAddV(d0, d0, a0);
      a1 = MulAddV(d1, d1, a1);
      a2 = MulAddV(d2, d2, a2);
      a3 = MulAddV(d3, d3, a3);
      if (HSum(Combine4(a0, a1, a2, a3)) >= best_sq) {
        drop = true;
        break;
      }
    }
    if (drop) {
      ++num_abandoned;
      continue;
    }
    __m256d acc = Combine4(a0, a1, a2, a3);
    for (; i + 4 <= m; i += 4) {
      const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(pattern + i),
                                      _mm256_loadu_pd(s + i));
      acc = MulAddV(d, d, acc);
      if (HSum(acc) >= best_sq) {
        drop = true;
        break;
      }
    }
    if (drop) {
      ++num_abandoned;
      continue;
    }
    double sum = HSum(acc);
    for (; i < m; ++i) {
      const double d = pattern[i] - s[i];
      sum = MulAdd(d, d, sum);
      if (sum >= best_sq) {
        drop = true;
        break;
      }
    }
    if (drop) {
      ++num_abandoned;
      continue;
    }
    best_sq = sum;
    if (best_sq == 0.0) break;
  }
  if (windows != nullptr) *windows = num_windows;
  if (abandoned != nullptr) *abandoned = num_abandoned;
  return best_sq;
}

void Axpy(double w, const double* x, double* out, size_t n) {
  const __m256d vw = _mm256_set1_pd(w);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        out + i, MulAddV(vw, _mm256_loadu_pd(x + i), _mm256_loadu_pd(out + i)));
  }
  for (; i < n; ++i) out[i] = MulAdd(w, x[i], out[i]);
}

size_t CountGreater(const double* x, size_t n, double threshold) {
  const __m256d vt = _mm256_set1_pd(threshold);
  size_t count = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const int mask = _mm256_movemask_pd(
        _mm256_cmp_pd(_mm256_loadu_pd(x + i), vt, _CMP_GT_OQ));
    count += static_cast<size_t>(std::popcount(static_cast<unsigned>(mask)));
  }
  for (; i < n; ++i) count += x[i] > threshold ? 1 : 0;
  return count;
}

void RotatePhasors(const double* cos_t, const double* sin_t, double delta,
                   double* re, double* im, size_t k) {
  const __m256d vd = _mm256_set1_pd(delta);
  size_t i = 0;
  for (; i + 4 <= k; i += 4) {
    const __m256d c = _mm256_loadu_pd(cos_t + i);
    const __m256d sn = _mm256_loadu_pd(sin_t + i);
    const __m256d re_new = _mm256_add_pd(_mm256_loadu_pd(re + i), vd);
    const __m256d im_new = _mm256_loadu_pd(im + i);
    _mm256_storeu_pd(re + i, _mm256_sub_pd(_mm256_mul_pd(re_new, c),
                                           _mm256_mul_pd(im_new, sn)));
    _mm256_storeu_pd(im + i, _mm256_add_pd(_mm256_mul_pd(re_new, sn),
                                           _mm256_mul_pd(im_new, c)));
  }
  for (; i < k; ++i) {
    const double re_new = re[i] + delta;
    const double im_new = im[i];
    re[i] = re_new * cos_t[i] - im_new * sin_t[i];
    im[i] = re_new * sin_t[i] + im_new * cos_t[i];
  }
}

SplitScanBest SplitScan(const double* xv, const double* pg, const double* ph,
                        size_t n, double total_g, double total_h,
                        double parent_score, size_t min_leaf) {
  SplitScanBest best;
  if (n < 2) return best;
  const size_t leaf = min_leaf > 0 ? min_leaf : 1;
  if (n < 2 * leaf) return best;
  const size_t lo = leaf - 1;
  const size_t hi = n - leaf;  // exclusive
  const __m256d vtg = _mm256_set1_pd(total_g);
  const __m256d vth = _mm256_set1_pd(total_h);
  const __m256d vparent = _mm256_set1_pd(parent_score);
  const __m256d vzero = _mm256_setzero_pd();
  const __m256d vninf = _mm256_set1_pd(-kInf);
  __m256d vbest_gain = _mm256_setzero_pd();
  __m256d vbest_pos = _mm256_set1_pd(-1.0);
  size_t pos = lo;
  for (; pos + 4 <= hi; pos += 4) {
    const __m256d x0 = _mm256_loadu_pd(xv + pos);
    const __m256d x1 = _mm256_loadu_pd(xv + pos + 1);
    const __m256d lg = _mm256_loadu_pd(pg + pos);
    const __m256d lh = _mm256_loadu_pd(ph + pos);
    const __m256d rg = _mm256_sub_pd(vtg, lg);
    const __m256d rh = _mm256_sub_pd(vth, lh);
    // valid <=> xv[pos] != xv[pos+1] (NEQ_UQ: the exact negation of ==) and
    // both hessian sums are strictly positive.
    __m256d valid = _mm256_cmp_pd(x0, x1, _CMP_NEQ_UQ);
    valid = _mm256_and_pd(valid, _mm256_cmp_pd(lh, vzero, _CMP_GT_OQ));
    valid = _mm256_and_pd(valid, _mm256_cmp_pd(rh, vzero, _CMP_GT_OQ));
    const __m256d score =
        _mm256_add_pd(_mm256_div_pd(_mm256_mul_pd(lg, lg), lh),
                      _mm256_div_pd(_mm256_mul_pd(rg, rg), rh));
    __m256d gain = _mm256_sub_pd(score, vparent);
    gain = _mm256_blendv_pd(vninf, gain, valid);
    const __m256d better = _mm256_cmp_pd(gain, vbest_gain, _CMP_GT_OQ);
    vbest_gain = _mm256_blendv_pd(vbest_gain, gain, better);
    const __m256d vpos = _mm256_set_pd(
        static_cast<double>(pos + 3), static_cast<double>(pos + 2),
        static_cast<double>(pos + 1), static_cast<double>(pos));
    vbest_pos = _mm256_blendv_pd(vbest_pos, vpos, better);
  }
  // Lane reduce in position order (lane j saw positions base+j), then the
  // scalar remainder — every remaining position is greater than any lane's,
  // so strict > preserves the global first-wins tie rule.
  alignas(32) double gains[4];
  alignas(32) double positions[4];
  _mm256_store_pd(gains, vbest_gain);
  _mm256_store_pd(positions, vbest_pos);
  for (size_t j = 0; j < 4; ++j) {
    if (positions[j] >= 0.0) {
      ConsiderSplit(&best, gains[j], static_cast<size_t>(positions[j]));
    }
  }
  for (; pos < hi; ++pos) {
    if (xv[pos] == xv[pos + 1]) continue;
    const double lg = pg[pos];
    const double lh = ph[pos];
    const double rg = total_g - lg;
    const double rh = total_h - lh;
    if (lh <= 0 || rh <= 0) continue;
    const double score = lg * lg / lh + rg * rg / rh;
    const double gain = score - parent_score;
    if (gain > best.gain) {
      best.gain = gain;
      best.pos = pos;
    }
  }
  if (best.pos == kNoPos) best.gain = 0.0;
  return best;
}

}  // namespace vec

#endif  // ETSC_SIMD_LEVEL == 2

// ---------------------------------------------------------------------------
// SSE2 path: paired __m128d registers mirror the same canonical lanes.
// acc128[2k]/acc128[2k+1] hold canonical lanes (4k,4k+1)/(4k+2,4k+3).
// SplitScan stays on the scalar code (identical results, selection logic is
// not worth 2-wide lanes).
// ---------------------------------------------------------------------------

#if ETSC_SIMD_LEVEL == 1

namespace vec {
namespace {

inline __m128d MulAddV(__m128d x, __m128d y, __m128d acc) {
  return _mm_add_pd(acc, _mm_mul_pd(x, y));
}

/// (s0+s1)+(s2+s3) over the canonical 4 lanes held as (lo: s0,s1; hi: s2,s3).
inline double HSumPair(__m128d lo, __m128d hi) {
  const double s0 = _mm_cvtsd_f64(lo);
  const double s1 = _mm_cvtsd_f64(_mm_unpackhi_pd(lo, lo));
  const double s2 = _mm_cvtsd_f64(hi);
  const double s3 = _mm_cvtsd_f64(_mm_unpackhi_pd(hi, hi));
  return (s0 + s1) + (s2 + s3);
}

}  // namespace

double SumSqDiff(const double* a, const double* b, size_t n) {
  __m128d acc[8];
  for (auto& v : acc) v = _mm_setzero_pd();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    for (size_t j = 0; j < 8; ++j) {
      const __m128d d = _mm_sub_pd(_mm_loadu_pd(a + i + 2 * j),
                                   _mm_loadu_pd(b + i + 2 * j));
      acc[j] = MulAddV(d, d, acc[j]);
    }
  }
  // Canonical combine (v0+v1)+(v2+v3), elementwise on the register pairs.
  __m128d lo = _mm_add_pd(_mm_add_pd(acc[0], acc[2]), _mm_add_pd(acc[4], acc[6]));
  __m128d hi = _mm_add_pd(_mm_add_pd(acc[1], acc[3]), _mm_add_pd(acc[5], acc[7]));
  for (; i + 4 <= n; i += 4) {
    const __m128d d0 = _mm_sub_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i));
    const __m128d d1 =
        _mm_sub_pd(_mm_loadu_pd(a + i + 2), _mm_loadu_pd(b + i + 2));
    lo = MulAddV(d0, d0, lo);
    hi = MulAddV(d1, d1, hi);
  }
  double sum = HSumPair(lo, hi);
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    sum = MulAdd(d, d, sum);
  }
  return sum;
}

double MinSubseriesSq(const double* pattern, size_t m, const double* series,
                      size_t n, double best_sq, uint64_t* windows,
                      uint64_t* abandoned) {
  uint64_t num_windows = 0;
  uint64_t num_abandoned = 0;
  if (m == 0 || n < m) {
    if (windows != nullptr) *windows = 0;
    if (abandoned != nullptr) *abandoned = 0;
    return kInf;
  }
  for (size_t start = 0; start + m <= n; ++start) {
    ++num_windows;
    const double* s = series + start;
    bool drop = false;
    size_t i = 0;
    __m128d acc[8];
    for (auto& v : acc) v = _mm_setzero_pd();
    for (; i + 16 <= m; i += 16) {
      for (size_t j = 0; j < 8; ++j) {
        const __m128d d = _mm_sub_pd(_mm_loadu_pd(pattern + i + 2 * j),
                                     _mm_loadu_pd(s + i + 2 * j));
        acc[j] = MulAddV(d, d, acc[j]);
      }
      const __m128d plo =
          _mm_add_pd(_mm_add_pd(acc[0], acc[2]), _mm_add_pd(acc[4], acc[6]));
      const __m128d phi =
          _mm_add_pd(_mm_add_pd(acc[1], acc[3]), _mm_add_pd(acc[5], acc[7]));
      if (HSumPair(plo, phi) >= best_sq) {
        drop = true;
        break;
      }
    }
    if (drop) {
      ++num_abandoned;
      continue;
    }
    __m128d lo =
        _mm_add_pd(_mm_add_pd(acc[0], acc[2]), _mm_add_pd(acc[4], acc[6]));
    __m128d hi =
        _mm_add_pd(_mm_add_pd(acc[1], acc[3]), _mm_add_pd(acc[5], acc[7]));
    for (; i + 4 <= m; i += 4) {
      const __m128d d0 =
          _mm_sub_pd(_mm_loadu_pd(pattern + i), _mm_loadu_pd(s + i));
      const __m128d d1 =
          _mm_sub_pd(_mm_loadu_pd(pattern + i + 2), _mm_loadu_pd(s + i + 2));
      lo = MulAddV(d0, d0, lo);
      hi = MulAddV(d1, d1, hi);
      if (HSumPair(lo, hi) >= best_sq) {
        drop = true;
        break;
      }
    }
    if (drop) {
      ++num_abandoned;
      continue;
    }
    double sum = HSumPair(lo, hi);
    for (; i < m; ++i) {
      const double d = pattern[i] - s[i];
      sum = MulAdd(d, d, sum);
      if (sum >= best_sq) {
        drop = true;
        break;
      }
    }
    if (drop) {
      ++num_abandoned;
      continue;
    }
    best_sq = sum;
    if (best_sq == 0.0) break;
  }
  if (windows != nullptr) *windows = num_windows;
  if (abandoned != nullptr) *abandoned = num_abandoned;
  return best_sq;
}

void Axpy(double w, const double* x, double* out, size_t n) {
  const __m128d vw = _mm_set1_pd(w);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(out + i,
                  MulAddV(vw, _mm_loadu_pd(x + i), _mm_loadu_pd(out + i)));
  }
  for (; i < n; ++i) out[i] = MulAdd(w, x[i], out[i]);
}

size_t CountGreater(const double* x, size_t n, double threshold) {
  const __m128d vt = _mm_set1_pd(threshold);
  size_t count = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const int mask = _mm_movemask_pd(_mm_cmpgt_pd(_mm_loadu_pd(x + i), vt));
    count += static_cast<size_t>(std::popcount(static_cast<unsigned>(mask)));
  }
  for (; i < n; ++i) count += x[i] > threshold ? 1 : 0;
  return count;
}

void RotatePhasors(const double* cos_t, const double* sin_t, double delta,
                   double* re, double* im, size_t k) {
  const __m128d vd = _mm_set1_pd(delta);
  size_t i = 0;
  for (; i + 2 <= k; i += 2) {
    const __m128d c = _mm_loadu_pd(cos_t + i);
    const __m128d sn = _mm_loadu_pd(sin_t + i);
    const __m128d re_new = _mm_add_pd(_mm_loadu_pd(re + i), vd);
    const __m128d im_new = _mm_loadu_pd(im + i);
    _mm_storeu_pd(re + i,
                  _mm_sub_pd(_mm_mul_pd(re_new, c), _mm_mul_pd(im_new, sn)));
    _mm_storeu_pd(im + i,
                  _mm_add_pd(_mm_mul_pd(re_new, sn), _mm_mul_pd(im_new, c)));
  }
  for (; i < k; ++i) {
    const double re_new = re[i] + delta;
    const double im_new = im[i];
    re[i] = re_new * cos_t[i] - im_new * sin_t[i];
    im[i] = re_new * sin_t[i] + im_new * cos_t[i];
  }
}

SplitScanBest SplitScan(const double* xv, const double* pg, const double* ph,
                        size_t n, double total_g, double total_h,
                        double parent_score, size_t min_leaf) {
  return scalar::SplitScan(xv, pg, ph, n, total_g, total_h, parent_score,
                           min_leaf);
}

}  // namespace vec

#endif  // ETSC_SIMD_LEVEL == 1

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

double SumSqDiff(const double* a, const double* b, size_t n) {
#if ETSC_SIMD_LEVEL > 0
  if (Enabled()) return vec::SumSqDiff(a, b, n);
#endif
  return scalar::SumSqDiff(a, b, n);
}

double MinSubseriesSq(const double* pattern, size_t m, const double* series,
                      size_t n, double best_sq, uint64_t* windows,
                      uint64_t* abandoned) {
#if ETSC_SIMD_LEVEL > 0
  if (Enabled()) {
    return vec::MinSubseriesSq(pattern, m, series, n, best_sq, windows,
                               abandoned);
  }
#endif
  return scalar::MinSubseriesSq(pattern, m, series, n, best_sq, windows,
                                abandoned);
}

void Axpy(double w, const double* x, double* out, size_t n) {
#if ETSC_SIMD_LEVEL > 0
  if (Enabled()) {
    vec::Axpy(w, x, out, n);
    return;
  }
#endif
  scalar::Axpy(w, x, out, n);
}

size_t CountGreater(const double* x, size_t n, double threshold) {
#if ETSC_SIMD_LEVEL > 0
  if (Enabled()) return vec::CountGreater(x, n, threshold);
#endif
  return scalar::CountGreater(x, n, threshold);
}

void RotatePhasors(const double* cos_t, const double* sin_t, double delta,
                   double* re, double* im, size_t k) {
#if ETSC_SIMD_LEVEL > 0
  if (Enabled()) {
    vec::RotatePhasors(cos_t, sin_t, delta, re, im, k);
    return;
  }
#endif
  scalar::RotatePhasors(cos_t, sin_t, delta, re, im, k);
}

SplitScanBest SplitScan(const double* xv, const double* pg, const double* ph,
                        size_t n, double total_g, double total_h,
                        double parent_score, size_t min_leaf) {
#if ETSC_SIMD_LEVEL > 0
  if (Enabled()) {
    return vec::SplitScan(xv, pg, ph, n, total_g, total_h, parent_score,
                          min_leaf);
  }
#endif
  return scalar::SplitScan(xv, pg, ph, n, total_g, total_h, parent_score,
                           min_leaf);
}

}  // namespace simd
}  // namespace etsc
