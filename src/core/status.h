#ifndef ETSC_CORE_STATUS_H_
#define ETSC_CORE_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <variant>

namespace etsc {

/// Error categories for expected runtime failures.
///
/// Following the RocksDB/Arrow convention, expected failures (bad input files,
/// dimension mismatches supplied by the user, untrained models) are reported
/// through Status/Result rather than exceptions; programming errors are caught
/// by ETSC_CHECK/ETSC_DCHECK.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kFailedPrecondition,
  kNotImplemented,
  kResourceExhausted,
  kInternal,
  kDataLoss,
  /// A cooperative deadline (train/predict budget, or a watchdog
  /// cancellation piggybacked on one) expired before the operation finished.
  /// Transient: the supervisor may retry the operation under a fresh budget.
  kDeadlineExceeded,
  /// A transient, externally-caused failure (flaky dependency, injected
  /// fault) that is expected to succeed on retry.
  kUnavailable,
  /// The cell was never attempted because its algorithm was quarantined by
  /// the circuit breaker. Recorded as an explicit journal/report row so
  /// skipped scores are visible, not silently missing.
  kSkippedQuarantine,
};

/// Returns a human-readable name for a status code, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

/// A success-or-error value carried across public API boundaries.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status SkippedQuarantine(std::string msg) {
    return Status(StatusCode::kSkippedQuarantine, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type T or an error Status. Accessing the value of
/// an errored Result aborts (programming error).
template <typename T>
class Result {
 public:
  /// Implicit so `return value;` works in functions returning Result<T>.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit so `return Status::...;` works. The status must not be OK.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (std::get<Status>(repr_).ok()) {
      std::fprintf(stderr, "Result constructed from OK status\n");
      std::abort();
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(repr_);
  }

  const T& value() const& {
    CheckOk();
    return std::get<T>(repr_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(repr_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::fprintf(stderr, "Accessing value of errored Result: %s\n",
                   std::get<Status>(repr_).ToString().c_str());
      std::abort();
    }
  }

  std::variant<T, Status> repr_;
};

namespace internal {
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr);
}  // namespace internal

/// Aborts with a diagnostic when `expr` is false. For programming errors only.
#define ETSC_CHECK(expr)                                        \
  do {                                                          \
    if (!(expr)) {                                              \
      ::etsc::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                           \
  } while (false)

#ifdef NDEBUG
#define ETSC_DCHECK(expr) \
  do {                    \
  } while (false)
#else
#define ETSC_DCHECK(expr) ETSC_CHECK(expr)
#endif

/// Propagates a non-OK Status from the current function.
#define ETSC_RETURN_NOT_OK(expr)              \
  do {                                        \
    ::etsc::Status _etsc_status = (expr);     \
    if (!_etsc_status.ok()) return _etsc_status; \
  } while (false)

/// Evaluates a Result-returning expression, assigning the value or returning
/// the error. Usage: ETSC_ASSIGN_OR_RETURN(auto x, MakeX());
#define ETSC_ASSIGN_OR_RETURN(lhs, expr)              \
  auto ETSC_CONCAT_(_etsc_result_, __LINE__) = (expr); \
  if (!ETSC_CONCAT_(_etsc_result_, __LINE__).ok())     \
    return ETSC_CONCAT_(_etsc_result_, __LINE__).status(); \
  lhs = std::move(ETSC_CONCAT_(_etsc_result_, __LINE__)).value()

#define ETSC_CONCAT_IMPL_(a, b) a##b
#define ETSC_CONCAT_(a, b) ETSC_CONCAT_IMPL_(a, b)

}  // namespace etsc

#endif  // ETSC_CORE_STATUS_H_
