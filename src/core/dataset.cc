#include "core/dataset.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <set>

namespace etsc {

Dataset::Dataset(std::string name, std::vector<TimeSeries> instances,
                 std::vector<int> labels)
    : name_(std::move(name)) {
  ETSC_CHECK(instances.size() == labels.size());
  size_t total = 0;
  for (const auto& ts : instances) {
    total += ts.num_variables() * PaddedLength(ts.length());
  }
  ReservePool(instances.size(), total);
  for (size_t i = 0; i < instances.size(); ++i) {
    AppendToPool(instances[i], labels[i]);
  }
}

Dataset::Dataset(const Dataset& other)
    : name_(other.name_),
      pool_(other.pool_),
      meta_(other.meta_),
      labels_(other.labels_),
      observation_period_seconds_(other.observation_period_seconds_) {
  instances_.reserve(other.instances_.size());
  for (size_t i = 0; i < other.instances_.size(); ++i) {
    if (other.instances_[i].owns_storage()) {
      instances_.push_back(other.instances_[i]);  // detached: deep copy
    } else {
      const SeriesMeta& m = meta_[i];
      instances_.push_back(TimeSeries(pool_.data() + m.offset, m.num_variables,
                                      m.length, m.stride));
    }
  }
}

Dataset& Dataset::operator=(const Dataset& other) {
  if (this != &other) *this = Dataset(other);
  return *this;
}

void Dataset::ReservePool(size_t instances, size_t total_values) {
  pool_.reserve(pool_.size() + total_values);
  meta_.reserve(meta_.size() + instances);
  instances_.reserve(instances_.size() + instances);
  labels_.reserve(labels_.size() + instances);
}

void Dataset::RebuildViews() {
  for (size_t i = 0; i < instances_.size(); ++i) {
    if (instances_[i].owns_storage()) continue;
    const SeriesMeta& m = meta_[i];
    instances_[i] = TimeSeries(pool_.data() + m.offset, m.num_variables,
                               m.length, m.stride);
  }
}

void Dataset::AppendToPool(const TimeSeries& series, int label) {
  SeriesMeta m;
  m.offset = pool_.size();
  m.num_variables = series.num_variables();
  m.length = series.length();
  m.stride = PaddedLength(m.length);
  const double* before = pool_.data();
  pool_.resize(m.offset + m.num_variables * m.stride, 0.0);
  for (size_t v = 0; v < m.num_variables; ++v) {
    std::span<const double> src = series.channel(v);
    std::copy(src.begin(), src.end(),
              pool_.begin() + static_cast<ptrdiff_t>(m.offset + v * m.stride));
  }
  meta_.push_back(m);
  labels_.push_back(label);
  if (pool_.data() != before) RebuildViews();
  instances_.push_back(TimeSeries(pool_.data() + m.offset, m.num_variables,
                                  m.length, m.stride));
}

void Dataset::Add(TimeSeries series, int label) {
  // A view into *this* pool would dangle the moment the pool grows; pin it
  // into an owning copy first. (Views of other datasets are read before this
  // pool is touched, so they are safe as-is.)
  if (!series.owns_storage() && !pool_.empty() &&
      series.channel_data(0) >= pool_.data() &&
      series.channel_data(0) < pool_.data() + pool_.size()) {
    TimeSeries pinned(series);
    AppendToPool(pinned, label);
    return;
  }
  AppendToPool(series, label);
}

size_t Dataset::NumClasses() const { return ClassLabels().size(); }

std::vector<int> Dataset::ClassLabels() const {
  std::set<int> distinct(labels_.begin(), labels_.end());
  return std::vector<int>(distinct.begin(), distinct.end());
}

std::map<int, size_t> Dataset::ClassCounts() const {
  std::map<int, size_t> counts;
  for (int label : labels_) ++counts[label];
  return counts;
}

size_t Dataset::MaxLength() const {
  size_t max_len = 0;
  for (const auto& ts : instances_) max_len = std::max(max_len, ts.length());
  return max_len;
}

size_t Dataset::MinLength() const {
  if (instances_.empty()) return 0;
  size_t min_len = instances_[0].length();
  for (const auto& ts : instances_) min_len = std::min(min_len, ts.length());
  return min_len;
}

size_t Dataset::NumVariables() const {
  return instances_.empty() ? 0 : instances_[0].num_variables();
}

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

inline void FnvMix(uint64_t* h, const void* data, size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < bytes; ++i) {
    *h ^= p[i];
    *h *= kFnvPrime;
  }
}

inline void FnvMixU64(uint64_t* h, uint64_t v) {
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<unsigned char>(v >> (8 * i));
  FnvMix(h, bytes, sizeof(bytes));
}

}  // namespace

uint64_t Dataset::Fingerprint() const {
  uint64_t h = kFnvOffset;
  FnvMix(&h, name_.data(), name_.size());
  FnvMixU64(&h, instances_.size());
  for (size_t i = 0; i < instances_.size(); ++i) {
    FnvMixU64(&h, static_cast<uint64_t>(static_cast<int64_t>(labels_[i])));
    const TimeSeries& ts = instances_[i];
    FnvMixU64(&h, ts.num_variables());
    FnvMixU64(&h, ts.length());
    for (size_t v = 0; v < ts.num_variables(); ++v) {
      for (double value : ts.channel(v)) {
        uint64_t bits;
        std::memcpy(&bits, &value, sizeof(bits));
        FnvMixU64(&h, bits);  // bit pattern: distinguishes -0.0, NaN payloads
      }
    }
  }
  return h;
}

Dataset Dataset::Truncated(size_t len) const {
  Dataset out;
  out.name_ = name_;
  out.observation_period_seconds_ = observation_period_seconds_;
  size_t total = 0;
  for (const auto& ts : instances_) {
    total += ts.num_variables() * PaddedLength(std::min(len, ts.length()));
  }
  out.ReservePool(instances_.size(), total);
  for (size_t i = 0; i < instances_.size(); ++i) {
    out.AppendToPool(instances_[i].Prefix(len), labels_[i]);
  }
  return out;
}

Dataset Dataset::SingleVariable(size_t variable) const {
  Dataset out;
  out.name_ = name_;
  out.observation_period_seconds_ = observation_period_seconds_;
  size_t total = 0;
  for (const auto& ts : instances_) total += PaddedLength(ts.length());
  out.ReservePool(instances_.size(), total);
  for (size_t i = 0; i < instances_.size(); ++i) {
    out.AppendToPool(instances_[i].SingleVariable(variable), labels_[i]);
  }
  return out;
}

Dataset Dataset::Subset(const std::vector<size_t>& indices) const {
  Dataset out;
  out.name_ = name_;
  out.observation_period_seconds_ = observation_period_seconds_;
  size_t total = 0;
  for (size_t i : indices) {
    ETSC_DCHECK(i < size());
    const TimeSeries& ts = instances_[i];
    total += ts.num_variables() * PaddedLength(ts.length());
  }
  out.ReservePool(indices.size(), total);
  for (size_t i : indices) {
    out.AppendToPool(instances_[i], labels_[i]);
  }
  return out;
}

void Dataset::FillMissingValues() {
  for (auto& ts : instances_) ts.FillMissingValues();
}

double Dataset::ClassImbalanceRatio() const {
  const auto counts = ClassCounts();
  if (counts.empty()) return 1.0;
  size_t max_count = 0;
  size_t min_count = instances_.size();
  for (const auto& [label, count] : counts) {
    max_count = std::max(max_count, count);
    min_count = std::min(min_count, count);
  }
  if (min_count == 0) return static_cast<double>(max_count);
  return static_cast<double>(max_count) / static_cast<double>(min_count);
}

double Dataset::CoefficientOfVariation() const {
  double sum = 0.0;
  size_t count = 0;
  for (const auto& ts : instances_) {
    for (size_t v = 0; v < ts.num_variables(); ++v) {
      for (double x : ts.channel(v)) {
        if (!std::isnan(x)) {
          sum += x;
          ++count;
        }
      }
    }
  }
  if (count == 0) return 0.0;
  const double mean = sum / static_cast<double>(count);
  double ss = 0.0;
  for (const auto& ts : instances_) {
    for (size_t v = 0; v < ts.num_variables(); ++v) {
      for (double x : ts.channel(v)) {
        if (!std::isnan(x)) ss += (x - mean) * (x - mean);
      }
    }
  }
  const double stddev = std::sqrt(ss / static_cast<double>(count));
  if (std::abs(mean) < 1e-12) return stddev > 0 ? 1e9 : 0.0;
  return stddev / std::abs(mean);
}

namespace {

// label -> shuffled indices of that class.
std::map<int, std::vector<size_t>> ShuffledClassIndices(const Dataset& dataset,
                                                        Rng* rng) {
  std::map<int, std::vector<size_t>> by_class;
  for (size_t i = 0; i < dataset.size(); ++i) {
    by_class[dataset.label(i)].push_back(i);
  }
  for (auto& [label, indices] : by_class) rng->Shuffle(&indices);
  return by_class;
}

}  // namespace

std::vector<SplitIndices> StratifiedKFold(const Dataset& dataset, size_t k,
                                          Rng* rng) {
  ETSC_CHECK(k >= 2);
  auto by_class = ShuffledClassIndices(dataset, rng);
  std::vector<SplitIndices> folds(k);
  // Deal every class round-robin across folds so each fold keeps the class
  // proportions as closely as integer counts allow.
  std::vector<std::vector<size_t>> fold_members(k);
  for (const auto& [label, indices] : by_class) {
    for (size_t i = 0; i < indices.size(); ++i) {
      fold_members[i % k].push_back(indices[i]);
    }
  }
  for (size_t f = 0; f < k; ++f) {
    folds[f].test = fold_members[f];
    std::sort(folds[f].test.begin(), folds[f].test.end());
    for (size_t g = 0; g < k; ++g) {
      if (g == f) continue;
      folds[f].train.insert(folds[f].train.end(), fold_members[g].begin(),
                            fold_members[g].end());
    }
    std::sort(folds[f].train.begin(), folds[f].train.end());
  }
  return folds;
}

SplitIndices StratifiedSplit(const Dataset& dataset, double train_fraction,
                             Rng* rng) {
  ETSC_CHECK(train_fraction > 0.0 && train_fraction < 1.0);
  auto by_class = ShuffledClassIndices(dataset, rng);
  SplitIndices split;
  for (const auto& [label, indices] : by_class) {
    // Keep at least one instance of every class on each side when possible.
    size_t n_train = static_cast<size_t>(
        std::round(train_fraction * static_cast<double>(indices.size())));
    if (indices.size() >= 2) {
      n_train = std::clamp<size_t>(n_train, 1, indices.size() - 1);
    } else {
      n_train = indices.size();  // Singleton class goes to train.
    }
    for (size_t i = 0; i < indices.size(); ++i) {
      (i < n_train ? split.train : split.test).push_back(indices[i]);
    }
  }
  std::sort(split.train.begin(), split.train.end());
  std::sort(split.test.begin(), split.test.end());
  return split;
}

}  // namespace etsc
