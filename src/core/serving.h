#ifndef ETSC_CORE_SERVING_H_
#define ETSC_CORE_SERVING_H_

#include <chrono>
#include <cstdint>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/classifier.h"
#include "core/dataset.h"
#include "core/deadline.h"
#include "core/status.h"
#include "core/streaming.h"

namespace etsc {

/// Multi-session streaming serving engine (DESIGN.md sec 14, durability and
/// overload policy in sec 16).
///
/// The paper's online setting (Sec. 6.2.5, Figure 13) asks whether one
/// decision fits inside one observation period; the ROADMAP's north star asks
/// the same question under load — one partial series per live vessel, tens of
/// thousands of them, all sharing a handful of fitted models. ServingEngine
/// is that load path: a session table of StreamingSessions over shared
/// read-only classifiers, with
///   * batched dispatch: Ingest() only queues observations; DispatchBatch()
///     drains every queue, grouping sessions that share a model and fanning
///     the groups out over the global thread pool (core/parallel). Each
///     session's observations are replayed in arrival order through its own
///     StreamingSession, so batched decisions are bit-identical to the
///     single-caller streaming path by construction — at any pool width.
///   * durability: with `wal_path` set, every Open / Ingest / Finish / Close
///     / eviction appends one sentinel-terminated row to a per-engine
///     write-ahead journal BEFORE the in-memory state changes (write-ahead,
///     literally: a mutation the WAL refused never happened). Recover(path)
///     replays the journal against the registered models and rebuilds the
///     session table, so a crashed process restarts with every in-flight
///     series intact and post-recovery decisions bit-identical to an
///     uncrashed run; torn tails from a mid-write crash are skipped cleanly.
///   * tiered overload policy: Open() under light load admits; past the soft
///     watermark it first sheds reclaimable sessions (decided ones, then the
///     oldest idle undecided one once they exceed `shed_min_idle_seconds`);
///     only when the table is still at `max_sessions` after shedding does it
///     refuse — Unavailable carrying a machine-readable `retry_after_ms=`
///     hint (RetryAfterMs()), so a traffic spike degrades in stages instead
///     of hitting a wall.
///   * per-session deadlines: a session that has not decided within its
///     budget (core/deadline) is force-finished on the prefix observed so
///     far at the next dispatch — late answers are still answers. With
///     `watchdog_grace` > 0 each dispatched session additionally runs under
///     the supervisor watchdog, so a model that ignores its budget (a hung
///     PredictEarly) is cooperatively cancelled instead of wedging the pool.
///   * eviction: decided and idle sessions are reclaimed explicitly
///     (EvictDecided / EvictIdle) so a long-running server's table tracks
///     live traffic, not its history.
///
/// Thread-safety: every public method except Recover (which requires a
/// quiescent, freshly-constructed engine) is safe to call concurrently. The
/// session table is mutex-guarded; DispatchBatch claims its work under the
/// lock (per-session in-flight flags) and runs it lock-free on the pool, so
/// concurrent Ingest/Open never block behind a running batch, and accessors
/// report Unavailable for the (brief) window a session is being dispatched
/// rather than racing it.
///
/// Metrics: serving.sessions_opened / sessions_rejected / sessions_closed /
/// sessions_evicted / observations_ingested / ingest_rejected / batches /
/// decisions / deadline_forced / shed_decided / shed_idle / shed_refusals /
/// wal_appends / wal_recovered_sessions / wal_replayed_observations /
/// wal_torn_rows counters, a serving.live_sessions gauge, and
/// serving.decision_seconds + serving.batch_seconds + serving.shed_seconds +
/// serving.wal_replay_seconds histograms (the Figure-13 quantity under
/// serving load; p50/p99 via Histogram::Quantile).
struct ServingOptions {
  /// Admission-control capacity of the session table (the hard watermark).
  size_t max_sessions = 100000;
  /// Fraction of max_sessions at which Open() starts shedding reclaimable
  /// sessions before admitting (the soft watermark). 1.0 = shed only when
  /// full.
  double soft_watermark = 0.85;
  /// An undecided session idle at least this long is sheddable once the soft
  /// watermark is crossed (decided sessions are always sheddable there).
  /// Infinity (the default) = never shed undecided sessions.
  double shed_min_idle_seconds = std::numeric_limits<double>::infinity();
  /// Advisory client back-off carried in the Status payload of an
  /// over-capacity refusal ("retry_after_ms=<n>"; RetryAfterMs() parses it).
  double retry_after_ms = 100.0;
  /// Per-session decision budget in seconds, measured from Open(). An
  /// undecided session whose deadline expired is force-finished at the next
  /// DispatchBatch (serving.deadline_forced). Infinity = never force.
  double session_budget_seconds = std::numeric_limits<double>::infinity();
  /// Default idle threshold for EvictIdle() in seconds (a session is idle
  /// since its last Open/Ingest). Infinity = never idle-evict.
  double idle_timeout_seconds = std::numeric_limits<double>::infinity();
  /// > 0: every dispatched session runs under the supervisor watchdog, which
  /// cooperatively cancels it after grace * session_budget_seconds — the
  /// chaos-harness answer to a model that hangs past its budget. Requires a
  /// finite session budget to arm (the watchdog contract). 0 = off.
  double watchdog_grace = 0.0;
  /// Session write-ahead journal path; empty = no durability. An existing
  /// file that was not Recover()ed is rotated to `<path>.stale` on first use
  /// (it is some other engine's history, never appended to blindly).
  std::string wal_path;
  /// Buffer-capacity hint per session (StreamingSession expected_length):
  /// the generators' series length makes steady-state pushes allocation-free.
  size_t expected_length = 0;
  /// Consecutive sessions one pool task dispatches (amortises task dispatch
  /// for cheap per-session work).
  size_t batch_grain = 8;

  /// Defaults overridden by validated environment knobs (core/env — garbage
  /// values warn and keep the default, like ETSC_THREADS):
  /// ETSC_SERVE_MAX_SESSIONS, ETSC_SERVE_BUDGET_MS, ETSC_SERVE_IDLE_MS,
  /// ETSC_SERVE_SOFT_WATERMARK, ETSC_SERVE_SHED_IDLE_MS, ETSC_SERVE_RETRY_MS,
  /// ETSC_SERVE_WATCHDOG_GRACE, ETSC_SERVE_WAL.
  static ServingOptions FromEnv();
};

using SessionId = uint64_t;

/// Point-in-time, lock-consistent view of one session.
struct SessionInfo {
  SessionId id = 0;
  std::string model;
  size_t observed = 0;      // observations already applied to the buffer
  size_t pending = 0;       // observations queued for the next batch
  /// Observations accepted over the session's lifetime (observed + pending +
  /// post-decision discards). Exactly the count of `I` rows the WAL holds
  /// for the session, which is what lets a recovered process resume an
  /// ingest trace at the right offset.
  size_t ingested = 0;
  std::optional<EarlyPrediction> decision;
  /// Trigger metadata of the decision (halt step, earliness, confidence,
  /// forced flag); engaged exactly when `decision` is.
  std::optional<DecisionMeta> meta;
  bool deadline_forced = false;  // decision came from a deadline force-finish
};

/// Counts for one engine (engine-local, unlike the process-wide metrics).
struct ServingStats {
  size_t live_sessions = 0;
  size_t peak_sessions = 0;
  size_t opened = 0;
  size_t rejected = 0;
  size_t closed = 0;
  size_t evicted = 0;
  size_t ingested = 0;
  size_t ingest_rejected = 0;
  size_t batches = 0;
  size_t decisions = 0;
  size_t deadline_forced = 0;
  /// Overload-policy tiers: decided / oldest-idle sessions shed to admit new
  /// traffic, and Opens refused because shedding could not free a slot.
  size_t shed_decided = 0;
  size_t shed_idle = 0;
  size_t shed_refusals = 0;
  /// WAL rows appended by this engine (0 when durability is off).
  size_t wal_appends = 0;
};

/// Outcome of one WAL replay (ServingEngine::Recover).
struct WalRecovery {
  size_t sessions_recovered = 0;    // live sessions after the replay
  size_t sessions_removed = 0;      // Close/eviction rows applied
  size_t observations_replayed = 0;
  size_t finishes_replayed = 0;     // Finish + deadline-force rows
  size_t decisions_recovered = 0;   // sessions holding a decision afterwards
  size_t torn_rows = 0;             // sentinel-less rows skipped (torn tail)
  double replay_seconds = 0.0;
};

/// Parses the machine-readable "retry_after_ms=<n>" hint an over-capacity
/// Open() refusal carries in its Status message; nullopt when absent.
std::optional<double> RetryAfterMs(const Status& status);

class ServingEngine {
 public:
  explicit ServingEngine(ServingOptions options = {});
  ~ServingEngine() = default;
  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Registers a fitted model under `name`; sessions opened against it share
  /// the instance read-only, so `model` must be fitted and must not be
  /// mutated afterwards. `num_variables` is the channel arity every
  /// observation of the model's sessions must have. Names must be free of
  /// commas and control characters (they are WAL row fields).
  Status RegisterModel(const std::string& name,
                       std::shared_ptr<const EarlyClassifier> model,
                       size_t num_variables);

  /// Replays the session WAL at `path` against the registered models and
  /// rebuilds the session table: Open rows re-open sessions under their
  /// original ids, Ingest rows re-queue observations in arrival order,
  /// Finish/force rows re-commit sticky decisions at the same prefix, Close
  /// rows remove. The queued observations then run through the ordinary
  /// DispatchBatch path, so post-recovery decisions are bit-identical to an
  /// uncrashed run of the same event sequence. Appends continue on the same
  /// file. A missing or empty file is a clean empty recovery. Torn
  /// (sentinel-less) tail rows are skipped and counted; a sentineled but
  /// malformed row is DataLoss naming the line; a row against an
  /// unregistered model is FailedPrecondition. Must be called on a quiescent
  /// engine with no sessions and no WAL rows written yet.
  Result<WalRecovery> Recover(const std::string& path);

  /// Admits one new live series against a registered model. Past the soft
  /// watermark the admission first sheds reclaimable sessions (decided, then
  /// oldest-idle per ServingOptions::shed_min_idle_seconds); Unavailable
  /// with a retry_after_ms payload only once the table still holds
  /// max_sessions after shedding. NotFound for an unregistered model.
  Result<SessionId> Open(const std::string& model_name);

  /// Queues one observation for `id` (validated against the model's arity
  /// before it can ever reach the buffer; non-finite values — NaN/Inf from a
  /// corrupt feed — are refused the same way and can never poison the shared
  /// model dispatch). The classifier does NOT run here — that is
  /// DispatchBatch's job. Observations queued after the session decided are
  /// accepted and discarded at dispatch exactly like StreamingSession's
  /// sticky-decision Push path.
  Status Ingest(SessionId id, const std::vector<double>& values);

  /// Drains every session's queue: groups sessions by model, fans the groups
  /// out over the global thread pool, and replays each session's queued
  /// observations in arrival order through its StreamingSession. Sessions
  /// past their deadline that remain undecided are force-finished on the
  /// observed prefix. Returns the number of sessions that reached a decision
  /// in this batch. The first per-session classifier error is kept sticky on
  /// the session and reported by Info()/Finish(); it never aborts the batch.
  Result<size_t> DispatchBatch();

  /// Flushes `id`'s queue and forces a decision on whatever was observed
  /// (end of stream). Sticky like StreamingSession::Finish.
  Result<EarlyPrediction> Finish(SessionId id);

  /// Point-in-time view of one session (NotFound after eviction/close;
  /// Unavailable while a batch is dispatching it).
  Result<SessionInfo> Info(SessionId id) const;

  /// Removes one session.
  Status Close(SessionId id);

  /// Removes every decided session; returns how many were evicted.
  size_t EvictDecided();

  /// Removes every undecided session idle (no Open/Ingest) for longer than
  /// `idle_seconds` (defaults to options.idle_timeout_seconds); returns how
  /// many were evicted. Decided sessions are EvictDecided's business.
  size_t EvictIdle(double idle_seconds = -1.0);

  ServingStats stats() const;
  const ServingOptions& options() const { return options_; }

 private:
  struct ModelEntry {
    std::string name;
    std::shared_ptr<const EarlyClassifier> model;
    size_t num_variables = 0;
  };

  struct Session {
    SessionId id = 0;
    size_t model_index = 0;
    StreamingSession stream;
    std::vector<std::vector<double>> pending;  // queued since last dispatch
    std::vector<std::vector<double>> taking;   // claimed by a running batch
    Deadline deadline;
    std::chrono::steady_clock::time_point last_activity =
        std::chrono::steady_clock::now();
    size_t ingested = 0;          // lifetime accepted observations (WAL rows)
    bool in_flight = false;       // claimed by a running DispatchBatch
    bool deadline_forced = false;
    bool decided_in_batch = false;  // scratch: decision made by this batch
    Status error;                 // first classifier error, sticky

    Session(SessionId id, size_t model_index, const EarlyClassifier& model,
            size_t num_variables, size_t expected_length, Deadline deadline)
        : id(id),
          model_index(model_index),
          stream(model, num_variables, expected_length),
          deadline(deadline) {}
  };

  /// Replays one session's claimed observations through its stream; called
  /// from pool tasks with the session claimed (in_flight) and the table lock
  /// released. Sets decided_in_batch / deadline_forced / error. With
  /// watchdog_grace > 0 the replay runs under a supervisor watchdog watch.
  void RunSession(Session* session);

  /// Appends one sentinel-terminated row to the WAL (lazily arming it on
  /// first use — an existing un-Recover()ed file rotates to .stale) and
  /// flushes. OK when the WAL is disabled. Thread-safe (own mutex, nested
  /// inside mu_ where both are held).
  Status WalAppend(const std::string& row);
  Status WalArmLocked(bool keep_existing);

  /// Overload-policy shedding pass (mu_ held): evicts every decided session,
  /// then — only if that freed nothing and `shed_min_idle_seconds` is finite
  /// — the single oldest-idle undecided session past the threshold. Returns
  /// how many sessions were shed.
  size_t ShedLocked();
  size_t EvictDecidedLocked(bool shed);
  /// Removes one session (mu_ held): WAL row first, then erase. Returns
  /// false when the WAL refused (the session stays).
  bool RemoveSessionLocked(std::map<SessionId,
                                    std::unique_ptr<Session>>::iterator it);

  const ServingOptions options_;

  mutable std::mutex mu_;
  std::vector<ModelEntry> models_;
  std::map<std::string, size_t> model_index_;
  std::map<SessionId, std::unique_ptr<Session>> sessions_;
  SessionId next_id_ = 1;
  ServingStats stats_;

  // WAL state: path fixed at construction (or by Recover), stream armed
  // lazily. Lock order: mu_ before wal_mu_ (RunSession takes wal_mu_ alone).
  mutable std::mutex wal_mu_;
  std::string wal_path_;
  std::ofstream wal_out_;
  bool wal_armed_ = false;
  size_t wal_appends_ = 0;
};

/// One replayable ingest event: `session` is a slot in [0, num_sessions).
struct IngestEvent {
  size_t session = 0;
  std::vector<double> values;
};

/// Deterministic serving workload from a dataset: slot s streams instance
/// s % data.size() point by point; arrivals are interleaved round-robin with
/// a per-round seeded shuffle (live traffic does not arrive sorted by
/// session). A pure function of (data, num_sessions, seed) — the same trace
/// replays bit-identically anywhere.
std::vector<IngestEvent> BuildReplayTrace(const Dataset& data,
                                          size_t num_sessions, uint64_t seed);

/// Outcome of one replayed session, comparable bit-for-bit. The trigger
/// metadata (halt step, earliness ratio, confidence at halt) participates in
/// the equality, so the batched-vs-sequential contract covers it too.
struct ReplayOutcome {
  int label = 0;
  size_t prefix_length = 0;
  bool via_finish = false;   // decided only when forced at end of stream
  bool failed = false;       // classifier error (label/prefix meaningless)
  size_t halt_step = 0;      // observations ingested at the decision
  double earliness = 1.0;    // prefix_length / halt_step
  double confidence = 1.0;   // trigger confidence at the halt

  bool operator==(const ReplayOutcome&) const = default;
};

/// Reference semantics: replays the trace through one StreamingSession per
/// slot, strictly sequentially (the pre-serving single-caller path).
/// Undecided sessions are Finish()ed at end of trace.
std::vector<ReplayOutcome> ReplaySequential(const EarlyClassifier& model,
                                            size_t num_variables,
                                            size_t num_sessions,
                                            const std::vector<IngestEvent>& trace);

/// Replays the trace through `engine` (model must already be registered as
/// `model_name`): opens one session per slot, ingests events in order,
/// dispatches a batch every `dispatch_every` events (0 = one dispatch at the
/// end), and Finish()es undecided sessions. The returned outcomes must be
/// bit-identical to ReplaySequential for any dispatch_every and any
/// ETSC_THREADS — the serving engine's core contract (test-asserted). On a
/// fresh engine, slot s is session id s + 1 (ids are assigned sequentially
/// from 1), which is the mapping ResumeReplayThroughEngine relies on.
Result<std::vector<ReplayOutcome>> ReplayThroughEngine(
    ServingEngine& engine, const std::string& model_name, size_t num_sessions,
    const std::vector<IngestEvent>& trace, size_t dispatch_every);

/// Continues a replay on a Recover()ed engine: slot s maps to session id
/// s + 1 (re-opened when missing); each slot skips the `ingested`
/// observations the WAL already delivered and ingests the remainder of the
/// trace at the same cadence, then Finish()es undecided sessions. A crashed
/// replay resumed through this function yields outcomes bit-identical to an
/// uncrashed ReplayThroughEngine/ReplaySequential over the full trace — the
/// chaos-drill contract (check.sh).
Result<std::vector<ReplayOutcome>> ResumeReplayThroughEngine(
    ServingEngine& engine, const std::string& model_name, size_t num_sessions,
    const std::vector<IngestEvent>& trace, size_t dispatch_every);

}  // namespace etsc

#endif  // ETSC_CORE_SERVING_H_
