#include "core/parallel.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <condition_variable>
#include <cerrno>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "core/counters.h"
#include "core/log.h"
#include "core/trace.h"

namespace etsc {

namespace {

/// Set inside pool workers; lets TaskGroup::Run fall back to inline execution
/// so nested groups can never starve each other of workers.
thread_local bool tls_pool_worker = false;

// Pool metrics: queue depth (with high-water mark), queued->start latency and
// executed-task count. All behind the inlined MetricsEnabled() guard.
Gauge& QueueDepth() {
  static Gauge& g = MetricRegistry::Global().gauge("pool.queue_depth");
  return g;
}
Histogram& TaskLatency() {
  static Histogram& h =
      MetricRegistry::Global().histogram("pool.task_latency_seconds");
  return h;
}
Counter& TasksExecuted() {
  static Counter& c = MetricRegistry::Global().counter("pool.tasks_executed");
  return c;
}

size_t EnvThreadCount() {
  const char* value = std::getenv("ETSC_THREADS");
  const unsigned hw = std::thread::hardware_concurrency();
  const size_t fallback = hw == 0 ? 1 : static_cast<size_t>(hw);
  if (value == nullptr || *value == '\0') return fallback;
  // Validate fully: "8x", "eight" or an overflowing value silently selecting
  // the hardware default would hide a mistyped campaign configuration.
  char* end = nullptr;
  errno = 0;
  const unsigned long parsed = std::strtoul(value, &end, 10);
  const char* rest = end;
  while (rest != nullptr && *rest != '\0' &&
         std::isspace(static_cast<unsigned char>(*rest))) {
    ++rest;
  }
  if (end == value || (rest != nullptr && *rest != '\0') || errno == ERANGE ||
      parsed < 1) {
    Logf(LogLevel::kWarn, "parallel",
         "ETSC_THREADS=\"%s\" is not a positive integer; using the hardware "
         "default (%zu)",
         value, fallback);
    return fallback;
  }
  return static_cast<size_t>(parsed);
}

/// The process-wide pool. Workers are started lazily on the first submit and
/// joined from the destructor at process exit. Tasks must never block on
/// other queued tasks — every loop primitive below has its caller participate
/// in the work, so the queue always drains and workers only accelerate.
class ThreadPool {
 public:
  static ThreadPool& Instance() {
    static ThreadPool pool;
    return pool;
  }

  ~ThreadPool() { Shutdown(); }

  size_t width() {
    std::lock_guard<std::mutex> lock(mu_);
    if (width_ == 0) width_ = EnvThreadCount();
    return width_;
  }

  /// Stops and re-launches workers for a new width (0 = re-read the
  /// environment / hardware default). Leftover queued tasks are executed
  /// inline — by construction they are cancellation-aware no-ops once their
  /// loop has drained.
  void Resize(size_t new_width) {
    std::deque<std::function<void()>> leftovers = StopWorkers();
    for (auto& task : leftovers) task();
    std::lock_guard<std::mutex> lock(mu_);
    width_ = new_width == 0 ? EnvThreadCount() : new_width;
  }

  uint64_t Submit(std::function<void()> task) {
    const uint64_t enqueue_us = trace::NowMicros();
    std::unique_lock<std::mutex> lock(mu_);
    if (width_ == 0) width_ = EnvThreadCount();
    const uint64_t ticket = next_ticket_++;
    queue_.push_back(QueueEntry{ticket, std::move(task), enqueue_us});
    if (MetricsEnabled()) QueueDepth().Add(1);
    // Workers materialise on demand, capped at width-1 (the caller of every
    // loop is the remaining participant).
    if (workers_.size() < width_ - 1 && idle_ == 0) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
    lock.unlock();
    cv_.notify_one();
    return ticket;
  }

  /// Removes a still-queued task. Returns false when it already started (or
  /// finished) — the caller must then wait for its completion.
  bool CancelPending(uint64_t ticket) {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->ticket == ticket) {
        queue_.erase(it);
        if (MetricsEnabled()) QueueDepth().Add(-1);
        return true;
      }
    }
    return false;
  }

 private:
  struct QueueEntry {
    uint64_t ticket;
    std::function<void()> task;
    uint64_t enqueue_us;  // trace clock at Submit, for the latency histogram
  };

  void WorkerLoop() {
    tls_pool_worker = true;
    for (;;) {
      std::function<void()> task;
      uint64_t enqueue_us = 0;
      {
        std::unique_lock<std::mutex> lock(mu_);
        ++idle_;
        cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        --idle_;
        if (stopping_) return;
        task = std::move(queue_.front().task);
        enqueue_us = queue_.front().enqueue_us;
        queue_.pop_front();
      }
      if (MetricsEnabled()) {
        QueueDepth().Add(-1);
        TaskLatency().Record(
            static_cast<double>(trace::NowMicros() - enqueue_us) * 1e-6);
        TasksExecuted().Add(1);
      }
      TraceSpan span("pool", "pool_task");
      task();
    }
  }

  std::deque<std::function<void()>> StopWorkers() {
    std::vector<std::thread> workers;
    std::deque<std::function<void()>> leftovers;
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
      workers.swap(workers_);
      for (auto& entry : queue_) leftovers.push_back(std::move(entry.task));
      if (MetricsEnabled() && !queue_.empty()) {
        QueueDepth().Add(-static_cast<int64_t>(queue_.size()));
      }
      queue_.clear();
    }
    cv_.notify_all();
    for (std::thread& worker : workers) worker.join();
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = false;
    }
    return leftovers;
  }

  void Shutdown() {
    std::deque<std::function<void()>> leftovers = StopWorkers();
    for (auto& task : leftovers) task();
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<QueueEntry> queue_;
  std::vector<std::thread> workers_;
  uint64_t next_ticket_ = 1;
  size_t width_ = 0;  // 0 = not resolved yet
  size_t idle_ = 0;
  bool stopping_ = false;
};

/// Shared bookkeeping of one ParallelFor: an atomic iteration cursor plus the
/// first (lowest-index) failure. Heap-allocated and shared with helper tasks
/// so a cancelled helper can be dropped from the queue safely.
struct LoopState {
  std::atomic<size_t> next{0};
  std::atomic<bool> abort{false};

  std::mutex mu;
  std::condition_variable cv;
  size_t finished_helpers = 0;

  size_t error_index = SIZE_MAX;
  Status status;
  std::exception_ptr exception;

  void Record(size_t index, Status st, std::exception_ptr e) {
    std::lock_guard<std::mutex> lock(mu);
    if (index < error_index) {
      error_index = index;
      status = std::move(st);
      exception = e;
    }
    abort.store(true, std::memory_order_relaxed);
  }
};

/// Consumes chunks until the cursor passes n or a failure aborts the loop.
/// Runs in the caller and in every helper; each participant polls its own
/// copy of the deadline so the amortised expiry state is thread-local.
void DrainChunks(LoopState* state, size_t n, size_t grain,
                 const std::function<Status(size_t)>* body,
                 const Deadline* deadline, const std::string* what) {
  Deadline local = deadline != nullptr ? *deadline : Deadline::Infinite();
  for (;;) {
    if (state->abort.load(std::memory_order_relaxed)) return;
    const size_t start = state->next.fetch_add(grain, std::memory_order_relaxed);
    if (start >= n) return;
    if (deadline != nullptr && local.CheckEvery(4)) {
      state->Record(start, Status::DeadlineExceeded(*what), nullptr);
      return;
    }
    const size_t end = std::min(n, start + grain);
    for (size_t i = start; i < end; ++i) {
      try {
        Status st = (*body)(i);
        if (!st.ok()) {
          state->Record(i, std::move(st), nullptr);
          return;
        }
      } catch (...) {
        state->Record(i, Status::Internal("exception in parallel body"),
                      std::current_exception());
        return;
      }
    }
  }
}

/// The engine behind ParallelFor / ParallelForStatus: dispatch helpers, work
/// alongside them, cancel the ones that never started, wait for the rest.
Status RunLoop(size_t n, size_t grain,
               const std::function<Status(size_t)>& body,
               const Deadline* deadline, const std::string& what) {
  if (n == 0) return Status::OK();
  if (grain == 0) grain = 1;
  ThreadPool& pool = ThreadPool::Instance();
  const size_t chunks = (n + grain - 1) / grain;
  const size_t helpers = std::min(pool.width() - 1, chunks - 1);

  if (helpers == 0) {
    // Exact serial fallback: plain loop, early exit on the first failure.
    Deadline local = deadline != nullptr ? *deadline : Deadline::Infinite();
    for (size_t i = 0; i < n; ++i) {
      if (deadline != nullptr && i % grain == 0 && local.CheckEvery(4)) {
        return Status::DeadlineExceeded(what);
      }
      ETSC_RETURN_NOT_OK(body(i));
    }
    return Status::OK();
  }

  auto state = std::make_shared<LoopState>();
  // Helpers adopt the submitting thread's cancel token (possibly empty) so a
  // watchdog cancellation of the supervised task reaches every participant —
  // and so pool threads never act under a stale token from a previous task.
  std::shared_ptr<CancelToken> token = CurrentCancelToken();
  std::vector<uint64_t> tickets;
  tickets.reserve(helpers);
  for (size_t h = 0; h < helpers; ++h) {
    tickets.push_back(
        pool.Submit([state, n, grain, &body, deadline, &what, token] {
          ScopedCancelToken install(token);
          DrainChunks(state.get(), n, grain, &body, deadline, &what);
          std::lock_guard<std::mutex> lock(state->mu);
          ++state->finished_helpers;
          state->cv.notify_all();
        }));
  }

  DrainChunks(state.get(), n, grain, &body, deadline, &what);

  // The loop has drained (or aborted): helpers still queued would only no-op,
  // so pull them back rather than waiting behind unrelated pool tasks.
  size_t expected = helpers;
  for (uint64_t ticket : tickets) {
    if (pool.CancelPending(ticket)) --expected;
  }
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock,
                   [&] { return state->finished_helpers >= expected; });
    if (state->exception != nullptr) std::rethrow_exception(state->exception);
    return state->status;
  }
}

}  // namespace

size_t MaxParallelism() { return ThreadPool::Instance().width(); }

void SetMaxParallelism(size_t width) { ThreadPool::Instance().Resize(width); }

void ParallelFor(size_t n, const std::function<void(size_t)>& body,
                 size_t grain) {
  const Status status = RunLoop(
      n, grain,
      [&body](size_t i) {
        body(i);
        return Status::OK();
      },
      nullptr, "");
  // Exceptions were rethrown by RunLoop; a void body cannot produce a Status.
  ETSC_CHECK(status.ok());
}

Status ParallelForStatus(size_t n, const std::function<Status(size_t)>& body,
                         size_t grain, const Deadline* deadline,
                         const std::string& what) {
  return RunLoop(n, grain, body, deadline, what);
}

// ---------------------------------------------------------------------------
// TaskGroup
// ---------------------------------------------------------------------------

struct TaskGroup::State {
  std::mutex mu;
  std::condition_variable cv;
  /// Tasks not yet picked up; Wait() and pool helpers both pop from here, so
  /// the group makes progress even when every worker is busy elsewhere.
  std::deque<std::pair<size_t, std::function<Status()>>> todo;
  size_t next_seq = 0;
  size_t running = 0;

  size_t error_seq = SIZE_MAX;
  Status status;
  std::exception_ptr exception;

  /// Records a task failure; OK outcomes are never recorded so they cannot
  /// shadow a later-submitted failure. mu is held by the caller.
  void Record(size_t seq, Status st, std::exception_ptr e) {
    if (st.ok() && e == nullptr) return;
    if (seq < error_seq) {
      error_seq = seq;
      status = std::move(st);
      exception = e;
    }
  }

  /// Pops and runs queued tasks until the deque is empty.
  void Drain() {
    std::unique_lock<std::mutex> lock(mu);
    while (!todo.empty()) {
      auto [seq, fn] = std::move(todo.front());
      todo.pop_front();
      ++running;
      lock.unlock();
      Status st;
      std::exception_ptr e = nullptr;
      try {
        st = fn();
      } catch (...) {
        st = Status::Internal("exception in task group body");
        e = std::current_exception();
      }
      lock.lock();
      Record(seq, std::move(st), e);
      --running;
      cv.notify_all();
    }
  }
};

TaskGroup::TaskGroup() : state_(std::make_shared<State>()) {}

TaskGroup::~TaskGroup() {
  try {
    Wait();
  } catch (...) {
    // A destructor must not throw; Wait() from user code reports failures.
  }
}

void TaskGroup::Run(std::function<Status()> fn, const Deadline* deadline) {
  const bool inline_only = MaxParallelism() == 1 || tls_pool_worker;
  if (deadline != nullptr) {
    // Copy the expiry instant into the closure (the caller's Deadline may die
    // before a queued task starts) and re-check it at task start, so a group
    // whose budget ran out stops launching work instead of burning through
    // the remaining queue.
    Deadline at_dispatch = *deadline;
    fn = [expiry = at_dispatch, inner = std::move(fn)]() -> Status {
      if (expiry.Expired()) {
        return Status::DeadlineExceeded("task group: deadline expired");
      }
      return inner();
    };
    if (at_dispatch.Expired()) {
      std::lock_guard<std::mutex> lock(state_->mu);
      state_->Record(state_->next_seq++,
                     Status::DeadlineExceeded("task group: deadline expired"),
                     nullptr);
      return;
    }
  }
  // Group tasks run under the submitter's cancel token (possibly empty, which
  // deliberately masks whatever token the executing pool thread last held).
  fn = [token = CurrentCancelToken(), inner = std::move(fn)]() -> Status {
    ScopedCancelToken install(token);
    return inner();
  };
  std::shared_ptr<State> state = state_;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->todo.emplace_back(state->next_seq++, std::move(fn));
  }
  if (inline_only) {
    state->Drain();
    return;
  }
  ThreadPool::Instance().Submit([state] { state->Drain(); });
}

Status TaskGroup::Wait() {
  state_->Drain();  // participate instead of idling behind busy workers
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [this] {
    return state_->todo.empty() && state_->running == 0;
  });
  if (state_->exception != nullptr) {
    std::exception_ptr e = state_->exception;
    state_->exception = nullptr;
    std::rethrow_exception(e);
  }
  return state_->status;
}

}  // namespace etsc
