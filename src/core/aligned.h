#ifndef ETSC_CORE_ALIGNED_H_
#define ETSC_CORE_ALIGNED_H_

#include <cstddef>
#include <new>
#include <vector>

namespace etsc {

/// Allocation alignment (bytes) and padding unit (doubles) of every SoA value
/// buffer in the framework. 32 bytes = one AVX2 vector of 4 doubles; SSE2 and
/// scalar builds simply over-align, which is harmless. Channel strides are
/// padded to kSimdWidthDoubles so every channel of a packed series starts on
/// an aligned boundary (DESIGN.md sec 13).
inline constexpr size_t kSimdAlignBytes = 32;
inline constexpr size_t kSimdWidthDoubles = kSimdAlignBytes / sizeof(double);

/// Rounds a channel length up to the SIMD padding unit. The padded tail is
/// always zero-filled: kernels never *need* to read it (they use exact
/// lengths plus scalar tails), but deterministic padding keeps buffers
/// reproducible byte-for-byte and sanitizer-clean under full-vector reads.
inline constexpr size_t PaddedLength(size_t length) {
  return (length + kSimdWidthDoubles - 1) & ~(kSimdWidthDoubles - 1);
}

/// Minimal std::allocator drop-in handing out kSimdAlignBytes-aligned memory,
/// so SoA buffers can be plain std::vectors (growth, value-init and copies
/// for free) while every data() pointer is vector-load aligned.
template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) {}  // NOLINT(runtime/explicit)

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(kSimdAlignBytes)));
  }
  void deallocate(T* p, size_t) noexcept {
    ::operator delete(p, std::align_val_t(kSimdAlignBytes));
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const { return true; }
  template <typename U>
  bool operator!=(const AlignedAllocator<U>&) const { return false; }
};

/// The SoA value-buffer type: contiguous doubles on a 32-byte boundary.
using AlignedVector = std::vector<double, AlignedAllocator<double>>;

}  // namespace etsc

#endif  // ETSC_CORE_ALIGNED_H_
