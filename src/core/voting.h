#ifndef ETSC_CORE_VOTING_H_
#define ETSC_CORE_VOTING_H_

#include <memory>
#include <string>
#include <vector>

#include "core/classifier.h"

namespace etsc {

/// Applies a univariate ETSC algorithm to multivariate data the way the paper
/// does (Sec. 6.1): one classifier instance is trained per variable; at test
/// time each votes a label, the most popular label wins (ties resolved to the
/// first/lowest label), and the reported earliness is the *worst* (largest
/// prefix) among the voters.
class VotingEarlyClassifier : public EarlyClassifier {
 public:
  /// `prototype` supplies CloneUntrained() copies, one per variable.
  explicit VotingEarlyClassifier(std::unique_ptr<EarlyClassifier> prototype);

  Status Fit(const Dataset& train) override;
  Result<EarlyPrediction> PredictEarly(const TimeSeries& series) const override;
  std::string name() const override;
  bool SupportsMultivariate() const override { return true; }
  std::unique_ptr<EarlyClassifier> CloneUntrained() const override;

  size_t num_voters() const { return voters_.size(); }

  std::string config_fingerprint() const override;
  Status SaveState(Serializer& out) const override;
  Status LoadState(Deserializer& in) override;

 private:
  std::unique_ptr<EarlyClassifier> prototype_;
  std::vector<std::unique_ptr<EarlyClassifier>> voters_;
};

/// Wraps `classifier` with voting when the dataset is multivariate and the
/// algorithm does not natively support it; otherwise returns it unchanged.
std::unique_ptr<EarlyClassifier> WrapForDataset(
    std::unique_ptr<EarlyClassifier> classifier, const Dataset& dataset);

}  // namespace etsc

#endif  // ETSC_CORE_VOTING_H_
