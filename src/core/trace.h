#ifndef ETSC_CORE_TRACE_H_
#define ETSC_CORE_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>

#include "core/status.h"

namespace etsc {

/// Span-based tracing for the evaluation framework. Named spans (campaign
/// cell, CV fold, Fit, PredictEarly, pool task, journal append) record their
/// thread id and wall-clock bounds into per-thread buffers and export as
/// Chrome trace_event JSON (load chrome://tracing or https://ui.perfetto.dev).
///
/// Activation. Setting ETSC_TRACE=<path> in the environment enables tracing
/// at process start and writes the trace to <path> at exit. Tests drive the
/// same machinery through SetEnabled / ToChromeJson / WriteChromeTrace.
///
/// Overhead contract (DESIGN.md section 9). trace::Enabled() is a single
/// relaxed atomic load, inlined at every span site; a disabled TraceSpan is
/// that load plus a branch — name formatting is deferred behind the branch
/// via the callable constructor, so dynamic span names cost nothing when
/// tracing is off. Tracing records wall-clock only and never touches the
/// computation, so the serial/parallel bit-identical EvalScores invariant
/// (DESIGN.md section 8) holds with tracing on or off.
namespace trace {

namespace internal {
extern std::atomic<bool> g_enabled;
}  // namespace internal

/// True while span recording is on. Inline: one relaxed load.
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

/// Flips recording. Spans already open keep recording their close.
void SetEnabled(bool enabled);

/// Microseconds since the process's trace epoch (monotonic clock).
uint64_t NowMicros();

/// Total completed spans currently buffered across all threads.
size_t EventCount();

/// Discards all buffered spans (tests).
void Clear();

/// The buffered spans as a Chrome trace_event JSON document:
/// {"traceEvents":[{"name":...,"cat":...,"ph":"X","ts":...,"dur":...,
///   "pid":...,"tid":...}, ...]}. Events carry the real process id, so
/// traces from concurrent worker processes can be concatenated into one
/// timeline with a distinct lane per worker.
std::string ToChromeJson();

/// Labels this process's lane in the exported trace via a "process_name"
/// metadata event (campaign workers call it with their owner id, e.g.
/// "etsc-worker:w1"). Empty (the default) emits no metadata event.
void SetProcessLabel(std::string label);

/// Writes ToChromeJson() to `path`.
Status WriteChromeTrace(const std::string& path);

/// The ETSC_TRACE path captured at process start; empty when unset. When
/// non-empty, an atexit hook writes the trace there.
const std::string& EnvTracePath();

/// Records one completed span; the public entry point used by TraceSpan.
void RecordSpan(const char* category, std::string name, uint64_t start_us,
                uint64_t end_us);

}  // namespace trace

/// RAII span: records [construction, destruction) under `name` when tracing
/// is enabled. For dynamic names pass a callable returning std::string — it
/// is only invoked when tracing is on:
///
///   TraceSpan span("campaign", [&] { return "cell:" + algo + "/" + ds; });
///   TraceSpan span("eval", "PredictEarly");   // static name, no allocation
class TraceSpan {
 public:
  TraceSpan(const char* category, const char* name) {
    if (trace::Enabled()) Begin(category, name);
  }

  template <typename NameFn,
            std::enable_if_t<std::is_invocable_r_v<std::string, NameFn>, int> = 0>
  TraceSpan(const char* category, NameFn&& name_fn) {
    if (trace::Enabled()) Begin(category, std::forward<NameFn>(name_fn)());
  }

  ~TraceSpan() {
    if (begun_) trace::RecordSpan(category_, std::move(name_), start_us_,
                                  trace::NowMicros());
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void Begin(const char* category, std::string name) {
    category_ = category;
    name_ = std::move(name);
    start_us_ = trace::NowMicros();
    begun_ = true;
  }

  const char* category_ = nullptr;
  std::string name_;
  uint64_t start_us_ = 0;
  bool begun_ = false;
};

}  // namespace etsc

#endif  // ETSC_CORE_TRACE_H_
