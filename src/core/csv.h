#ifndef ETSC_CORE_CSV_H_
#define ETSC_CORE_CSV_H_

#include <string>

#include "core/dataset.h"
#include "core/status.h"

namespace etsc {

/// The framework's dataset exchange format (paper Sec. 5.5): each CSV row is
/// one variable of one time-series example; the first value of the row is the
/// class label. Multivariate examples occupy `num_variables` consecutive rows
/// that must carry the same label. Missing measurements may be written as
/// "NaN" or left empty and load as NaN.
///
/// Loads a dataset; `num_variables` is 1 for univariate files.
Result<Dataset> LoadCsv(const std::string& path, size_t num_variables = 1);

/// Parses in-memory CSV content (same format as LoadCsv).
Result<Dataset> ParseCsv(const std::string& content, size_t num_variables = 1,
                         const std::string& name = "csv");

/// Writes a dataset in the same format.
Status SaveCsv(const Dataset& dataset, const std::string& path);

/// Serialises a dataset to CSV text.
std::string ToCsv(const Dataset& dataset);

}  // namespace etsc

#endif  // ETSC_CORE_CSV_H_
