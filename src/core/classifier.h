#ifndef ETSC_CORE_CLASSIFIER_H_
#define ETSC_CORE_CLASSIFIER_H_

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "core/deadline.h"
#include "core/serialize.h"
#include "core/status.h"
#include "core/time_series.h"

namespace etsc {

/// Formats a double for config fingerprints: shortest round-trip-exact,
/// locale-independent representation.
std::string FingerprintDouble(double v);

/// Result of an early classification: the predicted label and how many
/// time-points of the instance the algorithm consumed before committing.
struct EarlyPrediction {
  int label = 0;
  size_t prefix_length = 0;
  /// Trigger confidence in the label at the halt point (best posterior, fused
  /// confidence, ...); 1.0 for algorithms without a probabilistic notion.
  double confidence = 1.0;
};

/// Interface for algorithms that classify complete time-series (the paper's
/// "full TSC" algorithms: WEASEL, MiniROCKET, MLSTM). STRUT builds early
/// classifiers out of these.
class FullClassifier {
 public:
  virtual ~FullClassifier() = default;

  /// Trains on a labelled dataset. All instances must share the variable
  /// count; lengths may vary (algorithms pad or window as needed).
  virtual Status Fit(const Dataset& train) = 0;

  /// Predicts the class of one (complete or truncated) series.
  virtual Result<int> Predict(const TimeSeries& series) const = 0;

  /// Class-membership scores aligned with ClassLabels() of the training set.
  /// Default implementation returns a one-hot vector from Predict().
  virtual Result<std::vector<double>> PredictProba(const TimeSeries& series) const;

  /// Labels seen at Fit time, sorted ascending (defines PredictProba order).
  virtual const std::vector<int>& class_labels() const = 0;

  virtual std::string name() const = 0;

  /// Whether multivariate input is natively supported.
  virtual bool SupportsMultivariate() const = 0;

  /// Fresh, untrained instance with the same configuration. Used by STRUT and
  /// the per-variable voting wrapper to retrain on derived datasets.
  virtual std::unique_ptr<FullClassifier> CloneUntrained() const = 0;

  /// Stable string identifying the configuration (not the fitted state): two
  /// instances with equal fingerprints train identically given the same data
  /// and seed. Default: name(). Used to refuse loading a model saved under a
  /// different configuration.
  virtual std::string config_fingerprint() const { return name(); }

  /// Writes the fitted state in the versioned ETSCMODL format. Requires a
  /// fitted instance; backends without persistence return NotImplemented.
  Status Save(std::ostream& out) const;

  /// Restores fitted state saved by an instance with the same name() and
  /// config_fingerprint(). Mismatches yield InvalidArgument; corrupt or
  /// truncated streams yield DataLoss.
  Status LoadFitted(std::istream& in);

  /// Persistence hooks: serialize/restore fitted state only (configuration is
  /// carried by construction, budgets are runtime settings). Overrides must
  /// produce a LoadState-ed instance whose Predict/PredictProba are
  /// bit-identical to the instance SaveState was called on.
  virtual Status SaveState(Serializer& out) const {
    (void)out;
    return Status::NotImplemented(name() + ": persistence not supported");
  }
  virtual Status LoadState(Deserializer& in) {
    (void)in;
    return Status::NotImplemented(name() + ": persistence not supported");
  }
};

/// Interface every ETSC algorithm implements (mirrors the Python framework's
/// `EarlyClassifier` abstract class, paper Sec. 5.5).
class EarlyClassifier {
 public:
  virtual ~EarlyClassifier() = default;

  /// Trains on complete, labelled series. May return ResourceExhausted when
  /// the configured train budget is exceeded (the paper terminated runs after
  /// 48 hours); callers treat that as "unable to train" (Fig. 13 hatches).
  virtual Status Fit(const Dataset& train) = 0;

  /// Classifies a test instance as early as possible. The returned
  /// prefix_length reports how many points were consumed; it equals
  /// series.length() when the algorithm had to observe everything.
  virtual Result<EarlyPrediction> PredictEarly(const TimeSeries& series) const = 0;

  virtual std::string name() const = 0;

  virtual bool SupportsMultivariate() const = 0;

  /// Fresh, untrained instance with identical configuration.
  virtual std::unique_ptr<EarlyClassifier> CloneUntrained() const = 0;

  /// Stable string identifying the configuration (not the fitted state); see
  /// FullClassifier::config_fingerprint. Default: name().
  virtual std::string config_fingerprint() const { return name(); }

  /// Writes the fitted model in the versioned ETSCMODL format (core/serialize.h).
  /// Requires a fitted instance.
  Status Save(std::ostream& out) const;

  /// Restores a model saved by an instance with the same name() and
  /// config_fingerprint() — construct/configure first, then load. Mismatched
  /// name or configuration yields InvalidArgument; corrupt, truncated or
  /// future-versioned streams yield DataLoss/InvalidArgument, never UB.
  Status LoadFitted(std::istream& in);

  /// Persistence hooks; see FullClassifier::SaveState/LoadState.
  virtual Status SaveState(Serializer& out) const {
    (void)out;
    return Status::NotImplemented(name() + ": persistence not supported");
  }
  virtual Status LoadState(Deserializer& in) {
    (void)in;
    return Status::NotImplemented(name() + ": persistence not supported");
  }

  /// Wall-clock training budget in seconds; Fit of expensive algorithms polls
  /// this and fails with ResourceExhausted when exceeded.
  double train_budget_seconds() const { return train_budget_seconds_; }
  void set_train_budget_seconds(double seconds) { train_budget_seconds_ = seconds; }

  /// Wall-clock budget in seconds for ONE PredictEarly call (default: no
  /// limit). Implementations poll PredictDeadline() and fail with
  /// ResourceExhausted on expiry; EvaluateSplit degrades such a miss to a
  /// full-length wrong prediction instead of letting one slow instance stall
  /// a campaign.
  double predict_budget_seconds() const { return predict_budget_seconds_; }
  void set_predict_budget_seconds(double seconds) {
    predict_budget_seconds_ = seconds;
  }

 protected:
  /// Deadline covering the current Fit call; construct once at the top of
  /// Fit so every phase (preprocessing included) counts against the budget.
  Deadline TrainDeadline() const { return Deadline::After(train_budget_seconds_); }

  /// Deadline covering one PredictEarly call; construct at the top of each
  /// call.
  Deadline PredictDeadline() const {
    return Deadline::After(predict_budget_seconds_);
  }

  double train_budget_seconds_ = std::numeric_limits<double>::infinity();
  double predict_budget_seconds_ = std::numeric_limits<double>::infinity();
};

}  // namespace etsc

#endif  // ETSC_CORE_CLASSIFIER_H_
