#include "core/arff.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>

namespace etsc {

namespace {

std::string Trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

// Parses "@attribute <name> <type>" into name and type strings. The name may
// be quoted.
bool ParseAttributeLine(const std::string& line, std::string* name,
                        std::string* type) {
  // Skip "@attribute".
  size_t pos = line.find_first_of(" \t");
  if (pos == std::string::npos) return false;
  std::string rest = Trim(line.substr(pos));
  if (rest.empty()) return false;
  if (rest[0] == '\'' || rest[0] == '"') {
    const char quote = rest[0];
    const size_t close = rest.find(quote, 1);
    if (close == std::string::npos) return false;
    *name = rest.substr(1, close - 1);
    *type = Trim(rest.substr(close + 1));
  } else {
    const size_t split = rest.find_first_of(" \t");
    if (split == std::string::npos) return false;
    *name = rest.substr(0, split);
    *type = Trim(rest.substr(split));
  }
  return !type->empty();
}

// Splits a nominal spec "{a, b, c}" into its values.
std::vector<std::string> ParseNominalValues(const std::string& spec) {
  std::vector<std::string> values;
  const auto open = spec.find('{');
  const auto close = spec.rfind('}');
  if (open == std::string::npos || close == std::string::npos || close <= open) {
    return values;
  }
  std::stringstream ss(spec.substr(open + 1, close - open - 1));
  std::string item;
  while (std::getline(ss, item, ',')) {
    item = Trim(item);
    if (!item.empty() && (item[0] == '\'' || item[0] == '"') &&
        item.size() >= 2 && item.back() == item[0]) {
      item = item.substr(1, item.size() - 2);
    }
    values.push_back(item);
  }
  return values;
}

}  // namespace

Result<Dataset> ParseArff(const std::string& content, const std::string& name) {
  std::stringstream ss(content);
  std::string line;

  size_t num_attributes = 0;
  std::vector<std::string> class_values;  // nominal class spec, if any
  bool class_is_nominal = false;
  bool in_data = false;
  size_t line_no = 0;

  Dataset dataset;
  dataset.set_name(name);
  std::map<std::string, int> label_map;  // for non-nominal class values

  // Diagnostics carry file:line:column so a corrupt byte in a 10MB download
  // is findable without bisection; columns are 1-based on the raw line.
  const auto at = [&name](size_t line_no, size_t column) {
    return name + ":" + std::to_string(line_no) + ":" +
           std::to_string(column) + ": ";
  };

  while (std::getline(ss, line)) {
    ++line_no;
    const size_t indent = line.find_first_not_of(" \t\r\n");
    line = Trim(line);
    if (line.empty() || line[0] == '%') continue;

    if (!in_data) {
      const std::string lowered = Lower(line);
      if (StartsWith(lowered, "@relation")) continue;
      if (StartsWith(lowered, "@attribute")) {
        std::string attr_name, attr_type;
        if (!ParseAttributeLine(line, &attr_name, &attr_type)) {
          return Status::IOError(at(line_no, indent + 1) +
                                 "malformed @attribute");
        }
        ++num_attributes;
        // The last attribute before @data is the class; remember its spec.
        class_values = ParseNominalValues(attr_type);
        class_is_nominal = !class_values.empty();
        continue;
      }
      if (StartsWith(lowered, "@data")) {
        if (num_attributes < 2) {
          return Status::IOError(at(line_no, indent + 1) +
                                 "need at least one series attribute "
                                 "plus the class attribute");
        }
        in_data = true;
        continue;
      }
      return Status::IOError(at(line_no, indent + 1) +
                             "unexpected header line '" + line + "'");
    }

    // Data row: comma-separated, last field is the class.
    if (line[0] == '{') {
      return Status::NotImplemented(at(line_no, indent + 1) +
                                    "sparse data rows not supported");
    }
    std::vector<std::string> fields;
    std::vector<size_t> columns;  // 1-based start column of each field
    size_t pos = 0;
    for (;;) {
      const size_t comma = line.find(',', pos);
      const size_t field_end = comma == std::string::npos ? line.size() : comma;
      fields.push_back(Trim(line.substr(pos, field_end - pos)));
      columns.push_back(indent + pos + 1);
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    if (fields.size() != num_attributes) {
      return Status::IOError(
          at(line_no, indent + 1) + "ragged row: expected " +
          std::to_string(num_attributes) + " fields, got " +
          std::to_string(fields.size()) +
          (ss.eof() ? " (truncated final line?)" : ""));
    }

    std::vector<double> values(fields.size() - 1);
    for (size_t i = 0; i + 1 < fields.size(); ++i) {
      if (fields[i] == "?" || fields[i].empty()) {
        values[i] = std::numeric_limits<double>::quiet_NaN();
        continue;
      }
      try {
        size_t consumed = 0;
        values[i] = std::stod(fields[i], &consumed);
        if (consumed != fields[i].size()) {
          throw std::invalid_argument(fields[i]);
        }
      } catch (...) {
        return Status::IOError(at(line_no, columns[i]) +
                               "bad numeric field '" + fields[i] + "'");
      }
    }

    std::string class_field = fields.back();
    if (!class_field.empty() &&
        (class_field[0] == '\'' || class_field[0] == '"') &&
        class_field.size() >= 2 && class_field.back() == class_field[0]) {
      class_field = class_field.substr(1, class_field.size() - 2);
    }
    int label = 0;
    if (class_is_nominal) {
      const auto it =
          std::find(class_values.begin(), class_values.end(), class_field);
      if (it == class_values.end()) {
        return Status::IOError(at(line_no, columns.back()) + "class value '" +
                               class_field + "' not in the nominal spec");
      }
      label = static_cast<int>(it - class_values.begin());
    } else {
      // Numeric or string class: map by first appearance (numeric values that
      // parse as integers keep their value).
      try {
        size_t consumed = 0;
        const double numeric = std::stod(class_field, &consumed);
        if (consumed == class_field.size() &&
            numeric == std::floor(numeric)) {
          label = static_cast<int>(numeric);
        } else {
          throw std::invalid_argument("not an int");
        }
      } catch (...) {
        const auto [it, inserted] =
            label_map.emplace(class_field, static_cast<int>(label_map.size()));
        label = it->second;
      }
    }
    dataset.Add(TimeSeries::Univariate(std::move(values)), label);
  }
  if (!in_data) {
    return Status::IOError(name + ": missing @data section (truncated file?)");
  }
  if (dataset.empty()) return Status::IOError(name + ": no data rows");
  return dataset;
}

Result<Dataset> LoadArff(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto slash = path.find_last_of('/');
  return ParseArff(buffer.str(),
                   slash == std::string::npos ? path : path.substr(slash + 1));
}

}  // namespace etsc
