#include "core/composed.h"

#include <algorithm>
#include <optional>
#include <utility>

namespace etsc {

std::vector<size_t> BuildCheckpointGrid(CheckpointGrid grid, size_t length,
                                        size_t num_checkpoints) {
  std::vector<size_t> checkpoints;
  if (length == 0) return checkpoints;
  switch (grid) {
    case CheckpointGrid::kEveryPoint:
      checkpoints.reserve(length);
      for (size_t l = 1; l <= length; ++l) checkpoints.push_back(l);
      return checkpoints;
    case CheckpointGrid::kTriggerPlanned:
      // The trigger's PlanCheckpoints fills the grid in.
      return checkpoints;
    case CheckpointGrid::kFloorMinTwo: {
      const size_t num = std::max<size_t>(1, std::min(num_checkpoints, length));
      for (size_t i = 1; i <= num; ++i) {
        const size_t len = std::max<size_t>(2, i * length / num);
        if (checkpoints.empty() || checkpoints.back() != len) {
          checkpoints.push_back(len);
        }
      }
      break;
    }
    case CheckpointGrid::kCeilMinTwo: {
      const size_t num = std::max<size_t>(1, std::min(num_checkpoints, length));
      for (size_t i = 1; i <= num; ++i) {
        const size_t len = std::max<size_t>(2, (i * length + num - 1) / num);
        if (checkpoints.empty() || checkpoints.back() != len) {
          checkpoints.push_back(len);
        }
      }
      break;
    }
    case CheckpointGrid::kFloorMinOne: {
      const size_t count = std::max<size_t>(1, std::min(num_checkpoints, length));
      for (size_t i = 1; i <= count; ++i) {
        const size_t len = std::max<size_t>(1, i * length / count);
        if (checkpoints.empty() || checkpoints.back() != len) {
          checkpoints.push_back(len);
        }
      }
      break;
    }
  }
  if (checkpoints.back() != length) checkpoints.push_back(length);
  return checkpoints;
}

ComposedEarlyClassifier::ComposedEarlyClassifier(
    std::string name, std::unique_ptr<FullClassifier> base,
    std::unique_ptr<Trigger> trigger, ComposedOptions options)
    : name_(std::move(name)),
      base_(std::move(base)),
      trigger_(std::move(trigger)),
      options_(options) {
  ETSC_CHECK(trigger_ != nullptr);
}

ComposedEarlyClassifier::ComposedEarlyClassifier(ComposedParts parts)
    : ComposedEarlyClassifier(std::move(parts.name), std::move(parts.base),
                              std::move(parts.trigger), parts.options) {}

Status ComposedEarlyClassifier::Fit(const Dataset& train) {
  fitted_ = false;
  bank_.clear();
  const Deadline deadline = TrainDeadline();

  // TEASER-style optional preprocessing: the bank, the trigger and predict
  // time all see the normalised series.
  std::optional<Dataset> normalized;
  const Dataset* prepared = &train;
  if (options_.z_normalize) {
    normalized.emplace(train);
    for (size_t i = 0; i < normalized->size(); ++i) {
      normalized->instance(i).ZNormalize();
    }
    prepared = &*normalized;
  }

  length_ = prepared->size() == 0 ? 0 : prepared->MinLength();
  checkpoints_ = BuildCheckpointGrid(options_.grid, length_,
                                     options_.num_checkpoints);
  // The trigger validates the training set (with its own published error
  // conditions) and may replace the grid (STRUT's truncation-point search).
  ETSC_RETURN_NOT_OK(trigger_->PlanCheckpoints(*prepared, base_.get(), deadline,
                                               &checkpoints_));
  if (checkpoints_.empty()) {
    return Status::InvalidArgument(name_ + ": empty checkpoint grid");
  }

  if (!trigger_->self_contained()) {
    if (base_ == nullptr) {
      return Status::InvalidArgument(
          name_ + ": trigger '" + trigger_->name() +
          "' requires a base classifier but none was supplied");
    }
    bank_.reserve(checkpoints_.size());
    for (size_t len : checkpoints_) {
      ETSC_RETURN_NOT_OK(deadline.Check(name_ + ": train budget exceeded"));
      std::unique_ptr<FullClassifier> model = base_->CloneUntrained();
      ETSC_RETURN_NOT_OK(model->Fit(prepared->Truncated(len)));
      bank_.push_back(std::move(model));
    }
  }

  TriggerFitContext ctx;
  ctx.train = prepared;
  ctx.checkpoints = &checkpoints_;
  ctx.bank = trigger_->self_contained() ? nullptr : &bank_;
  ctx.base = base_.get();
  ctx.deadline = &deadline;
  ETSC_RETURN_NOT_OK(trigger_->Fit(ctx));

  fitted_ = true;
  return Status::OK();
}

Result<EarlyPrediction> ComposedEarlyClassifier::PredictEarly(
    const TimeSeries& series) const {
  if (!fitted_) return Status::FailedPrecondition(name_ + ": not fitted");
  const Deadline deadline = PredictDeadline();

  std::optional<TimeSeries> normalized;
  const TimeSeries* prepared = &series;
  if (options_.z_normalize) {
    normalized.emplace(series);
    normalized->ZNormalize();
    prepared = &*normalized;
  }

  const bool self = trigger_->self_contained();
  std::unique_ptr<TriggerState> state = trigger_->NewState();
  for (size_t p = 0; p < checkpoints_.size(); ++p) {
    if (!self) {
      // Self-contained triggers poll the deadline themselves (at a stride
      // tuned to their per-point cost); the bank walk checks per checkpoint.
      ETSC_RETURN_NOT_OK(deadline.Check(name_ + ": predict budget exceeded"));
    }
    const size_t len = checkpoints_[p];
    const bool is_last = p + 1 == checkpoints_.size() ||
                         checkpoints_[p + 1] > prepared->length();
    if (len > prepared->length()) break;

    TriggerEvidence ev;
    ev.checkpoint = p;
    ev.prefix_length = len;
    ev.is_last = is_last;
    ev.train_length = length_;
    ev.series = prepared;
    ev.deadline = &deadline;
    std::vector<double> proba;
    if (!self) {
      if (trigger_->needs_posteriors()) {
        ETSC_ASSIGN_OR_RETURN(proba,
                              bank_[p]->PredictProba(prepared->Prefix(len)));
        const std::vector<int>& labels = bank_[p]->class_labels();
        const size_t best = static_cast<size_t>(
            std::max_element(proba.begin(), proba.end()) - proba.begin());
        ev.predicted = labels[best];
        ev.posteriors = &proba;
        ev.class_labels = &labels;
      } else {
        ETSC_ASSIGN_OR_RETURN(ev.predicted,
                              bank_[p]->Predict(prepared->Prefix(len)));
      }
    }
    ETSC_ASSIGN_OR_RETURN(TriggerDecision decision,
                          trigger_->Decide(ev, state.get()));
    if (decision.halt) {
      EarlyPrediction out;
      out.label = decision.label ? *decision.label : ev.predicted;
      out.prefix_length = len;
      out.confidence = decision.confidence;
      return out;
    }
  }

  // No checkpoint halted: either the series is shorter than the first
  // checkpoint, or a self-contained trigger ran out of grid. The trigger's
  // Finalize gets the first say; the default is the earliest bank model on
  // everything we have.
  ETSC_ASSIGN_OR_RETURN(std::optional<EarlyPrediction> fallback,
                        trigger_->Finalize(*prepared, state.get()));
  if (fallback.has_value()) return *fallback;
  if (bank_.empty()) {
    return Status::Internal(name_ + ": no fallback model available");
  }
  ETSC_ASSIGN_OR_RETURN(int label, bank_[0]->Predict(*prepared));
  EarlyPrediction out;
  out.label = label;
  out.prefix_length = prepared->length();
  return out;
}

bool ComposedEarlyClassifier::SupportsMultivariate() const {
  return (base_ == nullptr || base_->SupportsMultivariate()) &&
         trigger_->SupportsMultivariate();
}

std::unique_ptr<EarlyClassifier> ComposedEarlyClassifier::CloneUntrained() const {
  return std::make_unique<ComposedEarlyClassifier>(
      name_, base_ ? base_->CloneUntrained() : nullptr,
      trigger_->CloneUnfitted(), options_);
}

std::string ComposedEarlyClassifier::config_fingerprint() const {
  return "Composed(base=" +
         (base_ ? base_->config_fingerprint() : std::string("none")) +
         ",trigger=" + trigger_->config_fingerprint() +
         ",grid=" + std::to_string(static_cast<int>(options_.grid)) +
         ",n=" + std::to_string(options_.num_checkpoints) +
         ",z=" + (options_.z_normalize ? "1" : "0") + ")";
}

Status ComposedEarlyClassifier::SaveState(Serializer& out) const {
  if (!fitted_) return Status::FailedPrecondition(name_ + ": not fitted");
  out.Begin("composed");
  out.SizeT(length_);
  out.SizeVec(checkpoints_);
  out.SizeT(bank_.size());
  for (const auto& model : bank_) {
    ETSC_RETURN_NOT_OK(model->SaveState(out));
  }
  out.Str(trigger_->name());
  ETSC_RETURN_NOT_OK(trigger_->SaveState(out));
  out.End();
  return Status::OK();
}

Status ComposedEarlyClassifier::LoadState(Deserializer& in) {
  fitted_ = false;
  bank_.clear();
  ETSC_RETURN_NOT_OK(in.Enter("composed"));
  ETSC_ASSIGN_OR_RETURN(length_, in.SizeT());
  ETSC_ASSIGN_OR_RETURN(checkpoints_, in.SizeVec());
  if (checkpoints_.empty()) {
    return Status::DataLoss(name_ + ": empty checkpoint grid in stream");
  }
  ETSC_ASSIGN_OR_RETURN(size_t num_models, in.SizeT());
  if (trigger_->self_contained()) {
    if (num_models != 0) {
      return Status::DataLoss(name_ + ": unexpected bank for self-contained trigger");
    }
  } else {
    if (num_models != checkpoints_.size() || num_models == 0) {
      return Status::DataLoss(name_ + ": model/checkpoint count mismatch");
    }
    if (base_ == nullptr) {
      return Status::InvalidArgument(name_ + ": no base classifier to load into");
    }
    bank_.reserve(num_models);
    for (size_t i = 0; i < num_models; ++i) {
      std::unique_ptr<FullClassifier> model = base_->CloneUntrained();
      ETSC_RETURN_NOT_OK(model->LoadState(in));
      bank_.push_back(std::move(model));
    }
  }
  ETSC_ASSIGN_OR_RETURN(std::string trigger_name, in.Str());
  if (trigger_name != trigger_->name()) {
    return Status::DataLoss(name_ + ": stream was saved with trigger '" +
                            trigger_name + "', instance uses '" +
                            trigger_->name() + "'");
  }
  ETSC_RETURN_NOT_OK(trigger_->LoadState(in));
  ETSC_RETURN_NOT_OK(in.Leave());
  fitted_ = true;
  return Status::OK();
}

Result<std::unique_ptr<EarlyClassifier>> MakeComposedFromSpec(
    const std::string& spec) {
  const size_t plus = spec.find('+');
  if (plus == std::string::npos || plus == 0 || plus + 1 >= spec.size()) {
    return Status::InvalidArgument(
        "composed spec '" + spec +
        "' is not of the form '<classifier>+<trigger>' (e.g. 'weasel+prob')");
  }
  const std::string base_name = spec.substr(0, plus);
  const std::string trigger_name = spec.substr(plus + 1);
  ETSC_ASSIGN_OR_RETURN(std::unique_ptr<Trigger> trigger,
                        TriggerRegistry::Global().Create(trigger_name));
  ETSC_ASSIGN_OR_RETURN(std::unique_ptr<FullClassifier> base,
                        BaseClassifierRegistry::Global().Create(base_name));
  const ComposedOptions options = trigger->DefaultComposedOptions();
  return std::unique_ptr<EarlyClassifier>(
      std::make_unique<ComposedEarlyClassifier>(spec, std::move(base),
                                                std::move(trigger), options));
}

}  // namespace etsc
