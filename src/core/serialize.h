#ifndef ETSC_CORE_SERIALIZE_H_
#define ETSC_CORE_SERIALIZE_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "core/status.h"

namespace etsc {

/// Versioned, endian-safe binary model format ("ETSCMODL").
///
/// Stream layout (all integers little-endian regardless of host order):
///
///   magic          8 bytes  "ETSCMODL"
///   format_version u32      kSerializeFormatVersion
///   kind           str      "early" | "full"
///   name           str      classifier name() at save time
///   fingerprint    str      classifier config_fingerprint() at save time
///   body_size      u64      byte count of the body that follows
///   body_crc       u32      CRC-32 (IEEE) of the body bytes
///   body           ...      concatenated sections
///
/// where `str` is a u64 length followed by raw bytes. The body is a sequence
/// of (possibly nested) sections, each:
///
///   tag            str      section name, checked on read
///   payload_size   u64      byte count of the payload
///   payload_crc    u32      CRC-32 of the payload bytes
///   payload        ...      section fields, then any sub-sections
///
/// Versioning policy: readers reject a larger format_version outright
/// (InvalidArgument). Within one format version, sections are skippable —
/// Leave() seeks to the recorded end of the section, so a newer writer may
/// append fields to the end of a section and an older reader still works.
/// Corruption (bad magic after a good prefix, truncation, checksum or length
/// overruns) is always DataLoss, never UB or a crash.
///
/// Version history:
///   1  original per-algorithm monolith sections ("teaser", "ecec", ...).
///   2  classifier/trigger seam: composed early classifiers serialize a
///      "composed" section (checkpoint grid + model bank + trigger state);
///      the legacy algorithm sections no longer exist. v1 fitted-model
///      artifacts are structurally incompatible and are demoted to cache
///      misses (model_cache.stale_format_demotions) rather than loaded.
inline constexpr uint32_t kSerializeFormatVersion = 2;
inline constexpr char kSerializeMagic[8] = {'E', 'T', 'S', 'C',
                                            'M', 'O', 'D', 'L'};

/// CRC-32 (IEEE 802.3, reflected) of `size` bytes at `data`.
uint32_t Crc32(const void* data, size_t size);

/// Header fields of a serialized model, parsed up front so callers can verify
/// the stream matches the instance they are loading into.
struct SerializedModelHeader {
  uint32_t format_version = 0;
  std::string kind;
  std::string name;
  std::string fingerprint;
};

/// Accumulates the body of a model stream in memory; Finish() prepends the
/// header and writes everything out. Writers are single-use.
class Serializer {
 public:
  void U8(uint8_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v);
  void Bool(bool v) { U8(v ? 1 : 0); }
  void Str(const std::string& s);

  void SizeT(size_t v) { U64(static_cast<uint64_t>(v)); }
  void F64Vec(const std::vector<double>& v);
  void IntVec(const std::vector<int>& v);
  void SizeVec(const std::vector<size_t>& v);
  void BoolVec(const std::vector<bool>& v);
  void F64Mat(const std::vector<std::vector<double>>& m);

  /// Opens a named section; every Begin must be matched by an End. Sections
  /// nest.
  void Begin(const std::string& tag);
  void End();

  /// Writes header + body to `out`. All sections must be closed.
  Status Finish(std::ostream& out, const std::string& kind,
                const std::string& name, const std::string& fingerprint) const;

 private:
  std::string buffer_;
  /// Offset of the payload_size slot of each open section (payload starts 12
  /// bytes later: u64 size + u32 crc).
  std::vector<size_t> open_sections_;
};

/// Reads a model stream produced by Serializer. Construction via FromStream
/// validates the magic, version, header, body length, and body checksum; the
/// typed getters then validate per-field bounds so corrupt payloads surface
/// as DataLoss instead of wild allocations or out-of-range reads.
class Deserializer {
 public:
  /// Reads and validates the whole stream. The section checksums are checked
  /// lazily by Enter().
  static Result<Deserializer> FromStream(std::istream& in);

  const SerializedModelHeader& header() const { return header_; }

  Result<uint8_t> U8();
  Result<uint32_t> U32();
  Result<uint64_t> U64();
  Result<int64_t> I64();
  Result<double> F64();
  Result<bool> Bool();
  Result<std::string> Str();

  Result<size_t> SizeT();
  Result<std::vector<double>> F64Vec();
  Result<std::vector<int>> IntVec();
  Result<std::vector<size_t>> SizeVec();
  Result<std::vector<bool>> BoolVec();
  Result<std::vector<std::vector<double>>> F64Mat();

  /// Opens the next section, which must carry `tag`; verifies its checksum.
  Status Enter(const std::string& tag);
  /// Closes the innermost section, skipping any unread trailing payload (a
  /// newer same-format-version writer may have appended fields).
  Status Leave();

  /// True once every body byte has been consumed or skipped.
  bool AtEnd() const { return pos_ == body_.size(); }

 private:
  Status Need(size_t bytes) const;
  /// Reads an element count and validates it against the bytes remaining in
  /// the current section (each element needs >= elem_size bytes), so a
  /// corrupt count can never trigger a huge allocation or wrap arithmetic.
  Result<size_t> Len(size_t elem_size);

  std::string body_;
  size_t pos_ = 0;
  SerializedModelHeader header_;
  /// End offset of each open section, for Leave() and bounds checks.
  std::vector<size_t> section_ends_;
};

}  // namespace etsc

#endif  // ETSC_CORE_SERIALIZE_H_
