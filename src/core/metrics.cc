#include "core/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

namespace etsc {

ConfusionMatrix::ConfusionMatrix(const std::vector<int>& truth,
                                 const std::vector<int>& predicted) {
  ETSC_CHECK(truth.size() == predicted.size());
  for (size_t i = 0; i < truth.size(); ++i) Add(truth[i], predicted[i]);
}

void ConfusionMatrix::Add(int truth, int predicted) {
  ++counts_[{truth, predicted}];
  ++truth_counts_[truth];
  ++pred_counts_[predicted];
  ++total_;
}

size_t ConfusionMatrix::count(int truth, int predicted) const {
  auto it = counts_.find({truth, predicted});
  return it == counts_.end() ? 0 : it->second;
}

std::vector<int> ConfusionMatrix::Labels() const {
  std::set<int> labels;
  for (const auto& [label, n] : truth_counts_) labels.insert(label);
  for (const auto& [label, n] : pred_counts_) labels.insert(label);
  return std::vector<int>(labels.begin(), labels.end());
}

double ConfusionMatrix::Accuracy() const {
  if (total_ == 0) return 0.0;
  size_t correct = 0;
  for (const auto& [key, n] : counts_) {
    if (key.first == key.second) correct += n;
  }
  return static_cast<double>(correct) / static_cast<double>(total_);
}

double ConfusionMatrix::Precision(int label) const {
  auto it = pred_counts_.find(label);
  if (it == pred_counts_.end() || it->second == 0) return 0.0;
  return static_cast<double>(count(label, label)) / static_cast<double>(it->second);
}

double ConfusionMatrix::Recall(int label) const {
  auto it = truth_counts_.find(label);
  if (it == truth_counts_.end() || it->second == 0) return 0.0;
  return static_cast<double>(count(label, label)) / static_cast<double>(it->second);
}

double ConfusionMatrix::F1(int label) const {
  const double tp = static_cast<double>(count(label, label));
  const auto truth_it = truth_counts_.find(label);
  const auto pred_it = pred_counts_.find(label);
  const double fn =
      (truth_it == truth_counts_.end() ? 0.0
                                       : static_cast<double>(truth_it->second)) - tp;
  const double fp =
      (pred_it == pred_counts_.end() ? 0.0
                                     : static_cast<double>(pred_it->second)) - tp;
  const double denom = tp + 0.5 * (fp + fn);
  return denom <= 0.0 ? 0.0 : tp / denom;
}

double ConfusionMatrix::MacroF1() const {
  if (truth_counts_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& [label, n] : truth_counts_) sum += F1(label);
  return sum / static_cast<double>(truth_counts_.size());
}

double MeanEarliness(const std::vector<size_t>& prefix_lengths,
                     const std::vector<size_t>& series_lengths) {
  ETSC_CHECK(prefix_lengths.size() == series_lengths.size());
  // No instances means no measurement: NaN, not the worst-case 1.0 — a
  // worst-case score row must stay distinguishable from "nothing evaluated"
  // (empty CV test folds; see EvalScores and EvaluationResult::MeanScores).
  if (prefix_lengths.empty()) return std::nan("");
  double sum = 0.0;
  for (size_t i = 0; i < prefix_lengths.size(); ++i) {
    if (series_lengths[i] == 0) {
      sum += 1.0;
      continue;
    }
    sum += std::min(1.0, static_cast<double>(prefix_lengths[i]) /
                             static_cast<double>(series_lengths[i]));
  }
  return sum / static_cast<double>(prefix_lengths.size());
}

double HarmonicMean(double accuracy, double earliness) {
  const double timeliness = 1.0 - earliness;
  const double denom = accuracy + timeliness;
  if (denom <= 0.0 || accuracy <= 0.0 || timeliness <= 0.0) return 0.0;
  return 2.0 * accuracy * timeliness / denom;
}

double CostScore(double accuracy, double earliness, double alpha) {
  const double a = std::min(1.0, std::max(0.0, alpha));
  return a * (1.0 - accuracy) + (1.0 - a) * earliness;
}

std::string EvalScores::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "acc=%.4f f1=%.4f earliness=%.4f hm=%.4f", accuracy, f1,
                earliness, harmonic_mean);
  return buf;
}

EvalScores ComputeScores(const std::vector<int>& truth,
                         const std::vector<int>& predicted,
                         const std::vector<size_t>& prefix_lengths,
                         const std::vector<size_t>& series_lengths) {
  EvalScores scores;
  if (truth.empty()) {
    // An empty evaluation (e.g. a CV fold whose test split got no instances)
    // must not masquerade as a real worst-case result (accuracy 0, earliness
    // 1): report explicit NaNs; aggregators skip them and surface num_test.
    scores.accuracy = std::nan("");
    scores.f1 = std::nan("");
    scores.earliness = std::nan("");
    scores.harmonic_mean = std::nan("");
    return scores;
  }
  ConfusionMatrix cm(truth, predicted);
  scores.accuracy = cm.Accuracy();
  scores.f1 = cm.MacroF1();
  scores.earliness = MeanEarliness(prefix_lengths, series_lengths);
  scores.harmonic_mean = HarmonicMean(scores.accuracy, scores.earliness);
  return scores;
}

}  // namespace etsc
