#include "core/trigger.h"

namespace etsc {

namespace {

template <typename FactoryMap>
std::string KnownNames(const FactoryMap& factories) {
  std::string known;
  for (const auto& [registered, factory] : factories) {
    if (!known.empty()) known += ", ";
    known += registered;
  }
  return known;
}

}  // namespace

TriggerRegistry& TriggerRegistry::Global() {
  static TriggerRegistry* registry = new TriggerRegistry();
  return *registry;
}

Status TriggerRegistry::Register(const std::string& name, Factory factory) {
  if (factories_.count(name) > 0) {
    return Status::InvalidArgument("trigger '" + name + "' already registered");
  }
  factories_[name] = std::move(factory);
  return Status::OK();
}

Result<std::unique_ptr<Trigger>> TriggerRegistry::Create(
    const std::string& name) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    return Status::NotFound("trigger '" + name +
                            "' is not registered (registered triggers: " +
                            KnownNames(factories_) + ")");
  }
  return it->second();
}

bool TriggerRegistry::Contains(const std::string& name) const {
  return factories_.count(name) > 0;
}

std::vector<std::string> TriggerRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;
}

BaseClassifierRegistry& BaseClassifierRegistry::Global() {
  static BaseClassifierRegistry* registry = new BaseClassifierRegistry();
  return *registry;
}

Status BaseClassifierRegistry::Register(const std::string& name,
                                        Factory factory) {
  if (factories_.count(name) > 0) {
    return Status::InvalidArgument("base classifier '" + name +
                                   "' already registered");
  }
  factories_[name] = std::move(factory);
  return Status::OK();
}

Result<std::unique_ptr<FullClassifier>> BaseClassifierRegistry::Create(
    const std::string& name) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    return Status::NotFound("base classifier '" + name +
                            "' is not registered (registered base classifiers: " +
                            KnownNames(factories_) + ")");
  }
  return it->second();
}

bool BaseClassifierRegistry::Contains(const std::string& name) const {
  return factories_.count(name) > 0;
}

std::vector<std::string> BaseClassifierRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;
}

namespace internal {

TriggerRegistrar::TriggerRegistrar(const std::string& name,
                                   TriggerRegistry::Factory factory) {
  Status status = TriggerRegistry::Global().Register(name, std::move(factory));
  ETSC_CHECK(status.ok());
}

BaseClassifierRegistrar::BaseClassifierRegistrar(
    const std::string& name, BaseClassifierRegistry::Factory factory) {
  Status status =
      BaseClassifierRegistry::Global().Register(name, std::move(factory));
  ETSC_CHECK(status.ok());
}

}  // namespace internal
}  // namespace etsc
