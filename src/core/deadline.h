#ifndef ETSC_CORE_DEADLINE_H_
#define ETSC_CORE_DEADLINE_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "core/status.h"

namespace etsc {

/// Cooperative wall-clock deadline on the monotonic clock.
///
/// A Deadline is an absolute expiry instant constructed once at the top of a
/// budgeted operation (Fit, PredictEarly) and polled from the operation's
/// loops. It replaces the per-algorithm Stopwatch-versus-budget checks so
/// every algorithm shares one expiry semantics: on expiry the operation
/// returns Status::ResourceExhausted and the caller records the cell as
/// failed rather than crashing — the paper's 48-hour kill rule (Sec. 6.1)
/// applied uniformly to training and prediction.
///
/// Deadlines are value types; copying one copies the expiry instant but
/// resets the amortised-check state, so pass by reference inside one
/// operation. The reset also makes copies the unit of sharing across
/// threads: a parallel loop hands each task its own copy, whose CheckEvery
/// bookkeeping is then thread-local (the expiry instant itself is
/// immutable), instead of racing on one shared counter.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Never expires.
  Deadline() : expiry_(Clock::time_point::max()) {}

  Deadline(const Deadline& other) : expiry_(other.expiry_) {}
  Deadline& operator=(const Deadline& other) {
    expiry_ = other.expiry_;
    calls_ = 0;
    expired_ = false;
    return *this;
  }

  static Deadline Infinite() { return Deadline(); }

  /// Expires `seconds` from now. Infinite, NaN, or absurdly large budgets
  /// mean "never"; zero or negative budgets are already expired (a pre-spent
  /// budget must still fail deterministically, not hang).
  static Deadline After(double seconds);

  bool infinite() const { return expiry_ == Clock::time_point::max(); }

  /// True once the expiry instant has passed. Consults the clock.
  bool Expired() const;

  /// Seconds until expiry: +infinity for an infinite deadline, <= 0 once
  /// expired.
  double Remaining() const;

  /// Amortised expiry check for tight loops: consults the clock only on the
  /// first call and then once every `stride` calls, returning the cached
  /// verdict in between. Expiry is sticky — once observed it stays true.
  bool CheckEvery(uint32_t stride = 64) const;

  /// OK while unexpired; Status::ResourceExhausted(what) once expired.
  Status Check(const std::string& what) const;

 private:
  explicit Deadline(Clock::time_point expiry) : expiry_(expiry) {}

  Clock::time_point expiry_;
  // CheckEvery state; mutable so const operations can amortise their polling.
  mutable uint32_t calls_ = 0;
  mutable bool expired_ = false;
};

}  // namespace etsc

#endif  // ETSC_CORE_DEADLINE_H_
