#ifndef ETSC_CORE_DEADLINE_H_
#define ETSC_CORE_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "core/status.h"

namespace etsc {

/// Cooperative cancellation flag shared between a supervised task and the
/// watchdog that may decide to stop it.
///
/// The task's thread installs a token with ScopedCancelToken; every Deadline
/// poll on that thread then (a) stamps a heartbeat on the token and (b)
/// observes a pending cancellation as deadline expiry — even on an infinite
/// deadline, so a task whose own budget logic is broken is still stoppable
/// as long as it runs the framework's checks. Cancellation is one-way: once
/// requested it never resets.
class CancelToken {
 public:
  CancelToken();

  /// Asks the owning task to stop at its next deadline poll. Thread-safe.
  void RequestCancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const { return cancelled_.load(std::memory_order_relaxed); }

  /// Records "the task is alive and polling" — called from Deadline checks.
  void Heartbeat();

  /// Seconds since the last Heartbeat (or since construction). The watchdog
  /// reports this when cancelling so hung-task logs show how stale the cell
  /// was.
  double SecondsSinceHeartbeat() const;

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> last_heartbeat_us_{0};
};

/// The calling thread's installed token, or nullptr outside supervised tasks.
std::shared_ptr<CancelToken> CurrentCancelToken();

/// True when the calling thread's installed token (if any) was cancelled.
bool CancellationRequested();

/// RAII installer of the thread-local cancel token. Installing an empty
/// token is valid and masks any outer token for the scope — a pool task must
/// not inherit the pool thread's previous token by accident.
class ScopedCancelToken {
 public:
  explicit ScopedCancelToken(std::shared_ptr<CancelToken> token);
  ~ScopedCancelToken();

  ScopedCancelToken(const ScopedCancelToken&) = delete;
  ScopedCancelToken& operator=(const ScopedCancelToken&) = delete;

 private:
  std::shared_ptr<CancelToken> prev_;
};

/// Cooperative wall-clock deadline on the monotonic clock.
///
/// A Deadline is an absolute expiry instant constructed once at the top of a
/// budgeted operation (Fit, PredictEarly) and polled from the operation's
/// loops. It replaces the per-algorithm Stopwatch-versus-budget checks so
/// every algorithm shares one expiry semantics: on expiry the operation
/// returns Status::DeadlineExceeded and the caller records the cell as
/// failed rather than crashing — the paper's 48-hour kill rule (Sec. 6.1)
/// applied uniformly to training and prediction. A watchdog cancellation on
/// the thread's CancelToken reads as expiry through the same polls, so hung
/// cells degrade exactly like budget overruns.
///
/// Deadlines are value types; copying one copies the expiry instant but
/// resets the amortised-check state, so pass by reference inside one
/// operation. The reset also makes copies the unit of sharing across
/// threads: a parallel loop hands each task its own copy, whose CheckEvery
/// bookkeeping is then thread-local (the expiry instant itself is
/// immutable), instead of racing on one shared counter.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Never expires.
  Deadline() : expiry_(Clock::time_point::max()) {}

  Deadline(const Deadline& other) : expiry_(other.expiry_) {}
  Deadline& operator=(const Deadline& other) {
    expiry_ = other.expiry_;
    calls_ = 0;
    expired_ = false;
    return *this;
  }

  static Deadline Infinite() { return Deadline(); }

  /// Expires `seconds` from now. Infinite, NaN, or absurdly large budgets
  /// mean "never"; zero or negative budgets are already expired (a pre-spent
  /// budget must still fail deterministically, not hang).
  static Deadline After(double seconds);

  bool infinite() const { return expiry_ == Clock::time_point::max(); }

  /// True once the expiry instant has passed, or once the calling thread's
  /// CancelToken (if any) was cancelled — an infinite deadline is still
  /// cancellable. Stamps the token's heartbeat as a side effect.
  bool Expired() const;

  /// Seconds until expiry: +infinity for an infinite deadline, <= 0 once
  /// expired.
  double Remaining() const;

  /// Amortised expiry check for tight loops: consults the clock only on the
  /// first call and then once every `stride` calls, returning the cached
  /// verdict in between. Expiry is sticky — once observed it stays true.
  /// Polls even on infinite deadlines so heartbeats flow and watchdog
  /// cancellations are observed from unbudgeted loops.
  bool CheckEvery(uint32_t stride = 64) const;

  /// OK while unexpired; Status::DeadlineExceeded(what) once expired or
  /// cancelled (the message notes which).
  Status Check(const std::string& what) const;

 private:
  explicit Deadline(Clock::time_point expiry) : expiry_(expiry) {}

  Clock::time_point expiry_;
  // CheckEvery state; mutable so const operations can amortise their polling.
  mutable uint32_t calls_ = 0;
  mutable bool expired_ = false;
};

}  // namespace etsc

#endif  // ETSC_CORE_DEADLINE_H_
