#ifndef ETSC_CORE_CATEGORIZE_H_
#define ETSC_CORE_CATEGORIZE_H_

#include <string>
#include <vector>

#include "core/dataset.h"

namespace etsc {

/// The eight dataset groups of paper Sec. 5.4 / Table 3. A dataset can belong
/// to several groups at once; 'Common' applies only when none of
/// Wide/Large/Unstable/Imbalanced/Multiclass does.
enum class DatasetCategory {
  kWide,
  kLarge,
  kUnstable,
  kImbalanced,
  kMulticlass,
  kCommon,
  kUnivariate,
  kMultivariate,
};

/// All categories in Table-3 column order.
const std::vector<DatasetCategory>& AllDatasetCategories();

/// "Wide", "Large", ... (Table 3 column headers).
std::string DatasetCategoryName(DatasetCategory category);

/// Thresholds of Sec. 5.4. Length/height were set empirically by the paper;
/// CoV/CIR are the medians of the 12 dataset values.
struct CategorizationThresholds {
  size_t wide_length = 1300;        // length > 1300 -> Wide
  size_t large_height = 1000;       // instances > 1000 -> Large
  double unstable_cov = 1.08;       // CoV > 1.08 -> Unstable
  double imbalanced_cir = 1.73;     // CIR > 1.73 -> Imbalanced
};

/// Shape statistics + category memberships for one dataset (a Table-3 row).
struct DatasetProfile {
  std::string name;
  size_t length = 0;       // max time-points per series
  size_t height = 0;       // number of instances
  size_t num_variables = 0;
  size_t num_classes = 0;
  double cov = 0.0;
  double cir = 1.0;
  std::vector<DatasetCategory> categories;

  bool IsIn(DatasetCategory category) const;
};

/// Computes the Table-3 profile of a dataset.
DatasetProfile Categorize(const Dataset& dataset,
                          const CategorizationThresholds& thresholds = {});

/// (Re)derives the `categories` list of a profile from its shape statistics;
/// used when statistics are adjusted (e.g. canonical heights of scaled-down
/// datasets) after measurement.
void AssignCategories(DatasetProfile* profile,
                      const CategorizationThresholds& thresholds = {});

}  // namespace etsc

#endif  // ETSC_CORE_CATEGORIZE_H_
