#ifndef ETSC_CORE_RNG_H_
#define ETSC_CORE_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace etsc {

/// Deterministic pseudo-random number generator used throughout the framework.
///
/// Every stochastic component (dataset generators, k-means initialisation,
/// stratified shuffling, SGD sampling, neural-network initialisation) takes an
/// explicit Rng or a seed, so end-to-end runs are reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [0, n). Requires n > 0.
  size_t Index(size_t n) {
    return std::uniform_int_distribution<size_t>(0, n - 1)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Int(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Standard normal deviate times `stddev` plus `mean`.
  double Gaussian(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli trial with probability of success `p`.
  bool Bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      std::swap((*v)[i], (*v)[Index(i + 1)]);
    }
  }

  /// Derives an independent child generator; used to give each fold/instance
  /// its own stream so that changing one component does not perturb others.
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace etsc

#endif  // ETSC_CORE_RNG_H_
