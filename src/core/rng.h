#ifndef ETSC_CORE_RNG_H_
#define ETSC_CORE_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace etsc {

/// Derives a statistically independent stream seed from (seed, index) with
/// the SplitMix64 finalizer. Pure: splitting is associative with dispatch —
/// every parallel task can compute its own seed before (or after) being
/// scheduled and serial/parallel runs agree bit-for-bit. This is the
/// determinism contract of the parallel CV/campaign loops (DESIGN.md sec 8).
inline uint64_t SplitSeed(uint64_t seed, uint64_t index) {
  uint64_t z = seed + 0x9E3779B97F4A7C15ull * (index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Deterministic pseudo-random number generator used throughout the framework.
///
/// Every stochastic component (dataset generators, k-means initialisation,
/// stratified shuffling, SGD sampling, neural-network initialisation) takes an
/// explicit Rng or a seed, so end-to-end runs are reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed), seed_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [0, n). Requires n > 0.
  size_t Index(size_t n) {
    return std::uniform_int_distribution<size_t>(0, n - 1)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Int(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Standard normal deviate times `stddev` plus `mean`.
  double Gaussian(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli trial with probability of success `p`.
  bool Bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      std::swap((*v)[i], (*v)[Index(i + 1)]);
    }
  }

  /// Derives an independent child generator; used to give each fold/instance
  /// its own stream so that changing one component does not perturb others.
  /// NOTE: Fork() advances this generator, so successive forks differ —
  /// which also means the fork order matters. Inside parallel regions use
  /// SplitSeed()/Split() below, which are pure functions of (seed, index)
  /// and therefore independent of dispatch order.
  Rng Fork() { return Rng(engine_()); }

  /// Derives the `index`-th child stream as a pure function of the
  /// construction seed — does NOT advance (or read) this generator's state,
  /// so any number of parallel tasks can split their streams in any order.
  Rng Split(uint64_t index) const { return Rng(SplitSeed(seed_, index)); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  uint64_t seed_;
};

}  // namespace etsc

#endif  // ETSC_CORE_RNG_H_
