#ifndef ETSC_CORE_METRICS_H_
#define ETSC_CORE_METRICS_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "core/status.h"

namespace etsc {

/// Multiclass confusion matrix keyed by label value.
class ConfusionMatrix {
 public:
  ConfusionMatrix() = default;

  /// Builds the matrix; the two vectors must be equal length.
  ConfusionMatrix(const std::vector<int>& truth, const std::vector<int>& predicted);

  void Add(int truth, int predicted);

  size_t count(int truth, int predicted) const;
  size_t total() const { return total_; }

  /// Distinct labels seen (union of truth and predictions), ascending.
  std::vector<int> Labels() const;

  /// (TP + TN) / total over all classes: the paper's accuracy (Sec. 2.2).
  double Accuracy() const;

  /// Per-class F1 = TP / (TP + (FP + FN)/2), averaged over classes present in
  /// the ground truth (macro average; the paper's F1-score, Sec. 2.2).
  double MacroF1() const;

  /// Per-class precision TP / (TP + FP); 0 when the class is never predicted.
  double Precision(int label) const;

  /// Per-class recall TP / (TP + FN); 0 when the class never occurs.
  double Recall(int label) const;

  /// Per-class F1 using the half-sum form of Sec 2.2.
  double F1(int label) const;

 private:
  std::map<std::pair<int, int>, size_t> counts_;  // (truth, pred) -> count
  std::map<int, size_t> truth_counts_;
  std::map<int, size_t> pred_counts_;
  size_t total_ = 0;
};

/// Earliness = (consumed prefix length) / (series length), averaged over test
/// instances; lower is better, 1 means the full series was needed (Sec. 2.2).
double MeanEarliness(const std::vector<size_t>& prefix_lengths,
                     const std::vector<size_t>& series_lengths);

/// Harmonic mean of accuracy and (1 - earliness); aligns the two reversed
/// objectives (Sec. 2.2). Returns 0 when either term is 0.
double HarmonicMean(double accuracy, double earliness);

/// Cost-sensitive score: alpha * (1 - accuracy) + (1 - alpha) * earliness.
/// Lower is better (0 = perfect-and-instant, 1 = wrong-and-late). `alpha` is
/// the explicit misclassification-vs-delay cost ratio; alpha=1 scores
/// accuracy alone, alpha=0 scores earliness alone. Reported alongside the
/// harmonic mean so campaigns can be ranked under an application's actual
/// cost model instead of the fixed 50/50 trade-off the harmonic mean implies.
/// `alpha` is clamped to [0, 1].
double CostScore(double accuracy, double earliness, double alpha);

/// The bundle of scores every experiment in the paper reports.
struct EvalScores {
  double accuracy = 0.0;
  double f1 = 0.0;
  double earliness = 1.0;
  double harmonic_mean = 0.0;

  std::string ToString() const;
};

/// Builds EvalScores from raw per-instance outcomes.
EvalScores ComputeScores(const std::vector<int>& truth,
                         const std::vector<int>& predicted,
                         const std::vector<size_t>& prefix_lengths,
                         const std::vector<size_t>& series_lengths);

}  // namespace etsc

#endif  // ETSC_CORE_METRICS_H_
