#ifndef ETSC_DATA_UCR_LIKE_H_
#define ETSC_DATA_UCR_LIKE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "core/status.h"

namespace etsc {

/// Latent waveform family a generator draws class shapes from.
enum class ShapeStyle {
  kSeasonal,  // traffic/consumption curves; classes differ in daily profile
  kBurst,     // appliance/power traces; classes differ in burst signature
  kMotion,    // inertial sensors; classes differ in band energy per channel
  kGesture,   // a class-specific motif at a class-specific position
  kTrend,     // classes differ in late drift (price-like)
};

/// Shape metadata of one synthetic UCR/UEA stand-in. Instances, lengths,
/// variables, class counts and imbalance mirror the published datasets so the
/// Table-3 categorisation comes out identical.
struct UcrLikeSpec {
  std::string name;
  size_t height = 0;
  size_t length = 0;
  size_t variables = 1;
  size_t classes = 2;
  double cir = 1.0;         // class-imbalance ratio to reproduce
  double target_cov = 0.7;  // coefficient of variation to land near
  double observation_period_seconds = 1.0;
  double noise = 0.1;
  /// Fraction of the horizon before class-discriminative signal appears.
  double signal_start = 0.0;
  ShapeStyle style = ShapeStyle::kSeasonal;
};

/// Specs of the ten UCR/UEA datasets used in the paper (Sec. 5.1/5.4).
const std::vector<UcrLikeSpec>& UcrLikeSpecs();

/// Looks up a spec by dataset name.
Result<UcrLikeSpec> FindUcrLikeSpec(const std::string& name);

/// Generates a dataset from a spec. `height_scale` in (0,1] subsamples the
/// instance count (benches use it to keep the biggest datasets tractable; the
/// canonical Table-3 profile should be computed at scale 1).
Dataset MakeUcrLike(const UcrLikeSpec& spec, uint64_t seed,
                    double height_scale = 1.0);

/// Convenience: generate by name with the registered spec.
Result<Dataset> MakeUcrLikeByName(const std::string& name, uint64_t seed,
                                  double height_scale = 1.0);

}  // namespace etsc

#endif  // ETSC_DATA_UCR_LIKE_H_
