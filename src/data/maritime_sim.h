#ifndef ETSC_DATA_MARITIME_SIM_H_
#define ETSC_DATA_MARITIME_SIM_H_

#include <cstdint>
#include <vector>

#include "core/dataset.h"

namespace etsc {

/// Synthetic stand-in for the paper's Maritime dataset (Sec. 5.3): AIS
/// position signals of vessels around the port of Brest, cut into 30-minute
/// windows (one point per minute) and labelled by whether the vessel lies
/// inside the port polygon at the end of the window.
///
/// The generator simulates vessel kinematics: each vessel follows waypoint
/// legs with speed/heading dynamics plus sea noise; port-bound windows head
/// toward (and end inside) the port polygon, others transit or loiter
/// offshore. Variables per time-point mirror the paper's seven attributes:
/// 0 timestamp (minutes), 1 ship id, 2 longitude, 3 latitude, 4 speed (kn),
/// 5 heading (deg), 6 course over ground (deg).
struct MaritimeSimOptions {
  /// Number of 30-minute windows. The paper's dataset has 80,591; the default
  /// is scaled so single-machine benches finish, while staying in the 'Large'
  /// category (> 1,000 instances).
  size_t num_windows = 8000;
  size_t window_length = 30;  // one point per minute
  size_t num_vessels = 9;     // paper: nine vessels
  /// Positive (ends-in-port) fraction; the paper has 15,467 / 80,591 ≈ 0.192.
  double positive_fraction = 0.192;
  double noise = 0.15;
  uint64_t seed = 202;
};

/// Generates the dataset (label 1 = vessel inside the port polygon at the end
/// of the window, 0 otherwise).
Dataset MakeMaritimeDataset(const MaritimeSimOptions& options = {});

/// The port polygon used for labelling (lon/lat vertex pairs, convex).
const std::vector<std::pair<double, double>>& PortPolygon();

/// Ray-casting point-in-polygon test used by the labelling rule.
bool InsidePolygon(const std::vector<std::pair<double, double>>& polygon,
                   double lon, double lat);

}  // namespace etsc

#endif  // ETSC_DATA_MARITIME_SIM_H_
