#include "data/biological_sim.h"

#include <algorithm>
#include <cmath>

#include "core/rng.h"

namespace etsc {

namespace {

struct TreatmentConfig {
  double concentration;  // drug strength per administration
  double frequency;      // administrations per unit time
  double duration;       // fraction of the horizon the drug is given
};

struct SimulationResult {
  TimeSeries series;
  bool interesting = false;
};

// One tumor run under a treatment configuration: a discrete-time population
// model with logistic growth, dose-dependent necrosis and background
// apoptosis.
SimulationResult Simulate(const TreatmentConfig& config,
                          const BiologicalSimOptions& options, Rng* rng) {
  const size_t T = options.num_timepoints;
  std::vector<double> alive(T), necrotic(T), apoptotic(T);

  double a = options.initial_alive * rng->Uniform(0.85, 1.15);
  double n = 0.0;
  double p = 0.0;
  const double carrying = options.initial_alive * rng->Uniform(1.6, 2.4);
  const double growth = rng->Uniform(0.08, 0.14);
  const double apoptosis_rate = rng->Uniform(0.004, 0.012);
  // Cumulative drug exposure needed before necrosis starts: places the onset
  // of visible class signal around onset_fraction of the horizon.
  const double efficacy_threshold =
      config.concentration * config.frequency *
          (options.onset_fraction * static_cast<double>(T)) +
      rng->Gaussian(0.0, 0.05);

  double exposure = 0.0;
  double peak_alive = a;
  for (size_t t = 0; t < T; ++t) {
    // Administration schedule: active during the first `duration` fraction.
    const bool administered =
        static_cast<double>(t) < config.duration * static_cast<double>(T);
    if (administered) exposure += config.concentration * config.frequency;

    // Logistic growth of alive cells.
    const double born = growth * a * (1.0 - a / carrying);
    // Drug-induced necrosis once exposure passes the efficacy threshold.
    double killed = 0.0;
    if (exposure > efficacy_threshold) {
      const double kill_rate =
          0.10 * config.concentration *
          std::min(1.0, (exposure - efficacy_threshold) / 2.0);
      killed = kill_rate * a;
    }
    // Natural apoptosis.
    const double died = apoptosis_rate * a;

    a = std::max(0.0, a + born - killed - died);
    n += killed;
    p += died;
    peak_alive = std::max(peak_alive, a);

    alive[t] = a * (1.0 + rng->Gaussian(0.0, options.noise));
    necrotic[t] = n * (1.0 + rng->Gaussian(0.0, options.noise));
    apoptotic[t] = p * (1.0 + rng->Gaussian(0.0, options.noise));
  }

  SimulationResult result;
  auto series = TimeSeries::FromChannels({alive, necrotic, apoptotic});
  ETSC_CHECK(series.ok());
  result.series = std::move(series).value();
  // Domain labelling rule: the treatment is interesting when it constrained
  // tumor growth, i.e. the final population dropped well below its peak.
  result.interesting = a < 0.6 * peak_alive;
  return result;
}

TreatmentConfig SampleConfig(Rng* rng) {
  TreatmentConfig config;
  config.concentration = rng->Uniform(0.05, 1.0);
  config.frequency = rng->Uniform(0.2, 1.0);
  config.duration = rng->Uniform(0.2, 1.0);
  return config;
}

}  // namespace

Dataset MakeBiologicalDataset(const BiologicalSimOptions& options) {
  Rng rng(options.seed);
  const size_t want_interesting = static_cast<size_t>(
      std::round(options.interesting_fraction *
                 static_cast<double>(options.num_simulations)));
  const size_t want_boring = options.num_simulations - want_interesting;

  Dataset dataset;
  dataset.set_name("Biological");
  dataset.set_observation_period_seconds(360.0);  // one sample per 6 sim-min

  size_t interesting = 0, boring = 0;
  // Quota sampling over treatment configurations reproduces the 20/80 class
  // balance while keeping the label a function of the simulation outcome.
  size_t guard = 0;
  while (interesting < want_interesting || boring < want_boring) {
    ETSC_CHECK(++guard < options.num_simulations * 1000);
    SimulationResult result = Simulate(SampleConfig(&rng), options, &rng);
    if (result.interesting && interesting < want_interesting) {
      dataset.Add(std::move(result.series), 1);
      ++interesting;
    } else if (!result.interesting && boring < want_boring) {
      dataset.Add(std::move(result.series), 0);
      ++boring;
    }
  }
  return dataset;
}

}  // namespace etsc
