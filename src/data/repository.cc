#include "data/repository.h"

#include <algorithm>
#include <cmath>

#include "data/biological_sim.h"
#include "data/maritime_sim.h"
#include "data/ucr_like.h"

namespace etsc {

namespace {

// Canonical (paper) instance counts for datasets the repository may scale.
constexpr size_t kMaritimeCanonicalWindows = 80591;
constexpr size_t kBiologicalCanonicalRuns = 644;

BenchmarkDataset Finish(Dataset data, size_t canonical_height) {
  BenchmarkDataset out;
  out.canonical_profile = Categorize(data);
  out.canonical_profile.height = canonical_height;
  AssignCategories(&out.canonical_profile);
  out.data = std::move(data);
  return out;
}

}  // namespace

const std::vector<std::string>& BenchmarkDatasetNames() {
  static const auto* kNames = new std::vector<std::string>{
      "BasicMotions",       "Biological",
      "DodgerLoopDay",      "DodgerLoopGame",
      "DodgerLoopWeekend",  "HouseTwenty",
      "LSST",               "Maritime",
      "PickupGestureWiimoteZ", "PLAID",
      "PowerCons",          "SharePriceIncrease"};
  return *kNames;
}

Result<BenchmarkDataset> MakeBenchmarkDataset(const std::string& name,
                                              const RepositoryOptions& options) {
  if (name == "Biological") {
    BiologicalSimOptions bio;
    bio.seed = options.seed + 1;
    if (options.height_scale < 1.0 &&
        bio.num_simulations > options.scale_above) {
      bio.num_simulations = static_cast<size_t>(
          options.height_scale * static_cast<double>(bio.num_simulations));
    }
    return Finish(MakeBiologicalDataset(bio), kBiologicalCanonicalRuns);
  }
  if (name == "Maritime") {
    MaritimeSimOptions sea;
    sea.seed = options.seed + 2;
    sea.num_windows = options.maritime_windows;
    if (options.height_scale < 1.0 && sea.num_windows > options.scale_above) {
      sea.num_windows = static_cast<size_t>(
          options.height_scale * static_cast<double>(sea.num_windows));
    }
    return Finish(MakeMaritimeDataset(sea), kMaritimeCanonicalWindows);
  }
  ETSC_ASSIGN_OR_RETURN(UcrLikeSpec spec, FindUcrLikeSpec(name));
  double scale = 1.0;
  if (options.height_scale < 1.0 && spec.height > options.scale_above) {
    scale = options.height_scale;
  }
  Dataset data = MakeUcrLike(spec, options.seed + 3, scale);
  return Finish(std::move(data), spec.height);
}

Result<std::vector<BenchmarkDataset>> MakeBenchmarkCorpus(
    const RepositoryOptions& options) {
  std::vector<BenchmarkDataset> corpus;
  corpus.reserve(BenchmarkDatasetNames().size());
  for (const auto& name : BenchmarkDatasetNames()) {
    ETSC_ASSIGN_OR_RETURN(BenchmarkDataset dataset,
                          MakeBenchmarkDataset(name, options));
    corpus.push_back(std::move(dataset));
  }
  return corpus;
}

}  // namespace etsc
