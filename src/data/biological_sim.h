#ifndef ETSC_DATA_BIOLOGICAL_SIM_H_
#define ETSC_DATA_BIOLOGICAL_SIM_H_

#include <cstdint>

#include "core/dataset.h"

namespace etsc {

/// Synthetic stand-in for the paper's Biological dataset (Sec. 5.2): PhysiBoSS
/// tumor/drug simulations summarised by three time-evolving cell counts.
///
/// The generating process is a mechanistic population model per simulation:
/// logistic tumor growth; a drug administered with configurable concentration,
/// frequency and duration (fixed within a run, sampled across runs) whose
/// cumulative effect converts Alive cells to Necrotic once it crosses an
/// efficacy threshold; Apoptotic cells accumulate by natural death regardless.
/// Labels follow the domain rule: a run is *interesting* (label 1) when the
/// treatment constrains tumor growth (final Alive count below a fraction of
/// its peak). Class quotas reproduce the paper's 20/80 imbalance, and the key
/// ETSC difficulty is preserved: interesting and non-interesting runs are
/// near-indistinguishable until the drug takes effect (~30% into the run).
struct BiologicalSimOptions {
  size_t num_simulations = 644;  // paper: 644 series
  size_t num_timepoints = 48;    // paper: 48 time-points
  double interesting_fraction = 0.2;
  /// Fraction of the horizon before drug effects become visible.
  double onset_fraction = 0.3;
  double initial_alive = 1000.0;
  double noise = 0.02;  // relative measurement noise
  uint64_t seed = 101;
};

/// Generates the dataset (variables: 0 = Alive, 1 = Necrotic, 2 = Apoptotic;
/// labels: 1 = interesting, 0 = non-interesting).
Dataset MakeBiologicalDataset(const BiologicalSimOptions& options = {});

}  // namespace etsc

#endif  // ETSC_DATA_BIOLOGICAL_SIM_H_
