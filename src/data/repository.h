#ifndef ETSC_DATA_REPOSITORY_H_
#define ETSC_DATA_REPOSITORY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/categorize.h"
#include "core/dataset.h"
#include "core/status.h"

namespace etsc {

/// One of the 12 benchmark datasets with the categorisation the paper assigns
/// to it. `canonical_profile` is always computed at full (paper) size so the
/// Table-3 categories are stable even when `data` was generated scaled-down
/// for a faster evaluation run.
struct BenchmarkDataset {
  Dataset data;
  DatasetProfile canonical_profile;
};

/// Knobs of the benchmark corpus.
struct RepositoryOptions {
  uint64_t seed = 1234;
  /// Instance-count scale in (0, 1] applied to datasets with more than
  /// `scale_above` instances; categories always come from full-size profiles.
  double height_scale = 1.0;
  size_t scale_above = 1000;
  /// Maritime window count (the paper's 80,591 scaled; see DESIGN.md).
  size_t maritime_windows = 8000;
};

/// Names of all 12 benchmark datasets in Table-3 order.
const std::vector<std::string>& BenchmarkDatasetNames();

/// Generates one benchmark dataset by name.
Result<BenchmarkDataset> MakeBenchmarkDataset(const std::string& name,
                                              const RepositoryOptions& options = {});

/// Generates the full 12-dataset corpus.
Result<std::vector<BenchmarkDataset>> MakeBenchmarkCorpus(
    const RepositoryOptions& options = {});

}  // namespace etsc

#endif  // ETSC_DATA_REPOSITORY_H_
