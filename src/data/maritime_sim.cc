#include "data/maritime_sim.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "core/rng.h"

namespace etsc {

namespace {

// Approximate Brest port coordinates; the polygon is a convex harbor basin.
constexpr double kPortLon = -4.49;
constexpr double kPortLat = 48.38;

// Degrees of longitude per nautical-mile-ish step at this latitude; the
// simulation runs in degree space with speed expressed in knots scaled down.
constexpr double kDegPerKnotMinute = 1.0 / 60.0 / 60.0 * 1.852 / 1.11;

double WrapDegrees(double angle) {
  while (angle < 0.0) angle += 360.0;
  while (angle >= 360.0) angle -= 360.0;
  return angle;
}

}  // namespace

const std::vector<std::pair<double, double>>& PortPolygon() {
  static const auto* kPolygon = new std::vector<std::pair<double, double>>{
      {kPortLon - 0.030, kPortLat - 0.012}, {kPortLon + 0.030, kPortLat - 0.012},
      {kPortLon + 0.042, kPortLat + 0.008}, {kPortLon + 0.010, kPortLat + 0.020},
      {kPortLon - 0.025, kPortLat + 0.016},
  };
  return *kPolygon;
}

bool InsidePolygon(const std::vector<std::pair<double, double>>& polygon,
                   double lon, double lat) {
  bool inside = false;
  const size_t n = polygon.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    const auto& [xi, yi] = polygon[i];
    const auto& [xj, yj] = polygon[j];
    const bool crosses = (yi > lat) != (yj > lat);
    if (crosses && lon < (xj - xi) * (lat - yi) / (yj - yi) + xi) {
      inside = !inside;
    }
  }
  return inside;
}

Dataset MakeMaritimeDataset(const MaritimeSimOptions& options) {
  Rng rng(options.seed);
  Dataset dataset;
  dataset.set_name("Maritime");
  dataset.set_observation_period_seconds(60.0);  // one AIS message per minute

  const size_t want_positive = static_cast<size_t>(std::round(
      options.positive_fraction * static_cast<double>(options.num_windows)));
  const size_t want_negative = options.num_windows - want_positive;

  size_t positives = 0, negatives = 0;
  size_t window_counter = 0;
  size_t guard = 0;
  while (positives < want_positive || negatives < want_negative) {
    ETSC_CHECK(++guard < options.num_windows * 200);
    const bool make_positive = positives < want_positive &&
                               (negatives >= want_negative || rng.Bernoulli(0.5));

    const double ship_id =
        static_cast<double>(1 + rng.Index(options.num_vessels));
    const size_t T = options.window_length;

    // Start position: port-bound windows start a few minutes of sailing away
    // from the basin; others start (and stay) further out or transit.
    double lon, lat, heading;
    double speed = rng.Uniform(4.0, 14.0);  // knots
    if (make_positive) {
      const double angle = rng.Uniform(0.0, 2.0 * std::numbers::pi);
      // Close enough to reach the polygon within the window at `speed`.
      const double reach =
          speed * kDegPerKnotMinute * static_cast<double>(T) * 0.7;
      const double radius = rng.Uniform(0.3, 0.9) * reach;
      lon = kPortLon + radius * std::cos(angle);
      lat = kPortLat + radius * std::sin(angle);
      heading = WrapDegrees(std::atan2(kPortLat - lat, kPortLon - lon) * 180.0 /
                            std::numbers::pi);
    } else {
      lon = kPortLon + rng.Uniform(-0.8, 0.8);
      lat = kPortLat + rng.Uniform(-0.8, 0.8);
      // Keep negative starts outside the immediate basin area.
      if (std::abs(lon - kPortLon) < 0.1 && std::abs(lat - kPortLat) < 0.1) {
        lon += lon >= kPortLon ? 0.2 : -0.2;
      }
      heading = rng.Uniform(0.0, 360.0);
    }

    std::vector<double> ts(T), id(T), lons(T), lats(T), speeds(T), headings(T),
        cogs(T);
    const double base_minute =
        static_cast<double>(window_counter) * 15.0;  // overlapping windows
    for (size_t t = 0; t < T; ++t) {
      if (make_positive) {
        // Steer toward the port, slow down on approach.
        const double bearing =
            WrapDegrees(std::atan2(kPortLat - lat, kPortLon - lon) * 180.0 /
                        std::numbers::pi);
        double turn = bearing - heading;
        if (turn > 180.0) turn -= 360.0;
        if (turn < -180.0) turn += 360.0;
        heading = WrapDegrees(heading + std::clamp(turn, -20.0, 20.0) +
                              rng.Gaussian(0.0, 2.0));
        const double dist =
            std::hypot(kPortLon - lon, kPortLat - lat);
        if (dist < 0.05) speed = std::max(1.5, speed * 0.9);
      } else {
        // Transit / loiter: slow heading drift, occasional course changes.
        heading = WrapDegrees(heading + rng.Gaussian(0.0, 4.0) +
                              (rng.Bernoulli(0.03) ? rng.Uniform(-60.0, 60.0)
                                                   : 0.0));
        speed = std::clamp(speed + rng.Gaussian(0.0, 0.3), 0.5, 18.0);
      }
      const double rad = heading * std::numbers::pi / 180.0;
      lon += speed * kDegPerKnotMinute * std::cos(rad);
      lat += speed * kDegPerKnotMinute * std::sin(rad);

      ts[t] = base_minute + static_cast<double>(t);
      id[t] = ship_id;
      lons[t] = lon + rng.Gaussian(0.0, 1e-4 * options.noise);
      lats[t] = lat + rng.Gaussian(0.0, 1e-4 * options.noise);
      speeds[t] = std::max(0.0, speed + rng.Gaussian(0.0, options.noise));
      headings[t] = WrapDegrees(heading + rng.Gaussian(0.0, options.noise * 10));
      // Course over ground: heading plus current-induced drift.
      cogs[t] = WrapDegrees(heading + rng.Gaussian(0.0, 3.0));
    }

    const bool ends_inside = InsidePolygon(PortPolygon(), lon, lat);
    if (make_positive != ends_inside) continue;  // resample on miss

    auto series =
        TimeSeries::FromChannels({ts, id, lons, lats, speeds, headings, cogs});
    ETSC_CHECK(series.ok());
    dataset.Add(std::move(series).value(), ends_inside ? 1 : 0);
    ++window_counter;
    if (ends_inside) {
      ++positives;
    } else {
      ++negatives;
    }
  }
  return dataset;
}

}  // namespace etsc
