#include "data/ucr_like.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "core/rng.h"

namespace etsc {

namespace {

constexpr double kTau = 2.0 * std::numbers::pi;

// Per-class quota counts for a given imbalance ratio: class weights fall
// linearly from `cir` (class 0) to 1 (last class).
std::vector<size_t> ClassQuotas(size_t height, size_t classes, double cir) {
  std::vector<double> weights(classes);
  for (size_t c = 0; c < classes; ++c) {
    const double frac =
        classes == 1 ? 0.0
                     : static_cast<double>(c) / static_cast<double>(classes - 1);
    weights[c] = cir + (1.0 - cir) * frac;
  }
  double total = 0.0;
  for (double w : weights) total += w;
  std::vector<size_t> quotas(classes, 1);  // every class keeps >= 1 instance
  size_t assigned = classes;
  for (size_t c = 0; c < classes; ++c) {
    const size_t want = static_cast<size_t>(
        std::floor(weights[c] / total * static_cast<double>(height)));
    const size_t extra = want > 1 ? want - 1 : 0;
    const size_t grant = std::min(extra, height - assigned);
    quotas[c] += grant;
    assigned += grant;
    if (assigned == height) break;
  }
  // Rounding remainder goes to the largest class.
  quotas[0] += height - assigned;
  return quotas;
}

// One channel of one instance: class- and style-dependent latent shape plus
// noise. `u` is a per-instance random phase/jitter source.
std::vector<double> MakeChannel(const UcrLikeSpec& spec, size_t class_index,
                                size_t variable, Rng* rng) {
  const size_t T = spec.length;
  std::vector<double> x(T, 0.0);
  const double c = static_cast<double>(class_index);
  const double v = static_cast<double>(variable);
  const size_t start =
      static_cast<size_t>(spec.signal_start * static_cast<double>(T));
  const double phase = rng->Uniform(0.0, kTau);
  const double amp_jitter = rng->Uniform(0.8, 1.2);

  switch (spec.style) {
    case ShapeStyle::kSeasonal: {
      // Two harmonics whose amplitude/frequency mix encodes the class.
      const double f1 = 1.0 + 0.5 * c;
      const double a1 = (1.0 + 0.3 * c) * amp_jitter;
      const double a2 = 0.5 * amp_jitter;
      for (size_t t = 0; t < T; ++t) {
        const double u = static_cast<double>(t) / static_cast<double>(T);
        double value = a2 * std::sin(kTau * 2.0 * u + phase + v);
        if (t >= start) {
          value += a1 * std::sin(kTau * f1 * u + phase) +
                   0.2 * c * std::cos(kTau * 3.0 * u + phase);
        }
        x[t] = value;
      }
      break;
    }
    case ShapeStyle::kBurst: {
      // Rectangular power bursts; class encodes burst width/level/rate.
      const double level = 1.0 + 0.7 * c;
      const size_t width = 5 + 3 * class_index;
      const double rate = 0.01 + 0.004 * c;
      size_t t = start;
      while (t < T) {
        if (rng->Uniform() < rate * static_cast<double>(width)) {
          const size_t end = std::min(T, t + width);
          for (size_t s = t; s < end; ++s) x[s] += level * amp_jitter;
          t = end;
        } else {
          ++t;
        }
      }
      // Small standby load with class-free ripple.
      for (size_t s = 0; s < T; ++s) {
        x[s] += 0.05 * std::sin(kTau * 7.0 * static_cast<double>(s) /
                                    static_cast<double>(T) +
                                phase);
      }
      break;
    }
    case ShapeStyle::kMotion: {
      // Band-limited oscillation: class sets frequency, channel sets phase
      // offset and gain (inertial-sensor-like).
      const double freq = 2.0 + 1.5 * c;
      const double gain = (0.5 + 0.25 * ((v + c) * 0.5)) * amp_jitter;
      double drift = 0.0;
      for (size_t t = 0; t < T; ++t) {
        const double u = static_cast<double>(t) / static_cast<double>(T);
        drift += rng->Gaussian(0.0, 0.02);
        double value = drift;
        if (t >= start) {
          value += gain * std::sin(kTau * freq * u + phase + 0.7 * v);
        }
        x[t] = value;
      }
      break;
    }
    case ShapeStyle::kGesture: {
      // A class-specific Gaussian-windowed wiggle at a class-specific spot.
      const double center =
          (0.15 + 0.07 * c) * static_cast<double>(T) +
          rng->Gaussian(0.0, 0.01 * static_cast<double>(T));
      const double width = 0.05 * static_cast<double>(T);
      const double freq = 3.0 + c;
      for (size_t t = 0; t < T; ++t) {
        const double d = (static_cast<double>(t) - center) / width;
        const double envelope = std::exp(-0.5 * d * d);
        x[t] = amp_jitter * envelope *
               std::sin(kTau * freq * static_cast<double>(t) /
                            static_cast<double>(T) +
                        phase);
      }
      break;
    }
    case ShapeStyle::kTrend: {
      // Random walk whose late drift encodes the class (price-like).
      double value = rng->Uniform(-0.5, 0.5);
      const double drift = (c - 0.5) * 0.06 * amp_jitter;
      for (size_t t = 0; t < T; ++t) {
        value += rng->Gaussian(0.0, 0.05);
        if (t >= start) value += drift;
        x[t] = value;
      }
      break;
    }
  }
  // Measurement noise.
  for (double& value : x) value += rng->Gaussian(0.0, spec.noise);
  return x;
}

// Shifts all values by a constant so the global coefficient of variation
// lands near `target` (CoV = stddev / |mean|; the offset only moves the mean).
void AdjustCoV(Dataset* dataset, double target) {
  if (target <= 0.0) return;
  double sum = 0.0;
  size_t count = 0;
  for (size_t i = 0; i < dataset->size(); ++i) {
    const TimeSeries& ts = dataset->instance(i);
    for (size_t v = 0; v < ts.num_variables(); ++v) {
      for (double x : ts.channel(v)) {
        sum += x;
        ++count;
      }
    }
  }
  if (count == 0) return;
  const double mean = sum / static_cast<double>(count);
  double ss = 0.0;
  for (size_t i = 0; i < dataset->size(); ++i) {
    const TimeSeries& ts = dataset->instance(i);
    for (size_t v = 0; v < ts.num_variables(); ++v) {
      for (double x : ts.channel(v)) ss += (x - mean) * (x - mean);
    }
  }
  const double stddev = std::sqrt(ss / static_cast<double>(count));
  if (stddev <= 0.0) return;
  const double desired_mean = stddev / target;
  const double offset = desired_mean - mean;
  for (size_t i = 0; i < dataset->size(); ++i) {
    TimeSeries& ts = dataset->instance(i);
    for (size_t v = 0; v < ts.num_variables(); ++v) {
      for (double& x : ts.channel(v)) x += offset;
    }
  }
}

}  // namespace

const std::vector<UcrLikeSpec>& UcrLikeSpecs() {
  static const auto* kSpecs = new std::vector<UcrLikeSpec>{
      // name, height, length, vars, classes, cir, cov, period(s), noise,
      // signal_start, style
      {"BasicMotions", 80, 100, 6, 4, 1.0, 1.5, 0.1, 0.15, 0.0,
       ShapeStyle::kMotion},
      {"DodgerLoopDay", 158, 288, 1, 7, 1.2, 0.7, 300.0, 0.2, 0.1,
       ShapeStyle::kSeasonal},
      {"DodgerLoopGame", 158, 288, 1, 2, 1.1, 0.6, 300.0, 0.2, 0.15,
       ShapeStyle::kSeasonal},
      {"DodgerLoopWeekend", 158, 288, 1, 2, 2.5, 0.7, 300.0, 0.2, 0.1,
       ShapeStyle::kSeasonal},
      {"HouseTwenty", 159, 2000, 1, 2, 1.2, 1.6, 8.0, 0.1, 0.1,
       ShapeStyle::kBurst},
      {"LSST", 4925, 36, 6, 14, 10.0, 1.3, 86400.0, 0.15, 0.0,
       ShapeStyle::kMotion},
      {"PickupGestureWiimoteZ", 100, 361, 1, 10, 1.0, 0.8, 0.01, 0.1, 0.1,
       ShapeStyle::kGesture},
      {"PLAID", 1074, 1345, 1, 11, 8.0, 1.5, 0.0033, 0.1, 0.05,
       ShapeStyle::kBurst},
      {"PowerCons", 360, 144, 1, 2, 1.0, 0.6, 600.0, 0.15, 0.1,
       ShapeStyle::kSeasonal},
      {"SharePriceIncrease", 1931, 60, 1, 2, 3.0, 1.2, 86400.0, 0.05, 0.4,
       ShapeStyle::kTrend},
  };
  return *kSpecs;
}

Result<UcrLikeSpec> FindUcrLikeSpec(const std::string& name) {
  for (const auto& spec : UcrLikeSpecs()) {
    if (spec.name == name) return spec;
  }
  return Status::NotFound("no UCR-like spec named '" + name + "'");
}

Dataset MakeUcrLike(const UcrLikeSpec& spec, uint64_t seed, double height_scale) {
  ETSC_CHECK(height_scale > 0.0 && height_scale <= 1.0);
  Rng rng(seed);
  const size_t height = std::max<size_t>(
      spec.classes * 2,
      static_cast<size_t>(std::round(height_scale *
                                     static_cast<double>(spec.height))));
  const auto quotas = ClassQuotas(height, spec.classes, spec.cir);

  Dataset dataset;
  dataset.set_name(spec.name);
  dataset.set_observation_period_seconds(spec.observation_period_seconds);
  for (size_t c = 0; c < spec.classes; ++c) {
    for (size_t q = 0; q < quotas[c]; ++q) {
      std::vector<std::vector<double>> channels(spec.variables);
      for (size_t v = 0; v < spec.variables; ++v) {
        channels[v] = MakeChannel(spec, c, v, &rng);
      }
      auto series = TimeSeries::FromChannels(std::move(channels));
      ETSC_CHECK(series.ok());
      dataset.Add(std::move(series).value(), static_cast<int>(c));
    }
  }
  AdjustCoV(&dataset, spec.target_cov);
  return dataset;
}

Result<Dataset> MakeUcrLikeByName(const std::string& name, uint64_t seed,
                                  double height_scale) {
  ETSC_ASSIGN_OR_RETURN(UcrLikeSpec spec, FindUcrLikeSpec(name));
  return MakeUcrLike(spec, seed, height_scale);
}

}  // namespace etsc
