#include "tsc/weasel.h"

#include <algorithm>
#include <cmath>

#include "core/rng.h"
#include "ml/chi2.h"
#include "ml/fourier.h"

namespace etsc {

uint64_t PackWeaselKey(size_t window_index, uint64_t word, uint64_t prev_plus_1) {
  ETSC_DCHECK(word < (1ull << 24));
  ETSC_DCHECK(prev_plus_1 < (1ull << 25));
  return (static_cast<uint64_t>(window_index) << 49) | (word << 25) | prev_plus_1;
}

std::vector<size_t> ChooseWindowSizes(size_t min_window, size_t max_len,
                                      size_t count) {
  std::vector<size_t> sizes;
  if (max_len < min_window || count == 0) {
    if (max_len >= 2) sizes.push_back(std::min(max_len, min_window));
    return sizes;
  }
  const size_t span = max_len - min_window;
  const size_t steps = std::min(count, span + 1);
  for (size_t i = 0; i < steps; ++i) {
    const size_t w =
        min_window + (steps == 1 ? 0 : i * span / (steps - 1));
    if (sizes.empty() || sizes.back() != w) sizes.push_back(w);
  }
  return sizes;
}

Status WeaselClassifier::Fit(const Dataset& train) {
  if (train.empty()) return Status::InvalidArgument("WEASEL: empty training set");
  if (train.NumVariables() != 1) {
    return Status::InvalidArgument("WEASEL: univariate input required");
  }
  const size_t max_len = train.MinLength();
  if (max_len < 2) return Status::InvalidArgument("WEASEL: series too short");

  window_sizes_ = ChooseWindowSizes(options_.min_window, max_len,
                                    options_.max_window_count);
  if (window_sizes_.empty()) {
    return Status::InvalidArgument("WEASEL: no usable window sizes");
  }

  // Optionally z-normalise inputs (off by default; see WeaselOptions).
  std::vector<std::vector<double>> series(train.size());
  for (size_t i = 0; i < train.size(); ++i) {
    if (options_.normalize_input) {
      TimeSeries ts = train.instance(i);
      ts.ZNormalize();
      std::span<const double> c = ts.channel(0);
      series[i].assign(c.begin(), c.end());
    } else {
      std::span<const double> c = train.instance(i).channel(0);
      series[i].assign(c.begin(), c.end());
    }
  }

  // Fit one supervised SFA per window size.
  transforms_.clear();
  transforms_.reserve(window_sizes_.size());
  SfaOptions sfa_options;
  sfa_options.word_length = options_.word_length;
  sfa_options.alphabet_size = options_.alphabet_size;
  sfa_options.norm_mean = options_.norm_mean;
  sfa_options.binning = SfaBinning::kInformationGain;
  for (size_t w : window_sizes_) {
    std::vector<std::vector<double>> windows;
    std::vector<int> labels;
    for (size_t i = 0; i < series.size(); ++i) {
      if (series[i].size() < w) continue;
      for (size_t start = 0; start + w <= series[i].size(); ++start) {
        windows.emplace_back(series[i].begin() + start,
                             series[i].begin() + start + w);
        labels.push_back(train.label(i));
      }
    }
    Sfa sfa(sfa_options);
    ETSC_RETURN_NOT_OK(sfa.Fit(windows, labels));
    transforms_.push_back(std::move(sfa));
  }

  // Build the vocabulary and the training bags. Transform looks keys up in
  // vocabulary_ and appends unseen ones to `grow`, so passing vocabulary_ as
  // both makes training insert while prediction (grow == nullptr) drops.
  vocabulary_.clear();
  std::vector<SparseVector> bags(train.size());
  for (size_t i = 0; i < train.size(); ++i) {
    bags[i] = Transform(series[i], &vocabulary_);
  }
  const size_t dim = vocabulary_.size();
  for (auto& bag : bags) bag.SortAndMerge();

  // Chi² feature selection.
  selected_ = Chi2Select(bags, dim, train.labels(), options_.chi2_threshold);
  std::vector<SparseVector> projected = ProjectFeatures(bags, selected_);

  Rng rng(options_.seed);
  logistic_ = LogisticRegression(options_.logistic);
  return logistic_.FitSparse(projected, selected_.size(), train.labels(), &rng);
}

SparseVector WeaselClassifier::Transform(
    const std::vector<double>& values,
    std::unordered_map<uint64_t, size_t>* grow) const {
  SparseVector bag;
  for (size_t wi = 0; wi < window_sizes_.size(); ++wi) {
    const size_t w = window_sizes_[wi];
    if (values.size() < w) continue;
    const size_t num_coeffs = (options_.word_length + 1) / 2;
    const auto coeff_windows =
        SlidingDft(values, w, num_coeffs, options_.norm_mean);
    std::vector<uint64_t> words(coeff_windows.size());
    for (size_t s = 0; s < coeff_windows.size(); ++s) {
      std::vector<double> approx = coeff_windows[s];
      approx.resize(options_.word_length, 0.0);
      words[s] = transforms_[wi].WordFromApproximation(approx);
    }
    for (size_t s = 0; s < words.size(); ++s) {
      const uint64_t uni_key = PackWeaselKey(wi, words[s], 0);
      auto it = vocabulary_.find(uni_key);
      if (it == vocabulary_.end()) {
        if (grow == nullptr) continue;
        it = grow->emplace(uni_key, grow->size()).first;
      }
      bag.Add(it->second, 1.0);
      if (options_.use_bigrams && s >= w) {
        const uint64_t bi_key = PackWeaselKey(wi, words[s], words[s - w] + 1);
        auto bit = vocabulary_.find(bi_key);
        if (bit == vocabulary_.end()) {
          if (grow == nullptr) continue;
          bit = grow->emplace(bi_key, grow->size()).first;
        }
        bag.Add(bit->second, 1.0);
      }
    }
  }
  bag.SortAndMerge();
  return bag;
}

Result<SparseVector> WeaselClassifier::TransformSelected(
    const TimeSeries& series) const {
  if (!logistic_.fitted()) {
    return Status::FailedPrecondition("WEASEL: not fitted");
  }
  if (series.num_variables() != 1) {
    return Status::InvalidArgument("WEASEL: univariate input required");
  }
  std::vector<double> values;
  if (options_.normalize_input) {
    TimeSeries copy = series;
    copy.ZNormalize();
    std::span<const double> c = copy.channel(0);
    values.assign(c.begin(), c.end());
  } else {
    std::span<const double> c = series.channel(0);
    values.assign(c.begin(), c.end());
  }
  return ProjectRow(Transform(values, nullptr), selected_);
}

Result<int> WeaselClassifier::Predict(const TimeSeries& series) const {
  ETSC_ASSIGN_OR_RETURN(SparseVector row, TransformSelected(series));
  return logistic_.PredictSparse(row);
}

Result<std::vector<double>> WeaselClassifier::PredictProba(
    const TimeSeries& series) const {
  ETSC_ASSIGN_OR_RETURN(SparseVector row, TransformSelected(series));
  return logistic_.PredictProbaSparse(row);
}

namespace {

/// The bag-of-patterns vocabulary in sorted-key order so saved bytes are
/// deterministic regardless of unordered_map iteration order.
void SaveVocabulary(Serializer& out,
                    const std::unordered_map<uint64_t, size_t>& vocabulary) {
  std::vector<std::pair<uint64_t, size_t>> entries(vocabulary.begin(),
                                                   vocabulary.end());
  std::sort(entries.begin(), entries.end());
  out.SizeT(entries.size());
  for (const auto& [key, id] : entries) {
    out.U64(key);
    out.SizeT(id);
  }
}

Status LoadVocabulary(Deserializer& in,
                      std::unordered_map<uint64_t, size_t>* vocabulary) {
  ETSC_ASSIGN_OR_RETURN(size_t count, in.SizeT());
  vocabulary->clear();
  for (size_t i = 0; i < count; ++i) {
    ETSC_ASSIGN_OR_RETURN(uint64_t key, in.U64());
    ETSC_ASSIGN_OR_RETURN(size_t id, in.SizeT());
    (*vocabulary)[key] = id;
  }
  if (vocabulary->size() != count) {
    return Status::DataLoss("WEASEL: duplicate vocabulary keys");
  }
  return Status::OK();
}

}  // namespace

namespace weasel_detail {

void SaveBagOfPatterns(Serializer& out,
                       const std::unordered_map<uint64_t, size_t>& vocabulary) {
  SaveVocabulary(out, vocabulary);
}

Status LoadBagOfPatterns(Deserializer& in,
                         std::unordered_map<uint64_t, size_t>* vocabulary) {
  return LoadVocabulary(in, vocabulary);
}

}  // namespace weasel_detail

Status WeaselClassifier::SaveState(Serializer& out) const {
  out.Begin("weasel");
  // Transform() reads these at predict time; they travel with the model so a
  // default-constructed instance predicts identically after LoadState.
  out.SizeT(options_.word_length);
  out.SizeT(options_.alphabet_size);
  out.Bool(options_.norm_mean);
  out.Bool(options_.use_bigrams);
  out.Bool(options_.normalize_input);
  out.SizeVec(window_sizes_);
  out.SizeT(transforms_.size());
  for (const Sfa& sfa : transforms_) sfa.SaveState(out);
  SaveVocabulary(out, vocabulary_);
  out.SizeVec(selected_);
  logistic_.SaveState(out);
  out.End();
  return Status::OK();
}

Status WeaselClassifier::LoadState(Deserializer& in) {
  ETSC_RETURN_NOT_OK(in.Enter("weasel"));
  ETSC_ASSIGN_OR_RETURN(options_.word_length, in.SizeT());
  ETSC_ASSIGN_OR_RETURN(options_.alphabet_size, in.SizeT());
  ETSC_ASSIGN_OR_RETURN(options_.norm_mean, in.Bool());
  ETSC_ASSIGN_OR_RETURN(options_.use_bigrams, in.Bool());
  ETSC_ASSIGN_OR_RETURN(options_.normalize_input, in.Bool());
  ETSC_ASSIGN_OR_RETURN(window_sizes_, in.SizeVec());
  ETSC_ASSIGN_OR_RETURN(size_t count, in.SizeT());
  if (count != window_sizes_.size()) {
    return Status::DataLoss("WEASEL: transform/window count mismatch");
  }
  transforms_.assign(count, Sfa{});
  for (Sfa& sfa : transforms_) ETSC_RETURN_NOT_OK(sfa.LoadState(in));
  ETSC_RETURN_NOT_OK(LoadVocabulary(in, &vocabulary_));
  ETSC_ASSIGN_OR_RETURN(selected_, in.SizeVec());
  ETSC_RETURN_NOT_OK(logistic_.LoadState(in));
  return in.Leave();
}

std::string WeaselOptionsFingerprint(const WeaselOptions& o) {
  std::string fp = "wl=" + std::to_string(o.word_length) +
                   ",as=" + std::to_string(o.alphabet_size) +
                   ",minw=" + std::to_string(o.min_window) +
                   ",wc=" + std::to_string(o.max_window_count) +
                   ",bg=" + std::to_string(o.use_bigrams ? 1 : 0) +
                   ",nm=" + std::to_string(o.norm_mean ? 1 : 0) +
                   ",ni=" + std::to_string(o.normalize_input ? 1 : 0) +
                   ",chi2=" + FingerprintDouble(o.chi2_threshold) +
                   ",l2=" + FingerprintDouble(o.logistic.l2) +
                   ",lr=" + FingerprintDouble(o.logistic.learning_rate) +
                   ",ep=" + std::to_string(o.logistic.epochs) +
                   ",fi=" + std::to_string(o.logistic.fit_intercept ? 1 : 0) +
                   ",seed=" + std::to_string(o.seed);
  return fp;
}

std::string WeaselClassifier::config_fingerprint() const {
  return "WEASEL(" + WeaselOptionsFingerprint(options_) + ")";
}

}  // namespace etsc
