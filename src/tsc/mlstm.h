#ifndef ETSC_TSC_MLSTM_H_
#define ETSC_TSC_MLSTM_H_

#include <memory>
#include <string>
#include <vector>

#include "core/classifier.h"
#include "ml/nn/layers.h"
#include "ml/nn/lstm.h"

namespace etsc {

/// MLSTM-FCN (Karim et al. 2019): a fully-convolutional branch (three Conv1D
/// blocks with batch norm, ReLU and squeeze-and-excite on the first two) in
/// parallel with an LSTM branch fed the dimension-shuffled series; the two
/// representations are concatenated into a softmax head.
///
/// Channel widths default well below the published 128/256/128 so the
/// single-process benchmarks stay tractable; the architecture is otherwise
/// faithful.
struct MlstmOptions {
  size_t conv1_channels = 16;
  size_t conv2_channels = 32;
  size_t conv3_channels = 16;
  size_t kernel1 = 8, kernel2 = 5, kernel3 = 3;
  size_t lstm_units = 8;
  double dropout = 0.2;
  size_t epochs = 20;
  size_t batch_size = 32;
  double learning_rate = 1e-3;
  uint64_t seed = 13;
};

class MlstmClassifier : public FullClassifier {
 public:
  explicit MlstmClassifier(MlstmOptions options = {}) : options_(options) {}

  Status Fit(const Dataset& train) override;
  Result<int> Predict(const TimeSeries& series) const override;
  Result<std::vector<double>> PredictProba(const TimeSeries& series) const override;
  const std::vector<int>& class_labels() const override { return class_labels_; }
  std::string name() const override { return "MLSTM"; }
  bool SupportsMultivariate() const override { return true; }
  std::unique_ptr<FullClassifier> CloneUntrained() const override {
    return std::make_unique<MlstmClassifier>(options_);
  }

  std::string config_fingerprint() const override;
  Status SaveState(Serializer& out) const override;
  Status LoadState(Deserializer& in) override;

 private:
  struct Network;

  /// Forward pass producing logits; `training` enables batch statistics and
  /// dropout. Non-const because layers cache activations.
  std::vector<std::vector<double>> Forward(const std::vector<TimeSeries*>& batch,
                                           bool training, Rng* rng);
  void Backward(const std::vector<std::vector<double>>& grad_logits);

  /// Input adapters: the FCN branch sees channels × time; the LSTM branch sees
  /// the dimension shuffle (one step per variable, each step a time vector,
  /// padded/truncated to the fitted length).
  nn::FeatureMap ToFeatureMap(const TimeSeries& series) const;
  std::vector<std::vector<double>> ToLstmSequence(const TimeSeries& series) const;

  MlstmOptions options_;
  std::vector<int> class_labels_;
  size_t num_variables_ = 0;
  size_t fitted_length_ = 0;
  std::shared_ptr<Network> net_;  // shared so the const Predict can forward
};

}  // namespace etsc

#endif  // ETSC_TSC_MLSTM_H_
