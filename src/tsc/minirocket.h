#ifndef ETSC_TSC_MINIROCKET_H_
#define ETSC_TSC_MINIROCKET_H_

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/classifier.h"
#include "ml/linear.h"

namespace etsc {

/// MiniROCKET (Dempster et al. 2021): the fixed set of 84 length-9 kernels
/// with weights {-1, 2} (three positions of weight 2), convolved at
/// exponentially spaced dilations with "same" padding, pooled into
/// Proportion-of-Positive-Values features against biases drawn from training
/// convolution outputs, classified by ridge regression (or logistic
/// regression for large datasets).
struct MiniRocketOptions {
  size_t num_dilations = 4;          // dilations 2^0 .. spread up to the length
  size_t biases_per_kernel = 3;      // quantile biases per (kernel, dilation)
  size_t logistic_above_samples = 4000;  // switch head: ridge below, logistic above
  double ridge_alpha = 1.0;
  LogisticRegressionOptions logistic;
  uint64_t seed = 11;
};

class MiniRocketClassifier : public FullClassifier {
 public:
  explicit MiniRocketClassifier(MiniRocketOptions options = {})
      : options_(options) {}

  Status Fit(const Dataset& train) override;
  Result<int> Predict(const TimeSeries& series) const override;
  Result<std::vector<double>> PredictProba(const TimeSeries& series) const override;
  const std::vector<int>& class_labels() const override { return class_labels_; }
  std::string name() const override { return "MiniROCKET"; }
  bool SupportsMultivariate() const override { return true; }
  std::unique_ptr<FullClassifier> CloneUntrained() const override {
    return std::make_unique<MiniRocketClassifier>(options_);
  }

  /// PPV feature vector of a series under the fitted transform.
  Result<std::vector<double>> Transform(const TimeSeries& series) const;

  size_t num_features() const { return biases_.size(); }

  std::string config_fingerprint() const override;
  Status SaveState(Serializer& out) const override;
  Status LoadState(Deserializer& in) override;

 private:
  struct KernelInstance {
    size_t kernel_index = 0;    // 0..83: which 3-subset carries weight 2
    size_t dilation = 1;
    std::vector<size_t> channels;  // channel subset summed for multivariate
  };

  /// Convolution output of one kernel instance at every time step.
  std::vector<double> Convolve(const TimeSeries& series,
                               const KernelInstance& kernel) const;

  /// PPV features without the fitted-state check (shared by Fit/Transform).
  Result<std::vector<double>> TransformInternal(const TimeSeries& series) const;

  MiniRocketOptions options_;
  std::vector<int> class_labels_;
  std::vector<KernelInstance> kernels_;
  std::vector<std::pair<size_t, double>> biases_;  // (kernel instance, bias)
  bool use_logistic_ = false;
  RidgeClassifier ridge_;
  LogisticRegression logistic_;
};

/// The 84 weight-2 position triples of MiniROCKET's fixed kernel set.
const std::array<std::array<size_t, 3>, 84>& MiniRocketKernelTriples();

/// Applies kernel `kernel_index` at `dilation` to an already channel-pooled
/// series ("same" padding, out-of-range taps skipped), accumulating into
/// `out` (callers pass zeros). This is the transform's innermost kernel —
/// nine weighted shifted-add passes over the pooled series, dispatched
/// through the simd layer — exposed for the micro-benchmarks.
void MiniRocketApplyKernel(std::span<const double> pooled, size_t kernel_index,
                           size_t dilation, std::span<double> out);

}  // namespace etsc

#endif  // ETSC_TSC_MINIROCKET_H_
