#ifndef ETSC_TSC_MUSE_H_
#define ETSC_TSC_MUSE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/classifier.h"
#include "ml/linear.h"
#include "ml/sfa.h"
#include "tsc/weasel.h"

namespace etsc {

/// WEASEL+MUSE (Schäfer & Leser 2017): the multivariate WEASEL. Each variable
/// (and optionally its first-order derivative) contributes
/// channel-identified SFA words to one joint bag of patterns, followed by the
/// same chi²-pruned logistic regression. Per the paper, the default input
/// normalisation is removed (streaming setting).
struct MuseOptions {
  WeaselOptions weasel;          // word/window/binning configuration
  bool use_derivatives = true;   // add d/dt channels
};

class MuseClassifier : public FullClassifier {
 public:
  explicit MuseClassifier(MuseOptions options = {}) : options_(options) {}

  Status Fit(const Dataset& train) override;
  Result<int> Predict(const TimeSeries& series) const override;
  Result<std::vector<double>> PredictProba(const TimeSeries& series) const override;
  const std::vector<int>& class_labels() const override {
    return logistic_.class_labels();
  }
  std::string name() const override { return "WEASEL+MUSE"; }
  bool SupportsMultivariate() const override { return true; }
  std::unique_ptr<FullClassifier> CloneUntrained() const override {
    return std::make_unique<MuseClassifier>(options_);
  }

  size_t num_features() const { return selected_.size(); }

  std::string config_fingerprint() const override;
  Status SaveState(Serializer& out) const override;
  Status LoadState(Deserializer& in) override;

 private:
  /// All channels of a series: the raw variables followed by their
  /// derivatives when enabled.
  std::vector<std::vector<double>> Channels(const TimeSeries& series) const;

  SparseVector Transform(const std::vector<std::vector<double>>& channels,
                         std::unordered_map<uint64_t, size_t>* grow) const;
  Result<SparseVector> TransformSelected(const TimeSeries& series) const;

  MuseOptions options_;
  size_t num_variables_ = 0;
  std::vector<size_t> window_sizes_;
  // transforms_[channel][window_index]
  std::vector<std::vector<Sfa>> transforms_;
  std::unordered_map<uint64_t, size_t> vocabulary_;
  std::vector<size_t> selected_;
  LogisticRegression logistic_;
};

/// Packs (channel, window, word, prev+1) into a vocabulary key.
uint64_t PackMuseKey(size_t channel, size_t window_index, uint64_t word,
                     uint64_t prev_plus_1);

/// First-order difference (x[t+1] - x[t], length preserved by repeating the
/// last difference).
std::vector<double> Derivative(const std::vector<double>& values);

}  // namespace etsc

#endif  // ETSC_TSC_MUSE_H_
