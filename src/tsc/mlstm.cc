#include "tsc/mlstm.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "core/rng.h"

namespace etsc {

struct MlstmClassifier::Network {
  Network(size_t in_channels, size_t series_length, size_t num_classes,
          const MlstmOptions& opt, Rng* rng)
      : conv1(in_channels, opt.conv1_channels, opt.kernel1, rng),
        bn1(opt.conv1_channels),
        se1(opt.conv1_channels, 4, rng),
        conv2(opt.conv1_channels, opt.conv2_channels, opt.kernel2, rng),
        bn2(opt.conv2_channels),
        se2(opt.conv2_channels, 4, rng),
        conv3(opt.conv2_channels, opt.conv3_channels, opt.kernel3, rng),
        bn3(opt.conv3_channels),
        lstm(series_length, opt.lstm_units, rng),
        dropout(opt.dropout),
        head(opt.conv3_channels + opt.lstm_units, num_classes, rng),
        adam(opt.learning_rate) {
    adam.Register(conv1.Params());
    adam.Register(bn1.Params());
    adam.Register(se1.Params());
    adam.Register(conv2.Params());
    adam.Register(bn2.Params());
    adam.Register(se2.Params());
    adam.Register(conv3.Params());
    adam.Register(bn3.Params());
    adam.Register(lstm.Params());
    adam.Register(head.Params());
  }

  nn::Conv1D conv1;
  nn::BatchNorm1D bn1;
  nn::ReLU relu1;
  nn::SqueezeExcite se1;
  nn::Conv1D conv2;
  nn::BatchNorm1D bn2;
  nn::ReLU relu2;
  nn::SqueezeExcite se2;
  nn::Conv1D conv3;
  nn::BatchNorm1D bn3;
  nn::ReLU relu3;
  nn::GlobalAvgPool gap;
  nn::Lstm lstm;
  nn::Dropout dropout;
  nn::Dense head;
  nn::Adam adam;

  size_t fcn_dim = 0;  // split point of the concatenated representation
};

nn::FeatureMap MlstmClassifier::ToFeatureMap(const TimeSeries& series) const {
  nn::FeatureMap fm(num_variables_);
  for (size_t v = 0; v < num_variables_; ++v) {
    if (v < series.num_variables()) {
      std::span<const double> c = series.channel(v);
      fm[v].assign(c.begin(), c.end());
    } else {
      fm[v].assign(series.length(), 0.0);
    }
  }
  return fm;
}

std::vector<std::vector<double>> MlstmClassifier::ToLstmSequence(
    const TimeSeries& series) const {
  // Dimension shuffle: one LSTM step per variable; each step is the variable's
  // full time vector, padded/truncated to the fitted length.
  std::vector<std::vector<double>> seq(num_variables_,
                                       std::vector<double>(fitted_length_, 0.0));
  for (size_t v = 0; v < num_variables_ && v < series.num_variables(); ++v) {
    const auto& channel = series.channel(v);
    const size_t n = std::min(fitted_length_, channel.size());
    std::copy(channel.begin(), channel.begin() + n, seq[v].begin());
  }
  return seq;
}

std::vector<std::vector<double>> MlstmClassifier::Forward(
    const std::vector<TimeSeries*>& batch, bool training, Rng* rng) {
  nn::Batch maps(batch.size());
  std::vector<std::vector<std::vector<double>>> sequences(batch.size());
  for (size_t b = 0; b < batch.size(); ++b) {
    maps[b] = ToFeatureMap(*batch[b]);
    sequences[b] = ToLstmSequence(*batch[b]);
  }
  Network& net = *net_;
  nn::Batch x = net.conv1.Forward(maps);
  x = net.bn1.Forward(x, training);
  x = net.relu1.Forward(x);
  x = net.se1.Forward(x);
  x = net.conv2.Forward(x);
  x = net.bn2.Forward(x, training);
  x = net.relu2.Forward(x);
  x = net.se2.Forward(x);
  x = net.conv3.Forward(x);
  x = net.bn3.Forward(x, training);
  x = net.relu3.Forward(x);
  std::vector<std::vector<double>> fcn_out = net.gap.Forward(x);
  net.fcn_dim = fcn_out.empty() ? 0 : fcn_out[0].size();

  std::vector<std::vector<double>> lstm_out = net.lstm.Forward(sequences);

  std::vector<std::vector<double>> concat(batch.size());
  for (size_t b = 0; b < batch.size(); ++b) {
    concat[b] = fcn_out[b];
    concat[b].insert(concat[b].end(), lstm_out[b].begin(), lstm_out[b].end());
  }
  concat = net.dropout.Forward(concat, training, rng);
  return net.head.Forward(concat);
}

void MlstmClassifier::Backward(
    const std::vector<std::vector<double>>& grad_logits) {
  Network& net = *net_;
  std::vector<std::vector<double>> grad = net.head.Backward(grad_logits);
  grad = net.dropout.Backward(grad);

  const size_t fcn_dim = net.fcn_dim;
  std::vector<std::vector<double>> grad_fcn(grad.size());
  std::vector<std::vector<double>> grad_lstm(grad.size());
  for (size_t b = 0; b < grad.size(); ++b) {
    grad_fcn[b].assign(grad[b].begin(), grad[b].begin() + fcn_dim);
    grad_lstm[b].assign(grad[b].begin() + fcn_dim, grad[b].end());
  }

  nn::Batch gx = net.gap.Backward(grad_fcn);
  gx = net.relu3.Backward(gx);
  gx = net.bn3.Backward(gx);
  gx = net.conv3.Backward(gx);
  gx = net.se2.Backward(gx);
  gx = net.relu2.Backward(gx);
  gx = net.bn2.Backward(gx);
  gx = net.conv2.Backward(gx);
  gx = net.se1.Backward(gx);
  gx = net.relu1.Backward(gx);
  gx = net.bn1.Backward(gx);
  (void)net.conv1.Backward(gx);

  (void)net.lstm.Backward(grad_lstm);
}

Status MlstmClassifier::Fit(const Dataset& train) {
  if (train.empty()) return Status::InvalidArgument("MLSTM: empty training set");
  num_variables_ = train.NumVariables();
  fitted_length_ = train.MinLength();
  if (fitted_length_ < 2) {
    return Status::InvalidArgument("MLSTM: series too short");
  }
  class_labels_ = train.ClassLabels();
  std::map<int, size_t> class_index;
  for (size_t k = 0; k < class_labels_.size(); ++k) {
    class_index[class_labels_[k]] = k;
  }

  Rng rng(options_.seed);
  net_ = std::make_shared<Network>(num_variables_, fitted_length_,
                                   class_labels_.size(), options_, &rng);
  if (class_labels_.size() < 2) return Status::OK();

  std::vector<size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);

  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t start = 0; start < order.size(); start += options_.batch_size) {
      const size_t end = std::min(order.size(), start + options_.batch_size);
      std::vector<TimeSeries*> batch;
      std::vector<size_t> targets;
      std::vector<TimeSeries> truncated;
      truncated.reserve(end - start);
      batch.reserve(end - start);
      for (size_t i = start; i < end; ++i) {
        truncated.push_back(train.instance(order[i]).Prefix(fitted_length_));
        targets.push_back(class_index[train.label(order[i])]);
      }
      for (auto& ts : truncated) batch.push_back(&ts);

      net_->adam.ZeroGrad();
      const auto logits = Forward(batch, /*training=*/true, &rng);
      std::vector<std::vector<double>> grad;
      nn::SoftmaxCrossEntropy::LossAndGrad(logits, targets, &grad);
      Backward(grad);
      net_->adam.Step();
    }
  }
  return Status::OK();
}

Result<std::vector<double>> MlstmClassifier::PredictProba(
    const TimeSeries& series) const {
  if (net_ == nullptr) return Status::FailedPrecondition("MLSTM: not fitted");
  if (class_labels_.size() < 2) return std::vector<double>{1.0};
  // Forward mutates layer caches; inference reuses them harmlessly because
  // prediction is single-threaded per classifier instance.
  auto* self = const_cast<MlstmClassifier*>(this);
  TimeSeries padded = series.Prefix(fitted_length_);
  std::vector<TimeSeries*> batch{&padded};
  Rng rng(options_.seed);
  const auto logits = self->Forward(batch, /*training=*/false, &rng);
  return nn::SoftmaxCrossEntropy::Probabilities(logits)[0];
}

Result<int> MlstmClassifier::Predict(const TimeSeries& series) const {
  ETSC_ASSIGN_OR_RETURN(std::vector<double> proba, PredictProba(series));
  const size_t best = static_cast<size_t>(
      std::max_element(proba.begin(), proba.end()) - proba.begin());
  return class_labels_[best];
}

namespace {

/// Weights only: gradients and optimiser state are training artefacts, and
/// inference (training=false) never reads them.
void SaveParams(Serializer& out, std::vector<nn::Param*> params) {
  out.SizeT(params.size());
  for (const nn::Param* p : params) out.F64Vec(p->value);
}

Status LoadParams(Deserializer& in, std::vector<nn::Param*> params) {
  ETSC_ASSIGN_OR_RETURN(size_t count, in.SizeT());
  if (count != params.size()) {
    return Status::DataLoss("MLSTM: parameter block count mismatch");
  }
  for (nn::Param* p : params) {
    ETSC_ASSIGN_OR_RETURN(std::vector<double> value, in.F64Vec());
    if (value.size() != p->value.size()) {
      return Status::DataLoss("MLSTM: parameter size mismatch (was the model "
                              "saved under a different architecture?)");
    }
    p->value = std::move(value);
  }
  return Status::OK();
}

}  // namespace

Status MlstmClassifier::SaveState(Serializer& out) const {
  if (net_ == nullptr) {
    return Status::FailedPrecondition("MLSTM: not fitted");
  }
  out.Begin("mlstm");
  out.IntVec(class_labels_);
  out.SizeT(num_variables_);
  out.SizeT(fitted_length_);
  Network& net = *net_;  // Params() is non-const; values are not mutated
  SaveParams(out, net.conv1.Params());
  net.bn1.SaveRunningStats(out);
  SaveParams(out, net.bn1.Params());
  SaveParams(out, net.se1.Params());
  SaveParams(out, net.conv2.Params());
  net.bn2.SaveRunningStats(out);
  SaveParams(out, net.bn2.Params());
  SaveParams(out, net.se2.Params());
  SaveParams(out, net.conv3.Params());
  net.bn3.SaveRunningStats(out);
  SaveParams(out, net.bn3.Params());
  SaveParams(out, net.lstm.Params());
  SaveParams(out, net.head.Params());
  out.End();
  return Status::OK();
}

Status MlstmClassifier::LoadState(Deserializer& in) {
  ETSC_RETURN_NOT_OK(in.Enter("mlstm"));
  ETSC_ASSIGN_OR_RETURN(class_labels_, in.IntVec());
  ETSC_ASSIGN_OR_RETURN(num_variables_, in.SizeT());
  ETSC_ASSIGN_OR_RETURN(fitted_length_, in.SizeT());
  if (class_labels_.empty() || num_variables_ == 0 || fitted_length_ < 2) {
    return Status::DataLoss("MLSTM: inconsistent fitted state");
  }
  // Rebuild the architecture from the instance's options, then overwrite
  // every weight; the Rng only seeds initial values that are replaced.
  Rng rng(options_.seed);
  net_ = std::make_shared<Network>(num_variables_, fitted_length_,
                                   class_labels_.size(), options_, &rng);
  Network& net = *net_;
  ETSC_RETURN_NOT_OK(LoadParams(in, net.conv1.Params()));
  ETSC_RETURN_NOT_OK(net.bn1.LoadRunningStats(in));
  ETSC_RETURN_NOT_OK(LoadParams(in, net.bn1.Params()));
  ETSC_RETURN_NOT_OK(LoadParams(in, net.se1.Params()));
  ETSC_RETURN_NOT_OK(LoadParams(in, net.conv2.Params()));
  ETSC_RETURN_NOT_OK(net.bn2.LoadRunningStats(in));
  ETSC_RETURN_NOT_OK(LoadParams(in, net.bn2.Params()));
  ETSC_RETURN_NOT_OK(LoadParams(in, net.se2.Params()));
  ETSC_RETURN_NOT_OK(LoadParams(in, net.conv3.Params()));
  ETSC_RETURN_NOT_OK(net.bn3.LoadRunningStats(in));
  ETSC_RETURN_NOT_OK(LoadParams(in, net.bn3.Params()));
  ETSC_RETURN_NOT_OK(LoadParams(in, net.lstm.Params()));
  ETSC_RETURN_NOT_OK(LoadParams(in, net.head.Params()));
  return in.Leave();
}

std::string MlstmClassifier::config_fingerprint() const {
  const auto& o = options_;
  return "MLSTM(c=" + std::to_string(o.conv1_channels) + "/" +
         std::to_string(o.conv2_channels) + "/" +
         std::to_string(o.conv3_channels) + ",k=" + std::to_string(o.kernel1) +
         "/" + std::to_string(o.kernel2) + "/" + std::to_string(o.kernel3) +
         ",lstm=" + std::to_string(o.lstm_units) +
         ",drop=" + FingerprintDouble(o.dropout) +
         ",ep=" + std::to_string(o.epochs) +
         ",bs=" + std::to_string(o.batch_size) +
         ",lr=" + FingerprintDouble(o.learning_rate) +
         ",seed=" + std::to_string(o.seed) + ")";
}

}  // namespace etsc
