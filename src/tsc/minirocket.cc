#include "tsc/minirocket.h"

#include <algorithm>
#include <cmath>

#include "core/parallel.h"
#include "core/rng.h"
#include "core/simd.h"

namespace etsc {

const std::array<std::array<size_t, 3>, 84>& MiniRocketKernelTriples() {
  static const std::array<std::array<size_t, 3>, 84>* kTriples = [] {
    auto* triples = new std::array<std::array<size_t, 3>, 84>();
    size_t idx = 0;
    for (size_t a = 0; a < 9; ++a) {
      for (size_t b = a + 1; b < 9; ++b) {
        for (size_t c = b + 1; c < 9; ++c) {
          (*triples)[idx++] = {a, b, c};
        }
      }
    }
    return triples;
  }();
  return *kTriples;
}

void MiniRocketApplyKernel(std::span<const double> pooled, size_t kernel_index,
                           size_t dilation, std::span<double> out) {
  const size_t length = pooled.size();
  const auto& triple = MiniRocketKernelTriples()[kernel_index];
  // Weights: -1 everywhere, 3 positions with +2 => value at position p is
  // -1 + 3*[p in triple]. Centered ("same" padding), receptive field 9 taps
  // spaced by `dilation`. One Axpy pass per tap position: pass k adds
  // w_k * pooled[t - half + k*d] over the t range where the tap is in
  // bounds, so each out[t] accumulates its taps in ascending-k order —
  // the same per-element chain as a per-t 9-tap loop.
  const ptrdiff_t d = static_cast<ptrdiff_t>(dilation);
  const ptrdiff_t half = 4 * d;
  const ptrdiff_t n = static_cast<ptrdiff_t>(length);
  for (ptrdiff_t k = 0; k < 9; ++k) {
    const size_t uk = static_cast<size_t>(k);
    const double w =
        (uk == triple[0] || uk == triple[1] || uk == triple[2]) ? 2.0 : -1.0;
    const ptrdiff_t shift = half - k * d;  // src = t - shift
    const ptrdiff_t t_lo = std::max<ptrdiff_t>(0, shift);
    const ptrdiff_t t_hi = std::min<ptrdiff_t>(n, n + shift);  // exclusive
    if (t_lo >= t_hi) continue;
    simd::Axpy(w, pooled.data() + (t_lo - shift), out.data() + t_lo,
               static_cast<size_t>(t_hi - t_lo));
  }
}

std::vector<double> MiniRocketClassifier::Convolve(
    const TimeSeries& series, const KernelInstance& kernel) const {
  const size_t length = series.length();
  // Pool the channel subset once (ascending-channel order, as the legacy
  // per-tap gather did), then run the 9-tap kernel over the pooled series.
  std::vector<double> pooled;
  const std::vector<size_t>& chans = kernel.channels;
  if (chans.size() == 1 && chans[0] < series.num_variables()) {
    std::span<const double> c = series.channel(chans[0]);
    pooled.assign(c.begin(), c.end());
  } else {
    pooled.assign(length, 0.0);
    for (size_t ch : chans) {
      if (ch < series.num_variables()) {
        const double* src = series.channel_data(ch);
        for (size_t t = 0; t < length; ++t) pooled[t] += src[t];
      }
    }
  }
  std::vector<double> out(length, 0.0);
  MiniRocketApplyKernel(pooled, kernel.kernel_index, kernel.dilation, out);
  return out;
}

Status MiniRocketClassifier::Fit(const Dataset& train) {
  if (train.empty()) {
    return Status::InvalidArgument("MiniROCKET: empty training set");
  }
  const size_t length = train.MinLength();
  if (length < 2) return Status::InvalidArgument("MiniROCKET: series too short");
  const size_t num_vars = train.NumVariables();
  Rng rng(options_.seed);

  // Dilations: exponentially spaced so the receptive field (8*d+1) stays
  // within the series length.
  std::vector<size_t> dilations;
  const size_t max_dilation = std::max<size_t>(1, (length - 1) / 8);
  for (size_t i = 0; i < options_.num_dilations; ++i) {
    const double frac = options_.num_dilations == 1
                            ? 0.0
                            : static_cast<double>(i) /
                                  static_cast<double>(options_.num_dilations - 1);
    const size_t d = std::max<size_t>(
        1, static_cast<size_t>(std::round(std::pow(
               static_cast<double>(max_dilation), frac))));
    if (dilations.empty() || dilations.back() != d) dilations.push_back(d);
  }

  // Instantiate kernels: every (triple, dilation); multivariate instances mix
  // a random channel subset (as in the reference implementation).
  kernels_.clear();
  for (size_t ki = 0; ki < MiniRocketKernelTriples().size(); ++ki) {
    for (size_t d : dilations) {
      KernelInstance inst;
      inst.kernel_index = ki;
      inst.dilation = d;
      if (num_vars == 1) {
        inst.channels = {0};
      } else {
        // Random non-empty subset: each channel kept with p=0.5.
        for (size_t c = 0; c < num_vars; ++c) {
          if (rng.Bernoulli(0.5)) inst.channels.push_back(c);
        }
        if (inst.channels.empty()) inst.channels.push_back(rng.Index(num_vars));
      }
      kernels_.push_back(std::move(inst));
    }
  }

  // Biases: quantiles of convolution outputs of random training instances.
  // The sample index of every kernel is drawn serially first — the RNG stream
  // is consumed in exactly the legacy order — and the convolutions then fan
  // out on the thread pool, each kernel writing only its own bias slots.
  const size_t bpk = options_.biases_per_kernel;
  std::vector<size_t> bias_samples(kernels_.size());
  for (size_t k = 0; k < kernels_.size(); ++k) {
    bias_samples[k] = rng.Index(train.size());
  }
  biases_.assign(kernels_.size() * bpk, {0, 0.0});
  ParallelFor(kernels_.size(), [&](size_t k) {
    std::vector<double> conv = Convolve(train.instance(bias_samples[k]),
                                        kernels_[k]);
    std::sort(conv.begin(), conv.end());
    for (size_t b = 0; b < bpk; ++b) {
      const double q = (static_cast<double>(b) + 1.0) /
                       (static_cast<double>(bpk) + 1.0);
      const size_t idx = std::min(conv.size() - 1,
                                  static_cast<size_t>(q * static_cast<double>(conv.size())));
      biases_[k * bpk + b] = {k, conv[idx]};
    }
  });

  // Transform the training set: one independent task per instance (each
  // itself fans kernel application out — the pool handles the nesting).
  std::vector<std::vector<double>> features(train.size());
  ETSC_RETURN_NOT_OK(ParallelForStatus(train.size(), [&](size_t i) -> Status {
    ETSC_ASSIGN_OR_RETURN(features[i], TransformInternal(train.instance(i)));
    return Status::OK();
  }));

  class_labels_ = train.ClassLabels();
  use_logistic_ = train.size() > options_.logistic_above_samples;
  if (use_logistic_) {
    logistic_ = LogisticRegression(options_.logistic);
    return logistic_.Fit(features, train.labels(), &rng);
  }
  ridge_ = RidgeClassifier(RidgeOptions{options_.ridge_alpha});
  return ridge_.Fit(features, train.labels());
}

Result<std::vector<double>> MiniRocketClassifier::TransformInternal(
    const TimeSeries& series) const {
  if (series.length() == 0) {
    return Status::InvalidArgument("MiniROCKET: empty series");
  }
  // Kernel application is the transform's hot loop: one task per kernel,
  // each convolving once and filling the kernel's contiguous feature slots
  // (biases_ is laid out kernel-major by Fit).
  std::vector<double> features(biases_.size(), 0.0);
  const size_t bpk = biases_.size() / kernels_.size();
  ParallelFor(kernels_.size(), [&](size_t k) {
    const std::vector<double> conv = Convolve(series, kernels_[k]);
    for (size_t b = 0; b < bpk; ++b) {
      const size_t f = k * bpk + b;
      ETSC_DCHECK(biases_[f].first == k);
      const size_t positive =
          simd::CountGreater(conv.data(), conv.size(), biases_[f].second);
      features[f] =
          static_cast<double>(positive) / static_cast<double>(conv.size());
    }
  });
  return features;
}

Result<std::vector<double>> MiniRocketClassifier::Transform(
    const TimeSeries& series) const {
  if (kernels_.empty()) {
    return Status::FailedPrecondition("MiniROCKET: not fitted");
  }
  return TransformInternal(series);
}

Result<int> MiniRocketClassifier::Predict(const TimeSeries& series) const {
  ETSC_ASSIGN_OR_RETURN(std::vector<double> features, Transform(series));
  return use_logistic_ ? logistic_.Predict(features) : ridge_.Predict(features);
}

Result<std::vector<double>> MiniRocketClassifier::PredictProba(
    const TimeSeries& series) const {
  ETSC_ASSIGN_OR_RETURN(std::vector<double> features, Transform(series));
  return use_logistic_ ? logistic_.PredictProba(features)
                       : ridge_.PredictProba(features);
}

Status MiniRocketClassifier::SaveState(Serializer& out) const {
  out.Begin("minirocket");
  out.IntVec(class_labels_);
  out.SizeT(kernels_.size());
  for (const KernelInstance& k : kernels_) {
    out.SizeT(k.kernel_index);
    out.SizeT(k.dilation);
    out.SizeVec(k.channels);
  }
  out.SizeT(biases_.size());
  for (const auto& [kernel, bias] : biases_) {
    out.SizeT(kernel);
    out.F64(bias);
  }
  out.Bool(use_logistic_);
  if (use_logistic_) {
    logistic_.SaveState(out);
  } else {
    ridge_.SaveState(out);
  }
  out.End();
  return Status::OK();
}

Status MiniRocketClassifier::LoadState(Deserializer& in) {
  ETSC_RETURN_NOT_OK(in.Enter("minirocket"));
  ETSC_ASSIGN_OR_RETURN(class_labels_, in.IntVec());
  ETSC_ASSIGN_OR_RETURN(size_t num_kernels, in.SizeT());
  kernels_.assign(num_kernels, {});
  for (KernelInstance& k : kernels_) {
    ETSC_ASSIGN_OR_RETURN(k.kernel_index, in.SizeT());
    if (k.kernel_index >= MiniRocketKernelTriples().size()) {
      return Status::DataLoss("MiniROCKET: kernel index out of range");
    }
    ETSC_ASSIGN_OR_RETURN(k.dilation, in.SizeT());
    if (k.dilation == 0) {
      return Status::DataLoss("MiniROCKET: zero dilation");
    }
    ETSC_ASSIGN_OR_RETURN(k.channels, in.SizeVec());
  }
  ETSC_ASSIGN_OR_RETURN(size_t num_biases, in.SizeT());
  if (num_kernels == 0 || num_biases % num_kernels != 0) {
    return Status::DataLoss("MiniROCKET: bias layout mismatch");
  }
  biases_.assign(num_biases, {});
  for (auto& [kernel, bias] : biases_) {
    ETSC_ASSIGN_OR_RETURN(kernel, in.SizeT());
    if (kernel >= num_kernels) {
      return Status::DataLoss("MiniROCKET: bias kernel out of range");
    }
    ETSC_ASSIGN_OR_RETURN(bias, in.F64());
  }
  ETSC_ASSIGN_OR_RETURN(use_logistic_, in.Bool());
  if (use_logistic_) {
    ETSC_RETURN_NOT_OK(logistic_.LoadState(in));
  } else {
    ETSC_RETURN_NOT_OK(ridge_.LoadState(in));
  }
  return in.Leave();
}

std::string MiniRocketClassifier::config_fingerprint() const {
  const auto& o = options_;
  return "MiniROCKET(dil=" + std::to_string(o.num_dilations) +
         ",bpk=" + std::to_string(o.biases_per_kernel) +
         ",log>" + std::to_string(o.logistic_above_samples) +
         ",alpha=" + FingerprintDouble(o.ridge_alpha) +
         ",l2=" + FingerprintDouble(o.logistic.l2) +
         ",lr=" + FingerprintDouble(o.logistic.learning_rate) +
         ",ep=" + std::to_string(o.logistic.epochs) +
         ",seed=" + std::to_string(o.seed) + ")";
}

}  // namespace etsc
