#ifndef ETSC_TSC_WEASEL_H_
#define ETSC_TSC_WEASEL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/classifier.h"
#include "ml/linear.h"
#include "ml/sfa.h"

namespace etsc {

/// Configuration of the WEASEL pipeline (Schäfer & Leser 2017; paper Sec. 3.4).
struct WeaselOptions {
  size_t word_length = 4;        // SFA word length (real coefficient count)
  size_t alphabet_size = 4;
  size_t min_window = 4;
  size_t max_window_count = 20;  // number of distinct window lengths
  bool use_bigrams = true;
  bool norm_mean = false;        // drop the DC Fourier coefficient
  /// Z-normalise each input series before the transform. The paper evaluates
  /// WEASEL *without* this step (unrealistic in streaming settings), so the
  /// default is off.
  bool normalize_input = false;
  double chi2_threshold = 2.0;
  LogisticRegressionOptions logistic;
  uint64_t seed = 7;
};

/// WEASEL: sliding windows of several lengths -> supervised SFA words ->
/// bag of uni+bigrams -> chi² pruning -> logistic regression. Univariate.
class WeaselClassifier : public FullClassifier {
 public:
  explicit WeaselClassifier(WeaselOptions options = {}) : options_(options) {}

  Status Fit(const Dataset& train) override;
  Result<int> Predict(const TimeSeries& series) const override;
  Result<std::vector<double>> PredictProba(const TimeSeries& series) const override;
  const std::vector<int>& class_labels() const override {
    return logistic_.class_labels();
  }
  std::string name() const override { return "WEASEL"; }
  bool SupportsMultivariate() const override { return false; }
  std::unique_ptr<FullClassifier> CloneUntrained() const override {
    return std::make_unique<WeaselClassifier>(options_);
  }

  /// Number of features surviving the chi² test (for tests/inspection).
  size_t num_features() const { return selected_.size(); }

  std::string config_fingerprint() const override;
  Status SaveState(Serializer& out) const override;
  Status LoadState(Deserializer& in) override;

 private:
  /// Bag of words of one series under the fitted transforms (pre-selection
  /// feature ids). When `grow` is non-null, unseen patterns are added to it
  /// (training); otherwise they are dropped (prediction).
  SparseVector Transform(const std::vector<double>& values,
                         std::unordered_map<uint64_t, size_t>* grow) const;
  Result<SparseVector> TransformSelected(const TimeSeries& series) const;

  WeaselOptions options_;
  std::vector<size_t> window_sizes_;
  std::vector<Sfa> transforms_;  // one per window size
  // (window index, word, previous word + 1) -> dense feature id. prev = 0
  // encodes a unigram.
  std::unordered_map<uint64_t, size_t> vocabulary_;
  std::vector<size_t> selected_;  // chi²-surviving feature ids, sorted
  LogisticRegression logistic_;
};

/// Stable fingerprint of everything in WeaselOptions that affects training,
/// for config_fingerprint() of WEASEL-based pipelines.
std::string WeaselOptionsFingerprint(const WeaselOptions& options);

/// Packs a bag-of-patterns key. Words must fit in 24 bits.
uint64_t PackWeaselKey(size_t window_index, uint64_t word, uint64_t prev_plus_1);

namespace weasel_detail {
/// Persists a bag-of-patterns vocabulary in sorted-key order so saved bytes
/// are deterministic; shared by WEASEL and MUSE.
void SaveBagOfPatterns(Serializer& out,
                       const std::unordered_map<uint64_t, size_t>& vocabulary);
Status LoadBagOfPatterns(Deserializer& in,
                         std::unordered_map<uint64_t, size_t>* vocabulary);
}  // namespace weasel_detail

/// Chooses `count` window sizes in [min_window, max_len], evenly spread.
std::vector<size_t> ChooseWindowSizes(size_t min_window, size_t max_len,
                                      size_t count);

}  // namespace etsc

#endif  // ETSC_TSC_WEASEL_H_
