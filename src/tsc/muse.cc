#include "tsc/muse.h"

#include <algorithm>

#include "core/rng.h"
#include "ml/chi2.h"
#include "ml/fourier.h"

namespace etsc {

uint64_t PackMuseKey(size_t channel, size_t window_index, uint64_t word,
                     uint64_t prev_plus_1) {
  ETSC_DCHECK(channel < (1ull << 7));
  ETSC_DCHECK(window_index < (1ull << 7));
  ETSC_DCHECK(word < (1ull << 24));
  ETSC_DCHECK(prev_plus_1 < (1ull << 25));
  return (static_cast<uint64_t>(channel) << 56) |
         (static_cast<uint64_t>(window_index) << 49) | (word << 25) |
         prev_plus_1;
}

std::vector<double> Derivative(const std::vector<double>& values) {
  std::vector<double> d(values.size(), 0.0);
  if (values.size() < 2) return d;
  for (size_t t = 0; t + 1 < values.size(); ++t) d[t] = values[t + 1] - values[t];
  d[values.size() - 1] = d[values.size() - 2];
  return d;
}

std::vector<std::vector<double>> MuseClassifier::Channels(
    const TimeSeries& series) const {
  std::vector<std::vector<double>> channels;
  channels.reserve(series.num_variables() * (options_.use_derivatives ? 2 : 1));
  for (size_t v = 0; v < series.num_variables(); ++v) {
    std::span<const double> c = series.channel(v);
    channels.emplace_back(c.begin(), c.end());
  }
  if (options_.use_derivatives) {
    for (size_t v = 0; v < series.num_variables(); ++v) {
      channels.push_back(Derivative(channels[v]));
    }
  }
  return channels;
}

Status MuseClassifier::Fit(const Dataset& train) {
  if (train.empty()) return Status::InvalidArgument("MUSE: empty training set");
  num_variables_ = train.NumVariables();
  const size_t max_len = train.MinLength();
  if (max_len < 2) return Status::InvalidArgument("MUSE: series too short");

  const auto& w = options_.weasel;
  window_sizes_ = ChooseWindowSizes(w.min_window, max_len, w.max_window_count);
  if (window_sizes_.empty()) {
    return Status::InvalidArgument("MUSE: no usable window sizes");
  }
  const size_t num_channels =
      num_variables_ * (options_.use_derivatives ? 2 : 1);

  // Channels of every training instance.
  std::vector<std::vector<std::vector<double>>> channels(train.size());
  for (size_t i = 0; i < train.size(); ++i) {
    channels[i] = Channels(train.instance(i));
  }

  SfaOptions sfa_options;
  sfa_options.word_length = w.word_length;
  sfa_options.alphabet_size = w.alphabet_size;
  sfa_options.norm_mean = w.norm_mean;
  sfa_options.binning = SfaBinning::kInformationGain;

  transforms_.assign(num_channels, {});
  for (size_t c = 0; c < num_channels; ++c) {
    transforms_[c].reserve(window_sizes_.size());
    for (size_t win : window_sizes_) {
      std::vector<std::vector<double>> windows;
      std::vector<int> labels;
      for (size_t i = 0; i < train.size(); ++i) {
        const auto& values = channels[i][c];
        if (values.size() < win) continue;
        for (size_t start = 0; start + win <= values.size(); ++start) {
          windows.emplace_back(values.begin() + start,
                               values.begin() + start + win);
          labels.push_back(train.label(i));
        }
      }
      Sfa sfa(sfa_options);
      ETSC_RETURN_NOT_OK(sfa.Fit(windows, labels));
      transforms_[c].push_back(std::move(sfa));
    }
  }

  vocabulary_.clear();
  std::vector<SparseVector> bags(train.size());
  for (size_t i = 0; i < train.size(); ++i) {
    bags[i] = Transform(channels[i], &vocabulary_);
  }

  selected_ =
      Chi2Select(bags, vocabulary_.size(), train.labels(), w.chi2_threshold);
  std::vector<SparseVector> projected = ProjectFeatures(bags, selected_);

  Rng rng(w.seed);
  logistic_ = LogisticRegression(w.logistic);
  return logistic_.FitSparse(projected, selected_.size(), train.labels(), &rng);
}

SparseVector MuseClassifier::Transform(
    const std::vector<std::vector<double>>& channels,
    std::unordered_map<uint64_t, size_t>* grow) const {
  const auto& w = options_.weasel;
  SparseVector bag;
  for (size_t c = 0; c < channels.size() && c < transforms_.size(); ++c) {
    for (size_t wi = 0; wi < window_sizes_.size(); ++wi) {
      const size_t win = window_sizes_[wi];
      const auto& values = channels[c];
      if (values.size() < win) continue;
      const size_t num_coeffs = (w.word_length + 1) / 2;
      const auto coeff_windows = SlidingDft(values, win, num_coeffs, w.norm_mean);
      std::vector<uint64_t> words(coeff_windows.size());
      for (size_t s = 0; s < coeff_windows.size(); ++s) {
        std::vector<double> approx = coeff_windows[s];
        approx.resize(w.word_length, 0.0);
        words[s] = transforms_[c][wi].WordFromApproximation(approx);
      }
      for (size_t s = 0; s < words.size(); ++s) {
        const uint64_t uni = PackMuseKey(c, wi, words[s], 0);
        auto it = vocabulary_.find(uni);
        if (it == vocabulary_.end()) {
          if (grow == nullptr) continue;
          it = grow->emplace(uni, grow->size()).first;
        }
        bag.Add(it->second, 1.0);
        if (w.use_bigrams && s >= win) {
          const uint64_t bi = PackMuseKey(c, wi, words[s], words[s - win] + 1);
          auto bit = vocabulary_.find(bi);
          if (bit == vocabulary_.end()) {
            if (grow == nullptr) continue;
            bit = grow->emplace(bi, grow->size()).first;
          }
          bag.Add(bit->second, 1.0);
        }
      }
    }
  }
  bag.SortAndMerge();
  return bag;
}

Result<SparseVector> MuseClassifier::TransformSelected(
    const TimeSeries& series) const {
  if (!logistic_.fitted()) return Status::FailedPrecondition("MUSE: not fitted");
  if (series.num_variables() != num_variables_) {
    return Status::InvalidArgument("MUSE: variable count mismatch");
  }
  return ProjectRow(Transform(Channels(series), nullptr), selected_);
}

Result<int> MuseClassifier::Predict(const TimeSeries& series) const {
  ETSC_ASSIGN_OR_RETURN(SparseVector row, TransformSelected(series));
  return logistic_.PredictSparse(row);
}

Result<std::vector<double>> MuseClassifier::PredictProba(
    const TimeSeries& series) const {
  ETSC_ASSIGN_OR_RETURN(SparseVector row, TransformSelected(series));
  return logistic_.PredictProbaSparse(row);
}

Status MuseClassifier::SaveState(Serializer& out) const {
  out.Begin("muse");
  out.SizeT(options_.weasel.word_length);
  out.SizeT(options_.weasel.alphabet_size);
  out.Bool(options_.weasel.norm_mean);
  out.Bool(options_.weasel.use_bigrams);
  out.Bool(options_.weasel.normalize_input);
  out.Bool(options_.use_derivatives);
  out.SizeT(num_variables_);
  out.SizeVec(window_sizes_);
  out.SizeT(transforms_.size());
  for (const auto& per_window : transforms_) {
    out.SizeT(per_window.size());
    for (const Sfa& sfa : per_window) sfa.SaveState(out);
  }
  weasel_detail::SaveBagOfPatterns(out, vocabulary_);
  out.SizeVec(selected_);
  logistic_.SaveState(out);
  out.End();
  return Status::OK();
}

Status MuseClassifier::LoadState(Deserializer& in) {
  ETSC_RETURN_NOT_OK(in.Enter("muse"));
  ETSC_ASSIGN_OR_RETURN(options_.weasel.word_length, in.SizeT());
  ETSC_ASSIGN_OR_RETURN(options_.weasel.alphabet_size, in.SizeT());
  ETSC_ASSIGN_OR_RETURN(options_.weasel.norm_mean, in.Bool());
  ETSC_ASSIGN_OR_RETURN(options_.weasel.use_bigrams, in.Bool());
  ETSC_ASSIGN_OR_RETURN(options_.weasel.normalize_input, in.Bool());
  ETSC_ASSIGN_OR_RETURN(options_.use_derivatives, in.Bool());
  ETSC_ASSIGN_OR_RETURN(num_variables_, in.SizeT());
  ETSC_ASSIGN_OR_RETURN(window_sizes_, in.SizeVec());
  ETSC_ASSIGN_OR_RETURN(size_t channels, in.SizeT());
  transforms_.assign(channels, {});
  for (auto& per_window : transforms_) {
    ETSC_ASSIGN_OR_RETURN(size_t windows, in.SizeT());
    if (windows != window_sizes_.size()) {
      return Status::DataLoss("MUSE: transform/window count mismatch");
    }
    per_window.assign(windows, Sfa{});
    for (Sfa& sfa : per_window) ETSC_RETURN_NOT_OK(sfa.LoadState(in));
  }
  ETSC_RETURN_NOT_OK(weasel_detail::LoadBagOfPatterns(in, &vocabulary_));
  ETSC_ASSIGN_OR_RETURN(selected_, in.SizeVec());
  ETSC_RETURN_NOT_OK(logistic_.LoadState(in));
  return in.Leave();
}

std::string MuseClassifier::config_fingerprint() const {
  return "WEASEL+MUSE(" + WeaselOptionsFingerprint(options_.weasel) +
         ",deriv=" + std::to_string(options_.use_derivatives ? 1 : 0) + ")";
}

}  // namespace etsc
