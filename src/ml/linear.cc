#include "ml/linear.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

namespace etsc {

void SparseVector::SortAndMerge() {
  std::sort(entries.begin(), entries.end());
  size_t out = 0;
  for (size_t i = 0; i < entries.size();) {
    size_t j = i;
    double sum = 0.0;
    while (j < entries.size() && entries[j].first == entries[i].first) {
      sum += entries[j].second;
      ++j;
    }
    entries[out++] = {entries[i].first, sum};
    i = j;
  }
  entries.resize(out);
}

double SparseVector::Dot(const std::vector<double>& dense) const {
  double sum = 0.0;
  for (const auto& [idx, val] : entries) {
    if (idx < dense.size()) sum += val * dense[idx];
  }
  return sum;
}

double SparseVector::L2Norm() const {
  double sum = 0.0;
  for (const auto& [idx, val] : entries) sum += val * val;
  return std::sqrt(sum);
}

namespace {

void SoftmaxInPlace(std::vector<double>* scores) {
  const double max_score = *std::max_element(scores->begin(), scores->end());
  double total = 0.0;
  for (double& s : *scores) {
    s = std::exp(s - max_score);
    total += s;
  }
  for (double& s : *scores) s /= total;
}

std::vector<int> SortedDistinctLabels(const std::vector<int>& labels) {
  std::vector<int> out(labels);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

Status LogisticRegression::FitSparse(const std::vector<SparseVector>& rows,
                                     size_t dim, const std::vector<int>& labels,
                                     Rng* rng) {
  if (rows.empty()) {
    return Status::InvalidArgument("LogisticRegression: no samples");
  }
  if (rows.size() != labels.size()) {
    return Status::InvalidArgument("LogisticRegression: size mismatch");
  }
  if (rng == nullptr) {
    return Status::InvalidArgument("LogisticRegression: rng required");
  }
  class_labels_ = SortedDistinctLabels(labels);
  dim_ = dim;
  const size_t num_classes = class_labels_.size();
  std::map<int, size_t> class_index;
  for (size_t k = 0; k < num_classes; ++k) class_index[class_labels_[k]] = k;

  weights_.assign(num_classes, std::vector<double>(dim_, 0.0));
  intercepts_.assign(num_classes, 0.0);
  if (num_classes < 2) return Status::OK();

  // AdaGrad accumulators.
  std::vector<std::vector<double>> g2(num_classes,
                                      std::vector<double>(dim_, 1e-8));
  std::vector<double> g2_intercept(num_classes, 1e-8);

  std::vector<size_t> order(rows.size());
  std::iota(order.begin(), order.end(), 0);
  const double lr = options_.learning_rate;

  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng->Shuffle(&order);
    for (size_t i : order) {
      std::vector<double> scores = DecisionScores(rows[i]);
      SoftmaxInPlace(&scores);
      const size_t yi = class_index[labels[i]];
      for (size_t k = 0; k < num_classes; ++k) {
        const double err = scores[k] - (k == yi ? 1.0 : 0.0);
        // Weight updates only on the row's non-zeros (sparse-friendly); L2 is
        // applied there as well (truncated regularisation).
        for (const auto& [idx, val] : rows[i].entries) {
          if (idx >= dim_) continue;
          const double grad = err * val + options_.l2 * weights_[k][idx];
          g2[k][idx] += grad * grad;
          weights_[k][idx] -= lr * grad / std::sqrt(g2[k][idx]);
        }
        if (options_.fit_intercept) {
          const double grad = err;
          g2_intercept[k] += grad * grad;
          intercepts_[k] -= lr * grad / std::sqrt(g2_intercept[k]);
        }
      }
    }
  }
  return Status::OK();
}

Status LogisticRegression::Fit(const std::vector<std::vector<double>>& rows,
                               const std::vector<int>& labels, Rng* rng) {
  std::vector<SparseVector> sparse(rows.size());
  size_t dim = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    dim = std::max(dim, rows[i].size());
    for (size_t j = 0; j < rows[i].size(); ++j) {
      if (rows[i][j] != 0.0) sparse[i].Add(j, rows[i][j]);
    }
  }
  return FitSparse(sparse, dim, labels, rng);
}

std::vector<double> LogisticRegression::DecisionScores(
    const SparseVector& row) const {
  std::vector<double> scores(class_labels_.size(), 0.0);
  for (size_t k = 0; k < class_labels_.size(); ++k) {
    scores[k] = row.Dot(weights_[k]) + intercepts_[k];
  }
  return scores;
}

Result<std::vector<double>> LogisticRegression::PredictProbaSparse(
    const SparseVector& row) const {
  if (!fitted()) {
    return Status::FailedPrecondition("LogisticRegression: not fitted");
  }
  if (class_labels_.size() == 1) return std::vector<double>{1.0};
  std::vector<double> scores = DecisionScores(row);
  SoftmaxInPlace(&scores);
  return scores;
}

Result<std::vector<double>> LogisticRegression::PredictProba(
    const std::vector<double>& row) const {
  SparseVector sparse;
  for (size_t j = 0; j < row.size(); ++j) {
    if (row[j] != 0.0) sparse.Add(j, row[j]);
  }
  return PredictProbaSparse(sparse);
}

Result<int> LogisticRegression::PredictSparse(const SparseVector& row) const {
  ETSC_ASSIGN_OR_RETURN(std::vector<double> proba, PredictProbaSparse(row));
  const size_t best = static_cast<size_t>(
      std::max_element(proba.begin(), proba.end()) - proba.begin());
  return class_labels_[best];
}

Result<int> LogisticRegression::Predict(const std::vector<double>& row) const {
  ETSC_ASSIGN_OR_RETURN(std::vector<double> proba, PredictProba(row));
  const size_t best = static_cast<size_t>(
      std::max_element(proba.begin(), proba.end()) - proba.begin());
  return class_labels_[best];
}

Status SolveSpd(std::vector<std::vector<double>> a, std::vector<double> b,
                std::vector<double>* x) {
  const size_t n = a.size();
  if (n == 0 || b.size() != n) {
    return Status::InvalidArgument("SolveSpd: bad dimensions");
  }
  // Cholesky: A = L Lᵀ, stored in the lower triangle of a.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = a[i][j];
      for (size_t k = 0; k < j; ++k) sum -= a[i][k] * a[j][k];
      if (i == j) {
        if (sum <= 0.0) {
          return Status::InvalidArgument("SolveSpd: matrix not positive definite");
        }
        a[i][i] = std::sqrt(sum);
      } else {
        a[i][j] = sum / a[j][j];
      }
    }
  }
  // Forward solve L y = b.
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= a[i][k] * b[k];
    b[i] = sum / a[i][i];
  }
  // Back solve Lᵀ x = y.
  x->assign(n, 0.0);
  for (size_t ii = n; ii > 0; --ii) {
    const size_t i = ii - 1;
    double sum = b[i];
    for (size_t k = i + 1; k < n; ++k) sum -= a[k][i] * (*x)[k];
    (*x)[i] = sum / a[i][i];
  }
  return Status::OK();
}

Status RidgeClassifier::Fit(const std::vector<std::vector<double>>& rows,
                            const std::vector<int>& labels) {
  if (rows.empty()) return Status::InvalidArgument("RidgeClassifier: no samples");
  if (rows.size() != labels.size()) {
    return Status::InvalidArgument("RidgeClassifier: size mismatch");
  }
  const size_t n = rows.size();
  const size_t d = rows[0].size();
  for (const auto& r : rows) {
    if (r.size() != d) {
      return Status::InvalidArgument("RidgeClassifier: ragged rows");
    }
  }
  class_labels_ = SortedDistinctLabels(labels);
  const size_t num_classes = class_labels_.size();
  weights_.assign(num_classes, std::vector<double>(d, 0.0));
  intercepts_.assign(num_classes, 0.0);
  if (num_classes < 2) return Status::OK();

  // Centre targets per class (intercept = class prior offset).
  std::vector<std::vector<double>> targets(num_classes, std::vector<double>(n));
  for (size_t k = 0; k < num_classes; ++k) {
    double mean = 0.0;
    for (size_t i = 0; i < n; ++i) {
      targets[k][i] = labels[i] == class_labels_[k] ? 1.0 : -1.0;
      mean += targets[k][i];
    }
    mean /= static_cast<double>(n);
    intercepts_[k] = mean;
    for (double& t : targets[k]) t -= mean;
  }

  if (d <= n) {
    // Primal: (XᵀX + αI) w = Xᵀ y.
    std::vector<std::vector<double>> gram(d, std::vector<double>(d, 0.0));
    for (size_t i = 0; i < n; ++i) {
      for (size_t p = 0; p < d; ++p) {
        const double xp = rows[i][p];
        if (xp == 0.0) continue;
        for (size_t q = p; q < d; ++q) gram[p][q] += xp * rows[i][q];
      }
    }
    for (size_t p = 0; p < d; ++p) {
      gram[p][p] += options_.alpha;
      for (size_t q = 0; q < p; ++q) gram[p][q] = gram[q][p];
    }
    for (size_t k = 0; k < num_classes; ++k) {
      std::vector<double> rhs(d, 0.0);
      for (size_t i = 0; i < n; ++i) {
        for (size_t p = 0; p < d; ++p) rhs[p] += rows[i][p] * targets[k][i];
      }
      ETSC_RETURN_NOT_OK(SolveSpd(gram, std::move(rhs), &weights_[k]));
    }
  } else {
    // Dual: (XXᵀ + αI) a = y, w = Xᵀ a.
    std::vector<std::vector<double>> gram(n, std::vector<double>(n, 0.0));
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i; j < n; ++j) {
        double dot = 0.0;
        for (size_t p = 0; p < d; ++p) dot += rows[i][p] * rows[j][p];
        gram[i][j] = dot;
        gram[j][i] = dot;
      }
      gram[i][i] += options_.alpha;
    }
    for (size_t k = 0; k < num_classes; ++k) {
      std::vector<double> alpha_vec;
      ETSC_RETURN_NOT_OK(SolveSpd(gram, targets[k], &alpha_vec));
      for (size_t i = 0; i < n; ++i) {
        for (size_t p = 0; p < d; ++p) {
          weights_[k][p] += alpha_vec[i] * rows[i][p];
        }
      }
    }
  }
  return Status::OK();
}

Result<int> RidgeClassifier::Predict(const std::vector<double>& row) const {
  ETSC_ASSIGN_OR_RETURN(std::vector<double> proba, PredictProba(row));
  const size_t best = static_cast<size_t>(
      std::max_element(proba.begin(), proba.end()) - proba.begin());
  return class_labels_[best];
}

Result<std::vector<double>> RidgeClassifier::PredictProba(
    const std::vector<double>& row) const {
  if (!fitted()) return Status::FailedPrecondition("RidgeClassifier: not fitted");
  if (class_labels_.size() == 1) return std::vector<double>{1.0};
  std::vector<double> scores(class_labels_.size(), 0.0);
  for (size_t k = 0; k < class_labels_.size(); ++k) {
    double dot = intercepts_[k];
    const size_t m = std::min(row.size(), weights_[k].size());
    for (size_t p = 0; p < m; ++p) dot += row[p] * weights_[k][p];
    scores[k] = dot;
  }
  SoftmaxInPlace(&scores);
  return scores;
}

void LogisticRegression::SaveState(Serializer& out) const {
  out.Begin("logistic");
  out.IntVec(class_labels_);
  out.SizeT(dim_);
  out.F64Mat(weights_);
  out.F64Vec(intercepts_);
  out.End();
}

Status LogisticRegression::LoadState(Deserializer& in) {
  ETSC_RETURN_NOT_OK(in.Enter("logistic"));
  ETSC_ASSIGN_OR_RETURN(class_labels_, in.IntVec());
  ETSC_ASSIGN_OR_RETURN(dim_, in.SizeT());
  ETSC_ASSIGN_OR_RETURN(weights_, in.F64Mat());
  ETSC_ASSIGN_OR_RETURN(intercepts_, in.F64Vec());
  if (weights_.size() != class_labels_.size() ||
      intercepts_.size() != class_labels_.size()) {
    return Status::DataLoss("LogisticRegression: inconsistent fitted state");
  }
  return in.Leave();
}

void RidgeClassifier::SaveState(Serializer& out) const {
  out.Begin("ridge");
  out.IntVec(class_labels_);
  out.F64Mat(weights_);
  out.F64Vec(intercepts_);
  out.End();
}

Status RidgeClassifier::LoadState(Deserializer& in) {
  ETSC_RETURN_NOT_OK(in.Enter("ridge"));
  ETSC_ASSIGN_OR_RETURN(class_labels_, in.IntVec());
  ETSC_ASSIGN_OR_RETURN(weights_, in.F64Mat());
  ETSC_ASSIGN_OR_RETURN(intercepts_, in.F64Vec());
  if (class_labels_.size() > 1 &&
      (weights_.size() != class_labels_.size() ||
       intercepts_.size() != class_labels_.size())) {
    return Status::DataLoss("RidgeClassifier: inconsistent fitted state");
  }
  return in.Leave();
}

}  // namespace etsc
