#include "ml/distance.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/counters.h"
#include "core/status.h"

namespace etsc {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Kernel-invocation metrics (DESIGN.md sec 9). References are interned once
// per call site; recording is one relaxed add per *call*, never per element,
// and the whole block is skipped behind the inlined MetricsEnabled() guard.
Counter& PrefixSqCalls() {
  static Counter& c =
      MetricRegistry::Global().counter("distance.prefix_sq_calls");
  return c;
}
Counter& SubseriesCalls() {
  static Counter& c =
      MetricRegistry::Global().counter("distance.subseries_calls");
  return c;
}
Counter& SubseriesWindows() {
  static Counter& c =
      MetricRegistry::Global().counter("distance.subseries_windows");
  return c;
}
Counter& SubseriesWindowsAbandoned() {
  static Counter& c =
      MetricRegistry::Global().counter("distance.subseries_windows_abandoned");
  return c;
}

/// 4-way unrolled sum of squared differences over [0, len). Four independent
/// accumulators break the loop-carried dependency so the FMA units stay busy;
/// the final reduction order (s0+s1)+(s2+s3) is fixed so every caller —
/// serial or parallel — sees the same rounding.
inline double SumSqDiff(const double* a, const double* b, size_t len) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= len; i += 4) {
    const double d0 = a[i] - b[i];
    const double d1 = a[i + 1] - b[i + 1];
    const double d2 = a[i + 2] - b[i + 2];
    const double d3 = a[i + 3] - b[i + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  double sum = (s0 + s1) + (s2 + s3);
  for (; i < len; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

}  // namespace

double EuclideanPrefixSq(const std::vector<double>& a,
                         const std::vector<double>& b, size_t len) {
  if (MetricsEnabled()) PrefixSqCalls().Add(1);
  len = std::min({len, a.size(), b.size()});
  return SumSqDiff(a.data(), b.data(), len);
}

double MinSubseriesDistanceSq(const std::vector<double>& pattern,
                              const std::vector<double>& series) {
  return MinSubseriesDistanceSqEarlyAbandon(pattern, series, kInf);
}

double MinSubseriesDistanceSqEarlyAbandon(const std::vector<double>& pattern,
                                          const std::vector<double>& series,
                                          double best_sq) {
  const size_t m = pattern.size();
  if (m == 0 || series.size() < m) return kInf;
  const double* p = pattern.data();
  // Early-abandon hit rate: tallied locally, published once on return.
  uint64_t windows = 0;
  uint64_t windows_abandoned = 0;
  for (size_t start = 0; start + m <= series.size(); ++start) {
    ++windows;
    const double* s = series.data() + start;
    // Same unrolled accumulators as SumSqDiff, with an abandon check once per
    // 4-element block: partial sums only ever grow, so the window can be
    // dropped the moment they reach best_sq without affecting the minimum.
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    size_t i = 0;
    bool abandoned = false;
    for (; i + 4 <= m; i += 4) {
      const double d0 = p[i] - s[i];
      const double d1 = p[i + 1] - s[i + 1];
      const double d2 = p[i + 2] - s[i + 2];
      const double d3 = p[i + 3] - s[i + 3];
      s0 += d0 * d0;
      s1 += d1 * d1;
      s2 += d2 * d2;
      s3 += d3 * d3;
      if ((s0 + s1) + (s2 + s3) >= best_sq) {
        abandoned = true;
        break;
      }
    }
    if (abandoned) {
      ++windows_abandoned;
      continue;
    }
    double sum = (s0 + s1) + (s2 + s3);
    for (; i < m; ++i) {
      const double d = p[i] - s[i];
      sum += d * d;
      if (sum >= best_sq) {
        abandoned = true;
        break;
      }
    }
    if (abandoned) {
      ++windows_abandoned;
      continue;
    }
    best_sq = sum;
    if (best_sq == 0.0) break;
  }
  if (MetricsEnabled()) {
    SubseriesCalls().Add(1);
    SubseriesWindows().Add(windows);
    SubseriesWindowsAbandoned().Add(windows_abandoned);
  }
  return best_sq;
}

double Euclidean(const std::vector<double>& a, const std::vector<double>& b) {
  ETSC_DCHECK(a.size() == b.size());
  return EuclideanPrefix(a, b, a.size());
}

double EuclideanPrefix(const std::vector<double>& a, const std::vector<double>& b,
                       size_t len) {
  return std::sqrt(EuclideanPrefixSq(a, b, len));
}

double MinSubseriesDistance(const std::vector<double>& pattern,
                            const std::vector<double>& series) {
  return std::sqrt(MinSubseriesDistanceSq(pattern, series));
}

double MinSubseriesDistanceEarlyAbandon(const std::vector<double>& pattern,
                                        const std::vector<double>& series,
                                        double best_so_far) {
  const double best_sq = best_so_far < kInf ? best_so_far * best_so_far : kInf;
  return std::sqrt(MinSubseriesDistanceSqEarlyAbandon(pattern, series, best_sq));
}

}  // namespace etsc
