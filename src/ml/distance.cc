#include "ml/distance.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/status.h"

namespace etsc {

double Euclidean(const std::vector<double>& a, const std::vector<double>& b) {
  ETSC_DCHECK(a.size() == b.size());
  return EuclideanPrefix(a, b, a.size());
}

double EuclideanPrefix(const std::vector<double>& a, const std::vector<double>& b,
                       size_t len) {
  len = std::min({len, a.size(), b.size()});
  double sum = 0.0;
  for (size_t i = 0; i < len; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

double MinSubseriesDistance(const std::vector<double>& pattern,
                            const std::vector<double>& series) {
  return MinSubseriesDistanceEarlyAbandon(pattern, series,
                                          std::numeric_limits<double>::infinity());
}

double MinSubseriesDistanceEarlyAbandon(const std::vector<double>& pattern,
                                        const std::vector<double>& series,
                                        double best_so_far) {
  const size_t m = pattern.size();
  if (m == 0 || series.size() < m) {
    return std::numeric_limits<double>::infinity();
  }
  double best_sq = best_so_far < std::numeric_limits<double>::infinity()
                       ? best_so_far * best_so_far
                       : std::numeric_limits<double>::infinity();
  for (size_t start = 0; start + m <= series.size(); ++start) {
    double sum = 0.0;
    for (size_t i = 0; i < m; ++i) {
      const double d = pattern[i] - series[start + i];
      sum += d * d;
      if (sum >= best_sq) break;  // early abandon
    }
    best_sq = std::min(best_sq, sum);
    if (best_sq == 0.0) break;
  }
  return std::sqrt(best_sq);
}

}  // namespace etsc
