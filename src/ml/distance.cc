#include "ml/distance.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/counters.h"
#include "core/simd.h"
#include "core/status.h"

namespace etsc {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Kernel-invocation metrics (DESIGN.md sec 9). References are interned once
// per call site; recording is one relaxed add per *call*, never per element,
// and the whole block is skipped behind the inlined MetricsEnabled() guard.
Counter& PrefixSqCalls() {
  static Counter& c =
      MetricRegistry::Global().counter("distance.prefix_sq_calls");
  return c;
}
Counter& SubseriesCalls() {
  static Counter& c =
      MetricRegistry::Global().counter("distance.subseries_calls");
  return c;
}
Counter& SubseriesWindows() {
  static Counter& c =
      MetricRegistry::Global().counter("distance.subseries_windows");
  return c;
}
Counter& SubseriesWindowsAbandoned() {
  static Counter& c =
      MetricRegistry::Global().counter("distance.subseries_windows_abandoned");
  return c;
}

}  // namespace

double EuclideanPrefixSq(std::span<const double> a, std::span<const double> b,
                         size_t len) {
  if (MetricsEnabled()) PrefixSqCalls().Add(1);
  len = std::min({len, a.size(), b.size()});
  return simd::SumSqDiff(a.data(), b.data(), len);
}

double MinSubseriesDistanceSq(std::span<const double> pattern,
                              std::span<const double> series) {
  return MinSubseriesDistanceSqEarlyAbandon(pattern, series, kInf);
}

double MinSubseriesDistanceSqEarlyAbandon(std::span<const double> pattern,
                                          std::span<const double> series,
                                          double best_sq) {
  // Window and early-abandon tallies come back from the kernel so the
  // hit-rate metrics survive the dispatch boundary; the abandon decisions
  // themselves are path-invariant (partial sums of squares are monotone, so
  // a window is abandoned iff its full sum reaches best_sq, no matter where
  // the checkpoints fall).
  uint64_t windows = 0;
  uint64_t windows_abandoned = 0;
  const double result =
      simd::MinSubseriesSq(pattern.data(), pattern.size(), series.data(),
                           series.size(), best_sq, &windows,
                           &windows_abandoned);
  if (MetricsEnabled()) {
    SubseriesCalls().Add(1);
    SubseriesWindows().Add(windows);
    SubseriesWindowsAbandoned().Add(windows_abandoned);
  }
  return result;
}

double Euclidean(std::span<const double> a, std::span<const double> b) {
  ETSC_DCHECK(a.size() == b.size());
  return EuclideanPrefix(a, b, a.size());
}

double EuclideanPrefix(std::span<const double> a, std::span<const double> b,
                       size_t len) {
  return std::sqrt(EuclideanPrefixSq(a, b, len));
}

double MinSubseriesDistance(std::span<const double> pattern,
                            std::span<const double> series) {
  return std::sqrt(MinSubseriesDistanceSq(pattern, series));
}

double MinSubseriesDistanceEarlyAbandon(std::span<const double> pattern,
                                        std::span<const double> series,
                                        double best_so_far) {
  const double best_sq = best_so_far < kInf ? best_so_far * best_so_far : kInf;
  return std::sqrt(MinSubseriesDistanceSqEarlyAbandon(pattern, series, best_sq));
}

}  // namespace etsc
