#ifndef ETSC_ML_NN_SEARCH_H_
#define ETSC_ML_NN_SEARCH_H_

#include <cstddef>
#include <vector>

namespace etsc {

/// Index of the nearest neighbor of `query` among `points` under Euclidean
/// distance over the first `prefix_len` coordinates, excluding `exclude`
/// (pass points.size() to exclude nothing). Ties break to the lowest index.
size_t NearestNeighbor(const std::vector<std::vector<double>>& points,
                       const std::vector<double>& query, size_t prefix_len,
                       size_t exclude);

/// For every point i, the index of its 1-NN among the other points using the
/// first `prefix_len` coordinates.
std::vector<size_t> AllNearestNeighbors(
    const std::vector<std::vector<double>>& points, size_t prefix_len);

/// Reverse nearest neighbors: rnn[i] lists every j whose 1-NN is i (under the
/// given prefix length). The in-degree structure ECTS builds per prefix.
std::vector<std::vector<size_t>> ReverseNearestNeighbors(
    const std::vector<size_t>& nearest);

}  // namespace etsc

#endif  // ETSC_ML_NN_SEARCH_H_
