#ifndef ETSC_ML_DISTANCE_H_
#define ETSC_ML_DISTANCE_H_

#include <cstddef>
#include <span>
#include <vector>

namespace etsc {

// Squared-distance primitives — the hot-path API.
//
// Nearest-neighbour search, k-means assignment, and shapelet scanning only
// compare distances, and x -> x*x is monotone on [0, inf), so the sqrt can be
// deferred to the caller (or skipped entirely). The *Sq functions below are
// the kernels; they dispatch through the simd layer (core/simd.h), so the
// same call runs AVX2, SSE2 or the scalar reference depending on the build
// and ETSC_SIMD — with bit-identical results on every path. The legacy
// sqrt-returning wrappers further down delegate to them.
//
// All primitives take spans so both std::vector payloads and the aligned
// Dataset pool channels (TimeSeries::channel) feed them without a copy.

/// Sum of squared differences over the first `len` entries (clamped to the
/// shorter vector). Equals EuclideanPrefix(a, b, len)^2.
double EuclideanPrefixSq(std::span<const double> a, std::span<const double> b,
                         size_t len);

/// Minimum *squared* Euclidean distance between `pattern` and any contiguous
/// equal-length window of `series` (the EDSC shapelet-to-series distance,
/// squared). Returns +inf when `series` is shorter than `pattern`.
double MinSubseriesDistanceSq(std::span<const double> pattern,
                              std::span<const double> series);

/// Same as MinSubseriesDistanceSq but abandons a window once its partial sum
/// reaches `best_sq` (a *squared* bound; pass +inf for no bound). Returns
/// min(best_sq, true minimum) — i.e. never worse than the bound passed in.
double MinSubseriesDistanceSqEarlyAbandon(std::span<const double> pattern,
                                          std::span<const double> series,
                                          double best_sq);

// Legacy sqrt-returning API (kept for callers that report real distances,
// e.g. EDSC's threshold statistics); one sqrt per call on top of the kernels.

/// Euclidean distance between equal-length vectors.
double Euclidean(std::span<const double> a, std::span<const double> b);

/// Euclidean distance between the first `len` entries of two vectors.
double EuclideanPrefix(std::span<const double> a, std::span<const double> b,
                       size_t len);

/// Minimum Euclidean distance between `pattern` and any contiguous window of
/// equal length inside `series`, i.e. the shapelet-to-series distance used by
/// EDSC. Returns +inf when `series` is shorter than `pattern`.
double MinSubseriesDistance(std::span<const double> pattern,
                            std::span<const double> series);

/// Same as MinSubseriesDistance but stops scanning a window early once its
/// partial sum exceeds `best_so_far` squared (classic early-abandon).
double MinSubseriesDistanceEarlyAbandon(std::span<const double> pattern,
                                        std::span<const double> series,
                                        double best_so_far);

// Vector overloads: keep brace-initialised call sites (`Euclidean({0, 0},
// {1, 1})`) compiling — a braced list will not deduce to a span.

inline double EuclideanPrefixSq(const std::vector<double>& a,
                                const std::vector<double>& b, size_t len) {
  return EuclideanPrefixSq(std::span<const double>(a),
                           std::span<const double>(b), len);
}
inline double MinSubseriesDistanceSq(const std::vector<double>& pattern,
                                     const std::vector<double>& series) {
  return MinSubseriesDistanceSq(std::span<const double>(pattern),
                                std::span<const double>(series));
}
inline double MinSubseriesDistanceSqEarlyAbandon(
    const std::vector<double>& pattern, const std::vector<double>& series,
    double best_sq) {
  return MinSubseriesDistanceSqEarlyAbandon(std::span<const double>(pattern),
                                            std::span<const double>(series),
                                            best_sq);
}
inline double Euclidean(const std::vector<double>& a,
                        const std::vector<double>& b) {
  return Euclidean(std::span<const double>(a), std::span<const double>(b));
}
inline double EuclideanPrefix(const std::vector<double>& a,
                              const std::vector<double>& b, size_t len) {
  return EuclideanPrefix(std::span<const double>(a), std::span<const double>(b),
                         len);
}
inline double MinSubseriesDistance(const std::vector<double>& pattern,
                                   const std::vector<double>& series) {
  return MinSubseriesDistance(std::span<const double>(pattern),
                              std::span<const double>(series));
}
inline double MinSubseriesDistanceEarlyAbandon(
    const std::vector<double>& pattern, const std::vector<double>& series,
    double best_so_far) {
  return MinSubseriesDistanceEarlyAbandon(std::span<const double>(pattern),
                                          std::span<const double>(series),
                                          best_so_far);
}

}  // namespace etsc

#endif  // ETSC_ML_DISTANCE_H_
