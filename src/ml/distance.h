#ifndef ETSC_ML_DISTANCE_H_
#define ETSC_ML_DISTANCE_H_

#include <cstddef>
#include <vector>

namespace etsc {

// Squared-distance primitives — the hot-path API.
//
// Nearest-neighbour search, k-means assignment, and shapelet scanning only
// compare distances, and x -> x*x is monotone on [0, inf), so the sqrt can be
// deferred to the caller (or skipped entirely). The *Sq functions below are
// the kernels: 4-way unrolled accumulators, early abandon in squared space.
// The legacy sqrt-returning wrappers further down delegate to them.

/// Sum of squared differences over the first `len` entries (clamped to the
/// shorter vector). Equals EuclideanPrefix(a, b, len)^2.
double EuclideanPrefixSq(const std::vector<double>& a,
                         const std::vector<double>& b, size_t len);

/// Minimum *squared* Euclidean distance between `pattern` and any contiguous
/// equal-length window of `series` (the EDSC shapelet-to-series distance,
/// squared). Returns +inf when `series` is shorter than `pattern`.
double MinSubseriesDistanceSq(const std::vector<double>& pattern,
                              const std::vector<double>& series);

/// Same as MinSubseriesDistanceSq but abandons a window once its partial sum
/// reaches `best_sq` (a *squared* bound; pass +inf for no bound). Returns
/// min(best_sq, true minimum) — i.e. never worse than the bound passed in.
double MinSubseriesDistanceSqEarlyAbandon(const std::vector<double>& pattern,
                                          const std::vector<double>& series,
                                          double best_sq);

// Legacy sqrt-returning API (kept for callers that report real distances,
// e.g. EDSC's threshold statistics); one sqrt per call on top of the kernels.

/// Euclidean distance between equal-length vectors.
double Euclidean(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean distance between the first `len` entries of two vectors.
double EuclideanPrefix(const std::vector<double>& a, const std::vector<double>& b,
                       size_t len);

/// Minimum Euclidean distance between `pattern` and any contiguous window of
/// equal length inside `series`, i.e. the shapelet-to-series distance used by
/// EDSC. Returns +inf when `series` is shorter than `pattern`.
double MinSubseriesDistance(const std::vector<double>& pattern,
                            const std::vector<double>& series);

/// Same as MinSubseriesDistance but stops scanning a window early once its
/// partial sum exceeds `best_so_far` squared (classic early-abandon).
double MinSubseriesDistanceEarlyAbandon(const std::vector<double>& pattern,
                                        const std::vector<double>& series,
                                        double best_so_far);

}  // namespace etsc

#endif  // ETSC_ML_DISTANCE_H_
