#ifndef ETSC_ML_DISTANCE_H_
#define ETSC_ML_DISTANCE_H_

#include <cstddef>
#include <vector>

namespace etsc {

/// Euclidean distance between equal-length vectors.
double Euclidean(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean distance between the first `len` entries of two vectors.
double EuclideanPrefix(const std::vector<double>& a, const std::vector<double>& b,
                       size_t len);

/// Minimum Euclidean distance between `pattern` and any contiguous window of
/// equal length inside `series`, i.e. the shapelet-to-series distance used by
/// EDSC. Returns +inf when `series` is shorter than `pattern`.
double MinSubseriesDistance(const std::vector<double>& pattern,
                            const std::vector<double>& series);

/// Same as MinSubseriesDistance but stops scanning a window early once its
/// partial sum exceeds `best_so_far` squared (classic early-abandon).
double MinSubseriesDistanceEarlyAbandon(const std::vector<double>& pattern,
                                        const std::vector<double>& series,
                                        double best_so_far);

}  // namespace etsc

#endif  // ETSC_ML_DISTANCE_H_
