#ifndef ETSC_ML_CHI2_H_
#define ETSC_ML_CHI2_H_

#include <cstddef>
#include <vector>

#include "ml/linear.h"

namespace etsc {

/// Chi-squared relevance statistic of each feature (columns of a sparse
/// bag-of-words matrix) w.r.t. class labels: the standard one-way test on
/// observed vs expected per-class feature mass used by WEASEL to prune its
/// feature space. Returns one score per feature in [0, dim).
std::vector<double> Chi2Scores(const std::vector<SparseVector>& rows, size_t dim,
                               const std::vector<int>& labels);

/// Indices of features whose chi² score is >= `threshold` (WEASEL's default
/// test, chi2 >= 2 ~ p < 0.16 for 1 dof).
std::vector<size_t> Chi2Select(const std::vector<SparseVector>& rows, size_t dim,
                               const std::vector<int>& labels, double threshold);

/// Remaps rows onto the selected feature subset (features renumbered 0..k-1 in
/// the order of `selected`, which must be sorted ascending).
std::vector<SparseVector> ProjectFeatures(const std::vector<SparseVector>& rows,
                                          const std::vector<size_t>& selected);

/// Projects a single row onto the selected subset.
SparseVector ProjectRow(const SparseVector& row,
                        const std::vector<size_t>& selected);

}  // namespace etsc

#endif  // ETSC_ML_CHI2_H_
