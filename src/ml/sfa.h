#ifndef ETSC_ML_SFA_H_
#define ETSC_ML_SFA_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/serialize.h"
#include "core/status.h"

namespace etsc {

/// How SFA chooses discretisation boundaries per Fourier coefficient.
enum class SfaBinning {
  kEquiDepth,        // quantile boundaries
  kInformationGain,  // supervised entropy-minimising boundaries (WEASEL)
};

struct SfaOptions {
  size_t word_length = 4;    // number of real values used (coefficient halves)
  size_t alphabet_size = 4;  // symbols per position
  bool norm_mean = false;    // drop the DC coefficient
  SfaBinning binning = SfaBinning::kInformationGain;
};

/// Symbolic Fourier Approximation: learns per-coefficient discretisation
/// boundaries from training windows and maps any window of the same size to a
/// compact integer word (paper Sec. 3.4: WEASEL's word extraction).
class Sfa {
 public:
  explicit Sfa(SfaOptions options = {}) : options_(options) {}

  /// Learns boundaries from training windows (all the same size) and their
  /// class labels (required for information-gain binning; may be empty for
  /// equi-depth).
  Status Fit(const std::vector<std::vector<double>>& windows,
             const std::vector<int>& labels);

  /// DFT approximation used for word construction (word_length values).
  std::vector<double> Approximate(const std::vector<double>& window) const;

  /// Word for a window; symbols are packed little-endian, bits_per_symbol
  /// bits each.
  uint64_t Word(const std::vector<double>& window) const;

  /// Word from an already-computed approximation.
  uint64_t WordFromApproximation(const std::vector<double>& approx) const;

  size_t bits_per_symbol() const { return bits_per_symbol_; }
  size_t word_length() const { return options_.word_length; }
  bool fitted() const { return !bins_.empty(); }

  /// Discretisation boundaries per coefficient position (alphabet_size - 1
  /// ascending thresholds each). Exposed for tests.
  const std::vector<std::vector<double>>& bins() const { return bins_; }

  /// Persists/restores boundaries plus the predict-relevant options.
  void SaveState(Serializer& out) const;
  Status LoadState(Deserializer& in);

 private:
  SfaOptions options_;
  size_t bits_per_symbol_ = 2;
  std::vector<std::vector<double>> bins_;
};

/// Entropy of a label multiset (natural log).
double LabelEntropy(const std::vector<int>& labels);

/// Chooses up to `num_bins - 1` boundaries over (value, label) pairs by
/// recursive binary information-gain splits; falls back to equi-depth
/// boundaries for unsplittable data. Returned thresholds are ascending.
std::vector<double> InformationGainBins(std::vector<std::pair<double, int>> data,
                                        size_t num_bins);

/// Equi-depth (quantile) boundaries.
std::vector<double> EquiDepthBins(std::vector<double> values, size_t num_bins);

}  // namespace etsc

#endif  // ETSC_ML_SFA_H_
