#include "ml/gbdt.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

namespace etsc {

namespace {

void Softmax(std::vector<double>* scores) {
  double max_score = *std::max_element(scores->begin(), scores->end());
  double total = 0.0;
  for (double& s : *scores) {
    s = std::exp(s - max_score);
    total += s;
  }
  for (double& s : *scores) s /= total;
}

}  // namespace

Status GbdtClassifier::Fit(const std::vector<std::vector<double>>& features,
                           const std::vector<int>& labels, Rng* rng) {
  if (features.empty()) {
    return Status::InvalidArgument("GbdtClassifier::Fit: no samples");
  }
  if (features.size() != labels.size()) {
    return Status::InvalidArgument("GbdtClassifier::Fit: size mismatch");
  }
  if (options_.subsample < 1.0 && rng == nullptr) {
    return Status::InvalidArgument(
        "GbdtClassifier::Fit: subsampling requires an Rng");
  }

  // Map labels to contiguous class indices.
  std::map<int, size_t> class_index;
  class_labels_.clear();
  for (int y : labels) {
    if (class_index.emplace(y, 0).second) class_labels_.push_back(y);
  }
  std::sort(class_labels_.begin(), class_labels_.end());
  for (size_t k = 0; k < class_labels_.size(); ++k) {
    class_index[class_labels_[k]] = k;
  }
  const size_t num_classes = class_labels_.size();
  const size_t n = features.size();

  // Log-prior base scores.
  base_scores_.assign(num_classes, 0.0);
  std::vector<double> class_counts(num_classes, 0.0);
  for (int y : labels) class_counts[class_index[y]] += 1.0;
  for (size_t k = 0; k < num_classes; ++k) {
    base_scores_[k] =
        std::log(std::max(class_counts[k], 1.0) / static_cast<double>(n));
  }

  if (num_classes < 2) {
    trees_.clear();  // Degenerate: constant predictor via base score.
    return Status::OK();
  }

  // Raw scores F[i][k], updated additively each round.
  std::vector<std::vector<double>> raw(n, base_scores_);
  trees_.assign(options_.num_rounds, {});

  std::vector<size_t> all_rows(n);
  std::iota(all_rows.begin(), all_rows.end(), 0);

  for (size_t round = 0; round < options_.num_rounds; ++round) {
    // Sample rows for this round.
    std::vector<size_t> rows = all_rows;
    if (options_.subsample < 1.0) {
      rng->Shuffle(&rows);
      rows.resize(std::max<size_t>(
          1, static_cast<size_t>(options_.subsample * static_cast<double>(n))));
    }

    // Per-sample softmax probabilities.
    std::vector<std::vector<double>> proba(n);
    for (size_t i = 0; i < n; ++i) {
      proba[i] = raw[i];
      Softmax(&proba[i]);
    }

    std::vector<std::vector<double>> sampled_x;
    sampled_x.reserve(rows.size());
    for (size_t i : rows) sampled_x.push_back(features[i]);

    trees_[round].reserve(num_classes);
    for (size_t k = 0; k < num_classes; ++k) {
      std::vector<double> grad(rows.size());
      std::vector<double> hess(rows.size());
      for (size_t r = 0; r < rows.size(); ++r) {
        const size_t i = rows[r];
        const double y = class_index[labels[i]] == k ? 1.0 : 0.0;
        grad[r] = y - proba[i][k];
        hess[r] = std::max(proba[i][k] * (1.0 - proba[i][k]), 1e-6);
      }
      RegressionTree tree(options_.tree);
      ETSC_RETURN_NOT_OK(tree.Fit(sampled_x, grad, hess));
      for (size_t i = 0; i < n; ++i) {
        raw[i][k] += options_.learning_rate * tree.Predict(features[i]);
      }
      trees_[round].push_back(std::move(tree));
    }
  }
  return Status::OK();
}

Result<std::vector<double>> GbdtClassifier::PredictProba(
    const std::vector<double>& row) const {
  if (!fitted()) {
    return Status::FailedPrecondition("GbdtClassifier: not fitted");
  }
  std::vector<double> scores = base_scores_;
  for (const auto& round : trees_) {
    for (size_t k = 0; k < round.size(); ++k) {
      scores[k] += options_.learning_rate * round[k].Predict(row);
    }
  }
  Softmax(&scores);
  return scores;
}

Result<int> GbdtClassifier::Predict(const std::vector<double>& row) const {
  ETSC_ASSIGN_OR_RETURN(std::vector<double> proba, PredictProba(row));
  const size_t best = static_cast<size_t>(
      std::max_element(proba.begin(), proba.end()) - proba.begin());
  return class_labels_[best];
}

void GbdtClassifier::SaveState(Serializer& out) const {
  out.Begin("gbdt");
  out.F64(options_.learning_rate);  // scales tree outputs at predict time
  out.IntVec(class_labels_);
  out.F64Vec(base_scores_);
  out.SizeT(trees_.size());
  for (const auto& round : trees_) {
    out.SizeT(round.size());
    for (const auto& tree : round) tree.SaveState(out);
  }
  out.End();
}

Status GbdtClassifier::LoadState(Deserializer& in) {
  ETSC_RETURN_NOT_OK(in.Enter("gbdt"));
  ETSC_ASSIGN_OR_RETURN(options_.learning_rate, in.F64());
  ETSC_ASSIGN_OR_RETURN(class_labels_, in.IntVec());
  ETSC_ASSIGN_OR_RETURN(base_scores_, in.F64Vec());
  if (base_scores_.size() != class_labels_.size()) {
    return Status::DataLoss("GbdtClassifier: inconsistent fitted state");
  }
  ETSC_ASSIGN_OR_RETURN(size_t rounds, in.SizeT());
  trees_.clear();
  for (size_t r = 0; r < rounds; ++r) {
    ETSC_ASSIGN_OR_RETURN(size_t per_class, in.SizeT());
    if (per_class != class_labels_.size()) {
      return Status::DataLoss("GbdtClassifier: malformed round");
    }
    std::vector<RegressionTree> round(per_class);
    for (auto& tree : round) ETSC_RETURN_NOT_OK(tree.LoadState(in));
    trees_.push_back(std::move(round));
  }
  return in.Leave();
}

}  // namespace etsc
