#ifndef ETSC_ML_FOURIER_H_
#define ETSC_ML_FOURIER_H_

#include <cstddef>
#include <vector>

namespace etsc {

/// First `num_coefficients` complex coefficients of the discrete Fourier
/// transform of `window`, returned interleaved as
/// [re0, im0, re1, im1, ...] and normalised by the window length.
/// When `drop_first` is true the DC coefficient (window mean) is skipped and
/// the output starts at coefficient 1 — the SFA "mean-normalisation" switch.
std::vector<double> DftCoefficients(const std::vector<double>& window,
                                    size_t num_coefficients, bool drop_first);

/// Sliding-window DFT: for every window of `window_size` in `series` (stride
/// 1) computes DftCoefficients. Uses the momentary Fourier transform update
/// (O(c) per shift) so a full series costs O(L·c) after the first window.
std::vector<std::vector<double>> SlidingDft(const std::vector<double>& series,
                                            size_t window_size,
                                            size_t num_coefficients,
                                            bool drop_first);

}  // namespace etsc

#endif  // ETSC_ML_FOURIER_H_
