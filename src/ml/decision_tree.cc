#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "core/simd.h"

namespace etsc {

namespace {

struct SplitChoice {
  bool found = false;
  size_t feature = 0;
  double threshold = 0.0;
  double gain = 0.0;
};

// Best split over the index set by exact scan of every feature's sorted
// values; gain is weighted variance reduction (sum g)^2 / (sum h) form.
SplitChoice FindBestSplit(const std::vector<std::vector<double>>& x,
                          const std::vector<double>& g,
                          const std::vector<double>& h,
                          const std::vector<size_t>& indices,
                          size_t min_samples_leaf) {
  SplitChoice best;
  if (indices.size() < 2 * min_samples_leaf) return best;
  const size_t num_features = x[indices[0]].size();

  double total_g = 0.0, total_h = 0.0;
  for (size_t i : indices) {
    total_g += g[i];
    total_h += h[i];
  }
  const double parent_score = total_h > 0 ? total_g * total_g / total_h : 0.0;

  // One reusable order vector, re-sorted in place per feature (the incoming
  // permutation for feature f is feature f-1's result — kept bit-for-bit so
  // fitted trees match the pre-SIMD builds, where ties between equal feature
  // values resolve by whatever order the previous sort left behind). The
  // gathered sorted values and inclusive gradient/hessian prefix sums feed
  // the vectorised scan; the prefix sums are built by the same sequential
  // adds the old running left_g/left_h chain performed.
  std::vector<size_t> order(indices);
  const size_t n = order.size();
  std::vector<double> xv(n), pg(n), ph(n);
  for (size_t f = 0; f < num_features; ++f) {
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return x[a][f] < x[b][f]; });
    double run_g = 0.0, run_h = 0.0;
    for (size_t pos = 0; pos < n; ++pos) {
      const size_t i = order[pos];
      xv[pos] = x[i][f];
      run_g += g[i];
      run_h += h[i];
      pg[pos] = run_g;
      ph[pos] = run_h;
    }
    const simd::SplitScanBest found = simd::SplitScan(
        xv.data(), pg.data(), ph.data(), n, total_g, total_h, parent_score,
        min_samples_leaf);
    // Within a feature SplitScan keeps the lowest position among equal gains;
    // across features the strict > keeps the earliest feature — together the
    // same winner the old single fused scan produced.
    if (found.pos != ~size_t{0} && found.gain > best.gain) {
      best.found = true;
      best.gain = found.gain;
      best.feature = f;
      best.threshold = 0.5 * (xv[found.pos] + xv[found.pos + 1]);
    }
  }
  return best;
}

}  // namespace

Status RegressionTree::Fit(const std::vector<std::vector<double>>& features,
                           const std::vector<double>& targets,
                           const std::vector<double>& hessians) {
  if (features.empty()) {
    return Status::InvalidArgument("RegressionTree::Fit: no samples");
  }
  if (features.size() != targets.size()) {
    return Status::InvalidArgument(
        "RegressionTree::Fit: features/targets size mismatch");
  }
  if (!hessians.empty() && hessians.size() != targets.size()) {
    return Status::InvalidArgument(
        "RegressionTree::Fit: hessians size mismatch");
  }
  const size_t dim = features[0].size();
  for (const auto& row : features) {
    if (row.size() != dim) {
      return Status::InvalidArgument("RegressionTree::Fit: ragged features");
    }
  }
  std::vector<double> h = hessians;
  if (h.empty()) h.assign(targets.size(), 1.0);

  nodes_.clear();
  std::vector<size_t> indices(features.size());
  std::iota(indices.begin(), indices.end(), 0);
  Build(features, targets, h, &indices, 0);
  return Status::OK();
}

int RegressionTree::Build(const std::vector<std::vector<double>>& features,
                          const std::vector<double>& targets,
                          const std::vector<double>& hessians,
                          std::vector<size_t>* indices, size_t depth) {
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();

  double sum_g = 0.0, sum_h = 0.0;
  for (size_t i : *indices) {
    sum_g += targets[i];
    sum_h += hessians[i];
  }
  const double leaf_value = sum_h > 0 ? sum_g / sum_h : 0.0;
  nodes_[node_id].value = leaf_value;

  if (depth >= options_.max_depth || indices->size() < 2) return node_id;

  SplitChoice split = FindBestSplit(features, targets, hessians, *indices,
                                    options_.min_samples_leaf);
  if (!split.found || split.gain < options_.min_gain) return node_id;

  std::vector<size_t> left_idx, right_idx;
  for (size_t i : *indices) {
    (features[i][split.feature] <= split.threshold ? left_idx : right_idx)
        .push_back(i);
  }
  if (left_idx.empty() || right_idx.empty()) return node_id;

  indices->clear();
  indices->shrink_to_fit();

  nodes_[node_id].is_leaf = false;
  nodes_[node_id].feature = split.feature;
  nodes_[node_id].threshold = split.threshold;
  const int left = Build(features, targets, hessians, &left_idx, depth + 1);
  nodes_[node_id].left = left;
  const int right = Build(features, targets, hessians, &right_idx, depth + 1);
  nodes_[node_id].right = right;
  return node_id;
}

double RegressionTree::Predict(const std::vector<double>& row) const {
  ETSC_DCHECK(fitted());
  int node = 0;
  while (!nodes_[static_cast<size_t>(node)].is_leaf) {
    const Node& n = nodes_[static_cast<size_t>(node)];
    const double v = n.feature < row.size() ? row[n.feature] : 0.0;
    node = v <= n.threshold ? n.left : n.right;
  }
  return nodes_[static_cast<size_t>(node)].value;
}

void RegressionTree::SaveState(Serializer& out) const {
  out.Begin("tree");
  out.SizeT(nodes_.size());
  for (const Node& n : nodes_) {
    out.Bool(n.is_leaf);
    out.SizeT(n.feature);
    out.F64(n.threshold);
    out.I64(n.left);
    out.I64(n.right);
    out.F64(n.value);
  }
  out.End();
}

Status RegressionTree::LoadState(Deserializer& in) {
  ETSC_RETURN_NOT_OK(in.Enter("tree"));
  ETSC_ASSIGN_OR_RETURN(size_t count, in.SizeT());
  nodes_.clear();
  nodes_.reserve(std::min<size_t>(count, 1 << 20));
  for (size_t i = 0; i < count; ++i) {
    Node n;
    ETSC_ASSIGN_OR_RETURN(n.is_leaf, in.Bool());
    ETSC_ASSIGN_OR_RETURN(n.feature, in.SizeT());
    ETSC_ASSIGN_OR_RETURN(n.threshold, in.F64());
    ETSC_ASSIGN_OR_RETURN(int64_t left, in.I64());
    ETSC_ASSIGN_OR_RETURN(int64_t right, in.I64());
    n.left = static_cast<int>(left);
    n.right = static_cast<int>(right);
    ETSC_ASSIGN_OR_RETURN(n.value, in.F64());
    nodes_.push_back(n);
  }
  // Children must stay in range so Predict cannot walk out of bounds.
  const auto count_i = static_cast<int64_t>(nodes_.size());
  for (const Node& n : nodes_) {
    if (n.is_leaf) continue;
    if (n.left < 0 || n.right < 0 || n.left >= count_i || n.right >= count_i) {
      return Status::DataLoss("RegressionTree: child index out of range");
    }
  }
  return in.Leave();
}

}  // namespace etsc
