#ifndef ETSC_ML_ONE_CLASS_SVM_H_
#define ETSC_ML_ONE_CLASS_SVM_H_

#include <cstddef>
#include <vector>

#include "core/rng.h"
#include "core/serialize.h"
#include "core/status.h"

namespace etsc {

/// ν-one-class SVM with an RBF kernel (Schölkopf formulation), the novelty
/// filter TEASER applies to per-prefix probabilistic predictions.
struct OneClassSvmOptions {
  double nu = 0.05;      // upper bound on the outlier fraction
  double gamma = 0.0;    // RBF width; 0 means the "scale" heuristic
  size_t max_iters = 20000;
  size_t max_training_points = 1000;  // subsample cap (keeps the dual small)
};

class OneClassSvm {
 public:
  explicit OneClassSvm(OneClassSvmOptions options = {}) : options_(options) {}

  /// Fits the dual  min ½ αᵀKα  s.t. 0 ≤ αᵢ ≤ 1/(νn), Σαᵢ = 1  by pairwise
  /// coordinate descent (SMO-style mass transfers between pairs).
  Status Fit(const std::vector<std::vector<double>>& points, Rng* rng);

  /// Decision value f(x) = Σ αᵢ k(xᵢ, x) − ρ; >= 0 means "accepted" (inlier).
  Result<double> Decision(const std::vector<double>& point) const;

  /// Convenience: Decision(point) >= 0.
  Result<bool> Accepts(const std::vector<double>& point) const;

  bool fitted() const { return !support_vectors_.empty(); }
  double rho() const { return rho_; }
  size_t num_support_vectors() const { return support_vectors_.size(); }

  void SaveState(Serializer& out) const;
  Status LoadState(Deserializer& in);

 private:
  double Kernel(const std::vector<double>& a, const std::vector<double>& b) const;

  OneClassSvmOptions options_;
  double gamma_ = 1.0;
  double rho_ = 0.0;
  std::vector<std::vector<double>> support_vectors_;
  std::vector<double> alphas_;
};

}  // namespace etsc

#endif  // ETSC_ML_ONE_CLASS_SVM_H_
