#include "ml/chi2.h"

#include <algorithm>
#include <map>

#include "core/status.h"

namespace etsc {

std::vector<double> Chi2Scores(const std::vector<SparseVector>& rows, size_t dim,
                               const std::vector<int>& labels) {
  ETSC_CHECK(rows.size() == labels.size());
  // Class index mapping.
  std::map<int, size_t> class_index;
  for (int y : labels) class_index.emplace(y, 0);
  size_t k = 0;
  for (auto& [label, idx] : class_index) idx = k++;
  const size_t num_classes = class_index.size();

  // observed[c][f] = total feature mass of f within class c.
  std::vector<std::vector<double>> observed(num_classes,
                                            std::vector<double>(dim, 0.0));
  std::vector<double> feature_total(dim, 0.0);
  std::vector<double> class_total(num_classes, 0.0);
  double grand_total = 0.0;
  for (size_t i = 0; i < rows.size(); ++i) {
    const size_t c = class_index[labels[i]];
    for (const auto& [f, v] : rows[i].entries) {
      if (f >= dim) continue;
      observed[c][f] += v;
      feature_total[f] += v;
      class_total[c] += v;
      grand_total += v;
    }
  }

  std::vector<double> scores(dim, 0.0);
  if (grand_total <= 0.0) return scores;
  for (size_t f = 0; f < dim; ++f) {
    if (feature_total[f] <= 0.0) continue;
    double chi2 = 0.0;
    for (size_t c = 0; c < num_classes; ++c) {
      const double expected = feature_total[f] * class_total[c] / grand_total;
      if (expected <= 0.0) continue;
      const double diff = observed[c][f] - expected;
      chi2 += diff * diff / expected;
    }
    scores[f] = chi2;
  }
  return scores;
}

std::vector<size_t> Chi2Select(const std::vector<SparseVector>& rows, size_t dim,
                               const std::vector<int>& labels, double threshold) {
  const std::vector<double> scores = Chi2Scores(rows, dim, labels);
  std::vector<size_t> selected;
  for (size_t f = 0; f < dim; ++f) {
    if (scores[f] >= threshold) selected.push_back(f);
  }
  // Never select an empty set: fall back to every feature that carries any
  // mass (a fully class-balanced feature scores 0 but is still usable).
  if (selected.empty()) {
    std::vector<bool> seen(dim, false);
    for (const auto& row : rows) {
      for (const auto& [f, v] : row.entries) {
        if (f < dim && v != 0.0) seen[f] = true;
      }
    }
    for (size_t f = 0; f < dim; ++f) {
      if (seen[f]) selected.push_back(f);
    }
  }
  return selected;
}

SparseVector ProjectRow(const SparseVector& row,
                        const std::vector<size_t>& selected) {
  SparseVector out;
  for (const auto& [f, v] : row.entries) {
    const auto it = std::lower_bound(selected.begin(), selected.end(), f);
    if (it != selected.end() && *it == f) {
      out.Add(static_cast<size_t>(it - selected.begin()), v);
    }
  }
  return out;
}

std::vector<SparseVector> ProjectFeatures(const std::vector<SparseVector>& rows,
                                          const std::vector<size_t>& selected) {
  std::vector<SparseVector> out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(ProjectRow(row, selected));
  return out;
}

}  // namespace etsc
