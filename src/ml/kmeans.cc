#include "ml/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/parallel.h"
#include "core/time_series.h"

namespace etsc {

namespace {

double Sq(const std::vector<double>& a, const std::vector<double>& b) {
  return SquaredEuclidean(a, b);
}

// k-means++ seeding: first centre uniform, later centres with probability
// proportional to squared distance to the nearest chosen centre.
std::vector<std::vector<double>> SeedPlusPlus(
    const std::vector<std::vector<double>>& points, size_t k, Rng* rng) {
  std::vector<std::vector<double>> centroids;
  centroids.push_back(points[rng->Index(points.size())]);
  std::vector<double> dist2(points.size(),
                            std::numeric_limits<double>::infinity());
  while (centroids.size() < k) {
    double total = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      dist2[i] = std::min(dist2[i], Sq(points[i], centroids.back()));
      total += dist2[i];
    }
    if (total <= 0.0) {
      // All remaining points coincide with chosen centres; duplicate one.
      centroids.push_back(points[rng->Index(points.size())]);
      continue;
    }
    double r = rng->Uniform() * total;
    size_t chosen = points.size() - 1;
    for (size_t i = 0; i < points.size(); ++i) {
      r -= dist2[i];
      if (r <= 0.0) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(points[chosen]);
  }
  return centroids;
}

}  // namespace

size_t KMeansModel::Assign(const std::vector<double>& point) const {
  ETSC_DCHECK(!centroids.empty());
  size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < centroids.size(); ++c) {
    const double d = Sq(point, centroids[c]);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

std::vector<double> KMeansModel::MembershipProbabilities(
    const std::vector<double>& point) const {
  std::vector<double> probs(centroids.size(), 0.0);
  if (centroids.empty()) return probs;
  // Average-distance-based soft membership as in the ECONOMY papers: a
  // logistic of how much closer than the average this cluster is.
  std::vector<double> dist(centroids.size());
  double mean_dist = 0.0;
  for (size_t c = 0; c < centroids.size(); ++c) {
    dist[c] = std::sqrt(Sq(point, centroids[c]));
    mean_dist += dist[c];
  }
  mean_dist /= static_cast<double>(centroids.size());
  double total = 0.0;
  for (size_t c = 0; c < centroids.size(); ++c) {
    const double delta =
        mean_dist > 0.0 ? (mean_dist - dist[c]) / mean_dist : 0.0;
    probs[c] = 1.0 / (1.0 + std::exp(-6.0 * delta));
    total += probs[c];
  }
  if (total > 0.0) {
    for (double& p : probs) p /= total;
  } else {
    std::fill(probs.begin(), probs.end(), 1.0 / static_cast<double>(probs.size()));
  }
  return probs;
}

Result<KMeansModel> KMeansFit(const std::vector<std::vector<double>>& points,
                              const KMeansOptions& options, Rng* rng) {
  if (points.empty()) {
    return Status::InvalidArgument("KMeansFit: no points");
  }
  const size_t dim = points[0].size();
  for (const auto& p : points) {
    if (p.size() != dim) {
      return Status::InvalidArgument("KMeansFit: points differ in dimension");
    }
  }
  const size_t k = std::max<size_t>(1, std::min(options.num_clusters, points.size()));

  KMeansModel model;
  model.centroids = SeedPlusPlus(points, k, rng);
  model.assignments.assign(points.size(), 0);

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    // Assignment step: embarrassingly parallel, slot-per-point writes. The
    // grain amortises dispatch for small/low-dimension point sets.
    ParallelFor(
        points.size(),
        [&](size_t i) { model.assignments[i] = model.Assign(points[i]); },
        /*grain=*/64);
    // Update step.
    std::vector<std::vector<double>> sums(k, std::vector<double>(dim, 0.0));
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < points.size(); ++i) {
      const size_t c = model.assignments[i];
      ++counts[c];
      for (size_t d = 0; d < dim; ++d) sums[c][d] += points[i][d];
    }
    double movement = 0.0;
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at a random point.
        model.centroids[c] = points[rng->Index(points.size())];
        movement += 1.0;
        continue;
      }
      std::vector<double> next(dim);
      for (size_t d = 0; d < dim; ++d) {
        next[d] = sums[c][d] / static_cast<double>(counts[c]);
      }
      movement += std::sqrt(Sq(model.centroids[c], next));
      model.centroids[c] = std::move(next);
    }
    if (movement < options.tolerance) break;
  }

  // Final assignment + inertia.
  model.inertia = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    model.assignments[i] = model.Assign(points[i]);
    model.inertia += Sq(points[i], model.centroids[model.assignments[i]]);
  }
  return model;
}

void KMeansModel::SaveState(Serializer& out) const {
  out.Begin("kmeans");
  // Per-training-point assignments are fit-time artefacts; prediction only
  // needs the centroids.
  out.F64Mat(centroids);
  out.F64(inertia);
  out.End();
}

Status KMeansModel::LoadState(Deserializer& in) {
  ETSC_RETURN_NOT_OK(in.Enter("kmeans"));
  ETSC_ASSIGN_OR_RETURN(centroids, in.F64Mat());
  ETSC_ASSIGN_OR_RETURN(inertia, in.F64());
  assignments.clear();
  return in.Leave();
}

}  // namespace etsc
