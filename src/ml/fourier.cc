#include "ml/fourier.h"

#include <cmath>
#include <numbers>

#include "core/simd.h"
#include "core/status.h"

namespace etsc {

std::vector<double> DftCoefficients(const std::vector<double>& window,
                                    size_t num_coefficients, bool drop_first) {
  const size_t n = window.size();
  std::vector<double> out;
  if (n == 0 || num_coefficients == 0) return out;
  out.reserve(2 * num_coefficients);
  const size_t first = drop_first ? 1 : 0;
  const double inv_n = 1.0 / static_cast<double>(n);
  for (size_t c = first; c < first + num_coefficients; ++c) {
    double re = 0.0, im = 0.0;
    const double w = -2.0 * std::numbers::pi * static_cast<double>(c) * inv_n;
    for (size_t t = 0; t < n; ++t) {
      const double angle = w * static_cast<double>(t);
      re += window[t] * std::cos(angle);
      im += window[t] * std::sin(angle);
    }
    out.push_back(re * inv_n);
    out.push_back(im * inv_n);
  }
  return out;
}

std::vector<std::vector<double>> SlidingDft(const std::vector<double>& series,
                                            size_t window_size,
                                            size_t num_coefficients,
                                            bool drop_first) {
  std::vector<std::vector<double>> out;
  if (window_size == 0 || series.size() < window_size || num_coefficients == 0) {
    return out;
  }
  const size_t num_windows = series.size() - window_size + 1;
  out.reserve(num_windows);

  const size_t first = drop_first ? 1 : 0;
  const double inv_n = 1.0 / static_cast<double>(window_size);

  // Initial window: direct DFT (un-normalised accumulators kept for updates).
  std::vector<double> re(num_coefficients, 0.0), im(num_coefficients, 0.0);
  for (size_t k = 0; k < num_coefficients; ++k) {
    const double w =
        -2.0 * std::numbers::pi * static_cast<double>(k + first) * inv_n;
    for (size_t t = 0; t < window_size; ++t) {
      const double angle = w * static_cast<double>(t);
      re[k] += series[t] * std::cos(angle);
      im[k] += series[t] * std::sin(angle);
    }
  }
  auto emit = [&]() {
    std::vector<double> coeffs;
    coeffs.reserve(2 * num_coefficients);
    for (size_t k = 0; k < num_coefficients; ++k) {
      coeffs.push_back(re[k] * inv_n);
      coeffs.push_back(im[k] * inv_n);
    }
    out.push_back(std::move(coeffs));
  };
  emit();

  // Momentary Fourier updates: X'_k = (X_k - x_out + x_in·e^{-2πik·W/W}) ·
  // e^{2πik/W}; since e^{-2πik} = 1 the shift reduces to rotating
  // (X_k + x_in - x_out) by the per-step phasor. The phasors depend only on
  // (k, window_size), so the cos/sin tables are built once and the per-shift
  // work collapses to one RotatePhasors sweep over the coefficient arrays.
  std::vector<double> cos_t(num_coefficients), sin_t(num_coefficients);
  for (size_t k = 0; k < num_coefficients; ++k) {
    const double theta =
        2.0 * std::numbers::pi * static_cast<double>(k + first) * inv_n;
    cos_t[k] = std::cos(theta);
    sin_t[k] = std::sin(theta);
  }
  for (size_t s = 1; s < num_windows; ++s) {
    const double x_out = series[s - 1];
    const double x_in = series[s + window_size - 1];
    simd::RotatePhasors(cos_t.data(), sin_t.data(), x_in - x_out, re.data(),
                        im.data(), num_coefficients);
    emit();
  }
  return out;
}

}  // namespace etsc
