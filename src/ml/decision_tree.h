#ifndef ETSC_ML_DECISION_TREE_H_
#define ETSC_ML_DECISION_TREE_H_

#include <cstddef>
#include <vector>

#include "core/serialize.h"
#include "core/status.h"

namespace etsc {

/// Options for CART regression trees (the weak learner of GbdtClassifier).
struct RegressionTreeOptions {
  size_t max_depth = 3;
  size_t min_samples_leaf = 2;
  double min_gain = 1e-12;  // minimum variance reduction to accept a split
};

/// A CART regression tree fit by exact greedy variance-reduction splitting.
/// Supports an optional per-sample "hessian" weight so gradient boosting can
/// install Newton leaf values.
class RegressionTree {
 public:
  explicit RegressionTree(RegressionTreeOptions options = {})
      : options_(options) {}

  /// Fits the tree to (features, targets). `hessians` may be empty (all-ones)
  /// or per-sample curvature weights; leaf value = sum(target)/sum(hessian).
  Status Fit(const std::vector<std::vector<double>>& features,
             const std::vector<double>& targets,
             const std::vector<double>& hessians = {});

  /// Predicted value for one feature row.
  double Predict(const std::vector<double>& row) const;

  size_t num_nodes() const { return nodes_.size(); }
  bool fitted() const { return !nodes_.empty(); }

  void SaveState(Serializer& out) const;
  Status LoadState(Deserializer& in);

 private:
  struct Node {
    bool is_leaf = true;
    size_t feature = 0;
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    double value = 0.0;
  };

  int Build(const std::vector<std::vector<double>>& features,
            const std::vector<double>& targets,
            const std::vector<double>& hessians, std::vector<size_t>* indices,
            size_t depth);

  RegressionTreeOptions options_;
  std::vector<Node> nodes_;
};

}  // namespace etsc

#endif  // ETSC_ML_DECISION_TREE_H_
