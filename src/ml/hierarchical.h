#ifndef ETSC_ML_HIERARCHICAL_H_
#define ETSC_ML_HIERARCHICAL_H_

#include <cstddef>
#include <vector>

#include "core/status.h"

namespace etsc {

/// Linkage criteria for agglomerative clustering.
enum class Linkage {
  kSingle,    // min pairwise distance
  kComplete,  // max pairwise distance
  kAverage,   // mean pairwise distance
};

/// One merge step of the dendrogram: clusters `a` and `b` (ids) merge into a
/// new cluster with id `merged_id` at the given distance. Leaf ids are
/// 0..n-1; merged ids continue from n upward, mirroring scipy's convention.
struct MergeStep {
  size_t a = 0;
  size_t b = 0;
  size_t merged_id = 0;
  double distance = 0.0;
  std::vector<size_t> members;  // leaf indices of the merged cluster
};

/// Agglomerative hierarchical clustering over a precomputed symmetric distance
/// matrix (n×n). Returns the full merge sequence (n-1 steps). ECTS walks this
/// sequence to propagate Minimum Prediction Lengths through cluster merges.
Result<std::vector<MergeStep>> AgglomerativeCluster(
    const std::vector<std::vector<double>>& distances, Linkage linkage);

/// Cuts the dendrogram so that exactly `k` clusters remain; returns per-leaf
/// cluster labels in [0, k).
Result<std::vector<size_t>> CutDendrogram(const std::vector<MergeStep>& merges,
                                          size_t num_leaves, size_t k);

}  // namespace etsc

#endif  // ETSC_ML_HIERARCHICAL_H_
