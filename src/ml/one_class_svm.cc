#include "ml/one_class_svm.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/time_series.h"

namespace etsc {

double OneClassSvm::Kernel(const std::vector<double>& a,
                           const std::vector<double>& b) const {
  return std::exp(-gamma_ * SquaredEuclidean(a, b));
}

Status OneClassSvm::Fit(const std::vector<std::vector<double>>& points, Rng* rng) {
  if (points.empty()) return Status::InvalidArgument("OneClassSvm: no points");
  if (rng == nullptr) return Status::InvalidArgument("OneClassSvm: rng required");
  const size_t dim = points[0].size();
  for (const auto& p : points) {
    if (p.size() != dim) {
      return Status::InvalidArgument("OneClassSvm: ragged points");
    }
  }

  // Subsample when the training set exceeds the dual-size cap.
  std::vector<size_t> chosen(points.size());
  std::iota(chosen.begin(), chosen.end(), 0);
  if (points.size() > options_.max_training_points) {
    rng->Shuffle(&chosen);
    chosen.resize(options_.max_training_points);
    std::sort(chosen.begin(), chosen.end());
  }
  std::vector<std::vector<double>> x;
  x.reserve(chosen.size());
  for (size_t i : chosen) x.push_back(points[i]);
  const size_t n = x.size();

  // Gamma "scale" heuristic: 1 / (dim * variance of all components).
  if (options_.gamma > 0.0) {
    gamma_ = options_.gamma;
  } else {
    double mean = 0.0, count = 0.0;
    for (const auto& p : x) {
      for (double v : p) {
        mean += v;
        count += 1.0;
      }
    }
    mean = count > 0 ? mean / count : 0.0;
    double var = 0.0;
    for (const auto& p : x) {
      for (double v : p) var += (v - mean) * (v - mean);
    }
    var = count > 0 ? var / count : 1.0;
    gamma_ = 1.0 / (static_cast<double>(std::max<size_t>(dim, 1)) *
                    std::max(var, 1e-9));
  }

  // Kernel matrix.
  std::vector<std::vector<double>> kmat(n, std::vector<double>(n));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      const double v = Kernel(x[i], x[j]);
      kmat[i][j] = v;
      kmat[j][i] = v;
    }
  }

  const double ub = 1.0 / (options_.nu * static_cast<double>(n));
  // Feasible start: α uniform (satisfies Σα = 1, 0 ≤ α ≤ ub since ub ≥ 1/n).
  std::vector<double> alpha(n, 1.0 / static_cast<double>(n));
  // Gradient of ½αᵀKα is Kα.
  std::vector<double> grad(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double g = 0.0;
    for (size_t j = 0; j < n; ++j) g += kmat[i][j] * alpha[j];
    grad[i] = g;
  }

  // Pairwise descent: move mass δ from j to i along e_i - e_j; the optimum of
  // the 1-D quadratic is δ* = (grad_j - grad_i) / (K_ii + K_jj - 2K_ij).
  for (size_t iter = 0; iter < options_.max_iters; ++iter) {
    // Most-violating pair: min gradient among α < ub (can grow), max gradient
    // among α > 0 (can shrink).
    size_t best_i = n, best_j = n;
    double min_g = 1e300, max_g = -1e300;
    for (size_t t = 0; t < n; ++t) {
      if (alpha[t] < ub - 1e-12 && grad[t] < min_g) {
        min_g = grad[t];
        best_i = t;
      }
      if (alpha[t] > 1e-12 && grad[t] > max_g) {
        max_g = grad[t];
        best_j = t;
      }
    }
    if (best_i == n || best_j == n || best_i == best_j) break;
    if (max_g - min_g < 1e-9) break;  // KKT satisfied

    const size_t i = best_i, j = best_j;
    const double curvature =
        std::max(kmat[i][i] + kmat[j][j] - 2.0 * kmat[i][j], 1e-12);
    double delta = (grad[j] - grad[i]) / curvature;
    delta = std::min(delta, ub - alpha[i]);
    delta = std::min(delta, alpha[j]);
    if (delta <= 0.0) break;
    alpha[i] += delta;
    alpha[j] -= delta;
    for (size_t t = 0; t < n; ++t) {
      grad[t] += delta * (kmat[t][i] - kmat[t][j]);
    }
  }

  // Keep support vectors; ρ = mean decision value over margin SVs
  // (0 < α < ub), falling back to all SVs.
  support_vectors_.clear();
  alphas_.clear();
  std::vector<double> margin_decisions;
  std::vector<double> all_decisions;
  for (size_t i = 0; i < n; ++i) {
    if (alpha[i] > 1e-10) {
      support_vectors_.push_back(x[i]);
      alphas_.push_back(alpha[i]);
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (alpha[i] <= 1e-10) continue;
    double f = 0.0;
    for (size_t j = 0; j < n; ++j) {
      if (alpha[j] > 1e-10) f += alpha[j] * kmat[i][j];
    }
    all_decisions.push_back(f);
    if (alpha[i] < ub - 1e-10) margin_decisions.push_back(f);
  }
  const auto& pool = margin_decisions.empty() ? all_decisions : margin_decisions;
  rho_ = pool.empty()
             ? 0.0
             : std::accumulate(pool.begin(), pool.end(), 0.0) /
                   static_cast<double>(pool.size());
  return Status::OK();
}

Result<double> OneClassSvm::Decision(const std::vector<double>& point) const {
  if (!fitted()) return Status::FailedPrecondition("OneClassSvm: not fitted");
  double f = 0.0;
  for (size_t i = 0; i < support_vectors_.size(); ++i) {
    f += alphas_[i] * Kernel(support_vectors_[i], point);
  }
  return f - rho_;
}

Result<bool> OneClassSvm::Accepts(const std::vector<double>& point) const {
  ETSC_ASSIGN_OR_RETURN(double decision, Decision(point));
  return decision >= 0.0;
}

void OneClassSvm::SaveState(Serializer& out) const {
  out.Begin("ocsvm");
  out.F64(gamma_);
  out.F64(rho_);
  out.F64Mat(support_vectors_);
  out.F64Vec(alphas_);
  out.End();
}

Status OneClassSvm::LoadState(Deserializer& in) {
  ETSC_RETURN_NOT_OK(in.Enter("ocsvm"));
  ETSC_ASSIGN_OR_RETURN(gamma_, in.F64());
  ETSC_ASSIGN_OR_RETURN(rho_, in.F64());
  ETSC_ASSIGN_OR_RETURN(support_vectors_, in.F64Mat());
  ETSC_ASSIGN_OR_RETURN(alphas_, in.F64Vec());
  if (alphas_.size() != support_vectors_.size()) {
    return Status::DataLoss("OneClassSvm: inconsistent fitted state");
  }
  return in.Leave();
}

}  // namespace etsc
