#ifndef ETSC_ML_GBDT_H_
#define ETSC_ML_GBDT_H_

#include <cstddef>
#include <vector>

#include "core/rng.h"
#include "core/serialize.h"
#include "core/status.h"
#include "ml/decision_tree.h"

namespace etsc {

/// Configuration for gradient-boosted trees (softmax objective). Stands in for
/// XGBoost as ECONOMY-K's per-time-point base classifier.
struct GbdtOptions {
  size_t num_rounds = 40;
  double learning_rate = 0.2;
  double subsample = 1.0;  // row subsampling fraction per round
  RegressionTreeOptions tree;
};

/// Multiclass gradient boosting with Newton leaf values: per round, one
/// regression tree per class fits the softmax gradient (y_k - p_k) with
/// hessian p_k (1 - p_k).
class GbdtClassifier {
 public:
  explicit GbdtClassifier(GbdtOptions options = {}) : options_(options) {}

  /// Trains on a dense feature matrix. `rng` drives row subsampling and may be
  /// null when subsample == 1.0.
  Status Fit(const std::vector<std::vector<double>>& features,
             const std::vector<int>& labels, Rng* rng = nullptr);

  /// Class probabilities ordered as class_labels().
  Result<std::vector<double>> PredictProba(const std::vector<double>& row) const;

  /// Most probable class label.
  Result<int> Predict(const std::vector<double>& row) const;

  const std::vector<int>& class_labels() const { return class_labels_; }
  bool fitted() const { return !class_labels_.empty(); }

  void SaveState(Serializer& out) const;
  Status LoadState(Deserializer& in);

 private:
  GbdtOptions options_;
  std::vector<int> class_labels_;
  std::vector<double> base_scores_;                 // per class log-prior
  std::vector<std::vector<RegressionTree>> trees_;  // [round][class]
};

}  // namespace etsc

#endif  // ETSC_ML_GBDT_H_
