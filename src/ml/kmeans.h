#ifndef ETSC_ML_KMEANS_H_
#define ETSC_ML_KMEANS_H_

#include <cstddef>
#include <vector>

#include "core/rng.h"
#include "core/serialize.h"
#include "core/status.h"

namespace etsc {

/// Configuration for Lloyd's algorithm with k-means++ seeding.
struct KMeansOptions {
  size_t num_clusters = 3;
  size_t max_iterations = 100;
  double tolerance = 1e-6;  // stop when centroid movement falls below this
};

/// Result of a k-means fit over fixed-length feature vectors.
struct KMeansModel {
  std::vector<std::vector<double>> centroids;  // num_clusters × dim
  std::vector<size_t> assignments;             // per training point
  double inertia = 0.0;                        // sum of squared distances

  /// Index of the nearest centroid for `point`.
  size_t Assign(const std::vector<double>& point) const;

  /// Softmax-style membership probabilities over clusters computed from
  /// negative distances; used by ECONOMY-K's cluster membership P(g_k | X).
  std::vector<double> MembershipProbabilities(const std::vector<double>& point) const;

  /// Persists the centroids and inertia; assignments are fit-time artefacts
  /// and come back empty.
  void SaveState(Serializer& out) const;
  Status LoadState(Deserializer& in);
};

/// Runs k-means++ then Lloyd iterations. All points must share one dimension
/// and there must be at least one point; `k` is clamped to the point count.
Result<KMeansModel> KMeansFit(const std::vector<std::vector<double>>& points,
                              const KMeansOptions& options, Rng* rng);

}  // namespace etsc

#endif  // ETSC_ML_KMEANS_H_
