#include "ml/sfa.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "ml/fourier.h"

namespace etsc {

double LabelEntropy(const std::vector<int>& labels) {
  if (labels.empty()) return 0.0;
  std::map<int, size_t> counts;
  for (int y : labels) ++counts[y];
  double entropy = 0.0;
  const double n = static_cast<double>(labels.size());
  for (const auto& [label, count] : counts) {
    const double p = static_cast<double>(count) / n;
    entropy -= p * std::log(p);
  }
  return entropy;
}

namespace {

// Entropy of labels in data[begin, end).
double RangeEntropy(const std::vector<std::pair<double, int>>& data,
                    size_t begin, size_t end) {
  std::map<int, size_t> counts;
  for (size_t i = begin; i < end; ++i) ++counts[data[i].second];
  double entropy = 0.0;
  const double n = static_cast<double>(end - begin);
  for (const auto& [label, count] : counts) {
    const double p = static_cast<double>(count) / n;
    entropy -= p * std::log(p);
  }
  return entropy;
}

// Finds the single best IG split of data[begin, end); returns the split index
// (first element of the right part) or begin when no valid split exists.
size_t BestBinarySplit(const std::vector<std::pair<double, int>>& data,
                       size_t begin, size_t end) {
  const double total = static_cast<double>(end - begin);
  const double parent = RangeEntropy(data, begin, end);
  double best_gain = 1e-12;
  size_t best_split = begin;
  std::map<int, size_t> left_counts;
  std::map<int, size_t> right_counts;
  for (size_t i = begin; i < end; ++i) ++right_counts[data[i].second];

  auto entropy_of = [](const std::map<int, size_t>& counts, double n) {
    double e = 0.0;
    for (const auto& [label, c] : counts) {
      if (c == 0) continue;
      const double p = static_cast<double>(c) / n;
      e -= p * std::log(p);
    }
    return e;
  };

  for (size_t i = begin; i + 1 < end; ++i) {
    ++left_counts[data[i].second];
    auto it = right_counts.find(data[i].second);
    --it->second;
    // Can only split between distinct values.
    if (data[i].first == data[i + 1].first) continue;
    const double n_left = static_cast<double>(i + 1 - begin);
    const double n_right = total - n_left;
    const double gain = parent - (n_left / total) * entropy_of(left_counts, n_left) -
                        (n_right / total) * entropy_of(right_counts, n_right);
    if (gain > best_gain) {
      best_gain = gain;
      best_split = i + 1;
    }
  }
  return best_split;
}

}  // namespace

std::vector<double> EquiDepthBins(std::vector<double> values, size_t num_bins) {
  std::vector<double> bounds;
  if (num_bins < 2 || values.empty()) return bounds;
  std::sort(values.begin(), values.end());
  for (size_t b = 1; b < num_bins; ++b) {
    const size_t idx = std::min(values.size() - 1, b * values.size() / num_bins);
    bounds.push_back(values[idx]);
  }
  // Boundaries must strictly increase for binary search; nudge duplicates.
  for (size_t i = 1; i < bounds.size(); ++i) {
    if (bounds[i] <= bounds[i - 1]) {
      bounds[i] = std::nextafter(bounds[i - 1], 1e300);
    }
  }
  return bounds;
}

std::vector<double> InformationGainBins(std::vector<std::pair<double, int>> data,
                                        size_t num_bins) {
  std::vector<double> bounds;
  if (num_bins < 2 || data.size() < 2) return bounds;
  std::sort(data.begin(), data.end());

  // Greedy recursive splitting: repeatedly split the segment whose best split
  // yields the highest gain until we have num_bins segments.
  struct Segment {
    size_t begin, end;
  };
  std::vector<Segment> segments{{0, data.size()}};
  while (segments.size() < num_bins) {
    bool split_done = false;
    size_t best_seg = 0, best_at = 0;
    double best_len = 0;  // prefer splitting larger segments on gain ties
    for (size_t s = 0; s < segments.size(); ++s) {
      const auto& seg = segments[s];
      if (seg.end - seg.begin < 2) continue;
      const size_t at = BestBinarySplit(data, seg.begin, seg.end);
      if (at == seg.begin) continue;
      const double len = static_cast<double>(seg.end - seg.begin);
      if (!split_done || len > best_len) {
        split_done = true;
        best_seg = s;
        best_at = at;
        best_len = len;
      }
    }
    if (!split_done) break;
    Segment right{best_at, segments[best_seg].end};
    segments[best_seg].end = best_at;
    segments.push_back(right);
  }

  for (const auto& seg : segments) {
    if (seg.begin > 0) {
      bounds.push_back(0.5 * (data[seg.begin - 1].first + data[seg.begin].first));
    }
  }
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

  // Pad with equi-depth boundaries if IG produced too few splits.
  if (bounds.size() + 1 < num_bins) {
    std::vector<double> values;
    values.reserve(data.size());
    for (const auto& [v, y] : data) values.push_back(v);
    for (double b : EquiDepthBins(std::move(values), num_bins)) {
      if (bounds.size() + 1 >= num_bins) break;
      if (std::find(bounds.begin(), bounds.end(), b) == bounds.end()) {
        bounds.push_back(b);
      }
    }
    std::sort(bounds.begin(), bounds.end());
  }
  if (bounds.size() > num_bins - 1) bounds.resize(num_bins - 1);
  return bounds;
}

Status Sfa::Fit(const std::vector<std::vector<double>>& windows,
                const std::vector<int>& labels) {
  if (windows.empty()) return Status::InvalidArgument("Sfa::Fit: no windows");
  const bool supervised = options_.binning == SfaBinning::kInformationGain;
  if (supervised && labels.size() != windows.size()) {
    return Status::InvalidArgument(
        "Sfa::Fit: information-gain binning needs one label per window");
  }
  if (options_.alphabet_size < 2 || options_.alphabet_size > 256) {
    return Status::InvalidArgument("Sfa::Fit: alphabet_size out of range");
  }
  bits_per_symbol_ = 1;
  while ((1u << bits_per_symbol_) < options_.alphabet_size) ++bits_per_symbol_;
  if (bits_per_symbol_ * options_.word_length > 63) {
    return Status::InvalidArgument("Sfa::Fit: word does not fit in 64 bits");
  }

  // Approximate every training window.
  std::vector<std::vector<double>> approx(windows.size());
  for (size_t i = 0; i < windows.size(); ++i) {
    approx[i] = Approximate(windows[i]);
  }

  bins_.assign(options_.word_length, {});
  for (size_t pos = 0; pos < options_.word_length; ++pos) {
    if (supervised) {
      std::vector<std::pair<double, int>> data;
      data.reserve(windows.size());
      for (size_t i = 0; i < windows.size(); ++i) {
        data.emplace_back(approx[i][pos], labels[i]);
      }
      bins_[pos] = InformationGainBins(std::move(data), options_.alphabet_size);
    } else {
      std::vector<double> values;
      values.reserve(windows.size());
      for (size_t i = 0; i < windows.size(); ++i) values.push_back(approx[i][pos]);
      bins_[pos] = EquiDepthBins(std::move(values), options_.alphabet_size);
    }
  }
  return Status::OK();
}

std::vector<double> Sfa::Approximate(const std::vector<double>& window) const {
  // word_length real values = ceil(word_length / 2) complex coefficients.
  const size_t num_coeffs = (options_.word_length + 1) / 2;
  std::vector<double> coeffs =
      DftCoefficients(window, num_coeffs, options_.norm_mean);
  coeffs.resize(options_.word_length, 0.0);
  return coeffs;
}

uint64_t Sfa::WordFromApproximation(const std::vector<double>& approx) const {
  ETSC_DCHECK(fitted());
  uint64_t word = 0;
  for (size_t pos = 0; pos < options_.word_length; ++pos) {
    const double v = pos < approx.size() ? approx[pos] : 0.0;
    const auto& bounds = bins_[pos];
    const size_t symbol = static_cast<size_t>(
        std::upper_bound(bounds.begin(), bounds.end(), v) - bounds.begin());
    word |= static_cast<uint64_t>(symbol) << (pos * bits_per_symbol_);
  }
  return word;
}

uint64_t Sfa::Word(const std::vector<double>& window) const {
  return WordFromApproximation(Approximate(window));
}

void Sfa::SaveState(Serializer& out) const {
  out.Begin("sfa");
  // The transform reads word_length/norm_mean at predict time, so the options
  // travel with the fitted boundaries.
  out.SizeT(options_.word_length);
  out.SizeT(options_.alphabet_size);
  out.Bool(options_.norm_mean);
  out.U8(static_cast<uint8_t>(options_.binning));
  out.SizeT(bits_per_symbol_);
  out.F64Mat(bins_);
  out.End();
}

Status Sfa::LoadState(Deserializer& in) {
  ETSC_RETURN_NOT_OK(in.Enter("sfa"));
  ETSC_ASSIGN_OR_RETURN(options_.word_length, in.SizeT());
  ETSC_ASSIGN_OR_RETURN(options_.alphabet_size, in.SizeT());
  ETSC_ASSIGN_OR_RETURN(options_.norm_mean, in.Bool());
  ETSC_ASSIGN_OR_RETURN(uint8_t binning, in.U8());
  if (binning > static_cast<uint8_t>(SfaBinning::kInformationGain)) {
    return Status::DataLoss("Sfa: unknown binning mode");
  }
  options_.binning = static_cast<SfaBinning>(binning);
  ETSC_ASSIGN_OR_RETURN(bits_per_symbol_, in.SizeT());
  ETSC_ASSIGN_OR_RETURN(bins_, in.F64Mat());
  if (bins_.size() != options_.word_length ||
      bits_per_symbol_ * options_.word_length > 63) {
    return Status::DataLoss("Sfa: inconsistent fitted state");
  }
  return in.Leave();
}

}  // namespace etsc
