#include "ml/nn/layers.h"

#include <algorithm>
#include <cmath>

#include "core/status.h"

namespace etsc::nn {

// ---------------------------------------------------------------- Conv1D

Conv1D::Conv1D(size_t in_channels, size_t out_channels, size_t kernel_size,
               Rng* rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_size_(kernel_size),
      weights_(in_channels * out_channels * kernel_size),
      bias_(out_channels) {
  weights_.GlorotInit(in_channels * kernel_size, out_channels, rng);
}

Batch Conv1D::Forward(const Batch& input) {
  input_ = input;
  Batch output(input.size());
  const int pad = static_cast<int>(kernel_size_ - 1) / 2;
  for (size_t b = 0; b < input.size(); ++b) {
    const size_t time = input[b].empty() ? 0 : input[b][0].size();
    output[b] = MakeMap(out_channels_, time);
    for (size_t oc = 0; oc < out_channels_; ++oc) {
      for (size_t t = 0; t < time; ++t) {
        double sum = bias_.value[oc];
        for (size_t ic = 0; ic < in_channels_; ++ic) {
          for (size_t k = 0; k < kernel_size_; ++k) {
            const int src = static_cast<int>(t) + static_cast<int>(k) - pad;
            if (src < 0 || src >= static_cast<int>(time)) continue;
            sum += W(oc, ic, k) * input[b][ic][static_cast<size_t>(src)];
          }
        }
        output[b][oc][t] = sum;
      }
    }
  }
  return output;
}

Batch Conv1D::Backward(const Batch& grad_out) {
  Batch grad_in(input_.size());
  const int pad = static_cast<int>(kernel_size_ - 1) / 2;
  for (size_t b = 0; b < input_.size(); ++b) {
    const size_t time = input_[b].empty() ? 0 : input_[b][0].size();
    grad_in[b] = MakeMap(in_channels_, time);
    for (size_t oc = 0; oc < out_channels_; ++oc) {
      for (size_t t = 0; t < time; ++t) {
        const double g = grad_out[b][oc][t];
        if (g == 0.0) continue;
        bias_.grad[oc] += g;
        for (size_t ic = 0; ic < in_channels_; ++ic) {
          for (size_t k = 0; k < kernel_size_; ++k) {
            const int src = static_cast<int>(t) + static_cast<int>(k) - pad;
            if (src < 0 || src >= static_cast<int>(time)) continue;
            dW(oc, ic, k) += g * input_[b][ic][static_cast<size_t>(src)];
            grad_in[b][ic][static_cast<size_t>(src)] += g * W(oc, ic, k);
          }
        }
      }
    }
  }
  return grad_in;
}

// ------------------------------------------------------------ BatchNorm1D

BatchNorm1D::BatchNorm1D(size_t channels, double momentum, double eps)
    : channels_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_(channels),
      beta_(channels),
      running_mean_(channels, 0.0),
      running_var_(channels, 1.0) {
  std::fill(gamma_.value.begin(), gamma_.value.end(), 1.0);
}

Batch BatchNorm1D::Forward(const Batch& input, bool training) {
  Batch output(input.size());
  if (input.empty()) return output;

  std::vector<double> mean(channels_, 0.0), var(channels_, 0.0);
  if (training) {
    size_t count = 0;
    for (const auto& fm : input) {
      for (size_t c = 0; c < channels_; ++c) {
        for (double v : fm[c]) mean[c] += v;
      }
      count += fm.empty() ? 0 : fm[0].size();
    }
    for (size_t c = 0; c < channels_; ++c) {
      mean[c] /= std::max<size_t>(count, 1);
    }
    for (const auto& fm : input) {
      for (size_t c = 0; c < channels_; ++c) {
        for (double v : fm[c]) var[c] += (v - mean[c]) * (v - mean[c]);
      }
    }
    for (size_t c = 0; c < channels_; ++c) {
      var[c] /= std::max<size_t>(count, 1);
      running_mean_[c] = momentum_ * running_mean_[c] + (1 - momentum_) * mean[c];
      running_var_[c] = momentum_ * running_var_[c] + (1 - momentum_) * var[c];
    }
  } else {
    mean = running_mean_;
    var = running_var_;
  }

  batch_mean_ = mean;
  batch_inv_std_.assign(channels_, 0.0);
  for (size_t c = 0; c < channels_; ++c) {
    batch_inv_std_[c] = 1.0 / std::sqrt(var[c] + eps_);
  }

  normalized_.assign(input.size(), {});
  for (size_t b = 0; b < input.size(); ++b) {
    const size_t time = input[b].empty() ? 0 : input[b][0].size();
    normalized_[b] = MakeMap(channels_, time);
    output[b] = MakeMap(channels_, time);
    for (size_t c = 0; c < channels_; ++c) {
      for (size_t t = 0; t < time; ++t) {
        const double norm = (input[b][c][t] - mean[c]) * batch_inv_std_[c];
        normalized_[b][c][t] = norm;
        output[b][c][t] = gamma_.value[c] * norm + beta_.value[c];
      }
    }
  }
  return output;
}

void BatchNorm1D::SaveRunningStats(Serializer& out) const {
  out.F64Vec(running_mean_);
  out.F64Vec(running_var_);
}

Status BatchNorm1D::LoadRunningStats(Deserializer& in) {
  ETSC_ASSIGN_OR_RETURN(running_mean_, in.F64Vec());
  ETSC_ASSIGN_OR_RETURN(running_var_, in.F64Vec());
  if (running_mean_.size() != channels_ || running_var_.size() != channels_) {
    return Status::DataLoss("BatchNorm1D: running statistics size mismatch");
  }
  return Status::OK();
}

Batch BatchNorm1D::Backward(const Batch& grad_out) {
  // Standard batch-norm backward over N = batch*time elements per channel.
  Batch grad_in(grad_out.size());
  size_t count = 0;
  for (const auto& fm : grad_out) count += fm.empty() ? 0 : fm[0].size();
  const double n = static_cast<double>(std::max<size_t>(count, 1));

  std::vector<double> sum_dy(channels_, 0.0), sum_dy_xhat(channels_, 0.0);
  for (size_t b = 0; b < grad_out.size(); ++b) {
    for (size_t c = 0; c < channels_; ++c) {
      for (size_t t = 0; t < grad_out[b][c].size(); ++t) {
        sum_dy[c] += grad_out[b][c][t];
        sum_dy_xhat[c] += grad_out[b][c][t] * normalized_[b][c][t];
      }
    }
  }
  for (size_t c = 0; c < channels_; ++c) {
    beta_.grad[c] += sum_dy[c];
    gamma_.grad[c] += sum_dy_xhat[c];
  }
  for (size_t b = 0; b < grad_out.size(); ++b) {
    const size_t time = grad_out[b].empty() ? 0 : grad_out[b][0].size();
    grad_in[b] = MakeMap(channels_, time);
    for (size_t c = 0; c < channels_; ++c) {
      const double scale = gamma_.value[c] * batch_inv_std_[c];
      for (size_t t = 0; t < time; ++t) {
        grad_in[b][c][t] =
            scale * (grad_out[b][c][t] - sum_dy[c] / n -
                     normalized_[b][c][t] * sum_dy_xhat[c] / n);
      }
    }
  }
  return grad_in;
}

// -------------------------------------------------------------------- ReLU

Batch ReLU::Forward(const Batch& input) {
  mask_ = input;
  Batch output = input;
  for (size_t b = 0; b < output.size(); ++b) {
    for (auto& channel : output[b]) {
      for (double& v : channel) v = std::max(v, 0.0);
    }
  }
  return output;
}

Batch ReLU::Backward(const Batch& grad_out) {
  Batch grad_in = grad_out;
  for (size_t b = 0; b < grad_in.size(); ++b) {
    for (size_t c = 0; c < grad_in[b].size(); ++c) {
      for (size_t t = 0; t < grad_in[b][c].size(); ++t) {
        if (mask_[b][c][t] <= 0.0) grad_in[b][c][t] = 0.0;
      }
    }
  }
  return grad_in;
}

// ------------------------------------------------------------ SqueezeExcite

SqueezeExcite::SqueezeExcite(size_t channels, size_t reduction, Rng* rng)
    : channels_(channels),
      hidden_(std::max<size_t>(1, channels / std::max<size_t>(reduction, 1))),
      w1_(channels_ * hidden_),
      b1_(hidden_),
      w2_(hidden_ * channels_),
      b2_(channels_) {
  w1_.GlorotInit(channels_, hidden_, rng);
  w2_.GlorotInit(hidden_, channels_, rng);
}

Batch SqueezeExcite::Forward(const Batch& input) {
  input_ = input;
  const size_t n = input.size();
  z_.assign(n, std::vector<double>(channels_, 0.0));
  h_.assign(n, std::vector<double>(hidden_, 0.0));
  s_.assign(n, std::vector<double>(channels_, 0.0));
  Batch output(n);
  for (size_t b = 0; b < n; ++b) {
    const size_t time = input[b].empty() ? 0 : input[b][0].size();
    // Squeeze: global average per channel.
    for (size_t c = 0; c < channels_; ++c) {
      double sum = 0.0;
      for (double v : input[b][c]) sum += v;
      z_[b][c] = time > 0 ? sum / static_cast<double>(time) : 0.0;
    }
    // Excite: c -> hidden (ReLU) -> c (sigmoid).
    for (size_t j = 0; j < hidden_; ++j) {
      double sum = b1_.value[j];
      for (size_t c = 0; c < channels_; ++c) {
        sum += w1_.value[j * channels_ + c] * z_[b][c];
      }
      h_[b][j] = std::max(sum, 0.0);
    }
    for (size_t c = 0; c < channels_; ++c) {
      double sum = b2_.value[c];
      for (size_t j = 0; j < hidden_; ++j) {
        sum += w2_.value[c * hidden_ + j] * h_[b][j];
      }
      s_[b][c] = 1.0 / (1.0 + std::exp(-sum));
    }
    // Scale.
    output[b] = MakeMap(channels_, time);
    for (size_t c = 0; c < channels_; ++c) {
      for (size_t t = 0; t < time; ++t) {
        output[b][c][t] = input[b][c][t] * s_[b][c];
      }
    }
  }
  return output;
}

Batch SqueezeExcite::Backward(const Batch& grad_out) {
  const size_t n = grad_out.size();
  Batch grad_in(n);
  for (size_t b = 0; b < n; ++b) {
    const size_t time = grad_out[b].empty() ? 0 : grad_out[b][0].size();
    grad_in[b] = MakeMap(channels_, time);
    // d s[c] and the pass-through term.
    std::vector<double> ds(channels_, 0.0);
    for (size_t c = 0; c < channels_; ++c) {
      for (size_t t = 0; t < time; ++t) {
        grad_in[b][c][t] = grad_out[b][c][t] * s_[b][c];
        ds[c] += grad_out[b][c][t] * input_[b][c][t];
      }
    }
    // Through the sigmoid.
    std::vector<double> dpre2(channels_);
    for (size_t c = 0; c < channels_; ++c) {
      dpre2[c] = ds[c] * s_[b][c] * (1.0 - s_[b][c]);
      b2_.grad[c] += dpre2[c];
    }
    // Through the second dense into h.
    std::vector<double> dh(hidden_, 0.0);
    for (size_t c = 0; c < channels_; ++c) {
      for (size_t j = 0; j < hidden_; ++j) {
        w2_.grad[c * hidden_ + j] += dpre2[c] * h_[b][j];
        dh[j] += dpre2[c] * w2_.value[c * hidden_ + j];
      }
    }
    // Through the ReLU and first dense into z.
    std::vector<double> dz(channels_, 0.0);
    for (size_t j = 0; j < hidden_; ++j) {
      if (h_[b][j] <= 0.0) continue;
      b1_.grad[j] += dh[j];
      for (size_t c = 0; c < channels_; ++c) {
        w1_.grad[j * channels_ + c] += dh[j] * z_[b][c];
        dz[c] += dh[j] * w1_.value[j * channels_ + c];
      }
    }
    // Through the average pooling back into the input.
    if (time > 0) {
      for (size_t c = 0; c < channels_; ++c) {
        const double spread = dz[c] / static_cast<double>(time);
        for (size_t t = 0; t < time; ++t) grad_in[b][c][t] += spread;
      }
    }
  }
  return grad_in;
}

// ---------------------------------------------------------- GlobalAvgPool

std::vector<std::vector<double>> GlobalAvgPool::Forward(const Batch& input) {
  std::vector<std::vector<double>> output(input.size());
  time_.assign(input.size(), 0);
  channels_ = input.empty() ? 0 : input[0].size();
  for (size_t b = 0; b < input.size(); ++b) {
    const size_t time = input[b].empty() ? 0 : input[b][0].size();
    time_[b] = time;
    output[b].assign(channels_, 0.0);
    for (size_t c = 0; c < channels_; ++c) {
      double sum = 0.0;
      for (double v : input[b][c]) sum += v;
      output[b][c] = time > 0 ? sum / static_cast<double>(time) : 0.0;
    }
  }
  return output;
}

Batch GlobalAvgPool::Backward(const std::vector<std::vector<double>>& grad_out) {
  Batch grad_in(grad_out.size());
  for (size_t b = 0; b < grad_out.size(); ++b) {
    grad_in[b] = MakeMap(channels_, time_[b]);
    if (time_[b] == 0) continue;
    for (size_t c = 0; c < channels_; ++c) {
      const double spread = grad_out[b][c] / static_cast<double>(time_[b]);
      for (size_t t = 0; t < time_[b]; ++t) grad_in[b][c][t] = spread;
    }
  }
  return grad_in;
}

// -------------------------------------------------------------------- Dense

Dense::Dense(size_t in_dim, size_t out_dim, Rng* rng)
    : in_dim_(in_dim), out_dim_(out_dim), weights_(in_dim * out_dim),
      bias_(out_dim) {
  weights_.GlorotInit(in_dim, out_dim, rng);
}

std::vector<std::vector<double>> Dense::Forward(
    const std::vector<std::vector<double>>& input) {
  input_ = input;
  std::vector<std::vector<double>> output(input.size(),
                                          std::vector<double>(out_dim_, 0.0));
  for (size_t b = 0; b < input.size(); ++b) {
    for (size_t o = 0; o < out_dim_; ++o) {
      double sum = bias_.value[o];
      for (size_t i = 0; i < in_dim_; ++i) {
        sum += weights_.value[o * in_dim_ + i] * input[b][i];
      }
      output[b][o] = sum;
    }
  }
  return output;
}

std::vector<std::vector<double>> Dense::Backward(
    const std::vector<std::vector<double>>& grad_out) {
  std::vector<std::vector<double>> grad_in(grad_out.size(),
                                           std::vector<double>(in_dim_, 0.0));
  for (size_t b = 0; b < grad_out.size(); ++b) {
    for (size_t o = 0; o < out_dim_; ++o) {
      const double g = grad_out[b][o];
      if (g == 0.0) continue;
      bias_.grad[o] += g;
      for (size_t i = 0; i < in_dim_; ++i) {
        weights_.grad[o * in_dim_ + i] += g * input_[b][i];
        grad_in[b][i] += g * weights_.value[o * in_dim_ + i];
      }
    }
  }
  return grad_in;
}

// ------------------------------------------------------------------ Dropout

std::vector<std::vector<double>> Dropout::Forward(
    const std::vector<std::vector<double>>& input, bool training, Rng* rng) {
  if (!training || rate_ <= 0.0) {
    mask_.clear();
    return input;
  }
  const double keep = 1.0 - rate_;
  mask_.assign(input.size(), {});
  std::vector<std::vector<double>> output = input;
  for (size_t b = 0; b < input.size(); ++b) {
    mask_[b].assign(input[b].size(), 0.0);
    for (size_t i = 0; i < input[b].size(); ++i) {
      if (rng->Uniform() < keep) {
        mask_[b][i] = 1.0 / keep;
      }
      output[b][i] = input[b][i] * mask_[b][i];
    }
  }
  return output;
}

std::vector<std::vector<double>> Dropout::Backward(
    const std::vector<std::vector<double>>& grad_out) {
  if (mask_.empty()) return grad_out;
  std::vector<std::vector<double>> grad_in = grad_out;
  for (size_t b = 0; b < grad_in.size(); ++b) {
    for (size_t i = 0; i < grad_in[b].size(); ++i) {
      grad_in[b][i] *= mask_[b][i];
    }
  }
  return grad_in;
}

// ------------------------------------------------- SoftmaxCrossEntropy

std::vector<std::vector<double>> SoftmaxCrossEntropy::Probabilities(
    const std::vector<std::vector<double>>& logits) {
  std::vector<std::vector<double>> probs = logits;
  for (auto& row : probs) {
    const double max_logit = *std::max_element(row.begin(), row.end());
    double total = 0.0;
    for (double& v : row) {
      v = std::exp(v - max_logit);
      total += v;
    }
    for (double& v : row) v /= total;
  }
  return probs;
}

double SoftmaxCrossEntropy::LossAndGrad(
    const std::vector<std::vector<double>>& logits,
    const std::vector<size_t>& targets,
    std::vector<std::vector<double>>* grad) {
  ETSC_CHECK(logits.size() == targets.size());
  const auto probs = Probabilities(logits);
  const double inv_n = 1.0 / static_cast<double>(std::max<size_t>(1, logits.size()));
  double loss = 0.0;
  *grad = probs;
  for (size_t b = 0; b < logits.size(); ++b) {
    loss -= std::log(std::max(probs[b][targets[b]], 1e-12));
    (*grad)[b][targets[b]] -= 1.0;
    for (double& g : (*grad)[b]) g *= inv_n;
  }
  return loss * inv_n;
}

// --------------------------------------------------------------------- Adam

void Adam::Register(const std::vector<Param*>& params) {
  for (Param* p : params) {
    params_.push_back(p);
    m_.emplace_back(p->value.size(), 0.0);
    v_.emplace_back(p->value.size(), 0.0);
  }
}

void Adam::Step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (size_t p = 0; p < params_.size(); ++p) {
    auto& value = params_[p]->value;
    auto& grad = params_[p]->grad;
    for (size_t i = 0; i < value.size(); ++i) {
      m_[p][i] = beta1_ * m_[p][i] + (1 - beta1_) * grad[i];
      v_[p][i] = beta2_ * v_[p][i] + (1 - beta2_) * grad[i] * grad[i];
      const double mhat = m_[p][i] / bc1;
      const double vhat = v_[p][i] / bc2;
      value[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

void Adam::ZeroGrad() {
  for (Param* p : params_) p->ZeroGrad();
}

}  // namespace etsc::nn
