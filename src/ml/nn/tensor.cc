#include "ml/nn/tensor.h"

#include <cmath>

namespace etsc::nn {

void Param::GlorotInit(size_t fan_in, size_t fan_out, Rng* rng) {
  const double limit =
      std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (double& v : value) v = rng->Uniform(-limit, limit);
  ZeroGrad();
}

FeatureMap MakeMap(size_t channels, size_t time) {
  return FeatureMap(channels, std::vector<double>(time, 0.0));
}

}  // namespace etsc::nn
