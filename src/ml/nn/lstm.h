#ifndef ETSC_ML_NN_LSTM_H_
#define ETSC_ML_NN_LSTM_H_

#include <cstddef>
#include <vector>

#include "core/rng.h"
#include "ml/nn/tensor.h"

namespace etsc::nn {

/// Single-layer LSTM that consumes a sequence (steps × input_dim per sample)
/// and emits the final hidden state. This is the recurrent branch of
/// MLSTM-FCN, which feeds the *dimension-shuffled* series (one step per
/// variable, each step a vector over time) into the LSTM.
class Lstm {
 public:
  Lstm(size_t input_dim, size_t hidden_dim, Rng* rng);

  /// input[b] is a sequence: steps × input_dim. Returns hidden states
  /// (samples × hidden_dim) after the last step.
  std::vector<std::vector<double>> Forward(
      const std::vector<std::vector<std::vector<double>>>& input);

  /// grad_out: samples × hidden_dim gradient of the final hidden state.
  /// Returns gradient w.r.t. the input sequences.
  std::vector<std::vector<std::vector<double>>> Backward(
      const std::vector<std::vector<double>>& grad_out);

  std::vector<Param*> Params() { return {&w_, &u_, &b_}; }

  size_t hidden_dim() const { return hidden_dim_; }

 private:
  struct StepCache {
    std::vector<double> input;        // x_t
    std::vector<double> i, f, g, o;   // gate activations
    std::vector<double> c, h;         // cell and hidden after the step
    std::vector<double> c_prev;
  };

  size_t input_dim_, hidden_dim_;
  // Gate order in all stacked blocks: input, forget, cell(g), output.
  Param w_;  // 4H × input_dim
  Param u_;  // 4H × hidden_dim
  Param b_;  // 4H
  std::vector<std::vector<StepCache>> cache_;  // [sample][step]
};

}  // namespace etsc::nn

#endif  // ETSC_ML_NN_LSTM_H_
