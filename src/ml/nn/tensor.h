#ifndef ETSC_ML_NN_TENSOR_H_
#define ETSC_ML_NN_TENSOR_H_

#include <cstddef>
#include <vector>

#include "core/rng.h"

namespace etsc::nn {

/// A per-sample feature map: channels × time. The layer library processes
/// batches (std::vector<FeatureMap>) so batch normalisation can see true
/// batch statistics.
using FeatureMap = std::vector<std::vector<double>>;
using Batch = std::vector<FeatureMap>;

/// Flat parameter block with its gradient accumulator.
struct Param {
  std::vector<double> value;
  std::vector<double> grad;

  explicit Param(size_t n = 0) : value(n, 0.0), grad(n, 0.0) {}

  void ZeroGrad() { std::fill(grad.begin(), grad.end(), 0.0); }

  /// Glorot-uniform initialisation for a fan_in×fan_out weight block.
  void GlorotInit(size_t fan_in, size_t fan_out, Rng* rng);
};

/// Allocates a zeroed channels×time map.
FeatureMap MakeMap(size_t channels, size_t time);

}  // namespace etsc::nn

#endif  // ETSC_ML_NN_TENSOR_H_
