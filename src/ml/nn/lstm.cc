#include "ml/nn/lstm.h"

#include <cmath>

#include "core/status.h"

namespace etsc::nn {

namespace {
double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }
}  // namespace

Lstm::Lstm(size_t input_dim, size_t hidden_dim, Rng* rng)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      w_(4 * hidden_dim * input_dim),
      u_(4 * hidden_dim * hidden_dim),
      b_(4 * hidden_dim) {
  w_.GlorotInit(input_dim, hidden_dim, rng);
  u_.GlorotInit(hidden_dim, hidden_dim, rng);
  // Forget-gate bias starts at 1 (standard trick for gradient flow).
  for (size_t j = 0; j < hidden_dim_; ++j) b_.value[hidden_dim_ + j] = 1.0;
}

std::vector<std::vector<double>> Lstm::Forward(
    const std::vector<std::vector<std::vector<double>>>& input) {
  const size_t n = input.size();
  cache_.assign(n, {});
  std::vector<std::vector<double>> final_h(n,
                                           std::vector<double>(hidden_dim_, 0.0));
  const size_t H = hidden_dim_;
  for (size_t bidx = 0; bidx < n; ++bidx) {
    std::vector<double> h(H, 0.0), c(H, 0.0);
    cache_[bidx].reserve(input[bidx].size());
    for (const auto& x : input[bidx]) {
      ETSC_DCHECK(x.size() == input_dim_);
      StepCache step;
      step.input = x;
      step.c_prev = c;
      step.i.resize(H);
      step.f.resize(H);
      step.g.resize(H);
      step.o.resize(H);
      step.c.resize(H);
      step.h.resize(H);
      for (size_t j = 0; j < H; ++j) {
        double pre[4];
        for (size_t gate = 0; gate < 4; ++gate) {
          const size_t row = gate * H + j;
          double sum = b_.value[row];
          for (size_t k = 0; k < input_dim_; ++k) {
            sum += w_.value[row * input_dim_ + k] * x[k];
          }
          for (size_t k = 0; k < H; ++k) {
            sum += u_.value[row * H + k] * h[k];
          }
          pre[gate] = sum;
        }
        step.i[j] = Sigmoid(pre[0]);
        step.f[j] = Sigmoid(pre[1]);
        step.g[j] = std::tanh(pre[2]);
        step.o[j] = Sigmoid(pre[3]);
        step.c[j] = step.f[j] * c[j] + step.i[j] * step.g[j];
        step.h[j] = step.o[j] * std::tanh(step.c[j]);
      }
      h = step.h;
      c = step.c;
      cache_[bidx].push_back(std::move(step));
    }
    final_h[bidx] = h;
  }
  return final_h;
}

std::vector<std::vector<std::vector<double>>> Lstm::Backward(
    const std::vector<std::vector<double>>& grad_out) {
  const size_t n = cache_.size();
  const size_t H = hidden_dim_;
  std::vector<std::vector<std::vector<double>>> grad_in(n);
  for (size_t bidx = 0; bidx < n; ++bidx) {
    const auto& steps = cache_[bidx];
    grad_in[bidx].assign(steps.size(), std::vector<double>(input_dim_, 0.0));
    std::vector<double> dh = grad_out[bidx];
    std::vector<double> dc(H, 0.0);
    for (size_t s = steps.size(); s > 0; --s) {
      const StepCache& step = steps[s - 1];
      std::vector<double> dh_prev(H, 0.0);
      std::vector<double> dc_prev(H, 0.0);
      // Previous hidden state is the h of step s-2 (zeros at step 0).
      const std::vector<double>* h_prev = nullptr;
      if (s >= 2) h_prev = &steps[s - 2].h;
      for (size_t j = 0; j < H; ++j) {
        const double tanh_c = std::tanh(step.c[j]);
        const double do_j = dh[j] * tanh_c;
        const double dc_total =
            dc[j] + dh[j] * step.o[j] * (1.0 - tanh_c * tanh_c);
        const double di = dc_total * step.g[j];
        const double df = dc_total * step.c_prev[j];
        const double dg = dc_total * step.i[j];
        dc_prev[j] = dc_total * step.f[j];

        const double dpre[4] = {
            di * step.i[j] * (1.0 - step.i[j]),
            df * step.f[j] * (1.0 - step.f[j]),
            dg * (1.0 - step.g[j] * step.g[j]),
            do_j * step.o[j] * (1.0 - step.o[j]),
        };
        for (size_t gate = 0; gate < 4; ++gate) {
          const size_t row = gate * H + j;
          b_.grad[row] += dpre[gate];
          for (size_t k = 0; k < input_dim_; ++k) {
            w_.grad[row * input_dim_ + k] += dpre[gate] * step.input[k];
            grad_in[bidx][s - 1][k] += dpre[gate] * w_.value[row * input_dim_ + k];
          }
          for (size_t k = 0; k < H; ++k) {
            const double hp = h_prev ? (*h_prev)[k] : 0.0;
            u_.grad[row * H + k] += dpre[gate] * hp;
            dh_prev[k] += dpre[gate] * u_.value[row * H + k];
          }
        }
      }
      dh = std::move(dh_prev);
      dc = std::move(dc_prev);
    }
  }
  return grad_in;
}

}  // namespace etsc::nn
