#ifndef ETSC_ML_NN_LAYERS_H_
#define ETSC_ML_NN_LAYERS_H_

#include <cstddef>
#include <vector>

#include "core/rng.h"
#include "core/serialize.h"
#include "ml/nn/tensor.h"

namespace etsc::nn {

/// 1-D convolution over time with "same" zero padding.
class Conv1D {
 public:
  Conv1D(size_t in_channels, size_t out_channels, size_t kernel_size, Rng* rng);

  Batch Forward(const Batch& input);
  Batch Backward(const Batch& grad_out);
  std::vector<Param*> Params() { return {&weights_, &bias_}; }

  size_t out_channels() const { return out_channels_; }

 private:
  double& W(size_t oc, size_t ic, size_t k) {
    return weights_.value[(oc * in_channels_ + ic) * kernel_size_ + k];
  }
  double& dW(size_t oc, size_t ic, size_t k) {
    return weights_.grad[(oc * in_channels_ + ic) * kernel_size_ + k];
  }

  size_t in_channels_, out_channels_, kernel_size_;
  Param weights_, bias_;
  Batch input_;  // cached for backward
};

/// Batch normalisation per channel over (batch, time), with running statistics
/// for inference.
class BatchNorm1D {
 public:
  explicit BatchNorm1D(size_t channels, double momentum = 0.9, double eps = 1e-5);

  Batch Forward(const Batch& input, bool training);
  Batch Backward(const Batch& grad_out);
  std::vector<Param*> Params() { return {&gamma_, &beta_}; }

  /// Running statistics drive inference-mode normalisation, so they persist
  /// with the model alongside the gamma/beta Params.
  void SaveRunningStats(Serializer& out) const;
  Status LoadRunningStats(Deserializer& in);

 private:
  size_t channels_;
  double momentum_, eps_;
  Param gamma_, beta_;
  std::vector<double> running_mean_, running_var_;
  // Cached forward state.
  Batch normalized_;
  std::vector<double> batch_mean_, batch_inv_std_;
};

/// Element-wise rectified linear unit.
class ReLU {
 public:
  Batch Forward(const Batch& input);
  Batch Backward(const Batch& grad_out);

 private:
  Batch mask_;
};

/// Squeeze-and-Excitation block: global-average-pooled channel descriptor ->
/// bottleneck MLP -> sigmoid channel gates (Hu et al. 2018; used by MLSTM-FCN).
class SqueezeExcite {
 public:
  SqueezeExcite(size_t channels, size_t reduction, Rng* rng);

  Batch Forward(const Batch& input);
  Batch Backward(const Batch& grad_out);
  std::vector<Param*> Params() { return {&w1_, &b1_, &w2_, &b2_}; }

 private:
  size_t channels_, hidden_;
  Param w1_, b1_, w2_, b2_;
  // Cached forward state per sample.
  Batch input_;
  std::vector<std::vector<double>> z_, h_, s_;  // squeeze, hidden(relu), gates
};

/// Mean over time per channel: FeatureMap(C×T) -> vector(C).
class GlobalAvgPool {
 public:
  std::vector<std::vector<double>> Forward(const Batch& input);
  Batch Backward(const std::vector<std::vector<double>>& grad_out);

 private:
  size_t channels_ = 0;
  std::vector<size_t> time_;  // per sample
};

/// Fully connected layer over per-sample vectors.
class Dense {
 public:
  Dense(size_t in_dim, size_t out_dim, Rng* rng);

  std::vector<std::vector<double>> Forward(
      const std::vector<std::vector<double>>& input);
  std::vector<std::vector<double>> Backward(
      const std::vector<std::vector<double>>& grad_out);
  std::vector<Param*> Params() { return {&weights_, &bias_}; }

 private:
  size_t in_dim_, out_dim_;
  Param weights_, bias_;
  std::vector<std::vector<double>> input_;
};

/// Inverted dropout on per-sample vectors (identity at inference).
class Dropout {
 public:
  explicit Dropout(double rate) : rate_(rate) {}

  std::vector<std::vector<double>> Forward(
      const std::vector<std::vector<double>>& input, bool training, Rng* rng);
  std::vector<std::vector<double>> Backward(
      const std::vector<std::vector<double>>& grad_out);

 private:
  double rate_;
  std::vector<std::vector<double>> mask_;
};

/// Softmax + cross-entropy head. Forward returns per-sample probabilities;
/// LossAndGrad also produces the mean loss and the logits gradient.
struct SoftmaxCrossEntropy {
  static std::vector<std::vector<double>> Probabilities(
      const std::vector<std::vector<double>>& logits);

  /// targets are class indices into the logit vectors.
  static double LossAndGrad(const std::vector<std::vector<double>>& logits,
                            const std::vector<size_t>& targets,
                            std::vector<std::vector<double>>* grad);
};

/// Adam optimiser over a set of parameter blocks.
class Adam {
 public:
  explicit Adam(double lr = 1e-3, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

  void Register(const std::vector<Param*>& params);
  void Step();
  void ZeroGrad();

 private:
  double lr_, beta1_, beta2_, eps_;
  size_t t_ = 0;
  std::vector<Param*> params_;
  std::vector<std::vector<double>> m_, v_;
};

}  // namespace etsc::nn

#endif  // ETSC_ML_NN_LAYERS_H_
