#include "ml/hierarchical.h"

#include <algorithm>
#include <limits>

namespace etsc {

namespace {

// Lance-Williams style cluster distance over leaf members.
double ClusterDistance(const std::vector<size_t>& a, const std::vector<size_t>& b,
                       const std::vector<std::vector<double>>& d, Linkage linkage) {
  double best = linkage == Linkage::kComplete
                    ? 0.0
                    : std::numeric_limits<double>::infinity();
  double sum = 0.0;
  for (size_t i : a) {
    for (size_t j : b) {
      const double dij = d[i][j];
      switch (linkage) {
        case Linkage::kSingle:
          best = std::min(best, dij);
          break;
        case Linkage::kComplete:
          best = std::max(best, dij);
          break;
        case Linkage::kAverage:
          sum += dij;
          break;
      }
    }
  }
  if (linkage == Linkage::kAverage) {
    return sum / static_cast<double>(a.size() * b.size());
  }
  return best;
}

}  // namespace

Result<std::vector<MergeStep>> AgglomerativeCluster(
    const std::vector<std::vector<double>>& distances, Linkage linkage) {
  const size_t n = distances.size();
  if (n == 0) return Status::InvalidArgument("AgglomerativeCluster: empty matrix");
  for (const auto& row : distances) {
    if (row.size() != n) {
      return Status::InvalidArgument("AgglomerativeCluster: matrix not square");
    }
  }

  // Active clusters: id -> leaf members.
  struct Cluster {
    size_t id;
    std::vector<size_t> members;
  };
  std::vector<Cluster> active;
  active.reserve(n);
  for (size_t i = 0; i < n; ++i) active.push_back({i, {i}});

  std::vector<MergeStep> merges;
  merges.reserve(n > 0 ? n - 1 : 0);
  size_t next_id = n;

  while (active.size() > 1) {
    size_t best_a = 0, best_b = 1;
    double best_d = std::numeric_limits<double>::infinity();
    for (size_t a = 0; a < active.size(); ++a) {
      for (size_t b = a + 1; b < active.size(); ++b) {
        const double d =
            ClusterDistance(active[a].members, active[b].members, distances, linkage);
        if (d < best_d) {
          best_d = d;
          best_a = a;
          best_b = b;
        }
      }
    }
    MergeStep step;
    step.a = active[best_a].id;
    step.b = active[best_b].id;
    step.merged_id = next_id++;
    step.distance = best_d;
    step.members = active[best_a].members;
    step.members.insert(step.members.end(), active[best_b].members.begin(),
                        active[best_b].members.end());
    std::sort(step.members.begin(), step.members.end());

    Cluster merged{step.merged_id, step.members};
    // Remove b first (higher index), then a.
    active.erase(active.begin() + static_cast<ptrdiff_t>(best_b));
    active.erase(active.begin() + static_cast<ptrdiff_t>(best_a));
    active.push_back(std::move(merged));
    merges.push_back(std::move(step));
  }
  return merges;
}

Result<std::vector<size_t>> CutDendrogram(const std::vector<MergeStep>& merges,
                                          size_t num_leaves, size_t k) {
  if (k == 0 || k > num_leaves) {
    return Status::InvalidArgument("CutDendrogram: k out of range");
  }
  // Apply the first (num_leaves - k) merges.
  std::vector<size_t> labels(num_leaves);
  for (size_t i = 0; i < num_leaves; ++i) labels[i] = i;
  const size_t steps = num_leaves - k;
  if (steps > merges.size()) {
    return Status::InvalidArgument("CutDendrogram: not enough merge steps");
  }
  for (size_t s = 0; s < steps; ++s) {
    // Relabel the merged members to a common label (smallest member).
    const auto& members = merges[s].members;
    const size_t target = *std::min_element(members.begin(), members.end());
    for (size_t leaf : members) labels[leaf] = labels[target];
  }
  // Compact labels to [0, k).
  std::vector<size_t> remap(num_leaves, std::numeric_limits<size_t>::max());
  size_t next = 0;
  for (auto& l : labels) {
    if (remap[l] == std::numeric_limits<size_t>::max()) remap[l] = next++;
    l = remap[l];
  }
  return labels;
}

}  // namespace etsc
