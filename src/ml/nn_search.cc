#include "ml/nn_search.h"

#include <algorithm>
#include <limits>

#include "core/status.h"

namespace etsc {

size_t NearestNeighbor(const std::vector<std::vector<double>>& points,
                       const std::vector<double>& query, size_t prefix_len,
                       size_t exclude) {
  ETSC_DCHECK(!points.empty());
  size_t best = points.size();
  double best_d = std::numeric_limits<double>::infinity();
  for (size_t j = 0; j < points.size(); ++j) {
    if (j == exclude) continue;
    const size_t n = std::min({prefix_len, points[j].size(), query.size()});
    double sum = 0.0;
    for (size_t t = 0; t < n; ++t) {
      const double d = query[t] - points[j][t];
      sum += d * d;
      if (sum >= best_d) break;
    }
    if (sum < best_d) {
      best_d = sum;
      best = j;
    }
  }
  return best;
}

std::vector<size_t> AllNearestNeighbors(
    const std::vector<std::vector<double>>& points, size_t prefix_len) {
  std::vector<size_t> nearest(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    nearest[i] = NearestNeighbor(points, points[i], prefix_len, i);
  }
  return nearest;
}

std::vector<std::vector<size_t>> ReverseNearestNeighbors(
    const std::vector<size_t>& nearest) {
  std::vector<std::vector<size_t>> rnn(nearest.size());
  for (size_t j = 0; j < nearest.size(); ++j) {
    const size_t i = nearest[j];
    if (i < nearest.size()) rnn[i].push_back(j);
  }
  return rnn;
}

}  // namespace etsc
