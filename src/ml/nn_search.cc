#include "ml/nn_search.h"

#include <algorithm>
#include <limits>

#include "core/counters.h"
#include "core/status.h"

namespace etsc {

namespace {

// 1-NN scan metrics: queries, candidates scanned and candidates dropped by
// early abandon. Accumulated locally per query, published once on return
// behind the inlined MetricsEnabled() guard (DESIGN.md sec 9).
Counter& NnQueries() {
  static Counter& c = MetricRegistry::Global().counter("nn.queries");
  return c;
}
Counter& NnCandidates() {
  static Counter& c = MetricRegistry::Global().counter("nn.candidates_scanned");
  return c;
}
Counter& NnCandidatesAbandoned() {
  static Counter& c =
      MetricRegistry::Global().counter("nn.candidates_abandoned");
  return c;
}

}  // namespace

size_t NearestNeighbor(const std::vector<std::vector<double>>& points,
                       const std::vector<double>& query, size_t prefix_len,
                       size_t exclude) {
  ETSC_DCHECK(!points.empty());
  size_t best = points.size();
  double best_d = std::numeric_limits<double>::infinity();
  const double* q = query.data();
  uint64_t candidates = 0;
  uint64_t candidates_abandoned = 0;
  for (size_t j = 0; j < points.size(); ++j) {
    if (j == exclude) continue;
    ++candidates;
    const size_t n = std::min({prefix_len, points[j].size(), query.size()});
    const double* p = points[j].data();
    // Squared space throughout; 4-way unrolled with a per-block abandon
    // check against the best candidate so far (partial sums only grow).
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    size_t t = 0;
    bool abandoned = false;
    for (; t + 4 <= n; t += 4) {
      const double d0 = q[t] - p[t];
      const double d1 = q[t + 1] - p[t + 1];
      const double d2 = q[t + 2] - p[t + 2];
      const double d3 = q[t + 3] - p[t + 3];
      s0 += d0 * d0;
      s1 += d1 * d1;
      s2 += d2 * d2;
      s3 += d3 * d3;
      if ((s0 + s1) + (s2 + s3) >= best_d) {
        abandoned = true;
        break;
      }
    }
    if (abandoned) {
      ++candidates_abandoned;
      continue;
    }
    double sum = (s0 + s1) + (s2 + s3);
    for (; t < n; ++t) {
      const double d = q[t] - p[t];
      sum += d * d;
      if (sum >= best_d) {
        abandoned = true;
        break;
      }
    }
    if (abandoned || sum >= best_d) {  // ties keep the earliest index
      candidates_abandoned += abandoned ? 1 : 0;
      continue;
    }
    best_d = sum;
    best = j;
  }
  if (MetricsEnabled()) {
    NnQueries().Add(1);
    NnCandidates().Add(candidates);
    NnCandidatesAbandoned().Add(candidates_abandoned);
  }
  return best;
}

std::vector<size_t> AllNearestNeighbors(
    const std::vector<std::vector<double>>& points, size_t prefix_len) {
  std::vector<size_t> nearest(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    nearest[i] = NearestNeighbor(points, points[i], prefix_len, i);
  }
  return nearest;
}

std::vector<std::vector<size_t>> ReverseNearestNeighbors(
    const std::vector<size_t>& nearest) {
  std::vector<std::vector<size_t>> rnn(nearest.size());
  for (size_t j = 0; j < nearest.size(); ++j) {
    const size_t i = nearest[j];
    if (i < nearest.size()) rnn[i].push_back(j);
  }
  return rnn;
}

}  // namespace etsc
