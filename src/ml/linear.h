#ifndef ETSC_ML_LINEAR_H_
#define ETSC_ML_LINEAR_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "core/rng.h"
#include "core/serialize.h"
#include "core/status.h"

namespace etsc {

/// Sparse feature vector: sorted (index, value) pairs. WEASEL bags-of-words
/// are extremely sparse, so the logistic solver accepts this form natively.
struct SparseVector {
  std::vector<std::pair<size_t, double>> entries;

  void Add(size_t index, double value) { entries.emplace_back(index, value); }
  void SortAndMerge();
  double Dot(const std::vector<double>& dense) const;
  double L2Norm() const;
};

/// Options for multinomial logistic regression trained with AdaGrad SGD.
struct LogisticRegressionOptions {
  double l2 = 1e-4;
  double learning_rate = 0.5;
  size_t epochs = 15;
  bool fit_intercept = true;
};

/// Multinomial logistic regression over dense or sparse features; the linear
/// classifier behind WEASEL, TEASER's per-prefix pipelines, and (optionally)
/// MiniROCKET.
class LogisticRegression {
 public:
  explicit LogisticRegression(LogisticRegressionOptions options = {})
      : options_(options) {}

  /// Trains on sparse rows with feature dimensionality `dim`.
  Status FitSparse(const std::vector<SparseVector>& rows, size_t dim,
                   const std::vector<int>& labels, Rng* rng);

  /// Trains on dense rows.
  Status Fit(const std::vector<std::vector<double>>& rows,
             const std::vector<int>& labels, Rng* rng);

  Result<std::vector<double>> PredictProbaSparse(const SparseVector& row) const;
  Result<std::vector<double>> PredictProba(const std::vector<double>& row) const;
  Result<int> PredictSparse(const SparseVector& row) const;
  Result<int> Predict(const std::vector<double>& row) const;

  const std::vector<int>& class_labels() const { return class_labels_; }
  bool fitted() const { return !class_labels_.empty(); }

  /// Persists/restores the fitted coefficients (options are carried by
  /// construction and do not affect prediction).
  void SaveState(Serializer& out) const;
  Status LoadState(Deserializer& in);

 private:
  std::vector<double> DecisionScores(const SparseVector& row) const;

  LogisticRegressionOptions options_;
  std::vector<int> class_labels_;
  size_t dim_ = 0;
  std::vector<std::vector<double>> weights_;  // [class][feature]
  std::vector<double> intercepts_;
};

/// Options for the ridge classifier (one-vs-rest regression on ±1 targets).
struct RidgeOptions {
  double alpha = 1.0;
};

/// Ridge regression classifier (MiniROCKET's default head). Solves the primal
/// normal equations when #features <= #samples, otherwise the dual (Gram)
/// system, via Cholesky.
class RidgeClassifier {
 public:
  explicit RidgeClassifier(RidgeOptions options = {}) : options_(options) {}

  Status Fit(const std::vector<std::vector<double>>& rows,
             const std::vector<int>& labels);

  Result<int> Predict(const std::vector<double>& row) const;

  /// Softmax over decision margins; a calibrated probability is not defined
  /// for ridge, but callers only need a ranking.
  Result<std::vector<double>> PredictProba(const std::vector<double>& row) const;

  const std::vector<int>& class_labels() const { return class_labels_; }
  bool fitted() const { return !class_labels_.empty(); }

  void SaveState(Serializer& out) const;
  Status LoadState(Deserializer& in);

 private:
  RidgeOptions options_;
  std::vector<int> class_labels_;
  std::vector<std::vector<double>> weights_;  // [class][feature]
  std::vector<double> intercepts_;
};

/// Solves A x = b for symmetric positive-definite A in place via Cholesky.
/// A is row-major n×n. Fails when A is not positive definite.
Status SolveSpd(std::vector<std::vector<double>> a, std::vector<double> b,
                std::vector<double>* x);

}  // namespace etsc

#endif  // ETSC_ML_LINEAR_H_
