#ifndef ETSC_ALGOS_PROB_THRESHOLD_H_
#define ETSC_ALGOS_PROB_THRESHOLD_H_

#include <memory>
#include <string>
#include <vector>

#include "core/classifier.h"
#include "core/composed.h"
#include "core/trigger.h"

namespace etsc {

/// Probability-threshold early classifier: the simplest confidence-based
/// baseline in the ETSC literature (a one-tier TEASER without the one-class
/// SVM, or an ECEC without reliability fusion). Trains one clone of a
/// full-TSC classifier per prefix of a fixed grid and emits the prediction at
/// the first prefix whose top class probability reaches `threshold` for
/// `consecutive` prefixes in a row. Registered as "prob-threshold"; useful as
/// a sanity baseline when adding new algorithms to the framework.
struct ProbThresholdOptions {
  size_t num_prefixes = 10;
  double threshold = 0.9;
  size_t consecutive = 1;
};

/// The stopping-rule half of the baseline, usable with any base classifier:
/// halt at the first checkpoint whose top posterior reaches `threshold` for
/// `consecutive` checkpoints in a row (same label throughout the streak).
/// Stateless after construction; registered as trigger "prob".
struct ProbTriggerOptions {
  double threshold = 0.9;
  size_t consecutive = 1;
};

class ProbTrigger : public Trigger {
 public:
  explicit ProbTrigger(ProbTriggerOptions options = {});

  std::string name() const override { return "prob"; }
  std::string config_fingerprint() const override;
  ComposedOptions DefaultComposedOptions() const override;
  Status PlanCheckpoints(const Dataset& train, const FullClassifier* base,
                         const Deadline& deadline,
                         std::vector<size_t>* checkpoints) override;
  Status Fit(const TriggerFitContext& ctx) override;
  std::unique_ptr<TriggerState> NewState() const override;
  Result<TriggerDecision> Decide(const TriggerEvidence& evidence,
                                 TriggerState* state) const override;
  std::unique_ptr<Trigger> CloneUnfitted() const override;
  Status SaveState(Serializer& out) const override;
  Status LoadState(Deserializer& in) override;

  const ProbTriggerOptions& options() const { return options_; }

 private:
  ProbTriggerOptions options_;
};

/// Legacy monolithic entry point, now a thin composition of the supplied base
/// classifier with the "prob" trigger. Campaign results are bit-identical to
/// the pre-seam implementation (same prefix grid, same argmax/streak rules,
/// same fallbacks).
class ProbThresholdClassifier : public ComposedEarlyClassifier {
 public:
  /// `base` supplies CloneUntrained() copies, one per prefix.
  ProbThresholdClassifier(std::unique_ptr<FullClassifier> base,
                          ProbThresholdOptions options = {});

  std::string name() const override;
  std::string config_fingerprint() const override;
  std::unique_ptr<EarlyClassifier> CloneUntrained() const override;

  const std::vector<size_t>& prefix_lengths() const { return checkpoints(); }

 private:
  ProbThresholdOptions options_;
};

}  // namespace etsc

#endif  // ETSC_ALGOS_PROB_THRESHOLD_H_
