#ifndef ETSC_ALGOS_PROB_THRESHOLD_H_
#define ETSC_ALGOS_PROB_THRESHOLD_H_

#include <memory>
#include <string>
#include <vector>

#include "core/classifier.h"

namespace etsc {

/// Probability-threshold early classifier: the simplest confidence-based
/// baseline in the ETSC literature (a one-tier TEASER without the one-class
/// SVM, or an ECEC without reliability fusion). Trains one clone of a
/// full-TSC classifier per prefix of a fixed grid and emits the prediction at
/// the first prefix whose top class probability reaches `threshold` for
/// `consecutive` prefixes in a row. Registered as "prob-threshold"; useful as
/// a sanity baseline when adding new algorithms to the framework.
struct ProbThresholdOptions {
  size_t num_prefixes = 10;
  double threshold = 0.9;
  size_t consecutive = 1;
};

class ProbThresholdClassifier : public EarlyClassifier {
 public:
  /// `base` supplies CloneUntrained() copies, one per prefix.
  ProbThresholdClassifier(std::unique_ptr<FullClassifier> base,
                          ProbThresholdOptions options = {});

  Status Fit(const Dataset& train) override;
  Result<EarlyPrediction> PredictEarly(const TimeSeries& series) const override;
  std::string name() const override;
  bool SupportsMultivariate() const override {
    return base_->SupportsMultivariate();
  }
  std::unique_ptr<EarlyClassifier> CloneUntrained() const override;

  const std::vector<size_t>& prefix_lengths() const { return prefix_lengths_; }

  std::string config_fingerprint() const override;
  Status SaveState(Serializer& out) const override;
  Status LoadState(Deserializer& in) override;

 private:
  std::unique_ptr<FullClassifier> base_;
  ProbThresholdOptions options_;
  size_t length_ = 0;
  std::vector<size_t> prefix_lengths_;
  std::vector<std::unique_ptr<FullClassifier>> models_;
};

}  // namespace etsc

#endif  // ETSC_ALGOS_PROB_THRESHOLD_H_
