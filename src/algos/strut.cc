#include "algos/strut.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "core/metrics.h"
#include "core/rng.h"
#include "tsc/minirocket.h"
#include "tsc/mlstm.h"
#include "tsc/muse.h"
#include "tsc/weasel.h"

namespace etsc {

StrutClassifier::StrutClassifier(std::unique_ptr<FullClassifier> base,
                                 StrutOptions options, std::string display_name)
    : base_(std::move(base)), options_(options), name_(std::move(display_name)) {
  ETSC_CHECK(base_ != nullptr);
  if (name_.empty()) name_ = "S-" + base_->name();
}

Result<double> StrutClassifier::ScoreAt(const Dataset& fit,
                                        const Dataset& validation, size_t t,
                                        size_t full_length) const {
  std::unique_ptr<FullClassifier> model = base_->CloneUntrained();
  ETSC_RETURN_NOT_OK(model->Fit(fit.Truncated(t)));
  std::vector<int> truth, predicted;
  for (size_t i = 0; i < validation.size(); ++i) {
    ETSC_ASSIGN_OR_RETURN(int label, model->Predict(validation.instance(i).Prefix(t)));
    truth.push_back(validation.label(i));
    predicted.push_back(label);
  }
  const ConfusionMatrix cm(truth, predicted);
  const double earliness =
      static_cast<double>(t) / static_cast<double>(full_length);
  switch (options_.metric) {
    case StrutMetric::kAccuracy:
      return cm.Accuracy();
    case StrutMetric::kF1:
      return cm.MacroF1();
    case StrutMetric::kHarmonicMean:
      return HarmonicMean(cm.Accuracy(), earliness);
  }
  return Status::Internal("STRUT: unknown metric");
}

Status StrutClassifier::Fit(const Dataset& train) {
  if (train.size() < 4) {
    return Status::InvalidArgument("STRUT: too few training series");
  }
  const size_t length = train.MinLength();
  if (length < 2) return Status::InvalidArgument("STRUT: series too short");

  Rng rng(options_.seed);
  const SplitIndices split =
      StratifiedSplit(train, 1.0 - options_.validation_fraction, &rng);
  Dataset fit = train.Subset(split.train);
  Dataset validation = train.Subset(split.test);
  if (fit.empty() || validation.empty()) {
    return Status::InvalidArgument("STRUT: degenerate fit/validation split");
  }

  // Candidate truncation lengths from the fraction grid.
  std::set<size_t> candidate_set;
  for (double f : options_.fractions) {
    const size_t t = std::clamp<size_t>(
        static_cast<size_t>(std::round(f * static_cast<double>(length))), 2,
        length);
    candidate_set.insert(t);
  }
  std::vector<size_t> candidates(candidate_set.begin(), candidate_set.end());

  const Deadline deadline = TrainDeadline();
  double best_score = -1.0;
  size_t best_t = length;
  std::vector<double> scores(candidates.size(), -1.0);
  for (size_t c = 0; c < candidates.size(); ++c) {
    ETSC_RETURN_NOT_OK(deadline.Check("STRUT: train budget exceeded"));
    auto score = ScoreAt(fit, validation, candidates[c], length);
    if (!score.ok()) continue;  // a length may be unusable for the base model
    scores[c] = *score;
    if (*score > best_score) {
      best_score = *score;
      best_t = candidates[c];
    }
  }
  if (best_score < 0.0) {
    return Status::Internal("STRUT: no truncation point could be scored");
  }

  if (options_.search == StrutSearch::kBinary) {
    // Refine: binary-search the earliest t in (prev_candidate, best_t] whose
    // score stays within `tolerance` of the best grid score.
    size_t lo = 2;
    for (size_t c = 0; c < candidates.size(); ++c) {
      if (candidates[c] == best_t && c > 0) lo = candidates[c - 1] + 1;
    }
    size_t hi = best_t;
    while (lo < hi) {
      ETSC_RETURN_NOT_OK(deadline.Check("STRUT: train budget exceeded"));
      const size_t mid = lo + (hi - lo) / 2;
      auto score = ScoreAt(fit, validation, mid, length);
      if (score.ok() && *score >= best_score - options_.tolerance) {
        hi = mid;
        if (*score > best_score) best_score = *score;
      } else {
        lo = mid + 1;
      }
    }
    best_t = hi;
  }

  truncation_point_ = best_t;
  model_ = base_->CloneUntrained();
  return model_->Fit(train.Truncated(best_t));
}

Result<EarlyPrediction> StrutClassifier::PredictEarly(
    const TimeSeries& series) const {
  if (model_ == nullptr) return Status::FailedPrecondition("STRUT: not fitted");
  ETSC_RETURN_NOT_OK(
      PredictDeadline().Check("STRUT: predict budget exceeded"));
  const size_t consumed = std::min(truncation_point_, series.length());
  ETSC_ASSIGN_OR_RETURN(int label, model_->Predict(series.Prefix(consumed)));
  return EarlyPrediction{label, consumed};
}

std::unique_ptr<EarlyClassifier> StrutClassifier::CloneUntrained() const {
  return std::make_unique<StrutClassifier>(base_->CloneUntrained(), options_,
                                           name_);
}

namespace {

/// Chooses WEASEL or WEASEL+MUSE at Fit time based on input dimensionality so
/// S-WEASEL handles both kinds of dataset, as in the paper.
class AdaptiveWeasel : public FullClassifier {
 public:
  explicit AdaptiveWeasel(WeaselOptions options = {}) : options_(options) {}

  Status Fit(const Dataset& train) override {
    if (train.NumVariables() > 1) {
      MuseOptions muse;
      muse.weasel = options_;
      impl_ = std::make_unique<MuseClassifier>(muse);
    } else {
      impl_ = std::make_unique<WeaselClassifier>(options_);
    }
    return impl_->Fit(train);
  }
  Result<int> Predict(const TimeSeries& series) const override {
    if (impl_ == nullptr) {
      return Status::FailedPrecondition("AdaptiveWeasel: not fitted");
    }
    return impl_->Predict(series);
  }
  Result<std::vector<double>> PredictProba(const TimeSeries& series) const override {
    if (impl_ == nullptr) {
      return Status::FailedPrecondition("AdaptiveWeasel: not fitted");
    }
    return impl_->PredictProba(series);
  }
  const std::vector<int>& class_labels() const override {
    static const std::vector<int>* kEmpty = new std::vector<int>();
    return impl_ == nullptr ? *kEmpty : impl_->class_labels();
  }
  std::string name() const override { return "WEASEL"; }
  bool SupportsMultivariate() const override { return true; }
  std::unique_ptr<FullClassifier> CloneUntrained() const override {
    return std::make_unique<AdaptiveWeasel>(options_);
  }

  std::string config_fingerprint() const override {
    return "AdaptiveWeasel(" + WeaselOptionsFingerprint(options_) + ")";
  }
  // The WEASEL-vs-MUSE choice is data-dependent, so it travels with the
  // fitted state as a type tag rather than with the configuration.
  Status SaveState(Serializer& out) const override {
    if (impl_ == nullptr) {
      return Status::FailedPrecondition("AdaptiveWeasel: not fitted");
    }
    const bool is_muse = impl_->SupportsMultivariate();
    out.U8(is_muse ? 2 : 1);
    return impl_->SaveState(out);
  }
  Status LoadState(Deserializer& in) override {
    ETSC_ASSIGN_OR_RETURN(uint8_t tag, in.U8());
    if (tag == 1) {
      impl_ = std::make_unique<WeaselClassifier>(options_);
    } else if (tag == 2) {
      MuseOptions muse;
      muse.weasel = options_;
      impl_ = std::make_unique<MuseClassifier>(muse);
    } else {
      return Status::DataLoss("AdaptiveWeasel: unknown backend tag");
    }
    return impl_->LoadState(in);
  }

 private:
  WeaselOptions options_;
  std::unique_ptr<FullClassifier> impl_;
};

}  // namespace

std::unique_ptr<EarlyClassifier> MakeStrutWeasel(bool multivariate,
                                                 StrutOptions options) {
  (void)multivariate;  // AdaptiveWeasel decides at Fit time.
  return std::make_unique<StrutClassifier>(std::make_unique<AdaptiveWeasel>(),
                                           options, "S-WEASEL");
}

std::unique_ptr<EarlyClassifier> MakeStrutMiniRocket(StrutOptions options) {
  return std::make_unique<StrutClassifier>(
      std::make_unique<MiniRocketClassifier>(), options, "S-MINI");
}

std::unique_ptr<EarlyClassifier> MakeStrutMlstm(StrutOptions options) {
  // S-MLSTM fixes the iteration count with the fraction grid (paper Sec. 6.1).
  options.search = StrutSearch::kGrid;
  return std::make_unique<StrutClassifier>(std::make_unique<MlstmClassifier>(),
                                           options, "S-MLSTM");
}

std::string StrutClassifier::config_fingerprint() const {
  const auto& o = options_;
  std::string fractions;
  for (double f : o.fractions) fractions += FingerprintDouble(f) + "/";
  return name_ + "=STRUT(metric=" + std::to_string(static_cast<int>(o.metric)) +
         ",search=" + std::to_string(static_cast<int>(o.search)) +
         ",frac=" + fractions +
         ",val=" + FingerprintDouble(o.validation_fraction) +
         ",tol=" + FingerprintDouble(o.tolerance) +
         ",seed=" + std::to_string(o.seed) + ",base=" +
         base_->config_fingerprint() + ")";
}

Status StrutClassifier::SaveState(Serializer& out) const {
  if (model_ == nullptr) {
    return Status::FailedPrecondition(name() + ": not fitted");
  }
  out.Begin("strut");
  out.SizeT(truncation_point_);
  ETSC_RETURN_NOT_OK(model_->SaveState(out));
  out.End();
  return Status::OK();
}

Status StrutClassifier::LoadState(Deserializer& in) {
  ETSC_RETURN_NOT_OK(in.Enter("strut"));
  ETSC_ASSIGN_OR_RETURN(truncation_point_, in.SizeT());
  if (truncation_point_ == 0) {
    return Status::DataLoss(name() + ": zero truncation point");
  }
  model_ = base_->CloneUntrained();
  ETSC_RETURN_NOT_OK(model_->LoadState(in));
  return in.Leave();
}

}  // namespace etsc
