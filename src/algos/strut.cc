#include "algos/strut.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "algos/base_classifiers.h"
#include "core/metrics.h"
#include "core/rng.h"
#include "tsc/minirocket.h"
#include "tsc/mlstm.h"

namespace etsc {

StrutTrigger::StrutTrigger(StrutOptions options) : options_(std::move(options)) {}

std::string StrutTrigger::config_fingerprint() const {
  const auto& o = options_;
  std::string fractions;
  for (double f : o.fractions) fractions += FingerprintDouble(f) + "/";
  return "strut-search(metric=" + std::to_string(static_cast<int>(o.metric)) +
         ",search=" + std::to_string(static_cast<int>(o.search)) +
         ",frac=" + fractions +
         ",val=" + FingerprintDouble(o.validation_fraction) +
         ",tol=" + FingerprintDouble(o.tolerance) +
         ",seed=" + std::to_string(o.seed) + ")";
}

ComposedOptions StrutTrigger::DefaultComposedOptions() const {
  ComposedOptions options;
  options.grid = CheckpointGrid::kTriggerPlanned;
  return options;
}

Result<double> StrutTrigger::ScoreAt(const FullClassifier& base,
                                     const Dataset& fit,
                                     const Dataset& validation, size_t t,
                                     size_t full_length) const {
  std::unique_ptr<FullClassifier> model = base.CloneUntrained();
  ETSC_RETURN_NOT_OK(model->Fit(fit.Truncated(t)));
  std::vector<int> truth, predicted;
  for (size_t i = 0; i < validation.size(); ++i) {
    ETSC_ASSIGN_OR_RETURN(int label, model->Predict(validation.instance(i).Prefix(t)));
    truth.push_back(validation.label(i));
    predicted.push_back(label);
  }
  const ConfusionMatrix cm(truth, predicted);
  const double earliness =
      static_cast<double>(t) / static_cast<double>(full_length);
  switch (options_.metric) {
    case StrutMetric::kAccuracy:
      return cm.Accuracy();
    case StrutMetric::kF1:
      return cm.MacroF1();
    case StrutMetric::kHarmonicMean:
      return HarmonicMean(cm.Accuracy(), earliness);
  }
  return Status::Internal("STRUT: unknown metric");
}

Status StrutTrigger::PlanCheckpoints(const Dataset& train,
                                     const FullClassifier* base,
                                     const Deadline& deadline,
                                     std::vector<size_t>* checkpoints) {
  if (base == nullptr) {
    return Status::InvalidArgument("STRUT: a base classifier is required");
  }
  if (train.size() < 4) {
    return Status::InvalidArgument("STRUT: too few training series");
  }
  const size_t length = train.MinLength();
  if (length < 2) return Status::InvalidArgument("STRUT: series too short");

  Rng rng(options_.seed);
  const SplitIndices split =
      StratifiedSplit(train, 1.0 - options_.validation_fraction, &rng);
  Dataset fit = train.Subset(split.train);
  Dataset validation = train.Subset(split.test);
  if (fit.empty() || validation.empty()) {
    return Status::InvalidArgument("STRUT: degenerate fit/validation split");
  }

  // Candidate truncation lengths from the fraction grid.
  std::set<size_t> candidate_set;
  for (double f : options_.fractions) {
    const size_t t = std::clamp<size_t>(
        static_cast<size_t>(std::round(f * static_cast<double>(length))), 2,
        length);
    candidate_set.insert(t);
  }
  std::vector<size_t> candidates(candidate_set.begin(), candidate_set.end());

  double best_score = -1.0;
  size_t best_t = length;
  std::vector<double> scores(candidates.size(), -1.0);
  for (size_t c = 0; c < candidates.size(); ++c) {
    ETSC_RETURN_NOT_OK(deadline.Check("STRUT: train budget exceeded"));
    auto score = ScoreAt(*base, fit, validation, candidates[c], length);
    if (!score.ok()) continue;  // a length may be unusable for the base model
    scores[c] = *score;
    if (*score > best_score) {
      best_score = *score;
      best_t = candidates[c];
    }
  }
  if (best_score < 0.0) {
    return Status::Internal("STRUT: no truncation point could be scored");
  }

  if (options_.search == StrutSearch::kBinary) {
    // Refine: binary-search the earliest t in (prev_candidate, best_t] whose
    // score stays within `tolerance` of the best grid score.
    size_t lo = 2;
    for (size_t c = 0; c < candidates.size(); ++c) {
      if (candidates[c] == best_t && c > 0) lo = candidates[c - 1] + 1;
    }
    size_t hi = best_t;
    while (lo < hi) {
      ETSC_RETURN_NOT_OK(deadline.Check("STRUT: train budget exceeded"));
      const size_t mid = lo + (hi - lo) / 2;
      auto score = ScoreAt(*base, fit, validation, mid, length);
      if (score.ok() && *score >= best_score - options_.tolerance) {
        hi = mid;
        if (*score > best_score) best_score = *score;
      } else {
        lo = mid + 1;
      }
    }
    best_t = hi;
  }

  truncation_point_ = best_t;
  // The single checkpoint: the composed pipeline fits one bank model on
  // Truncated(t*) — the legacy implementation's final refit.
  checkpoints->assign(1, best_t);
  return Status::OK();
}

Status StrutTrigger::Fit(const TriggerFitContext&) {
  // All the work happened in PlanCheckpoints.
  if (truncation_point_ == 0) {
    return Status::Internal("STRUT: PlanCheckpoints did not run");
  }
  return Status::OK();
}

Result<TriggerDecision> StrutTrigger::Decide(const TriggerEvidence&,
                                             TriggerState*) const {
  // Fixed-ratio rule: the only checkpoint is the chosen truncation point.
  TriggerDecision decision;
  decision.halt = true;
  return decision;
}

std::unique_ptr<Trigger> StrutTrigger::CloneUnfitted() const {
  return std::make_unique<StrutTrigger>(options_);
}

Status StrutTrigger::SaveState(Serializer& out) const {
  out.Begin("strut-search");
  out.SizeT(truncation_point_);
  out.End();
  return Status::OK();
}

Status StrutTrigger::LoadState(Deserializer& in) {
  ETSC_RETURN_NOT_OK(in.Enter("strut-search"));
  ETSC_ASSIGN_OR_RETURN(truncation_point_, in.SizeT());
  if (truncation_point_ == 0) {
    return Status::DataLoss("STRUT: zero truncation point");
  }
  return in.Leave();
}

namespace {

ComposedParts StrutParts(std::unique_ptr<FullClassifier> base,
                         const StrutOptions& options,
                         std::string display_name) {
  ETSC_CHECK(base != nullptr);
  ComposedParts parts;
  parts.name = display_name.empty() ? "S-" + base->name()
                                    : std::move(display_name);
  parts.trigger = std::make_unique<StrutTrigger>(options);
  parts.options.grid = CheckpointGrid::kTriggerPlanned;
  parts.base = std::move(base);
  return parts;
}

}  // namespace

StrutClassifier::StrutClassifier(std::unique_ptr<FullClassifier> base,
                                 StrutOptions options, std::string display_name)
    : ComposedEarlyClassifier(
          StrutParts(std::move(base), options, std::move(display_name))),
      options_(std::move(options)),
      display_name_(name()) {}

std::string StrutClassifier::config_fingerprint() const {
  const auto& o = options_;
  std::string fractions;
  for (double f : o.fractions) fractions += FingerprintDouble(f) + "/";
  return name() + "=STRUT(metric=" + std::to_string(static_cast<int>(o.metric)) +
         ",search=" + std::to_string(static_cast<int>(o.search)) +
         ",frac=" + fractions +
         ",val=" + FingerprintDouble(o.validation_fraction) +
         ",tol=" + FingerprintDouble(o.tolerance) +
         ",seed=" + std::to_string(o.seed) + ",base=" +
         base_classifier()->config_fingerprint() + ")";
}

std::unique_ptr<EarlyClassifier> StrutClassifier::CloneUntrained() const {
  return std::make_unique<StrutClassifier>(base_classifier()->CloneUntrained(),
                                           options_, display_name_);
}

size_t StrutClassifier::truncation_point() const {
  return static_cast<const StrutTrigger&>(trigger()).truncation_point();
}

std::unique_ptr<EarlyClassifier> MakeStrutWeasel(bool multivariate,
                                                 StrutOptions options) {
  (void)multivariate;  // AdaptiveWeasel decides at Fit time.
  return std::make_unique<StrutClassifier>(std::make_unique<AdaptiveWeasel>(),
                                           options, "S-WEASEL");
}

std::unique_ptr<EarlyClassifier> MakeStrutMiniRocket(StrutOptions options) {
  return std::make_unique<StrutClassifier>(
      std::make_unique<MiniRocketClassifier>(), options, "S-MINI");
}

std::unique_ptr<EarlyClassifier> MakeStrutMlstm(StrutOptions options) {
  // S-MLSTM fixes the iteration count with the fraction grid (paper Sec. 6.1).
  options.search = StrutSearch::kGrid;
  return std::make_unique<StrutClassifier>(std::make_unique<MlstmClassifier>(),
                                           options, "S-MLSTM");
}

}  // namespace etsc
