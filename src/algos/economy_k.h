#ifndef ETSC_ALGOS_ECONOMY_K_H_
#define ETSC_ALGOS_ECONOMY_K_H_

#include <memory>
#include <string>
#include <vector>

#include "core/classifier.h"
#include "core/composed.h"
#include "core/trigger.h"
#include "ml/gbdt.h"
#include "ml/kmeans.h"

namespace etsc {

/// ECONOMY-K (Dachraoui et al.; paper Sec. 3.1). Model-based and univariate:
/// full-length training series are k-means-clustered; per sampled time-point a
/// base classifier (gradient-boosted trees, the XGBoost stand-in) is trained
/// on raw prefixes, and per (cluster, time-point) a confusion matrix estimates
/// P(ŷ|y, g_k). At test time the expected cost
///   f_τ(x_{1:t}) = Σ_k P(g_k|x) Σ_y P(y|g_k) Σ_ŷ P_{t+τ}(ŷ|y,g_k)·C(ŷ|y)
///                + time_cost·(t+τ)
/// is evaluated over future horizons τ; the prediction is emitted when the
/// minimising τ is 0 (non-myopic stopping rule).
struct EconomyKOptions {
  /// Cluster counts tried during Fit; the value with the lowest training cost
  /// is kept (the paper grid-searches {1, 2, 3}).
  std::vector<size_t> cluster_grid = {1, 2, 3};
  /// Cost of postponing the decision by one time-point (Table 4: 0.001).
  double time_cost = 0.001;
  /// Misclassification cost scale λ (Table 4: 100); the 0/1 error cost is
  /// λ·time_cost so the two cost axes are commensurable.
  double lambda = 100.0;
  /// Weight of the delay term relative to the misclassification cost when the
  /// *whole* series is consumed. With absolute per-step delay, λ=100 and
  /// cost=0.001 make full-length delay (0.001·L) exceed the maximum
  /// misclassification cost (0.1) for any L > 100, collapsing the rule to
  /// "always stop at the first checkpoint"; normalising delay by L keeps the
  /// Table-4 parameters meaningful at every series length.
  double relative_delay_weight = 0.5;
  /// Number of time-points at which base classifiers are trained (evenly
  /// spaced; every point when the series is short).
  size_t max_checkpoints = 20;
  /// Folds used to estimate P(ŷ|y, cluster) out-of-sample (in-sample
  /// confusion of boosted trees is near-perfect and would make the cost
  /// function stop at the first checkpoint). 0 falls back to in-sample.
  size_t cv_folds = 3;
  GbdtOptions gbdt;
  uint64_t seed = 5;
};

/// The non-myopic expected-cost minimiser as a standalone, self-contained
/// trigger: it clusters full-length training series, trains its own GBDT
/// prefix models per checkpoint, and halts when the expected-cost argmin over
/// future horizons is "now". The halting label comes from the trigger's own
/// per-checkpoint model (TriggerDecision::label), so no external base
/// classifier is consulted. Registered as trigger "eco-cost".
struct EcoCostTriggerOptions {
  std::vector<size_t> cluster_grid = {1, 2, 3};
  double time_cost = 0.001;
  double lambda = 100.0;
  double relative_delay_weight = 0.5;
  size_t cv_folds = 3;
  GbdtOptions gbdt;
  uint64_t seed = 5;
};

class EcoCostTrigger : public Trigger {
 public:
  explicit EcoCostTrigger(EcoCostTriggerOptions options = {})
      : options_(std::move(options)) {}

  std::string name() const override { return "eco-cost"; }
  std::string config_fingerprint() const override;
  bool needs_posteriors() const override { return false; }
  bool self_contained() const override { return true; }
  bool SupportsMultivariate() const override { return false; }
  ComposedOptions DefaultComposedOptions() const override;
  Status PlanCheckpoints(const Dataset& train, const FullClassifier* base,
                         const Deadline& deadline,
                         std::vector<size_t>* checkpoints) override;
  Status Fit(const TriggerFitContext& ctx) override;
  Result<TriggerDecision> Decide(const TriggerEvidence& evidence,
                                 TriggerState* state) const override;
  Result<std::optional<EarlyPrediction>> Finalize(
      const TimeSeries& series, TriggerState* state) const override;
  std::unique_ptr<Trigger> CloneUnfitted() const override;
  Status SaveState(Serializer& out) const override;
  Status LoadState(Deserializer& in) override;

  size_t chosen_clusters() const { return clusters_.centroids.size(); }

 private:
  /// Expected cost of deciding at checkpoint index `ci_future`, given cluster
  /// memberships at the current prefix.
  double ExpectedCost(const std::vector<double>& memberships,
                      size_t ci_future) const;

  Status FitWithClusters(const Dataset& train, size_t k,
                         const Deadline& deadline, double* training_cost);

  EcoCostTriggerOptions options_;
  size_t length_ = 0;
  std::vector<int> class_labels_;
  std::vector<size_t> checkpoints_;  // prefix lengths with a trained model
  KMeansModel clusters_;
  std::vector<GbdtClassifier> models_;  // one per checkpoint
  // prob_correct_[ci][k][yi] = P(ŷ = y | y = yi, cluster k) at checkpoint ci.
  std::vector<std::vector<std::vector<double>>> prob_correct_;
  // prior_[k][yi] = P(y = yi | cluster k).
  std::vector<std::vector<double>> prior_;
};

/// Legacy monolithic entry point, now a thin composition around the
/// self-contained "eco-cost" trigger (bit-identical to the pre-seam
/// implementation).
class EconomyKClassifier : public ComposedEarlyClassifier {
 public:
  explicit EconomyKClassifier(EconomyKOptions options = {});

  std::string config_fingerprint() const override;
  std::unique_ptr<EarlyClassifier> CloneUntrained() const override;

  size_t chosen_clusters() const;

 private:
  EconomyKOptions options_;
};

}  // namespace etsc

#endif  // ETSC_ALGOS_ECONOMY_K_H_
