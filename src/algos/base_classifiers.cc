#include "algos/base_classifiers.h"

#include <algorithm>
#include <limits>

#include "core/rng.h"
#include "tsc/muse.h"

namespace etsc {

Status AdaptiveWeasel::Fit(const Dataset& train) {
  if (train.NumVariables() > 1) {
    MuseOptions muse;
    muse.weasel = options_;
    impl_ = std::make_unique<MuseClassifier>(muse);
  } else {
    impl_ = std::make_unique<WeaselClassifier>(options_);
  }
  return impl_->Fit(train);
}

Result<int> AdaptiveWeasel::Predict(const TimeSeries& series) const {
  if (impl_ == nullptr) {
    return Status::FailedPrecondition("AdaptiveWeasel: not fitted");
  }
  return impl_->Predict(series);
}

Result<std::vector<double>> AdaptiveWeasel::PredictProba(
    const TimeSeries& series) const {
  if (impl_ == nullptr) {
    return Status::FailedPrecondition("AdaptiveWeasel: not fitted");
  }
  return impl_->PredictProba(series);
}

const std::vector<int>& AdaptiveWeasel::class_labels() const {
  static const std::vector<int>* kEmpty = new std::vector<int>();
  return impl_ == nullptr ? *kEmpty : impl_->class_labels();
}

std::unique_ptr<FullClassifier> AdaptiveWeasel::CloneUntrained() const {
  return std::make_unique<AdaptiveWeasel>(options_);
}

std::string AdaptiveWeasel::config_fingerprint() const {
  return "AdaptiveWeasel(" + WeaselOptionsFingerprint(options_) + ")";
}

// The WEASEL-vs-MUSE choice is data-dependent, so it travels with the
// fitted state as a type tag rather than with the configuration.
Status AdaptiveWeasel::SaveState(Serializer& out) const {
  if (impl_ == nullptr) {
    return Status::FailedPrecondition("AdaptiveWeasel: not fitted");
  }
  const bool is_muse = impl_->SupportsMultivariate();
  out.U8(is_muse ? 2 : 1);
  return impl_->SaveState(out);
}

Status AdaptiveWeasel::LoadState(Deserializer& in) {
  ETSC_ASSIGN_OR_RETURN(uint8_t tag, in.U8());
  if (tag == 1) {
    impl_ = std::make_unique<WeaselClassifier>(options_);
  } else if (tag == 2) {
    MuseOptions muse;
    muse.weasel = options_;
    impl_ = std::make_unique<MuseClassifier>(muse);
  } else {
    return Status::DataLoss("AdaptiveWeasel: unknown backend tag");
  }
  return impl_->LoadState(in);
}

Status NearestNeighborClassifier::Fit(const Dataset& train) {
  if (train.empty()) {
    return Status::InvalidArgument("1NN: empty training set");
  }
  if (train.NumVariables() != 1) {
    return Status::InvalidArgument("1NN: univariate input required");
  }
  length_ = train.MinLength();
  if (length_ == 0) return Status::InvalidArgument("1NN: empty series");
  train_series_.clear();
  train_series_.reserve(train.size());
  train_labels_.clear();
  for (size_t i = 0; i < train.size(); ++i) {
    auto values = train.instance(i).channel(0);
    std::vector<double> series(values.begin(), values.end());
    series.resize(length_);
    train_series_.push_back(std::move(series));
    train_labels_.push_back(train.label(i));
  }
  class_labels_ = train.ClassLabels();
  return Status::OK();
}

Result<int> NearestNeighborClassifier::Predict(const TimeSeries& series) const {
  if (train_series_.empty()) {
    return Status::FailedPrecondition("1NN: not fitted");
  }
  if (series.num_variables() != 1) {
    return Status::InvalidArgument("1NN: univariate input required");
  }
  auto values = series.channel(0);
  size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (size_t j = 0; j < train_series_.size(); ++j) {
    double dist2 = 0.0;
    for (size_t t = 0; t < length_; ++t) {
      const double v = t < values.size() ? values[t] : 0.0;
      const double d = v - train_series_[j][t];
      dist2 += d * d;
    }
    if (dist2 < best_d) {
      best_d = dist2;
      best = j;
    }
  }
  return train_labels_[best];
}

std::unique_ptr<FullClassifier> NearestNeighborClassifier::CloneUntrained() const {
  return std::make_unique<NearestNeighborClassifier>();
}

Status NearestNeighborClassifier::SaveState(Serializer& out) const {
  if (train_series_.empty()) {
    return Status::FailedPrecondition("1NN: not fitted");
  }
  out.Begin("1nn");
  out.SizeT(length_);
  out.F64Mat(train_series_);
  out.IntVec(train_labels_);
  out.IntVec(class_labels_);
  out.End();
  return Status::OK();
}

Status NearestNeighborClassifier::LoadState(Deserializer& in) {
  ETSC_RETURN_NOT_OK(in.Enter("1nn"));
  ETSC_ASSIGN_OR_RETURN(length_, in.SizeT());
  ETSC_ASSIGN_OR_RETURN(train_series_, in.F64Mat());
  ETSC_ASSIGN_OR_RETURN(train_labels_, in.IntVec());
  ETSC_ASSIGN_OR_RETURN(class_labels_, in.IntVec());
  if (train_series_.empty() || train_series_.size() != train_labels_.size()) {
    return Status::DataLoss("1NN: series/label count mismatch");
  }
  for (const auto& series : train_series_) {
    if (series.size() < length_) {
      return Status::DataLoss("1NN: stored series shorter than length");
    }
  }
  return in.Leave();
}

Result<std::vector<double>> GbdtSeriesClassifier::Features(
    const TimeSeries& series) const {
  if (series.num_variables() != 1) {
    return Status::InvalidArgument("GBDT: univariate input required");
  }
  auto values = series.channel(0);
  std::vector<double> features(values.begin(),
                               values.begin() + std::min(length_, values.size()));
  features.resize(length_, features.empty() ? 0.0 : features.back());
  return features;
}

Status GbdtSeriesClassifier::Fit(const Dataset& train) {
  if (train.empty()) {
    return Status::InvalidArgument("GBDT: empty training set");
  }
  if (train.NumVariables() != 1) {
    return Status::InvalidArgument("GBDT: univariate input required");
  }
  length_ = train.MinLength();
  if (length_ == 0) return Status::InvalidArgument("GBDT: empty series");
  std::vector<std::vector<double>> features;
  features.reserve(train.size());
  for (size_t i = 0; i < train.size(); ++i) {
    ETSC_ASSIGN_OR_RETURN(std::vector<double> row, Features(train.instance(i)));
    features.push_back(std::move(row));
  }
  Rng rng(options_.seed);
  model_ = GbdtClassifier(options_.gbdt);
  return model_.Fit(features, train.labels(), &rng);
}

Result<int> GbdtSeriesClassifier::Predict(const TimeSeries& series) const {
  if (!model_.fitted()) return Status::FailedPrecondition("GBDT: not fitted");
  ETSC_ASSIGN_OR_RETURN(std::vector<double> row, Features(series));
  return model_.Predict(row);
}

Result<std::vector<double>> GbdtSeriesClassifier::PredictProba(
    const TimeSeries& series) const {
  if (!model_.fitted()) return Status::FailedPrecondition("GBDT: not fitted");
  ETSC_ASSIGN_OR_RETURN(std::vector<double> row, Features(series));
  return model_.PredictProba(row);
}

std::unique_ptr<FullClassifier> GbdtSeriesClassifier::CloneUntrained() const {
  return std::make_unique<GbdtSeriesClassifier>(options_);
}

std::string GbdtSeriesClassifier::config_fingerprint() const {
  const auto& o = options_;
  return "GbdtSeries(rounds=" + std::to_string(o.gbdt.num_rounds) +
         ",lr=" + FingerprintDouble(o.gbdt.learning_rate) +
         ",subsample=" + FingerprintDouble(o.gbdt.subsample) +
         ",depth=" + std::to_string(o.gbdt.tree.max_depth) +
         ",minleaf=" + std::to_string(o.gbdt.tree.min_samples_leaf) +
         ",seed=" + std::to_string(o.seed) + ")";
}

Status GbdtSeriesClassifier::SaveState(Serializer& out) const {
  if (!model_.fitted()) return Status::FailedPrecondition("GBDT: not fitted");
  out.Begin("gbdt-series");
  out.SizeT(length_);
  model_.SaveState(out);
  out.End();
  return Status::OK();
}

Status GbdtSeriesClassifier::LoadState(Deserializer& in) {
  ETSC_RETURN_NOT_OK(in.Enter("gbdt-series"));
  ETSC_ASSIGN_OR_RETURN(length_, in.SizeT());
  model_ = GbdtClassifier(options_.gbdt);
  ETSC_RETURN_NOT_OK(model_.LoadState(in));
  return in.Leave();
}

}  // namespace etsc
