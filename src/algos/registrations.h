#ifndef ETSC_ALGOS_REGISTRATIONS_H_
#define ETSC_ALGOS_REGISTRATIONS_H_

namespace etsc {

/// Registers the framework's built-in ETSC algorithms (the paper's Table-2
/// set plus the three STRUT variants) in ClassifierRegistry::Global() under
/// their canonical names with the Table-4 default parameters, the six
/// standalone stopping rules in TriggerRegistry::Global() ("prob",
/// "ecec-ratio", "teaser-gate", "eco-cost", "ects-mpl", "strut-search"), and
/// the probabilistic full-series classifiers usable as composition bases in
/// BaseClassifierRegistry::Global() ("weasel", "adaptive-weasel",
/// "minirocket", "minirocket-logistic", "mlstm", "1nn", "gbdt"). Idempotent —
/// call it once at program start before resolving algorithms by name.
/// (Static-initialiser registration does not survive static-library linking,
/// so the registration is explicit; user code in executables can still use
/// ETSC_REGISTER_EARLY_CLASSIFIER directly.)
void RegisterBuiltinClassifiers();

}  // namespace etsc

#endif  // ETSC_ALGOS_REGISTRATIONS_H_
