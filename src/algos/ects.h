#ifndef ETSC_ALGOS_ECTS_H_
#define ETSC_ALGOS_ECTS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/classifier.h"

namespace etsc {

/// ECTS — Early Classification on Time Series (Xing, Pei & Yu 2012; paper
/// Sec. 3.2). Prefix-based and univariate: for every training series it
/// learns a Minimum Prediction Length (MPL) — the prefix length from which
/// the series' reverse-nearest-neighbor set stays stable through full length —
/// and lowers MPLs further through agglomerative (single-linkage) clustering
/// whose label-pure clusters must be 1-NN- and RNN-consistent. At test time a
/// growing prefix is matched to its training 1-NN and a label is emitted once
/// the observed length reaches the neighbor's MPL.
struct EctsOptions {
  /// Minimum |RNN| support a series needs for its RNN-based MPL (paper
  /// Table 4 uses 0).
  size_t support = 0;
  /// Stop merging clusters once their single-linkage distance exceeds this
  /// multiple of the mean pairwise distance (keeps O(N^2) clustering sane on
  /// large sets). <= 0 merges everything.
  double max_merge_distance_factor = 0.0;
};

class EctsClassifier : public EarlyClassifier {
 public:
  explicit EctsClassifier(EctsOptions options = {}) : options_(options) {}

  Status Fit(const Dataset& train) override;
  Result<EarlyPrediction> PredictEarly(const TimeSeries& series) const override;
  std::string name() const override { return "ECTS"; }
  bool SupportsMultivariate() const override { return false; }
  std::unique_ptr<EarlyClassifier> CloneUntrained() const override {
    return std::make_unique<EctsClassifier>(options_);
  }

  /// Learned per-training-series MPLs (after clustering); exposed for tests.
  const std::vector<size_t>& mpls() const { return mpls_; }

  std::string config_fingerprint() const override;
  Status SaveState(Serializer& out) const override;
  Status LoadState(Deserializer& in) override;

 private:
  EctsOptions options_;
  std::vector<std::vector<double>> train_series_;
  std::vector<int> train_labels_;
  size_t length_ = 0;
  std::vector<size_t> mpls_;
};

}  // namespace etsc

#endif  // ETSC_ALGOS_ECTS_H_
