#ifndef ETSC_ALGOS_ECTS_H_
#define ETSC_ALGOS_ECTS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/classifier.h"
#include "core/composed.h"
#include "core/trigger.h"

namespace etsc {

/// ECTS — Early Classification on Time Series (Xing, Pei & Yu 2012; paper
/// Sec. 3.2). Prefix-based and univariate: for every training series it
/// learns a Minimum Prediction Length (MPL) — the prefix length from which
/// the series' reverse-nearest-neighbor set stays stable through full length —
/// and lowers MPLs further through agglomerative (single-linkage) clustering
/// whose label-pure clusters must be 1-NN- and RNN-consistent. At test time a
/// growing prefix is matched to its training 1-NN and a label is emitted once
/// the observed length reaches the neighbor's MPL.
struct EctsOptions {
  /// Minimum |RNN| support a series needs for its RNN-based MPL (paper
  /// Table 4 uses 0).
  size_t support = 0;
  /// Stop merging clusters once their single-linkage distance exceeds this
  /// multiple of the mean pairwise distance (keeps O(N^2) clustering sane on
  /// large sets). <= 0 merges everything.
  double max_merge_distance_factor = 0.0;
};

/// The 1NN-stability rule as a self-contained trigger: it owns the training
/// series, the learned MPLs and the incremental 1-NN scan, and decides halt
/// and label together (no bank classifier involved). Registered as trigger
/// "ects-mpl"; the classifier half of a spec pairing it is ignored.
class EctsMplTrigger : public Trigger {
 public:
  explicit EctsMplTrigger(EctsOptions options = {}) : options_(options) {}

  std::string name() const override { return "ects-mpl"; }
  std::string config_fingerprint() const override;
  bool needs_posteriors() const override { return false; }
  bool self_contained() const override { return true; }
  bool SupportsMultivariate() const override { return false; }
  ComposedOptions DefaultComposedOptions() const override;
  Status PlanCheckpoints(const Dataset& train, const FullClassifier* base,
                         const Deadline& deadline,
                         std::vector<size_t>* checkpoints) override;
  Status Fit(const TriggerFitContext& ctx) override;
  std::unique_ptr<TriggerState> NewState() const override;
  Result<TriggerDecision> Decide(const TriggerEvidence& evidence,
                                 TriggerState* state) const override;
  Result<std::optional<EarlyPrediction>> Finalize(
      const TimeSeries& series, TriggerState* state) const override;
  std::unique_ptr<Trigger> CloneUnfitted() const override;
  Status SaveState(Serializer& out) const override;
  Status LoadState(Deserializer& in) override;

  /// Learned per-training-series MPLs (after clustering); exposed for tests.
  const std::vector<size_t>& mpls() const { return mpls_; }

 private:
  EctsOptions options_;
  std::vector<std::vector<double>> train_series_;
  std::vector<int> train_labels_;
  size_t length_ = 0;
  std::vector<size_t> mpls_;
};

/// Legacy monolithic entry point, now a thin composition around the
/// "ects-mpl" trigger (bit-identical to the pre-seam implementation).
class EctsClassifier : public ComposedEarlyClassifier {
 public:
  explicit EctsClassifier(EctsOptions options = {});

  std::string config_fingerprint() const override;
  std::unique_ptr<EarlyClassifier> CloneUntrained() const override;

  /// Learned per-training-series MPLs (after clustering); exposed for tests.
  const std::vector<size_t>& mpls() const;

 private:
  EctsOptions options_;
};

}  // namespace etsc

#endif  // ETSC_ALGOS_ECTS_H_
