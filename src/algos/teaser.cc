#include "algos/teaser.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/metrics.h"
#include "core/rng.h"

namespace etsc {

std::vector<double> TeaserClassifier::OcsvmFeatures(
    const std::vector<double>& proba) {
  std::vector<double> features = proba;
  double top1 = -1.0, top2 = -1.0;
  for (double p : proba) {
    if (p > top1) {
      top2 = top1;
      top1 = p;
    } else if (p > top2) {
      top2 = p;
    }
  }
  features.push_back(top2 < 0.0 ? top1 : top1 - top2);
  return features;
}

TimeSeries TeaserClassifier::Preprocess(const TimeSeries& series) const {
  if (!options_.z_normalize) return series;
  TimeSeries copy = series;
  copy.ZNormalize();
  return copy;
}

Status TeaserClassifier::Fit(const Dataset& train) {
  if (train.empty()) return Status::InvalidArgument("TEASER: empty training set");
  if (train.NumVariables() != 1) {
    return Status::InvalidArgument("TEASER: univariate input required");
  }
  length_ = train.MinLength();
  if (length_ < 2) return Status::InvalidArgument("TEASER: series too short");

  Dataset prepared = train;
  if (options_.z_normalize) {
    for (size_t i = 0; i < prepared.size(); ++i) {
      prepared.instance(i).ZNormalize();
    }
  }

  // Prefix grid: floor(i*L/S), first prefix = L/S, last = L.
  prefix_lengths_.clear();
  const size_t num = std::min(options_.num_prefixes, length_);
  for (size_t i = 1; i <= num; ++i) {
    const size_t len = std::max<size_t>(2, i * length_ / num);
    if (prefix_lengths_.empty() || prefix_lengths_.back() != len) {
      prefix_lengths_.push_back(len);
    }
  }
  if (prefix_lengths_.back() != length_) prefix_lengths_.push_back(length_);
  const size_t P = prefix_lengths_.size();
  const size_t n = prepared.size();

  const Deadline deadline = TrainDeadline();
  Rng rng(options_.seed);

  models_.clear();
  filters_.clear();
  filter_ok_.assign(P, false);
  models_.reserve(P);
  filters_.reserve(P);

  // train_accept[p][i] / train_pred[p][i]: the OC-SVM verdict and pipeline
  // prediction of prefix p on training instance i (used for the v search).
  std::vector<std::vector<int>> train_pred(P, std::vector<int>(n, 0));
  std::vector<std::vector<bool>> train_accept(P, std::vector<bool>(n, false));

  // Out-of-sample probability vectors per (prefix, instance) for the OC-SVM
  // and the v search; falls back to in-sample when cv_folds == 0 or the
  // training set is too small to fold.
  std::vector<std::vector<std::vector<double>>> oos_proba(
      P, std::vector<std::vector<double>>(n));
  const size_t folds =
      n >= 2 * std::max<size_t>(options_.cv_folds, 2) ? options_.cv_folds : 0;
  if (folds >= 2) {
    const auto splits = StratifiedKFold(prepared, folds, &rng);
    for (const auto& split : splits) {
      Dataset fold_train = prepared.Subset(split.train);
      for (size_t p = 0; p < P; ++p) {
        ETSC_RETURN_NOT_OK(deadline.Check("TEASER: train budget exceeded"));
        WeaselClassifier model(options_.weasel);
        ETSC_RETURN_NOT_OK(model.Fit(fold_train.Truncated(prefix_lengths_[p])));
        for (size_t test_idx : split.test) {
          auto proba = model.PredictProba(
              prepared.instance(test_idx).Prefix(prefix_lengths_[p]));
          if (!proba.ok()) return proba.status();
          // Align fold-local class order with the global one.
          std::vector<double> aligned(prepared.NumClasses(), 0.0);
          const auto global_labels = prepared.ClassLabels();
          const auto& local_labels = model.class_labels();
          for (size_t k = 0; k < local_labels.size(); ++k) {
            for (size_t g = 0; g < global_labels.size(); ++g) {
              if (global_labels[g] == local_labels[k]) aligned[g] = (*proba)[k];
            }
          }
          oos_proba[p][test_idx] = std::move(aligned);
        }
      }
    }
  }

  const auto global_labels = prepared.ClassLabels();
  for (size_t p = 0; p < P; ++p) {
    ETSC_RETURN_NOT_OK(deadline.Check("TEASER: train budget exceeded"));
    WeaselClassifier model(options_.weasel);
    ETSC_RETURN_NOT_OK(model.Fit(prepared.Truncated(prefix_lengths_[p])));

    // Collect feature vectors of correctly classified training instances.
    std::vector<std::vector<double>> correct_features;
    std::vector<std::vector<double>> all_features(n);
    for (size_t i = 0; i < n; ++i) {
      std::vector<double> proba_values;
      int predicted_label;
      if (folds >= 2) {
        proba_values = oos_proba[p][i];
        const size_t best = static_cast<size_t>(
            std::max_element(proba_values.begin(), proba_values.end()) -
            proba_values.begin());
        predicted_label = global_labels[best];
      } else {
        auto proba =
            model.PredictProba(prepared.instance(i).Prefix(prefix_lengths_[p]));
        if (!proba.ok()) return proba.status();
        proba_values = std::move(*proba);
        const auto& labels = model.class_labels();
        const size_t best = static_cast<size_t>(
            std::max_element(proba_values.begin(), proba_values.end()) -
            proba_values.begin());
        predicted_label = labels[best];
      }
      train_pred[p][i] = predicted_label;
      all_features[i] = OcsvmFeatures(proba_values);
      if (predicted_label == prepared.label(i)) {
        correct_features.push_back(all_features[i]);
      }
    }

    OneClassSvm filter(options_.ocsvm);
    if (correct_features.size() >= 2) {
      Status status = filter.Fit(correct_features, &rng);
      filter_ok_[p] = status.ok();
    }
    for (size_t i = 0; i < n; ++i) {
      if (filter_ok_[p]) {
        auto accepted = filter.Accepts(all_features[i]);
        train_accept[p][i] = accepted.ok() && *accepted;
      } else {
        train_accept[p][i] = true;  // no filter -> pass everything through
      }
    }
    models_.push_back(std::move(model));
    filters_.push_back(std::move(filter));
  }

  // Grid-search v in {1..max_consecutive} by harmonic mean on training data.
  double best_hm = -1.0;
  size_t best_v = 1;
  for (size_t v = 1; v <= options_.max_consecutive; ++v) {
    size_t correct = 0;
    double earliness_sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      int last_label = 0;
      size_t streak = 0;
      size_t stop = P - 1;
      int label = train_pred[P - 1][i];
      for (size_t p = 0; p < P; ++p) {
        if (train_accept[p][i]) {
          if (streak > 0 && train_pred[p][i] == last_label) {
            ++streak;
          } else {
            streak = 1;
            last_label = train_pred[p][i];
          }
          if (streak >= v) {
            stop = p;
            label = train_pred[p][i];
            break;
          }
        } else {
          streak = 0;
        }
      }
      if (label == prepared.label(i)) ++correct;
      earliness_sum += static_cast<double>(prefix_lengths_[stop]) /
                       static_cast<double>(length_);
    }
    const double accuracy = static_cast<double>(correct) / static_cast<double>(n);
    const double earliness = earliness_sum / static_cast<double>(n);
    const double hm = HarmonicMean(accuracy, earliness);
    if (hm > best_hm) {
      best_hm = hm;
      best_v = v;
    }
  }
  v_ = best_v;
  return Status::OK();
}

Result<EarlyPrediction> TeaserClassifier::PredictEarly(
    const TimeSeries& series) const {
  if (models_.empty()) return Status::FailedPrecondition("TEASER: not fitted");
  if (series.num_variables() != 1) {
    return Status::InvalidArgument("TEASER: univariate input required");
  }
  const TimeSeries prepared = Preprocess(series);

  const Deadline deadline = PredictDeadline();
  int last_label = 0;
  size_t streak = 0;
  for (size_t p = 0; p < prefix_lengths_.size(); ++p) {
    ETSC_RETURN_NOT_OK(deadline.Check("TEASER: predict budget exceeded"));
    const size_t len = prefix_lengths_[p];
    const bool is_last = p + 1 == prefix_lengths_.size() ||
                         prefix_lengths_[p + 1] > prepared.length();
    if (len > prepared.length()) break;
    auto proba = models_[p].PredictProba(prepared.Prefix(len));
    if (!proba.ok()) return proba.status();
    const auto& labels = models_[p].class_labels();
    const size_t best = static_cast<size_t>(
        std::max_element(proba->begin(), proba->end()) - proba->begin());
    const int label = labels[best];

    if (is_last) {
      // Final prefix: emit without the two-tier checks (paper Sec. 3.6).
      return EarlyPrediction{label, len};
    }

    bool accepted = true;
    if (filter_ok_[p]) {
      auto verdict = filters_[p].Accepts(OcsvmFeatures(*proba));
      accepted = verdict.ok() && *verdict;
    }
    if (accepted) {
      if (streak > 0 && label == last_label) {
        ++streak;
      } else {
        streak = 1;
        last_label = label;
      }
      if (streak >= v_) {
        return EarlyPrediction{label, len};
      }
    } else {
      streak = 0;
    }
  }
  // Series shorter than the first prefix.
  auto pred = models_[0].Predict(prepared);
  if (!pred.ok()) return pred.status();
  return EarlyPrediction{*pred, prepared.length()};
}

std::string TeaserClassifier::config_fingerprint() const {
  const auto& o = options_;
  return "TEASER(n=" + std::to_string(o.num_prefixes) +
         ",v<=" + std::to_string(o.max_consecutive) +
         ",cv=" + std::to_string(o.cv_folds) +
         ",z=" + std::to_string(o.z_normalize ? 1 : 0) +
         ",nu=" + FingerprintDouble(o.ocsvm.nu) +
         ",gamma=" + FingerprintDouble(o.ocsvm.gamma) +
         ",seed=" + std::to_string(o.seed) + "," +
         WeaselOptionsFingerprint(o.weasel) + ")";
}

Status TeaserClassifier::SaveState(Serializer& out) const {
  if (models_.empty()) return Status::FailedPrecondition("TEASER: not fitted");
  out.Begin("teaser");
  out.SizeT(length_);
  out.SizeT(v_);
  out.SizeVec(prefix_lengths_);
  out.SizeT(models_.size());
  for (const WeaselClassifier& model : models_) {
    ETSC_RETURN_NOT_OK(model.SaveState(out));
  }
  out.BoolVec(filter_ok_);
  for (size_t p = 0; p < filters_.size(); ++p) {
    if (filter_ok_[p]) filters_[p].SaveState(out);
  }
  out.End();
  return Status::OK();
}

Status TeaserClassifier::LoadState(Deserializer& in) {
  ETSC_RETURN_NOT_OK(in.Enter("teaser"));
  ETSC_ASSIGN_OR_RETURN(length_, in.SizeT());
  ETSC_ASSIGN_OR_RETURN(v_, in.SizeT());
  ETSC_ASSIGN_OR_RETURN(prefix_lengths_, in.SizeVec());
  ETSC_ASSIGN_OR_RETURN(size_t num_models, in.SizeT());
  if (num_models != prefix_lengths_.size() || num_models == 0) {
    return Status::DataLoss("TEASER: model/prefix count mismatch");
  }
  models_.assign(num_models, WeaselClassifier(options_.weasel));
  for (WeaselClassifier& model : models_) {
    ETSC_RETURN_NOT_OK(model.LoadState(in));
  }
  ETSC_ASSIGN_OR_RETURN(filter_ok_, in.BoolVec());
  if (filter_ok_.size() != num_models) {
    return Status::DataLoss("TEASER: filter flag count mismatch");
  }
  filters_.assign(num_models, OneClassSvm(options_.ocsvm));
  for (size_t p = 0; p < num_models; ++p) {
    if (filter_ok_[p]) {
      ETSC_RETURN_NOT_OK(filters_[p].LoadState(in));
    }
  }
  return in.Leave();
}

}  // namespace etsc
