#include "algos/teaser.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/metrics.h"
#include "core/rng.h"

namespace etsc {

namespace {

// Accepted-prediction streak the v-consecutive rule folds over.
struct TeaserGateState : TriggerState {
  int last_label = 0;
  size_t streak = 0;
};

}  // namespace

std::vector<double> TeaserGateTrigger::OcsvmFeatures(
    const std::vector<double>& proba) {
  std::vector<double> features = proba;
  double top1 = -1.0, top2 = -1.0;
  for (double p : proba) {
    if (p > top1) {
      top2 = top1;
      top1 = p;
    } else if (p > top2) {
      top2 = p;
    }
  }
  features.push_back(top2 < 0.0 ? top1 : top1 - top2);
  return features;
}

std::string TeaserGateTrigger::config_fingerprint() const {
  const auto& o = options_;
  return "teaser-gate(v<=" + std::to_string(o.max_consecutive) +
         ",cv=" + std::to_string(o.cv_folds) +
         ",nu=" + FingerprintDouble(o.ocsvm.nu) +
         ",gamma=" + FingerprintDouble(o.ocsvm.gamma) +
         ",seed=" + std::to_string(o.seed) + ")";
}

ComposedOptions TeaserGateTrigger::DefaultComposedOptions() const {
  ComposedOptions options;
  options.num_checkpoints = 20;
  options.grid = CheckpointGrid::kFloorMinTwo;
  return options;
}

Status TeaserGateTrigger::PlanCheckpoints(const Dataset& train,
                                          const FullClassifier*,
                                          const Deadline&,
                                          std::vector<size_t>*) {
  if (train.empty()) return Status::InvalidArgument("TEASER: empty training set");
  if (train.NumVariables() != 1) {
    return Status::InvalidArgument("TEASER: univariate input required");
  }
  if (train.MinLength() < 2) {
    return Status::InvalidArgument("TEASER: series too short");
  }
  return Status::OK();
}

Status TeaserGateTrigger::Fit(const TriggerFitContext& ctx) {
  const Dataset& prepared = *ctx.train;
  const std::vector<size_t>& prefix_lengths = *ctx.checkpoints;
  const Deadline& deadline = *ctx.deadline;
  const size_t length = prepared.MinLength();
  const size_t P = prefix_lengths.size();
  const size_t n = prepared.size();

  Rng rng(options_.seed);

  filters_.clear();
  filter_ok_.assign(P, false);
  filters_.reserve(P);

  // train_accept[p][i] / train_pred[p][i]: the OC-SVM verdict and pipeline
  // prediction of prefix p on training instance i (used for the v search).
  std::vector<std::vector<int>> train_pred(P, std::vector<int>(n, 0));
  std::vector<std::vector<bool>> train_accept(P, std::vector<bool>(n, false));

  // Out-of-sample probability vectors per (prefix, instance) for the OC-SVM
  // and the v search; falls back to cheap in-sample (bank) predictions when
  // cv_folds == 0 or the training set is too small to fold.
  std::vector<std::vector<std::vector<double>>> oos_proba(
      P, std::vector<std::vector<double>>(n));
  const size_t folds =
      n >= 2 * std::max<size_t>(options_.cv_folds, 2) ? options_.cv_folds : 0;
  if (folds >= 2) {
    const auto splits = StratifiedKFold(prepared, folds, &rng);
    for (const auto& split : splits) {
      Dataset fold_train = prepared.Subset(split.train);
      for (size_t p = 0; p < P; ++p) {
        ETSC_RETURN_NOT_OK(deadline.Check("TEASER: train budget exceeded"));
        std::unique_ptr<FullClassifier> model = ctx.base->CloneUntrained();
        ETSC_RETURN_NOT_OK(model->Fit(fold_train.Truncated(prefix_lengths[p])));
        for (size_t test_idx : split.test) {
          auto proba = model->PredictProba(
              prepared.instance(test_idx).Prefix(prefix_lengths[p]));
          if (!proba.ok()) return proba.status();
          // Align fold-local class order with the global one.
          std::vector<double> aligned(prepared.NumClasses(), 0.0);
          const auto global_labels = prepared.ClassLabels();
          const auto& local_labels = model->class_labels();
          for (size_t k = 0; k < local_labels.size(); ++k) {
            for (size_t g = 0; g < global_labels.size(); ++g) {
              if (global_labels[g] == local_labels[k]) aligned[g] = (*proba)[k];
            }
          }
          oos_proba[p][test_idx] = std::move(aligned);
        }
      }
    }
  }

  const auto global_labels = prepared.ClassLabels();
  for (size_t p = 0; p < P; ++p) {
    ETSC_RETURN_NOT_OK(deadline.Check("TEASER: train budget exceeded"));
    const FullClassifier& model = *(*ctx.bank)[p];

    // Collect feature vectors of correctly classified training instances.
    std::vector<std::vector<double>> correct_features;
    std::vector<std::vector<double>> all_features(n);
    for (size_t i = 0; i < n; ++i) {
      std::vector<double> proba_values;
      int predicted_label;
      if (folds >= 2) {
        proba_values = oos_proba[p][i];
        const size_t best = static_cast<size_t>(
            std::max_element(proba_values.begin(), proba_values.end()) -
            proba_values.begin());
        predicted_label = global_labels[best];
      } else {
        auto proba =
            model.PredictProba(prepared.instance(i).Prefix(prefix_lengths[p]));
        if (!proba.ok()) return proba.status();
        proba_values = std::move(*proba);
        const auto& labels = model.class_labels();
        const size_t best = static_cast<size_t>(
            std::max_element(proba_values.begin(), proba_values.end()) -
            proba_values.begin());
        predicted_label = labels[best];
      }
      train_pred[p][i] = predicted_label;
      all_features[i] = OcsvmFeatures(proba_values);
      if (predicted_label == prepared.label(i)) {
        correct_features.push_back(all_features[i]);
      }
    }

    OneClassSvm filter(options_.ocsvm);
    if (correct_features.size() >= 2) {
      Status status = filter.Fit(correct_features, &rng);
      filter_ok_[p] = status.ok();
    }
    for (size_t i = 0; i < n; ++i) {
      if (filter_ok_[p]) {
        auto accepted = filter.Accepts(all_features[i]);
        train_accept[p][i] = accepted.ok() && *accepted;
      } else {
        train_accept[p][i] = true;  // no filter -> pass everything through
      }
    }
    filters_.push_back(std::move(filter));
  }

  // Grid-search v in {1..max_consecutive} by harmonic mean on training data.
  double best_hm = -1.0;
  size_t best_v = 1;
  for (size_t v = 1; v <= options_.max_consecutive; ++v) {
    size_t correct = 0;
    double earliness_sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      int last_label = 0;
      size_t streak = 0;
      size_t stop = P - 1;
      int label = train_pred[P - 1][i];
      for (size_t p = 0; p < P; ++p) {
        if (train_accept[p][i]) {
          if (streak > 0 && train_pred[p][i] == last_label) {
            ++streak;
          } else {
            streak = 1;
            last_label = train_pred[p][i];
          }
          if (streak >= v) {
            stop = p;
            label = train_pred[p][i];
            break;
          }
        } else {
          streak = 0;
        }
      }
      if (label == prepared.label(i)) ++correct;
      earliness_sum += static_cast<double>(prefix_lengths[stop]) /
                       static_cast<double>(length);
    }
    const double accuracy = static_cast<double>(correct) / static_cast<double>(n);
    const double earliness = earliness_sum / static_cast<double>(n);
    const double hm = HarmonicMean(accuracy, earliness);
    if (hm > best_hm) {
      best_hm = hm;
      best_v = v;
    }
  }
  v_ = best_v;
  return Status::OK();
}

std::unique_ptr<TriggerState> TeaserGateTrigger::NewState() const {
  return std::make_unique<TeaserGateState>();
}

Result<TriggerDecision> TeaserGateTrigger::Decide(const TriggerEvidence& ev,
                                                  TriggerState* state) const {
  if (filter_ok_.empty()) return Status::FailedPrecondition("TEASER: not fitted");
  auto* gate = static_cast<TeaserGateState*>(state);
  const double best =
      *std::max_element(ev.posteriors->begin(), ev.posteriors->end());
  TriggerDecision decision;
  decision.confidence = best;
  if (ev.is_last) {
    // Final prefix: emit without the two-tier checks (paper Sec. 3.6).
    decision.halt = true;
    return decision;
  }

  bool accepted = true;
  if (filter_ok_[ev.checkpoint]) {
    auto verdict = filters_[ev.checkpoint].Accepts(OcsvmFeatures(*ev.posteriors));
    accepted = verdict.ok() && *verdict;
  }
  if (accepted) {
    if (gate->streak > 0 && ev.predicted == gate->last_label) {
      ++gate->streak;
    } else {
      gate->streak = 1;
      gate->last_label = ev.predicted;
    }
    if (gate->streak >= v_) decision.halt = true;
  } else {
    gate->streak = 0;
  }
  return decision;
}

std::unique_ptr<Trigger> TeaserGateTrigger::CloneUnfitted() const {
  return std::make_unique<TeaserGateTrigger>(options_);
}

Status TeaserGateTrigger::SaveState(Serializer& out) const {
  if (filter_ok_.empty()) return Status::FailedPrecondition("TEASER: not fitted");
  out.Begin("teaser-gate");
  out.SizeT(v_);
  out.BoolVec(filter_ok_);
  for (size_t p = 0; p < filters_.size(); ++p) {
    if (filter_ok_[p]) filters_[p].SaveState(out);
  }
  out.End();
  return Status::OK();
}

Status TeaserGateTrigger::LoadState(Deserializer& in) {
  ETSC_RETURN_NOT_OK(in.Enter("teaser-gate"));
  ETSC_ASSIGN_OR_RETURN(v_, in.SizeT());
  ETSC_ASSIGN_OR_RETURN(filter_ok_, in.BoolVec());
  if (filter_ok_.empty()) {
    return Status::DataLoss("TEASER: empty filter flag vector");
  }
  filters_.assign(filter_ok_.size(), OneClassSvm(options_.ocsvm));
  for (size_t p = 0; p < filters_.size(); ++p) {
    if (filter_ok_[p]) {
      ETSC_RETURN_NOT_OK(filters_[p].LoadState(in));
    }
  }
  return in.Leave();
}

namespace {

ComposedParts TeaserParts(const TeaserOptions& options) {
  ComposedParts parts;
  parts.name = "TEASER";
  parts.base = std::make_unique<WeaselClassifier>(options.weasel);
  TeaserTriggerOptions trigger_options;
  trigger_options.max_consecutive = options.max_consecutive;
  trigger_options.cv_folds = options.cv_folds;
  trigger_options.ocsvm = options.ocsvm;
  trigger_options.seed = options.seed;
  parts.trigger = std::make_unique<TeaserGateTrigger>(trigger_options);
  parts.options.num_checkpoints = options.num_prefixes;
  parts.options.grid = CheckpointGrid::kFloorMinTwo;
  parts.options.z_normalize = options.z_normalize;
  return parts;
}

}  // namespace

TeaserClassifier::TeaserClassifier(TeaserOptions options)
    : ComposedEarlyClassifier(TeaserParts(options)), options_(options) {}

std::string TeaserClassifier::config_fingerprint() const {
  const auto& o = options_;
  return "TEASER(n=" + std::to_string(o.num_prefixes) +
         ",v<=" + std::to_string(o.max_consecutive) +
         ",cv=" + std::to_string(o.cv_folds) +
         ",z=" + std::to_string(o.z_normalize ? 1 : 0) +
         ",nu=" + FingerprintDouble(o.ocsvm.nu) +
         ",gamma=" + FingerprintDouble(o.ocsvm.gamma) +
         ",seed=" + std::to_string(o.seed) + "," +
         WeaselOptionsFingerprint(o.weasel) + ")";
}

std::unique_ptr<EarlyClassifier> TeaserClassifier::CloneUntrained() const {
  return std::make_unique<TeaserClassifier>(options_);
}

size_t TeaserClassifier::chosen_v() const {
  return static_cast<const TeaserGateTrigger&>(trigger()).chosen_v();
}

}  // namespace etsc
