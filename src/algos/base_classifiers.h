#ifndef ETSC_ALGOS_BASE_CLASSIFIERS_H_
#define ETSC_ALGOS_BASE_CLASSIFIERS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/classifier.h"
#include "ml/gbdt.h"
#include "tsc/weasel.h"

namespace etsc {

/// Small full-TSC classifiers that exist primarily as the classifier half of
/// a classifier+trigger composition (core/composed.h). The heavyweight bases
/// (WEASEL, MiniROCKET, MLSTM) live in src/tsc/; this file holds the adaptive
/// WEASEL/MUSE switch shared with STRUT plus two cheap baselines: raw-value
/// 1NN and a GBDT over raw (padded) values.

/// Chooses WEASEL or WEASEL+MUSE at Fit time based on input dimensionality so
/// one configuration handles both kinds of dataset, as in the paper's
/// S-WEASEL. Registered as base classifier "adaptive-weasel".
class AdaptiveWeasel : public FullClassifier {
 public:
  explicit AdaptiveWeasel(WeaselOptions options = {}) : options_(options) {}

  Status Fit(const Dataset& train) override;
  Result<int> Predict(const TimeSeries& series) const override;
  Result<std::vector<double>> PredictProba(const TimeSeries& series) const override;
  const std::vector<int>& class_labels() const override;
  std::string name() const override { return "WEASEL"; }
  bool SupportsMultivariate() const override { return true; }
  std::unique_ptr<FullClassifier> CloneUntrained() const override;
  std::string config_fingerprint() const override;
  Status SaveState(Serializer& out) const override;
  Status LoadState(Deserializer& in) override;

 private:
  WeaselOptions options_;
  std::unique_ptr<FullClassifier> impl_;
};

/// Euclidean one-nearest-neighbour over raw values (channel 0), the classic
/// TSC reference baseline; prefixes shorter than the training length are
/// zero-padded, matching ECTS's distance convention. Registered as "1nn".
class NearestNeighborClassifier : public FullClassifier {
 public:
  NearestNeighborClassifier() = default;

  Status Fit(const Dataset& train) override;
  Result<int> Predict(const TimeSeries& series) const override;
  const std::vector<int>& class_labels() const override { return class_labels_; }
  std::string name() const override { return "1NN"; }
  bool SupportsMultivariate() const override { return false; }
  std::unique_ptr<FullClassifier> CloneUntrained() const override;
  std::string config_fingerprint() const override { return "1NN(euclid)"; }
  Status SaveState(Serializer& out) const override;
  Status LoadState(Deserializer& in) override;

 private:
  size_t length_ = 0;
  std::vector<std::vector<double>> train_series_;
  std::vector<int> train_labels_;
  std::vector<int> class_labels_;
};

/// Gradient-boosted trees over the raw value vector (padded with the last
/// observed value to the training length, ECONOMY-K's feature convention).
/// Registered as "gbdt".
struct GbdtSeriesOptions {
  GbdtOptions gbdt;
  uint64_t seed = 41;
};

class GbdtSeriesClassifier : public FullClassifier {
 public:
  explicit GbdtSeriesClassifier(GbdtSeriesOptions options = {})
      : options_(options) {}

  Status Fit(const Dataset& train) override;
  Result<int> Predict(const TimeSeries& series) const override;
  Result<std::vector<double>> PredictProba(const TimeSeries& series) const override;
  const std::vector<int>& class_labels() const override {
    return model_.class_labels();
  }
  std::string name() const override { return "GBDT"; }
  bool SupportsMultivariate() const override { return false; }
  std::unique_ptr<FullClassifier> CloneUntrained() const override;
  std::string config_fingerprint() const override;
  Status SaveState(Serializer& out) const override;
  Status LoadState(Deserializer& in) override;

 private:
  Result<std::vector<double>> Features(const TimeSeries& series) const;

  GbdtSeriesOptions options_;
  size_t length_ = 0;
  GbdtClassifier model_{GbdtOptions{}};
};

}  // namespace etsc

#endif  // ETSC_ALGOS_BASE_CLASSIFIERS_H_
