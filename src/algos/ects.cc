#include "algos/ects.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "ml/distance.h"
#include "ml/hierarchical.h"
#include "ml/nn_search.h"

namespace etsc {

namespace {

// Nearest neighbor per series per prefix length, computed incrementally:
// nn[l-1][i] is the 1-NN of i under prefix l. O(N^2 L) time, O(N^2) memory.
// The dominant cost of the trigger fit, so it polls the train deadline per
// prefix.
Status NearestPerPrefix(const std::vector<std::vector<double>>& series,
                        size_t length, const Deadline& deadline,
                        std::vector<std::vector<size_t>>* out) {
  const size_t n = series.size();
  std::vector<std::vector<double>> dist2(n, std::vector<double>(n, 0.0));
  std::vector<std::vector<size_t>> nn(length, std::vector<size_t>(n, 0));
  for (size_t l = 1; l <= length; ++l) {
    if (deadline.CheckEvery(8)) {
      return Status::DeadlineExceeded("ECTS: train budget exceeded");
    }
    const size_t t = l - 1;
    for (size_t i = 0; i < n; ++i) {
      const double xi = t < series[i].size() ? series[i][t] : 0.0;
      for (size_t j = i + 1; j < n; ++j) {
        const double xj = t < series[j].size() ? series[j][t] : 0.0;
        const double d = xi - xj;
        dist2[i][j] += d * d;
      }
    }
    for (size_t i = 0; i < n; ++i) {
      size_t best = i == 0 ? 1 : 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const double d = i < j ? dist2[i][j] : dist2[j][i];
        if (d < best_d) {
          best_d = d;
          best = j;
        }
      }
      nn[l - 1][i] = best;
    }
  }
  *out = std::move(nn);
  return Status::OK();
}

// Incremental 1-NN scan over the growing prefix; `best` persists across
// checkpoints so the fallback can report the last nearest neighbor seen.
struct EctsMplState : TriggerState {
  std::vector<double> dist2;
  size_t best = 0;
};

}  // namespace

std::string EctsMplTrigger::config_fingerprint() const {
  return "ects-mpl(support=" + std::to_string(options_.support) + ",merge=" +
         FingerprintDouble(options_.max_merge_distance_factor) + ")";
}

ComposedOptions EctsMplTrigger::DefaultComposedOptions() const {
  ComposedOptions options;
  options.grid = CheckpointGrid::kEveryPoint;
  return options;
}

Status EctsMplTrigger::PlanCheckpoints(const Dataset& train,
                                       const FullClassifier*, const Deadline&,
                                       std::vector<size_t>*) {
  if (train.size() < 2) {
    return Status::InvalidArgument("ECTS: need at least two training series");
  }
  if (train.NumVariables() != 1) {
    return Status::InvalidArgument("ECTS: univariate input required");
  }
  if (train.MinLength() == 0) {
    return Status::InvalidArgument("ECTS: empty series");
  }
  return Status::OK();
}

Status EctsMplTrigger::Fit(const TriggerFitContext& ctx) {
  const Dataset& train = *ctx.train;
  const Deadline& deadline = *ctx.deadline;
  length_ = train.MinLength();

  const size_t n = train.size();
  train_series_.assign(n, {});
  train_labels_ = train.labels();
  for (size_t i = 0; i < n; ++i) {
    std::span<const double> c = train.instance(i).channel(0);
    train_series_[i].assign(c.begin(), c.end());
    train_series_[i].resize(length_);
  }

  // 1-NN per prefix, RNN sets per prefix.
  std::vector<std::vector<size_t>> nn;
  ETSC_RETURN_NOT_OK(NearestPerPrefix(train_series_, length_, deadline, &nn));
  std::vector<std::vector<std::vector<size_t>>> rnn(length_);
  for (size_t l = 1; l <= length_; ++l) {
    rnn[l - 1] = ReverseNearestNeighbors(nn[l - 1]);
    for (auto& set : rnn[l - 1]) std::sort(set.begin(), set.end());
  }

  // RNN-based MPL per series: the smallest l such that RNN_k(x) == RNN_L(x)
  // for all k in [l, L], with |RNN_L(x)| > support; L when unstable or empty.
  mpls_.assign(n, length_);
  const auto& rnn_full = rnn[length_ - 1];
  for (size_t i = 0; i < n; ++i) {
    if (rnn_full[i].size() <= options_.support || rnn_full[i].empty()) continue;
    size_t mpl = length_;
    for (size_t l = length_; l >= 1; --l) {
      if (rnn[l - 1][i] == rnn_full[i]) {
        mpl = l;
      } else {
        break;
      }
    }
    mpls_[i] = mpl;
  }

  ETSC_RETURN_NOT_OK(deadline.Check("ECTS: train budget exceeded"));

  // Agglomerative clustering on full-length distances (single linkage, the
  // 1-NN merge rule of the original algorithm).
  std::vector<std::vector<double>> dist(n, std::vector<double>(n, 0.0));
  double mean_dist = 0.0;
  size_t pairs = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      // Unrolled squared kernel; one sqrt per pair (the linkage thresholds
      // are expressed in real distances).
      const double sum = EuclideanPrefixSq(train_series_[i], train_series_[j],
                                           length_);
      dist[i][j] = dist[j][i] = std::sqrt(sum);
      mean_dist += dist[i][j];
      ++pairs;
    }
  }
  mean_dist /= static_cast<double>(std::max<size_t>(pairs, 1));

  auto merges_result = AgglomerativeCluster(dist, Linkage::kSingle);
  ETSC_RETURN_NOT_OK(merges_result.status());
  const auto& merges = merges_result.value();

  // Walk merges in order; every label-pure cluster may lower its members'
  // MPLs via combined 1-NN + RNN consistency.
  for (const auto& merge : merges) {
    if (options_.max_merge_distance_factor > 0.0 &&
        merge.distance > options_.max_merge_distance_factor * mean_dist) {
      break;
    }
    if (deadline.CheckEvery(8)) {
      return Status::DeadlineExceeded("ECTS: train budget exceeded");
    }
    const auto& members = merge.members;
    // Label purity.
    bool pure = true;
    for (size_t m : members) {
      if (train_labels_[m] != train_labels_[members[0]]) {
        pure = false;
        break;
      }
    }
    if (!pure) continue;

    std::set<size_t> member_set(members.begin(), members.end());
    // RNN of the cluster at full length: every series whose NN lies inside.
    std::vector<size_t> rnn_cluster_full;
    for (size_t j = 0; j < n; ++j) {
      if (member_set.count(nn[length_ - 1][j]) > 0) rnn_cluster_full.push_back(j);
    }
    // Find the smallest l with both consistencies holding on [l, L].
    size_t cluster_mpl = length_;
    for (size_t l = length_; l >= 1; --l) {
      bool consistent = true;
      // 1-NN consistency: members' NNs stay inside the cluster.
      for (size_t m : members) {
        if (member_set.count(nn[l - 1][m]) == 0) {
          consistent = false;
          break;
        }
      }
      if (consistent) {
        // RNN consistency: the cluster's RNN set matches the full-length one.
        std::vector<size_t> rnn_cluster;
        for (size_t j = 0; j < n; ++j) {
          if (member_set.count(nn[l - 1][j]) > 0) rnn_cluster.push_back(j);
        }
        if (rnn_cluster != rnn_cluster_full) consistent = false;
      }
      if (!consistent) break;
      cluster_mpl = l;
    }
    for (size_t m : members) mpls_[m] = std::min(mpls_[m], cluster_mpl);
  }
  return Status::OK();
}

std::unique_ptr<TriggerState> EctsMplTrigger::NewState() const {
  return std::make_unique<EctsMplState>();
}

Result<TriggerDecision> EctsMplTrigger::Decide(const TriggerEvidence& ev,
                                               TriggerState* state) const {
  if (train_series_.empty()) {
    return Status::FailedPrecondition("ECTS: not fitted");
  }
  if (ev.series->num_variables() != 1) {
    return Status::InvalidArgument("ECTS: univariate input required");
  }
  if (ev.deadline->CheckEvery(32)) {
    return Status::DeadlineExceeded("ECTS: predict budget exceeded");
  }
  auto* scan = static_cast<EctsMplState*>(state);
  const size_t n = train_series_.size();
  if (scan->dist2.empty()) scan->dist2.assign(n, 0.0);

  // One streamed point: update running squared distances to every training
  // series and track the nearest.
  const auto& values = ev.series->channel(0);
  const size_t l = ev.prefix_length;
  const size_t t = l - 1;
  double best_d = std::numeric_limits<double>::infinity();
  for (size_t j = 0; j < n; ++j) {
    const double d = values[t] - train_series_[j][t];
    scan->dist2[j] += d * d;
    if (scan->dist2[j] < best_d) {
      best_d = scan->dist2[j];
      scan->best = j;
    }
  }

  TriggerDecision decision;
  if (l >= mpls_[scan->best]) {
    decision.halt = true;
    decision.label = train_labels_[scan->best];
  }
  return decision;
}

Result<std::optional<EarlyPrediction>> EctsMplTrigger::Finalize(
    const TimeSeries& series, TriggerState* state) const {
  // No MPL reached: fall back to the nearest neighbor seen so far (index 0
  // when the series was too short for even one point).
  auto* scan = static_cast<EctsMplState*>(state);
  EarlyPrediction out;
  out.label = train_labels_[scan->best];
  out.prefix_length = series.length();
  return std::optional<EarlyPrediction>(out);
}

std::unique_ptr<Trigger> EctsMplTrigger::CloneUnfitted() const {
  return std::make_unique<EctsMplTrigger>(options_);
}

Status EctsMplTrigger::SaveState(Serializer& out) const {
  if (train_series_.empty()) return Status::FailedPrecondition("ECTS: not fitted");
  out.Begin("ects-mpl");
  out.F64Mat(train_series_);
  out.IntVec(train_labels_);
  out.SizeT(length_);
  out.SizeVec(mpls_);
  out.End();
  return Status::OK();
}

Status EctsMplTrigger::LoadState(Deserializer& in) {
  ETSC_RETURN_NOT_OK(in.Enter("ects-mpl"));
  ETSC_ASSIGN_OR_RETURN(train_series_, in.F64Mat());
  ETSC_ASSIGN_OR_RETURN(train_labels_, in.IntVec());
  ETSC_ASSIGN_OR_RETURN(length_, in.SizeT());
  ETSC_ASSIGN_OR_RETURN(mpls_, in.SizeVec());
  if (train_series_.empty() || train_labels_.size() != train_series_.size() ||
      mpls_.size() != train_series_.size()) {
    return Status::DataLoss("ECTS: inconsistent fitted state");
  }
  for (const auto& series : train_series_) {
    if (series.size() < length_) {
      return Status::DataLoss("ECTS: training series shorter than length");
    }
  }
  return in.Leave();
}

namespace {

ComposedParts EctsParts(const EctsOptions& options) {
  ComposedParts parts;
  parts.name = "ECTS";
  parts.trigger = std::make_unique<EctsMplTrigger>(options);
  parts.options.grid = CheckpointGrid::kEveryPoint;
  return parts;
}

}  // namespace

EctsClassifier::EctsClassifier(EctsOptions options)
    : ComposedEarlyClassifier(EctsParts(options)), options_(options) {}

std::string EctsClassifier::config_fingerprint() const {
  return "ECTS(support=" + std::to_string(options_.support) + ",merge=" +
         FingerprintDouble(options_.max_merge_distance_factor) + ")";
}

std::unique_ptr<EarlyClassifier> EctsClassifier::CloneUntrained() const {
  return std::make_unique<EctsClassifier>(options_);
}

const std::vector<size_t>& EctsClassifier::mpls() const {
  return static_cast<const EctsMplTrigger&>(trigger()).mpls();
}

}  // namespace etsc
