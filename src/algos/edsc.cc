#include "algos/edsc.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <optional>

#include "core/parallel.h"
#include "core/rng.h"
#include "ml/distance.h"

namespace etsc {

namespace {

// Squared distance of `pattern` (length m) to the window starting at `s`,
// abandoning once the partial sum exceeds `bound` (returns a value > bound in
// that case). Same 4-way unrolled accumulators and reduction order as the
// ml/distance kernels.
double WindowSqDistance(const double* p, const double* s, size_t m,
                        double bound) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const double d0 = p[i] - s[i];
    const double d1 = p[i + 1] - s[i + 1];
    const double d2 = p[i + 2] - s[i + 2];
    const double d3 = p[i + 3] - s[i + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
    if ((s0 + s1) + (s2 + s3) > bound) return (s0 + s1) + (s2 + s3);
  }
  double sum = (s0 + s1) + (s2 + s3);
  for (; i < m; ++i) {
    const double d = p[i] - s[i];
    sum += d * d;
    if (sum > bound) break;
  }
  return sum;
}

// Earliest prefix length of `series` at which some window within the prefix
// matches `pattern` within `threshold`; 0 when it never matches. The earliest
// match of a window [s, s+m) becomes visible at prefix length s+m. Matching
// runs entirely in squared space (threshold squared once, no sqrt per window).
size_t EarliestMatchLength(const std::vector<double>& pattern,
                           const std::vector<double>& series, double threshold) {
  const size_t m = pattern.size();
  if (series.size() < m) return 0;
  const double thr2 = threshold * threshold;
  for (size_t start = 0; start + m <= series.size(); ++start) {
    if (WindowSqDistance(pattern.data(), series.data() + start, m, thr2) <=
        thr2) {
      return start + m;
    }
  }
  return 0;
}

}  // namespace

Status EdscClassifier::Fit(const Dataset& train) {
  if (train.empty()) return Status::InvalidArgument("EDSC: empty training set");
  if (train.NumVariables() != 1) {
    return Status::InvalidArgument("EDSC: univariate input required");
  }
  const size_t n = train.size();
  std::vector<std::vector<double>> series(n);
  for (size_t i = 0; i < n; ++i) {
    std::span<const double> c = train.instance(i).channel(0);
    series[i].assign(c.begin(), c.end());
  }
  const std::vector<int>& labels = train.labels();

  // Majority label fallback.
  {
    const auto counts = train.ClassCounts();
    size_t best = 0;
    majority_label_ = counts.begin()->first;
    for (const auto& [label, count] : counts) {
      if (count > best) {
        best = count;
        majority_label_ = label;
      }
    }
  }

  const size_t max_len = std::max<size_t>(
      options_.min_length,
      static_cast<size_t>(options_.max_length_fraction *
                          static_cast<double>(train.MinLength())));
  const Deadline deadline = TrainDeadline();

  // Candidate coordinates (source series, start, length) under the strides;
  // subsampled deterministically when max_candidates caps the search.
  struct Coord {
    size_t src, start, len;
  };
  std::vector<Coord> coords;
  for (size_t src = 0; src < n; ++src) {
    const auto& s = series[src];
    for (size_t len = options_.min_length; len <= std::min(max_len, s.size());
         len += options_.length_stride) {
      for (size_t start = 0; start + len <= s.size();
           start += options_.start_stride) {
        coords.push_back({src, start, len});
      }
    }
  }
  if (options_.max_candidates > 0 && coords.size() > options_.max_candidates) {
    Rng rng(options_.seed);
    rng.Shuffle(&coords);
    coords.resize(options_.max_candidates);
  }

  // Learn CHE thresholds and utilities per candidate. Candidates are scored
  // independently on the thread pool into per-coordinate slots, then gathered
  // in coordinate order — identical results to the old serial loop. The loop
  // harness polls the train deadline (the dominant Fit cost lives here).
  std::vector<std::optional<Shapelet>> scored(coords.size());
  ETSC_RETURN_NOT_OK(ParallelForStatus(
      coords.size(),
      [&](size_t c) -> Status {
        const Coord& coord = coords[c];
        const size_t src = coord.src;
        const auto& s = series[src];
        std::vector<double> pattern(s.begin() + coord.start,
                                    s.begin() + coord.start + coord.len);

        // Distances of the pattern to all other-class series (real distances:
        // the Chebyshev statistics live in un-squared space).
        double mean = 0.0, m2 = 0.0;
        size_t count = 0;
        for (size_t j = 0; j < n; ++j) {
          if (labels[j] == labels[src]) continue;
          const double d2 = MinSubseriesDistanceSq(pattern, series[j]);
          if (!std::isfinite(d2)) continue;
          const double d = std::sqrt(d2);
          ++count;
          const double delta = d - mean;
          mean += delta / static_cast<double>(count);
          m2 += delta * (d - mean);
        }
        if (count == 0) return Status::OK();
        const double stddev =
            count > 1 ? std::sqrt(m2 / static_cast<double>(count)) : 0.0;
        // One-sided Chebyshev bound: distances below mean - k*sigma are
        // unlikely to come from another class.
        const double threshold =
            std::max(mean - options_.chebyshev_k * stddev, 0.0);
        if (threshold <= 0.0) return Status::OK();

        // Coverage, precision and earliness-weighted recall over training.
        size_t covered = 0, covered_target = 0;
        double recall_weight = 0.0;
        size_t total_target = 0;
        for (size_t j = 0; j < n; ++j) {
          const bool target = labels[j] == labels[src];
          if (target) ++total_target;
          const size_t eml = EarliestMatchLength(pattern, series[j], threshold);
          if (eml == 0) continue;
          ++covered;
          if (target) {
            ++covered_target;
            recall_weight += 1.0 - static_cast<double>(eml - 1) /
                                       static_cast<double>(series[j].size());
          }
        }
        if (covered == 0 || covered_target == 0 || total_target == 0) {
          return Status::OK();
        }
        Shapelet shapelet;
        shapelet.pattern = std::move(pattern);
        shapelet.threshold = threshold;
        shapelet.label = labels[src];
        shapelet.precision =
            static_cast<double>(covered_target) / static_cast<double>(covered);
        shapelet.weighted_recall =
            recall_weight / static_cast<double>(total_target);
        const double denom = shapelet.precision + shapelet.weighted_recall;
        shapelet.utility =
            denom > 0
                ? 2.0 * shapelet.precision * shapelet.weighted_recall / denom
                : 0.0;
        scored[c] = std::move(shapelet);
        return Status::OK();
      },
      /*grain=*/1, &deadline, "EDSC: train budget exceeded"));
  std::vector<Shapelet> candidates;
  for (auto& slot : scored) {
    if (slot.has_value()) candidates.push_back(std::move(*slot));
  }
  if (candidates.empty()) {
    return Status::FailedPrecondition("EDSC: no usable shapelet candidates");
  }

  std::sort(candidates.begin(), candidates.end(),
            [](const Shapelet& a, const Shapelet& b) {
              return a.utility > b.utility;
            });
  if (candidates.size() > options_.max_shapelets) {
    candidates.resize(options_.max_shapelets);
  }

  // Greedy coverage selection: add shapelets by utility until every training
  // series that can be covered is covered.
  std::vector<bool> covered(n, false);
  size_t num_covered = 0;
  shapelets_.clear();
  for (auto& candidate : candidates) {
    bool adds = false;
    for (size_t j = 0; j < n; ++j) {
      if (covered[j]) continue;
      if (EarliestMatchLength(candidate.pattern, series[j],
                              candidate.threshold) > 0) {
        covered[j] = true;
        ++num_covered;
        adds = true;
      }
    }
    if (adds) shapelets_.push_back(std::move(candidate));
    if (num_covered == n) break;
    if (deadline.CheckEvery(4)) {
      return Status::DeadlineExceeded("EDSC: train budget exceeded");
    }
  }
  return Status::OK();
}

Result<EarlyPrediction> EdscClassifier::PredictEarly(
    const TimeSeries& series) const {
  if (shapelets_.empty()) return Status::FailedPrecondition("EDSC: not fitted");
  if (series.num_variables() != 1) {
    return Status::InvalidArgument("EDSC: univariate input required");
  }
  const auto& values = series.channel(0);
  const size_t length = values.size();

  // Stream the prefix: at prefix length l only windows ending exactly at l
  // are new, so each (shapelet, end point) pair is examined once.
  const Deadline deadline = PredictDeadline();
  for (size_t l = 1; l <= length; ++l) {
    if (deadline.CheckEvery(32)) {
      return Status::DeadlineExceeded("EDSC: predict budget exceeded");
    }
    for (const auto& shapelet : shapelets_) {
      const size_t m = shapelet.pattern.size();
      if (l < m) continue;
      const size_t start = l - m;
      const double thr2 = shapelet.threshold * shapelet.threshold;
      if (WindowSqDistance(shapelet.pattern.data(), values.data() + start, m,
                           thr2) <= thr2) {
        return EarlyPrediction{shapelet.label, l};
      }
    }
  }
  // Nothing fired: fall back to the class of the globally closest shapelet
  // (relative to its threshold), or the majority label.
  // Compared in squared space: d/thr < best  <=>  d^2/thr^2 < best^2.
  double best_ratio_sq = std::numeric_limits<double>::infinity();
  int best_label = majority_label_;
  for (const auto& shapelet : shapelets_) {
    const double d_sq = MinSubseriesDistanceSq(shapelet.pattern, values);
    if (!std::isfinite(d_sq) || shapelet.threshold <= 0.0) continue;
    const double ratio_sq =
        d_sq / (shapelet.threshold * shapelet.threshold);
    if (ratio_sq < best_ratio_sq) {
      best_ratio_sq = ratio_sq;
      best_label = shapelet.label;
    }
  }
  return EarlyPrediction{best_label, length};
}

std::string EdscClassifier::config_fingerprint() const {
  const auto& o = options_;
  return "EDSC(k=" + FingerprintDouble(o.chebyshev_k) +
         ",minl=" + std::to_string(o.min_length) +
         ",maxf=" + FingerprintDouble(o.max_length_fraction) +
         ",ss=" + std::to_string(o.start_stride) +
         ",ls=" + std::to_string(o.length_stride) +
         ",max=" + std::to_string(o.max_shapelets) +
         ",cand=" + std::to_string(o.max_candidates) +
         ",seed=" + std::to_string(o.seed) + ")";
}

Status EdscClassifier::SaveState(Serializer& out) const {
  if (shapelets_.empty()) return Status::FailedPrecondition("EDSC: not fitted");
  out.Begin("edsc");
  out.SizeT(shapelets_.size());
  for (const Shapelet& s : shapelets_) {
    out.F64Vec(s.pattern);
    out.F64(s.threshold);
    out.I64(s.label);
    out.F64(s.utility);
    out.F64(s.precision);
    out.F64(s.weighted_recall);
  }
  out.I64(majority_label_);
  out.End();
  return Status::OK();
}

Status EdscClassifier::LoadState(Deserializer& in) {
  ETSC_RETURN_NOT_OK(in.Enter("edsc"));
  ETSC_ASSIGN_OR_RETURN(size_t count, in.SizeT());
  shapelets_.clear();
  for (size_t i = 0; i < count; ++i) {
    Shapelet s;
    ETSC_ASSIGN_OR_RETURN(s.pattern, in.F64Vec());
    if (s.pattern.empty()) return Status::DataLoss("EDSC: empty shapelet");
    ETSC_ASSIGN_OR_RETURN(s.threshold, in.F64());
    ETSC_ASSIGN_OR_RETURN(int64_t label, in.I64());
    s.label = static_cast<int>(label);
    ETSC_ASSIGN_OR_RETURN(s.utility, in.F64());
    ETSC_ASSIGN_OR_RETURN(s.precision, in.F64());
    ETSC_ASSIGN_OR_RETURN(s.weighted_recall, in.F64());
    shapelets_.push_back(std::move(s));
  }
  ETSC_ASSIGN_OR_RETURN(int64_t majority, in.I64());
  majority_label_ = static_cast<int>(majority);
  if (shapelets_.empty()) return Status::DataLoss("EDSC: no shapelets");
  return in.Leave();
}

}  // namespace etsc
