#ifndef ETSC_ALGOS_STRUT_H_
#define ETSC_ALGOS_STRUT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/classifier.h"
#include "core/composed.h"
#include "core/trigger.h"

namespace etsc {

/// Metric STRUT optimises when choosing the truncation point (paper Sec. 4).
enum class StrutMetric {
  kAccuracy,
  kF1,
  kHarmonicMean,  // of accuracy and earliness (default)
};

/// How candidate truncation points are explored.
enum class StrutSearch {
  /// Evaluate every candidate fraction in `fractions` (the fixed-iteration
  /// variant the paper uses for S-MLSTM: {0.05, 0.2, 0.4, 0.6, 0.8, 1}).
  kGrid,
  /// The paper's faster approximation: after a coarse grid pass, binary-search
  /// between the best point and its earlier neighbour for the minimum t whose
  /// score stays within `tolerance` of the best.
  kBinary,
};

/// STRUT — Selective TRUncation of Time-series (the paper's proposed
/// baseline, Sec. 4). Wraps any full-TSC algorithm: the training set is split
/// into fit/validation parts, iteratively truncated to candidate prefix
/// lengths; the truncation point with the best validation score is kept and
/// the classifier is retrained on the full training set at that length. Every
/// test prediction consumes exactly the selected prefix.
struct StrutOptions {
  StrutMetric metric = StrutMetric::kHarmonicMean;
  StrutSearch search = StrutSearch::kBinary;
  /// Candidate truncation fractions of the series length for the grid pass.
  std::vector<double> fractions = {0.05, 0.2, 0.4, 0.6, 0.8, 1.0};
  double validation_fraction = 0.3;
  double tolerance = 0.02;  // score slack for the binary refinement
  uint64_t seed = 29;
};

/// The stopping-rule half of STRUT: a fixed-ratio trigger that runs the whole
/// truncation-point search in PlanCheckpoints (fit/validation split, fraction
/// grid, optional binary refinement) and plants the single winning prefix
/// length t* as the checkpoint grid. Decisions always halt — the composed
/// pipeline consumes exactly t* points. Registered as trigger "strut-search".
class StrutTrigger : public Trigger {
 public:
  explicit StrutTrigger(StrutOptions options = {});

  std::string name() const override { return "strut-search"; }
  std::string config_fingerprint() const override;
  bool needs_posteriors() const override { return false; }
  ComposedOptions DefaultComposedOptions() const override;
  Status PlanCheckpoints(const Dataset& train, const FullClassifier* base,
                         const Deadline& deadline,
                         std::vector<size_t>* checkpoints) override;
  Status Fit(const TriggerFitContext& ctx) override;
  Result<TriggerDecision> Decide(const TriggerEvidence& evidence,
                                 TriggerState* state) const override;
  std::unique_ptr<Trigger> CloneUnfitted() const override;
  Status SaveState(Serializer& out) const override;
  Status LoadState(Deserializer& in) override;

  size_t truncation_point() const { return truncation_point_; }
  const StrutOptions& options() const { return options_; }

 private:
  /// Validation score of the base classifier trained at truncation `t`.
  Result<double> ScoreAt(const FullClassifier& base, const Dataset& fit,
                         const Dataset& validation, size_t t,
                         size_t full_length) const;

  StrutOptions options_;
  size_t truncation_point_ = 0;
};

/// Legacy monolithic entry point, now a thin composition of the supplied base
/// classifier with the "strut-search" trigger (bit-identical to the pre-seam
/// implementation: same split, same search order, same final refit).
class StrutClassifier : public ComposedEarlyClassifier {
 public:
  /// `base` supplies CloneUntrained() copies per truncation iteration.
  StrutClassifier(std::unique_ptr<FullClassifier> base, StrutOptions options = {},
                  std::string display_name = "");

  std::string config_fingerprint() const override;
  std::unique_ptr<EarlyClassifier> CloneUntrained() const override;

  size_t truncation_point() const;

 private:
  StrutOptions options_;
  std::string display_name_;
};

/// The paper's three STRUT presets: S-WEASEL (WEASEL / WEASEL+MUSE chosen by
/// dimensionality at Fit), S-MINI (MiniROCKET) and S-MLSTM (MLSTM-FCN with the
/// fixed fraction grid). `multivariate` selects MUSE inside S-WEASEL.
std::unique_ptr<EarlyClassifier> MakeStrutWeasel(bool multivariate,
                                                 StrutOptions options = {});
std::unique_ptr<EarlyClassifier> MakeStrutMiniRocket(StrutOptions options = {});
std::unique_ptr<EarlyClassifier> MakeStrutMlstm(StrutOptions options = {});

}  // namespace etsc

#endif  // ETSC_ALGOS_STRUT_H_
