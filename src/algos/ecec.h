#ifndef ETSC_ALGOS_ECEC_H_
#define ETSC_ALGOS_ECEC_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/classifier.h"
#include "core/composed.h"
#include "core/trigger.h"
#include "tsc/weasel.h"

namespace etsc {

/// ECEC — Effective Confidence-based Early Classification (Lv et al. 2019;
/// paper Sec. 3.5). Model-based and univariate: trains N WEASEL classifiers on
/// overlapping prefixes, estimates per-classifier label reliabilities
/// r_t(ŷ) = P(y = ŷ | h_t = ŷ) by cross-validation, fuses them into the
/// confidence  c(ŷ, t) = 1 − Π_{i ≤ t, ŷ_i = ŷ} (1 − r_i(ŷ_i)),  and learns
/// the confidence threshold θ minimising CF(θ) = α(1−acc) + (1−α)·earliness
/// over candidate thresholds taken between adjacent sorted CV confidences.
struct EcecOptions {
  size_t num_prefixes = 20;  // Table 4: N = 20
  double alpha = 0.8;        // Table 4: a = 0.8
  size_t cv_folds = 3;       // reliability-estimation folds
  /// Cap on distinct threshold candidates (adjacent-mean rule produces one
  /// per CV confidence value; the paper's datasets keep this tractable).
  size_t max_threshold_candidates = 200;
  WeaselOptions weasel;
  uint64_t seed = 17;
};

/// The confidence-ratio rule as a standalone trigger, usable with any base
/// classifier: cross-validates clones of the base per checkpoint to estimate
/// reliability tables, calibrates the fused-confidence threshold by
/// minimising CF(θ), and halts once the fused confidence of the bank's
/// prediction clears it. Registered as trigger "ecec-ratio".
struct EcecTriggerOptions {
  double alpha = 0.8;
  size_t cv_folds = 3;
  size_t max_threshold_candidates = 200;
  uint64_t seed = 17;
};

class EcecRatioTrigger : public Trigger {
 public:
  explicit EcecRatioTrigger(EcecTriggerOptions options = {})
      : options_(options) {}

  std::string name() const override { return "ecec-ratio"; }
  std::string config_fingerprint() const override;
  bool needs_posteriors() const override { return false; }
  bool SupportsMultivariate() const override { return false; }
  ComposedOptions DefaultComposedOptions() const override;
  Status PlanCheckpoints(const Dataset& train, const FullClassifier* base,
                         const Deadline& deadline,
                         std::vector<size_t>* checkpoints) override;
  Status Fit(const TriggerFitContext& ctx) override;
  std::unique_ptr<TriggerState> NewState() const override;
  Result<TriggerDecision> Decide(const TriggerEvidence& evidence,
                                 TriggerState* state) const override;
  std::unique_ptr<Trigger> CloneUnfitted() const override;
  Status SaveState(Serializer& out) const override;
  Status LoadState(Deserializer& in) override;

  double threshold() const { return threshold_; }

 private:
  /// Reliability of the checkpoint-`ci` classifier predicting `label`.
  double Reliability(size_t ci, int label) const;

  EcecTriggerOptions options_;
  std::vector<std::map<int, double>> reliability_;  // [checkpoint][label] -> r
  double threshold_ = 0.5;
};

/// Legacy monolithic entry point, now a thin composition of WEASEL with the
/// "ecec-ratio" trigger (bit-identical to the pre-seam implementation).
class EcecClassifier : public ComposedEarlyClassifier {
 public:
  explicit EcecClassifier(EcecOptions options = {});

  std::string config_fingerprint() const override;
  std::unique_ptr<EarlyClassifier> CloneUntrained() const override;

  double threshold() const;
  const std::vector<size_t>& prefix_lengths() const { return checkpoints(); }

 private:
  EcecOptions options_;
};

}  // namespace etsc

#endif  // ETSC_ALGOS_ECEC_H_
