#ifndef ETSC_ALGOS_ECEC_H_
#define ETSC_ALGOS_ECEC_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/classifier.h"
#include "tsc/weasel.h"

namespace etsc {

/// ECEC — Effective Confidence-based Early Classification (Lv et al. 2019;
/// paper Sec. 3.5). Model-based and univariate: trains N WEASEL classifiers on
/// overlapping prefixes, estimates per-classifier label reliabilities
/// r_t(ŷ) = P(y = ŷ | h_t = ŷ) by cross-validation, fuses them into the
/// confidence  c(ŷ, t) = 1 − Π_{i ≤ t, ŷ_i = ŷ} (1 − r_i(ŷ_i)),  and learns
/// the confidence threshold θ minimising CF(θ) = α(1−acc) + (1−α)·earliness
/// over candidate thresholds taken between adjacent sorted CV confidences.
struct EcecOptions {
  size_t num_prefixes = 20;  // Table 4: N = 20
  double alpha = 0.8;        // Table 4: a = 0.8
  size_t cv_folds = 3;       // reliability-estimation folds
  /// Cap on distinct threshold candidates (adjacent-mean rule produces one
  /// per CV confidence value; the paper's datasets keep this tractable).
  size_t max_threshold_candidates = 200;
  WeaselOptions weasel;
  uint64_t seed = 17;
};

class EcecClassifier : public EarlyClassifier {
 public:
  explicit EcecClassifier(EcecOptions options = {}) : options_(options) {}

  Status Fit(const Dataset& train) override;
  Result<EarlyPrediction> PredictEarly(const TimeSeries& series) const override;
  std::string name() const override { return "ECEC"; }
  bool SupportsMultivariate() const override { return false; }
  std::unique_ptr<EarlyClassifier> CloneUntrained() const override {
    return std::make_unique<EcecClassifier>(options_);
  }

  double threshold() const { return threshold_; }
  const std::vector<size_t>& prefix_lengths() const { return prefix_lengths_; }

  std::string config_fingerprint() const override;
  Status SaveState(Serializer& out) const override;
  Status LoadState(Deserializer& in) override;

 private:
  /// Reliability of classifier `ci` predicting `label`.
  double Reliability(size_t ci, int label) const;

  EcecOptions options_;
  size_t length_ = 0;
  std::vector<size_t> prefix_lengths_;
  std::vector<WeaselClassifier> models_;            // one per prefix
  std::vector<std::map<int, double>> reliability_;  // [prefix][label] -> r
  double threshold_ = 0.5;
};

}  // namespace etsc

#endif  // ETSC_ALGOS_ECEC_H_
