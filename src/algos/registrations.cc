#include "algos/registrations.h"

#include <memory>

#include "algos/base_classifiers.h"
#include "algos/ecec.h"
#include "algos/economy_k.h"
#include "algos/ects.h"
#include "algos/edsc.h"
#include "algos/prob_threshold.h"
#include "algos/strut.h"
#include "algos/teaser.h"
#include "core/registry.h"
#include "core/trigger.h"
#include "tsc/minirocket.h"
#include "tsc/mlstm.h"
#include "tsc/weasel.h"

namespace etsc {

void RegisterBuiltinClassifiers() {
  static const bool registered = [] {
    auto& registry = ClassifierRegistry::Global();
    ETSC_CHECK(registry
                   .Register("ecec",
                             [] { return std::make_unique<EcecClassifier>(); })
                   .ok());
    ETSC_CHECK(registry
                   .Register("economy-k",
                             [] { return std::make_unique<EconomyKClassifier>(); })
                   .ok());
    ETSC_CHECK(registry
                   .Register("ects",
                             [] { return std::make_unique<EctsClassifier>(); })
                   .ok());
    ETSC_CHECK(registry
                   .Register("edsc",
                             [] { return std::make_unique<EdscClassifier>(); })
                   .ok());
    ETSC_CHECK(registry
                   .Register("teaser",
                             [] { return std::make_unique<TeaserClassifier>(); })
                   .ok());
    ETSC_CHECK(registry
                   .Register("s-weasel",
                             [] { return MakeStrutWeasel(/*multivariate=*/false); })
                   .ok());
    ETSC_CHECK(
        registry.Register("s-mini", [] { return MakeStrutMiniRocket(); }).ok());
    ETSC_CHECK(
        registry.Register("s-mlstm", [] { return MakeStrutMlstm(); }).ok());
    ETSC_CHECK(registry
                   .Register("prob-threshold",
                             [] {
                               // Logistic head: ridge margins are not
                               // calibrated probabilities, so the threshold
                               // rule needs the logistic path.
                               MiniRocketOptions options;
                               options.logistic_above_samples = 0;
                               return std::make_unique<ProbThresholdClassifier>(
                                   std::make_unique<MiniRocketClassifier>(
                                       options));
                             })
                   .ok());

    // Second namespace: standalone triggers, composable with any base
    // classifier via ComposedEarlyClassifier / '<classifier>+<trigger>' specs.
    auto& triggers = TriggerRegistry::Global();
    ETSC_CHECK(triggers
                   .Register("prob",
                             [] { return std::make_unique<ProbTrigger>(); })
                   .ok());
    ETSC_CHECK(triggers
                   .Register("ecec-ratio",
                             [] { return std::make_unique<EcecRatioTrigger>(); })
                   .ok());
    ETSC_CHECK(triggers
                   .Register("teaser-gate",
                             [] { return std::make_unique<TeaserGateTrigger>(); })
                   .ok());
    ETSC_CHECK(triggers
                   .Register("eco-cost",
                             [] { return std::make_unique<EcoCostTrigger>(); })
                   .ok());
    ETSC_CHECK(triggers
                   .Register("ects-mpl",
                             [] { return std::make_unique<EctsMplTrigger>(); })
                   .ok());
    ETSC_CHECK(triggers
                   .Register("strut-search",
                             [] { return std::make_unique<StrutTrigger>(); })
                   .ok());

    // Third namespace: probabilistic full-series classifiers usable as the
    // base half of a composition.
    auto& bases = BaseClassifierRegistry::Global();
    ETSC_CHECK(bases
                   .Register("weasel",
                             [] { return std::make_unique<WeaselClassifier>(); })
                   .ok());
    ETSC_CHECK(bases
                   .Register("adaptive-weasel",
                             [] { return std::make_unique<AdaptiveWeasel>(); })
                   .ok());
    ETSC_CHECK(bases
                   .Register("minirocket",
                             [] {
                               return std::make_unique<MiniRocketClassifier>();
                             })
                   .ok());
    ETSC_CHECK(bases
                   .Register("minirocket-logistic",
                             [] {
                               MiniRocketOptions options;
                               options.logistic_above_samples = 0;
                               return std::make_unique<MiniRocketClassifier>(
                                   options);
                             })
                   .ok());
    ETSC_CHECK(bases
                   .Register("mlstm",
                             [] { return std::make_unique<MlstmClassifier>(); })
                   .ok());
    ETSC_CHECK(bases
                   .Register("1nn",
                             [] {
                               return std::make_unique<NearestNeighborClassifier>();
                             })
                   .ok());
    ETSC_CHECK(bases
                   .Register("gbdt",
                             [] {
                               return std::make_unique<GbdtSeriesClassifier>();
                             })
                   .ok());
    return true;
  }();
  (void)registered;
}

}  // namespace etsc
