#include "algos/registrations.h"

#include <memory>

#include "algos/ecec.h"
#include "algos/economy_k.h"
#include "algos/ects.h"
#include "algos/edsc.h"
#include "algos/prob_threshold.h"
#include "algos/strut.h"
#include "algos/teaser.h"
#include "tsc/minirocket.h"
#include "core/registry.h"

namespace etsc {

void RegisterBuiltinClassifiers() {
  static const bool registered = [] {
    auto& registry = ClassifierRegistry::Global();
    ETSC_CHECK(registry
                   .Register("ecec",
                             [] { return std::make_unique<EcecClassifier>(); })
                   .ok());
    ETSC_CHECK(registry
                   .Register("economy-k",
                             [] { return std::make_unique<EconomyKClassifier>(); })
                   .ok());
    ETSC_CHECK(registry
                   .Register("ects",
                             [] { return std::make_unique<EctsClassifier>(); })
                   .ok());
    ETSC_CHECK(registry
                   .Register("edsc",
                             [] { return std::make_unique<EdscClassifier>(); })
                   .ok());
    ETSC_CHECK(registry
                   .Register("teaser",
                             [] { return std::make_unique<TeaserClassifier>(); })
                   .ok());
    ETSC_CHECK(registry
                   .Register("s-weasel",
                             [] { return MakeStrutWeasel(/*multivariate=*/false); })
                   .ok());
    ETSC_CHECK(
        registry.Register("s-mini", [] { return MakeStrutMiniRocket(); }).ok());
    ETSC_CHECK(
        registry.Register("s-mlstm", [] { return MakeStrutMlstm(); }).ok());
    ETSC_CHECK(registry
                   .Register("prob-threshold",
                             [] {
                               // Logistic head: ridge margins are not
                               // calibrated probabilities, so the threshold
                               // rule needs the logistic path.
                               MiniRocketOptions options;
                               options.logistic_above_samples = 0;
                               return std::make_unique<ProbThresholdClassifier>(
                                   std::make_unique<MiniRocketClassifier>(
                                       options));
                             })
                   .ok());
    return true;
  }();
  (void)registered;
}

}  // namespace etsc
