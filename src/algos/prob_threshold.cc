#include "algos/prob_threshold.h"

#include <algorithm>


namespace etsc {

ProbThresholdClassifier::ProbThresholdClassifier(
    std::unique_ptr<FullClassifier> base, ProbThresholdOptions options)
    : base_(std::move(base)), options_(options) {
  ETSC_CHECK(base_ != nullptr);
  ETSC_CHECK(options_.consecutive >= 1);
}

Status ProbThresholdClassifier::Fit(const Dataset& train) {
  if (train.empty()) {
    return Status::InvalidArgument("prob-threshold: empty training set");
  }
  length_ = train.MinLength();
  if (length_ < 2) {
    return Status::InvalidArgument("prob-threshold: series too short");
  }
  prefix_lengths_.clear();
  const size_t num = std::min(options_.num_prefixes, length_);
  for (size_t i = 1; i <= num; ++i) {
    const size_t len = std::max<size_t>(2, i * length_ / num);
    if (prefix_lengths_.empty() || prefix_lengths_.back() != len) {
      prefix_lengths_.push_back(len);
    }
  }
  if (prefix_lengths_.back() != length_) prefix_lengths_.push_back(length_);

  const Deadline deadline = TrainDeadline();
  models_.clear();
  models_.reserve(prefix_lengths_.size());
  for (size_t len : prefix_lengths_) {
    ETSC_RETURN_NOT_OK(deadline.Check("prob-threshold: train budget exceeded"));
    auto model = base_->CloneUntrained();
    ETSC_RETURN_NOT_OK(model->Fit(train.Truncated(len)));
    models_.push_back(std::move(model));
  }
  return Status::OK();
}

Result<EarlyPrediction> ProbThresholdClassifier::PredictEarly(
    const TimeSeries& series) const {
  if (models_.empty()) {
    return Status::FailedPrecondition("prob-threshold: not fitted");
  }
  const Deadline deadline = PredictDeadline();
  size_t streak = 0;
  int last_label = 0;
  for (size_t p = 0; p < prefix_lengths_.size(); ++p) {
    ETSC_RETURN_NOT_OK(
        deadline.Check("prob-threshold: predict budget exceeded"));
    const size_t len = prefix_lengths_[p];
    const bool is_last = p + 1 == prefix_lengths_.size() ||
                         prefix_lengths_[p + 1] > series.length();
    if (len > series.length()) break;
    ETSC_ASSIGN_OR_RETURN(std::vector<double> proba,
                          models_[p]->PredictProba(series.Prefix(len)));
    const auto& labels = models_[p]->class_labels();
    const size_t best = static_cast<size_t>(
        std::max_element(proba.begin(), proba.end()) - proba.begin());
    const int label = labels[best];
    if (is_last) return EarlyPrediction{label, len};

    if (proba[best] >= options_.threshold) {
      if (streak > 0 && label == last_label) {
        ++streak;
      } else {
        streak = 1;
        last_label = label;
      }
      if (streak >= options_.consecutive) {
        return EarlyPrediction{label, len};
      }
    } else {
      streak = 0;
    }
  }
  // Series shorter than the first prefix.
  ETSC_ASSIGN_OR_RETURN(int label, models_[0]->Predict(series));
  return EarlyPrediction{label, series.length()};
}

std::string ProbThresholdClassifier::name() const {
  return "P>=" + std::to_string(options_.threshold).substr(0, 4) + "-" +
         base_->name();
}

std::unique_ptr<EarlyClassifier> ProbThresholdClassifier::CloneUntrained() const {
  return std::make_unique<ProbThresholdClassifier>(base_->CloneUntrained(),
                                                   options_);
}

std::string ProbThresholdClassifier::config_fingerprint() const {
  return "ProbThreshold(n=" + std::to_string(options_.num_prefixes) +
         ",thr=" + FingerprintDouble(options_.threshold) +
         ",consec=" + std::to_string(options_.consecutive) + ",base=" +
         base_->config_fingerprint() + ")";
}

Status ProbThresholdClassifier::SaveState(Serializer& out) const {
  if (models_.empty()) {
    return Status::FailedPrecondition(name() + ": not fitted");
  }
  out.Begin("prob-threshold");
  out.SizeT(length_);
  out.SizeVec(prefix_lengths_);
  out.SizeT(models_.size());
  for (const auto& model : models_) {
    ETSC_RETURN_NOT_OK(model->SaveState(out));
  }
  out.End();
  return Status::OK();
}

Status ProbThresholdClassifier::LoadState(Deserializer& in) {
  ETSC_RETURN_NOT_OK(in.Enter("prob-threshold"));
  ETSC_ASSIGN_OR_RETURN(length_, in.SizeT());
  ETSC_ASSIGN_OR_RETURN(prefix_lengths_, in.SizeVec());
  ETSC_ASSIGN_OR_RETURN(size_t num_models, in.SizeT());
  if (num_models != prefix_lengths_.size() || num_models == 0) {
    return Status::DataLoss(name() + ": model/prefix count mismatch");
  }
  models_.clear();
  for (size_t p = 0; p < num_models; ++p) {
    models_.push_back(base_->CloneUntrained());
    ETSC_RETURN_NOT_OK(models_.back()->LoadState(in));
  }
  return in.Leave();
}

}  // namespace etsc
