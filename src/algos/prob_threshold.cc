#include "algos/prob_threshold.h"

#include <algorithm>


namespace etsc {

namespace {

struct ProbTriggerState : TriggerState {
  size_t streak = 0;
  int last_label = 0;
};

}  // namespace

ProbTrigger::ProbTrigger(ProbTriggerOptions options) : options_(options) {
  ETSC_CHECK(options_.consecutive >= 1);
}

std::string ProbTrigger::config_fingerprint() const {
  return "prob(thr=" + FingerprintDouble(options_.threshold) +
         ",consec=" + std::to_string(options_.consecutive) + ")";
}

ComposedOptions ProbTrigger::DefaultComposedOptions() const {
  ComposedOptions options;
  options.num_checkpoints = 10;
  options.grid = CheckpointGrid::kFloorMinTwo;
  return options;
}

Status ProbTrigger::PlanCheckpoints(const Dataset& train, const FullClassifier*,
                                    const Deadline&, std::vector<size_t>*) {
  if (train.empty()) {
    return Status::InvalidArgument("prob-threshold: empty training set");
  }
  if (train.MinLength() < 2) {
    return Status::InvalidArgument("prob-threshold: series too short");
  }
  return Status::OK();
}

Status ProbTrigger::Fit(const TriggerFitContext&) {
  // Purely reactive: no calibration beyond the threshold itself.
  return Status::OK();
}

std::unique_ptr<TriggerState> ProbTrigger::NewState() const {
  return std::make_unique<ProbTriggerState>();
}

Result<TriggerDecision> ProbTrigger::Decide(const TriggerEvidence& ev,
                                            TriggerState* state) const {
  auto* streaks = static_cast<ProbTriggerState*>(state);
  const double best =
      *std::max_element(ev.posteriors->begin(), ev.posteriors->end());
  TriggerDecision decision;
  decision.confidence = best;
  if (ev.is_last) {
    decision.halt = true;
    return decision;
  }
  if (best >= options_.threshold) {
    if (streaks->streak > 0 && ev.predicted == streaks->last_label) {
      ++streaks->streak;
    } else {
      streaks->streak = 1;
      streaks->last_label = ev.predicted;
    }
    if (streaks->streak >= options_.consecutive) decision.halt = true;
  } else {
    streaks->streak = 0;
  }
  return decision;
}

std::unique_ptr<Trigger> ProbTrigger::CloneUnfitted() const {
  return std::make_unique<ProbTrigger>(options_);
}

Status ProbTrigger::SaveState(Serializer& out) const {
  out.Begin("prob");
  out.End();
  return Status::OK();
}

Status ProbTrigger::LoadState(Deserializer& in) {
  ETSC_RETURN_NOT_OK(in.Enter("prob"));
  return in.Leave();
}

namespace {

ComposedParts ProbParts(std::unique_ptr<FullClassifier> base,
                        const ProbThresholdOptions& options) {
  ETSC_CHECK(base != nullptr);
  ComposedParts parts;
  parts.name = "P>=" + std::to_string(options.threshold).substr(0, 4) + "-" +
               base->name();
  ProbTriggerOptions trigger_options;
  trigger_options.threshold = options.threshold;
  trigger_options.consecutive = options.consecutive;
  parts.trigger = std::make_unique<ProbTrigger>(trigger_options);
  parts.options.num_checkpoints = options.num_prefixes;
  parts.options.grid = CheckpointGrid::kFloorMinTwo;
  parts.base = std::move(base);
  return parts;
}

}  // namespace

ProbThresholdClassifier::ProbThresholdClassifier(
    std::unique_ptr<FullClassifier> base, ProbThresholdOptions options)
    : ComposedEarlyClassifier(ProbParts(std::move(base), options)),
      options_(options) {}

std::string ProbThresholdClassifier::name() const {
  return "P>=" + std::to_string(options_.threshold).substr(0, 4) + "-" +
         base_classifier()->name();
}

std::string ProbThresholdClassifier::config_fingerprint() const {
  return "ProbThreshold(n=" + std::to_string(options_.num_prefixes) +
         ",thr=" + FingerprintDouble(options_.threshold) +
         ",consec=" + std::to_string(options_.consecutive) + ",base=" +
         base_classifier()->config_fingerprint() + ")";
}

std::unique_ptr<EarlyClassifier> ProbThresholdClassifier::CloneUntrained() const {
  return std::make_unique<ProbThresholdClassifier>(
      base_classifier()->CloneUntrained(), options_);
}

}  // namespace etsc
