#include "algos/ecec.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/metrics.h"
#include "core/rng.h"

namespace etsc {

namespace {

// Fused ECEC confidence of the prediction at prefix index `upto` given the
// sequence of per-prefix predictions and their reliabilities: agreement of
// earlier classifiers with the current label compounds confidence.
double FusedConfidence(const std::vector<int>& predictions,
                       const std::vector<double>& reliabilities, size_t upto) {
  const int label = predictions[upto];
  double product = 1.0;
  for (size_t i = 0; i <= upto; ++i) {
    if (predictions[i] == label) {
      product *= 1.0 - reliabilities[i];
    }
  }
  return 1.0 - product;
}

// Per-series prediction/reliability history the fused confidence folds over.
struct EcecRatioState : TriggerState {
  std::vector<int> preds;
  std::vector<double> rels;
};

}  // namespace

double EcecRatioTrigger::Reliability(size_t ci, int label) const {
  const auto& table = reliability_[ci];
  auto it = table.find(label);
  return it == table.end() ? 0.5 : it->second;
}

std::string EcecRatioTrigger::config_fingerprint() const {
  const auto& o = options_;
  return "ecec-ratio(a=" + FingerprintDouble(o.alpha) +
         ",cv=" + std::to_string(o.cv_folds) +
         ",thr=" + std::to_string(o.max_threshold_candidates) +
         ",seed=" + std::to_string(o.seed) + ")";
}

ComposedOptions EcecRatioTrigger::DefaultComposedOptions() const {
  ComposedOptions options;
  options.num_checkpoints = 20;
  options.grid = CheckpointGrid::kCeilMinTwo;
  return options;
}

Status EcecRatioTrigger::PlanCheckpoints(const Dataset& train,
                                         const FullClassifier*, const Deadline&,
                                         std::vector<size_t>*) {
  if (train.size() < options_.cv_folds) {
    return Status::InvalidArgument("ECEC: too few training series");
  }
  if (train.NumVariables() != 1) {
    return Status::InvalidArgument("ECEC: univariate input required");
  }
  if (train.MinLength() < 2) {
    return Status::InvalidArgument("ECEC: series too short");
  }
  return Status::OK();
}

Status EcecRatioTrigger::Fit(const TriggerFitContext& ctx) {
  const Dataset& train = *ctx.train;
  const std::vector<size_t>& prefix_lengths = *ctx.checkpoints;
  const Deadline& deadline = *ctx.deadline;
  const size_t length = train.MinLength();
  const size_t P = prefix_lengths.size();
  const size_t n = train.size();

  Rng rng(options_.seed);

  // Cross-validated per-prefix predictions for reliability estimation.
  // cv_pred[p][i] = held-out prediction of classifier p on training series i.
  std::vector<std::vector<int>> cv_pred(P, std::vector<int>(n, 0));
  const auto folds = StratifiedKFold(train, options_.cv_folds, &rng);
  for (const auto& split : folds) {
    Dataset fold_train = train.Subset(split.train);
    for (size_t p = 0; p < P; ++p) {
      ETSC_RETURN_NOT_OK(deadline.Check("ECEC: train budget exceeded"));
      std::unique_ptr<FullClassifier> model = ctx.base->CloneUntrained();
      ETSC_RETURN_NOT_OK(model->Fit(fold_train.Truncated(prefix_lengths[p])));
      for (size_t test_idx : split.test) {
        auto pred = model->Predict(train.instance(test_idx).Prefix(prefix_lengths[p]));
        cv_pred[p][test_idx] = pred.ok() ? *pred : train.label(test_idx) - 1;
      }
    }
  }

  // Reliability tables r_p(ŷ) = P(y = ŷ | h_p = ŷ), Laplace smoothed.
  reliability_.assign(P, {});
  for (size_t p = 0; p < P; ++p) {
    std::map<int, double> correct, total;
    for (size_t i = 0; i < n; ++i) {
      total[cv_pred[p][i]] += 1.0;
      if (cv_pred[p][i] == train.label(i)) correct[cv_pred[p][i]] += 1.0;
    }
    for (const auto& [label, count] : total) {
      reliability_[p][label] = (correct[label] + 1.0) / (count + 2.0);
    }
  }

  // Confidence of every (series, prefix) pair from CV predictions.
  std::vector<std::vector<double>> confidence(n, std::vector<double>(P, 0.0));
  std::vector<double> all_confidences;
  all_confidences.reserve(n * P);
  for (size_t i = 0; i < n; ++i) {
    std::vector<int> preds(P);
    std::vector<double> rels(P);
    for (size_t p = 0; p < P; ++p) {
      preds[p] = cv_pred[p][i];
      rels[p] = Reliability(p, preds[p]);
    }
    for (size_t p = 0; p < P; ++p) {
      confidence[i][p] = FusedConfidence(preds, rels, p);
      all_confidences.push_back(confidence[i][p]);
    }
  }

  // Threshold candidates: means of adjacent sorted confidence values.
  std::sort(all_confidences.begin(), all_confidences.end());
  all_confidences.erase(
      std::unique(all_confidences.begin(), all_confidences.end()),
      all_confidences.end());
  std::vector<double> candidates;
  for (size_t i = 0; i + 1 < all_confidences.size(); ++i) {
    candidates.push_back(0.5 * (all_confidences[i] + all_confidences[i + 1]));
  }
  if (candidates.empty()) candidates.push_back(0.5);
  if (candidates.size() > options_.max_threshold_candidates) {
    // Evenly subsample the sorted candidate list.
    std::vector<double> sampled;
    const size_t step = candidates.size() / options_.max_threshold_candidates;
    for (size_t i = 0; i < candidates.size(); i += std::max<size_t>(step, 1)) {
      sampled.push_back(candidates[i]);
    }
    candidates = std::move(sampled);
  }

  // Evaluate CF(θ) = α(1 - accuracy) + (1 - α) earliness for each candidate.
  double best_cf = std::numeric_limits<double>::infinity();
  double best_theta = candidates.front();
  for (double theta : candidates) {
    size_t correct = 0;
    double earliness_sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      size_t stop = P - 1;
      for (size_t p = 0; p < P; ++p) {
        if (confidence[i][p] >= theta) {
          stop = p;
          break;
        }
      }
      if (cv_pred[stop][i] == train.label(i)) ++correct;
      earliness_sum += static_cast<double>(prefix_lengths[stop]) /
                       static_cast<double>(length);
    }
    const double accuracy = static_cast<double>(correct) / static_cast<double>(n);
    const double earliness = earliness_sum / static_cast<double>(n);
    const double cf =
        options_.alpha * (1.0 - accuracy) + (1.0 - options_.alpha) * earliness;
    if (cf < best_cf) {
      best_cf = cf;
      best_theta = theta;
    }
  }
  threshold_ = best_theta;
  return Status::OK();
}

std::unique_ptr<TriggerState> EcecRatioTrigger::NewState() const {
  return std::make_unique<EcecRatioState>();
}

Result<TriggerDecision> EcecRatioTrigger::Decide(const TriggerEvidence& ev,
                                                 TriggerState* state) const {
  if (reliability_.empty()) {
    return Status::FailedPrecondition("ECEC: not fitted");
  }
  auto* history = static_cast<EcecRatioState*>(state);
  history->preds.push_back(ev.predicted);
  history->rels.push_back(Reliability(ev.checkpoint, ev.predicted));
  const double confidence =
      FusedConfidence(history->preds, history->rels, history->preds.size() - 1);
  TriggerDecision decision;
  decision.confidence = confidence;
  if (confidence >= threshold_ || ev.is_last) decision.halt = true;
  return decision;
}

std::unique_ptr<Trigger> EcecRatioTrigger::CloneUnfitted() const {
  return std::make_unique<EcecRatioTrigger>(options_);
}

Status EcecRatioTrigger::SaveState(Serializer& out) const {
  if (reliability_.empty()) return Status::FailedPrecondition("ECEC: not fitted");
  out.Begin("ecec-ratio");
  out.SizeT(reliability_.size());
  for (const auto& per_label : reliability_) {
    out.SizeT(per_label.size());
    for (const auto& [label, r] : per_label) {  // std::map: sorted, stable
      out.I64(label);
      out.F64(r);
    }
  }
  out.F64(threshold_);
  out.End();
  return Status::OK();
}

Status EcecRatioTrigger::LoadState(Deserializer& in) {
  ETSC_RETURN_NOT_OK(in.Enter("ecec-ratio"));
  ETSC_ASSIGN_OR_RETURN(size_t num_reliability, in.SizeT());
  if (num_reliability == 0) {
    return Status::DataLoss("ECEC: empty reliability table");
  }
  reliability_.assign(num_reliability, {});
  for (auto& per_label : reliability_) {
    ETSC_ASSIGN_OR_RETURN(size_t entries, in.SizeT());
    for (size_t e = 0; e < entries; ++e) {
      ETSC_ASSIGN_OR_RETURN(int64_t label, in.I64());
      ETSC_ASSIGN_OR_RETURN(double r, in.F64());
      per_label[static_cast<int>(label)] = r;
    }
    if (per_label.size() != entries) {
      return Status::DataLoss("ECEC: duplicate reliability labels");
    }
  }
  ETSC_ASSIGN_OR_RETURN(threshold_, in.F64());
  return in.Leave();
}

namespace {

ComposedParts EcecParts(const EcecOptions& options) {
  ComposedParts parts;
  parts.name = "ECEC";
  parts.base = std::make_unique<WeaselClassifier>(options.weasel);
  EcecTriggerOptions trigger_options;
  trigger_options.alpha = options.alpha;
  trigger_options.cv_folds = options.cv_folds;
  trigger_options.max_threshold_candidates = options.max_threshold_candidates;
  trigger_options.seed = options.seed;
  parts.trigger = std::make_unique<EcecRatioTrigger>(trigger_options);
  parts.options.num_checkpoints = options.num_prefixes;
  parts.options.grid = CheckpointGrid::kCeilMinTwo;
  return parts;
}

}  // namespace

EcecClassifier::EcecClassifier(EcecOptions options)
    : ComposedEarlyClassifier(EcecParts(options)), options_(std::move(options)) {}

std::string EcecClassifier::config_fingerprint() const {
  const auto& o = options_;
  return "ECEC(n=" + std::to_string(o.num_prefixes) +
         ",a=" + FingerprintDouble(o.alpha) +
         ",cv=" + std::to_string(o.cv_folds) +
         ",thr=" + std::to_string(o.max_threshold_candidates) +
         ",seed=" + std::to_string(o.seed) + "," +
         WeaselOptionsFingerprint(o.weasel) + ")";
}

std::unique_ptr<EarlyClassifier> EcecClassifier::CloneUntrained() const {
  return std::make_unique<EcecClassifier>(options_);
}

double EcecClassifier::threshold() const {
  return static_cast<const EcecRatioTrigger&>(trigger()).threshold();
}

}  // namespace etsc
