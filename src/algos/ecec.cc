#include "algos/ecec.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/metrics.h"
#include "core/rng.h"

namespace etsc {

namespace {

// Fused ECEC confidence of the prediction at prefix index `upto` given the
// sequence of per-prefix predictions and their reliabilities: agreement of
// earlier classifiers with the current label compounds confidence.
double FusedConfidence(const std::vector<int>& predictions,
                       const std::vector<double>& reliabilities, size_t upto) {
  const int label = predictions[upto];
  double product = 1.0;
  for (size_t i = 0; i <= upto; ++i) {
    if (predictions[i] == label) {
      product *= 1.0 - reliabilities[i];
    }
  }
  return 1.0 - product;
}

}  // namespace

double EcecClassifier::Reliability(size_t ci, int label) const {
  const auto& table = reliability_[ci];
  auto it = table.find(label);
  return it == table.end() ? 0.5 : it->second;
}

Status EcecClassifier::Fit(const Dataset& train) {
  if (train.size() < options_.cv_folds) {
    return Status::InvalidArgument("ECEC: too few training series");
  }
  if (train.NumVariables() != 1) {
    return Status::InvalidArgument("ECEC: univariate input required");
  }
  length_ = train.MinLength();
  if (length_ < 2) return Status::InvalidArgument("ECEC: series too short");

  // Prefix grid: ceil(i*L/N) for i = 1..N (paper Sec. 3.5).
  prefix_lengths_.clear();
  const size_t num = std::min(options_.num_prefixes, length_);
  for (size_t i = 1; i <= num; ++i) {
    // ceil(i*L/N), clamped to the shortest prefix WEASEL can transform.
    const size_t len = std::max<size_t>(2, (i * length_ + num - 1) / num);
    if (prefix_lengths_.empty() || prefix_lengths_.back() != len) {
      prefix_lengths_.push_back(len);
    }
  }
  if (prefix_lengths_.back() != length_) prefix_lengths_.push_back(length_);
  const size_t P = prefix_lengths_.size();
  const size_t n = train.size();

  const Deadline deadline = TrainDeadline();
  Rng rng(options_.seed);

  // Cross-validated per-prefix predictions for reliability estimation.
  // cv_pred[p][i] = held-out prediction of classifier p on training series i.
  std::vector<std::vector<int>> cv_pred(P, std::vector<int>(n, 0));
  const auto folds = StratifiedKFold(train, options_.cv_folds, &rng);
  for (const auto& split : folds) {
    Dataset fold_train = train.Subset(split.train);
    for (size_t p = 0; p < P; ++p) {
      ETSC_RETURN_NOT_OK(deadline.Check("ECEC: train budget exceeded"));
      WeaselClassifier model(options_.weasel);
      ETSC_RETURN_NOT_OK(model.Fit(fold_train.Truncated(prefix_lengths_[p])));
      for (size_t test_idx : split.test) {
        auto pred = model.Predict(train.instance(test_idx).Prefix(prefix_lengths_[p]));
        cv_pred[p][test_idx] = pred.ok() ? *pred : train.label(test_idx) - 1;
      }
    }
  }

  // Reliability tables r_p(ŷ) = P(y = ŷ | h_p = ŷ), Laplace smoothed.
  reliability_.assign(P, {});
  for (size_t p = 0; p < P; ++p) {
    std::map<int, double> correct, total;
    for (size_t i = 0; i < n; ++i) {
      total[cv_pred[p][i]] += 1.0;
      if (cv_pred[p][i] == train.label(i)) correct[cv_pred[p][i]] += 1.0;
    }
    for (const auto& [label, count] : total) {
      reliability_[p][label] = (correct[label] + 1.0) / (count + 2.0);
    }
  }

  // Confidence of every (series, prefix) pair from CV predictions.
  std::vector<std::vector<double>> confidence(n, std::vector<double>(P, 0.0));
  std::vector<double> all_confidences;
  all_confidences.reserve(n * P);
  for (size_t i = 0; i < n; ++i) {
    std::vector<int> preds(P);
    std::vector<double> rels(P);
    for (size_t p = 0; p < P; ++p) {
      preds[p] = cv_pred[p][i];
      rels[p] = Reliability(p, preds[p]);
    }
    for (size_t p = 0; p < P; ++p) {
      confidence[i][p] = FusedConfidence(preds, rels, p);
      all_confidences.push_back(confidence[i][p]);
    }
  }

  // Threshold candidates: means of adjacent sorted confidence values.
  std::sort(all_confidences.begin(), all_confidences.end());
  all_confidences.erase(
      std::unique(all_confidences.begin(), all_confidences.end()),
      all_confidences.end());
  std::vector<double> candidates;
  for (size_t i = 0; i + 1 < all_confidences.size(); ++i) {
    candidates.push_back(0.5 * (all_confidences[i] + all_confidences[i + 1]));
  }
  if (candidates.empty()) candidates.push_back(0.5);
  if (candidates.size() > options_.max_threshold_candidates) {
    // Evenly subsample the sorted candidate list.
    std::vector<double> sampled;
    const size_t step = candidates.size() / options_.max_threshold_candidates;
    for (size_t i = 0; i < candidates.size(); i += std::max<size_t>(step, 1)) {
      sampled.push_back(candidates[i]);
    }
    candidates = std::move(sampled);
  }

  // Evaluate CF(θ) = α(1 - accuracy) + (1 - α) earliness for each candidate.
  double best_cf = std::numeric_limits<double>::infinity();
  double best_theta = candidates.front();
  for (double theta : candidates) {
    size_t correct = 0;
    double earliness_sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      size_t stop = P - 1;
      for (size_t p = 0; p < P; ++p) {
        if (confidence[i][p] >= theta) {
          stop = p;
          break;
        }
      }
      if (cv_pred[stop][i] == train.label(i)) ++correct;
      earliness_sum += static_cast<double>(prefix_lengths_[stop]) /
                       static_cast<double>(length_);
    }
    const double accuracy = static_cast<double>(correct) / static_cast<double>(n);
    const double earliness = earliness_sum / static_cast<double>(n);
    const double cf =
        options_.alpha * (1.0 - accuracy) + (1.0 - options_.alpha) * earliness;
    if (cf < best_cf) {
      best_cf = cf;
      best_theta = theta;
    }
  }
  threshold_ = best_theta;

  // Final per-prefix classifiers trained on the whole training set.
  models_.clear();
  models_.reserve(P);
  for (size_t p = 0; p < P; ++p) {
    ETSC_RETURN_NOT_OK(deadline.Check("ECEC: train budget exceeded"));
    WeaselClassifier model(options_.weasel);
    ETSC_RETURN_NOT_OK(model.Fit(train.Truncated(prefix_lengths_[p])));
    models_.push_back(std::move(model));
  }
  return Status::OK();
}

Result<EarlyPrediction> EcecClassifier::PredictEarly(
    const TimeSeries& series) const {
  if (models_.empty()) return Status::FailedPrecondition("ECEC: not fitted");
  if (series.num_variables() != 1) {
    return Status::InvalidArgument("ECEC: univariate input required");
  }
  const Deadline deadline = PredictDeadline();
  std::vector<int> preds;
  std::vector<double> rels;
  for (size_t p = 0; p < prefix_lengths_.size(); ++p) {
    ETSC_RETURN_NOT_OK(deadline.Check("ECEC: predict budget exceeded"));
    const size_t len = prefix_lengths_[p];
    const bool is_last = p + 1 == prefix_lengths_.size() ||
                         prefix_lengths_[p + 1] > series.length();
    if (len > series.length()) break;
    auto pred = models_[p].Predict(series.Prefix(len));
    if (!pred.ok()) return pred.status();
    preds.push_back(*pred);
    rels.push_back(Reliability(p, *pred));
    const double confidence = FusedConfidence(preds, rels, preds.size() - 1);
    if (confidence >= threshold_ || is_last) {
      return EarlyPrediction{*pred, len};
    }
  }
  // Series shorter than the first prefix: classify what we have with the
  // first model.
  auto pred = models_[0].Predict(series);
  if (!pred.ok()) return pred.status();
  return EarlyPrediction{*pred, series.length()};
}

std::string EcecClassifier::config_fingerprint() const {
  const auto& o = options_;
  return "ECEC(n=" + std::to_string(o.num_prefixes) +
         ",a=" + FingerprintDouble(o.alpha) +
         ",cv=" + std::to_string(o.cv_folds) +
         ",thr=" + std::to_string(o.max_threshold_candidates) +
         ",seed=" + std::to_string(o.seed) + "," +
         WeaselOptionsFingerprint(o.weasel) + ")";
}

Status EcecClassifier::SaveState(Serializer& out) const {
  if (models_.empty()) return Status::FailedPrecondition("ECEC: not fitted");
  out.Begin("ecec");
  out.SizeT(length_);
  out.SizeVec(prefix_lengths_);
  out.SizeT(models_.size());
  for (const WeaselClassifier& model : models_) {
    ETSC_RETURN_NOT_OK(model.SaveState(out));
  }
  out.SizeT(reliability_.size());
  for (const auto& per_label : reliability_) {
    out.SizeT(per_label.size());
    for (const auto& [label, r] : per_label) {  // std::map: sorted, stable
      out.I64(label);
      out.F64(r);
    }
  }
  out.F64(threshold_);
  out.End();
  return Status::OK();
}

Status EcecClassifier::LoadState(Deserializer& in) {
  ETSC_RETURN_NOT_OK(in.Enter("ecec"));
  ETSC_ASSIGN_OR_RETURN(length_, in.SizeT());
  ETSC_ASSIGN_OR_RETURN(prefix_lengths_, in.SizeVec());
  ETSC_ASSIGN_OR_RETURN(size_t num_models, in.SizeT());
  if (num_models != prefix_lengths_.size() || num_models == 0) {
    return Status::DataLoss("ECEC: model/prefix count mismatch");
  }
  models_.assign(num_models, WeaselClassifier(options_.weasel));
  for (WeaselClassifier& model : models_) {
    ETSC_RETURN_NOT_OK(model.LoadState(in));
  }
  ETSC_ASSIGN_OR_RETURN(size_t num_reliability, in.SizeT());
  if (num_reliability != num_models) {
    return Status::DataLoss("ECEC: reliability table size mismatch");
  }
  reliability_.assign(num_reliability, {});
  for (auto& per_label : reliability_) {
    ETSC_ASSIGN_OR_RETURN(size_t entries, in.SizeT());
    for (size_t e = 0; e < entries; ++e) {
      ETSC_ASSIGN_OR_RETURN(int64_t label, in.I64());
      ETSC_ASSIGN_OR_RETURN(double r, in.F64());
      per_label[static_cast<int>(label)] = r;
    }
    if (per_label.size() != entries) {
      return Status::DataLoss("ECEC: duplicate reliability labels");
    }
  }
  ETSC_ASSIGN_OR_RETURN(threshold_, in.F64());
  return in.Leave();
}

}  // namespace etsc
