#ifndef ETSC_ALGOS_TEASER_H_
#define ETSC_ALGOS_TEASER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/classifier.h"
#include "core/composed.h"
#include "core/trigger.h"
#include "ml/one_class_svm.h"
#include "tsc/weasel.h"

namespace etsc {

/// TEASER — Two-tier Early and Accurate Series classifiER (Schäfer & Leser
/// 2020; paper Sec. 3.6). Prefix-based and univariate: S overlapping prefixes
/// each get a WEASEL + logistic-regression pipeline; a per-prefix one-class
/// SVM trained on the feature vectors (class probabilities + top-2 margin) of
/// correctly classified training instances accepts or rejects each
/// probabilistic prediction; an accepted label is emitted only after v
/// consecutive identical accepted predictions, with v ∈ {1..5} grid-searched
/// on the training set by harmonic mean of accuracy and earliness.
struct TeaserOptions {
  size_t num_prefixes = 20;  // Table 4: S = 20 (UCR), 10 (Biological/Maritime)
  size_t max_consecutive = 5;
  /// Folds used to obtain out-of-sample probabilistic predictions for the
  /// one-class-SVM training set and the v grid search (the original uses
  /// cross-validation here; 0 falls back to cheap in-sample predictions).
  size_t cv_folds = 3;
  /// The original z-normalises internally; the paper evaluates the variant
  /// without it (online setting), so the default is off.
  bool z_normalize = false;
  OneClassSvmOptions ocsvm;
  WeaselOptions weasel;
  uint64_t seed = 23;
};

/// TEASER's two-tier gate as a standalone trigger, usable with any base
/// classifier that produces posteriors: per checkpoint, a one-class SVM
/// trained on the (posteriors + top-2 margin) features of correctly
/// classified training instances accepts or rejects the bank's prediction,
/// and v consecutive identical accepted predictions halt. Registered as
/// trigger "teaser-gate".
struct TeaserTriggerOptions {
  size_t max_consecutive = 5;
  size_t cv_folds = 3;
  OneClassSvmOptions ocsvm;
  uint64_t seed = 23;
};

class TeaserGateTrigger : public Trigger {
 public:
  explicit TeaserGateTrigger(TeaserTriggerOptions options = {})
      : options_(options) {}

  std::string name() const override { return "teaser-gate"; }
  std::string config_fingerprint() const override;
  bool SupportsMultivariate() const override { return false; }
  ComposedOptions DefaultComposedOptions() const override;
  Status PlanCheckpoints(const Dataset& train, const FullClassifier* base,
                         const Deadline& deadline,
                         std::vector<size_t>* checkpoints) override;
  Status Fit(const TriggerFitContext& ctx) override;
  std::unique_ptr<TriggerState> NewState() const override;
  Result<TriggerDecision> Decide(const TriggerEvidence& evidence,
                                 TriggerState* state) const override;
  std::unique_ptr<Trigger> CloneUnfitted() const override;
  Status SaveState(Serializer& out) const override;
  Status LoadState(Deserializer& in) override;

  size_t chosen_v() const { return v_; }

  /// The OC-SVM feature vector: the class-probability vector plus the margin
  /// between the two largest probabilities.
  static std::vector<double> OcsvmFeatures(const std::vector<double>& proba);

 private:
  TeaserTriggerOptions options_;
  size_t v_ = 1;
  std::vector<OneClassSvm> filters_;
  std::vector<bool> filter_ok_;  // OC-SVM trained successfully per checkpoint
};

/// Legacy monolithic entry point, now a thin composition of WEASEL with the
/// "teaser-gate" trigger (bit-identical to the pre-seam implementation).
class TeaserClassifier : public ComposedEarlyClassifier {
 public:
  explicit TeaserClassifier(TeaserOptions options = {});

  std::string config_fingerprint() const override;
  std::unique_ptr<EarlyClassifier> CloneUntrained() const override;

  size_t chosen_v() const;
  const std::vector<size_t>& prefix_lengths() const { return checkpoints(); }

 private:
  TeaserOptions options_;
};

}  // namespace etsc

#endif  // ETSC_ALGOS_TEASER_H_
