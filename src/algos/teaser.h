#ifndef ETSC_ALGOS_TEASER_H_
#define ETSC_ALGOS_TEASER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/classifier.h"
#include "ml/one_class_svm.h"
#include "tsc/weasel.h"

namespace etsc {

/// TEASER — Two-tier Early and Accurate Series classifiER (Schäfer & Leser
/// 2020; paper Sec. 3.6). Prefix-based and univariate: S overlapping prefixes
/// each get a WEASEL + logistic-regression pipeline; a per-prefix one-class
/// SVM trained on the feature vectors (class probabilities + top-2 margin) of
/// correctly classified training instances accepts or rejects each
/// probabilistic prediction; an accepted label is emitted only after v
/// consecutive identical accepted predictions, with v ∈ {1..5} grid-searched
/// on the training set by harmonic mean of accuracy and earliness.
struct TeaserOptions {
  size_t num_prefixes = 20;  // Table 4: S = 20 (UCR), 10 (Biological/Maritime)
  size_t max_consecutive = 5;
  /// Folds used to obtain out-of-sample probabilistic predictions for the
  /// one-class-SVM training set and the v grid search (the original uses
  /// cross-validation here; 0 falls back to cheap in-sample predictions).
  size_t cv_folds = 3;
  /// The original z-normalises internally; the paper evaluates the variant
  /// without it (online setting), so the default is off.
  bool z_normalize = false;
  OneClassSvmOptions ocsvm;
  WeaselOptions weasel;
  uint64_t seed = 23;
};

class TeaserClassifier : public EarlyClassifier {
 public:
  explicit TeaserClassifier(TeaserOptions options = {}) : options_(options) {}

  Status Fit(const Dataset& train) override;
  Result<EarlyPrediction> PredictEarly(const TimeSeries& series) const override;
  std::string name() const override { return "TEASER"; }
  bool SupportsMultivariate() const override { return false; }
  std::unique_ptr<EarlyClassifier> CloneUntrained() const override {
    return std::make_unique<TeaserClassifier>(options_);
  }

  size_t chosen_v() const { return v_; }
  const std::vector<size_t>& prefix_lengths() const { return prefix_lengths_; }

  std::string config_fingerprint() const override;
  Status SaveState(Serializer& out) const override;
  Status LoadState(Deserializer& in) override;

 private:
  /// The OC-SVM feature vector: the class-probability vector plus the margin
  /// between the two largest probabilities.
  static std::vector<double> OcsvmFeatures(const std::vector<double>& proba);

  /// Applies the optional z-normalisation.
  TimeSeries Preprocess(const TimeSeries& series) const;

  TeaserOptions options_;
  size_t length_ = 0;
  size_t v_ = 1;
  std::vector<size_t> prefix_lengths_;
  std::vector<WeaselClassifier> models_;
  std::vector<OneClassSvm> filters_;
  std::vector<bool> filter_ok_;  // OC-SVM trained successfully per prefix
};

}  // namespace etsc

#endif  // ETSC_ALGOS_TEASER_H_
