#ifndef ETSC_ALGOS_EDSC_H_
#define ETSC_ALGOS_EDSC_H_

#include <memory>
#include <string>
#include <vector>

#include "core/classifier.h"

namespace etsc {

/// EDSC — Early Distinctive Shapelet Classification (Xing et al. 2011; paper
/// Sec. 3.3). Shapelet-based and univariate: enumerates candidate subseries,
/// learns a distance threshold per candidate from the Chebyshev bound on the
/// distances to other-class series (the CHE variant), ranks shapelets by a
/// utility combining precision and earliness-weighted recall, then greedily
/// keeps the best ones until the training set is covered. A test prefix fires
/// the first shapelet whose threshold it satisfies.
struct EdscOptions {
  double chebyshev_k = 3.0;  // Table 4: CHE, k = 3
  size_t min_length = 5;     // Table 4: minLen = 5
  /// maxLen as a fraction of the series length (Table 4: L/2).
  double max_length_fraction = 0.5;
  /// Candidate subsampling strides; 1 = the exhaustive original. Larger
  /// values trade fidelity for the cubic blow-up the paper observed (EDSC did
  /// not finish 'Wide' datasets in 48 h).
  size_t start_stride = 1;
  size_t length_stride = 1;
  /// Cap on stored shapelets after utility ranking.
  size_t max_shapelets = 500;
  /// Cap on evaluated candidates; above it a deterministic random subsample is
  /// drawn. 0 = exhaustive (the original algorithm).
  size_t max_candidates = 0;
  uint64_t seed = 37;
};

/// A learned shapelet: (subseries, distance threshold, class) triple.
struct Shapelet {
  std::vector<double> pattern;
  double threshold = 0.0;
  int label = 0;
  double utility = 0.0;
  double precision = 0.0;
  double weighted_recall = 0.0;
};

class EdscClassifier : public EarlyClassifier {
 public:
  explicit EdscClassifier(EdscOptions options = {}) : options_(options) {}

  Status Fit(const Dataset& train) override;
  Result<EarlyPrediction> PredictEarly(const TimeSeries& series) const override;
  std::string name() const override { return "EDSC"; }
  bool SupportsMultivariate() const override { return false; }
  std::unique_ptr<EarlyClassifier> CloneUntrained() const override {
    return std::make_unique<EdscClassifier>(options_);
  }

  const std::vector<Shapelet>& shapelets() const { return shapelets_; }

  std::string config_fingerprint() const override;
  Status SaveState(Serializer& out) const override;
  Status LoadState(Deserializer& in) override;

 private:
  EdscOptions options_;
  std::vector<Shapelet> shapelets_;
  int majority_label_ = 0;  // fallback when no shapelet ever fires
};

}  // namespace etsc

#endif  // ETSC_ALGOS_EDSC_H_
